package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hadoop"
	"repro/internal/mapred"
	"repro/internal/pax"
	"repro/internal/sim"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// SplitsPerNodePaper is HailSplitting's splits-per-tracker setting; with
// 10 nodes it yields the paper's 20 map tasks (§6.5: "from 3,200 ... to
// only 20").
const SplitsPerNodePaper = 2

// runQuery executes one benchmark query for real on a fixture.
func (r *Runner) runQuery(f *fixture, bq workload.BenchQuery, splitting bool) (*mapred.JobResult, error) {
	e := &mapred.Engine{Cluster: f.cluster}
	job := &mapred.Job{Name: bq.Name, File: f.file}
	switch f.system {
	case Hadoop:
		job.Input = &hadoop.TextInputFormat{Cluster: f.cluster}
		job.Map = bq.HadoopMap
	case HadoopPP:
		job.Input = &trojan.InputFormat{System: f.trojanSys, Query: bq.Query}
		job.Map = workload.PassthroughMap
	case HAIL:
		job.Input = &core.InputFormat{
			Cluster: f.cluster, Query: bq.Query,
			Splitting: splitting, SplitsPerNode: SplitsPerNodePaper,
		}
		job.Map = workload.PassthroughMap
	}
	return e.Run(job)
}

// queryCost is the scaled per-block and per-job cost decomposition of a
// measured query run.
type queryCost struct {
	perBlockIO     float64 // seeks + data bytes, seconds
	perBlockRRCPU  float64 // record-reader CPU: scan/deliver/reconstruct
	perBlockMapCPU float64 // user map-function CPU (Hadoop's string split)
	perBlockOut    float64 // replicated output write
	setup          float64 // job setup incl. split-phase I/O
}

// cost converts a measured JobResult into paper-scale per-block costs.
func (r *Runner) cost(f *fixture, res *mapred.JobResult) queryCost {
	p := r.Profile
	st := res.TotalStats()
	nb := float64(f.scale.RealBlocks)
	rs := f.scale.RowScale

	// Partition-bounded reads (PAX index scans) do not grow with block
	// size: a point lookup touches one 1,024-row partition at 4,000 rows
	// per block and at 500,000. Scale the data bytes of such reads by the
	// ratio of *partition counts*, with the measured partition count as a
	// floor; proportional reads (full scans, text scans) use RowScale.
	dataScale := rs
	if st.PartitionsScanned > 0 && st.Blocks > 0 {
		partsPerBlock := float64(st.PartitionsScanned) / float64(st.Blocks)
		realParts := math.Ceil(f.scale.RealRowsPerBlock / pax.PartitionSize)
		paperParts := f.scale.PaperRowsPerBlock / pax.PartitionSize
		if partsPerBlock < realParts {
			scaledParts := (partsPerBlock - 1) / realParts * paperParts
			if scaledParts < partsPerBlock {
				scaledParts = partsPerBlock
			}
			dataScale = scaledParts / partsPerBlock
		}
	}

	seeks := float64(st.Seeks) / nb
	bytes := float64(st.BytesRead)/nb*dataScale + float64(st.IndexBytesRead)/nb*rs
	io := seeks*p.SeekMS/1e3 + bytes/(p.DiskMBps*1e6)

	delivered := float64(st.RecordsDelivered) / nb * rs
	scanned := float64(st.RecordsScanned) / nb * rs
	attrs := float64(st.AttrsDelivered) / nb * rs
	textParsed := float64(st.TextBytesParsed) / nb * rs

	var rrCPU, mapCPU float64
	switch f.system {
	case Hadoop:
		rrCPU = textParsed/(sim.LineScanMBps*1e6) + delivered*sim.RecordDeliverHadoop
		mapCPU = delivered * sim.RecordSplitHadoop
	case HadoopPP:
		rrCPU = scanned * sim.RecordDeliverTrojan
	case HAIL:
		rrCPU = delivered*sim.RecordDeliverHAIL + attrs*sim.RecordReconstructHAIL
	}
	rrCPU /= p.CPUFactor
	mapCPU /= p.CPUFactor

	const outputReplication = 3
	out := float64(st.OutputBytes) / nb * rs * outputReplication / (p.DiskMBps * 1e6)

	// Split-phase I/O scales with the paper-scale block count (Hadoop++
	// reads every block header).
	blockScale := float64(f.scale.PaperBlocks) / nb
	sp := res.SplitPhase
	setup := sim.JobSetupSeconds +
		float64(sp.Seeks)*blockScale*p.SeekMS/1e3 +
		float64(sp.BytesRead)*blockScale*rs/(p.DiskMBps*1e6)

	return queryCost{
		perBlockIO:     io,
		perBlockRRCPU:  rrCPU,
		perBlockMapCPU: mapCPU,
		perBlockOut:    out,
		setup:          setup,
	}
}

// rrSeconds is the record-reader time of one map task (Figures 6(b),
// 7(b)): task setup plus the per-block read work, excluding the user map
// function and output writing.
func (c queryCost) rrSeconds(blocksPerTask float64) float64 {
	return sim.TaskFixedSeconds + blocksPerTask*(c.perBlockIO+c.perBlockRRCPU)
}

// taskSeconds is the full map-task duration.
func (c queryCost) taskSeconds(blocksPerTask float64) float64 {
	extra := 0.0
	if blocksPerTask > 1 {
		extra = blocksPerTask * sim.BlockOpenSeconds
	}
	return c.rrSeconds(blocksPerTask) + extra +
		blocksPerTask*(c.perBlockMapCPU+c.perBlockOut)
}

// jobTimes evaluates the end-to-end model for a measured query run.
// ideal follows the paper's definition (§6.4.1): T_ideal = #MapTasks /
// #ParallelMapTasks × Avg(T_RecordReader) — record-reader time only, no
// scheduling, map-function or output cost.
func (r *Runner) jobTimes(f *fixture, res *mapred.JobResult, splitting bool) (e2e, rr, ideal float64) {
	c := r.cost(f, res)
	nTasks := f.scale.PaperBlocks
	blocksPerTask := 1.0
	if splitting {
		nTasks = r.Nodes * SplitsPerNodePaper
		blocksPerTask = float64(f.scale.PaperBlocks) / float64(nTasks)
	}
	task := c.taskSeconds(blocksPerTask)
	spec := sim.JobSpec{NTasks: nTasks, TaskSeconds: task, SetupSeconds: c.setup}
	idealSpec := sim.JobSpec{NTasks: nTasks, TaskSeconds: c.rrSeconds(blocksPerTask)}
	return sim.JobTime(r.Profile, spec), c.rrSeconds(1), sim.IdealJobTime(r.Profile, idealSpec)
}

// queries returns the workload's benchmark queries.
func queriesFor(w Workload) []workload.BenchQuery {
	if w == UserVisits {
		return workload.BobQueries()
	}
	return workload.SynQueries()
}

// queryFigure runs all of a workload's queries on all three systems and
// reports one of three projections of the result: end-to-end runtime,
// record-reader time, or framework overhead.
type queryMetric int

const (
	metricEndToEnd queryMetric = iota
	metricRecordReader
	metricOverhead
)

func (r *Runner) queryFigure(id, title string, w Workload, m queryMetric, hailSplitting bool) (*Figure, error) {
	unit := "s"
	if m == metricRecordReader {
		unit = "ms"
	}
	fig := &Figure{ID: id, Title: title, Unit: unit}
	for _, sys := range []System{Hadoop, HadoopPP, HAIL} {
		f, err := r.fixture(w, sys)
		if err != nil {
			return nil, err
		}
		var pts []Point
		for _, bq := range queriesFor(w) {
			splitting := hailSplitting && sys == HAIL
			res, err := r.runQuery(f, bq, splitting)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", bq.Name, sys, err)
			}
			e2e, rr, ideal := r.jobTimes(f, res, splitting)
			var v float64
			switch m {
			case metricEndToEnd:
				v = e2e
			case metricRecordReader:
				v = rr * 1e3
			case metricOverhead:
				v = e2e - ideal
			}
			pts = append(pts, Point{bq.Name, v})
		}
		fig.Series = append(fig.Series, Series{Label: sys.String(), Points: pts})
	}
	return fig, nil
}

// Fig6a: end-to-end Bob query runtimes, HailSplitting disabled (§6.4.1).
func (r *Runner) Fig6a() (*Figure, error) {
	return r.queryFigure("Fig6a", "End-to-end job runtimes, Bob's workload (no HailSplitting)",
		UserVisits, metricEndToEnd, false)
}

// Fig6b: average record-reader times for Bob's workload.
func (r *Runner) Fig6b() (*Figure, error) {
	return r.queryFigure("Fig6b", "Record-reader runtimes, Bob's workload",
		UserVisits, metricRecordReader, false)
}

// Fig6c: Hadoop framework overhead (T_end-to-end − T_ideal) for Bob's
// workload.
func (r *Runner) Fig6c() (*Figure, error) {
	return r.queryFigure("Fig6c", "Framework overhead, Bob's workload",
		UserVisits, metricOverhead, false)
}

// Fig7a: end-to-end Synthetic query runtimes (no HailSplitting).
func (r *Runner) Fig7a() (*Figure, error) {
	return r.queryFigure("Fig7a", "End-to-end job runtimes, Synthetic workload (no HailSplitting)",
		Synthetic, metricEndToEnd, false)
}

// Fig7b: record-reader times for the Synthetic workload.
func (r *Runner) Fig7b() (*Figure, error) {
	return r.queryFigure("Fig7b", "Record-reader runtimes, Synthetic workload",
		Synthetic, metricRecordReader, false)
}

// Fig7c: framework overhead for the Synthetic workload.
func (r *Runner) Fig7c() (*Figure, error) {
	return r.queryFigure("Fig7c", "Framework overhead, Synthetic workload",
		Synthetic, metricOverhead, false)
}

// Fig9a: Bob queries with HailSplitting enabled (§6.5).
func (r *Runner) Fig9a() (*Figure, error) {
	return r.queryFigure("Fig9a", "End-to-end job runtimes, Bob's workload (HailSplitting on)",
		UserVisits, metricEndToEnd, true)
}

// Fig9b: Synthetic queries with HailSplitting enabled.
func (r *Runner) Fig9b() (*Figure, error) {
	return r.queryFigure("Fig9b", "End-to-end job runtimes, Synthetic workload (HailSplitting on)",
		Synthetic, metricEndToEnd, true)
}

// Fig9c: total workload runtimes — the sum over each workload's queries,
// with HailSplitting on for HAIL (the paper's 39× / 9× headline).
func (r *Runner) Fig9c() (*Figure, error) {
	fig := &Figure{ID: "Fig9c", Title: "Total workload runtimes (HailSplitting on for HAIL)", Unit: "s"}
	for _, sys := range []System{Hadoop, HadoopPP, HAIL} {
		var pts []Point
		for _, w := range []Workload{UserVisits, Synthetic} {
			f, err := r.fixture(w, sys)
			if err != nil {
				return nil, err
			}
			total := 0.0
			for _, bq := range queriesFor(w) {
				splitting := sys == HAIL
				res, err := r.runQuery(f, bq, splitting)
				if err != nil {
					return nil, err
				}
				e2e, _, _ := r.jobTimes(f, res, splitting)
				total += e2e
			}
			label := "Bob"
			if w == Synthetic {
				label = "Synthetic"
			}
			pts = append(pts, Point{label, total})
		}
		fig.Series = append(fig.Series, Series{Label: sys.String(), Points: pts})
	}
	return fig, nil
}
