package experiments

import (
	"testing"
)

// The experiment tests run the full pipelines on quick fixtures and assert
// the paper's qualitative claims: orderings, approximate ratios, and
// crossover points. Exact paper-vs-measured numbers are recorded in
// EXPERIMENTS.md from full-fidelity runs.

func quickRunner() *Runner { return NewQuickRunner() }

// skipIfShort keeps the CI -short lane fast: the full paper-figure suite
// (~10 s of quick-fixture uploads and queries) stays the local tier-1,
// while -short still runs the adaptive suite and the pure-logic tests.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-figure suite skipped in -short mode")
	}
}

func value(f *Figure, series, x string) float64 {
	for _, s := range f.Series {
		if s.Label != series {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Seconds
			}
		}
	}
	return -1
}

func TestFig4aShapes(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fig, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	hadoop := value(fig, "Hadoop", "0 idx")
	hail0 := value(fig, "HAIL", "0 idx")
	hail3 := value(fig, "HAIL", "3 idx")
	hpp0 := value(fig, "Hadoop++", "0 idx")
	hpp1 := value(fig, "Hadoop++", "1 idx")

	// Paper: HAIL ≈ Hadoop even with 3 indexes (within ~15%), Hadoop++
	// 5.1× / 8× slower.
	if hail0 < 0.7*hadoop || hail0 > 1.15*hadoop {
		t.Errorf("HAIL-0/Hadoop = %.2f, want ≈1", hail0/hadoop)
	}
	if hail3 < hail0 {
		t.Error("indexes must not be free")
	}
	if hail3 > 1.25*hadoop {
		t.Errorf("HAIL-3/Hadoop = %.2f, want ≈1.14", hail3/hadoop)
	}
	if ratio := hpp0 / hadoop; ratio < 3.5 || ratio > 7 {
		t.Errorf("Hadoop++(0)/Hadoop = %.2f, want ≈5.1", ratio)
	}
	if ratio := hpp1 / hadoop; ratio < 6 || ratio > 11 {
		t.Errorf("Hadoop++(1)/Hadoop = %.2f, want ≈8", ratio)
	}
	// Hadoop++ cannot create 2+ indexes; Hadoop creates none.
	if value(fig, "Hadoop++", "2 idx") >= 0 || value(fig, "Hadoop", "1 idx") >= 0 {
		t.Error("impossible configurations must be absent")
	}
}

func TestFig4bShapes(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fig, err := r.Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	hadoop := value(fig, "Hadoop", "0 idx")
	hail3 := value(fig, "HAIL", "3 idx")
	// Paper: HAIL beats Hadoop by ~1.6× on Synthetic even with 3 indexes
	// (binary representation shrinks the data).
	if ratio := hadoop / hail3; ratio < 1.3 || ratio > 2.1 {
		t.Errorf("Hadoop/HAIL-3 = %.2f, want ≈1.6", ratio)
	}
}

func TestFig4cCrossover(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fig, err := r.Fig4c()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.3.2: HAIL stores six indexed replicas in about the time
	// Hadoop stores three plain ones.
	hadoop3 := value(fig, "Hadoop", "r=3")
	hail6 := value(fig, "HAIL", "r=6")
	if hail6 > 1.1*hadoop3 {
		t.Errorf("HAIL r=6 (%.0f) should be ≈ Hadoop r=3 (%.0f)", hail6, hadoop3)
	}
	// Monotone in replication for both systems.
	for _, sys := range []string{"Hadoop", "HAIL"} {
		prev := -1.0
		for _, x := range []string{"r=3", "r=5", "r=6", "r=7", "r=10"} {
			v := value(fig, sys, x)
			if v < prev {
				t.Errorf("%s not monotone at %s", sys, x)
			}
			prev = v
		}
	}
}

func TestTable2ScaleUp(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	ta, err := r.Table2a()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := r.Table2b()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the HAIL-vs-Hadoop speedup improves with better CPUs on both
	// datasets (Table 2: 0.54→0.74→0.87 UV, 1.15→1.38→1.58 Syn), because
	// HAIL's extra work is CPU.
	for _, fig := range []*Figure{ta, tb} {
		weak := value(fig, "SystemSpeedup", "m1.large")
		quad := value(fig, "SystemSpeedup", "cc1.4xlarge")
		phys := value(fig, "SystemSpeedup", "physical")
		if !(weak < quad) {
			t.Errorf("%s: speedup should improve m1.large (%.2f) → cc1.4xlarge (%.2f)", fig.ID, weak, quad)
		}
		if phys < quad*0.8 {
			t.Errorf("%s: physical speedup %.2f unexpectedly low", fig.ID, phys)
		}
	}
	// Synthetic speedups exceed UserVisits speedups everywhere (binary
	// shrink helps HAIL).
	for _, x := range []string{"m1.large", "cc1.4xlarge", "physical"} {
		if value(tb, "SystemSpeedup", x) <= value(ta, "SystemSpeedup", x) {
			t.Errorf("Synthetic speedup at %s should exceed UserVisits'", x)
		}
	}
}

func TestFig5ScaleOut(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fig, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.3.4: roughly constant upload times under scale-out, and
	// HAIL at or below Hadoop on both datasets at 100 nodes.
	for _, s := range fig.Series {
		base := s.Points[0].Seconds
		for _, p := range s.Points {
			if p.Seconds < 0.8*base || p.Seconds > 1.3*base {
				t.Errorf("%s at %s: %.0f s, want roughly constant (%.0f s at 10 nodes)", s.Label, p.X, p.Seconds, base)
			}
		}
	}
	if value(fig, "HAIL Syn", "100 nodes") >= value(fig, "Hadoop Syn", "100 nodes") {
		t.Error("HAIL should beat Hadoop on Synthetic at 100 nodes")
	}
}

func TestFig6Shapes(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	a, err := r.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Fig6c()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"Bob-Q1", "Bob-Q2", "Bob-Q3", "Bob-Q4", "Bob-Q5"}
	for _, q := range queries {
		hadoop := value(a, "Hadoop", q)
		hail := value(a, "HAIL", q)
		// Paper Fig 6(a): HAIL beats Hadoop end-to-end on every query,
		// but only by ~1.5–2× — the scheduling overhead dominates.
		if hail >= hadoop {
			t.Errorf("%s: HAIL (%.0f) not faster than Hadoop (%.0f)", q, hail, hadoop)
		}
		if hadoop/hail > 4 {
			t.Errorf("%s: HAIL e2e speedup %.1f× too large without HailSplitting", q, hadoop/hail)
		}
		// Fig 6(b): record-reader speedups are much larger (up to 46×).
		rrHadoop := value(b, "Hadoop", q)
		rrHail := value(b, "HAIL", q)
		if rrHadoop/rrHail < 2 {
			t.Errorf("%s: RR speedup %.1f×, want ≫1", q, rrHadoop/rrHail)
		}
		// Fig 6(c): overhead dominates the end-to-end time for HAIL
		// (the paper's bars are ~70–95% overhead).
		if ov := value(c, "HAIL", q); ov < 0.6*hail {
			t.Errorf("%s: HAIL overhead %.0f should dominate e2e %.0f", q, ov, hail)
		}
	}
	// Hadoop++ with its sourceIP index: Q2/Q3 much faster than Q1.
	if value(a, "Hadoop++", "Bob-Q2") >= value(a, "Hadoop++", "Bob-Q1") {
		t.Error("Hadoop++ indexed query should beat its full scan")
	}
	// HAIL end-to-end times are nearly flat across queries (dispatch
	// bound) — the paper's striking observation.
	if value(a, "HAIL", "Bob-Q5") > 1.3*value(a, "HAIL", "Bob-Q2") {
		t.Error("HAIL end-to-end times should be nearly flat without splitting")
	}
}

func TestFig7Shapes(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	a, err := r.Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	// Projection width must not change Hadoop++ RR times (row layout)
	// but must change HAIL's (PAX). Selectivity changes both.
	hppQ1a, hppQ1c := value(b, "Hadoop++", "Syn-Q1a"), value(b, "Hadoop++", "Syn-Q1c")
	if diff := hppQ1a - hppQ1c; diff < -0.05*hppQ1a || diff > 0.05*hppQ1a {
		t.Errorf("Hadoop++ RR should be projection-invariant: Q1a=%.0f Q1c=%.0f", hppQ1a, hppQ1c)
	}
	if !(value(b, "HAIL", "Syn-Q1a") > value(b, "HAIL", "Syn-Q1b") &&
		value(b, "HAIL", "Syn-Q1b") > value(b, "HAIL", "Syn-Q1c")) {
		t.Error("HAIL RR should decrease with narrower projections")
	}
	if value(b, "HAIL", "Syn-Q2a") >= value(b, "HAIL", "Syn-Q1a") {
		t.Error("HAIL RR should decrease with selectivity")
	}
	// Paper: selectivity does NOT visibly affect end-to-end times
	// (framework overhead); all HAIL e2e within a small band.
	if value(a, "HAIL", "Syn-Q1a") > 1.35*value(a, "HAIL", "Syn-Q2c") {
		t.Error("HAIL Synthetic e2e should be nearly flat")
	}
}

func TestFig8FaultTolerance(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fig, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	hadoopSlow := value(fig, "Slowdown %", "Hadoop")
	hailSlow := value(fig, "Slowdown %", "HAIL")
	oneIdxSlow := value(fig, "Slowdown %", "HAIL-1Idx")
	// Paper Fig 8: slowdowns around 5–11%; HAIL-1Idx lowest because
	// failed tasks still index-scan.
	for _, v := range []float64{hadoopSlow, hailSlow, oneIdxSlow} {
		if v < 1 || v > 25 {
			t.Errorf("slowdown %.1f%% outside plausible band", v)
		}
	}
	if oneIdxSlow > hailSlow {
		t.Errorf("HAIL-1Idx slowdown (%.1f%%) should not exceed HAIL's (%.1f%%)", oneIdxSlow, hailSlow)
	}
	if value(fig, "JobRuntime", "HAIL") >= value(fig, "JobRuntime", "Hadoop") {
		t.Error("HAIL baseline should beat Hadoop")
	}
}

func TestFig9HeadlineSpeedups(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	a, err := r.Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	bfig, err := r.Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Fig9c()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: HAIL up to 68× faster than Hadoop on Bob's queries with
	// HailSplitting (Bob-Q2/Q3); require a large speedup.
	best := 0.0
	for _, q := range []string{"Bob-Q1", "Bob-Q2", "Bob-Q3", "Bob-Q4", "Bob-Q5"} {
		sp := value(a, "Hadoop", q) / value(a, "HAIL", q)
		if sp > best {
			best = sp
		}
	}
	if best < 30 {
		t.Errorf("best Bob speedup %.0f×, want ≫30 (paper: 68×)", best)
	}
	// Synthetic: up to 26× (paper); require ≥8×.
	bestSyn := 0.0
	for _, q := range []string{"Syn-Q1a", "Syn-Q1b", "Syn-Q1c", "Syn-Q2a", "Syn-Q2b", "Syn-Q2c"} {
		sp := value(bfig, "Hadoop", q) / value(bfig, "HAIL", q)
		if sp > bestSyn {
			bestSyn = sp
		}
	}
	if bestSyn < 8 {
		t.Errorf("best Synthetic speedup %.0f×, want ≥8 (paper: 26×)", bestSyn)
	}
	// Fig 9(c): whole-workload speedups (paper: 39× Bob, 9× Synthetic).
	bobSpeedup := value(c, "Hadoop", "Bob") / value(c, "HAIL", "Bob")
	synSpeedup := value(c, "Hadoop", "Synthetic") / value(c, "HAIL", "Synthetic")
	if bobSpeedup < 15 {
		t.Errorf("Bob workload speedup %.0f×, want ≥15 (paper: 39×)", bobSpeedup)
	}
	if synSpeedup < 5 {
		t.Errorf("Synthetic workload speedup %.0f×, want ≥5 (paper: 9×)", synSpeedup)
	}
	// Bob's workload benefits more than Synthetic (multiple usable
	// indexes + higher selectivities).
	if bobSpeedup <= synSpeedup {
		t.Errorf("Bob speedup (%.0f×) should exceed Synthetic's (%.0f×)", bobSpeedup, synSpeedup)
	}
}

func TestFigureString(t *testing.T) {
	fig := &Figure{
		ID: "X", Title: "t", Unit: "s",
		Series: []Series{{Label: "A", Points: []Point{{"p", 1.5}, {"q", -1}}}},
	}
	s := fig.String()
	for _, want := range []string{"X — t [s]", "A", "1.5", "-"} {
		if !contains(s, want) {
			t.Errorf("Figure.String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
