package experiments

import (
	"strings"
	"testing"
)

// TestExpCacheTrajectory is the issue's acceptance experiment: a cold job
// populates the cache, an identical hot job answers ≥90% of its blocks
// from it with measurably lower task work, the adaptive phase's replica
// replacements invalidate affected entries, and every job stays
// result-equivalent to uncached execution (ExpCache errors out on any
// divergence, order included before the first invalidation).
func TestExpCacheTrajectory(t *testing.T) {
	r := quickRunner()
	rep, err := r.ExpCache(UserVisits, 6, 0, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 6 {
		t.Fatalf("got %d jobs, want 6", len(rep.Jobs))
	}
	cold, hot := rep.Jobs[0], rep.Jobs[1]

	if cold.HitBlocks != 0 {
		t.Errorf("cold job hit %d blocks", cold.HitBlocks)
	}
	if cold.Misses == 0 || cold.CacheEntries == 0 {
		t.Errorf("cold job did not populate the cache: %+v", cold)
	}

	if hot.HitRate < 0.9 {
		t.Errorf("hot job hit rate %.2f, want ≥ 0.9", hot.HitRate)
	}
	if hot.WorkSeconds >= 0.5*cold.WorkSeconds {
		t.Errorf("hot job map work %.2f s not measurably lower than cold %.2f s",
			hot.WorkSeconds, cold.WorkSeconds)
	}
	if hot.Seconds > cold.Seconds+1e-9 {
		t.Errorf("hot job e2e %.2f s slower than cold %.2f s", hot.Seconds, cold.Seconds)
	}
	if rep.BytesSaved == 0 {
		t.Error("no read bytes saved recorded")
	}

	// The adaptive phase must convert blocks and invalidate their
	// entries.
	var built int
	var invalidations int64
	for _, j := range rep.Jobs[cacheAdaptiveFrom-1:] {
		built += j.BlocksBuilt
		invalidations += j.Invalidations
	}
	if built == 0 {
		t.Fatal("adaptive phase converted no blocks")
	}
	if invalidations == 0 {
		t.Fatal("replica replacements invalidated no cache entries")
	}

	// After invalidation the next job recomputes exactly the affected
	// blocks (plus any whose scheduling moved) and re-admits them.
	after := rep.Jobs[cacheAdaptiveFrom] // first job after conversions began
	if after.Misses == 0 {
		t.Errorf("post-invalidation job had no misses: %+v", after)
	}

	// Row counts are constant across the sequence (the equivalence gate
	// inside ExpCache already compared contents).
	for _, j := range rep.Jobs {
		if j.Rows != cold.Rows {
			t.Errorf("job %d returned %d rows, cold job %d", j.Job, j.Rows, cold.Rows)
		}
	}
}

// TestExpCacheTinyBudgetStillCorrect: a budget too small to hold the
// working set must cost performance only — evictions, zero-ish hit rate —
// never correctness.
func TestExpCacheTinyBudgetStillCorrect(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	rep, err := r.ExpCache(UserVisits, 3, 16<<10, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	var evictions int64
	for _, j := range rep.Jobs {
		evictions += j.Evictions
	}
	if evictions == 0 && rep.Jobs[1].HitRate == 1.0 {
		t.Errorf("16 KB budget held the full working set: %+v", rep.Jobs)
	}
}

// TestExpCacheFigure sanity-checks the printable report.
func TestExpCacheFigure(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	rep, err := r.ExpCache(Synthetic, 3, 0, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	fig := rep.Figure()
	if fig.ID != "FigCache" || len(fig.Series) != 4 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
	s := rep.String()
	for _, want := range []string{"cache hits [%]", "invalidated", "byte-equivalent"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
