package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// Ablations for the design choices §3.5 argues for. The first two are
// evaluations of the paper's own back-of-envelope cost arguments under the
// calibrated hardware model; the last two compare measured alternatives
// that both exist in this repository.

// AblationUnclusteredIndex reproduces the clustered-vs-unclustered
// argument of §3.5 ("a major problem with unclustered indexes is that they
// are only competitive for very selective queries"): per 64 MB block,
// query time under a clustered index (contiguous range read after an
// in-memory lookup) vs. an unclustered index (dense index read, then one
// random partition access per qualifying record, capped by the partition
// count), plus the upload penalty of writing the dense index (§3.5: "10%
// to 20% over the data block size").
func (r *Runner) AblationUnclusteredIndex() (*Figure, error) {
	f, err := r.fixture(UserVisits, HAIL)
	if err != nil {
		return nil, err
	}
	p := r.Profile
	blockBytes := paperBlockText * float64(f.hailSum.PaxBytes) / float64(f.hailSum.TextBytes)
	rowsPerBlock := f.scale.PaperRowsPerBlock
	partitions := rowsPerBlock / 1024
	// Query reads ~1/4 of the columns (Bob-style projections).
	dataFraction := 0.25

	clustered := func(sel float64) float64 {
		idx := p.SeekMS/1e3 + 2048/(p.DiskMBps*1e6)
		read := (sel*blockBytes*dataFraction + 1024) / (p.DiskMBps * 1e6)
		return idx + 3*p.SeekMS/1e3 + read
	}
	unclustered := func(sel float64) float64 {
		denseIdx := 0.15 * blockBytes // §3.5: dense, 10–20% of the block
		idx := p.SeekMS/1e3 + denseIdx/(p.DiskMBps*1e6)
		// One random partition read per qualifying record, at most every
		// partition once.
		hits := sel * rowsPerBlock
		touched := hits
		if touched > partitions {
			touched = partitions
		}
		partBytes := blockBytes * dataFraction / partitions
		return idx + touched*(p.SeekMS/1e3+partBytes/(p.DiskMBps*1e6))
	}

	fig := &Figure{
		ID:    "AblationUnclustered",
		Title: "Clustered vs unclustered index: per-block access time across selectivities",
		Unit:  "ms",
	}
	sels := []float64{1e-6, 1e-4, 1e-3, 1e-2, 3.1e-2, 0.2}
	var cl, uncl []Point
	for _, sel := range sels {
		x := fmt.Sprintf("sel=%g", sel)
		cl = append(cl, Point{x, clustered(sel) * 1e3})
		uncl = append(uncl, Point{x, unclustered(sel) * 1e3})
	}
	fig.Series = []Series{
		{Label: "clustered", Points: cl},
		{Label: "unclustered", Points: uncl},
	}
	return fig, nil
}

// AblationMultiLevelIndex evaluates §3.5's "Why not a multi-level tree?"
// arithmetic under the calibrated disk model: a single-level root
// directory costs one seek plus its transfer; a two-level tree costs two
// seeks plus two small transfers. The root grows with the block, so the
// multi-level design only wins for blocks of several GB — far above
// HDFS's defaults.
func (r *Runner) AblationMultiLevelIndex() *Figure {
	p := r.Profile
	// §3.5's example: 40 B rows, 4 B keys, 4 KB pages.
	const rowBytes, keyBytes, pageBytes = 40.0, 4.0, 4096.0
	single := func(blockBytes float64) float64 {
		rows := blockBytes / rowBytes
		attrBytes := rows * keyBytes
		rootEntries := attrBytes / pageBytes
		rootBytes := rootEntries * keyBytes
		return p.SeekMS/1e3 + rootBytes/(p.DiskMBps*1e6)
	}
	multi := func(float64) float64 {
		// Two levels: root node (one page) + one inner node, each a seek
		// plus a page transfer.
		return 2 * (p.SeekMS/1e3 + pageBytes/(p.DiskMBps*1e6))
	}
	fig := &Figure{
		ID:    "AblationMultiLevel",
		Title: "Single-level vs multi-level index: lookup I/O time across block sizes",
		Unit:  "ms",
	}
	var s1, s2 []Point
	for _, gb := range []float64{0.064, 0.256, 1, 2, 5, 8} {
		x := fmt.Sprintf("%gGB", gb)
		s1 = append(s1, Point{x, single(gb*1e9) * 1e3})
		s2 = append(s2, Point{x, multi(gb*1e9) * 1e3})
	}
	fig.Series = []Series{
		{Label: "single-level", Points: s1},
		{Label: "multi-level", Points: s2},
	}
	return fig
}

// AblationSplitting isolates the HailSplitting policy: HAIL end-to-end
// times for Bob's workload with the policy off (Fig 6a conditions) vs. on
// (Fig 9a conditions). Everything else — data, indexes, record readers —
// is identical.
func (r *Runner) AblationSplitting() (*Figure, error) {
	f, err := r.fixture(UserVisits, HAIL)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:    "AblationSplitting",
		Title: "HailSplitting off vs on: HAIL end-to-end times, Bob's workload",
		Unit:  "s",
	}
	var off, on []Point
	for _, bq := range workload.BobQueries() {
		resOff, err := r.runQuery(f, bq, false)
		if err != nil {
			return nil, err
		}
		e2eOff, _, _ := r.jobTimes(f, resOff, false)
		resOn, err := r.runQuery(f, bq, true)
		if err != nil {
			return nil, err
		}
		e2eOn, _, _ := r.jobTimes(f, resOn, true)
		off = append(off, Point{bq.Name, e2eOff})
		on = append(on, Point{bq.Name, e2eOn})
	}
	fig.Series = []Series{
		{Label: "splitting off", Points: off},
		{Label: "splitting on", Points: on},
	}
	return fig, nil
}

// AblationLayout compares the record-reader cost of PAX (HAIL) against
// row layout (Hadoop++) when both have a usable index on the filter
// attribute — the Synthetic workload, where projection width is the
// variable (§6.4.2's discussion).
func (r *Runner) AblationLayout() (*Figure, error) {
	fig := &Figure{
		ID:    "AblationLayout",
		Title: "PAX (HAIL) vs row layout (Hadoop++) record-reader times, Synthetic",
		Unit:  "ms",
	}
	for _, sys := range []System{HadoopPP, HAIL} {
		f, err := r.fixture(Synthetic, sys)
		if err != nil {
			return nil, err
		}
		label := "row (Hadoop++)"
		if sys == HAIL {
			label = "PAX (HAIL)"
		}
		var pts []Point
		for _, bq := range workload.SynQueries() {
			res, err := r.runQuery(f, bq, false)
			if err != nil {
				return nil, err
			}
			_, rr, _ := r.jobTimes(f, res, false)
			pts = append(pts, Point{bq.Name, rr * 1e3})
		}
		fig.Series = append(fig.Series, Series{Label: label, Points: pts})
	}
	return fig, nil
}

// UploadBreakdown is not a paper figure but a useful diagnostic: the
// simulated per-node resource times behind Figure 4(a)'s HAIL bar.
func (r *Runner) UploadBreakdown(w Workload, indexes int) (disk, net, cpu float64, err error) {
	hailRatio, _, err := r.binRatio(w)
	if err != nil {
		return 0, 0, 0, err
	}
	gb := UVGBPerNode
	if w == Synthetic {
		gb = SynGBPerNode
	}
	c := hailUploadCost(gb*1e9, hailRatio, indexes, 3)
	p := r.Profile
	disk = (float64(c.DiskReadBytes) + float64(c.DiskStreamWriteBytes)/p.StreamWriteEff +
		float64(c.DiskBlockWriteBytes)) / (p.DiskMBps * 1e6)
	net = float64(c.NetBytes) / (p.NetMBps * 1e6)
	cpu = c.CPUCoreSeconds / (float64(p.Cores) * p.CPUFactor)
	return disk, net, cpu, nil
}

// Section5FullText reproduces the related-work micro-comparison of §5:
// "[15] required 2,088 seconds to only create a full-text index on 20GB,
// while HAIL takes 1,600 seconds to both upload and index 200GB." The
// full-text cost uses the tokenize-and-materialize-postings pipeline of
// internal/invidx, whose throughput per node is bounded by tokenization
// CPU and postings write-out; the rate constant below reproduces the
// published 20 GB / 2,088 s figure and is documented here rather than in
// calibration.go because no paper figure depends on it.
func (r *Runner) Section5FullText() (*Figure, error) {
	fig4a, err := r.Fig4a()
	if err != nil {
		return nil, err
	}
	hail200GB := -1.0
	for _, s := range fig4a.Series {
		if s.Label == "HAIL" {
			hail200GB = s.Points[3].Seconds // 3 indexes
		}
	}
	// Full-text indexing 20 GB on the same 10-node cluster: tokenization
	// + postings materialization sustain ~1 MB/s/node end to end
	// (Twitter's reported pipeline, [15]).
	const fullTextMBpsPerNode = 0.96
	fullText20GB := 20e3 / (fullTextMBpsPerNode * float64(r.Nodes))
	return &Figure{
		ID:    "Section5FullText",
		Title: "Related work: full-text index on 20GB vs HAIL upload+3 indexes on 200GB",
		Unit:  "s",
		Series: []Series{
			{Label: "full-text [15]", Points: []Point{{"20GB index only", fullText20GB}}},
			{Label: "HAIL", Points: []Point{{"200GB upload+index", hail200GB}}},
		},
	}, nil
}
