package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/workload"
)

// ExpVector measures the vectorized streaming scan pipeline against the
// legacy row-at-a-time path — the one experiment whose numbers are real
// wall-clock throughput, not cost-model seconds: the batch pipeline's win
// is decode/filter CPU, which the simulator does not model. Each query
// runs both paths single-threaded, `repeats` times, taking the fastest
// run (the standard way to suppress scheduler noise in micro-benchmarks);
// before timing, both paths' outputs are verified byte-identical in
// order, with identical I/O stats — the same guarantee
// ExpCache/ExpDispatch/ExpLifecycle gate end to end, here gated at its
// source — and with distinct cache signatures: RowPath is cache-key
// material (sigflow's rule), so the row path must sign "rowpath|..."
// while the batch path keeps the query's own signature.

// VectorQuery is one query's A/B measurement.
type VectorQuery struct {
	Name  string
	Query string // normalized signature (batch path's, the unprefixed one)
	// Rows is the per-run scanned row count; OutRows the emitted records.
	Rows    int64
	OutRows int
	// RowSeconds/BatchSeconds are the fastest single-threaded wall-clock
	// runs of the legacy and vectorized paths.
	RowSeconds   float64
	BatchSeconds float64
	// RowRecPerSec/BatchRecPerSec are scanned records per second.
	RowRecPerSec   float64
	BatchRecPerSec float64
	// MBPerSec is the batch path's data throughput (measured BytesRead
	// over its fastest run).
	MBPerSec float64
	// Speedup is RowSeconds / BatchSeconds.
	Speedup float64
	// Batches is the batch count the vectorized path emitted per run.
	Batches int64
}

// VectorReport is the full result of the vectorized-scan experiment.
type VectorReport struct {
	Workload   Workload
	Repeats    int
	Queries    []VectorQuery
	MinSpeedup float64
}

// vectorBenchQueries picks the A/B query set: a selective full scan (no
// usable index — every row flows through the kernels), a selective index
// scan (the kernels run over the index-narrowed range), and a wide
// no-filter materialization (late-materialization cost dominated).
func vectorBenchQueries(w Workload) []struct {
	name string
	q    *query.Query
} {
	scan := adaptiveQuery(w)
	var indexed *query.Query
	if w == UserVisits {
		indexed = workload.BobQueries()[4].Query // @4 between(1,100), 20%
	} else {
		indexed = workload.SynQueries()[0].Query // @1 between(0,99), wide proj
	}
	return []struct {
		name string
		q    *query.Query
	}{
		{"scan-sel", scan},
		{"index-sel", indexed},
		{"wide-scan", &query.Query{}},
	}
}

// ExpVector runs the vectorized-vs-row A/B on the HAIL fixture. repeats
// ≤ 0 selects 3.
func (r *Runner) ExpVector(w Workload, repeats int) (*VectorReport, error) {
	if repeats <= 0 {
		repeats = 3
	}
	f, err := r.fixture(w, HAIL)
	if err != nil {
		return nil, err
	}
	rep := &VectorReport{Workload: w, Repeats: repeats, MinSpeedup: -1}

	for _, bq := range vectorBenchQueries(w) {
		input := func(rowPath bool) *core.InputFormat {
			return &core.InputFormat{
				Cluster: f.cluster, Query: bq.q,
				Splitting: true, SplitsPerNode: SplitsPerNodePaper,
				RowPath: rowPath,
			}
		}
		run := func(rowPath bool) (*mapred.JobResult, float64, error) {
			e := &mapred.Engine{Cluster: f.cluster, Parallelism: 1}
			start := time.Now()
			res, err := e.Run(&mapred.Job{
				Name: "vector-" + bq.name, File: f.file,
				Input: input(rowPath), Map: workload.PassthroughMap,
			})
			return res, time.Since(start).Seconds(), err
		}

		// Equivalence gate before any timing: output byte-identical in
		// order, stats identical up to the batch-only counters. The
		// signatures must differ — RowPath is cache-key material, so the
		// two paths may never share cache entries even though their
		// outputs are (tested-)equivalent; the batch path keeps the
		// query's own signature so existing keys are unchanged.
		rowRes, rowSec, err := run(true)
		if err != nil {
			return nil, err
		}
		batchRes, batchSec, err := run(false)
		if err != nil {
			return nil, err
		}
		sa, _ := input(true).QuerySignature()
		sb, _ := input(false).QuerySignature()
		if sa == sb {
			return nil, fmt.Errorf("vector: %s: RowPath not cache-keyed: both paths sign %q", bq.name, sb)
		}
		if sb != bq.q.Signature() {
			return nil, fmt.Errorf("vector: %s: batch signature drifted from the query's own: %q vs %q", bq.name, sb, bq.q.Signature())
		}
		if len(rowRes.Output) != len(batchRes.Output) {
			return nil, fmt.Errorf("vector: %s: row path emitted %d records, batch path %d",
				bq.name, len(rowRes.Output), len(batchRes.Output))
		}
		for i := range rowRes.Output {
			if rowRes.Output[i] != batchRes.Output[i] {
				return nil, fmt.Errorf("vector: %s: output %d differs between paths", bq.name, i)
			}
		}
		rs, bs := rowRes.TotalStats(), batchRes.TotalStats()
		rsN, bsN := rs, bs
		rsN.RowsScanned, rsN.RowsSelected, rsN.BatchesEmitted = 0, 0, 0
		bsN.RowsScanned, bsN.RowsSelected, bsN.BatchesEmitted = 0, 0, 0
		if rsN != bsN {
			return nil, fmt.Errorf("vector: %s: stats diverge between paths:\nrow:   %+v\nbatch: %+v", bq.name, rsN, bsN)
		}

		// Timing: fastest of `repeats` runs per path (the runs above
		// already warmed both; keep their times as candidates).
		for i := 1; i < repeats; i++ {
			if _, s, err := run(true); err != nil {
				return nil, err
			} else if s < rowSec {
				rowSec = s
			}
			if _, s, err := run(false); err != nil {
				return nil, err
			} else if s < batchSec {
				batchSec = s
			}
		}

		vq := VectorQuery{
			Name: bq.name, Query: sb,
			Rows: bs.RecordsScanned, OutRows: len(batchRes.Output),
			RowSeconds: rowSec, BatchSeconds: batchSec,
			Batches: bs.BatchesEmitted,
		}
		if rowSec > 0 {
			vq.RowRecPerSec = float64(rs.RecordsScanned) / rowSec
		}
		if batchSec > 0 {
			vq.BatchRecPerSec = float64(bs.RecordsScanned) / batchSec
			vq.MBPerSec = float64(bs.BytesRead) / batchSec / 1e6
			vq.Speedup = rowSec / batchSec
		}
		if rep.MinSpeedup < 0 || vq.Speedup < rep.MinSpeedup {
			rep.MinSpeedup = vq.Speedup
		}
		rep.Queries = append(rep.Queries, vq)
	}
	return rep, nil
}

// Figure renders the A/B as records-per-second bars plus the speedup.
func (rep *VectorReport) Figure() *Figure {
	fig := &Figure{
		ID:    "FigVector",
		Title: fmt.Sprintf("Vectorized scan pipeline vs row-at-a-time, %s (measured, best of %d)", rep.Workload, rep.Repeats),
		Unit:  "Mrec/s / ×",
	}
	var row, batch, speedup Series
	row.Label = "row [Mrec/s]"
	batch.Label = "batch [Mrec/s]"
	speedup.Label = "speedup [×]"
	for _, q := range rep.Queries {
		row.Points = append(row.Points, Point{q.Name, q.RowRecPerSec / 1e6})
		batch.Points = append(batch.Points, Point{q.Name, q.BatchRecPerSec / 1e6})
		speedup.Points = append(speedup.Points, Point{q.Name, q.Speedup})
	}
	fig.Series = []Series{row, batch, speedup}
	return fig
}

// String renders the figure plus a per-query summary line.
func (rep *VectorReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	for _, q := range rep.Queries {
		fmt.Fprintf(&b, "%s: %d rows in %.1f ms (row) vs %.1f ms (batch), %.2f× — %.1f Mrec/s, %.0f MB/s, %d batches, outputs byte-identical\n",
			q.Name, q.Rows, 1e3*q.RowSeconds, 1e3*q.BatchSeconds, q.Speedup,
			q.BatchRecPerSec/1e6, q.MBPerSec, q.Batches)
	}
	return b.String()
}
