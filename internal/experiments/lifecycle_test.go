package experiments

import (
	"strings"
	"testing"
)

// TestExpLifecycle is the issue's acceptance experiment: the workload
// shifts from column A to column B under one fixed budget, and the
// lifecycle manager's evictions let column B converge to ≥90% index
// scans — the trajectory that was BudgetDenied forever before eviction.
// Equivalence, generation-bump and budget gates live inside ExpLifecycle
// itself (it errors out on any violation); the test pins the shape of the
// reported trajectory.
func TestExpLifecycle(t *testing.T) {
	r := quickRunner()
	rep, err := r.ExpLifecycle(UserVisits, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*5 + 1; len(rep.Jobs) != want {
		t.Fatalf("got %d jobs, want %d (two phases + the convergence probe)", len(rep.Jobs), want)
	}
	if rep.FinalFractionB < LifecycleConvergenceTarget {
		t.Errorf("final column-B coverage %.2f, want ≥ %.2f", rep.FinalFractionB, LifecycleConvergenceTarget)
	}
	if rep.TotalEvicted == 0 {
		t.Error("no evictions — the budget was never binding")
	}
	for _, j := range rep.Jobs {
		switch j.Phase {
		case "colA":
			if j.Evicted != 0 {
				t.Errorf("colA job %d evicted %d replicas; phase A fits the budget by construction", j.Job, j.Evicted)
			}
			if j.Column != rep.ColumnA {
				t.Errorf("colA job %d ran on column %d, want %d", j.Job, j.Column, rep.ColumnA)
			}
		case "colB":
			if j.Column != rep.ColumnB {
				t.Errorf("colB job %d ran on column %d, want %d", j.Job, j.Column, rep.ColumnB)
			}
			if j.BudgetDenied != 0 {
				t.Errorf("colB job %d had %d denials despite eviction", j.Job, j.BudgetDenied)
			}
		default:
			t.Errorf("job %d has unknown phase %q", j.Job, j.Phase)
		}
		if j.ExtraBytes > rep.BudgetBytes*2 {
			t.Errorf("job %d extra bytes %d far exceed budget %d", j.Job, j.ExtraBytes, rep.BudgetBytes)
		}
	}
	// Phase A converged too (same budget, no pressure yet).
	lastA := rep.Jobs[4]
	if lastA.IndexScanFraction < LifecycleConvergenceTarget {
		t.Errorf("phase A ended at %.2f coverage, want ≥ %.2f", lastA.IndexScanFraction, LifecycleConvergenceTarget)
	}
	for _, want := range []string{"FigLifecycle", "workload shift", "evicted", "BudgetDenied forever"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report misses %q:\n%s", want, rep.String())
		}
	}
}

// TestExpLifecycleSynthetic runs the same trajectory on the 19-attribute
// workload — the shift is attr10 → attr9, both never indexed statically.
func TestExpLifecycleSynthetic(t *testing.T) {
	rep, err := quickRunner().ExpLifecycle(Synthetic, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalFractionB < LifecycleConvergenceTarget || rep.TotalEvicted == 0 {
		t.Errorf("Synthetic shift did not converge with evictions: frac %.2f, evicted %d",
			rep.FinalFractionB, rep.TotalEvicted)
	}
}

// TestExpCachePacked is the ROADMAP's -pack-scans mode for the cache
// trajectory: same cold/hot/invalidate sequence, but the dispatched task
// count drops to the per-node split count and the hot job replays whole
// packed splits from the split-level cache.
func TestExpCachePacked(t *testing.T) {
	rep, err := quickRunner().ExpCache(UserVisits, 4, 0, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PackScans {
		t.Fatal("report does not record PackScans")
	}
	cold, hot := rep.Jobs[0], rep.Jobs[1]
	if hot.HitRate < 1.0 {
		t.Errorf("packed hot job hit only %.0f%% of blocks", 100*hot.HitRate)
	}
	if hot.SplitHits == 0 {
		t.Error("packed hot job produced no split-level hits")
	}
	// The dispatch bound falls: tasks are a function of cluster size, not
	// block count.
	if hot.Tasks*4 > rep.TotalBlocks {
		t.Errorf("packed hot job dispatched %d tasks for %d blocks, want ≥4x fewer", hot.Tasks, rep.TotalBlocks)
	}
	if cold.Tasks != hot.Tasks {
		t.Errorf("cold/hot task counts diverged (%d vs %d) on an unchanged topology", cold.Tasks, hot.Tasks)
	}
	// The figure carries the packed mode's tasks series.
	fig := rep.Figure()
	found := false
	for _, s := range fig.Series {
		if s.Label == "tasks" {
			found = true
		}
	}
	if !found {
		t.Error("packed figure has no tasks series")
	}
}
