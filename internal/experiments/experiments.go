// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each ExpXxx method on Runner corresponds to one figure
// or table; the DESIGN.md per-experiment index maps them.
//
// Methodology: the three systems (Hadoop, Hadoop++, HAIL) execute real
// uploads and real MapReduce jobs over a real in-process cluster at laptop
// scale — every result row is genuinely computed — while reported times
// come from the sim cost model fed with the measured byte/seek/record
// counts, scaled to the paper's data sizes (20 GB/node UserVisits,
// 13 GB/node Synthetic, 64 MB blocks, 10–100 nodes).
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hadoop"
	"repro/internal/hdfs"
	"repro/internal/sim"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// System identifies one of the compared systems.
type System int

// The three systems of §6.1.
const (
	Hadoop System = iota
	HadoopPP
	HAIL
)

// String returns the paper's name for the system.
func (s System) String() string {
	switch s {
	case Hadoop:
		return "Hadoop"
	case HadoopPP:
		return "Hadoop++"
	case HAIL:
		return "HAIL"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Point is one bar/cell of a figure: label → simulated seconds.
type Point struct {
	X       string
	Seconds float64
}

// Series is one system's line/bars in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the result of one experiment, printable as the paper's rows.
type Figure struct {
	ID     string // e.g. "Fig4a"
	Title  string
	Unit   string // "s" or "ms"
	Series []Series
}

// String renders the figure as an aligned table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", f.ID, f.Title, f.Unit)
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", "")
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%12s", p.X)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-14s", s.Label)
		for _, p := range s.Points {
			if p.Seconds < 0 {
				fmt.Fprintf(&b, "%12s", "-")
			} else {
				fmt.Fprintf(&b, "%12.1f", p.Seconds)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Paper-scale constants (§6.1–6.2): 10 nodes by default, 20 GB UserVisits
// and 13 GB Synthetic per node, 64 MB blocks.
const (
	UVGBPerNode    = 20.0
	SynGBPerNode   = 13.0
	PaperBlockMB   = 64.0
	paperBlockText = PaperBlockMB * 1e6 * 1.048576 // 64 MiB in bytes
)

// Runner executes experiments. Its knobs trade laptop runtime against
// partition-granularity fidelity: more rows per block means the sparse
// index's 1,024-row partitions resolve selectivities more precisely.
type Runner struct {
	Profile sim.Profile
	// Real-execution sizes.
	UVRows       int // total UserVisits rows generated
	UVBlockRows  int // rows per block (× ~115 B/row = block text size)
	SynRows      int
	SynBlockRows int
	Seed         int64
	Nodes        int // real cluster size (also the simulated node count)
	// AdaptiveBudget caps the adaptive indexer's extra storage in the
	// adaptive, cache and lifecycle experiments (0 = unbounded for the
	// first two; ExpLifecycle auto-sizes a one-column budget instead),
	// mirroring the CLIs' -adaptive-budget flag.
	AdaptiveBudget int64
	// AdaptiveEvict enables the adaptive replica lifecycle manager's
	// eviction policy in ExpAdaptive (ExpLifecycle always runs with it):
	// builds that would exceed the budget retire the coldest adaptive
	// replicas instead of being denied, mirroring -adaptive-evict.
	AdaptiveEvict bool
	// NNShards is the namenode directory shard count for every cluster
	// the Runner creates (0 = hdfs.DefaultShards; 1 = the historical
	// unsharded layout), mirroring the CLIs' -nn-shards flag.
	NNShards int

	mu       sync.Mutex
	fixtures map[string]*fixture
	tracker  clusterTracker
}

// NewRunner returns a Runner with full-fidelity defaults: ~64 partitions
// per block so that index-scan fractions are within ~2% of paper-scale.
func NewRunner() *Runner {
	return &Runner{
		Profile:      sim.Physical,
		UVRows:       640_000,
		UVBlockRows:  64_000,
		SynRows:      640_000,
		SynBlockRows: 64_000,
		Seed:         2012,
		Nodes:        10,
	}
}

// NewQuickRunner returns a Runner sized for tests: small data, fewer
// partitions per block (coarser index pruning, same code paths).
func NewQuickRunner() *Runner {
	r := NewRunner()
	r.UVRows = 40_000
	r.UVBlockRows = 4_000
	r.SynRows = 40_000
	r.SynBlockRows = 4_000
	return r
}

// Workload identifies a benchmark dataset.
type Workload int

// The two datasets of §6.2.
const (
	UserVisits Workload = iota
	Synthetic
)

// String returns the dataset name.
func (w Workload) String() string {
	if w == UserVisits {
		return "UserVisits"
	}
	return "Synthetic"
}

// fixture is one uploaded dataset on one real cluster: the three systems
// each get their own cluster so placement is independent.
type fixture struct {
	workload Workload
	system   System
	cluster  *hdfs.Cluster
	file     string
	lines    []string
	scale    Scale

	// Upload measurements.
	hailSum   core.UploadSummary
	hadoopSum hadoop.UploadSummary
	trojanSum trojan.UploadSummary
	trojanSys *trojan.System
}

func (r *Runner) lines(w Workload) []string {
	if w == UserVisits {
		return workload.GenerateUserVisits(r.UVRows, r.Seed, workload.UserVisitsOptions{
			NeedleEvery: r.UVRows / 12,
		})
	}
	return workload.GenerateSynthetic(r.SynRows, r.Seed)
}

func (r *Runner) blockTextBytes(w Workload, lines []string) int {
	rows := r.UVBlockRows
	if w == Synthetic {
		rows = r.SynBlockRows
	}
	// Average line length × rows per block.
	var total int
	sample := lines
	if len(sample) > 2000 {
		sample = sample[:2000]
	}
	for _, l := range sample {
		total += len(l) + 1
	}
	avg := total / len(sample)
	return avg * rows
}

// hailConfig returns the paper's Bob layout for UserVisits (§6.4.1:
// indexes on visitDate, sourceIP, adRevenue) and attr1/attr2/attr3 for
// Synthetic (only attr1 is ever filtered; §6.2 notes HAIL cannot benefit
// from its other indexes there).
func hailConfig(w Workload, blockSize int) core.LayoutConfig {
	if w == UserVisits {
		return core.LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue},
			BlockSize:   blockSize,
		}
	}
	return core.LayoutConfig{
		Schema:      workload.SyntheticSchema(),
		SortColumns: []int{0, 1, 2},
		BlockSize:   blockSize,
	}
}

// trojanIndexColumn: Hadoop++ gets one index for the whole dataset:
// sourceIP for Bob's workload (§6.4.1), attr1 for Synthetic.
func trojanIndexColumn(w Workload) int {
	if w == UserVisits {
		return workload.UVSourceIP
	}
	return 0
}

func (r *Runner) fixture(w Workload, s System) (*fixture, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := fmt.Sprintf("%d-%d", w, s)
	if r.fixtures == nil {
		r.fixtures = make(map[string]*fixture)
	}
	if f, ok := r.fixtures[key]; ok {
		return f, nil
	}
	lines := r.lines(w)
	blockSize := r.blockTextBytes(w, lines)
	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	f := &fixture{workload: w, system: s, cluster: cluster, file: "/" + w.String(), lines: lines}

	sch := workload.UserVisitsSchema()
	if w == Synthetic {
		sch = workload.SyntheticSchema()
	}
	switch s {
	case Hadoop:
		up := &hadoop.Uploader{Cluster: cluster, BlockSize: blockSize, Replication: 3}
		f.hadoopSum, err = up.Upload(f.file, lines)
		if err != nil {
			return nil, err
		}
		f.scale = r.newScale(w, f.hadoopSum.TextBytes, int64(len(lines)), f.hadoopSum.Blocks)
	case HadoopPP:
		sys := &trojan.System{
			Cluster: cluster, Schema: sch, BlockSize: blockSize,
			Replication: 3, IndexColumn: trojanIndexColumn(w),
		}
		f.trojanSys = sys
		f.trojanSum, err = sys.Upload(f.file, lines)
		if err != nil {
			return nil, err
		}
		f.scale = r.newScale(w, f.trojanSum.Text.TextBytes, f.trojanSum.Rows, f.trojanSum.Blocks)
	case HAIL:
		client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
		f.hailSum, err = client.Upload(f.file, lines)
		if err != nil {
			return nil, err
		}
		f.scale = r.newScale(w, f.hailSum.TextBytes, f.hailSum.Rows, f.hailSum.Blocks)
	}
	r.fixtures[key] = f
	return f, nil
}
