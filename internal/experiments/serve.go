package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/workload"
)

// ExpServe measures the resident query server (haild) under a concurrent
// multi-tenant storm: hundreds of in-flight queries over a hot/cold cache
// mix, all sharing ONE result cache and ONE adaptive indexer, with every
// response checked against an isolated serial reference run.
//
// Phases:
//
//  1. upload the workload and save it as a filesystem directory; compute
//     each query shape's reference rows serially on a private cluster
//     with no cache and no adaptive indexer;
//  2. boot a server.Server over the directory and run the adaptive query
//     serially until it converges to all-index-scan execution, so the
//     storm runs over a static replica topology;
//  3. fire `queries` concurrent POST /query requests over real HTTP —
//     several query shapes, `tenants` tenants, a NoCache cold lane, and
//     mixed splitting/pack-scans knobs — and require every response to be
//     byte-equivalent (as a sorted row multiset) to its reference;
//  4. report latency quantiles from the server's own
//     server.query_seconds obs histogram, plus throughput and the shared
//     cache/indexer counters.
//
// Unlike the simulated figures, the reported milliseconds here are real
// wall-clock numbers on real laptop-scale data — the experiment is about
// the server's concurrency behavior, not paper-scale projection.

// ServeReport is the result of the server storm experiment
// (BENCH_serve.json).
type ServeReport struct {
	Workload    string `json:"workload"`
	Queries     int    `json:"queries"` // successful (HTTP 200) queries
	Tenants     int    `json:"tenants"`
	MaxInFlight int    `json:"max_in_flight"`
	WarmupJobs  int    `json:"warmup_jobs"` // serial adaptive jobs to convergence
	// Mismatches counts storm responses whose sorted rows differed from
	// the serial reference (the run fails unless 0).
	Mismatches int   `json:"mismatches"`
	Rejected   int64 `json:"rejected"`  // 429s (storm sizing should keep this 0)
	Errors     int   `json:"errors"`    // non-200, non-429 responses
	ColdLane   int   `json:"cold_lane"` // NoCache queries in the storm

	// Latency quantiles from the server's own obs histogram
	// (server.query_seconds: execution time of admitted queries).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// QueueWaitP99Ms is the p99 of time spent waiting for an admission
	// slot (server.queue_wait_seconds).
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// ThroughputQPS is successful queries over the storm's wall-clock.
	ThroughputQPS float64 `json:"throughput_qps"`
	WallMs        float64 `json:"wall_ms"`

	// Shared-state counters after the storm.
	CacheHits        int64 `json:"cache_hits"`
	CacheSplitHits   int64 `json:"cache_split_hits"`
	CacheEntries     int   `json:"cache_entries"`
	AdaptiveReplicas int   `json:"adaptive_replicas"`
}

// serveQueries returns the storm's query shapes for a workload: two hot
// selections on statically indexed attributes plus the adaptive-territory
// selection (the attribute the static layout never indexes).
func serveQueries(w Workload) (hot []string, adaptive string) {
	if w == UserVisits {
		return []string{
			`@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`,
			`@HailQuery(filter="@3 between(1995-01-01,1996-06-30)", projection={@1,@4})`,
		}, `@HailQuery(filter="@9 between(100,199)", projection={@1})`
	}
	return []string{
		`@HailQuery(filter="@1 between(0,40000)", projection={@2}) `,
		`@HailQuery(filter="@2 between(0,80000)", projection={@1,@3})`,
	}, `@HailQuery(filter="@10 between(0,1048576)", projection={@1})`
}

// ExpServe runs the storm: `queries` concurrent requests (≥ 16) across
// `tenants` tenants (≥ 1). The returned error is non-nil if any response
// failed or diverged from the serial reference — the report is returned
// alongside for diagnosis.
func (r *Runner) ExpServe(w Workload, queries, tenants int) (*ServeReport, error) {
	if queries < 16 {
		return nil, fmt.Errorf("serve: need at least 16 queries, got %d", queries)
	}
	if tenants < 1 {
		tenants = 1
	}

	// Phase 1: a private fixture. The in-memory cluster computes the
	// serial references; its saved directory is what the server loads —
	// the two share no state, so reference rows cannot be contaminated by
	// the storm's cache entries or adaptive builds.
	lines := r.lines(w)
	blockSize := r.blockTextBytes(w, lines)
	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
	file := "/" + w.String()
	if _, err := client.Upload(file, lines); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "hail-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := cluster.Save(dir); err != nil {
		return nil, err
	}

	hot, adaptiveAnn := serveQueries(w)
	shapes := append(append([]string(nil), hot...), adaptiveAnn)
	sch := workload.UserVisitsSchema()
	if w == Synthetic {
		sch = workload.SyntheticSchema()
	}
	refRows := make(map[string][]string, len(shapes))
	for _, ann := range shapes {
		q, err := query.ParseAnnotation(sch, ann)
		if err != nil {
			return nil, fmt.Errorf("serve: %v", err)
		}
		engine := &mapred.Engine{Cluster: cluster}
		res, err := engine.Run(&mapred.Job{
			Name:  "serve-reference",
			File:  file,
			Input: &core.InputFormat{Cluster: cluster, Query: q},
			Map:   workload.PassthroughMap,
		})
		if err != nil {
			return nil, err
		}
		rows := make([]string, 0, len(res.Output))
		for _, kv := range res.Output {
			rows = append(rows, kv.Key)
		}
		sort.Strings(rows)
		refRows[ann] = rows
	}

	// Phase 2: the server, plus serial adaptive warmup to convergence so
	// the storm measures a steady-state topology.
	const maxInFlight = 32
	srv, err := server.New(server.Config{
		FSDir:        dir,
		NNShards:     r.NNShards,
		MaxInFlight:  maxInFlight,
		QueueTimeout: 2 * time.Minute, // storms queue, they must not 429
		OfferRate:    1.0,
		Parallelism:  2, // many concurrent engines; keep each one narrow
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close() //lint:allow errsink best-effort teardown after the experiment's results are gathered
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(req server.QueryRequest) (*server.QueryResponse, int, error) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode, nil
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return nil, resp.StatusCode, err
		}
		return &qr, resp.StatusCode, nil
	}

	rep := &ServeReport{
		Workload:    w.String(),
		Tenants:     tenants,
		MaxInFlight: maxInFlight,
	}
	for i := 0; i < 20; i++ {
		qr, code, err := post(server.QueryRequest{File: file, Query: adaptiveAnn, Adaptive: true})
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("serve: warmup job %d: status %d, err %v", i, code, err)
		}
		rep.WarmupJobs++
		if qr.FullScans == 0 {
			break
		}
	}

	// Phase 3: the storm. Every request is checked against its reference.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstDiag string
	)
	start := time.Now()
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ann := shapes[i%len(shapes)]
			req := server.QueryRequest{
				Tenant:    fmt.Sprintf("tenant-%d", i%tenants),
				File:      file,
				Query:     ann,
				Splitting: i%2 == 0,
				PackScans: i%3 == 0,
				Adaptive:  ann == adaptiveAnn,
				NoCache:   i%5 == 4, // the cold lane: recompute, don't warm
			}
			qr, code, err := post(req)
			mu.Lock()
			defer mu.Unlock()
			if req.NoCache {
				rep.ColdLane++
			}
			if err != nil || code != http.StatusOK {
				if code == http.StatusTooManyRequests {
					rep.Rejected++
				} else {
					rep.Errors++
				}
				if firstDiag == "" {
					firstDiag = fmt.Sprintf("query %d: status %d, err %v", i, code, err)
				}
				return
			}
			rep.Queries++
			got := append([]string(nil), qr.Rows...)
			sort.Strings(got)
			want := refRows[ann]
			same := len(got) == len(want)
			if same {
				for j := range got {
					if got[j] != want[j] {
						same = false
						break
					}
				}
			}
			if !same {
				rep.Mismatches++
				if firstDiag == "" {
					firstDiag = fmt.Sprintf("query %d (%s): %d rows, want %d", i, ann, len(got), len(want))
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	rep.WallMs = float64(wall) / 1e6
	if wall > 0 {
		rep.ThroughputQPS = float64(rep.Queries) / wall.Seconds()
	}

	// Phase 4: latency from the server's own histograms, shared-state
	// counters from the stack.
	for _, m := range srv.Registry().Snapshot() {
		switch m.Name {
		case "server.query_seconds":
			rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MeanMs = m.P50Ms, m.P95Ms, m.P99Ms, m.MeanMs
		case "server.queue_wait_seconds":
			rep.QueueWaitP99Ms = m.P99Ms
		}
	}
	st := srv.CacheStats()
	rep.CacheHits = st.Hits
	rep.CacheSplitHits = st.SplitHits
	rep.CacheEntries = st.Entries
	rep.AdaptiveReplicas = len(srv.Indexer().Replicas())

	if rep.Mismatches > 0 || rep.Errors > 0 || rep.Rejected > 0 {
		return rep, fmt.Errorf("serve: %d mismatches, %d errors, %d rejected (first: %s)",
			rep.Mismatches, rep.Errors, rep.Rejected, firstDiag)
	}
	return rep, nil
}

// String renders the report as the bench's aligned summary.
func (rep *ServeReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "FigServe — resident server storm [%s, %d tenants, %d in-flight slots]\n",
		rep.Workload, rep.Tenants, rep.MaxInFlight)
	fmt.Fprintf(&b, "  %d queries (%d cold lane) in %.0f ms → %.1f q/s, all byte-equivalent to serial\n",
		rep.Queries, rep.ColdLane, rep.WallMs, rep.ThroughputQPS)
	fmt.Fprintf(&b, "  latency  p50 %.2f ms   p95 %.2f ms   p99 %.2f ms   mean %.2f ms   queue-wait p99 %.2f ms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MeanMs, rep.QueueWaitP99Ms)
	fmt.Fprintf(&b, "  shared state: %d cache hits + %d split hits (%d entries), %d adaptive replicas after %d warmup jobs\n",
		rep.CacheHits, rep.CacheSplitHits, rep.CacheEntries, rep.AdaptiveReplicas, rep.WarmupJobs)
	return b.String()
}
