package experiments

import (
	"strings"
	"testing"
)

// TestExpDispatch runs the packed-vs-unpacked dispatch experiment on
// quick fixtures. The acceptance gates — ≥4x task reduction on both the
// adaptive-job-1 and cache-hot scenarios, byte-equivalent results, and a
// mid-job node kill that re-resolves only the affected blocks — are
// enforced inside ExpDispatch itself; the test additionally pins the
// report's invariants.
func TestExpDispatch(t *testing.T) {
	r := NewQuickRunner()
	rep, err := r.ExpDispatch(UserVisits, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.TaskReduction < 4 {
			t.Errorf("%s: task reduction %.1fx < 4x", sc.Name, sc.TaskReduction)
		}
		if sc.Packed.Rows != sc.Unpacked.Rows {
			t.Errorf("%s: packed returned %d rows, unpacked %d", sc.Name, sc.Packed.Rows, sc.Unpacked.Rows)
		}
		if sc.Unpacked.Tasks != rep.TotalBlocks {
			t.Errorf("%s: unpacked dispatched %d tasks, want one per block (%d)",
				sc.Name, sc.Unpacked.Tasks, rep.TotalBlocks)
		}
		if sc.Packed.Tasks > rep.Nodes*rep.SplitsPerNode {
			t.Errorf("%s: packed dispatched %d tasks, want ≤ %d",
				sc.Name, sc.Packed.Tasks, rep.Nodes*rep.SplitsPerNode)
		}
	}
	hot := rep.Scenarios[1]
	if hot.Packed.HitBlocks != hot.Packed.Blocks {
		t.Errorf("cache-hot packed: %d/%d blocks from cache", hot.Packed.HitBlocks, hot.Packed.Blocks)
	}
	fo := rep.Failover
	if fo.TasksRepacked == 0 {
		t.Error("failover: no task was repacked after the node kill")
	}
	if fo.BlocksRerun > fo.VictimBlocks {
		t.Errorf("failover: %d blocks rerun, victim held only %d", fo.BlocksRerun, fo.VictimBlocks)
	}
	if rep.SplitPhaseNameNodeOps == 0 {
		t.Error("split phase reported zero namenode directory ops")
	}
	s := rep.String()
	for _, want := range []string{"FigDispatch", "adaptive-job1", "cache-hot", "failover:", "namenode directory ops"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
