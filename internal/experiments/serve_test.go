package experiments

import "testing"

func TestExpServeQuick(t *testing.T) {
	r := NewQuickRunner()
	rep, err := r.ExpServe(UserVisits, 64, 4)
	if err != nil {
		t.Fatalf("ExpServe: %v (report: %+v)", err, rep)
	}
	if rep.Queries != 64 {
		t.Errorf("queries = %d, want 64", rep.Queries)
	}
	if rep.Mismatches != 0 || rep.Errors != 0 || rep.Rejected != 0 {
		t.Errorf("storm not clean: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Errorf("bad latency quantiles: p50=%v p99=%v", rep.P50Ms, rep.P99Ms)
	}
	if rep.ThroughputQPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputQPS)
	}
	if rep.CacheHits == 0 && rep.CacheSplitHits == 0 {
		t.Error("storm produced no shared-cache hits")
	}
	if rep.AdaptiveReplicas == 0 {
		t.Error("warmup built no adaptive replicas")
	}
	if rep.ColdLane == 0 {
		t.Error("storm had no cold lane")
	}
}
