package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig8 reproduces the fault-tolerance experiment (§6.4.3): kill one node
// at 50% job progress with a 30 s failure-detection (expiry) interval and
// measure the slowdown for Hadoop, HAIL, and HAIL-1Idx (all replicas
// indexed on the same attribute).
//
// The degraded behaviour is measured for real: a node holding matching-
// index replicas is killed mid-job and the record readers' fallback to
// differently-sorted replicas (full scans) is counted. The slowdown is
// then composed from the cost model:
//
//	T_f = T_b + Expiry + Rebalance + FallbackDisplacement
//
// where Rebalance is the capacity lost for the remaining half of the
// tasks, and FallbackDisplacement charges the extra slot time of the
// tasks that degraded from index scan to full scan.
func (r *Runner) Fig8() (*Figure, error) {
	fig := &Figure{
		ID:    "Fig8",
		Title: "Fault tolerance: one node killed at 50% progress, 30 s expiry (Bob-Q1)",
		Unit:  "s",
	}
	bq := workload.BobQueries()[0]
	slots := float64(r.Nodes * sim.SlotsPerNode)
	aliveSlots := float64((r.Nodes - 1) * sim.SlotsPerNode)

	// --- Hadoop baseline: full scans are replica-agnostic; failure costs
	// detection time plus the lost capacity.
	fHadoop, err := r.fixture(UserVisits, Hadoop)
	if err != nil {
		return nil, err
	}
	resH, err := r.runQuery(fHadoop, bq, false)
	if err != nil {
		return nil, err
	}
	e2eH, _, _ := r.jobTimes(fHadoop, resH, false)
	taskH := r.cost(fHadoop, resH).taskSeconds(1)
	remaining := float64(fHadoop.scale.PaperBlocks) / 2
	rebalanceH := remaining * taskH * (1/aliveSlots - 1/slots)
	slowH := (sim.ExpirySeconds + rebalanceH) / e2eH * 100

	// --- HAIL (three different indexes) and HAIL-1Idx: real kill runs.
	type hailVariant struct {
		label string
		cols  []int
	}
	variants := []hailVariant{
		{"HAIL", []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue}},
		{"HAIL-1Idx", []int{workload.UVVisitDate, workload.UVVisitDate, workload.UVVisitDate}},
	}
	var hailPts, slowPts []Point
	hailPts = append(hailPts, Point{"Hadoop", e2eH})
	slowPts = append(slowPts, Point{"Hadoop", slowH})

	for _, v := range variants {
		e2e, slow, err := r.hailFaultRun(v.cols, bq)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", v.label, err)
		}
		hailPts = append(hailPts, Point{v.label, e2e})
		slowPts = append(slowPts, Point{v.label, slow})
	}
	fig.Series = []Series{
		{Label: "JobRuntime", Points: hailPts},
		{Label: "Slowdown %", Points: slowPts},
	}
	return fig, nil
}

// hailFaultRun builds a fresh HAIL fixture with the given per-replica sort
// columns, measures the healthy run and the cost of the degraded access
// path (a PAX column scan — our fallback reads only the needed columns,
// cheaper than the paper's whole-block "standard Hadoop scanning"), then
// re-runs with a mid-job node kill and composes the degraded time.
func (r *Runner) hailFaultRun(sortCols []int, bq workload.BenchQuery) (e2e, slowdownPct float64, err error) {
	lines := r.lines(UserVisits)
	cluster, err := r.newCluster()
	if err != nil {
		return 0, 0, err
	}
	blockSize := r.blockTextBytes(UserVisits, lines)
	client := &core.Client{Cluster: cluster, Config: core.LayoutConfig{
		Schema:      workload.UserVisitsSchema(),
		SortColumns: sortCols,
		BlockSize:   blockSize,
	}}
	sum, err := client.Upload("/uv-fault", lines)
	if err != nil {
		return 0, 0, err
	}
	f := &fixture{
		workload: UserVisits, system: HAIL, cluster: cluster, file: "/uv-fault",
		scale:   r.newScale(UserVisits, sum.TextBytes, sum.Rows, sum.Blocks),
		hailSum: sum,
	}

	// Healthy run.
	res, err := r.runQuery(f, bq, false)
	if err != nil {
		return 0, 0, err
	}
	e2e, _, _ = r.jobTimes(f, res, false)
	idxTask := r.cost(f, res).taskSeconds(1)

	// Fallback-path cost: the same projection with a same-selectivity
	// filter on a never-indexed attribute forces the PAX column scan a
	// degraded task performs.
	lo, hi := schema.IntVal(1), schema.IntVal(30) // ~3% of duration ∈ [1,999]
	scanQuery := &query.Query{
		Filter:     []query.Predicate{{Column: workload.UVDuration, Lo: &lo, Hi: &hi}},
		Projection: bq.Query.Projection,
	}
	scanBQ := workload.BenchQuery{Name: "fallback-scan", Query: scanQuery}
	resScan, err := r.runQuery(f, scanBQ, false)
	if err != nil {
		return 0, 0, err
	}
	scanTask := r.cost(f, resScan).taskSeconds(1)

	// Kill a node that holds replicas indexed on the filter attribute, at
	// 50% progress, and measure how many blocks degraded to full scans.
	victim := cluster.NameNode().GetHostsWithIndex(sum.BlockIDs[0], bq.Query.Filter[0].Column)[0]
	e := &mapred.Engine{Cluster: cluster, Parallelism: 2}
	var once sync.Once
	var killErr error
	e.OnProgress = func(done, total int) {
		if done >= total/2 {
			once.Do(func() { killErr = cluster.KillNode(victim) })
		}
	}
	resKill, err := e.Run(&mapred.Job{
		Name: bq.Name + "-kill", File: f.file,
		Input: &core.InputFormat{Cluster: cluster, Query: bq.Query},
		Map:   workload.PassthroughMap,
	})
	if err != nil {
		return 0, 0, err
	}
	if killErr != nil {
		// A failed kill means no failover happened and the degradation
		// measurement below would be meaningless.
		return 0, 0, fmt.Errorf("fault: killing node %d failed: %v", victim, killErr)
	}
	st := resKill.TotalStats()
	fallbackFraction := float64(st.FullScans) / float64(st.Blocks)

	slots := float64(r.Nodes * sim.SlotsPerNode)
	aliveSlots := float64((r.Nodes - 1) * sim.SlotsPerNode)
	remaining := float64(f.scale.PaperBlocks) / 2
	rebalance := remaining * idxTask * (1/aliveSlots - 1/slots)
	displacement := fallbackFraction * float64(f.scale.PaperBlocks) *
		(scanTask - idxTask) / aliveSlots
	if displacement < 0 {
		displacement = 0
	}
	slowdownPct = (sim.ExpirySeconds + rebalance + displacement) / e2e * 100
	return e2e, slowdownPct, nil
}
