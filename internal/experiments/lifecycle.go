package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// ExpLifecycle is the adaptive replica lifecycle experiment: the
// evolving-workload story (§4.1) taken one step further than ExpAdaptive.
// Bob's queries first move to column A (never indexed by the static
// layout) and the adaptive indexer converges on it — filling the fixed
// extra-storage budget with column-A replicas. Then the workload shifts
// again, to column B. Before this PR the system was frozen at that point:
// the budget was exhausted, every column-B build was denied, and column B
// paid full scans forever. With the lifecycle manager (heat-tracked
// eviction), each column-B build retires the coldest column-A replicas
// via Cluster.DropReplica — generation bumps and all — and the system
// converges on the new column inside the same budget.
//
// Gates (the experiment errors out on violation):
//   - every job's result is multiset-identical to non-adaptive execution
//     of the same query on the same cluster;
//   - every evicted replica is unregistered from the namenode directory
//     and its block's generation bumped (so no stale cache entry or
//     ghost-replica pin can survive it);
//   - phase B converges to ≥90% index-scan splits on column B within the
//     budget (LifecycleConvergenceTarget);
//   - the extra storage never exceeds the budget by more than one replica
//     (the documented overshoot bound).

// LifecycleConvergenceTarget is the index-scan fraction phase B must
// reach on the shifted-to column.
const LifecycleConvergenceTarget = 0.9

// LifecycleJob is one job of the lifecycle trajectory.
type LifecycleJob struct {
	Job    int
	Phase  string // "colA" or "colB"
	Column int
	// IndexScanFraction is the fraction of blocks with an index-scan
	// split on this job's filter column.
	IndexScanFraction float64
	Seconds           float64
	BuildSeconds      float64
	Built             int
	Evicted           int
	EvictedBytes      int64
	BudgetDenied      int
	// ExtraBytes is the budget consumption after the job.
	ExtraBytes int64
	Rows       int
}

// LifecycleReport is the full result of the lifecycle experiment.
type LifecycleReport struct {
	Workload  Workload
	OfferRate float64
	// BudgetBytes is the fixed extra-storage budget (auto-sized to about
	// 1.25 columns' worth of replicas when the runner sets none).
	BudgetBytes int64
	TotalBlocks int
	ColumnA     int
	ColumnB     int
	Jobs        []LifecycleJob
	// Totals over phase B — the churn the eviction policy unlocked.
	TotalEvicted      int
	TotalEvictedBytes int64
	FinalFractionB    float64
	// NameNode is the run's per-shard directory-operation spread.
	NameNode ShardStats `json:"namenode_shards"`
}

// lifecycleQueries returns the two-phase workload: phase A is the
// adaptive experiment's query (a never-indexed attribute), phase B
// filters on a second attribute the static layout also never indexes.
func lifecycleQueries(w Workload) (qa, qb *query.Query, colA, colB int) {
	qa = adaptiveQuery(w)
	if w == UserVisits {
		return qa, &query.Query{
			Filter: []query.Predicate{
				query.Between(workload.UVSearchWord, schema.StringVal("h"), schema.StringVal("n")),
			},
			Projection: []int{workload.UVSourceIP},
		}, workload.UVDuration, workload.UVSearchWord
	}
	return qa, &query.Query{
		Filter:     []query.Predicate{query.Between(8, schema.IntVal(0), schema.IntVal(1<<20))},
		Projection: []int{0},
	}, 9, 8
}

// ExpLifecycle runs jobsPerPhase jobs on column A, then jobsPerPhase jobs
// on column B, under one fixed budget with eviction enabled. offerRate 0
// selects adaptive.DefaultOfferRate; a zero runner AdaptiveBudget
// auto-sizes the budget to ~1.25 columns of adaptive replicas, the shape
// that forces phase B to evict.
func (r *Runner) ExpLifecycle(w Workload, jobsPerPhase int, offerRate float64) (*LifecycleReport, error) {
	if jobsPerPhase < 2 {
		return nil, fmt.Errorf("lifecycle: need at least two jobs per phase, got %d", jobsPerPhase)
	}

	// Fresh fixture: the lifecycle mutates the cluster heavily.
	lines := r.lines(w)
	blockSize := r.blockTextBytes(w, lines)
	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
	f := &fixture{workload: w, system: HAIL, cluster: cluster, file: "/" + w.String(), lines: lines}
	f.hailSum, err = client.Upload(f.file, lines)
	if err != nil {
		return nil, err
	}
	f.scale = r.newScale(w, f.hailSum.TextBytes, f.hailSum.Rows, f.hailSum.Blocks)

	nn := cluster.NameNode()
	blocks, err := nn.FileBlocks(f.file)
	if err != nil {
		return nil, err
	}
	qa, qb, colA, colB := lifecycleQueries(w)

	// Non-adaptive references for both phases, computed before any
	// conversion mutates the cluster.
	reference := func(q *query.Query) (map[string]int, error) {
		e := &mapred.Engine{Cluster: cluster}
		res, err := e.Run(&mapred.Job{
			Name: "lifecycle-reference", File: f.file,
			Input: &core.InputFormat{
				Cluster: cluster, Query: q,
				Splitting: true, SplitsPerNode: SplitsPerNodePaper,
			},
			Map: workload.PassthroughMap,
		})
		if err != nil {
			return nil, err
		}
		return multiset(res.Output), nil
	}
	refA, err := reference(qa)
	if err != nil {
		return nil, err
	}
	refB, err := reference(qb)
	if err != nil {
		return nil, err
	}

	// Budget: the runner's explicit cap, or ~1.25 columns' worth of
	// adaptive replicas (one stored replica per block, measured from
	// block 0).
	budget := r.AdaptiveBudget
	if budget <= 0 {
		data, _, err := cluster.ReadBlockAny(blocks[0], 0)
		if err != nil {
			return nil, err
		}
		budget = int64(float64(len(data)) * float64(len(blocks)) * 1.25)
	}

	idx := adaptive.New(cluster, offerRate)
	idx.SetBudgetBytes(budget)
	idx.SetEvict(true)
	engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask}

	rep := &LifecycleReport{
		Workload:    w,
		OfferRate:   idx.EffectiveOfferRate(),
		BudgetBytes: budget,
		TotalBlocks: f.scale.RealBlocks,
		ColumnA:     colA,
		ColumnB:     colB,
	}

	runPhase := func(phase string, q *query.Query, ref map[string]int, count int) error {
		for j := 0; j < count; j++ {
			gensBefore := make(map[hdfs.BlockID]uint64, len(blocks))
			for _, b := range blocks {
				gensBefore[b] = nn.Generation(b)
			}
			jobNo := len(rep.Jobs) + 1
			res, err := engine.Run(&mapred.Job{
				Name: fmt.Sprintf("lifecycle-%s-%d", phase, jobNo), File: f.file,
				Input: &core.InputFormat{
					Cluster: cluster, Query: q, Adaptive: idx,
					Splitting: true, SplitsPerNode: SplitsPerNodePaper,
				},
				Map: workload.PassthroughMap,
			})
			if err != nil {
				return err
			}
			if err := idx.LastErr(); err != nil {
				return err
			}
			if !sameMultiset(multiset(res.Output), ref) {
				return fmt.Errorf("lifecycle: %s job %d diverged from non-adaptive execution", phase, jobNo)
			}
			plan := idx.LastJob()
			// Gate: every eviction left the directory consistent and
			// bumped the block's generation — the property that keeps
			// caches and split pinning honest. The freed node may
			// legitimately host a *new* replica of the same block later
			// in the job (pickFreeNode reuses it), so the check is
			// column-precise: what must be gone is the evicted column's
			// indexed replica at that node.
			for _, ev := range plan.EvictedReplicas {
				if info, ok := nn.ReplicaInfo(ev.Block, ev.Node); ok && info.HasIndex && info.SortColumn == ev.Column {
					return fmt.Errorf("lifecycle: evicted replica (%d,%d,@%d) still registered", ev.Block, ev.Node, ev.Column+1)
				}
				if g := nn.Generation(ev.Block); g <= gensBefore[ev.Block] {
					return fmt.Errorf("lifecycle: eviction of block %d did not bump its generation", ev.Block)
				}
			}
			// Gate: the budget holds (one-replica overshoot allowed).
			if extra := idx.ExtraBytes(); extra > budget+int64(blockSize)*2 {
				return fmt.Errorf("lifecycle: extra storage %d far exceeds budget %d", extra, budget)
			}

			e2e, _ := r.adaptiveJobTimes(f, res, plan)
			build := r.adaptiveBuildSeconds(f, plan)
			frac := 0.0
			if plan.Indexed+plan.Missing > 0 {
				frac = float64(plan.Indexed) / float64(plan.Indexed+plan.Missing)
			}
			rep.Jobs = append(rep.Jobs, LifecycleJob{
				Job: jobNo, Phase: phase, Column: plan.Column,
				IndexScanFraction: frac,
				Seconds:           e2e + build, BuildSeconds: build,
				Built: plan.Built, Evicted: plan.Evicted,
				EvictedBytes: plan.EvictedBytes, BudgetDenied: plan.BudgetDenied,
				ExtraBytes: idx.ExtraBytes(), Rows: len(res.Output),
			})
			if phase == "colB" {
				rep.TotalEvicted += plan.Evicted
				rep.TotalEvictedBytes += plan.EvictedBytes
			}
		}
		return nil
	}

	if err := runPhase("colA", qa, refA, jobsPerPhase); err != nil {
		return nil, err
	}
	if err := runPhase("colB", qb, refB, jobsPerPhase); err != nil {
		return nil, err
	}

	// Convergence gate: a job's reported coverage predates its own
	// builds, so one more observed job measures where phase B landed.
	if err := runPhase("colB", qb, refB, 1); err != nil {
		return nil, err
	}
	last := rep.Jobs[len(rep.Jobs)-1]
	rep.FinalFractionB = last.IndexScanFraction
	if rep.FinalFractionB < LifecycleConvergenceTarget {
		return nil, fmt.Errorf("lifecycle: column B converged to only %.0f%% index scans (want ≥%.0f%%) — eviction failed to reclaim budget",
			100*rep.FinalFractionB, 100*LifecycleConvergenceTarget)
	}
	if rep.TotalEvicted == 0 {
		return nil, fmt.Errorf("lifecycle: phase B converged without evicting anything — the budget was never binding")
	}
	rep.NameNode = shardStatsOf(cluster)
	return rep, nil
}

// Figure renders the trajectory: runtime, per-column index-scan coverage
// and eviction churn per job.
func (rep *LifecycleReport) Figure() *Figure {
	fig := &Figure{
		ID: "FigLifecycle",
		Title: fmt.Sprintf("Adaptive replica lifecycle, %s (budget %.1f MB, col @%d → col @%d)",
			rep.Workload, float64(rep.BudgetBytes)/1e6, rep.ColumnA+1, rep.ColumnB+1),
		Unit: "s / %",
	}
	var runtime, frac, built, evicted Series
	runtime.Label = "runtime [s]"
	frac.Label = "idx splits [%]"
	built.Label = "blocks built"
	evicted.Label = "evicted"
	for _, j := range rep.Jobs {
		x := fmt.Sprintf("%s-j%d", j.Phase, j.Job)
		runtime.Points = append(runtime.Points, Point{x, j.Seconds})
		frac.Points = append(frac.Points, Point{x, 100 * j.IndexScanFraction})
		built.Points = append(built.Points, Point{x, float64(j.Built)})
		evicted.Points = append(evicted.Points, Point{x, float64(j.Evicted)})
	}
	fig.Series = []Series{runtime, frac, built, evicted}
	return fig
}

// String renders the report plus the shift-convergence summary.
func (rep *LifecycleReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	fmt.Fprintf(&b, "workload shift @%d → @%d converged to %.0f%% index scans on the new column inside a %.1f MB budget: %d cold replicas (%.1f MB) evicted — pre-lifecycle this was BudgetDenied forever\n",
		rep.ColumnA+1, rep.ColumnB+1, 100*rep.FinalFractionB,
		float64(rep.BudgetBytes)/1e6, rep.TotalEvicted, float64(rep.TotalEvictedBytes)/1e6)
	fmt.Fprintf(&b, "%s\n", rep.NameNode)
	return b.String()
}
