package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ExpObs runs the benchmark query set with the observability layer fully
// wired — per-query trace, process metrics registry, namenode gauges —
// and reports the task-latency distribution each query's registry
// histograms recorded. Three gates run before anything is reported:
//
//  1. Equivalence: every traced run's output is byte-identical to the
//     same query executed with observability disabled (the layer must
//     not change execution).
//  2. Trace validity: the span tree validates — every span closed
//     exactly once, children nested, timestamps monotonic.
//  3. Coverage: the root span accounts for ≥90% of the measured
//     wall-clock, and its phase children for ≥85% of the root — the
//     trace explains the run rather than sampling it.

// ObsQuery is one query's observed run.
type ObsQuery struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	Tasks int    `json:"tasks"`
	Spans int    `json:"spans"`
	// Task-latency quantiles from the registry's engine.task_seconds
	// histogram (milliseconds; bucket upper bounds).
	TaskP50Ms float64 `json:"task_p50_ms"`
	TaskP95Ms float64 `json:"task_p95_ms"`
	TaskP99Ms float64 `json:"task_p99_ms"`
	// WaitP99Ms is the p99 of time tasks spent queued before a worker
	// picked them up.
	WaitP99Ms float64 `json:"wait_p99_ms"`
	// WallMs is the measured wall-clock of the traced run; RootCoverage
	// is root-span duration / wall-clock, PhaseCoverage the sum of the
	// root's direct phase children / root-span duration.
	WallMs        float64 `json:"wall_ms"`
	RootCoverage  float64 `json:"root_coverage"`
	PhaseCoverage float64 `json:"phase_coverage"`
}

// ObsReport is the full result of the observability experiment: one entry
// per benchmark query plus the final registry snapshot.
type ObsReport struct {
	Workload Workload     `json:"-"`
	Queries  []ObsQuery   `json:"queries"`
	Metrics  []obs.Metric `json:"metrics"`
}

// ExpObs runs the observability experiment on the HAIL fixture.
func (r *Runner) ExpObs(w Workload) (*ObsReport, error) {
	f, err := r.fixture(w, HAIL)
	if err != nil {
		return nil, err
	}
	rep := &ObsReport{Workload: w}
	reg := obs.NewRegistry()
	f.cluster.NameNode().BindObs(reg)

	for _, bq := range vectorBenchQueries(w) {
		input := &core.InputFormat{
			Cluster: f.cluster, Query: bq.q,
			Splitting: true, SplitsPerNode: SplitsPerNodePaper,
		}
		sig, _ := input.QuerySignature()

		// Reference run, observability disabled: the equivalence baseline.
		base := &mapred.Engine{Cluster: f.cluster}
		baseRes, err := base.Run(&mapred.Job{
			Name: "obs-base-" + bq.name, File: f.file,
			Input: input, Map: workload.PassthroughMap,
		})
		if err != nil {
			return nil, err
		}

		// Per-query histograms need a per-query registry; the process-wide
		// one (reg) accumulates across queries for the final snapshot.
		qreg := obs.NewRegistry()
		tr := obs.NewTrace("obs-" + bq.name)
		e := &mapred.Engine{Cluster: f.cluster, Obs: qreg}
		start := time.Now()
		res, err := e.Run(&mapred.Job{
			Name: "obs-" + bq.name, File: f.file,
			Input: input, Map: workload.PassthroughMap,
			Trace: tr,
		})
		wall := time.Since(start)
		if err != nil {
			return nil, err
		}

		// Gate 1: byte-identical to the unobserved run.
		if len(res.Output) != len(baseRes.Output) {
			return nil, fmt.Errorf("obs: %s: traced run emitted %d records, baseline %d",
				bq.name, len(res.Output), len(baseRes.Output))
		}
		for i := range res.Output {
			if res.Output[i] != baseRes.Output[i] {
				return nil, fmt.Errorf("obs: %s: output %d differs from the unobserved run", bq.name, i)
			}
		}
		if res.TotalStats() != baseRes.TotalStats() {
			return nil, fmt.Errorf("obs: %s: stats diverge from the unobserved run:\nbase:   %+v\ntraced: %+v",
				bq.name, baseRes.TotalStats(), res.TotalStats())
		}

		// Gate 2: structural validity.
		if err := tr.Validate(); err != nil {
			return nil, err
		}

		// Gate 3: coverage. Span 0 is the run root; its direct children are
		// the contiguous phases.
		spans := tr.SpanInfos()
		if len(spans) == 0 || spans[0].Name != "run" {
			return nil, fmt.Errorf("obs: %s: trace has no run root", bq.name)
		}
		rootDur := spans[0].Dur()
		var phaseSum time.Duration
		for _, s := range spans[1:] {
			if s.Parent == 0 {
				phaseSum += s.Dur()
			}
		}
		rootCov := float64(rootDur) / float64(wall)
		phaseCov := float64(phaseSum) / float64(rootDur)
		if rootCov < 0.9 {
			return nil, fmt.Errorf("obs: %s: root span covers %.0f%% of wall-clock, want ≥90%%", bq.name, 100*rootCov)
		}
		if phaseCov < 0.85 {
			return nil, fmt.Errorf("obs: %s: phase spans cover %.0f%% of the root, want ≥85%%", bq.name, 100*phaseCov)
		}

		h := qreg.Histogram("engine.task_seconds")
		wait := qreg.Histogram("engine.task_wait_seconds")
		q := ObsQuery{
			Name: bq.name, Query: sig,
			Tasks: len(res.Tasks), Spans: len(spans),
			TaskP50Ms:     1e3 * h.Quantile(0.5).Seconds(),
			TaskP95Ms:     1e3 * h.Quantile(0.95).Seconds(),
			TaskP99Ms:     1e3 * h.Quantile(0.99).Seconds(),
			WaitP99Ms:     1e3 * wait.Quantile(0.99).Seconds(),
			WallMs:        1e3 * wall.Seconds(),
			RootCoverage:  rootCov,
			PhaseCoverage: phaseCov,
		}
		if q.TaskP50Ms <= 0 || q.TaskP99Ms <= 0 {
			return nil, fmt.Errorf("obs: %s: degenerate task-latency quantiles (p50=%.3f p99=%.3f)", bq.name, q.TaskP50Ms, q.TaskP99Ms)
		}
		rep.Queries = append(rep.Queries, q)

		// Fold the per-query counters into the process-wide registry so the
		// snapshot reflects the whole run.
		for _, m := range qreg.Snapshot() {
			if m.Kind == "counter" {
				reg.Counter(m.Name).Add(m.Value)
			}
		}
	}
	rep.Metrics = reg.Snapshot()
	return rep, nil
}

// Figure renders the per-query task-latency quantiles.
func (rep *ObsReport) Figure() *Figure {
	fig := &Figure{
		ID:    "FigObs",
		Title: fmt.Sprintf("Observed task-latency distribution, %s (measured)", rep.Workload),
		Unit:  "ms",
	}
	var p50, p95, p99 Series
	p50.Label = "task p50 [ms]"
	p95.Label = "task p95 [ms]"
	p99.Label = "task p99 [ms]"
	for _, q := range rep.Queries {
		p50.Points = append(p50.Points, Point{q.Name, q.TaskP50Ms})
		p95.Points = append(p95.Points, Point{q.Name, q.TaskP95Ms})
		p99.Points = append(p99.Points, Point{q.Name, q.TaskP99Ms})
	}
	fig.Series = []Series{p50, p95, p99}
	return fig
}

// String renders the figure plus per-query coverage lines.
func (rep *ObsReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	for _, q := range rep.Queries {
		fmt.Fprintf(&b, "%s: %d tasks, %d spans, %.1f ms wall — root covers %.0f%%, phases %.0f%%, outputs byte-identical to unobserved run\n",
			q.Name, q.Tasks, q.Spans, q.WallMs, 100*q.RootCoverage, 100*q.PhaseCoverage)
	}
	return b.String()
}
