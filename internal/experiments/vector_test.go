package experiments

import (
	"strings"
	"testing"
)

// TestExpVectorEquivalence runs the vectorized-vs-row A/B on the quick
// fixture. The experiment itself is the gate — it errors out if the two
// paths' outputs, stats, or signatures diverge on any query — so the
// test mostly asserts the report's shape. Throughput ratios are asserted
// in BenchmarkFigVector, not here: a loaded CI machine can make a
// wall-clock ratio flaky, while divergence is deterministic.
func TestExpVectorEquivalence(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	rep, err := r.ExpVector(UserVisits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != 3 {
		t.Fatalf("got %d queries, want 3", len(rep.Queries))
	}
	for _, q := range rep.Queries {
		if q.Rows == 0 {
			t.Errorf("%s: no rows scanned", q.Name)
		}
		if q.RowSeconds <= 0 || q.BatchSeconds <= 0 || q.Speedup <= 0 {
			t.Errorf("%s: timing not populated: %+v", q.Name, q)
		}
		if q.Batches == 0 && q.OutRows > 0 {
			t.Errorf("%s: %d output rows but no batches recorded", q.Name, q.OutRows)
		}
	}
	if rep.Queries[2].Name != "wide-scan" || rep.Queries[2].OutRows == 0 {
		t.Errorf("full-scan query emitted nothing: %+v", rep.Queries[2])
	}
	if rep.MinSpeedup <= 0 {
		t.Errorf("MinSpeedup not populated: %v", rep.MinSpeedup)
	}
	out := rep.String()
	for _, want := range []string{"FigVector", "scan-sel", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
