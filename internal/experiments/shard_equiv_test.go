package experiments

import (
	"encoding/json"
	"testing"
)

// Sharded-directory equivalence: the full ExpAdaptive and ExpCache
// pipelines — uploads, splits, adaptive conversions, cache invalidations
// and the cost model — must produce byte-identical reports whether the
// namenode directory runs as a single map (NNShards=1, the historical
// layout) or fully sharded. Everything in the pipeline is deterministic,
// so any divergence is a sharding bug (lost update, reordered GetHosts,
// double-fired hook).

// reportJSON marshals a report with its shard-stats field zeroed — the
// contention counters legitimately differ between shard layouts; all
// observable results must not.
func reportJSON(t *testing.T, rep interface{ clearShardStats() }) []byte {
	t.Helper()
	rep.clearShardStats()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func (rep *AdaptiveReport) clearShardStats() { rep.NameNode = ShardStats{} }
func (rep *CacheReport) clearShardStats()    { rep.NameNode = ShardStats{} }

func TestExpAdaptiveShardEquivalence(t *testing.T) {
	skipIfShort(t)
	run := func(shards int) []byte {
		r := quickRunner()
		r.NNShards = shards
		rep, err := r.ExpAdaptive(Synthetic, 4, 0.5)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return reportJSON(t, rep)
	}
	unsharded := run(1)
	for _, shards := range []int{8, 16} {
		if got := run(shards); string(got) != string(unsharded) {
			t.Errorf("ExpAdaptive report at %d shards diverged from unsharded:\n%s\nvs\n%s",
				shards, got, unsharded)
		}
	}
}

func TestExpCacheShardEquivalence(t *testing.T) {
	skipIfShort(t)
	run := func(shards int) []byte {
		r := quickRunner()
		r.NNShards = shards
		rep, err := r.ExpCache(UserVisits, 4, 0, 0.5, false)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return reportJSON(t, rep)
	}
	unsharded := run(1)
	if got := run(8); string(got) != string(unsharded) {
		t.Errorf("ExpCache report at 8 shards diverged from unsharded:\n%s\nvs\n%s", got, unsharded)
	}
}

// TestShardSpreadBound is the acceptance bound: at 8 shards on the
// synthetic workload no shard absorbs more than 40% of directory
// operations.
func TestShardSpreadBound(t *testing.T) {
	r := quickRunner()
	r.NNShards = 8
	rep, err := r.ExpAdaptive(Synthetic, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.NameNode
	if st.Shards != 8 || len(st.Ops) != 8 {
		t.Fatalf("shard stats = %+v, want 8 shards", st)
	}
	if st.TotalOps == 0 {
		t.Fatal("no directory operations counted")
	}
	if st.MaxShare > 0.40 {
		t.Errorf("busiest shard absorbed %.0f%% of %d directory ops (>40%%): %v",
			100*st.MaxShare, st.TotalOps, st.Ops)
	}
}
