package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/qcache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExpDispatch measures what scan-split packing buys on the two workloads
// the ROADMAP called dispatch-bound end to end:
//
//   - adaptive job 1: the first job of a LIAH-style sequence filters on
//     an attribute no replica is indexed on, so every block is a
//     full-scan split — thousands of near-empty map tasks at paper scale;
//   - cache-hot jobs: a repeated query whose blocks all hit the
//     block-level result cache does ~zero map work per block, leaving
//     per-task dispatch as the entire runtime.
//
// Each scenario runs unpacked (per-block scan splits) and packed
// (`-pack-scans`: blocks grouped by preferred alive replica node,
// SplitsPerNode splits per node) on the same fixture, gated on result
// equivalence: the packed output must be byte-identical to the unpacked
// output after canonical (sorted) ordering — the multiset of rows is
// compared exactly. A final failover phase kills a packed split's pinned
// node mid-job and verifies the job completes with only the affected
// blocks re-resolved (mapred.Split.Fallback), never by rescanning whole
// splits elsewhere.

// DispatchRun is one measured job execution of the experiment.
type DispatchRun struct {
	Packed bool
	// Tasks is the real dispatched map-task count; PaperTasks the task
	// count at paper scale (per-block tasks scale with data, packed tasks
	// are a function of cluster size and stay fixed).
	Tasks      int
	PaperTasks float64
	Blocks     int
	HitBlocks  int // blocks answered from the result cache
	// Seconds is simulated end-to-end runtime, WorkSeconds its
	// slot-parallel map-work component (the gap between them is the
	// dispatch bound packing removes).
	Seconds     float64
	WorkSeconds float64
	Rows        int
}

// DispatchScenario pairs the unpacked and packed runs of one workload
// shape.
type DispatchScenario struct {
	Name     string // "adaptive-job1" or "cache-hot"
	Unpacked DispatchRun
	Packed   DispatchRun
	// TaskReduction is Unpacked.Tasks / Packed.Tasks on the real runs —
	// the dispatch-count headline.
	TaskReduction float64
	Speedup       float64 // Unpacked.Seconds / Packed.Seconds
}

// DispatchFailover reports the packed-split failover phase: a pinned node
// killed at ~50% job progress.
type DispatchFailover struct {
	Victim hdfs.NodeID
	// VictimBlocks is how many blocks were pinned to the victim at split
	// time — the upper bound on legitimate re-execution.
	VictimBlocks int
	// TasksRepacked is the number of tasks whose split was re-resolved via
	// Split.Fallback; BlocksRerun the block executions repeated. The gate
	// requires BlocksRerun ≤ VictimBlocks: a node loss re-resolves only
	// the affected blocks.
	TasksRepacked int
	BlocksRerun   int
	ReExecuted    int // task attempts lost and retried
	Rows          int
}

// DispatchReport is the full result of the dispatch experiment.
type DispatchReport struct {
	Workload      Workload
	TotalBlocks   int
	Nodes         int
	SplitsPerNode int
	CacheBudget   int64
	Scenarios     []DispatchScenario
	Failover      DispatchFailover
	// NameNode is the run's per-shard directory-operation spread.
	NameNode ShardStats `json:"namenode_shards"`
	// SplitPhaseNameNodeOps is the packed run's split-phase directory
	// lookup count (mapred.TaskStats.NameNodeOps) — the metadata cost the
	// split phase pays instead of block-header reads (§6.4.1).
	SplitPhaseNameNodeOps int
}

// dispatchBlockRows sizes the experiment's fixture: packing's win is
// blocks / (nodes × SplitsPerNode), so the fixture needs many more blocks
// than packing slots — 1/16th of the standard block rows gives 160 blocks
// at both quick and full fidelity.
func (r *Runner) dispatchBlockRows(w Workload) int {
	rows := r.UVBlockRows
	if w == Synthetic {
		rows = r.SynBlockRows
	}
	rows /= 16
	if rows < 250 {
		rows = 250
	}
	return rows
}

// dispatchBlockSize converts dispatchBlockRows into a text block size for
// the given workload's lines — shared by ExpDispatch and ExpCache's
// packed mode.
func (r *Runner) dispatchBlockSize(w Workload, lines []string) int {
	avg := 0
	sample := lines
	if len(sample) > 2000 {
		sample = sample[:2000]
	}
	for _, l := range sample {
		avg += len(l) + 1
	}
	avg /= len(sample)
	return avg * r.dispatchBlockRows(w)
}

// dispatchJobTimes is the cost model for a mixed per-block/packed job:
// per-block tasks scale with the paper-scale block count, packed tasks
// stay at their measured count (they depend on cluster size, not data
// size) — the same decomposition adaptiveJobTimes uses, driven by the
// actual split composition of the measured run.
func (r *Runner) dispatchJobTimes(f *fixture, res *mapred.JobResult) (e2e, workSeconds, paperTasks float64) {
	c := r.cost(f, res)
	p := r.Profile
	paperBlocks := float64(f.scale.PaperBlocks)
	singles, packed := 0, 0
	for _, t := range res.Tasks {
		if len(t.Split.Blocks) > 1 {
			packed++
		} else {
			singles++
		}
	}
	scanTasks := float64(singles) / float64(f.scale.RealBlocks) * paperBlocks
	packedTasks := float64(packed)
	packedBlocks := paperBlocks - scanTasks
	perBlock := c.perBlockIO + c.perBlockRRCPU + c.perBlockMapCPU + c.perBlockOut
	work := paperBlocks*perBlock +
		(scanTasks+packedTasks)*sim.TaskFixedSeconds +
		packedBlocks*sim.BlockOpenSeconds
	execute := work / float64(p.Nodes*sim.SlotsPerNode)
	workSeconds = execute
	if dispatch := (scanTasks + packedTasks) / sim.DispatchPerSecond; dispatch > execute {
		execute = dispatch
	}
	return c.setup + execute, workSeconds, scanTasks + packedTasks
}

// ExpDispatch runs the packed-vs-unpacked dispatch experiment on a fresh
// fixture. cacheBudget 0 selects qcache.DefaultBudget for the cache-hot
// scenario.
func (r *Runner) ExpDispatch(w Workload, cacheBudget int64) (*DispatchReport, error) {
	lines := r.lines(w)
	blockSize := r.dispatchBlockSize(w, lines)

	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
	f := &fixture{workload: w, system: HAIL, cluster: cluster, file: "/" + w.String(), lines: lines}
	f.hailSum, err = client.Upload(f.file, lines)
	if err != nil {
		return nil, err
	}
	f.scale = r.newScale(w, f.hailSum.TextBytes, f.hailSum.Rows, f.hailSum.Blocks)

	// The query filters on an attribute no replica is indexed on — the
	// adaptive sequence's job-1 shape: every block is a scan split.
	q := adaptiveQuery(w)
	newInput := func(pack bool, cache *qcache.Cache) *core.InputFormat {
		in := &core.InputFormat{
			Cluster: cluster, Query: q,
			Splitting: true, SplitsPerNode: SplitsPerNodePaper,
			PackScans: pack,
		}
		if pack && cache != nil {
			sig, _ := in.QuerySignature()
			nn := cluster.NameNode()
			in.CachedReplica = func(b hdfs.BlockID) (hdfs.NodeID, bool) {
				return cache.CachedReplica(f.file, b, nn.Generation(b), sig, workload.PassthroughMapSig)
			}
		}
		return in
	}
	runJob := func(name string, pack bool, cache *qcache.Cache) (*mapred.JobResult, error) {
		e := &mapred.Engine{Cluster: cluster}
		if cache != nil {
			e.Cache = cache
		}
		return e.Run(&mapred.Job{
			Name: name, File: f.file,
			Input: newInput(pack, cache), Map: workload.PassthroughMap,
			MapSig: workload.PassthroughMapSig,
		})
	}

	rep := &DispatchReport{
		Workload:      w,
		TotalBlocks:   f.scale.RealBlocks,
		Nodes:         r.Nodes,
		SplitsPerNode: SplitsPerNodePaper,
		CacheBudget:   cacheBudget,
	}

	toRun := func(res *mapred.JobResult, packed bool) DispatchRun {
		e2e, work, paperTasks := r.dispatchJobTimes(f, res)
		st := res.TotalStats()
		return DispatchRun{
			Packed: packed, Tasks: len(res.Tasks), PaperTasks: paperTasks,
			Blocks: st.Blocks, HitBlocks: st.BlocksFromCache,
			Seconds: e2e, WorkSeconds: work, Rows: len(res.Output),
		}
	}

	// --- Scenario 1: adaptive job 1 (nothing indexed, pure scans). ---
	unpacked, err := runJob("dispatch-scan-unpacked", false, nil)
	if err != nil {
		return nil, err
	}
	reference := multiset(unpacked.Output)
	packedRes, err := runJob("dispatch-scan-packed", true, nil)
	if err != nil {
		return nil, err
	}
	if !sameMultiset(multiset(packedRes.Output), reference) {
		return nil, fmt.Errorf("dispatch: packed scan output diverged from unpacked execution")
	}
	rep.SplitPhaseNameNodeOps = packedRes.SplitPhase.NameNodeOps
	rep.Scenarios = append(rep.Scenarios, newScenario("adaptive-job1",
		toRun(unpacked, false), toRun(packedRes, true)))

	// --- Scenario 2: cache-hot job (cold populates, hot replays). Each
	// variant gets its own cache: entries are keyed by the replica they
	// were computed at, which packing pins differently. ---
	hotRun := func(pack bool) (DispatchRun, error) {
		cache := qcache.New(cacheBudget)
		cluster.NameNode().SetReplicaChangeHook(cache.InvalidateBlock)
		defer cluster.NameNode().SetReplicaChangeHook(nil)
		label := "unpacked"
		if pack {
			label = "packed"
		}
		cold, err := runJob("dispatch-hot-cold-"+label, pack, cache)
		if err != nil {
			return DispatchRun{}, err
		}
		if !sameMultiset(multiset(cold.Output), reference) {
			return DispatchRun{}, fmt.Errorf("dispatch: %s cold job diverged from unpacked execution", label)
		}
		hot, err := runJob("dispatch-hot-"+label, pack, cache)
		if err != nil {
			return DispatchRun{}, err
		}
		if !sameMultiset(multiset(hot.Output), reference) {
			return DispatchRun{}, fmt.Errorf("dispatch: %s hot job diverged from unpacked execution", label)
		}
		run := toRun(hot, pack)
		if run.HitBlocks < run.Blocks {
			return DispatchRun{}, fmt.Errorf("dispatch: %s hot job hit only %d/%d blocks", label, run.HitBlocks, run.Blocks)
		}
		return run, nil
	}
	hotUnpacked, err := hotRun(false)
	if err != nil {
		return nil, err
	}
	hotPacked, err := hotRun(true)
	if err != nil {
		return nil, err
	}
	rep.Scenarios = append(rep.Scenarios, newScenario("cache-hot", hotUnpacked, hotPacked))

	for _, sc := range rep.Scenarios {
		if sc.TaskReduction < 4 {
			return nil, fmt.Errorf("dispatch: %s packed splits reduced tasks only %.1fx (%d → %d), want ≥4x",
				sc.Name, sc.TaskReduction, sc.Unpacked.Tasks, sc.Packed.Tasks)
		}
	}

	// --- Failover: kill a packed split's pinned node at ~50% progress.
	// The job must complete with only the victim's blocks re-resolved. ---
	input := newInput(true, nil)
	splits, err := input.Splits(f.file)
	if err != nil {
		return nil, err
	}
	victim := hdfs.NodeID(-1)
	for i := len(splits) - 1; i >= 0; i-- {
		if len(splits[i].Blocks) > 1 {
			victim = splits[i].Locations[0]
			break
		}
	}
	if victim == -1 {
		return nil, fmt.Errorf("dispatch: no packed split to fail over")
	}
	victimBlocks := 0
	for _, s := range splits {
		for _, n := range s.Replica {
			if n == victim {
				victimBlocks++
			}
		}
	}
	e := &mapred.Engine{Cluster: cluster, Parallelism: 2}
	var once sync.Once
	var killErr error
	e.OnProgress = func(done, total int) {
		if done >= total/2 {
			once.Do(func() { killErr = cluster.KillNode(victim) })
		}
	}
	killRes, err := e.Run(&mapred.Job{
		Name: "dispatch-packed-kill", File: f.file,
		Input: newInput(true, nil), Map: workload.PassthroughMap,
	})
	if err != nil {
		return nil, fmt.Errorf("dispatch: packed job with node kill failed: %v", err)
	}
	if killErr != nil {
		// A failed kill means the failover path was never exercised and the
		// comparison below would vacuously pass.
		return nil, fmt.Errorf("dispatch: killing node %d failed: %v", victim, killErr)
	}
	if !sameMultiset(multiset(killRes.Output), reference) {
		return nil, fmt.Errorf("dispatch: packed job output diverged after node kill")
	}
	if killRes.BlocksRerun > victimBlocks {
		return nil, fmt.Errorf("dispatch: node kill re-ran %d blocks, more than the %d pinned to the victim",
			killRes.BlocksRerun, victimBlocks)
	}
	rep.Failover = DispatchFailover{
		Victim: victim, VictimBlocks: victimBlocks,
		TasksRepacked: killRes.Repacked, BlocksRerun: killRes.BlocksRerun,
		ReExecuted: killRes.ReExecuted, Rows: len(killRes.Output),
	}
	if err := cluster.ReviveNode(victim); err != nil {
		return nil, err
	}
	rep.NameNode = shardStatsOf(cluster)
	return rep, nil
}

func newScenario(name string, unpacked, packed DispatchRun) DispatchScenario {
	sc := DispatchScenario{Name: name, Unpacked: unpacked, Packed: packed}
	if packed.Tasks > 0 {
		sc.TaskReduction = float64(unpacked.Tasks) / float64(packed.Tasks)
	}
	if packed.Seconds > 0 {
		sc.Speedup = unpacked.Seconds / packed.Seconds
	}
	return sc
}

// Figure renders the dispatch comparison: per-scenario runtime and
// paper-scale task counts, unpacked vs packed.
func (rep *DispatchReport) Figure() *Figure {
	fig := &Figure{
		ID: "FigDispatch",
		Title: fmt.Sprintf("Scan-split packing, %s (%d blocks, %d nodes × %d splits)",
			rep.Workload, rep.TotalBlocks, rep.Nodes, rep.SplitsPerNode),
		Unit: "s / tasks",
	}
	var unpackedS, packedS, unpackedT, packedT, reduction Series
	unpackedS.Label = "per-block [s]"
	packedS.Label = "packed [s]"
	unpackedT.Label = "per-block tasks"
	packedT.Label = "packed tasks"
	reduction.Label = "tasks cut [x]"
	for _, sc := range rep.Scenarios {
		unpackedS.Points = append(unpackedS.Points, Point{sc.Name, sc.Unpacked.Seconds})
		packedS.Points = append(packedS.Points, Point{sc.Name, sc.Packed.Seconds})
		unpackedT.Points = append(unpackedT.Points, Point{sc.Name, sc.Unpacked.PaperTasks})
		packedT.Points = append(packedT.Points, Point{sc.Name, sc.Packed.PaperTasks})
		reduction.Points = append(reduction.Points, Point{sc.Name, sc.TaskReduction})
	}
	fig.Series = []Series{unpackedS, packedS, unpackedT, packedT, reduction}
	return fig
}

// String renders the figure plus the dispatch-reduction and failover
// summaries.
func (rep *DispatchReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	for _, sc := range rep.Scenarios {
		fmt.Fprintf(&b, "%s: %d → %d dispatched tasks (%.1fx fewer), %.1f s → %.1f s (%.1fx); outputs byte-equivalent\n",
			sc.Name, sc.Unpacked.Tasks, sc.Packed.Tasks, sc.TaskReduction,
			sc.Unpacked.Seconds, sc.Packed.Seconds, sc.Speedup)
	}
	fo := rep.Failover
	fmt.Fprintf(&b, "failover: killed node %d mid-job; %d task(s) repacked (only the victim's %d pinned blocks re-resolved), %d/%d blocks re-executed, job completed with identical results\n",
		fo.Victim, fo.TasksRepacked, fo.VictimBlocks, fo.BlocksRerun, rep.TotalBlocks)
	fmt.Fprintf(&b, "split phase: %d namenode directory ops, 0 block-header reads (§6.4.1)\n",
		rep.SplitPhaseNameNodeOps)
	fmt.Fprintf(&b, "%s\n", rep.NameNode)
	return b.String()
}
