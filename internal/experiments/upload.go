package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// binRatio returns the measured binary/text ratio of a HAIL fixture,
// and the trojan row-binary ratio from a Hadoop++ fixture.
func (r *Runner) binRatio(w Workload) (hailRatio, trojanRatio float64, err error) {
	fh, err := r.fixture(w, HAIL)
	if err != nil {
		return 0, 0, err
	}
	ft, err := r.fixture(w, HadoopPP)
	if err != nil {
		return 0, 0, err
	}
	hailRatio = float64(fh.hailSum.PaxBytes) / float64(fh.hailSum.TextBytes)
	trojanRatio = float64(ft.trojanSum.BinaryBytes+ft.trojanSum.IndexBytes) /
		float64(ft.trojanSum.Text.TextBytes)
	return hailRatio, trojanRatio, nil
}

// uploadFigure computes Figure 4(a)/(b): upload time vs. number of created
// indexes for one workload.
func (r *Runner) uploadFigure(id string, w Workload) (*Figure, error) {
	hailRatio, trojanRatio, err := r.binRatio(w)
	if err != nil {
		return nil, err
	}
	gb := UVGBPerNode
	if w == Synthetic {
		gb = SynGBPerNode
	}
	textPerNode := gb * 1e9
	p := r.Profile

	fig := &Figure{
		ID:    id,
		Title: fmt.Sprintf("Upload time for %s (20GB/node UV, 13GB/node Syn), varying #indexes", w),
		Unit:  "s",
	}
	xs := []string{"0 idx", "1 idx", "2 idx", "3 idx"}

	hadoopT := sim.UploadTime(p, hadoopUploadCost(textPerNode, 3))
	hadoopPts := []Point{{xs[0], hadoopT}, {xs[1], -1}, {xs[2], -1}, {xs[3], -1}}

	var trojanPts, hailPts []Point
	for k := 0; k <= 3; k++ {
		if k <= 1 {
			trojanPts = append(trojanPts, Point{xs[k], trojanPhases(p, textPerNode, trojanRatio, k == 1, 3)})
		} else {
			// Hadoop++ cannot create more than one index (§6.3.1).
			trojanPts = append(trojanPts, Point{xs[k], -1})
		}
		hailPts = append(hailPts, Point{xs[k], sim.UploadTime(p, hailUploadCost(textPerNode, hailRatio, k, 3))})
	}
	fig.Series = []Series{
		{Label: "Hadoop", Points: hadoopPts},
		{Label: "Hadoop++", Points: trojanPts},
		{Label: "HAIL", Points: hailPts},
	}
	return fig, nil
}

// Fig4a: upload times for UserVisits, 0–3 indexes.
func (r *Runner) Fig4a() (*Figure, error) { return r.uploadFigure("Fig4a", UserVisits) }

// Fig4b: upload times for Synthetic, 0–3 indexes.
func (r *Runner) Fig4b() (*Figure, error) { return r.uploadFigure("Fig4b", Synthetic) }

// Fig4c: upload time vs. replication factor for Synthetic; HAIL creates
// as many indexes as replicas (§6.3.2).
func (r *Runner) Fig4c() (*Figure, error) {
	hailRatio, _, err := r.binRatio(Synthetic)
	if err != nil {
		return nil, err
	}
	textPerNode := SynGBPerNode * 1e9
	p := r.Profile
	fig := &Figure{
		ID:    "Fig4c",
		Title: "Upload time for Synthetic, varying replication (HAIL: one index per replica)",
		Unit:  "s",
	}
	var hadoopPts, hailPts []Point
	for _, rep := range []int{3, 5, 6, 7, 10} {
		x := fmt.Sprintf("r=%d", rep)
		hadoopPts = append(hadoopPts, Point{x, sim.UploadTime(p, hadoopUploadCost(textPerNode, rep))})
		hailPts = append(hailPts, Point{x, sim.UploadTime(p, hailUploadCost(textPerNode, hailRatio, rep, rep))})
	}
	fig.Series = []Series{
		{Label: "Hadoop", Points: hadoopPts},
		{Label: "HAIL", Points: hailPts},
	}
	return fig, nil
}

// scaleUpTable computes Table 2(a)/(b): Hadoop vs. HAIL (3 indexes) upload
// across node types.
func (r *Runner) scaleUpTable(id string, w Workload) (*Figure, error) {
	hailRatio, _, err := r.binRatio(w)
	if err != nil {
		return nil, err
	}
	gb := UVGBPerNode
	if w == Synthetic {
		gb = SynGBPerNode
	}
	textPerNode := gb * 1e9
	fig := &Figure{
		ID:    id,
		Title: fmt.Sprintf("Scale-up: %s upload on EC2 node types vs. physical", w),
		Unit:  "s",
	}
	profiles := []sim.Profile{sim.EC2Large, sim.EC2XLarge, sim.EC2Quad, sim.Physical}
	var hadoopPts, hailPts, speedupPts []Point
	for _, p := range profiles {
		h := sim.UploadTime(p, hadoopUploadCost(textPerNode, 3))
		a := sim.UploadTime(p, hailUploadCost(textPerNode, hailRatio, 3, 3))
		hadoopPts = append(hadoopPts, Point{p.Name, h})
		hailPts = append(hailPts, Point{p.Name, a})
		speedupPts = append(speedupPts, Point{p.Name, h / a})
	}
	fig.Series = []Series{
		{Label: "Hadoop", Points: hadoopPts},
		{Label: "HAIL", Points: hailPts},
		{Label: "SystemSpeedup", Points: speedupPts}, // Hadoop time / HAIL time
	}
	return fig, nil
}

// Table2a: scale-up for UserVisits.
func (r *Runner) Table2a() (*Figure, error) { return r.scaleUpTable("Table2a", UserVisits) }

// Table2b: scale-up for Synthetic.
func (r *Runner) Table2b() (*Figure, error) { return r.scaleUpTable("Table2b", Synthetic) }

// Fig5: scale-out on cc1.4xlarge clusters of 10/50/100 nodes with constant
// data per node. Per-node pipeline work is constant; the namenode's
// registration throughput is the only term that grows with the cluster
// (§6.3.4 observes roughly flat times with some variance).
func (r *Runner) Fig5() (*Figure, error) {
	hailUV, _, err := r.binRatio(UserVisits)
	if err != nil {
		return nil, err
	}
	hailSyn, _, err := r.binRatio(Synthetic)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:    "Fig5",
		Title: "Scale-out: upload on 10/50/100 cc1.4xlarge nodes, constant data per node",
		Unit:  "s",
	}
	// The namenode serializes block allocations and replica registrations:
	// blocks × (replication+1) RPCs across the whole cluster. Per-node
	// pipeline work is constant under scale-out, so upload time is flat
	// until the namenode becomes the bottleneck — which at these sizes it
	// does not (§6.3.4 reports roughly constant times; the variance it
	// shows is EC2 noise our deterministic model does not reproduce).
	const namenodeOpsPerSecond = 600.0
	nnFloor := func(nodes int, gbPerNode float64, replication int) float64 {
		blocks := gbPerNode * 1e9 * float64(nodes) / paperBlockText
		return blocks * float64(replication+1) / namenodeOpsPerSecond
	}
	var series []Series
	for _, sys := range []struct {
		label    string
		ratio    float64
		workload Workload
		hail     bool
	}{
		{"Hadoop Syn", 1, Synthetic, false},
		{"Hadoop UV", 1, UserVisits, false},
		{"HAIL Syn", hailSyn, Synthetic, true},
		{"HAIL UV", hailUV, UserVisits, true},
	} {
		gb := UVGBPerNode
		if sys.workload == Synthetic {
			gb = SynGBPerNode
		}
		var pts []Point
		for _, nodes := range []int{10, 50, 100} {
			p := sim.EC2Quad.WithNodes(nodes)
			var t float64
			if sys.hail {
				t = sim.UploadTime(p, hailUploadCost(gb*1e9, sys.ratio, 3, 3))
			} else {
				t = sim.UploadTime(p, hadoopUploadCost(gb*1e9, 3))
			}
			if floor := nnFloor(nodes, gb, 3); floor > t {
				t = floor
			}
			pts = append(pts, Point{fmt.Sprintf("%d nodes", nodes), t})
		}
		series = append(series, Series{Label: sys.label, Points: pts})
	}
	fig.Series = series
	return fig, nil
}
