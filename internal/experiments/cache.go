package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/qcache"
	"repro/internal/workload"
)

// ExpCache demonstrates the block-level result cache end to end on the
// repeated-selective-query workload the adaptive experiment already uses
// (it would hit the cache 100%, as the ROADMAP notes):
//
//   - job 1 runs cold and populates the cache (one entry per block);
//   - job 2 is identical and answers its blocks from the cache — no block
//     reads, no record-reader or map CPU, measurably lower task work;
//   - from job `adaptiveFrom` on, the adaptive indexer is switched on: its
//     conversions replace/add replicas, each bumping the block's
//     generation and purging the block's entries via the namenode's
//     replica-change hook — the converted blocks are recomputed (now as
//     index scans) while untouched blocks keep hitting;
//   - every job's result is checked against an uncached reference run:
//     the multiset of rows must be identical throughout, and jobs before
//     any invalidation must match the cold run byte for byte.
//
// Reported seconds come from the same calibrated cost model as the other
// figures; WorkSeconds isolates the slot-parallel map work, where the
// cache's savings land (the per-task dispatch bound of thousands of scan
// splits is unaffected by caching — see the ROADMAP's scan-split packing
// item).

// cacheAdaptiveFrom is the first job of the sequence with adaptive
// conversions (and therefore invalidations) enabled.
const cacheAdaptiveFrom = 3

// CacheJob is one job of the cache experiment's sequence.
type CacheJob struct {
	Job   int
	Phase string // "cold", "hot", "adaptive"
	// Seconds is simulated end-to-end runtime (query + adaptive build).
	Seconds float64
	// WorkSeconds is the slot-parallel map-work component of Seconds —
	// where cache hits save time even when the job is dispatch bound.
	WorkSeconds  float64
	BuildSeconds float64
	// Tasks is the dispatched map-task count — with PackScans on, the hot
	// jobs' dispatch bound visibly falls from per-block to per-node.
	Tasks     int
	Blocks    int // blocks processed by the job's tasks
	HitBlocks int // blocks answered from the cache
	HitRate   float64
	Rows      int
	// SplitHits is the packed-split-level cache hits this job produced
	// (PackScans only: a fully cached packed split replays with one
	// lookup).
	SplitHits int64
	// Cache counter deltas for this job, and occupancy after it.
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	CacheBytes    int64
	CacheEntries  int
	// BlocksBuilt is the adaptive conversions performed during the job
	// (each invalidates its block's entries).
	BlocksBuilt int
}

// CacheReport is the full result of the cache experiment.
type CacheReport struct {
	Workload Workload
	Budget   int64
	// PackScans reports whether the trajectory ran with packed scan
	// splits (the -pack-scans mode): the same cold/hot/invalidate
	// sequence, but scan blocks grouped into per-node splits and
	// fully-cached blocks pinned at their cached replica, so the hot
	// jobs' dispatch bound falls alongside their map work.
	PackScans   bool
	OfferRate   float64
	TotalBlocks int
	// BytesSaved is the cumulative data+index bytes hits avoided reading
	// (real measured bytes, unscaled).
	BytesSaved int64
	Jobs       []CacheJob
	// NameNode is the run's per-shard directory-operation spread.
	NameNode ShardStats `json:"namenode_shards"`
}

// multiset builds the row→count map of a job output.
func multiset(kvs []mapred.KV) map[string]int {
	m := make(map[string]int, len(kvs))
	for _, kv := range kvs {
		m[kv.Key+"\x00"+kv.Value]++
	}
	return m
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ExpCache runs `jobs` identical jobs (at least cacheAdaptiveFrom) with
// the result cache enabled, switching the adaptive indexer on at job
// cacheAdaptiveFrom so its replica replacements exercise invalidation.
// budget 0 selects qcache.DefaultBudget; offerRate 0 selects
// adaptive.DefaultOfferRate. With packScans the cached jobs run under the
// PackScans split policy (scan blocks packed per node, fully-cached
// blocks pinned at their cached replica), so the trajectory additionally
// shows the hot jobs' dispatch bound falling; the uncached reference
// stays per-block, making the equivalence gate cross-policy.
func (r *Runner) ExpCache(w Workload, jobs int, budget int64, offerRate float64, packScans bool) (*CacheReport, error) {
	if jobs < cacheAdaptiveFrom {
		return nil, fmt.Errorf("cache: need at least %d jobs (cold, hot, invalidate), got %d", cacheAdaptiveFrom, jobs)
	}

	// Fresh fixture: the adaptive phase mutates the cluster. The packed
	// mode uses the dispatch experiment's finer block size: packing's win
	// is blocks / (nodes × SplitsPerNode), so the trajectory needs many
	// more blocks than packing slots for the dispatch drop to register.
	lines := r.lines(w)
	blockSize := r.blockTextBytes(w, lines)
	if packScans {
		blockSize = r.dispatchBlockSize(w, lines)
	}
	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
	f := &fixture{workload: w, system: HAIL, cluster: cluster, file: "/" + w.String(), lines: lines}
	f.hailSum, err = client.Upload(f.file, lines)
	if err != nil {
		return nil, err
	}
	f.scale = r.newScale(w, f.hailSum.TextBytes, f.hailSum.Rows, f.hailSum.Blocks)

	q := adaptiveQuery(w)
	cache := qcache.New(budget)
	newInput := func(idx *adaptive.Indexer) *core.InputFormat {
		in := &core.InputFormat{
			Cluster: cluster, Query: q,
			Splitting: true, SplitsPerNode: SplitsPerNodePaper,
		}
		if idx != nil { // a typed nil in the interface would still be "set"
			in.Adaptive = idx
		}
		if packScans {
			in.PackScans = true
			sig, _ := in.QuerySignature()
			nn := cluster.NameNode()
			in.CachedReplica = func(b hdfs.BlockID) (hdfs.NodeID, bool) {
				return cache.CachedReplica(f.file, b, nn.Generation(b), sig, workload.PassthroughMapSig)
			}
		}
		return in
	}

	// Uncached reference: the equivalence baseline, always per-block so
	// the packed mode's gate is cross-policy.
	refEngine := &mapred.Engine{Cluster: cluster}
	refRes, err := refEngine.Run(&mapred.Job{
		Name: "cache-reference", File: f.file,
		Input: &core.InputFormat{
			Cluster: cluster, Query: q,
			Splitting: true, SplitsPerNode: SplitsPerNodePaper,
		},
		Map: workload.PassthroughMap,
	})
	if err != nil {
		return nil, err
	}
	reference := multiset(refRes.Output)

	cluster.NameNode().SetReplicaChangeHook(cache.InvalidateBlock)
	defer cluster.NameNode().SetReplicaChangeHook(nil)
	idx := adaptive.New(cluster, adaptive.Disabled)
	idx.SetBudgetBytes(r.AdaptiveBudget)
	engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask, Cache: cache}

	rep := &CacheReport{
		Workload:    w,
		Budget:      cache.Stats().Budget,
		PackScans:   packScans,
		OfferRate:   offerRate,
		TotalBlocks: f.scale.RealBlocks,
	}
	var coldOutput []mapred.KV
	prev := cache.Stats()
	for j := 1; j <= jobs; j++ {
		phase := "hot"
		if j == 1 {
			phase = "cold"
		}
		if j >= cacheAdaptiveFrom {
			phase = "adaptive"
			idx.SetOfferRate(offerRate)
		}
		res, err := engine.Run(&mapred.Job{
			Name: fmt.Sprintf("cache-job-%d", j), File: f.file,
			Input: newInput(idx), Map: workload.PassthroughMap,
			MapSig: workload.PassthroughMapSig,
		})
		if err != nil {
			return nil, err
		}
		if err := idx.LastErr(); err != nil {
			return nil, err
		}

		// Correctness gate: cached execution must be indistinguishable
		// from uncached execution.
		if !sameMultiset(multiset(res.Output), reference) {
			return nil, fmt.Errorf("cache: job %d result diverged from uncached reference", j)
		}
		if j == 1 {
			coldOutput = res.Output
		} else if j < cacheAdaptiveFrom {
			// Before any invalidation the replica topology is untouched,
			// so the output must match the cold run byte for byte, order
			// included.
			if len(res.Output) != len(coldOutput) {
				return nil, fmt.Errorf("cache: hot job %d returned %d rows, cold run %d", j, len(res.Output), len(coldOutput))
			}
			for i := range res.Output {
				if res.Output[i] != coldOutput[i] {
					return nil, fmt.Errorf("cache: hot job %d row %d differs from cold run", j, i)
				}
			}
		}

		plan := idx.LastJob()
		e2e, work := r.adaptiveJobTimes(f, res, plan)
		build := r.adaptiveBuildSeconds(f, plan)
		st := res.TotalStats()
		cs := cache.Stats()
		d := cs.Sub(prev)
		prev = cs
		hitRate := 0.0
		if st.Blocks > 0 {
			hitRate = float64(st.BlocksFromCache) / float64(st.Blocks)
		}
		rep.Jobs = append(rep.Jobs, CacheJob{
			Job: j, Phase: phase,
			Seconds: e2e + build, WorkSeconds: work, BuildSeconds: build,
			Tasks:  len(res.Tasks),
			Blocks: st.Blocks, HitBlocks: st.BlocksFromCache, HitRate: hitRate,
			Rows:          len(res.Output),
			Hits:          d.Hits,
			Misses:        d.Misses,
			SplitHits:     d.SplitHits,
			Evictions:     d.Evictions,
			Invalidations: d.Invalidations,
			CacheBytes:    cs.Bytes,
			CacheEntries:  cs.Entries,
			BlocksBuilt:   plan.Built,
		})
	}
	rep.BytesSaved = cache.Stats().BytesSaved
	rep.NameNode = shardStatsOf(cluster)
	return rep, nil
}

// Figure renders the trajectory: runtime, map work, hit rate and
// invalidations per job.
func (rep *CacheReport) Figure() *Figure {
	mode := ""
	if rep.PackScans {
		mode = ", packed scans"
	}
	fig := &Figure{
		ID: "FigCache",
		Title: fmt.Sprintf("Block-level result cache, %s (budget %.0f MB, adaptive from job %d%s)",
			rep.Workload, float64(rep.Budget)/1e6, cacheAdaptiveFrom, mode),
		Unit: "s / %",
	}
	var runtime, work, hits, inval, tasks Series
	runtime.Label = "runtime [s]"
	work.Label = "map work [s]"
	hits.Label = "cache hits [%]"
	inval.Label = "invalidated"
	tasks.Label = "tasks"
	for _, j := range rep.Jobs {
		x := fmt.Sprintf("job%d", j.Job)
		runtime.Points = append(runtime.Points, Point{x, j.Seconds})
		work.Points = append(work.Points, Point{x, j.WorkSeconds})
		hits.Points = append(hits.Points, Point{x, 100 * j.HitRate})
		inval.Points = append(inval.Points, Point{x, float64(j.Invalidations)})
		tasks.Points = append(tasks.Points, Point{x, float64(j.Tasks)})
	}
	fig.Series = []Series{runtime, work, hits, inval}
	if rep.PackScans {
		// The packed mode's headline: the hot jobs' dispatch count falls
		// to the per-node split count.
		fig.Series = append(fig.Series, tasks)
	}
	return fig
}

// String renders the figure plus a summary of the hot-job speedup and the
// invalidation phase.
func (rep *CacheReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	cold, hot := rep.Jobs[0], rep.Jobs[1]
	speedup := 0.0
	if hot.WorkSeconds > 0 {
		speedup = cold.WorkSeconds / hot.WorkSeconds
	}
	fmt.Fprintf(&b, "hot job answers %d/%d blocks from cache (%.0f%%), map work %.1f s → %.1f s (%.1f×); %.1f MB reads saved\n",
		hot.HitBlocks, hot.Blocks, 100*hot.HitRate,
		cold.WorkSeconds, hot.WorkSeconds, speedup,
		float64(rep.BytesSaved)/1e6)
	if rep.PackScans {
		fmt.Fprintf(&b, "packed scans: %d dispatched tasks per job (vs %d blocks), %d split-level hits on the hot job\n",
			hot.Tasks, rep.TotalBlocks, hot.SplitHits)
	}
	var invalidated int64
	var rebuilt int
	for _, j := range rep.Jobs {
		invalidated += j.Invalidations
		rebuilt += j.BlocksBuilt
	}
	fmt.Fprintf(&b, "adaptive phase converted %d blocks, invalidating %d cache entries; all %d jobs byte-equivalent to uncached execution\n",
		rebuilt, invalidated, len(rep.Jobs))
	fmt.Fprintf(&b, "%s\n", rep.NameNode)
	return b.String()
}
