package experiments

import (
	"testing"

	"repro/internal/workload"
)

// TestThreeSystemResultEquivalence is the repository's strongest
// correctness invariant (DESIGN.md §6): for every benchmark query, the
// full text scan (Hadoop), the trojan index scan (Hadoop++) and the
// per-replica clustered index scan (HAIL, with and without HailSplitting)
// must produce exactly the same multiset of result rows.
func TestThreeSystemResultEquivalence(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	for _, w := range []Workload{UserVisits, Synthetic} {
		for _, bq := range queriesFor(w) {
			var reference map[string]int
			var refSys string
			for _, sys := range []System{Hadoop, HadoopPP, HAIL} {
				f, err := r.fixture(w, sys)
				if err != nil {
					t.Fatal(err)
				}
				modes := []bool{false}
				if sys == HAIL {
					modes = []bool{false, true} // splitting off and on
				}
				for _, splitting := range modes {
					res, err := r.runQuery(f, bq, splitting)
					if err != nil {
						t.Fatalf("%s %s on %s: %v", w, bq.Name, sys, err)
					}
					got := make(map[string]int)
					for _, kv := range res.Output {
						got[kv.Key]++
					}
					if reference == nil {
						reference = got
						refSys = sys.String()
						continue
					}
					if len(got) != len(reference) {
						t.Fatalf("%s %s: %s returned %d distinct rows, %s returned %d",
							w, bq.Name, sys, len(got), refSys, len(reference))
					}
					for k, v := range reference {
						if got[k] != v {
							t.Fatalf("%s %s: row %q appears %d times on %s, %d on %s",
								w, bq.Name, k, got[k], sys, v, refSys)
						}
					}
				}
			}
			if reference == nil {
				t.Fatalf("%s %s produced no reference result", w, bq.Name)
			}
			// Sanity: selective queries must actually select something on
			// these fixtures (needles are planted; range selectivities
			// are percents of tens of thousands of rows).
			if len(reference) == 0 {
				t.Errorf("%s %s returned no rows at all", w, bq.Name)
			}
		}
	}
}

// TestUploadSummariesConsistent cross-checks the measured sizes the cost
// model consumes: binary ratios in sane ranges, per-replica stored bytes
// accounted, block counts aligned across systems on the same data.
func TestUploadSummariesConsistent(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	fh, err := r.fixture(UserVisits, HAIL)
	if err != nil {
		t.Fatal(err)
	}
	sum := fh.hailSum
	if sum.Rows == 0 || sum.Blocks == 0 {
		t.Fatalf("empty HAIL summary: %+v", sum)
	}
	ratio := float64(sum.PaxBytes) / float64(sum.TextBytes)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("UserVisits binary ratio %.2f outside [0.8,1.2]", ratio)
	}
	// 3 sorted replicas: sorted bytes = 3 × pax bytes.
	if sum.SortedBytes != 3*sum.PaxBytes {
		t.Errorf("SortedBytes = %d, want %d", sum.SortedBytes, 3*sum.PaxBytes)
	}
	if sum.IndexBytes == 0 {
		t.Error("no index bytes recorded")
	}
	// Stored bytes exceed 3× pax (frames + indexes) but not by much.
	if sum.StoredBytes < 3*sum.PaxBytes || sum.StoredBytes > 3*sum.PaxBytes+3*sum.IndexBytes+int64(sum.Blocks*3*64) {
		t.Errorf("StoredBytes = %d implausible for PaxBytes = %d", sum.StoredBytes, sum.PaxBytes)
	}

	fs, err := r.fixture(Synthetic, HAIL)
	if err != nil {
		t.Fatal(err)
	}
	synRatio := float64(fs.hailSum.PaxBytes) / float64(fs.hailSum.TextBytes)
	if synRatio < 0.4 || synRatio > 0.65 {
		t.Errorf("Synthetic binary ratio %.2f outside [0.4,0.65] (paper implies ~0.54)", synRatio)
	}
}

// TestScaleFactors checks the laptop→paper scaling arithmetic.
func TestScaleFactors(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	f, err := r.fixture(UserVisits, HAIL)
	if err != nil {
		t.Fatal(err)
	}
	s := f.scale
	if s.PaperBlocks < 2500 || s.PaperBlocks > 3500 {
		t.Errorf("PaperBlocks = %d, want ≈3000 for 200 GB at 64 MB", s.PaperBlocks)
	}
	if s.RowScale <= 1 {
		t.Errorf("RowScale = %v, must scale up", s.RowScale)
	}
	if s.RealBlocks != f.hailSum.Blocks {
		t.Errorf("RealBlocks = %d, summary says %d", s.RealBlocks, f.hailSum.Blocks)
	}
	wantRowScale := s.PaperRowsPerBlock / s.RealRowsPerBlock
	if diff := s.RowScale - wantRowScale; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("RowScale inconsistent: %v vs %v", s.RowScale, wantRowScale)
	}
}

// TestSynQueriesUseOnlyOneIndex confirms the §6.2 setup: all Synthetic
// queries filter on attr1, so although HAIL created three indexes, only
// the attr1 replica is ever chosen.
func TestSynQueriesUseOnlyOneIndex(t *testing.T) {
	skipIfShort(t)
	r := quickRunner()
	f, err := r.fixture(Synthetic, HAIL)
	if err != nil {
		t.Fatal(err)
	}
	for _, bq := range workload.SynQueries() {
		res, err := r.runQuery(f, bq, false)
		if err != nil {
			t.Fatal(err)
		}
		st := res.TotalStats()
		if st.IndexScans != f.scale.RealBlocks {
			t.Errorf("%s: %d index scans, want %d", bq.Name, st.IndexScans, f.scale.RealBlocks)
		}
		for _, task := range res.Tasks {
			for b, node := range task.Split.Replica {
				info, ok := f.cluster.NameNode().ReplicaInfo(b, node)
				if !ok || info.SortColumn != 0 {
					t.Fatalf("%s: block %d scheduled to replica indexed on %d, want attr1",
						bq.Name, b, info.SortColumn)
				}
			}
		}
	}
}
