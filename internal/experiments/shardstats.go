package experiments

import (
	"sync"

	"repro/internal/hdfs"
)

// ShardStats is the namenode directory's lock-spread summary the
// experiment reports embed (see hdfs.DirShardStats for the fields and
// the -json schema).
type ShardStats = hdfs.DirShardStats

// shardStatsOf aggregates the per-shard directory counters of the given
// clusters.
func shardStatsOf(clusters ...*hdfs.Cluster) ShardStats {
	nns := make([]*hdfs.NameNode, len(clusters))
	for i, c := range clusters {
		nns[i] = c.NameNode()
	}
	return hdfs.CombineShardStats(nns...)
}

// clusterTracker records every cluster a Runner creates so figure-mode
// runs can report an aggregate lock spread; it is separate from
// Runner.mu because fixture() creates clusters while holding mu.
type clusterTracker struct {
	mu       sync.Mutex
	clusters []*hdfs.Cluster
}

func (ct *clusterTracker) track(c *hdfs.Cluster) *hdfs.Cluster {
	ct.mu.Lock()
	ct.clusters = append(ct.clusters, c)
	ct.mu.Unlock()
	return c
}

func (ct *clusterTracker) all() []*hdfs.Cluster {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return append([]*hdfs.Cluster(nil), ct.clusters...)
}

// newCluster creates a cluster with the Runner's node count and namenode
// shard count (0 = hdfs.DefaultShards) and records it for NNShardStats.
func (r *Runner) newCluster() (*hdfs.Cluster, error) {
	c, err := hdfs.NewClusterShards(r.Nodes, r.NNShards)
	if err != nil {
		return nil, err
	}
	return r.tracker.track(c), nil
}

// NNShardStats aggregates the per-shard directory-operation counters over
// every cluster this Runner created — the figure-mode counterpart to the
// per-report ShardStats the adaptive and cache experiments embed.
func (r *Runner) NNShardStats() ShardStats {
	return shardStatsOf(r.tracker.all()...)
}
