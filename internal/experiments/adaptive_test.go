package experiments

import (
	"math"
	"testing"
)

// tinyAdaptiveRunner is sized so the adaptive convergence suite stays in
// the -short CI lane: 8 blocks of 1,000 rows upload in well under a
// second while exercising every adaptive code path.
func tinyAdaptiveRunner() *Runner {
	r := NewQuickRunner()
	r.UVRows = 8_000
	r.UVBlockRows = 1_000
	r.SynRows = 8_000
	r.SynBlockRows = 1_000
	return r
}

// TestAdaptiveConvergence is the acceptance property of the adaptive
// subsystem: on a filter column no replica is indexed on, the fraction of
// index-scan splits rises monotonically to 1.0 over a sequence of
// identical jobs, simulated runtime is non-increasing from job 2 on, and
// job 1's overhead stays within the offer-rate bound.
func TestAdaptiveConvergence(t *testing.T) {
	const offerRate = 0.5
	r := tinyAdaptiveRunner()
	rep, err := r.ExpAdaptive(UserVisits, 8, offerRate)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 8 {
		t.Fatalf("got %d jobs, want 8", len(rep.Jobs))
	}

	// Job 1 starts from zero coverage; the fraction rises monotonically
	// (strictly, until converged) and reaches exactly 1.0.
	if rep.Jobs[0].IndexScanFraction != 0 {
		t.Errorf("job 1 index-scan fraction = %f, want 0", rep.Jobs[0].IndexScanFraction)
	}
	converged := false
	for i := 1; i < len(rep.Jobs); i++ {
		prev, cur := rep.Jobs[i-1].IndexScanFraction, rep.Jobs[i].IndexScanFraction
		if cur < prev {
			t.Fatalf("job %d fraction %f < job %d fraction %f", i+1, cur, i, prev)
		}
		if !converged && cur <= prev {
			t.Fatalf("job %d made no coverage progress before convergence (%f)", i+1, cur)
		}
		if cur == 1.0 {
			converged = true
		}
	}
	if !converged {
		t.Fatal("index-scan fraction never reached 1.0")
	}
	last := rep.Jobs[len(rep.Jobs)-1]
	if last.IndexScanFraction != 1.0 || last.BlocksBuilt != 0 || last.BuildSeconds != 0 {
		t.Errorf("converged job = %+v, want full coverage and no build work", last)
	}

	// Simulated runtime: job k+1 ≤ job k for every k ≥ 1, and the
	// converged jobs beat the scan baseline.
	for i := 2; i < len(rep.Jobs); i++ {
		if rep.Jobs[i].Seconds > rep.Jobs[i-1].Seconds+1e-9 {
			t.Errorf("job %d runtime %.3f s > job %d runtime %.3f s",
				i+1, rep.Jobs[i].Seconds, i, rep.Jobs[i-1].Seconds)
		}
	}
	if last.Seconds >= rep.BaselineSeconds {
		t.Errorf("converged runtime %.3f s not below scan baseline %.3f s",
			last.Seconds, rep.BaselineSeconds)
	}

	// Job 1's overhead over the pure scan is exactly its build surcharge
	// and must stay within the offer-rate bound (+ one block of ceil
	// slack).
	overhead := rep.Jobs[0].Seconds - rep.BaselineSeconds
	if overhead <= 0 {
		t.Errorf("job 1 paid no adaptive overhead (%.6f s)", overhead)
	}
	bound := rep.FullBuildSeconds * (offerRate + 1.0/float64(rep.TotalBlocks))
	if overhead > bound+1e-9 {
		t.Errorf("job 1 overhead %.3f s exceeds offer-rate bound %.3f s", overhead, bound)
	}

	// Exactly ceil(rate × missing) blocks were built per job, and in
	// total every block was converted once.
	total := 0
	missing := rep.TotalBlocks
	for i, j := range rep.Jobs {
		want := int(math.Ceil(offerRate * float64(missing)))
		if j.BlocksBuilt != want {
			t.Errorf("job %d built %d blocks, want ceil(%.2f×%d) = %d", i+1, j.BlocksBuilt, offerRate, missing, want)
		}
		total += j.BlocksBuilt
		missing -= j.BlocksBuilt
	}
	if total != rep.TotalBlocks {
		t.Errorf("built %d blocks in total, want %d", total, rep.TotalBlocks)
	}

	// Result correctness: every job returned the same real rows.
	for i, j := range rep.Jobs {
		if j.Rows != rep.Jobs[0].Rows {
			t.Errorf("job %d returned %d rows, job 1 returned %d", i+1, j.Rows, rep.Jobs[0].Rows)
		}
	}
	if rep.Jobs[0].Rows == 0 {
		t.Error("adaptive query selected no rows")
	}
}

// TestAdaptiveSynthetic covers the second workload at a different offer
// rate: convergence must hold there too, with replicas added (the
// Synthetic layout has no unsorted replica to replace).
func TestAdaptiveSynthetic(t *testing.T) {
	r := tinyAdaptiveRunner()
	rep, err := r.ExpAdaptive(Synthetic, 6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].BlocksBuilt != rep.TotalBlocks || rep.Jobs[0].ReplicasAdded != rep.TotalBlocks {
		t.Errorf("offer rate 1.0: job 1 = %+v, want all %d blocks built as added replicas",
			rep.Jobs[0], rep.TotalBlocks)
	}
	if rep.Jobs[1].IndexScanFraction != 1.0 {
		t.Errorf("job 2 fraction = %f, want 1.0 after a full first-job build", rep.Jobs[1].IndexScanFraction)
	}
	for i := 2; i < len(rep.Jobs); i++ {
		if rep.Jobs[i].Seconds > rep.Jobs[i-1].Seconds+1e-9 {
			t.Errorf("job %d runtime rose after convergence", i+1)
		}
	}
}

// TestAdaptiveReportRendering keeps the human-readable outputs stable
// enough for hailbench.
func TestAdaptiveReportRendering(t *testing.T) {
	r := tinyAdaptiveRunner()
	rep, err := r.ExpAdaptive(UserVisits, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"FigAdaptive", "job1", "job2", "runtime [s]", "idx splits [%]", "overhead"} {
		if !contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}
