package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExpAdaptive reproduces the adaptive-indexing trajectory (the paper's
// §4.1 evolving-workload story, executed LIAH-style): Bob's queries move
// to an attribute no replica is indexed on — UserVisits.duration — and
// the same query is run k times. With the adaptive indexer at offer rate
// r, job 1 pays a bounded penalty (≈ r × the cost of indexing the whole
// file) to convert the first batch of blocks; every following job sees
// more index-scan splits and runs faster, until the fraction reaches 1.0.
//
// All jobs are executed for real on a fresh in-process cluster; reported
// seconds come from the same calibrated cost model as the paper figures,
// plus a build surcharge for the adaptive sort+index+write work (which
// runs inside the job's map slots, so it is spread over them).

// AdaptiveJob is one job of the sequence.
type AdaptiveJob struct {
	Job int
	// IndexScanFraction is the fraction of the file's blocks that got an
	// index-scan split in this job's split phase.
	IndexScanFraction float64
	QuerySeconds      float64 // simulated end-to-end query time
	BuildSeconds      float64 // simulated adaptive build surcharge
	Seconds           float64 // QuerySeconds + BuildSeconds
	BlocksBuilt       int
	ReplicasAdded     int
	ReplicasReplaced  int
	// Lifecycle counters: builds denied at the budget, and adaptive
	// replicas evicted (with AdaptiveEvict) to fund this job's builds.
	BudgetDenied int
	Evicted      int
	Rows         int // real result rows (must be identical across jobs)
}

// AdaptiveReport is the full result of the adaptive experiment.
type AdaptiveReport struct {
	Workload  Workload
	OfferRate float64
	// TotalBlocks is the real block count of the uploaded file.
	TotalBlocks int
	// BaselineSeconds is the simulated runtime of the pure full-scan job
	// (what every job would cost without adaptive indexing). It equals
	// job 1's query time, since job 1 scans everything.
	BaselineSeconds float64
	// FullBuildSeconds is the simulated surcharge for converting every
	// block in a single job — the worst case the offer rate bounds.
	FullBuildSeconds float64
	Jobs             []AdaptiveJob
	// NameNode is the run's per-shard directory-operation spread.
	NameNode ShardStats `json:"namenode_shards"`
}

// adaptiveQuery filters on an attribute the static layout never indexes:
// duration for UserVisits (Bob's layout covers visitDate, sourceIP,
// adRevenue), attr10 for Synthetic (its layout covers attr1..attr3).
func adaptiveQuery(w Workload) *query.Query {
	if w == UserVisits {
		return &query.Query{
			Filter: []query.Predicate{
				query.Between(workload.UVDuration, schema.IntVal(100), schema.IntVal(199)),
			},
			Projection: []int{workload.UVSourceIP},
		}
	}
	return &query.Query{
		Filter:     []query.Predicate{query.Between(9, schema.IntVal(0), schema.IntVal(1<<20))},
		Projection: []int{0},
	}
}

// ExpAdaptive runs `jobs` identical jobs with the adaptive indexer at the
// given offer rate (0 selects adaptive.DefaultOfferRate) and reports the
// per-job trajectory.
func (r *Runner) ExpAdaptive(w Workload, jobs int, offerRate float64) (*AdaptiveReport, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("adaptive: need at least one job, got %d", jobs)
	}

	// A fresh, uncached fixture: the adaptive indexer mutates the cluster
	// (new and replaced replicas), so it must not share state with the
	// static-figure fixtures.
	lines := r.lines(w)
	blockSize := r.blockTextBytes(w, lines)
	cluster, err := r.newCluster()
	if err != nil {
		return nil, err
	}
	client := &core.Client{Cluster: cluster, Config: hailConfig(w, blockSize)}
	f := &fixture{workload: w, system: HAIL, cluster: cluster, file: "/" + w.String(), lines: lines}
	f.hailSum, err = client.Upload(f.file, lines)
	if err != nil {
		return nil, err
	}
	f.scale = r.newScale(w, f.hailSum.TextBytes, f.hailSum.Rows, f.hailSum.Blocks)

	idx := adaptive.New(cluster, offerRate)
	idx.SetBudgetBytes(r.AdaptiveBudget)
	idx.SetEvict(r.AdaptiveEvict)
	engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask}
	q := adaptiveQuery(w)

	rep := &AdaptiveReport{
		Workload:    w,
		OfferRate:   idx.EffectiveOfferRate(),
		TotalBlocks: f.scale.RealBlocks,
	}
	for j := 1; j <= jobs; j++ {
		res, err := engine.Run(&mapred.Job{
			Name: fmt.Sprintf("adaptive-job-%d", j),
			File: f.file,
			Input: &core.InputFormat{
				Cluster: cluster, Query: q, Adaptive: idx,
				Splitting: true, SplitsPerNode: SplitsPerNodePaper,
			},
			Map: workload.PassthroughMap,
		})
		if err != nil {
			return nil, err
		}
		if err := idx.LastErr(); err != nil {
			return nil, err
		}
		plan := idx.LastJob()

		e2e := r.adaptiveJobSeconds(f, res, plan)
		build := r.adaptiveBuildSeconds(f, plan)
		frac := 0.0
		if plan.Indexed+plan.Missing > 0 {
			frac = float64(plan.Indexed) / float64(plan.Indexed+plan.Missing)
		}
		rep.Jobs = append(rep.Jobs, AdaptiveJob{
			Job:               j,
			IndexScanFraction: frac,
			QuerySeconds:      e2e,
			BuildSeconds:      build,
			Seconds:           e2e + build,
			BlocksBuilt:       plan.Built,
			ReplicasAdded:     plan.ReplicasAdded,
			ReplicasReplaced:  plan.ReplicasReplaced,
			BudgetDenied:      plan.BudgetDenied,
			Evicted:           plan.Evicted,
			Rows:              len(res.Output),
		})
		if j == 1 {
			rep.BaselineSeconds = e2e
			if plan.Built > 0 {
				rep.FullBuildSeconds = build * float64(f.scale.RealBlocks) / float64(plan.Built)
			}
		}
	}
	rep.NameNode = shardStatsOf(cluster)
	return rep, nil
}

// adaptiveJobSeconds is the end-to-end model for a mixed adaptive job
// running under HailSplitting: blocks with a matching index are packed
// into Nodes × SplitsPerNode locality splits (§4.3), while unindexed
// blocks keep per-block full-scan splits — so early jobs are dominated by
// the per-task dispatch bound (the paper's framework overhead, §6.4.1)
// and converged jobs by the small index-scan work. jobTimes cannot be
// reused here: it assumes every task of a splitting job is packed.
func (r *Runner) adaptiveJobSeconds(f *fixture, res *mapred.JobResult, plan adaptive.JobPlan) float64 {
	e2e, _ := r.adaptiveJobTimes(f, res, plan)
	return e2e
}

// adaptiveJobTimes additionally reports the slot-parallel map-work
// component on its own. For repeated selective workloads the job may be
// bound by per-task dispatch either way (the scan-split packing item in
// the ROADMAP); the work component is where a result cache's savings
// show, which is why ExpCache reports both.
func (r *Runner) adaptiveJobTimes(f *fixture, res *mapred.JobResult, plan adaptive.JobPlan) (e2e, workSeconds float64) {
	c := r.cost(f, res)
	p := r.Profile
	total := plan.Indexed + plan.Missing
	if total == 0 {
		e2e, _, _ := r.jobTimes(f, res, false)
		return e2e, e2e
	}
	paperBlocks := float64(f.scale.PaperBlocks)
	scanTasks := float64(plan.Missing) / float64(total) * paperBlocks
	var packedTasks, packedBlocks float64
	if plan.Indexed > 0 {
		packedTasks = float64(r.Nodes * SplitsPerNodePaper)
		packedBlocks = paperBlocks - scanTasks
	}
	perBlock := c.perBlockIO + c.perBlockRRCPU + c.perBlockMapCPU + c.perBlockOut
	work := paperBlocks*perBlock +
		(scanTasks+packedTasks)*sim.TaskFixedSeconds +
		packedBlocks*sim.BlockOpenSeconds
	execute := work / float64(p.Nodes*sim.SlotsPerNode)
	workSeconds = execute
	if dispatch := (scanTasks + packedTasks) / sim.DispatchPerSecond; dispatch > execute {
		execute = dispatch
	}
	return c.setup + execute, workSeconds
}

// adaptiveBuildSeconds converts one job's measured build volume into
// simulated seconds at paper scale. Per converted block the cluster pays
// the in-memory sort + index creation (the block bytes were just read by
// the scanning map task, so no extra read I/O) and the write of the
// reorganized replica. Builds run inside the job's map slots, so the
// total is spread over the cluster's slot count.
func (r *Runner) adaptiveBuildSeconds(f *fixture, plan adaptive.JobPlan) float64 {
	if plan.Built == 0 {
		return 0
	}
	p := r.Profile
	rs := f.scale.RowScale
	sortedPaper := float64(plan.SortedBytes) / float64(plan.Built) * rs
	storedPaper := float64(plan.StoredBytes) / float64(plan.Built) * rs
	perBlock := sortedPaper/(sim.SortIndexMBps*1e6)/p.CPUFactor +
		storedPaper/(p.DiskMBps*1e6)
	builtPaper := float64(plan.Built) * float64(f.scale.PaperBlocks) / float64(f.scale.RealBlocks)
	slots := float64(p.Nodes * sim.SlotsPerNode)
	return builtPaper * perBlock / slots
}

// Figure renders the report as an experiments table: simulated runtime
// and index-scan coverage per job.
func (rep *AdaptiveReport) rateLabel() string {
	if rep.OfferRate <= 0 {
		return "observe only"
	}
	return fmt.Sprintf("offer rate %.2f", rep.OfferRate)
}

func (rep *AdaptiveReport) Figure() *Figure {
	fig := &Figure{
		ID: "FigAdaptive",
		Title: fmt.Sprintf("Adaptive indexing, %s, %s (baseline scan %.1f s)",
			rep.Workload, rep.rateLabel(), rep.BaselineSeconds),
		Unit: "s / %",
	}
	var runtime, frac, built Series
	runtime.Label = "runtime [s]"
	frac.Label = "idx splits [%]"
	built.Label = "blocks built"
	for _, j := range rep.Jobs {
		x := fmt.Sprintf("job%d", j.Job)
		runtime.Points = append(runtime.Points, Point{x, j.Seconds})
		frac.Points = append(frac.Points, Point{x, 100 * j.IndexScanFraction})
		built.Points = append(built.Points, Point{x, float64(j.BlocksBuilt)})
	}
	fig.Series = []Series{runtime, frac, built}
	return fig
}

// String renders the report, including the convergence summary line.
func (rep *AdaptiveReport) String() string {
	var b strings.Builder
	b.WriteString(rep.Figure().String())
	last := rep.Jobs[len(rep.Jobs)-1]
	if rep.OfferRate <= 0 {
		fmt.Fprintf(&b, "conversion disabled (observe only); job %d at %.0f%% index scans\n",
			last.Job, 100*last.IndexScanFraction)
		fmt.Fprintf(&b, "%s\n", rep.NameNode)
		return b.String()
	}
	// The offer count is ceil(rate × missing), so the bound carries one
	// block of rounding slack.
	bound := rep.FullBuildSeconds * (rep.OfferRate + 1/float64(rep.TotalBlocks))
	fmt.Fprintf(&b, "job 1 overhead %.1f s (offer-rate bound: (%.2f + 1/%d blocks) × full build %.1f s = %.1f s); job %d at %.0f%% index scans\n",
		rep.Jobs[0].Seconds-rep.BaselineSeconds,
		rep.OfferRate, rep.TotalBlocks, rep.FullBuildSeconds, bound,
		last.Job, 100*last.IndexScanFraction)
	fmt.Fprintf(&b, "%s\n", rep.NameNode)
	return b.String()
}
