package experiments

import "repro/internal/sim"

// Scale converts real laptop-scale measurements to paper scale. All
// representations (text, PAX, row-binary) shrink proportionally to rows,
// so a single row-count ratio scales every byte and record figure; seek
// counts per block are scale-invariant (same number of column ranges).
type Scale struct {
	// RowScale = paper rows per block / real rows per block.
	RowScale float64
	// PaperBlocks is the block count of the paper-scale dataset on the
	// simulated cluster (e.g. 3,200 for 200 GB UserVisits at 64 MB).
	PaperBlocks int
	// RealBlocks is the measured real block count.
	RealBlocks int
	// RealRowsPerBlock and PaperRowsPerBlock resolve partition-granularity
	// effects: a 1,024-row partition is the unit of index-scan I/O at any
	// block size, so partition-bounded reads must not scale with rows.
	RealRowsPerBlock  float64
	PaperRowsPerBlock float64
	// TextBytesPerNode is the paper-scale per-node input size.
	TextBytesPerNode float64
}

// newScale derives scale factors from a measured upload.
func (r *Runner) newScale(w Workload, realTextBytes, realRows int64, realBlocks int) Scale {
	gbPerNode := UVGBPerNode
	if w == Synthetic {
		gbPerNode = SynGBPerNode
	}
	textPerNode := gbPerNode * 1e9
	totalText := textPerNode * float64(r.Nodes)
	paperBlocks := int(totalText / paperBlockText)

	avgRowBytes := float64(realTextBytes) / float64(realRows)
	paperRowsPerBlock := paperBlockText / avgRowBytes
	realRowsPerBlock := float64(realRows) / float64(realBlocks)

	return Scale{
		RowScale:          paperRowsPerBlock / realRowsPerBlock,
		PaperBlocks:       paperBlocks,
		RealBlocks:        realBlocks,
		RealRowsPerBlock:  realRowsPerBlock,
		PaperRowsPerBlock: paperRowsPerBlock,
		TextBytesPerNode:  textPerNode,
	}
}

// BlocksPerNode is the paper-scale block count stored per node.
func (s Scale) BlocksPerNode(nodes int) float64 {
	return float64(s.PaperBlocks) / float64(nodes)
}

// upload cost builders — per-node resource demand at paper scale. These
// encode the pipeline differences of §3.2:
//
//   - Hadoop streams text packets and flushes them as they arrive
//     (StreamWriteEff), with only checksum CPU.
//   - HAIL parses to binary at the client, ships the (often smaller) PAX
//     block, and each datanode sorts/indexes/checksums in memory before a
//     whole-block flush.
//   - Hadoop++ does the Hadoop upload and then re-reads everything
//     through MapReduce shuffle machinery (trojanPhase).

// hadoopUploadCost: plain HDFS upload of textPerNode bytes at the given
// replication.
func hadoopUploadCost(textPerNode float64, replication int) sim.UploadCost {
	return sim.UploadCost{
		DiskReadBytes:        int64(textPerNode),
		DiskStreamWriteBytes: int64(textPerNode * float64(replication)),
		NetBytes:             int64(textPerNode * float64(replication-1)),
		CPUCoreSeconds:       textPerNode * float64(replication) / (sim.ChecksumMBps * 1e6),
	}
}

// hailUploadCost: HAIL upload with `indexes` sorted+indexed replicas out
// of `replication` total. binRatio is the measured PAX/text size ratio.
func hailUploadCost(textPerNode, binRatio float64, indexes, replication int) sim.UploadCost {
	bin := textPerNode * binRatio
	stored := bin * float64(replication)
	sorted := bin * float64(indexes)
	cpu := textPerNode/(sim.ParseMBps*1e6) +
		sorted/(sim.SortIndexMBps*1e6) +
		stored/(sim.SerializeMBps*1e6) +
		stored/(sim.ChecksumMBps*1e6)
	return sim.UploadCost{
		DiskReadBytes:       int64(textPerNode),
		DiskBlockWriteBytes: int64(stored),
		NetBytes:            int64(bin * float64(replication-1)),
		CPUCoreSeconds:      cpu,
	}
}

// trojanPhases: the Hadoop++ ingestion is the Hadoop upload plus one
// MapReduce conversion job, plus one more MapReduce job when an index is
// requested (§5, [12]). Each MR phase pays map spill + shuffle + reduce
// merge + replicated rewrite, amplified by TrojanMRJobInefficiency.
func trojanPhases(p sim.Profile, textPerNode, binRatio float64, withIndex bool, replication int) float64 {
	bin := textPerNode * binRatio
	total := sim.UploadTime(p, hadoopUploadCost(textPerNode, replication))

	convert := sim.UploadCost{
		DiskReadBytes:        int64(textPerNode + sim.TrojanConvertSpillFactor*bin),
		DiskStreamWriteBytes: int64(bin * float64(replication)),
		NetBytes:             int64(bin * float64(replication)), // shuffle + pipeline
		CPUCoreSeconds:       textPerNode / (sim.ParseMBps * 1e6),
	}
	total += sim.UploadTime(p, convert) * sim.TrojanMRJobInefficiency

	if withIndex {
		indexJob := sim.UploadCost{
			DiskReadBytes:        int64(bin + sim.TrojanIndexSpillFactor*bin),
			DiskStreamWriteBytes: int64(bin * float64(replication)),
			NetBytes:             int64(bin * float64(replication-1)),
			CPUCoreSeconds:       bin * float64(replication) / (sim.SortIndexMBps * 1e6),
		}
		total += sim.UploadTime(p, indexJob) * sim.TrojanMRJobInefficiency
	}
	return total
}
