package trojan

import (
	"fmt"
	"sort"

	"repro/internal/hadoop"
	"repro/internal/hdfs"
	"repro/internal/schema"
)

// System is the Hadoop++ deployment: configuration for upload-then-index.
type System struct {
	Cluster     *hdfs.Cluster
	Schema      *schema.Schema
	BlockSize   int // target text bytes per block
	Replication int
	// IndexColumn is the single global attribute the trojan index is
	// created on for every block (all replicas identical), or -1 for
	// binary conversion without an index.
	IndexColumn int
	Sep         byte // field separator; 0 defaults to ','
}

// UploadSummary carries the measured sizes of both phases for the cost
// model: the plain upload and the index-creation MapReduce jobs.
type UploadSummary struct {
	// Phase 1: standard Hadoop upload of the text data.
	Text hadoop.UploadSummary
	// Phase 2: the conversion/index jobs.
	Blocks         int
	Rows           int64
	BinaryBytes    int64 // row-layout binary size (one copy)
	IndexBytes     int64 // trojan index size (one copy)
	StoredBytes    int64 // binary+index across all replicas
	SkippedRecords int64 // malformed rows dropped by the conversion UDF
	BlockIDs       []hdfs.BlockID
}

// binaryFile names the converted file Hadoop++ queries actually read.
func binaryFile(file string) string { return file + ".trojan" }

// Upload performs the full Hadoop++ ingestion path: a standard text upload
// followed by the MapReduce-based conversion that re-reads every block,
// parses it, sorts it on the index column, builds the trojan index and
// rewrites it through the replication pipeline. The conversion really
// re-reads the stored text blocks — the extra I/O Figure 4 charges
// Hadoop++ for.
func (s *System) Upload(file string, lines []string) (UploadSummary, error) {
	if s.Schema == nil {
		return UploadSummary{}, fmt.Errorf("trojan: no schema")
	}
	sep := s.Sep
	if sep == 0 {
		sep = ','
	}
	up := &hadoop.Uploader{Cluster: s.Cluster, BlockSize: s.BlockSize, Replication: s.Replication}
	textSum, err := up.Upload(file, lines)
	if err != nil {
		return UploadSummary{}, err
	}
	sum := UploadSummary{Text: textSum}

	// The conversion MapReduce job: one map task per text block, reading
	// the stored block back, parsing, sorting, indexing and rewriting.
	parser := &schema.Parser{Schema: s.Schema, Sep: sep}
	for _, b := range textSum.BlockIDs {
		data, _, err := s.Cluster.ReadBlockAny(b, 0)
		if err != nil {
			return sum, fmt.Errorf("trojan: conversion job: %v", err)
		}
		rows, skipped := parseLines(parser, data)
		sum.SkippedRecords += skipped
		if s.IndexColumn >= 0 {
			sortRows(rows, s.IndexColumn)
		}
		bin, err := MarshalBlock(s.Schema, rows, s.IndexColumn)
		if err != nil {
			return sum, err
		}
		id, _, err := s.Cluster.WriteBlock(binaryFile(file), bin, s.Replication, nil)
		if err != nil {
			return sum, err
		}
		r, err := NewBlockReader(bin)
		if err != nil {
			return sum, err
		}
		sum.Blocks++
		sum.Rows += int64(len(rows))
		sum.BinaryBytes += int64(r.RowAreaBytes())
		sum.IndexBytes += int64(r.IndexBytes())
		sum.StoredBytes += int64(len(bin)) * int64(s.Replication)
		sum.BlockIDs = append(sum.BlockIDs, id)
	}
	return sum, nil
}

// parseLines parses the block's text lines, skipping malformed rows.
// Hadoop++ has no bad-record section (HAIL's is §3.1); its conversion UDF
// drops records it cannot parse, so the skipped count is reported.
func parseLines(p *schema.Parser, data []byte) (rows []schema.Row, skipped int64) {
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				row, err := p.ParseLine(string(data[start:i]))
				if err != nil {
					skipped++
				} else {
					rows = append(rows, row)
				}
			}
			start = i + 1
		}
	}
	return rows, skipped
}

// sortRows stable-sorts rows by the given column, keeping ties in input
// order so conversion is deterministic.
func sortRows(rows []schema.Row, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][col].Compare(rows[j][col]) < 0
	})
}
