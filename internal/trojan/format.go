// Package trojan implements the Hadoop++ baseline ([12], paper §5):
// trojan indexes created *after* upload by additional MapReduce jobs.
//
// Differences from HAIL, faithfully reproduced:
//
//   - Data is stored in binary *row* layout, so a scan or index range read
//     always fetches whole rows regardless of projection (§6.4.2 discusses
//     this against HAIL's PAX reads).
//   - There is exactly one trojan index per *logical* block, on one global
//     attribute; all replicas are byte-identical, so a query on any other
//     attribute degenerates to a full scan.
//   - Index creation runs as MapReduce jobs over the already-uploaded
//     data: one job to convert to binary, one more to sort and index —
//     the expensive part HAIL eliminates (Figure 4's 5–8× upload gap).
//   - The index is much denser than HAIL's (the paper measures 304 KB vs
//     HAIL's 2 KB per block): one entry per IndexGranularity rows, since
//     variable-length rows need explicit offsets.
//   - The split phase must read each block's header to locate the index
//     (§6.4.1: HAIL "does not have to read any block header to compute
//     input splits while Hadoop++ does").
package trojan

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/schema"
)

// IndexGranularity is the number of rows per trojan index entry. Row
// layout needs an explicit byte offset per entry, which together with the
// finer granularity is why the trojan index is ~100× larger than HAIL's
// sparse per-partition directory.
const IndexGranularity = 16

// Block layout:
//
//	magic    "TRJB"
//	version  uint16
//	sortCol  int32   indexed attribute, -1 if unsorted (no index)
//	numRows  uint32
//	schemaLen uint16, schema DDL
//	rowAreaLen uint32, indexAreaLen uint32
//	row area: rows back to back (fixed fields packed LE, strings
//	          {len uint16, bytes})
//	index area: entries of {key, rowID uint32, byteOff uint32}, one per
//	          IndexGranularity rows, keys ascending
const (
	blockMagic   = "TRJB"
	blockVersion = 1
)

// encodeRow appends the row-layout encoding of row to dst.
func encodeRow(dst []byte, s *schema.Schema, row schema.Row) ([]byte, error) {
	for i, v := range row {
		switch s.Field(i).Type {
		case schema.Int32, schema.Date:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Long()))
		case schema.Int64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Long()))
		case schema.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
		case schema.String:
			str := v.Str()
			if len(str) > math.MaxUint16 {
				return nil, fmt.Errorf("trojan: string too long (%d bytes)", len(str))
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(str)))
			dst = append(dst, str...)
		default:
			return nil, fmt.Errorf("trojan: cannot encode type %s", s.Field(i).Type)
		}
	}
	return dst, nil
}

// decodeRow decodes one row starting at data[off], returning the row and
// the offset past it.
func decodeRow(data []byte, off int, s *schema.Schema) (schema.Row, int, error) {
	row := make(schema.Row, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		switch s.Field(i).Type {
		case schema.Int32:
			if off+4 > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated row")
			}
			row[i] = schema.IntVal(int32(binary.LittleEndian.Uint32(data[off:])))
			off += 4
		case schema.Date:
			if off+4 > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated row")
			}
			row[i] = schema.DateVal(int32(binary.LittleEndian.Uint32(data[off:])))
			off += 4
		case schema.Int64:
			if off+8 > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated row")
			}
			row[i] = schema.LongVal(int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case schema.Float64:
			if off+8 > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated row")
			}
			row[i] = schema.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case schema.String:
			if off+2 > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated row")
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, 0, fmt.Errorf("trojan: truncated string")
			}
			row[i] = schema.StringVal(string(data[off : off+n]))
			off += n
		default:
			return nil, 0, fmt.Errorf("trojan: cannot decode type %s", s.Field(i).Type)
		}
	}
	return row, off, nil
}

// indexEntry is one trojan index entry.
type indexEntry struct {
	key     schema.Value
	rowID   uint32
	byteOff uint32 // offset of the row within the row area
}

// MarshalBlock builds a trojan block from rows (already sorted on sortCol
// when sortCol >= 0; the index is built over the row offsets).
func MarshalBlock(s *schema.Schema, rows []schema.Row, sortCol int) ([]byte, error) {
	var rowArea []byte
	var entries []indexEntry
	for i, row := range rows {
		if sortCol >= 0 && i%IndexGranularity == 0 {
			entries = append(entries, indexEntry{
				key:     row[sortCol],
				rowID:   uint32(i),
				byteOff: uint32(len(rowArea)),
			})
		}
		var err error
		rowArea, err = encodeRow(rowArea, s, row)
		if err != nil {
			return nil, err
		}
	}
	var ixArea []byte
	if sortCol >= 0 {
		keyType := s.Field(sortCol).Type
		for _, e := range entries {
			var err error
			ixArea, err = encodeKey(ixArea, keyType, e.key)
			if err != nil {
				return nil, err
			}
			ixArea = binary.LittleEndian.AppendUint32(ixArea, e.rowID)
			ixArea = binary.LittleEndian.AppendUint32(ixArea, e.byteOff)
		}
	}

	ddl := s.String()
	out := make([]byte, 0, 4+2+4+4+2+len(ddl)+8+len(rowArea)+len(ixArea))
	out = append(out, blockMagic...)
	out = binary.LittleEndian.AppendUint16(out, blockVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(sortCol)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rows)))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ddl)))
	out = append(out, ddl...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rowArea)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ixArea)))
	out = append(out, rowArea...)
	out = append(out, ixArea...)
	return out, nil
}

func encodeKey(dst []byte, t schema.Type, v schema.Value) ([]byte, error) {
	switch t {
	case schema.Int32, schema.Date:
		return binary.LittleEndian.AppendUint32(dst, uint32(v.Long())), nil
	case schema.Int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Long())), nil
	case schema.Float64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float())), nil
	case schema.String:
		s := v.Str()
		if len(s) > math.MaxUint16 {
			return nil, fmt.Errorf("trojan: key too long")
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		return append(dst, s...), nil
	}
	return nil, fmt.Errorf("trojan: cannot encode key type %s", t)
}

func decodeKey(data []byte, off int, t schema.Type) (schema.Value, int, error) {
	switch t {
	case schema.Int32:
		if off+4 > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		return schema.IntVal(int32(binary.LittleEndian.Uint32(data[off:]))), off + 4, nil
	case schema.Date:
		if off+4 > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		return schema.DateVal(int32(binary.LittleEndian.Uint32(data[off:]))), off + 4, nil
	case schema.Int64:
		if off+8 > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		return schema.LongVal(int64(binary.LittleEndian.Uint64(data[off:]))), off + 8, nil
	case schema.Float64:
		if off+8 > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		return schema.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))), off + 8, nil
	case schema.String:
		if off+2 > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return schema.Value{}, 0, fmt.Errorf("trojan: truncated key")
		}
		return schema.StringVal(string(data[off : off+n])), off + n, nil
	}
	return schema.Value{}, 0, fmt.Errorf("trojan: invalid key type %d", t)
}

// BlockReader gives access to a serialized trojan block.
type BlockReader struct {
	data    []byte
	sch     *schema.Schema
	sortCol int
	numRows int
	rowOff  int // absolute offset of the row area
	rowLen  int
	ixOff   int
	ixLen   int
}

// NewBlockReader parses the header.
func NewBlockReader(data []byte) (*BlockReader, error) {
	if len(data) < 4+2+4+4+2 {
		return nil, fmt.Errorf("trojan: block too short")
	}
	if string(data[:4]) != blockMagic {
		return nil, fmt.Errorf("trojan: bad magic %q", data[:4])
	}
	p := 4
	if v := binary.LittleEndian.Uint16(data[p:]); v != blockVersion {
		return nil, fmt.Errorf("trojan: unsupported version %d", v)
	}
	p += 2
	r := &BlockReader{data: data}
	r.sortCol = int(int32(binary.LittleEndian.Uint32(data[p:])))
	p += 4
	r.numRows = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	ddlLen := int(binary.LittleEndian.Uint16(data[p:]))
	p += 2
	if p+ddlLen+8 > len(data) {
		return nil, fmt.Errorf("trojan: truncated header")
	}
	sch, err := schema.ParseSchema(string(data[p : p+ddlLen]))
	if err != nil {
		return nil, err
	}
	r.sch = sch
	p += ddlLen
	r.rowLen = int(binary.LittleEndian.Uint32(data[p:]))
	r.ixLen = int(binary.LittleEndian.Uint32(data[p+4:]))
	p += 8
	r.rowOff = p
	r.ixOff = p + r.rowLen
	if r.ixOff+r.ixLen != len(data) {
		return nil, fmt.Errorf("trojan: area lengths inconsistent with block size")
	}
	return r, nil
}

// Schema returns the block's schema.
func (r *BlockReader) Schema() *schema.Schema { return r.sch }

// NumRows returns the row count.
func (r *BlockReader) NumRows() int { return r.numRows }

// SortColumn returns the indexed attribute or -1.
func (r *BlockReader) SortColumn() int { return r.sortCol }

// HeaderBytes returns the size of the header the split phase must read.
func (r *BlockReader) HeaderBytes() int { return r.rowOff }

// IndexBytes returns the size of the trojan index area.
func (r *BlockReader) IndexBytes() int { return r.ixLen }

// RowAreaBytes returns the size of the row data area.
func (r *BlockReader) RowAreaBytes() int { return r.rowLen }

// readIndex decodes the index entries.
func (r *BlockReader) readIndex() ([]indexEntry, error) {
	if r.sortCol < 0 {
		return nil, nil
	}
	keyType := r.sch.Field(r.sortCol).Type
	var entries []indexEntry
	p := r.ixOff
	end := r.ixOff + r.ixLen
	for p < end {
		key, np, err := decodeKey(r.data, p, keyType)
		if err != nil {
			return nil, err
		}
		p = np
		if p+8 > end {
			return nil, fmt.Errorf("trojan: truncated index entry")
		}
		entries = append(entries, indexEntry{
			key:     key,
			rowID:   binary.LittleEndian.Uint32(r.data[p:]),
			byteOff: binary.LittleEndian.Uint32(r.data[p+4:]),
		})
		p += 8
	}
	return entries, nil
}

// ScanRange iterates rows [fromRow, toRow) starting at the given byte
// offset within the row area, calling fn with each decoded row. It returns
// the number of bytes covered.
func (r *BlockReader) ScanRange(byteOff, fromRow, toRow int, fn func(rowID int, row schema.Row) error) (int64, error) {
	off := r.rowOff + byteOff
	start := off
	for rowID := fromRow; rowID < toRow; rowID++ {
		row, next, err := decodeRow(r.data, off, r.sch)
		if err != nil {
			return int64(off - start), err
		}
		if next > r.rowOff+r.rowLen {
			return int64(off - start), fmt.Errorf("trojan: row %d overruns row area", rowID)
		}
		if err := fn(rowID, row); err != nil {
			return int64(off - start), err
		}
		off = next
	}
	return int64(off - start), nil
}

// LookupRange uses the trojan index to find the covering (byteOff, fromRow,
// toRow) for lo <= key <= hi. ok is false when no row can match or there is
// no index.
func (r *BlockReader) LookupRange(lo, hi *schema.Value) (byteOff, fromRow, toRow int, ok bool, err error) {
	if r.sortCol < 0 || r.numRows == 0 {
		return 0, 0, 0, false, nil
	}
	entries, err := r.readIndex()
	if err != nil {
		return 0, 0, 0, false, err
	}
	if len(entries) == 0 {
		return 0, 0, 0, false, nil
	}
	// First entry whose key >= lo; start from its predecessor (duplicates
	// can span an entry boundary).
	first := 0
	if lo != nil {
		i := 0
		for i < len(entries) && entries[i].key.Compare(*lo) < 0 {
			i++
		}
		if i > 0 {
			first = i - 1
		}
	}
	last := len(entries) - 1
	if hi != nil {
		i := 0
		for i < len(entries) && entries[i].key.Compare(*hi) <= 0 {
			i++
		}
		if i == 0 {
			return 0, 0, 0, false, nil
		}
		last = i - 1
	}
	if first > last {
		return 0, 0, 0, false, nil
	}
	fromRow = int(entries[first].rowID)
	toRow = r.numRows
	if last+1 < len(entries) {
		toRow = int(entries[last+1].rowID)
	}
	return int(entries[first].byteOff), fromRow, toRow, true, nil
}
