package trojan

import (
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

// InputFormat is Hadoop++'s input format over converted trojan blocks:
// one split per block, always. Unlike HAIL, the split phase must read each
// block's header to learn about the index (§6.4.1), which delays job
// start; and since all replicas are identical, scheduling is plain
// locality scheduling.
type InputFormat struct {
	System *System
	Query  *query.Query

	splitStats mapred.TaskStats
}

// Splits creates one split per trojan block, reading each block's header
// (the cost HAIL avoids by keeping index metadata in the namenode).
func (f *InputFormat) Splits(file string) ([]mapred.Split, error) {
	blocks, err := f.System.Cluster.NameNode().FileBlocks(binaryFile(file))
	if err != nil {
		return nil, err
	}
	f.splitStats = mapred.TaskStats{}
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		// Header read: one seek plus a few hundred bytes per block.
		data, _, err := f.System.Cluster.ReadBlockAny(b, 0)
		if err != nil {
			return nil, err
		}
		r, err := NewBlockReader(data)
		if err != nil {
			return nil, err
		}
		f.splitStats.Seeks++
		f.splitStats.BytesRead += int64(r.HeaderBytes())
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.System.Cluster.NameNode().GetHosts(b),
		})
	}
	return splits, nil
}

// SplitPhaseStats reports the per-block header reads of the split phase.
func (f *InputFormat) SplitPhaseStats() mapred.TaskStats { return f.splitStats }

// Open returns the trojan record reader.
func (f *InputFormat) Open(split mapred.Split, node hdfs.NodeID) (mapred.RecordReader, error) {
	return &recordReader{format: f, split: split, node: node}, nil
}

// recordReader is Hadoop++'s itemize UDF: an index scan over the row
// layout when the filter matches the trojan index attribute, a full binary
// scan otherwise. Row layout means every touched row is read completely —
// projection saves no I/O (contrast with HAIL's PAX column ranges).
type recordReader struct {
	format *InputFormat
	split  mapred.Split
	node   hdfs.NodeID
}

func (r *recordReader) Read(fn func(mapred.Record)) (mapred.TaskStats, error) {
	var stats mapred.TaskStats
	q := r.format.Query
	if q == nil {
		q = &query.Query{}
	}
	for _, b := range r.split.Blocks {
		data, servedBy, err := r.format.System.Cluster.ReadBlockAny(b, r.node)
		if err != nil {
			return stats, err
		}
		if servedBy != r.node {
			stats.RemoteReads++
		}
		stats.Blocks++
		br, err := NewBlockReader(data)
		if err != nil {
			return stats, err
		}
		proj := q.ProjectionOrAll(br.Schema())

		// Pick the access path.
		byteOff, fromRow, toRow := 0, 0, br.NumRows()
		indexed := false
		if br.SortColumn() >= 0 {
			for _, p := range q.Filter {
				if p.Column != br.SortColumn() {
					continue
				}
				indexed = true
				// Reading the (dense) trojan index costs its full size.
				stats.IndexBytesRead += int64(br.IndexBytes())
				stats.Seeks++
				off, f2, t2, ok, err := br.LookupRange(p.Lo, p.Hi)
				if err != nil {
					return stats, err
				}
				if !ok {
					byteOff, fromRow, toRow = 0, 0, 0
				} else {
					byteOff, fromRow, toRow = off, f2, t2
				}
				break
			}
		}
		if indexed {
			stats.IndexScans++
		} else {
			stats.FullScans++
		}

		if toRow > fromRow {
			stats.Seeks++
			bytes, err := br.ScanRange(byteOff, fromRow, toRow, func(rowID int, row schema.Row) error {
				stats.RecordsScanned++
				if !q.MatchesRow(row) {
					return nil
				}
				out := make(schema.Row, len(proj))
				for j, c := range proj {
					out[j] = row[c]
				}
				stats.RecordsDelivered++
				stats.AttrsDelivered += int64(len(proj))
				fn(mapred.Record{Row: out})
				return nil
			})
			stats.BytesRead += bytes
			if err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}
