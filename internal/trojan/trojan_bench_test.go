package trojan

import (
	"testing"

	"repro/internal/schema"
)

func BenchmarkMarshalBlock(b *testing.B) {
	rows := randRows(32*1024, 1)
	sortRows(rows, 0)
	data, err := MarshalBlock(sch, rows, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalBlock(sch, rows, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupRange(b *testing.B) {
	rows := randRows(32*1024, 2)
	sortRows(rows, 0)
	data, _ := MarshalBlock(sch, rows, 0)
	r, err := NewBlockReader(data)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := schema.IntVal(1000), schema.IntVal(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := r.LookupRange(&lo, &hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanRange(b *testing.B) {
	rows := randRows(32*1024, 3)
	data, _ := MarshalBlock(sch, rows, -1)
	r, err := NewBlockReader(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(r.RowAreaBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := r.ScanRange(0, 0, r.NumRows(), func(int, schema.Row) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != 32*1024 {
			b.Fatalf("scanned %d rows", n)
		}
	}
}
