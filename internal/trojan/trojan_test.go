package trojan

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

var sch = schema.MustNew(
	schema.Field{Name: "k", Type: schema.Int32},
	schema.Field{Name: "name", Type: schema.String},
	schema.Field{Name: "rev", Type: schema.Float64},
	schema.Field{Name: "day", Type: schema.Date},
	schema.Field{Name: "cnt", Type: schema.Int64},
)

func randRows(n int, seed int64) []schema.Row {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"", "alpha", "a-much-longer-name-value", "x"}
	rows := make([]schema.Row, n)
	for i := range rows {
		rows[i] = schema.Row{
			schema.IntVal(rng.Int31n(10000)),
			schema.StringVal(names[rng.Intn(len(names))]),
			schema.FloatVal(float64(rng.Intn(100))),
			schema.DateVal(rng.Int31n(20000)),
			schema.LongVal(rng.Int63n(1 << 40)),
		}
	}
	return rows
}

func TestBlockRoundTrip(t *testing.T) {
	rows := randRows(5000, 1)
	sortRows(rows, 0)
	data, err := MarshalBlock(sch, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 5000 || r.SortColumn() != 0 {
		t.Fatalf("rows=%d sortCol=%d", r.NumRows(), r.SortColumn())
	}
	var got []schema.Row
	if _, err := r.ScanRange(0, 0, r.NumRows(), func(_ int, row schema.Row) error {
		got = append(got, row)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("scanned %d rows", len(got))
	}
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestUnsortedBlockHasNoIndex(t *testing.T) {
	rows := randRows(100, 2)
	data, err := MarshalBlock(sch, rows, -1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.IndexBytes() != 0 {
		t.Errorf("unsorted block has %d index bytes", r.IndexBytes())
	}
	if _, _, _, ok, err := r.LookupRange(nil, nil); ok || err != nil {
		t.Errorf("LookupRange on unindexed block: ok=%v err=%v", ok, err)
	}
}

func TestLookupRangeCoversMatches(t *testing.T) {
	rows := randRows(8000, 3)
	sortRows(rows, 0)
	data, err := MarshalBlock(sch, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBlockReader(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		lo := schema.IntVal(rng.Int31n(10000))
		hi := schema.IntVal(lo.Int() + rng.Int31n(500))
		off, from, to, ok, err := r.LookupRange(ptr(lo), ptr(hi))
		if err != nil {
			t.Fatal(err)
		}
		// Collect matches by brute force over the decoded rows.
		var want []int
		for i, row := range rows {
			if row[0].Compare(lo) >= 0 && row[0].Compare(hi) <= 0 {
				want = append(want, i)
			}
		}
		if len(want) == 0 {
			continue // index may return a candidate range; post-filter empties it
		}
		if !ok {
			t.Fatalf("trial %d: matches exist but lookup said none", trial)
		}
		if want[0] < from || want[len(want)-1] >= to {
			t.Fatalf("trial %d: matches [%d,%d] outside returned [%d,%d)", trial, want[0], want[len(want)-1], from, to)
		}
		// The byte offset must land exactly on row `from`.
		count := 0
		if _, err := r.ScanRange(off, from, to, func(rowID int, row schema.Row) error {
			if !row.Equal(rows[rowID]) {
				t.Fatalf("trial %d: row %d decoded wrong", trial, rowID)
			}
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != to-from {
			t.Fatalf("trial %d: scanned %d rows, want %d", trial, count, to-from)
		}
	}
}

func ptr(v schema.Value) *schema.Value { return &v }

func TestTrojanIndexIsDense(t *testing.T) {
	// The paper measures 304 KB trojan indexes vs 2 KB HAIL indexes: with
	// entries every IndexGranularity rows the trojan index must be orders
	// of magnitude larger than one entry per 1,024-row partition.
	rows := randRows(64*1024, 5)
	sortRows(rows, 0)
	data, _ := MarshalBlock(sch, rows, 0)
	r, _ := NewBlockReader(data)
	perEntry := 4 + 8 // int32 key + rowID + byteOff
	wantMin := (64 * 1024 / IndexGranularity) * perEntry
	if r.IndexBytes() < wantMin {
		t.Errorf("index = %d bytes, want >= %d", r.IndexBytes(), wantMin)
	}
}

// systemFixture uploads a small dataset through the full Hadoop++ path.
func systemFixture(t *testing.T, indexCol int, nLines int) (*System, []string) {
	t.Helper()
	c, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	lines := make([]string, nLines)
	for i := range lines {
		lines[i] = strings.Join([]string{
			strconv.Itoa(int(rng.Int31n(1000))),
			"name" + strconv.Itoa(i%17),
			strconv.FormatFloat(float64(rng.Intn(100)), 'g', -1, 64),
			schema.FormatDate(rng.Int31n(10000)),
			strconv.FormatInt(rng.Int63n(1000000), 10),
		}, ",")
	}
	s := &System{Cluster: c, Schema: sch, BlockSize: 8192, Replication: 3, IndexColumn: indexCol}
	return s, lines
}

func TestSystemUploadAndIndexScan(t *testing.T) {
	s, lines := systemFixture(t, 0, 3000)
	sum, err := s.Upload("/t", lines)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != 3000 || sum.Blocks == 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.IndexBytes == 0 {
		t.Error("no index bytes recorded")
	}
	// All replicas of a trojan block are identical (single logical index).
	nn := s.Cluster.NameNode()
	for _, b := range sum.BlockIDs {
		hosts := nn.GetHosts(b)
		if len(hosts) != 3 {
			t.Fatalf("block %d has %d replicas", b, len(hosts))
		}
		first, err := s.Cluster.ReadBlockFrom(hosts[0], b)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hosts[1:] {
			other, err := s.Cluster.ReadBlockFrom(h, b)
			if err != nil {
				t.Fatal(err)
			}
			if string(first) != string(other) {
				t.Fatalf("block %d replicas differ — trojan replicas must be identical", b)
			}
		}
	}

	// Query on the indexed attribute: index scan, correct results.
	q, err := query.ParseAnnotation(sch, `@HailQuery(filter="@1 between(100,199)", projection={@1,@2})`)
	if err != nil {
		t.Fatal(err)
	}
	e := &mapred.Engine{Cluster: s.Cluster}
	res, err := e.Run(&mapred.Job{
		Name:  "idx",
		File:  "/t",
		Input: &InputFormat{System: s, Query: q},
		Map: func(r mapred.Record, emit mapred.Emit) {
			emit(r.Row.Line(','), "")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, l := range lines {
		k, _ := strconv.Atoi(strings.SplitN(l, ",", 2)[0])
		if k >= 100 && k <= 199 {
			want++
		}
	}
	if len(res.Output) != want {
		t.Fatalf("index scan returned %d rows, want %d", len(res.Output), want)
	}
	stats := res.TotalStats()
	if stats.IndexScans == 0 || stats.FullScans != 0 {
		t.Errorf("access paths: %d index, %d full", stats.IndexScans, stats.FullScans)
	}
	// Index scan must read far less of the row area than a full scan.
	if stats.BytesRead >= sum.BinaryBytes {
		t.Errorf("index scan read %d bytes of %d total", stats.BytesRead, sum.BinaryBytes)
	}
	// Split phase must have read one header per block (the cost HAIL avoids).
	if res.SplitPhase.Seeks != sum.Blocks {
		t.Errorf("split phase did %d header reads, want %d", res.SplitPhase.Seeks, sum.Blocks)
	}
}

func TestSystemFullScanOnNonIndexedAttribute(t *testing.T) {
	s, lines := systemFixture(t, 0, 2000)
	if _, err := s.Upload("/t", lines); err != nil {
		t.Fatal(err)
	}
	// Filter on @4 (day) while the index is on @1: full scan.
	q, err := query.ParseAnnotation(sch, `@HailQuery(filter="@4 between(1995-01-01,1997-01-01)", projection={@4})`)
	if err != nil {
		t.Fatal(err)
	}
	e := &mapred.Engine{Cluster: s.Cluster}
	res, err := e.Run(&mapred.Job{
		Name:  "scan",
		File:  "/t",
		Input: &InputFormat{System: s, Query: q},
		Map:   func(r mapred.Record, emit mapred.Emit) { emit(r.Row.Line(','), "") },
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.TotalStats()
	if stats.FullScans == 0 || stats.IndexScans != 0 {
		t.Errorf("access paths: %d index, %d full", stats.IndexScans, stats.FullScans)
	}
	lo, hi := schema.MustDate("1995-01-01"), schema.MustDate("1997-01-01")
	want := 0
	for _, l := range lines {
		f := strings.Split(l, ",")
		d, _ := schema.ParseDate(f[3])
		if d >= lo && d <= hi {
			want++
		}
	}
	if len(res.Output) != want {
		t.Errorf("full scan returned %d rows, want %d", len(res.Output), want)
	}
}

func TestRowLayoutProjectionSavesNoIO(t *testing.T) {
	// §6.4.2: Hadoop++'s row layout reads whole rows; projecting fewer
	// attributes must not reduce BytesRead (contrast with HAIL's PAX).
	s, lines := systemFixture(t, 0, 3000)
	if _, err := s.Upload("/t", lines); err != nil {
		t.Fatal(err)
	}
	run := func(projection string) int64 {
		q, err := query.ParseAnnotation(sch,
			`@HailQuery(filter="@1 between(0,499)", projection={`+projection+`})`)
		if err != nil {
			t.Fatal(err)
		}
		e := &mapred.Engine{Cluster: s.Cluster}
		res, err := e.Run(&mapred.Job{
			Name: "p", File: "/t",
			Input: &InputFormat{System: s, Query: q},
			Map:   func(r mapred.Record, emit mapred.Emit) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalStats().BytesRead
	}
	wide := run("@1,@2,@3,@4,@5")
	narrow := run("@1")
	if narrow != wide {
		t.Errorf("row layout read %d bytes for narrow projection vs %d for wide; must be equal", narrow, wide)
	}
}

func TestSkippedRecords(t *testing.T) {
	s, lines := systemFixture(t, 0, 500)
	lines[100] = "this,is,not,valid"
	lines[200] = "neither is this"
	sum, err := s.Upload("/t", lines)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SkippedRecords != 2 {
		t.Errorf("SkippedRecords = %d, want 2", sum.SkippedRecords)
	}
	if sum.Rows != 498 {
		t.Errorf("Rows = %d, want 498", sum.Rows)
	}
}

func TestNewBlockReaderValidation(t *testing.T) {
	if _, err := NewBlockReader([]byte("short")); err == nil {
		t.Error("short block accepted")
	}
	rows := randRows(10, 9)
	data, _ := MarshalBlock(sch, rows, -1)
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewBlockReader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewBlockReader(data[:len(data)-3]); err == nil {
		t.Error("truncated block accepted")
	}
}
