// Package cliutil holds small helpers shared by the cmd/ front-ends.
package cliutil

import "flag"

// Stray returns (with a "-" prefix) the names of the given flags that
// were explicitly set on the command line. The commands use it to reject
// mode-restricted flags outside their mode instead of silently ignoring
// them.
func Stray(fs *flag.FlagSet, names ...string) []string {
	owned := make(map[string]bool, len(names))
	for _, n := range names {
		owned[n] = true
	}
	var stray []string
	fs.Visit(func(fl *flag.Flag) {
		if owned[fl.Name] {
			stray = append(stray, "-"+fl.Name)
		}
	})
	return stray
}
