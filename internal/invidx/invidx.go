// Package invidx implements the inverted-list index §3.5 names as future
// work: "inverted lists for untyped or bad records, i.e. records not
// obeying a specific schema".
//
// Bad records are kept verbatim in a block's bad-record section (§3.1);
// an inverted index over their tokens lets a job find the blocks and
// records mentioning a term without scanning every bad record of every
// block. The same structure doubles as the full-text index stand-in for
// the related-work comparison with Twitter's Hadoop full-text indexing
// (§5): building it costs a tokenization pass plus postings
// materialization — far more per byte than HAIL's sort-based clustered
// indexing, which is the comparison the paper reports.
package invidx

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"
)

// Index maps lower-cased tokens to the ascending record IDs containing
// them.
type Index struct {
	numRecords int
	postings   map[string][]uint32
	tokens     []string // sorted, for deterministic serialization
}

// Tokenize splits text into lower-cased alphanumeric tokens.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Build indexes the given records (typically a block's bad-record
// section).
func Build(records []string) *Index {
	ix := &Index{numRecords: len(records), postings: make(map[string][]uint32)}
	for id, rec := range records {
		seen := make(map[string]bool)
		for _, tok := range Tokenize(rec) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			ix.postings[tok] = append(ix.postings[tok], uint32(id))
		}
	}
	ix.tokens = make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		ix.tokens = append(ix.tokens, t)
	}
	sort.Strings(ix.tokens)
	return ix
}

// NumRecords returns the number of indexed records.
func (ix *Index) NumRecords() int { return ix.numRecords }

// NumTokens returns the vocabulary size.
func (ix *Index) NumTokens() int { return len(ix.tokens) }

// Lookup returns the ascending record IDs containing the token. The
// returned slice must not be modified.
func (ix *Index) Lookup(token string) []uint32 {
	return ix.postings[strings.ToLower(token)]
}

// LookupAll intersects the postings of every token (conjunctive search).
func (ix *Index) LookupAll(tokens ...string) []uint32 {
	if len(tokens) == 0 {
		return nil
	}
	result := ix.Lookup(tokens[0])
	for _, tok := range tokens[1:] {
		result = intersect(result, ix.Lookup(tok))
		if len(result) == 0 {
			return nil
		}
	}
	return result
}

func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Binary layout: magic "HINV", version uint16, numRecords uint32,
// numTokens uint32, then per token {len uint16, bytes, count uint32,
// postings...} with delta-encoded postings.
const (
	invMagic   = "HINV"
	invVersion = 1
)

// Marshal serializes the index. Postings are delta-encoded; an inverted
// index is dense by nature, which is exactly why the paper prefers sparse
// clustered indexes for typed data.
func (ix *Index) Marshal() ([]byte, error) {
	out := make([]byte, 0, 14)
	out = append(out, invMagic...)
	out = binary.LittleEndian.AppendUint16(out, invVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.numRecords))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ix.tokens)))
	for _, tok := range ix.tokens {
		if len(tok) > math.MaxUint16 {
			return nil, fmt.Errorf("invidx: token too long")
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(tok)))
		out = append(out, tok...)
		ps := ix.postings[tok]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(ps)))
		prev := uint32(0)
		for _, p := range ps {
			out = binary.LittleEndian.AppendUint32(out, p-prev)
			prev = p
		}
	}
	return out, nil
}

// Unmarshal decodes a serialized index.
func Unmarshal(data []byte) (*Index, error) {
	if len(data) < 14 {
		return nil, fmt.Errorf("invidx: too short")
	}
	if string(data[:4]) != invMagic {
		return nil, fmt.Errorf("invidx: bad magic %q", data[:4])
	}
	p := 4
	if v := binary.LittleEndian.Uint16(data[p:]); v != invVersion {
		return nil, fmt.Errorf("invidx: unsupported version %d", v)
	}
	p += 2
	ix := &Index{postings: make(map[string][]uint32)}
	ix.numRecords = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	nTokens := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	for i := 0; i < nTokens; i++ {
		if p+2 > len(data) {
			return nil, fmt.Errorf("invidx: truncated token header")
		}
		tl := int(binary.LittleEndian.Uint16(data[p:]))
		p += 2
		if p+tl+4 > len(data) {
			return nil, fmt.Errorf("invidx: truncated token")
		}
		tok := string(data[p : p+tl])
		p += tl
		n := int(binary.LittleEndian.Uint32(data[p:]))
		p += 4
		if p+4*n > len(data) {
			return nil, fmt.Errorf("invidx: truncated postings for %q", tok)
		}
		ps := make([]uint32, n)
		prev := uint32(0)
		for j := 0; j < n; j++ {
			prev += binary.LittleEndian.Uint32(data[p:])
			ps[j] = prev
			p += 4
		}
		ix.postings[tok] = ps
		ix.tokens = append(ix.tokens, tok)
	}
	for i := 1; i < len(ix.tokens); i++ {
		if ix.tokens[i-1] >= ix.tokens[i] {
			return nil, fmt.Errorf("invidx: tokens out of order")
		}
	}
	return ix, nil
}
