package invidx

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var docs = []string{
	"GET /index.html HTTP/1.1 broken header",
	"malformed record with STRANGE bytes",
	"another broken LINE from sourceIP 134.96.223.160",
	"",
	"broken broken broken",
	"134.96.223.160 strikes again",
}

func TestTokenize(t *testing.T) {
	got := Tokenize("GET /a-b.html?q=1 X")
	want := []string{"get", "a", "b", "html", "q", "1", "x"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty text produced tokens")
	}
}

func TestLookup(t *testing.T) {
	ix := Build(docs)
	if ix.NumRecords() != len(docs) {
		t.Fatalf("NumRecords = %d", ix.NumRecords())
	}
	got := ix.Lookup("broken")
	want := []uint32{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Lookup(broken) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("posting %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Case-insensitive; duplicates within one record appear once.
	if len(ix.Lookup("STRANGE")) != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if ix.Lookup("absent-token") != nil {
		t.Error("absent token returned postings")
	}
}

func TestLookupAll(t *testing.T) {
	ix := Build(docs)
	got := ix.LookupAll("broken", "line")
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("LookupAll = %v, want [2]", got)
	}
	if ix.LookupAll("broken", "absent") != nil {
		t.Error("conjunction with absent token matched")
	}
	if ix.LookupAll() != nil {
		t.Error("empty conjunction matched")
	}
	// The needle IP, tokenized, appears in records 2 and 5.
	ip := ix.LookupAll("134", "96", "223", "160")
	if len(ip) != 2 || ip[0] != 2 || ip[1] != 5 {
		t.Errorf("IP search = %v, want [2 5]", ip)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ix := Build(docs)
	data, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != ix.NumRecords() || got.NumTokens() != ix.NumTokens() {
		t.Fatal("metadata mismatch")
	}
	for _, tok := range []string{"broken", "strange", "134", "again"} {
		a, b := ix.Lookup(tok), got.Lookup(tok)
		if len(a) != len(b) {
			t.Fatalf("%q: %v vs %v", tok, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q posting %d differs", tok, i)
			}
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	ix := Build(docs)
	data, _ := ix.Marshal()
	if _, err := Unmarshal(data[:8]); err == nil {
		t.Error("truncated index accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Unmarshal(data[:len(data)-2]); err == nil {
		t.Error("truncated postings accepted")
	}
}

func TestPostingsInvariant(t *testing.T) {
	// Property: every record that contains a token is in its postings,
	// ascending, exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
		records := make([]string, 50)
		for i := range records {
			var sb strings.Builder
			for w := 0; w < rng.Intn(8); w++ {
				sb.WriteString(vocab[rng.Intn(len(vocab))])
				sb.WriteByte(' ')
			}
			records[i] = sb.String()
		}
		ix := Build(records)
		for _, tok := range vocab {
			ps := ix.Lookup(tok)
			want := map[uint32]bool{}
			for id, rec := range records {
				if strings.Contains(rec, tok) {
					want[uint32(id)] = true
				}
			}
			if len(ps) != len(want) {
				return false
			}
			for i, p := range ps {
				if !want[p] || (i > 0 && ps[i-1] >= p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	records := make([]string, 2000)
	var bytes int64
	for i := range records {
		records[i] = fmt.Sprintf("record %d with some tokens %d %d and text noise-%d",
			i, rng.Intn(100), rng.Intn(1000), rng.Intn(50))
		bytes += int64(len(records[i]))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(records)
	}
}
