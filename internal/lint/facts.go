package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed datum an analyzer attaches to a types.Object or a
// package while analyzing the package that declares it, and reads back
// when analyzing a dependent package — the dependency-free mirror of
// golang.org/x/tools/go/analysis facts. Because every package in one run
// is type-checked by one shared loader, object identity is stable across
// packages and the store can live in memory; RunAnalyzers guarantees
// dependencies are analyzed before dependents, so by the time a pass
// imports a fact the exporting pass has already run.
//
// Fact types must be pointers to JSON-marshalable structs (the CLI's
// -factdir flag dumps the store per package for CI caching and audit) and
// must be registered in the owning Analyzer's FactTypes — exporting an
// unregistered fact type is a programming error and panics.
type Fact interface {
	AFact()
}

type objFactKey struct {
	a   *Analyzer
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	a   *Analyzer
	pkg *types.Package
	t   reflect.Type
}

// A FactSet is the in-memory fact store for one RunAnalyzers call.
type FactSet struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

func newFactSet() *FactSet {
	return &FactSet{
		obj: make(map[objFactKey]Fact),
		pkg: make(map[pkgFactKey]Fact),
	}
}

// validFact panics unless fact is a registered pointer fact type of a.
func validFact(a *Analyzer, fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: %s: fact %T must be a pointer", a.Name, fact))
	}
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return t
		}
	}
	panic(fmt.Sprintf("lint: %s: fact type %T not declared in FactTypes", a.Name, fact))
}

// copyFact copies the stored fact's value into the caller's pointer.
func copyFact(dst, src Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func (fs *FactSet) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	if obj == nil {
		panic(fmt.Sprintf("lint: %s: ExportObjectFact on nil object", a.Name))
	}
	fs.obj[objFactKey{a, obj, validFact(a, fact)}] = fact
}

func (fs *FactSet) importObject(a *Analyzer, obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := fs.obj[objFactKey{a, obj, validFact(a, fact)}]
	if !ok {
		return false
	}
	copyFact(fact, got)
	return true
}

func (fs *FactSet) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	fs.pkg[pkgFactKey{a, pkg, validFact(a, fact)}] = fact
}

func (fs *FactSet) importPackage(a *Analyzer, pkg *types.Package, fact Fact) bool {
	got, ok := fs.pkg[pkgFactKey{a, pkg, validFact(a, fact)}]
	if !ok {
		return false
	}
	copyFact(fact, got)
	return true
}

// ExportObjectFact attaches a fact to obj for dependent packages' passes
// (and the module Finish phase) to read.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of fact's type attached to obj into
// fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, fact)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact of fact's type attached to pkg into
// fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.importPackage(p.Analyzer, pkg, fact)
}

// A PackageFact pairs a package with one fact attached to it.
type PackageFact struct {
	Pkg  *types.Package
	Fact Fact
}

// A ModulePass is the view an analyzer's Finish hook gets after every
// package pass has run: the whole-module fact store plus allow-aware
// reporting. Module-phase diagnostics (a lock cycle spanning three
// packages has no single home package) are positioned at a representative
// site and respect lint:allow directives on that site like any other.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	facts  *FactSet
	allows map[string][]allowDirective
	diags  *[]Diagnostic
}

// AllPackageFacts returns every package fact exported by this analyzer,
// sorted by package path for deterministic module-phase output.
func (mp *ModulePass) AllPackageFacts() []PackageFact {
	var out []PackageFact
	for k, f := range mp.facts.pkg {
		if k.a == mp.Analyzer {
			out = append(out, PackageFact{Pkg: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pkg.Path() < out[j].Pkg.Path() })
	return out
}

// ImportPackageFact reads one package's fact, as in a package pass.
func (mp *ModulePass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return mp.facts.importPackage(mp.Analyzer, pkg, fact)
}

// ReportfAt records a module-phase diagnostic at a previously resolved
// position (facts carry token.Position, not token.Pos, so they stay
// serializable), honoring lint:allow directives at that position.
func (mp *ModulePass) ReportfAt(pos token.Position, format string, args ...any) {
	for _, d := range mp.allows[pos.Filename] {
		if d.analyzer == mp.Analyzer.Name && (d.line == pos.Line || d.line == pos.Line-1) {
			return
		}
	}
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// factObjectName renders an object for the JSON dump: methods as
// (T).Name, everything else by plain name.
func factObjectName(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		if recv := recvNamed(f); recv != nil {
			return "(" + recv.Obj().Name() + ")." + f.Name()
		}
	}
	return obj.Name()
}

// PackageFactsJSON serializes every fact attached to the named package —
// package facts under "package", object facts under "obj:<name>" — keyed
// by analyzer. The dump is the CI-cacheable, human-auditable image of the
// in-memory store; the store itself stays authoritative.
func (fs *FactSet) PackageFactsJSON(pkgPath string) ([]byte, error) {
	doc := make(map[string]map[string]any)
	bucket := func(analyzer string) map[string]any {
		b, ok := doc[analyzer]
		if !ok {
			b = make(map[string]any)
			doc[analyzer] = b
		}
		return b
	}
	for k, f := range fs.pkg {
		if k.pkg.Path() == pkgPath {
			bucket(k.a.Name)["package"] = f
		}
	}
	for k, f := range fs.obj {
		if k.obj.Pkg() != nil && k.obj.Pkg().Path() == pkgPath {
			bucket(k.a.Name)["obj:"+factObjectName(k.obj)] = f
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}
