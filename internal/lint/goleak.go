package lint

import (
	"go/ast"
	"go/types"
)

// goLoopsForeverFact marks a function whose body provably never returns:
// it contains an infinite `for` with no exit statement (return, break out
// of the loop, panic). Exported so `go pkg.Worker()` in a dependent
// package is checked without re-analysis.
type goLoopsForeverFact struct {
	Loops bool
}

func (*goLoopsForeverFact) AFact() {}

// GoLeak requires a provable termination path for every goroutine spawned
// outside tests, targeting the two leak shapes that survive every test
// run because nothing ever observes them:
//
//  1. A nonterminating body: an infinite `for` whose body (including any
//     select) contains no return, no break out of the loop, and no panic
//     can never exit — there is no stop channel, context case, or
//     predicate that ends it. The property propagates through the call
//     graph (a finite wrapper around a nonterminating helper still never
//     terminates) and across packages as a fact. A loop that exits via
//     `case <-stop: return` / `ctx.Done()` / a predicate return passes.
//     Note `break` inside `select` exits the select, not the loop — a
//     classic bug this analyzer models precisely.
//
//  2. A send on an unbuffered channel made in the spawning function that
//     the spawner never receives from: the goroutine blocks at the send
//     forever once the spawner returns (the `go func() { ch <- work() }`
//     + early-return-on-timeout shape). Buffered channels (cmd/haild's
//     serveErr) and channels the spawner demonstrably receives from are
//     accepted.
//
// WaitGroup/semaphore-disciplined goroutines (mapred's task lanes,
// experiments' storms) pass rule 1 trivially — their bodies are finite —
// and rule 2 by buffering; the discipline this analyzer adds is that
// resident loops (internal/server's persistLoop) must carry an explicit
// stop signal.
var GoLeak = &Analyzer{
	Name:      "goleak",
	Doc:       "every spawned goroutine must have a provable termination path",
	Run:       runGoLeak,
	FactTypes: []Fact{(*goLoopsForeverFact)(nil)},
}

func runGoLeak(pass *Pass) error {
	decls := funcDecls(pass)
	declOf := make(map[*types.Func]*ast.FuncDecl)
	direct := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)

	for _, fd := range decls {
		fn := declaredFunc(pass.Info, fd)
		if fn == nil {
			continue
		}
		declOf[fn] = fd
		if hasNoExitLoop(fd.Body) {
			direct[fn] = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // a closure's loops are its own
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg {
				callees[fn] = append(callees[fn], callee)
			} else if pass.IsLocalPkg != nil && pass.IsLocalPkg(callee.Pkg().Path()) {
				var f goLoopsForeverFact
				if pass.ImportObjectFact(callee, &f) && f.Loops {
					direct[fn] = true
				}
			}
			return true
		})
	}
	loopsForever := closure(direct, callees)
	for fn, loops := range loopsForever {
		if loops {
			pass.ExportObjectFact(fn, &goLoopsForeverFact{Loops: true})
		}
	}

	// Check every go statement.
	for _, fd := range decls {
		unbuffered := unbufferedChans(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if hasNoExitLoop(lit.Body) || closureCallsForever(pass, lit.Body, loopsForever) {
					pass.Reportf(gs.Pos(),
						"goroutine never terminates: infinite loop with no return/break — give it a stop channel or context case")
				}
				checkUnbufferedSends(pass, gs, lit.Body, unbuffered)
				return true
			}
			callee := calleeFunc(pass.Info, gs.Call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			forever := false
			if callee.Pkg() == pass.Pkg {
				forever = loopsForever[callee]
			} else if pass.IsLocalPkg != nil && pass.IsLocalPkg(callee.Pkg().Path()) {
				var f goLoopsForeverFact
				forever = pass.ImportObjectFact(callee, &f) && f.Loops
			}
			if forever {
				pass.Reportf(gs.Pos(),
					"goroutine never terminates: %s loops forever with no return/break — give it a stop channel or context case", callee.Name())
			}
			return true
		})
	}
	return nil
}

// closureCallsForever reports whether a goroutine literal (unconditionally
// analyzed shallowly) calls a function known to never return.
func closureCallsForever(pass *Pass, body *ast.BlockStmt, loopsForever map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg() == pass.Pkg && loopsForever[callee] {
			found = true
		} else if pass.IsLocalPkg != nil && pass.IsLocalPkg(callee.Pkg().Path()) {
			var f goLoopsForeverFact
			if pass.ImportObjectFact(callee, &f) && f.Loops {
				found = true
			}
		}
		return true
	})
	return found
}

// hasNoExitLoop reports whether the body contains an infinite `for`
// (no condition) with no statement that can leave it: no return, no
// break binding to the loop (unlabeled breaks inside nested
// for/switch/select bind to those instead), no panic.
func hasNoExitLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			if !loopCanExit(fs) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopCanExit reports whether an infinite loop contains an exit: a
// return, a panic, or a break that binds to this loop (directly, or via
// a label on this loop).
func loopCanExit(loop *ast.ForStmt) bool {
	canExit := false
	// depth counts enclosing break-capturing statements below the loop:
	// an unlabeled break with depth > 0 exits something inner, not us.
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		if n == nil || canExit {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			canExit = true
		case *ast.BranchStmt:
			switch x.Tok.String() {
			case "break":
				if x.Label == nil && depth == 0 {
					canExit = true
				}
				// A labeled break is resolved by the caller walking from
				// the labeled statement; handled via labelBreaks below.
			case "goto":
				// A goto can jump anywhere, including out: give it the
				// benefit of the doubt.
				canExit = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				canExit = true
			}
			for _, a := range x.Args {
				scan(a, depth)
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Unlabeled breaks inside bind to the inner statement.
			for _, c := range children(n) {
				scan(c, depth+1)
			}
		default:
			for _, c := range children(n) {
				scan(c, depth)
			}
		}
	}
	for _, s := range loop.Body.List {
		scan(s, 0)
	}
	return canExit || labelBreaks(loop)
}

// labelBreaks reports whether the loop body contains a labeled break; the
// label analysis is coarse (any labeled break is treated as a possible
// exit), which errs toward accepting.
func labelBreaks(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "break" && b.Label != nil {
			found = true
		}
		return !found
	})
	return found
}

// children returns a node's direct AST children.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// unbufferedChans collects local channel variables created with
// make(chan T) — no capacity — in the function, minus any the function
// itself receives from (<-ch, range ch, select case <-ch): a send to a
// never-received unbuffered channel from a goroutine blocks forever.
func unbufferedChans(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	made := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue // make(chan T, n) is buffered; only 1-arg make counts
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if _, isChan := pass.Info.TypeOf(call.Args[0]).(*types.Chan); !isChan {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.Defs[lhs]; obj != nil {
				made[obj] = true
			}
		}
		return true
	})
	if len(made) == 0 {
		return nil
	}
	// Remove channels the spawner receives from anywhere (outside go
	// bodies): the send has a partner.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						delete(made, obj)
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					delete(made, obj)
				}
			}
		}
		return true
	})
	return made
}

// checkUnbufferedSends flags sends, inside a goroutine body, on spawn-site
// unbuffered channels that the spawner never receives from.
func checkUnbufferedSends(pass *Pass, gs *ast.GoStmt, body *ast.BlockStmt, unbuffered map[types.Object]bool) {
	if len(unbuffered) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && unbuffered[obj] {
			pass.Reportf(send.Pos(),
				"goroutine may block forever: send on unbuffered channel %s that the spawning function never receives from — buffer it or receive on every path", id.Name)
		}
		return true
	})
}
