package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sigReadsFact summarizes, for one function, the transitive set of
// tracked knob fields it reads — query.Query/query.Predicate fields and
// fields of any type carrying a QuerySignature method. Exported on the
// function object so a dependent package's pass can fold the summary into
// its own call-graph closure without re-analyzing the dependency.
type sigReadsFact struct {
	Reads []string
}

func (*sigReadsFact) AFact() {}

// SigFlow is the cache-signature completeness proof: the block-level
// result cache (internal/qcache) keys entries by (file, block,
// generation, QuerySignature, MapSig, replica), so any knob that changes
// a block scan's output and is NOT folded into QuerySignature makes the
// cache serve stale bytes the moment the knob flips. SigFlow computes,
// via per-function field-read summaries propagated across packages as
// facts, (a) the set of tracked fields the signature canonicalization
// transitively reads (the keyed set, rooted at each QuerySignature
// method) and (b) the set read on the block-scan path (rooted at the same
// receiver's Open/OpenBlock, expanded through the reader types those
// constructors build), and reports every scan-path read outside the keyed
// set.
//
// Tracked fields are those of query-package types and of the
// QuerySignature receiver itself. Three classes are exempt by
// construction: fields whose type lives in the hdfs package (the storage
// handle — block bytes are keyed by generation, so topology changes
// already miss), address-taken fields (atomic accumulators are outputs,
// not knobs; atomicfield polices them), and split-phase-only fields
// (split shape is keyed separately: the split cache key carries the
// sorted (block, generation) set and the pinned replica). MapSig's side
// of the key is enforced at runtime — mapred.Engine refuses to cache when
// Job.MapSig is empty.
var SigFlow = &Analyzer{
	Name:      "sigflow",
	Doc:       "every knob read on the block-scan path must flow into QuerySignature",
	Run:       runSigFlow,
	FactTypes: []Fact{(*sigReadsFact)(nil)},
}

func runSigFlow(pass *Pass) error {
	decls := funcDecls(pass)
	declOf := make(map[*types.Func]*ast.FuncDecl)
	callees := make(map[*types.Func][]*types.Func)
	direct := make(map[*types.Func]map[string]bool)
	constructed := make(map[*types.Func]map[string]bool)
	methodsOf := make(map[string][]*types.Func) // local type name → methods
	site := make(map[string]token.Pos)          // first in-package read site per key
	exempt := make(map[string]bool)             // hdfs-typed fields

	for _, fd := range decls {
		fn := declaredFunc(pass.Info, fd)
		if fn == nil {
			continue
		}
		declOf[fn] = fd
		if recv := recvNamed(fn); recv != nil && recv.Obj().Pkg() == pass.Pkg {
			methodsOf[recv.Obj().Name()] = append(methodsOf[recv.Obj().Name()], fn)
		}
		dr := make(map[string]bool)
		ct := make(map[string]bool)
		skip := writeTargets(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if skip[x] {
					return true
				}
				key, fieldType := trackedRead(pass, x)
				if key == "" {
					return true
				}
				dr[key] = true
				if _, ok := site[key]; !ok {
					site[key] = x.Sel.Pos()
				}
				if isHdfsTyped(fieldType) {
					exempt[key] = true
				}
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[x]; ok {
					if n := namedOrNil(tv.Type); n != nil && n.Obj().Pkg() == pass.Pkg {
						if _, isStruct := n.Underlying().(*types.Struct); isStruct {
							ct[n.Obj().Name()] = true
						}
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass.Info, x)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				} else if pass.IsLocalPkg != nil && pass.IsLocalPkg(callee.Pkg().Path()) {
					// Cross-package local callee: its summary is a fact the
					// dependency's pass already exported; fold it in as if
					// the reads were direct.
					var f sigReadsFact
					if pass.ImportObjectFact(callee, &f) {
						for _, r := range f.Reads {
							dr[r] = true
						}
					}
				}
			}
			return true
		})
		direct[fn] = dr
		constructed[fn] = ct
	}

	reads := closureSets(direct, callees)
	builds := closureSets(constructed, callees)

	// Export summaries for dependent packages.
	for fn, rs := range reads {
		if len(rs) == 0 {
			continue
		}
		out := make([]string, 0, len(rs))
		for k := range rs {
			out = append(out, k)
		}
		sort.Strings(out)
		pass.ExportObjectFact(fn, &sigReadsFact{Reads: out})
	}

	// For each QuerySignature receiver declared here, compare the keyed
	// closure against the scan-path closure.
	for fn, fd := range declOf {
		if fn.Name() != "QuerySignature" {
			continue
		}
		recv := recvNamed(fn)
		if recv == nil || recv.Obj().Pkg() != pass.Pkg {
			continue
		}
		keyed := reads[fn]

		// Scan roots: the receiver's Open/OpenBlock, expanded through every
		// local type a root (transitively) constructs — the reader object
		// Open returns is driven by the engine, so its whole method set is
		// on the scan path.
		scanFns := make(map[*types.Func]bool)
		for _, m := range methodsOf[recv.Obj().Name()] {
			if m.Name() == "Open" || m.Name() == "OpenBlock" {
				scanFns[m] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for f := range scanFns {
				for tn := range builds[f] {
					for _, m := range methodsOf[tn] {
						if !scanFns[m] {
							scanFns[m] = true
							changed = true
						}
					}
				}
			}
		}

		scanReads := make(map[string]bool)
		for f := range scanFns {
			for k := range reads[f] {
				scanReads[k] = true
			}
		}
		var missing []string
		for k := range scanReads {
			if !keyed[k] && !exempt[k] {
				missing = append(missing, k)
			}
		}
		sort.Strings(missing)
		for _, k := range missing {
			pos, ok := site[k]
			if !ok {
				pos = fd.Name.Pos()
			}
			pass.Reportf(pos,
				"%s is read on the block-scan path but never flows into %s.QuerySignature — an unkeyed knob serves stale cache entries when it changes",
				k, recv.Obj().Name())
		}
	}
	return nil
}

// trackedRead classifies a selector as a read of a tracked knob field,
// returning its fact key ("query.Query.Filter") and the field's type, or
// "" for untracked selections.
func trackedRead(pass *Pass, sel *ast.SelectorExpr) (string, types.Type) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	recv := namedOrNil(s.Recv())
	if recv == nil || recv.Obj().Pkg() == nil {
		return "", nil
	}
	pkgPath := recv.Obj().Pkg().Path()
	if !pkgPathMatches(pkgPath, "query") && !hasMethodNamed(recv, "QuerySignature") {
		return "", nil
	}
	return pkgTail(pkgPath) + "." + recv.Obj().Name() + "." + s.Obj().Name(), s.Obj().Type()
}

// isHdfsTyped reports whether a field's type (behind pointers) is
// declared in the hdfs package — the storage-handle exemption.
func isHdfsTyped(t types.Type) bool {
	n := namedOrNil(t)
	return n != nil && n.Obj().Pkg() != nil && pkgPathMatches(n.Obj().Pkg().Path(), "hdfs")
}

// writeTargets collects selectors that are assignment/IncDec targets or
// address-taken operands: writes and accumulator access, not knob reads.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	skip := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			skip[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		}
		return true
	})
	return skip
}
