package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Path is the import path ("repro/internal/hdfs", or "genbump" for a
	// fixture package).
	Path string
	// RelPath is Path with the module prefix stripped ("internal/hdfs");
	// equal to Path for fixture packages.
	RelPath string
	// IsLocal reports whether an import path belongs to the tree under
	// analysis rather than to the standard library.
	IsLocal func(path string) bool
	// Imports are the package's module-local (or fixture-local) direct
	// dependencies, sorted by path. RunAnalyzers follows them to analyze
	// dependencies first, so cross-package facts are available on import.
	Imports []*Package
}

// loader type-checks packages from source with no toolchain help beyond
// GOROOT: module-local (or fixture-local) import paths resolve to
// directories under the root and recurse through the loader itself;
// everything else falls through to the compiler's source importer, which
// reads the standard library from GOROOT/src. That keeps hailint working
// in offline builds, where golang.org/x/tools/go/packages cannot be
// vendored and no export data is installed.
type loader struct {
	fset      *token.FileSet
	root      string // filesystem root local paths resolve under
	prefix    string // import-path prefix mapping to root ("repro/" or "")
	stdlib    types.Importer
	loaded    map[string]*Package
	inFlight  map[string]bool
	testFiles bool
}

func newLoader(root, prefix string) *loader {
	fset := token.NewFileSet()
	// The source importer type-checks stdlib packages from GOROOT source.
	// cgo preprocessing would shell out to the toolchain, so force the
	// pure-Go fallbacks (netgo etc.) instead.
	build.Default.CgoEnabled = false
	return &loader{
		fset:     fset,
		root:     root,
		prefix:   prefix,
		stdlib:   importer.ForCompiler(fset, "source", nil),
		loaded:   make(map[string]*Package),
		inFlight: make(map[string]bool),
	}
}

// isLocal reports whether an import path resolves inside the loader's root.
func (l *loader) isLocal(path string) bool {
	if l.prefix != "" {
		return path == strings.TrimSuffix(l.prefix, "/") || strings.HasPrefix(path, l.prefix)
	}
	// Fixture mode: local iff a directory of that name exists under root.
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

func (l *loader) dirFor(path string) string {
	rel := l.relPath(path)
	if rel == "" {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// relPath strips the module prefix; the module root package itself (path
// equal to the module name, no slash) maps to "".
func (l *loader) relPath(path string) string {
	if l.prefix != "" && path == strings.TrimSuffix(l.prefix, "/") {
		return ""
	}
	return strings.TrimPrefix(path, l.prefix)
}

// Import implements types.Importer: local paths load recursively, the rest
// is standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if !l.isLocal(path) {
		return l.stdlib.Import(path)
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// load parses and type-checks one local package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.inFlight[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.inFlight[path] = true
	defer delete(l.inFlight, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %q: %v", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.testFiles && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %q: no Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %q: %v", path, err)
	}
	pkg := &Package{
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Path:    path,
		RelPath: l.relPath(path),
		IsLocal: l.isLocal,
	}
	// Local imports were loaded (and memoized) by conf.Check via Import;
	// record them so analysis can run dependencies first.
	depSeen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || depSeen[p] || !l.isLocal(p) {
				continue
			}
			depSeen[p] = true
			if dep, ok := l.loaded[p]; ok {
				pkg.Imports = append(pkg.Imports, dep)
			}
		}
	}
	sort.Slice(pkg.Imports, func(i, j int) bool { return pkg.Imports[i].Path < pkg.Imports[j].Path })
	l.loaded[path] = pkg
	return pkg, nil
}

// moduleName reads the module path out of root's go.mod.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// LoadModule loads the packages selected by patterns from the module rooted
// at root. Supported patterns mirror what the CLIs need: "./..." (every
// package), "./dir/..." (a subtree) and "./dir" (one package). Test files
// are not loaded: the invariants gate the shipped tree, and test-only
// packages would drag the loader through external test-package plumbing
// for no gain.
func LoadModule(root string, patterns []string) (pkgs []*Package, err error) {
	// The parser and type checker are fed arbitrary on-disk source; a
	// panic anywhere below (go/types has a history of crashers on exotic
	// inputs) must surface as a load error, not take down the CLI. The
	// loader fuzz test pins this contract.
	defer recoverLoadPanic(&err)
	mod, err := moduleName(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, mod+"/")

	var dirs []string
	seen := make(map[string]bool)
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Never skip the walk root itself: "." (and any base whose last
			// element starts with a dot) must still be descended into.
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) && !seen[p] {
				seen[p] = true
				dirs = append(dirs, p)
			}
			return nil
		})
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			if err := addTree(filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := mod
		if rel != "." {
			path = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadFixture loads one package from an analysistest-style fixture root
// (root/src/<path>), resolving the fixture's own imports against the same
// tree — testdata packages can model obs/hdfs shapes without importing the
// real modules. Fixture-local imports come back on Package.Imports, so
// RunAnalyzers sees them and computes their facts first.
func LoadFixture(root, path string) (pkg *Package, err error) {
	defer recoverLoadPanic(&err)
	l := newLoader(filepath.Join(root, "src"), "")
	return l.load(path)
}

// recoverLoadPanic converts a panic in the load path into an error.
func recoverLoadPanic(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("lint: loader panic: %v", r)
	}
}
