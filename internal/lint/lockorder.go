package lint

import (
	"go/ast"
	"go/types"
)

// guardedLockTypes are the fine-grained leaf locks of the storage layer.
// Holding one while acquiring another (any pairing, either order) is how
// the sharded namenode deadlocks: shard A → shard B in one goroutine and
// B → A in another. The locking discipline is therefore "leaf only": a
// dirShard or DataNode critical section does exactly its own map work and
// releases.
var guardedLockTypes = map[string]bool{"dirShard": true, "DataNode": true}

// lockFacadeTypes are the types whose exported methods take guarded locks
// internally; calling one from inside a critical section nests locks just
// as surely as a literal second mu.Lock().
var lockFacadeTypes = map[string]bool{"NameNode": true, "Cluster": true, "DataNode": true}

// LockOrder enforces that discipline statically, the way the shard stress
// tests check it dynamically: within one function, after a
// dirShard.mu/DataNode.mu acquisition (including the counting lock()/
// rlock() helpers), it reports any further guarded acquisition and any
// call to an exported NameNode/Cluster/DataNode method before the plain
// Unlock. A deferred Unlock keeps the section open to the function's end,
// which is exactly when the rule matters most.
// lockgraph generalizes this rule to a module-wide acquisition graph with
// cycle detection; lockorder stays for its sharper leaf-discipline
// diagnostics (counting lock()/rlock() helpers, façade-call bans) that
// the class-level graph cannot express.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "shard/datanode locks must not nest, and no façade calls under them",
	Run:  runLockOrder,
	// Purely local by design: the dirShard/DataNode leaf locks are
	// package-private, so every critical section is visible in-package.
	FactTypes: nil,
}

func runLockOrder(pass *Pass) error {
	// Only meaningful where the guarded types are visible: the package
	// declaring dirShard (internal/hdfs, or a fixture modeling it).
	if pass.Pkg.Scope().Lookup("dirShard") == nil {
		return nil
	}
	for _, fd := range funcDecls(pass) {
		walkLockStmts(pass, fd.Body.List, make(map[string]ast.Node))
	}
	return nil
}

// walkLockStmts interprets a statement list sequentially, tracking the set
// of held guarded locks keyed by the rendered owner expression ("s",
// "dn"). Compound statements recurse with a copy of the held set; their
// internal releases are not propagated past them (a branch that unlocks
// and returns does not release the fall-through path).
func walkLockStmts(pass *Pass, stmts []ast.Stmt, held map[string]ast.Node) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			checkNestedCalls(pass, st, held)
			if call, ok := s.X.(*ast.CallExpr); ok {
				lockStepCall(pass, call, held, false)
			}
		case *ast.AssignStmt:
			checkNestedCalls(pass, st, held)
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					lockStepCall(pass, call, held, false)
				}
			}
		case *ast.DeferStmt:
			checkNestedCalls(pass, st, held)
			// defer x.mu.Unlock() pins the section open for the rest of
			// the function: no state change, by design.
			if owner, _, acquire := lockCall(pass, s.Call); owner != "" && acquire {
				reportAcquire(pass, s.Call, owner, held)
				held[owner] = s.Call
			}
		case *ast.BlockStmt:
			walkLockStmts(pass, s.List, held)
		case *ast.IfStmt:
			walkBranch(pass, s.Init, held)
			scanExprCalls(pass, s.Cond, held)
			walkLockStmts(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkLockStmts(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			walkBranch(pass, s.Init, held)
			scanExprCalls(pass, s.Cond, held)
			walkLockStmts(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanExprCalls(pass, s.X, held)
			walkLockStmts(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			walkBranch(pass, s.Init, held)
			scanExprCalls(pass, s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLockStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			walkLockStmts(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.ReturnStmt:
			checkNestedCalls(pass, st, held)
			for _, r := range s.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					lockStepCall(pass, call, held, true)
				}
			}
		case *ast.GoStmt:
			// A spawned goroutine synchronizes on its own; its lock use is
			// a fresh stack.
		default:
			// IncDec, Send, Decl, Empty, Branch: scan their expressions.
			checkNestedCalls(pass, st, held)
		}
	}
}

// scanExprCalls checks one expression (an if/for condition, a switch tag,
// a range operand) for acquisitions or façade calls while locks are held.
func scanExprCalls(pass *Pass, e ast.Expr, held map[string]ast.Node) {
	if e == nil || len(held) == 0 {
		return
	}
	scanCalls(pass, e, held, nil)
}

func walkBranch(pass *Pass, st ast.Stmt, held map[string]ast.Node) {
	if st != nil {
		walkLockStmts(pass, []ast.Stmt{st}, held)
	}
}

func copyHeld(held map[string]ast.Node) map[string]ast.Node {
	out := make(map[string]ast.Node, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockStepCall applies one top-level call's effect on the held set:
// acquisitions are reported if something is already held, releases drop
// their key. readOnly suppresses the state change (calls in return
// expressions acquire but the function exits immediately after).
func lockStepCall(pass *Pass, call *ast.CallExpr, held map[string]ast.Node, readOnly bool) {
	owner, release, acquire := lockCall(pass, call)
	if owner == "" {
		if len(held) > 0 {
			checkFacadeCall(pass, call, held)
		}
		return
	}
	if acquire {
		reportAcquire(pass, call, owner, held)
		if !readOnly {
			held[owner] = call
		}
	}
	if release && !readOnly {
		delete(held, owner)
	}
}

func reportAcquire(pass *Pass, call *ast.CallExpr, owner string, held map[string]ast.Node) {
	if len(held) == 0 {
		return
	}
	for other := range held {
		pass.Reportf(call.Pos(), "acquiring %s lock while %s lock is held — shard/datanode locks must not nest", owner, other)
		return
	}
}

// lockCall classifies a call as a guarded acquisition or release and
// returns the rendered owner expression. Recognized shapes:
//
//	x.mu.Lock() / x.mu.RLock()     acquire (x of guarded type)
//	x.mu.Unlock() / x.mu.RUnlock() release
//	x.lock() / x.rlock()           acquire (the counting helpers)
func lockCall(pass *Pass, call *ast.CallExpr) (owner string, release, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return "", false, false
		}
		ownerType := pass.Info.TypeOf(muSel.X)
		if n := namedOrNil(ownerType); n == nil || !guardedLockTypes[n.Obj().Name()] {
			return "", false, false
		}
		owner = types.ExprString(muSel.X)
		isAcquire := sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
		return owner, !isAcquire, isAcquire
	case "lock", "rlock":
		recvType := pass.Info.TypeOf(sel.X)
		if n := namedOrNil(recvType); n == nil || !guardedLockTypes[n.Obj().Name()] {
			return "", false, false
		}
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// checkFacadeCall reports a call to an exported method of a lock-façade
// type made while a guarded lock is held — the call will take another
// guarded lock internally.
func checkFacadeCall(pass *Pass, call *ast.CallExpr, held map[string]ast.Node) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !fn.Exported() {
		return
	}
	recv := recvNamed(fn)
	if recv == nil || !lockFacadeTypes[recv.Obj().Name()] {
		return
	}
	for other := range held {
		pass.Reportf(call.Pos(), "call to locking method %s.%s while %s lock is held — release the shard lock first",
			recv.Obj().Name(), fn.Name(), other)
		return
	}
}

// checkNestedCalls scans a statement's sub-expressions (call arguments,
// index expressions) for acquisitions or façade calls hidden below the
// top level, which walkLockStmts interprets itself.
func checkNestedCalls(pass *Pass, st ast.Stmt, held map[string]ast.Node) {
	if len(held) == 0 {
		return
	}
	scanCalls(pass, st, held, topLevelCalls(st))
}

// scanCalls reports every guarded acquisition or façade call under n,
// skipping calls in skip and the bodies of closures (they run on their
// own stack/time).
func scanCalls(pass *Pass, n ast.Node, held map[string]ast.Node, skip map[*ast.CallExpr]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || skip[call] {
			return true
		}
		if owner, _, acquire := lockCall(pass, call); owner != "" {
			if acquire {
				reportAcquire(pass, call, owner, held)
			}
			return true
		}
		checkFacadeCall(pass, call, held)
		return true
	})
}

// topLevelCalls returns the calls walkLockStmts already interpreted for
// this statement, so checkNestedCalls does not double-report them.
func topLevelCalls(st ast.Stmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			out[call] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				out[call] = true
			}
		}
	case *ast.DeferStmt:
		out[s.Call] = true
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				out[call] = true
			}
		}
	}
	return out
}
