package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink reports error results of repo-internal calls that are silently
// dropped: a bare call statement (`c.Save(dir)`), a blank assignment in
// the error slot (`_ = c.Save(dir)`), or a dropped error on defer/go.
// Only module-local callees are policed — the standard library has
// legitimately ignorable errors (fmt printing above all); ours do not:
// every error a HAIL layer returns marks data that was not persisted,
// a replica that was not registered, or a budget that was not charged.
// Deliberate drops take //lint:allow errsink <reason>.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "error results of repo-internal calls must not be dropped",
	Run:  runErrSink,
}

func runErrSink(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, st.Call)
			case *ast.GoStmt:
				checkDroppedCall(pass, st.Call)
			case *ast.AssignStmt:
				checkBlankErr(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkDroppedCall flags a statement-position call to a local function
// whose results include an error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	fn := localCallee(pass, call)
	if fn == nil {
		return
	}
	if errorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s dropped", fn.Name())
}

// checkBlankErr flags `_ = localCall()` / `x, _ := localCall()` where the
// blank identifier swallows the error result — including parallel tuple
// assignments (`a, _ = f(), g()`), where each right-hand side is a
// single-valued expression and position i pairs with Lhs[i]. ast.Inspect
// reaches assignments in `if`/`for` init statements like any other, so
// those forms are covered by the same paths (regression-pinned in the
// errsink fixture).
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := localCallee(pass, call)
		if fn == nil {
			return
		}
		idx := errorResultIndex(fn)
		if idx < 0 || idx >= len(as.Lhs) {
			return
		}
		if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(), "error result of %s assigned to blank identifier", fn.Name())
		}
		return
	}
	// Parallel assignment: every RHS yields exactly one value (the
	// compiler rejects multi-result calls here), so a local call with an
	// error result assigned to a blank slot drops that error.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := localCallee(pass, call)
		if fn == nil || errorResultIndex(fn) < 0 {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "error result of %s assigned to blank identifier", fn.Name())
		}
	}
}

// localCallee resolves a call to a function declared in the tree under
// analysis (this package included), or nil.
func localCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg() == pass.Pkg {
		return fn
	}
	if pass.IsLocalPkg != nil && pass.IsLocalPkg(fn.Pkg().Path()) {
		return fn
	}
	return nil
}

// errorResultIndex returns the position of the error result in fn's
// signature, or -1 if it returns none. By repo convention the error is
// the last result.
func errorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	last := res.At(res.Len() - 1).Type()
	if named := namedOrNil(last); named != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return res.Len() - 1
	}
	return -1
}
