// Fixture for the spanend analyzer: spans must End() on every path or
// escape to an owner.
package spanend

import "obs"

func work() {}

// deferEnd is the repo's dominant idiom: defer guards every exit.
func deferEnd(tr *obs.Trace) {
	sp := tr.StartSpan("ok")
	defer sp.End()
	work()
}

// endOnAllBranches closes the span on both the early return and the
// fall-through.
func endOnAllBranches(tr *obs.Trace, b bool) {
	sp := tr.StartSpan("branches")
	if b {
		sp.End()
		return
	}
	sp.SetInt("k", 1)
	sp.End()
}

// leakEarlyReturn forgets the span on one return path.
func leakEarlyReturn(tr *obs.Trace, b bool) {
	sp := tr.StartSpan("leak")
	if b {
		return // want `span sp may not be ended on this return path`
	}
	sp.End()
}

// leakFallThrough ends the span only inside one branch.
func leakFallThrough(tr *obs.Trace, b bool) {
	sp := tr.StartSpan("leak") // want `span sp may reach the end of leakFallThrough without End`
	if b {
		sp.End()
	}
}

// leakLoopZeroIterations: a loop body that Ends the span does not help
// when the loop runs zero times.
func leakLoopZeroIterations(tr *obs.Trace, items []int) {
	sp := tr.StartSpan("loop") // want `span sp may reach the end of leakLoopZeroIterations without End`
	for range items {
		sp.End()
	}
}

// switchNoDefault: with no default clause the no-match path carries the
// open span to the function end.
func switchNoDefault(tr *obs.Trace, k int) {
	sp := tr.StartSpan("switch") // want `span sp may reach the end of switchNoDefault without End`
	switch k {
	case 1:
		sp.End()
	case 2:
		sp.End()
	}
}

// switchWithDefault covers every path.
func switchWithDefault(tr *obs.Trace, k int) {
	sp := tr.StartSpan("switch")
	switch k {
	case 1:
		sp.End()
	default:
		sp.End()
	}
}

// escapeAsParent: handing the span to StartSpan as a parent transfers
// ownership; the child is tracked and closed.
func escapeAsParent(tr *obs.Trace) {
	parent := tr.StartSpan("parent")
	child := tr.StartSpan("child", parent)
	child.End()
}

// escapeReturn: the caller owns a returned span.
func escapeReturn(tr *obs.Trace) obs.Span {
	sp := tr.StartSpan("ret")
	return sp
}

// escapeClosure: a closure capturing the span may End it later.
func escapeClosure(tr *obs.Trace) func() {
	sp := tr.StartSpan("closure")
	return func() { sp.End() }
}

// discarded: a span-returning call in statement position can never be
// ended by anyone.
func discarded(tr *obs.Trace) {
	tr.StartSpan("gone") // want `span discarded`
}
