// Fixture for the lockorder analyzer: dirShard/DataNode locks are leaf
// locks — they never nest, and no exported NameNode/Cluster/DataNode
// method runs inside their critical sections.
package lockorder

import "sync"

type dirShard struct {
	mu    sync.RWMutex
	reps  map[int][]int
	locks int
}

// lock/rlock are the counting helpers the analyzer treats as acquisitions.
func (s *dirShard) lock()  { s.mu.Lock(); s.locks++ }
func (s *dirShard) rlock() { s.mu.RLock() }

type DataNode struct {
	mu     sync.Mutex
	blocks map[int][]byte
}

type NameNode struct {
	shards []*dirShard
}

func (n *NameNode) Lookup(b int) []int { return nil }
func (n *NameNode) helper()            {}

type Cluster struct{ nn *NameNode }

func (c *Cluster) KillNode(id int) bool { return false }

// nestTwoShards is the canonical deadlock shape: A→B here, B→A elsewhere.
func nestTwoShards(a, b *dirShard) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring b lock while a lock is held`
	b.mu.Unlock()
	a.mu.Unlock()
}

// sequentialOK releases before the next acquisition.
func sequentialOK(a, b *dirShard) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// nestViaHelper: the counting helper acquires just as surely as mu.Lock.
func nestViaHelper(s *dirShard, dn *DataNode) {
	s.lock()
	dn.mu.Lock() // want `acquiring dn lock while s lock is held`
	dn.mu.Unlock()
	s.mu.Unlock()
}

// facadeUnderDeferredLock: a deferred RUnlock pins the section open to
// the function's end, so the Lookup call runs under the read lock.
func facadeUnderDeferredLock(s *dirShard, nn *NameNode) []int {
	s.rlock()
	defer s.mu.RUnlock()
	return nn.Lookup(1) // want `call to locking method NameNode\.Lookup while s lock is held`
}

// facadeInCondition: locking calls hidden in an if condition count too.
func facadeInCondition(s *dirShard, c *Cluster) {
	s.mu.Lock()
	if c.KillNode(1) { // want `call to locking method Cluster\.KillNode while s lock is held`
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// goroutineOwnStack: a spawned goroutine runs on its own stack and
// synchronizes on its own; its lock use is not "under" ours.
func goroutineOwnStack(s *dirShard, nn *NameNode) {
	s.mu.Lock()
	go func() {
		nn.Lookup(1)
	}()
	s.mu.Unlock()
}

// unexportedUnderLock: unexported helpers are assumed lock-free by
// convention; only exported façade methods re-lock.
func unexportedUnderLock(s *dirShard, nn *NameNode) {
	s.mu.Lock()
	nn.helper()
	s.mu.Unlock()
}

// facadeAfterRelease: once the lock drops, façade calls are fine.
func facadeAfterRelease(s *dirShard, nn *NameNode) []int {
	s.mu.Lock()
	s.mu.Unlock()
	return nn.Lookup(1)
}
