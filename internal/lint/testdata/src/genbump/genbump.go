// Fixture for the genbump analyzer: exported entry points that mutate a
// dirShard's replica/generation maps must (transitively) fire
// notifyChanged. The package declares its own dirShard, which is how the
// analyzer self-scopes.
package genbump

type blockID int

type dirShard struct {
	reps   map[blockID][]int
	gens   map[blockID]uint64
	blocks map[blockID][]int
	files  map[string][]blockID
}

type NameNode struct {
	shard *dirShard
}

func (n *NameNode) notifyChanged(b blockID) {}

// RegisterReplica models the real split: unexported locked writer,
// exported wrapper that fires the hook. Clean.
func (n *NameNode) RegisterReplica(b blockID, node int) {
	n.registerLocked(b, node)
	n.notifyChanged(b)
}

func (n *NameNode) registerLocked(b blockID, node int) {
	n.shard.reps[b] = append(n.shard.reps[b], node)
}

// SilentBump reaches a generation-map write through a helper but never
// notifies: the cached results for the block go stale.
func (n *NameNode) SilentBump(b blockID) { // want `SilentBump mutates dirShard replica/generation maps but never fires notifyChanged`
	n.bumpGen(b)
}

func (n *NameNode) bumpGen(b blockID) {
	n.shard.gens[b]++
}

// Evict mutates through the delete built-in, which has no *types.Func.
func (n *NameNode) Evict(b blockID) { // want `Evict mutates dirShard replica/generation maps but never fires notifyChanged`
	delete(n.shard.reps, b)
}

// Rename touches only the file table, which does not affect replica
// routing: no notification required.
func (n *NameNode) Rename(oldName, newName string) {
	n.shard.files[newName] = n.shard.files[oldName]
	delete(n.shard.files, oldName)
}

// NotifyOnly fires the hook without writing anything: harmless.
func (n *NameNode) NotifyOnly(b blockID) {
	n.notifyChanged(b)
}
