// The goleak fixture demonstrates both leak shapes on spawned
// goroutines — nonterminating bodies (directly, through a local wrapper,
// and across the package boundary via the work dependency's facts) and
// sends on unbuffered spawn-site channels the spawner never receives
// from — next to the accepted disciplines: stop channels, buffered
// channels, received-from channels, and finite predicate loops.
package goleak

import "work"

func step() {}

// spin never returns; wrap looks finite but transitively never returns;
// localWrap chains the local call graph into the work package's fact.
func spin() {
	for {
		step()
	}
}

func wrap() {
	spin()
}

func localWrap() {
	work.Forever()
}

// Literal bodies are analyzed in place.
func spawnLitLoop() {
	go func() { // want `goroutine never terminates: infinite loop with no return/break`
		for {
			step()
		}
	}()
}

// The classic bug goleak models precisely: break exits the select, not
// the for, so this loop has no exit.
func breakInSelect(stop chan struct{}) {
	go func() { // want `goroutine never terminates: infinite loop with no return/break`
		for {
			select {
			case <-stop:
				break
			}
		}
	}()
}

// Named spawns resolve through the nontermination closure…
func spawnNamed() {
	go spin() // want `goroutine never terminates: spin loops forever with no return/break`
}

func spawnWrapped() {
	go wrap() // want `goroutine never terminates: wrap loops forever with no return/break`
}

// …and across the package boundary through facts, directly or via a
// local wrapper.
func spawnCross() {
	go work.Forever() // want `goroutine never terminates: Forever loops forever with no return/break`
}

func spawnLocalWrap() {
	go localWrap() // want `goroutine never terminates: localWrap loops forever with no return/break`
}

func compute() int { return 42 }

// The early-return-on-timeout shape: once the spawner returns, the send
// blocks forever.
func timeoutRace() {
	ch := make(chan int)
	go func() {
		ch <- compute() // want `goroutine may block forever: send on unbuffered channel ch`
	}()
}

// Accepted: a stop-channel case ends the loop.
func stopChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				step()
			}
		}
	}()
}

// Accepted: the dependency's loop carries the stop discipline.
func stopCross(stop chan struct{}) {
	go work.Until(stop)
}

// Accepted: a buffered channel absorbs the send (cmd/haild's serveErr).
func buffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
}

// Accepted: the spawner receives, so the send has a partner.
func received() int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// Accepted: a predicate loop is finite.
func predicateLoop(n int) {
	go func() {
		for i := 0; i < n; i++ {
			step()
		}
	}()
}

// Accepted: a labeled break is an exit even from inside a select.
func labeledBreak(stop chan struct{}) {
	go func() {
	pump:
		for {
			select {
			case <-stop:
				break pump
			}
		}
	}()
}
