// Fixture for the lint:allow machinery, driven through the errsink
// analyzer (the easiest one to trigger deliberately).
package allow

func save() error { return nil }

// suppressedSameLine: directive on the offending line.
func suppressedSameLine() {
	save() //lint:allow errsink deliberate fire-and-forget for the fixture
}

// suppressedLineAbove: the standalone-comment form covers the line below.
func suppressedLineAbove() {
	//lint:allow errsink the drop is the scenario being modeled
	save()
}

// wrongAnalyzer: a directive for a different analyzer suppresses nothing.
func wrongAnalyzer() {
	save() /* want `error result of save dropped` */ //lint:allow spanend names the wrong analyzer on purpose
}

// tooFarAway: a directive two lines up is out of range.
func tooFarAway() {
	//lint:allow errsink too far from the offense to count

	save() // want `error result of save dropped`
}

// missingReason: an unauditable directive is itself reported and
// suppresses nothing.
func missingReason() {
	/* want `lint:allow errsink needs a reason` */ //lint:allow errsink
	save()                                         // want `error result of save dropped`
}

// malformed: no analyzer name at all.
func malformed() {
	/* want `malformed lint:allow comment` */ //lint:allow
	save()                                    // want `error result of save dropped`
}
