// Package query models repro/internal/query for the sigflow fixture: the
// signature canonicalization (Signature → Canonical) reads Column, Lo and
// Hi — but deliberately not Aux — so a dependent fixture package
// exercises cross-package field-read facts in both directions: keyed
// fields imported into the keyed closure, and an unkeyed one surfacing as
// a finding at its scan-path read site.
package query

import "strconv"

// Predicate is one conjunct. Aux is a knob the canonicalization ignores.
type Predicate struct {
	Column int
	Lo, Hi int
	Aux    int
}

// Canonical renders the conjunct for signature purposes.
func (p Predicate) Canonical() string {
	return strconv.Itoa(p.Column) + ":" + strconv.Itoa(p.Lo) + "-" + strconv.Itoa(p.Hi)
}

// Matches applies the conjunct to one value.
func (p Predicate) Matches(v int) bool {
	return p.Lo <= v && v <= p.Hi
}

// Query is a conjunction plus a projection.
type Query struct {
	Filter     []Predicate
	Projection []int
}

// Signature is the cache key's query component.
func (q *Query) Signature() string {
	s := ""
	for _, p := range q.Filter {
		s += p.Canonical() + ";"
	}
	for _, c := range q.Projection {
		s += strconv.Itoa(c) + ","
	}
	return s
}
