// The lockgraph fixture drives the module-wide lock-acquisition graph
// through the facts mechanism in both directions: a call into the lockz
// dependency under a held local lock contributes the callee's
// transitive acquisitions (object fact), lockz's internal Store.mu →
// Reg.Mu nesting arrives as a package fact, and a direct section on the
// dependency's exported lock closes the cycle — which no single package
// can see. RWMutex upgrades and intra-class nesting are reported too;
// ordered acyclic nesting, sequential sections, TryLock, and
// goroutine-fresh stacks are the accepted shapes.
package lockgraph

import (
	"sync"

	"lockz"
)

type A struct {
	mu    sync.Mutex
	count int
}

// Flush stores under the A lock: with lockz's facts, this is the edge
// lockgraph.A.mu → lockz.Store.mu (and, transitively, → lockz.Reg.Mu).
// Together with Touch's Reg.Mu → A.mu edge the class graph is cyclic.
func (a *A) Flush(s *lockz.Store) {
	a.mu.Lock()
	s.Put(1) // want `lock-acquisition cycle across lockgraph\.A\.mu ⇄ lockz\.Reg\.Mu ⇄ lockz\.Store\.mu`
	a.mu.Unlock()
}

// Touch takes the registry lock first, then the A lock — the reverse
// ordering that makes the cycle reachable.
func (a *A) Touch(r *lockz.Reg) {
	r.Mu.Lock()
	a.mu.Lock()
	a.count++
	a.mu.Unlock()
	r.Mu.Unlock()
}

// Upgrade re-acquires the same RWMutex instance for writing while its
// read lock is held — the classic self-deadlock against any concurrent
// writer.
func Upgrade(r *lockz.Reg) int {
	r.Mu.RLock()
	n := r.N
	r.Mu.Lock() // want `read-to-write upgrade of lockz\.Reg\.Mu while its read lock is held`
	r.N = 0
	r.Mu.Unlock()
	r.Mu.RUnlock()
	return n
}

type Node struct {
	mu sync.Mutex
	v  int
}

type B struct {
	mu sync.Mutex
}

// Transfer locks two instances of one class with no global order —
// Transfer(x, y) here and Transfer(y, x) elsewhere deadlocks.
func Transfer(a, b *Node) {
	a.mu.Lock()
	b.mu.Lock() // want `nested acquisition within lock class lockgraph\.Node\.mu`
	a.v--
	b.v++
	b.mu.Unlock()
	a.mu.Unlock()
}

// Ordered nests B.mu → Node.mu only; with no reverse edge anywhere the
// pair stays a DAG and is accepted.
func Ordered(b *B, n *Node) {
	b.mu.Lock()
	n.mu.Lock()
	n.v++
	n.mu.Unlock()
	b.mu.Unlock()
}

// Sequential sections never overlap: releasing before the dependency
// call means no edge at all.
func (a *A) Sequential(s *lockz.Store) {
	a.mu.Lock()
	a.count++
	a.mu.Unlock()
	s.Put(2)
}

// TryCollect uses TryLock under Node.mu: a nonblocking acquisition
// cannot complete a deadlock cycle, so no Node.mu → B.mu edge is added
// (which would otherwise close a cycle with Ordered).
func TryCollect(n *Node, b *B) {
	n.mu.Lock()
	if b.mu.TryLock() {
		b.mu.Unlock()
	}
	n.mu.Unlock()
}

// SpawnCollector's goroutine runs on a fresh stack: its B.mu section is
// not an edge from the Node.mu the spawner holds (attributing it would
// likewise close a cycle with Ordered).
func SpawnCollector(n *Node, b *B) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	n.v++
}
