// Fixture for the errsink analyzer: error results of tree-local calls
// must reach a handler, not the floor.
package errsink

import "strconv"

func save() error { return nil }

func load() (int, error) { return 0, nil }

func count() int { return 0 }

// droppedStatement: bare call statement.
func droppedStatement() {
	save() // want `error result of save dropped`
}

// blankSingle: explicit blank assignment still loses the error.
func blankSingle() {
	_ = save() // want `error result of save assigned to blank identifier`
}

// blankInPair: the error slot is the last result by repo convention.
func blankInPair() int {
	n, _ := load() // want `error result of load assigned to blank identifier`
	return n
}

// droppedDefer and droppedGo: statement-position drops in disguise.
func droppedDefer() {
	defer save() // want `error result of save dropped`
}

func droppedGo() {
	go save() // want `error result of save dropped`
}

// blankParallel: in a parallel tuple assignment every right-hand side is
// single-valued, so a blank slot paired with an error-returning call
// drops that error — the blind spot the v2 errsink closes.
func blankParallel() int {
	n, _ := count(), save() // want `error result of save assigned to blank identifier`
	return n
}

// blankParallelSwapped: the error slot's position does not matter.
func blankParallelSwapped() int {
	_, n := save(), count() // want `error result of save assigned to blank identifier`
	return n
}

// blankIfInit / blankForInit: init-statement assignments are statements
// like any other — regression-pinned so a future walker rewrite cannot
// skip them.
func blankIfInit() int {
	if n, _ := load(); n > 0 { // want `error result of load assigned to blank identifier`
		return n
	}
	return 0
}

func blankForInit() {
	for n, _ := load(); n < 3; n++ { // want `error result of load assigned to blank identifier`
		_ = n
	}
}

// handled: the error reaches a branch.
func handled() error {
	if err := save(); err != nil {
		return err
	}
	return nil
}

// propagated: both results used.
func propagated() (int, error) {
	return load()
}

// stdlibOK: only tree-local callees are policed; the standard library
// has legitimately ignorable errors.
func stdlibOK() {
	strconv.Atoi("1")
}

// noError: callees without an error result are unconstrained.
func noError() {
	count()
}
