// Fixture for the wallclock analyzer: bare time.Now/time.Since are for
// Observe-fed latency timing only; decision clocks must be injected.
// The fixture path ("wallclock") is not on the harness allowlist.
package wallclock

import "time"

type histogram struct{}

func (h *histogram) Observe(d time.Duration) {}

var hist histogram

func work() {}

// observeInline: Since directly inside Observe is the sanctioned shape.
func observeInline() {
	start := time.Now()
	work()
	hist.Observe(time.Since(start))
}

// observeDeferred: the start stamp is consumed only by an exempt Since,
// even from inside the deferred closure.
func observeDeferred() {
	start := time.Now()
	defer func() { hist.Observe(time.Since(start)) }()
	work()
}

// decisionNow uses ambient wall clock to make a decision: untestable.
func decisionNow(deadline time.Time) bool {
	return time.Now().After(deadline) // want `bare time\.Now\(\)`
}

// decisionSince compares a duration instead of observing it.
func decisionSince(start time.Time) bool {
	return time.Since(start) > time.Second // want `bare time\.Since\(\)`
}

// mixedUse: the stamp feeds an Observe but also leaks into the return
// value, so it is a real clock read, not pure timing.
func mixedUse() time.Time {
	start := time.Now() // want `bare time\.Now\(\)`
	hist.Observe(time.Since(start))
	return start
}

// allowedSeam shows the escape hatch: an audited exception.
func allowedSeam() time.Time {
	return time.Now() //lint:allow wallclock fixture models an injection seam's default source
}
