// Package lockz models a storage dependency for the lockgraph fixture:
// Store.Put acquires the store mutex and, under it, the registry lock —
// the intra-package edge lockz.Store.mu → lockz.Reg.Mu that the analyzer
// exports as a package fact, plus the lockAcquiresFact on Put that lets
// a dependent package holding its own lock see the nesting without
// re-analysis.
package lockz

import "sync"

// Reg is a shared registry with an exported lock, so dependents can take
// sections on it directly (the shape hdfs exposes through lock()/rlock()
// helpers).
type Reg struct {
	Mu sync.RWMutex
	N  int
}

// Store guards its state with an unexported mutex and updates the
// registry under it.
type Store struct {
	mu  sync.Mutex
	reg *Reg
	n   int
}

// Put stores a value and bumps the registry: Store.mu is held across the
// Reg.Mu section.
func (s *Store) Put(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
	s.reg.Mu.Lock()
	s.reg.N += v
	s.reg.Mu.Unlock()
}

// Size reads under the store lock alone — no edge.
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
