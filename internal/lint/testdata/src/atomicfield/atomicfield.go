// Fixture for the atomicfield analyzer: a field accessed through
// sync/atomic anywhere must be accessed through sync/atomic everywhere.
package atomicfield

import "sync/atomic"

type counter struct {
	hits  int64 // accessed via atomic.AddInt64/LoadInt64
	plain int64 // never touched atomically
	total atomic.Int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

// racyRead: a plain load racing the atomic writers above.
func (c *counter) racyRead() int64 {
	return c.hits // want `non-atomic access to field hits`
}

// racyWrite: a plain increment is a read-modify-write race.
func (c *counter) racyWrite() {
	c.hits++ // want `non-atomic access to field hits`
}

// plainOK: a field with no atomic accesses anywhere is unconstrained.
func (c *counter) plainOK(delta int64) {
	c.plain += delta
}

type entry struct{ bytes int64 }

// charge regression: the unary-minus argument to an atomic.Int64 method
// must not bless entry.bytes as an atomic field — only &x.f arguments
// mark fields (this misfired on qcache's c.bytes.Add(-e.bytes)).
func (c *counter) charge(e *entry) {
	c.total.Add(-e.bytes)
}

func (e *entry) grow(n int64) {
	e.bytes += n
}
