// Package work models a background-worker dependency for the goleak
// fixture: Forever's nontermination is exported as an object fact, so a
// dependent package spawning it (directly or through a wrapper) is
// reported without re-analysis; Until carries the stop-channel
// discipline and passes.
package work

// Forever pumps the queue and never returns: an infinite for with no
// return, break, or panic.
func Forever() {
	for {
		step()
	}
}

// Until pumps the queue until stop closes — the termination path goleak
// requires of resident loops.
func Until(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			step()
		}
	}
}

func step() {}
