// The sigflow fixture models core.InputFormat against the fixture query
// package: QuerySignature keys the query (via cross-package facts) and
// the local Compress knob; Open and the reader it constructs form the
// block-scan path. Two unkeyed knobs must surface: the local RowPath
// field read in Open, and the query package's Aux predicate field read in
// the reader — the latter proving the scan-side closure crosses package
// boundaries through facts too.
package sigflow

import "query"

type InputFormat struct {
	Query    *query.Query
	RowPath  bool
	Compress bool
	hits     int64
}

// QuerySignature keys the query and the compression knob — but not
// RowPath.
func (f *InputFormat) QuerySignature() (string, bool) {
	sig := f.Query.Signature()
	if f.Compress {
		sig = "z|" + sig
	}
	return sig, true
}

type reader struct {
	q        *query.Query
	rowPath  bool
	compress bool
}

// Open builds the scan-path reader. Reading RowPath here without keying
// it is the stale-cache incident sigflow exists to prevent.
func (f *InputFormat) Open() *reader {
	return &reader{
		q:        f.Query,
		rowPath:  f.RowPath, // want `sigflow\.InputFormat\.RowPath is read on the block-scan path but never flows into InputFormat\.QuerySignature`
		compress: f.Compress,
	}
}

// Read scans with the query; Aux changes the output but is not part of
// query.Signature, so the cache would serve stale bytes when it changes.
func (r *reader) Read() int {
	n := 0
	for _, p := range r.q.Filter {
		if p.Matches(10) {
			n += p.Aux // want `query\.Predicate\.Aux is read on the block-scan path but never flows into InputFormat\.QuerySignature`
		}
	}
	if r.compress {
		n = -n
	}
	return n
}
