// Package obs models the real internal/obs tracing surface for spanend
// fixtures: the analyzer matches obs.Span by package-path tail, so this
// bare "obs" package stands in for repro/internal/obs.
package obs

// Trace is the span factory.
type Trace struct{ enabled bool }

// Enabled mirrors the real API's tracing toggle.
func (t *Trace) Enabled() bool { return t.enabled }

// StartSpan opens a span; extra arguments are parent spans.
func (t *Trace) StartSpan(name string, parents ...Span) Span { return Span{} }

// Span is the value the spanend analyzer tracks.
type Span struct{ traced bool }

// End closes the span.
func (s Span) End() {}

// SetInt attaches an integer attribute; not a closing call.
func (s Span) SetInt(key string, v int) {}

// SetStr attaches a string attribute; not a closing call.
func (s Span) SetStr(key, v string) {}
