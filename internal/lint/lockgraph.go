package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A lockEdge records "while holding From (in FromMode), To was acquired
// (in ToMode)". Positions are resolved token.Positions so the fact stays
// serializable and the module phase can report without a package context.
type lockEdge struct {
	From, FromMode string
	To, ToMode     string
	// Upgrade marks a read-to-write reacquisition of the same instance —
	// a genuine RWMutex upgrade, distinct from ordering between two
	// instances of one class.
	Upgrade bool
	Pos     token.Position
}

// lockGraphFact is lockgraph's package fact: every acquisition edge
// observed in the package, deduplicated and sorted.
type lockGraphFact struct {
	Edges []lockEdge
}

func (*lockGraphFact) AFact() {}

// lockAcquiresFact is lockgraph's object fact on functions: the set of
// lock classes the function transitively acquires ("W:qcache.shard.mu"),
// so a dependent package calling it under a held lock yields an edge
// without re-analyzing the dependency.
type lockAcquiresFact struct {
	Acquires []string
}

func (*lockAcquiresFact) AFact() {}

// LockGraph lifts lockorder's pairwise leaf rules into a module-wide
// proof: every sync.Mutex/RWMutex acquisition is classified into a lock
// class — (package, owner type, field) for `x.mu.Lock()`, (package, var)
// for package-level mutexes — and a held-set interpretation of each
// function records which classes are acquired while which are held.
// Cross-package nesting flows through facts: a call made under a held
// lock contributes edges to everything the callee transitively acquires.
// The module phase then reports (a) read-to-write upgrades of one
// RWMutex instance, (b) nested acquisition within one class (intra-class
// order is undefined: shard A→B here and B→A elsewhere deadlocks), and
// (c) every strongly connected component of the class graph — the
// deadlock cycles no single package can see.
//
// Goroutine and closure bodies are interpreted on their own empty stacks:
// their internal nesting is policed, but their acquisitions are not
// attributed to the spawning function. Helpers that return while holding
// a lock are not modeled (lockorder owns the dirShard lock()/rlock()
// discipline); their critical sections are analyzed where the lock is
// visible.
var LockGraph = &Analyzer{
	Name:      "lockgraph",
	Doc:       "the module-wide lock-acquisition graph must stay acyclic, with no RWMutex upgrades",
	Run:       runLockGraph,
	Finish:    finishLockGraph,
	FactTypes: []Fact{(*lockGraphFact)(nil), (*lockAcquiresFact)(nil)},
}

// lgHeld is one held lock: class, mode ("R"/"W"), and the rendered
// receiver expression distinguishing instances of one class.
type lgHeld struct {
	class, mode, inst string
}

// lgCall is a non-mutex call made while locks were held.
type lgCall struct {
	callee *types.Func
	held   []lgHeld
	pos    token.Pos
}

// lgState accumulates one package's graph as functions are walked.
type lgState struct {
	pass    *Pass
	edges   []lockEdge
	edgeKey map[string]bool
	direct  map[*types.Func]map[string]bool // fn → "mode:class" acquired directly
	callees map[*types.Func][]*types.Func
	calls   []lgCall
	cur     *types.Func // function being walked (nil inside closures/goroutines)
}

func runLockGraph(pass *Pass) error {
	st := &lgState{
		pass:    pass,
		edgeKey: make(map[string]bool),
		direct:  make(map[*types.Func]map[string]bool),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, fd := range funcDecls(pass) {
		fn := declaredFunc(pass.Info, fd)
		if fn == nil {
			continue
		}
		st.direct[fn] = make(map[string]bool)
		st.cur = fn
		var held []lgHeld
		st.walk(fd.Body.List, &held)
	}
	st.cur = nil

	// Transitive acquires: seed with direct acquisitions plus imported
	// summaries of cross-package callees, then close over the in-package
	// call graph.
	for fn := range st.direct {
		for _, c := range st.calleesOf(fn) {
			if c.Pkg() == pass.Pkg {
				continue
			}
			var f lockAcquiresFact
			if pass.ImportObjectFact(c, &f) {
				for _, a := range f.Acquires {
					st.direct[fn][a] = true
				}
			}
		}
	}
	sameCallees := make(map[*types.Func][]*types.Func)
	for fn, cs := range st.callees {
		for _, c := range cs {
			if c.Pkg() == pass.Pkg {
				sameCallees[fn] = append(sameCallees[fn], c)
			}
		}
	}
	trans := closureSets(st.direct, sameCallees)

	// Edges from calls under held locks.
	for _, c := range st.calls {
		var acq map[string]bool
		if c.callee.Pkg() == pass.Pkg {
			acq = trans[c.callee]
		} else {
			var f lockAcquiresFact
			if pass.ImportObjectFact(c.callee, &f) {
				acq = make(map[string]bool, len(f.Acquires))
				for _, a := range f.Acquires {
					acq[a] = true
				}
			}
		}
		for a := range acq {
			mode, class := a[:1], a[2:]
			for _, h := range c.held {
				st.addEdge(h, class, mode, false, c.pos)
			}
		}
	}

	// Export facts.
	for fn, acq := range trans {
		if len(acq) == 0 {
			continue
		}
		out := make([]string, 0, len(acq))
		for a := range acq {
			out = append(out, a)
		}
		sort.Strings(out)
		pass.ExportObjectFact(fn, &lockAcquiresFact{Acquires: out})
	}
	if len(st.edges) > 0 {
		sort.Slice(st.edges, func(i, j int) bool {
			a, b := st.edges[i], st.edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.FromMode+a.ToMode < b.FromMode+b.ToMode
		})
		pass.ExportPackageFact(&lockGraphFact{Edges: st.edges})
	}
	return nil
}

func (st *lgState) calleesOf(fn *types.Func) []*types.Func {
	return st.callees[fn]
}

func (st *lgState) addEdge(from lgHeld, toClass, toMode string, upgrade bool, pos token.Pos) {
	key := from.class + "|" + from.mode + "|" + toClass + "|" + toMode
	if upgrade {
		key += "|up"
	}
	if st.edgeKey[key] {
		return
	}
	st.edgeKey[key] = true
	st.edges = append(st.edges, lockEdge{
		From: from.class, FromMode: from.mode,
		To: toClass, ToMode: toMode,
		Upgrade: upgrade,
		Pos:     st.pass.Fset.Position(pos),
	})
}

// walk interprets a statement list, tracking held locks. Compound
// statements recurse on copies: a branch's acquisitions are policed
// inside the branch but not assumed held after it.
func (st *lgState) walk(stmts []ast.Stmt, held *[]lgHeld) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.BlockStmt:
			st.walk(x.List, held)
		case *ast.IfStmt:
			if x.Init != nil {
				st.walk([]ast.Stmt{x.Init}, held)
			}
			st.scanExpr(x.Cond, *held)
			st.walkBranch(x.Body.List, *held)
			if x.Else != nil {
				st.walkBranch([]ast.Stmt{x.Else}, *held)
			}
		case *ast.ForStmt:
			if x.Init != nil {
				st.walk([]ast.Stmt{x.Init}, held)
			}
			st.scanExpr(x.Cond, *held)
			st.walkBranch(x.Body.List, *held)
		case *ast.RangeStmt:
			st.scanExpr(x.X, *held)
			st.walkBranch(x.Body.List, *held)
		case *ast.SwitchStmt:
			if x.Init != nil {
				st.walk([]ast.Stmt{x.Init}, held)
			}
			st.scanExpr(x.Tag, *held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					st.walkBranch(cc.Body, *held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					st.walkBranch(cc.Body, *held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					st.walkBranch(cc.Body, *held)
				}
			}
		case *ast.LabeledStmt:
			st.walk([]ast.Stmt{x.Stmt}, held)
		case *ast.DeferStmt:
			if class, mode, op, ok := st.mutexOp(x.Call); ok {
				// defer mu.Unlock() keeps the section open to the end — no
				// state change; a deferred acquire (pathological) still
				// pushes so later acquisitions see it.
				if op == "acquire" || op == "try" {
					st.acquire(held, class, mode, x.Call, op == "acquire")
				}
				continue
			}
			st.scanStmt(s, held)
		case *ast.GoStmt:
			// Fresh stack: interpret a literal body with nothing held.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				st.walkDetached(lit.Body.List)
			}
		default:
			st.scanStmt(s, held)
		}
	}
}

// walkDetached interprets a closure or goroutine body on its own empty
// stack, with st.cur cleared so its acquisitions and calls are not
// attributed to the enclosing function's summary — a literal that runs
// concurrently (or conditionally, via a stored func value) must not make
// its spawner look like it acquires under the caller's locks.
func (st *lgState) walkDetached(stmts []ast.Stmt) {
	saved := st.cur
	st.cur = nil
	var fresh []lgHeld
	st.walk(stmts, &fresh)
	st.cur = saved
}

func (st *lgState) walkBranch(stmts []ast.Stmt, held []lgHeld) {
	cp := make([]lgHeld, len(held))
	copy(cp, held)
	st.walk(stmts, &cp)
}

// scanStmt applies every call in a simple statement, in traversal order:
// mutex operations mutate the held set, anything else is recorded as a
// call site with the current held snapshot. Closure bodies are walked on
// their own empty stacks.
func (st *lgState) scanStmt(s ast.Stmt, held *[]lgHeld) {
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			st.walkDetached(lit.Body.List)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, mode, op, ok := st.mutexOp(call); ok {
			switch op {
			case "acquire", "try":
				st.acquire(held, class, mode, call, op == "acquire")
			case "release":
				st.release(held, class, mode)
			}
			return true
		}
		st.recordCall(call, *held)
		return true
	})
}

// scanExpr records calls (and polices mutex ops) inside a condition or
// range operand without mutating the surrounding held set.
func (st *lgState) scanExpr(e ast.Expr, held []lgHeld) {
	if e == nil {
		return
	}
	cp := make([]lgHeld, len(held))
	copy(cp, held)
	st.scanStmt(&ast.ExprStmt{X: e}, &cp)
}

func (st *lgState) recordCall(call *ast.CallExpr, held []lgHeld) {
	fn := calleeFunc(st.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	local := fn.Pkg() == st.pass.Pkg ||
		(st.pass.IsLocalPkg != nil && st.pass.IsLocalPkg(fn.Pkg().Path()))
	if !local {
		return
	}
	if st.cur != nil {
		st.callees[st.cur] = append(st.callees[st.cur], fn)
	}
	if len(held) > 0 {
		cp := make([]lgHeld, len(held))
		copy(cp, held)
		st.calls = append(st.calls, lgCall{callee: fn, held: cp, pos: call.Pos()})
	}
}

// acquire records edges from everything held to the new lock and pushes
// it. blocking=false (TryLock) pushes without incoming edges: a
// nonblocking acquisition cannot complete a deadlock cycle.
func (st *lgState) acquire(held *[]lgHeld, class lgClass, mode string, call *ast.CallExpr, blocking bool) {
	if blocking {
		for _, h := range *held {
			upgrade := h.class == class.name && h.inst == class.inst && h.mode == "R" && mode == "W"
			st.addEdge(h, class.name, mode, upgrade, call.Pos())
		}
	}
	*held = append(*held, lgHeld{class: class.name, mode: mode, inst: class.inst})
	if st.cur != nil {
		st.direct[st.cur][mode+":"+class.name] = true
	}
}

func (st *lgState) release(held *[]lgHeld, class lgClass, mode string) {
	for i := len(*held) - 1; i >= 0; i-- {
		h := (*held)[i]
		if h.class == class.name && h.inst == class.inst && h.mode == mode {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
}

type lgClass struct {
	name string // "qcache.shard.mu" or "hdfs.saveMu"
	inst string // rendered receiver expression, distinguishing instances
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation on a
// classifiable lock: a mutex-typed field of a named type, or a
// package-level mutex variable. Locals and unclassifiable receivers are
// ignored (a mutex that never escapes a function cannot participate in a
// cross-function cycle).
func (st *lgState) mutexOp(call *ast.CallExpr) (lgClass, string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lgClass{}, "", "", false
	}
	var mode, op string
	switch sel.Sel.Name {
	case "Lock":
		mode, op = "W", "acquire"
	case "RLock":
		mode, op = "R", "acquire"
	case "Unlock":
		mode, op = "W", "release"
	case "RUnlock":
		mode, op = "R", "release"
	case "TryLock":
		mode, op = "W", "try"
	case "TryRLock":
		mode, op = "R", "try"
	default:
		return lgClass{}, "", "", false
	}
	fn := calleeFunc(st.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lgClass{}, "", "", false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): class by (owner type, field).
		s, ok := st.pass.Info.Selections[recv]
		if !ok || s.Kind() != types.FieldVal {
			return lgClass{}, "", "", false
		}
		owner := namedOrNil(s.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return lgClass{}, "", "", false
		}
		name := pkgTail(owner.Obj().Pkg().Path()) + "." + owner.Obj().Name() + "." + recv.Sel.Name
		return lgClass{name: name, inst: types.ExprString(recv.X)}, mode, op, true
	case *ast.Ident:
		// mu.Lock() on a package-level mutex.
		obj := st.pass.Info.Uses[recv]
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return lgClass{}, "", "", false
		}
		name := pkgTail(obj.Pkg().Path()) + "." + obj.Name()
		return lgClass{name: name, inst: obj.Name()}, mode, op, true
	}
	return lgClass{}, "", "", false
}

// finishLockGraph assembles every package's edges and reports upgrades,
// intra-class nesting, and cross-class cycles (as strongly connected
// components, one report per component).
func finishLockGraph(mp *ModulePass) error {
	type edgeKey struct {
		from, fromMode, to, toMode string
		up                         bool
	}
	best := make(map[edgeKey]lockEdge)
	for _, pf := range mp.AllPackageFacts() {
		f := pf.Fact.(*lockGraphFact)
		for _, e := range f.Edges {
			k := edgeKey{e.From, e.FromMode, e.To, e.ToMode, e.Upgrade}
			if old, ok := best[k]; !ok || posLess(e.Pos, old.Pos) {
				best[k] = e
			}
		}
	}
	var edges []lockEdge
	for _, e := range best {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return posLess(edges[i].Pos, edges[j].Pos) })

	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edges {
		switch {
		case e.Upgrade:
			mp.ReportfAt(e.Pos,
				"read-to-write upgrade of %s while its read lock is held — deadlocks against any concurrent writer", e.From)
		case e.From == e.To:
			mp.ReportfAt(e.Pos,
				"nested acquisition within lock class %s — intra-class ordering is undefined (A→B here, B→A elsewhere deadlocks)", e.From)
		default:
			adj[e.From] = append(adj[e.From], e.To)
			nodes[e.From], nodes[e.To] = true, true
		}
	}

	for _, scc := range tarjanSCC(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		// Report at the lexically first edge inside the component.
		var at token.Position
		for _, e := range edges {
			if !e.Upgrade && e.From != e.To && inSCC[e.From] && inSCC[e.To] {
				at = e.Pos
				break
			}
		}
		mp.ReportfAt(at, "lock-acquisition cycle across %s — acquisition order is not global, deadlock is reachable",
			joinArrow(scc))
	}
	return nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func joinArrow(nodes []string) string {
	out := ""
	for i, n := range nodes {
		if i > 0 {
			out += " ⇄ "
		}
		out += n
	}
	return out
}

// tarjanSCC returns the strongly connected components of the class graph,
// deterministically (nodes visited in sorted order).
func tarjanSCC(nodes map[string]bool, adj map[string][]string) [][]string {
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, ns := range adj {
		sort.Strings(ns)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
