package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the declared function or method
// it invokes, or nil for calls through function values, built-ins and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathMatches reports whether a package path denotes the named package:
// either exactly (fixture packages have bare paths like "obs") or as the
// final path element ("repro/internal/obs").
func pkgPathMatches(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// namedOrNil unwraps pointers and aliases down to a named type.
func namedOrNil(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type typeName declared in a package matching pkgName.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedOrNil(t)
	if n == nil || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return false
	}
	return pkgPathMatches(n.Obj().Pkg().Path(), pkgName)
}

// recvNamed returns the named type of a method's receiver, nil for
// functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOrNil(sig.Recv().Type())
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declaredFunc returns the *types.Func a declaration defines.
func declaredFunc(info *types.Info, fd *ast.FuncDecl) *types.Func {
	f, _ := info.Defs[fd.Name].(*types.Func)
	return f
}
