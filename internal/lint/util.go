package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the declared function or method
// it invokes, or nil for calls through function values, built-ins and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathMatches reports whether a package path denotes the named package:
// either exactly (fixture packages have bare paths like "obs") or as the
// final path element ("repro/internal/obs").
func pkgPathMatches(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// namedOrNil unwraps pointers and aliases down to a named type.
func namedOrNil(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type typeName declared in a package matching pkgName.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedOrNil(t)
	if n == nil || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return false
	}
	return pkgPathMatches(n.Obj().Pkg().Path(), pkgName)
}

// recvNamed returns the named type of a method's receiver, nil for
// functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOrNil(sig.Recv().Type())
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declaredFunc returns the *types.Func a declaration defines.
func declaredFunc(info *types.Info, fd *ast.FuncDecl) *types.Func {
	f, _ := info.Defs[fd.Name].(*types.Func)
	return f
}

// closure propagates a direct-property set over the call graph: f has the
// property if it does directly or any callee (transitively) does. Shared
// by genbump (notifyChanged reachability), goleak (nontermination) and,
// in string-set form (closureSets), sigflow's field-read summaries.
func closure(direct map[*types.Func]bool, callees map[*types.Func][]*types.Func) map[*types.Func]bool {
	out := make(map[*types.Func]bool, len(direct))
	for f := range direct {
		out[f] = true
	}
	for changed := true; changed; {
		changed = false
		for f, cs := range callees {
			if out[f] {
				continue
			}
			for _, c := range cs {
				if out[c] {
					out[f] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// closureSets propagates per-function string sets over the call graph
// until fixpoint: each function's set absorbs its callees' sets.
func closureSets(direct map[*types.Func]map[string]bool, callees map[*types.Func][]*types.Func) map[*types.Func]map[string]bool {
	out := make(map[*types.Func]map[string]bool, len(direct))
	for f, s := range direct {
		cp := make(map[string]bool, len(s))
		for k := range s {
			cp[k] = true
		}
		out[f] = cp
	}
	get := func(f *types.Func) map[string]bool {
		s, ok := out[f]
		if !ok {
			s = make(map[string]bool)
			out[f] = s
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for f, cs := range callees {
			dst := get(f)
			for _, c := range cs {
				for k := range out[c] {
					if !dst[k] {
						dst[k] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// pkgTail returns the last element of a package path — the stable,
// prefix-independent name used in fact keys so that fixture packages
// ("query") and real ones ("repro/internal/query") produce identical
// keys.
func pkgTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// hasMethodNamed reports whether the named type (value or pointer
// receiver) declares a method with the given name.
func hasMethodNamed(n *types.Named, name string) bool {
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == name {
			return true
		}
	}
	return false
}
