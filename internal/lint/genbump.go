package lint

import (
	"go/ast"
	"go/types"
)

// replicaMapFields are the dirShard maps whose mutation changes which
// replica a reader would resolve — exactly the events the block
// generation counts and the qcache invalidates on. The file table and the
// dirty-save marks are deliberately excluded: neither affects replica
// routing.
var replicaMapFields = map[string]bool{"reps": true, "gens": true, "blocks": true}

// GenBump is the compile-time mirror of the namenode oracle harness's
// hook-fire accounting: every exported entry point that (transitively)
// mutates a dirShard's replica/generation maps must also (transitively)
// call notifyChanged, or the result cache serves stale bytes for every
// block the silent mutation touched. The check is reachability over the
// package call graph, so the registerReplica/RegisterReplica split —
// unexported locked writer, exported wrapper that fires the hook after
// releasing locks — passes, and deleting the notifyChanged call from the
// wrapper fails.
var GenBump = &Analyzer{
	Name: "genbump",
	Doc:  "exported mutators of dirShard replica/generation maps must fire notifyChanged",
	Run:  runGenBump,
	// Purely local: dirShard and notifyChanged are package-private, so the
	// whole reachability question lives inside internal/hdfs.
	FactTypes: nil,
}

func runGenBump(pass *Pass) error {
	// Self-scoping: only packages declaring dirShard (internal/hdfs, or a
	// fixture modeling it) have the invariant.
	if pass.Pkg.Scope().Lookup("dirShard") == nil {
		return nil
	}

	decls := funcDecls(pass)
	writes := make(map[*types.Func]bool)   // directly mutates a replica map
	notifies := make(map[*types.Func]bool) // directly calls notifyChanged
	callees := make(map[*types.Func][]*types.Func)
	declOf := make(map[*types.Func]*ast.FuncDecl)

	for _, fd := range decls {
		fn := declaredFunc(pass.Info, fd)
		if fn == nil {
			continue
		}
		declOf[fn] = fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if writesReplicaMap(pass, lhs) {
						writes[fn] = true
					}
				}
			case *ast.IncDecStmt:
				if writesReplicaMap(pass, st.X) {
					writes[fn] = true
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass.Info, st)
				if callee == nil {
					// delete(s.reps, key) — a built-in, not a *types.Func.
					if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
						if isReplicaMapExpr(pass, st.Args[0]) {
							writes[fn] = true
						}
					}
					return true
				}
				if callee.Name() == "notifyChanged" && callee.Pkg() == pass.Pkg {
					notifies[fn] = true
				}
				if callee.Pkg() == pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}

	// closure lives in util.go now: sigflow and goleak propagate their own
	// direct-property sets over call graphs with the same helper.
	reachesWrite := closure(writes, callees)
	reachesNotify := closure(notifies, callees)

	for fn, fd := range declOf {
		if !fn.Exported() {
			continue
		}
		if reachesWrite[fn] && !reachesNotify[fn] {
			pass.Reportf(fd.Name.Pos(),
				"%s mutates dirShard replica/generation maps but never fires notifyChanged — cached results for the touched blocks go stale", fn.Name())
		}
	}
	return nil
}

// writesReplicaMap reports whether an assignment target is an entry of a
// dirShard replica map (s.gens[b] = ..., s.blocks[b] = append(...)).
func writesReplicaMap(pass *Pass, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return isReplicaMapExpr(pass, idx.X)
}

// isReplicaMapExpr reports whether an expression denotes one of a
// dirShard's replica maps.
func isReplicaMapExpr(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !replicaMapFields[sel.Sel.Name] {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	owner := namedOrNil(s.Recv())
	return owner != nil && owner.Obj().Name() == "dirShard"
}
