package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClock enforces the clock-injection discipline established with the
// adaptive heat-decay work: bare time.Now()/time.Since() reads ambient
// wall-clock state, which makes heat, decay and eviction decisions
// untestable and irreproducible. Library code must take its clock through
// an injected source (adaptive.Indexer.SetClockFunc is the template).
//
// Allowed without comment:
//   - cmd/ and internal/experiments — harness code, where wall time IS the
//     measurement;
//   - internal/obs — the observability layer owns process timing;
//   - _test.go files;
//   - time.Since whose result feeds directly into a histogram's
//     .Observe(...) call, and time.Now assigned to a variable used only in
//     such time.Since calls — duration metrics, not decision clocks.
//
// Anything else needs //lint:allow wallclock <reason>.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "bare time.Now/time.Since outside harness, obs, tests, and Observe-fed timing",
	Run:  runWallClock,
	// Purely local: the clock discipline is judged at each call site.
	FactTypes: nil,
}

func wallclockExemptPath(rel string) bool {
	return strings.HasPrefix(rel, "cmd/") || rel == "cmd" ||
		pkgPathMatches(rel, "internal/obs") || rel == "obs" ||
		pkgPathMatches(rel, "internal/experiments") || rel == "experiments"
}

func runWallClock(pass *Pass) error {
	if wallclockExemptPath(pass.RelPath) {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		exemptSince := sinceCallsFeedingObserve(pass, file)
		exemptNow := nowVarsOnlyTiming(pass, file, exemptSince)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now":
				if !exemptNow[call] {
					pass.Reportf(call.Pos(), "bare time.Now(): inject a clock (cf. adaptive.Indexer.SetClockFunc) or feed an Observe timing")
				}
			case "Since":
				if !exemptSince[call] {
					pass.Reportf(call.Pos(), "bare time.Since(): inject a clock or feed the duration straight into a histogram Observe")
				}
			}
			return true
		})
	}
	return nil
}

// sinceCallsFeedingObserve collects time.Since calls appearing directly as
// an argument of a call to a method named Observe — latency-histogram
// timing, which is the one sanctioned use of ambient wall-clock deltas in
// library code.
func sinceCallsFeedingObserve(pass *Pass, file *ast.File) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Observe" {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn := calleeFunc(pass.Info, inner); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Since" {
				out[inner] = true
			}
		}
		return true
	})
	return out
}

// nowVarsOnlyTiming exempts time.Now() calls whose result lands in a
// variable used exclusively as the argument of exempt time.Since calls —
// the "start := time.Now(); defer h.Observe(time.Since(start))" shape.
func nowVarsOnlyTiming(pass *Pass, file *ast.File, exemptSince map[*ast.CallExpr]bool) map[*ast.CallExpr]bool {
	// Map from variable object to its time.Now() creation call(s).
	created := make(map[types.Object][]*ast.CallExpr)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
			return true
		}
		var obj types.Object
		if o, ok := pass.Info.Defs[id]; ok && o != nil {
			obj = o
		} else if o, ok := pass.Info.Uses[id]; ok {
			obj = o
		}
		if obj != nil {
			created[obj] = append(created[obj], call)
		}
		return true
	})
	if len(created) == 0 {
		return nil
	}

	// A use disqualifies unless it is (a) the LHS of one of the creation
	// assignments, or (b) the sole argument of an exempt time.Since call.
	disqualified := make(map[types.Object]bool)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := created[obj]; !tracked {
			return true
		}
		if useIsBenignTiming(pass, stack, exemptSince) {
			return true
		}
		disqualified[obj] = true
		return true
	})

	out := make(map[*ast.CallExpr]bool)
	for obj, calls := range created {
		if !disqualified[obj] {
			for _, c := range calls {
				out[c] = true
			}
		}
	}
	return out
}

// useIsBenignTiming classifies the identifier at the top of the stack: LHS
// of an assignment (the creation write) or argument of an exempt
// time.Since call.
func useIsBenignTiming(pass *Pass, stack []ast.Node, exemptSince map[*ast.CallExpr]bool) bool {
	id := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == id {
					return true
				}
			}
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, parent); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Since" {
				return exemptSince[parent]
			}
			return false
		case *ast.ParenExpr:
			continue
		default:
			return false
		}
	}
	return false
}
