package lint

import (
	"strings"
	"testing"
)

// testFact and otherFact are throwaway fact types for the store tests.
type testFact struct{ N int }

func (*testFact) AFact() {}

type otherFact struct{ S string }

func (*otherFact) AFact() {}

// TestFactExportImport drives the store end to end through a probe
// analyzer: object and package facts round-trip by value (the imported
// copy does not alias the store), the Finish phase sees every package
// fact, and the JSON dump carries both kinds under the analyzer's name.
func TestFactExportImport(t *testing.T) {
	pkg, err := LoadFixture("testdata", "query")
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	probe := &Analyzer{
		Name:      "factprobe",
		Doc:       "test probe",
		FactTypes: []Fact{(*testFact)(nil)},
	}
	probe.Run = func(p *Pass) error {
		obj := p.Pkg.Scope().Lookup("Query")
		if obj == nil {
			t.Fatal("fixture query package lost its Query type")
		}
		p.ExportObjectFact(obj, &testFact{N: 7})
		p.ExportPackageFact(&testFact{N: 9})

		var f testFact
		if !p.ImportObjectFact(obj, &f) || f.N != 7 {
			t.Errorf("object fact round-trip: got %+v, want N=7", f)
		}
		f.N = 1000 // the import is a copy; the store must not see this
		var again testFact
		if !p.ImportObjectFact(obj, &again) || again.N != 7 {
			t.Errorf("imported fact aliases the store: got %+v after caller mutation", again)
		}
		var pf testFact
		if !p.ImportPackageFact(p.Pkg, &pf) || pf.N != 9 {
			t.Errorf("package fact round-trip: got %+v, want N=9", pf)
		}
		if p.ImportObjectFact(nil, &f) {
			t.Error("ImportObjectFact(nil) reported a fact")
		}
		return nil
	}
	probe.Finish = func(mp *ModulePass) error {
		finished = true
		pfs := mp.AllPackageFacts()
		if len(pfs) != 1 || pfs[0].Fact.(*testFact).N != 9 {
			t.Errorf("Finish sees %d package facts, want the one with N=9", len(pfs))
		}
		var f testFact
		if !mp.ImportPackageFact(pfs[0].Pkg, &f) || f.N != 9 {
			t.Errorf("ModulePass.ImportPackageFact: got %+v", f)
		}
		return nil
	}
	diags, facts, err := RunAnalyzersFacts([]*Package{pkg}, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("Finish hook never ran")
	}
	if len(diags) != 0 {
		t.Fatalf("probe produced diagnostics: %v", diags)
	}
	dump, err := facts.PackageFactsJSON("query")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"factprobe"`, `"package"`, `"obj:Query"`, `"N": 9`, `"N": 7`} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("fact dump missing %s:\n%s", want, dump)
		}
	}
}

// TestUnregisteredFactPanics pins the FactTypes contract: exporting a
// fact type the analyzer never declared is a programming error, not a
// silent drop.
func TestUnregisteredFactPanics(t *testing.T) {
	pkg, err := LoadFixture("testdata", "query")
	if err != nil {
		t.Fatal(err)
	}
	rogue := &Analyzer{
		Name:      "rogue",
		Doc:       "exports an undeclared fact type",
		FactTypes: []Fact{(*testFact)(nil)},
		Run: func(p *Pass) error {
			p.ExportPackageFact(&otherFact{S: "undeclared"})
			return nil
		},
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("exporting an unregistered fact type did not panic")
		}
	}()
	_, _ = RunAnalyzers([]*Package{pkg}, []*Analyzer{rogue})
}

// TestUniverseOrder pins the dependency-ordered analysis contract the
// whole facts mechanism rests on: a requested package's module-local
// dependencies are analyzed first (so their facts exist on import), and
// their diagnostics are discarded — they belong to runs that request
// those packages.
func TestUniverseOrder(t *testing.T) {
	pkg, err := LoadFixture("testdata", "lockgraph")
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	marker := &Analyzer{
		Name: "marker",
		Doc:  "records analysis order",
		Run: func(p *Pass) error {
			order = append(order, p.PkgPath)
			p.Reportf(p.Files[0].Pos(), "marker for %s", p.PkgPath)
			return nil
		},
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{marker})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "lockz" || order[1] != "lockgraph" {
		t.Fatalf("analysis order %v, want [lockz lockgraph] (imports before importers)", order)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "lockgraph") {
		t.Fatalf("diagnostics %v, want only the requested package's marker", diags)
	}
}
