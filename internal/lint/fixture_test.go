package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools/go/analysis/analysistest:
// packages under testdata/src/<name> annotate expected diagnostics with
//
//	offending() // want `regexp`
//
// comments (block-comment form /* want `re` */ included, for lines whose
// trailing line comment is already taken by a lint:allow directive). Every
// diagnostic must match a want on its line and every want must be hit.

func TestSpanEnd(t *testing.T)     { testFixture(t, SpanEnd, "spanend") }
func TestGenBump(t *testing.T)     { testFixture(t, GenBump, "genbump") }
func TestLockOrder(t *testing.T)   { testFixture(t, LockOrder, "lockorder") }
func TestWallClock(t *testing.T)   { testFixture(t, WallClock, "wallclock") }
func TestAtomicField(t *testing.T) { testFixture(t, AtomicField, "atomicfield") }
func TestErrSink(t *testing.T)     { testFixture(t, ErrSink, "errsink") }

// The whole-module dataflow analyzers: each fixture imports a model
// dependency package (query, lockz, work) that RunAnalyzers pulls into
// the universe and analyzes facts-only, so the true positives below are
// caught through cross-package facts, not single-package inspection.
func TestSigFlow(t *testing.T)   { testFixture(t, SigFlow, "sigflow") }
func TestLockGraph(t *testing.T) { testFixture(t, LockGraph, "lockgraph") }
func TestGoLeak(t *testing.T)    { testFixture(t, GoLeak, "goleak") }

// TestAllowDirectives drives the suppression machinery end to end:
// same-line and line-above directives silence, wrong-analyzer and
// out-of-range ones do not, and malformed directives are themselves
// diagnostics.
func TestAllowDirectives(t *testing.T) { testFixture(t, ErrSink, "allow") }

func testFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkg, err := LoadFixture("testdata", path)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", path, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %q: %v", a.Name, path, err)
	}
	wants := fixtureExpectations(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %q has no want comments: it cannot demonstrate a caught violation", path)
	}
	for _, d := range diags {
		if !claimWant(wants, d.Pos, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// claimWant marks the first unhit expectation on the diagnostic's line
// whose pattern matches, reporting success.
func claimWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// fixtureExpectations parses want comments out of a loaded fixture. A
// want comment's body (after the // or /* marker) must begin with "want",
// followed by one or more quoted regexps.
func fixtureExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := c.Text
				switch {
				case strings.HasPrefix(body, "//"):
					body = strings.TrimSpace(body[2:])
				case strings.HasPrefix(body, "/*"):
					body = strings.TrimSpace(strings.TrimSuffix(body[2:], "*/"))
				}
				rest, ok := strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted splits `a` "b" ... into unquoted segments.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		q := s[0]
		if q != '`' && q != '"' {
			t.Fatalf("%s:%d: want patterns must be quoted with ` or \": %q", pos.Filename, pos.Line, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern: %q", pos.Filename, pos.Line, s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
		}
		out = append(out, unq)
		s = s[end+2:]
	}
	return out
}

// TestByName covers the analyzer registry the CLI's -analyzers flag uses.
func TestByName(t *testing.T) {
	got, err := ByName("spanend, errsink")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != SpanEnd || got[1] != ErrSink {
		t.Fatalf("ByName returned %v", names(got))
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestDiagnosticOrder pins the sorted output contract the CLI and CI rely
// on for stable diffs.
func TestDiagnosticOrder(t *testing.T) {
	pkg, err := LoadFixture("testdata", "errsink")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{ErrSink})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
	if len(diags) > 0 {
		want := fmt.Sprintf("%s:%d:%d: [errsink] %s",
			diags[0].Pos.Filename, diags[0].Pos.Line, diags[0].Pos.Column, diags[0].Message)
		if diags[0].String() != want {
			t.Fatalf("Diagnostic.String() = %q, want %q", diags[0].String(), want)
		}
	}
}
