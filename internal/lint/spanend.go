package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd is the compile-time mirror of obs.Trace.Validate's
// "closed-exactly-once" rule: a Span created in a function must reach
// End() on every control-flow path out of that function, or escape to
// someone who owns the closing (returned, stored, passed as an argument —
// including as another span's parent — or captured by a closure).
// Trace.Validate only fires when a test drives the leaking path;
// this analyzer walks every path, early returns and failover re-pack
// retry loops included.
//
// The check is an abstract interpretation of the function body: each span
// variable is untracked → open (its creating call) → closed (End() or
// defer End()), branches merge pessimistically (a path that may leave the
// span open wins), and loops account for zero iterations. defer sp.End()
// closes all later exits, which is why it is the repo's dominant idiom.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs span must End() on all paths or escape",
	Run:  runSpanEnd,
	// Purely local: a span that escapes the function (returned, stored) is
	// accepted here, so no cross-package fact is needed.
	FactTypes: nil,
}

func runSpanEnd(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		checkFuncSpans(pass, fd)
	}
	return nil
}

// isSpanValue reports whether t is obs.Span (fixtures declare their own
// obs package, matched by path tail).
func isSpanValue(t types.Type) bool {
	return isNamedType(t, "obs", "Span")
}

// spanCreation matches `v := <call returning obs.Span>` / `v = <call>`
// with a single LHS identifier, returning the variable object.
func spanCreation(pass *Pass, as *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isSpanValue(pass.Info.TypeOf(call)) {
		return nil, nil
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	return obj, call
}

// spanMethods are the Span methods a non-escaping use may invoke; End is
// the closing one.
var spanMethods = map[string]bool{"End": true, "SetInt": true, "SetStr": true}

func checkFuncSpans(pass *Pass, fd *ast.FuncDecl) {
	// Collect candidate span variables created in this function.
	type candidate struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var cands []candidate
	hasGoto := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if obj, call := spanCreation(pass, st); obj != nil {
				cands = append(cands, candidate{obj, call})
			}
		case *ast.BranchStmt:
			if st.Tok == token.GOTO {
				hasGoto = true
			}
		case *ast.ExprStmt:
			// A span-returning call in statement position throws the
			// handle away: nothing can ever End it.
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanValue(pass.Info.TypeOf(call)) {
				pass.Reportf(call.Pos(), "span discarded: the returned obs.Span can never be ended")
			}
		}
		return true
	})
	if len(cands) == 0 || hasGoto {
		// goto-bearing functions are rare enough that path analysis is not
		// worth modeling; the runtime Validate still covers them.
		return
	}

	for _, c := range cands {
		if spanEscapes(pass, fd, c.obj) {
			continue
		}
		w := &spanWalker{pass: pass, obj: c.obj, creation: c.call}
		out, terminated := w.walk(fd.Body.List, spanUntracked)
		if !terminated && out == spanOpen {
			pass.Reportf(c.call.Pos(), "span %s may reach the end of %s without End()", c.obj.Name(), fd.Name.Name)
		}
	}
}

// spanEscapes reports whether any use of the span variable hands the
// value to code outside this function's straight-line view: a call
// argument (e.g. as a parent span), a return value, the RHS of an
// assignment to something else, a composite literal, or any appearance
// inside a closure. Receiver position of Span methods and the creating
// assignment's LHS do not escape.
func spanEscapes(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		if useEscapes(pass, stack) {
			escaped = true
		}
		return true
	})
	return escaped
}

// useEscapes classifies one use of the span variable given the node stack
// ending at its identifier.
func useEscapes(pass *Pass, stack []ast.Node) bool {
	id := stack[len(stack)-1]
	// Inside any closure: the closure may End it later (or store it);
	// either way this function's paths no longer tell the whole story.
	for _, n := range stack[:len(stack)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		// sp.End() / sp.SetInt(...): method receiver position. Any other
		// selector on a Span value does not exist, but stay conservative.
		if parent.X == id && spanMethods[parent.Sel.Name] {
			return false
		}
		return true
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == id {
				return false // (re)assignment target, not a leak
			}
		}
		return true // RHS: aliased into another variable
	default:
		// Call argument, return statement, composite literal, channel
		// send, map index, struct field write... all hand the value away.
		return true
	}
}

// Span path states. Merging picks the "most dangerous" value: a path that
// may leave the span open dominates.
type spanState int

const (
	spanClosed spanState = iota
	spanUntracked
	spanOpen
)

func mergeSpan(a, b spanState) spanState {
	if a > b {
		return a
	}
	return b
}

type spanWalker struct {
	pass     *Pass
	obj      types.Object
	creation *ast.CallExpr
}

// walk interprets a statement list from the entry state, reporting leaks
// at returns. It returns the fall-through state and whether every path
// through the list terminated (returned/branched) before falling through.
func (w *spanWalker) walk(stmts []ast.Stmt, st spanState) (spanState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *spanWalker) stmt(s ast.Stmt, st spanState) (spanState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if obj, _ := spanCreation(w.pass, s); obj == w.obj {
			return spanOpen, false
		}
	case *ast.ExprStmt:
		if w.isEndCall(s.X) {
			return spanClosed, false
		}
	case *ast.DeferStmt:
		// defer sp.End() guards every later exit.
		if w.isEndCall(s.Call) {
			return spanClosed, false
		}
	case *ast.ReturnStmt:
		if st == spanOpen {
			w.pass.Reportf(s.Pos(), "span %s may not be ended on this return path (created at line %d)",
				w.obj.Name(), w.pass.Fset.Position(w.creation.Pos()).Line)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue: the carried state rejoins the loop, which the
		// loop merge below approximates.
		return st, true
	case *ast.BlockStmt:
		return w.walk(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		tOut, tTerm := w.walk(s.Body.List, st)
		eOut, eTerm := st, false
		if s.Else != nil {
			eOut, eTerm = w.stmt(s.Else, st)
		}
		switch {
		case tTerm && eTerm:
			return st, true
		case tTerm:
			return eOut, false
		case eTerm:
			return tOut, false
		default:
			return mergeSpan(tOut, eOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		bodyOut, _ := w.walk(s.Body.List, st)
		return mergeSpan(st, bodyOut), false
	case *ast.RangeStmt:
		bodyOut, _ := w.walk(s.Body.List, st)
		return mergeSpan(st, bodyOut), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.caseMerge(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	}
	return st, false
}

// caseMerge handles the three case-bodied statements: the result is the
// merge over every non-terminating clause, plus the entry state when a
// switch has no default (the no-match path falls through unchanged).
func (w *spanWalker) caseMerge(s ast.Stmt, st spanState) (spanState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var outs []spanState
	for _, c := range body.List {
		var clause []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			clause = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			clause = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		if cOut, cTerm := w.walk(clause, st); !cTerm {
			outs = append(outs, cOut)
		}
	}
	if !hasDefault {
		// No default: the zero-case path carries the entry state through.
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = mergeSpan(out, o)
	}
	return out, false
}

// isEndCall matches `<obj>.End()`.
func (w *spanWalker) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.pass.Info.Uses[id] == w.obj
}
