// Package lint is hailint's analysis framework: a small, dependency-free
// mirror of golang.org/x/tools/go/analysis (which this offline build cannot
// vendor) plus the repo-specific analyzers that prove HAIL's cross-cutting
// correctness rules at `go vet` time instead of trusting runtime checks to
// be exercised:
//
//	spanend     every obs span reaches End() on all paths, or escapes
//	genbump     hdfs replica/generation mutations fire notifyChanged
//	lockorder   shard/datanode locks never nest; no namenode calls under them
//	wallclock   bare time.Now/time.Since only where wall-clock is the point
//	atomicfield fields touched via sync/atomic are atomic everywhere
//	errsink     error results of repo-internal calls are never dropped
//	sigflow     every knob read on the block-scan path is cache-key material
//	lockgraph   the module-wide lock-acquisition graph is acyclic
//	goleak      every spawned goroutine has a provable termination path
//
// The last three are whole-module dataflow analyses: package passes export
// typed facts (per-function field-read summaries, lock-acquisition edges,
// nontermination marks) that dependent packages' passes and a module-level
// Finish phase consume — the dependency-free mirror of x/tools analysis
// facts over the shared loader.
//
// Each analyzer documents the invariant it enforces next to its Run
// function; ARCHITECTURE.md's "Invariants" section lists them all.
// Intentional exceptions are written in the code as
//
//	//lint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line — auditable one by one,
// instead of growing silent allowlists inside the analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. The API mirrors
// golang.org/x/tools/go/analysis so the suite can migrate to the real
// multichecker wholesale if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error

	// FactTypes declares the fact types this analyzer exports; exporting an
	// undeclared type panics. Analyzers with no entry are purely local.
	FactTypes []Fact

	// Finish, if set, runs once after every package pass, with the
	// whole-module fact store — the place for properties no single package
	// can see (a lock-acquisition cycle through three packages).
	Finish func(*ModulePass) error
}

// A Pass holds one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer

	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info

	// RelPath is PkgPath with the module prefix stripped — "internal/hdfs"
	// rather than "repro/internal/hdfs" — so path-scoped rules (wallclock's
	// allowlist, genbump's package scope) read the same against the real
	// tree and against fixture packages, whose paths have no module prefix.
	RelPath string

	// IsLocalPkg reports whether an import path belongs to the tree under
	// analysis (the module, or the fixture root in tests) rather than to
	// the standard library. errsink only polices local callees.
	IsLocalPkg func(path string) bool

	diags  *[]Diagnostic
	allows map[string][]allowDirective // filename → directives
	facts  *FactSet
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	line     int    // line the comment sits on
	analyzer string // which analyzer it silences
	reason   string // non-empty; enforced at parse time
}

var (
	// allowHeadRe decides whether a comment IS a directive (as opposed to
	// prose or a doc example that merely mentions one): the comment text
	// must begin with lint:allow.
	allowHeadRe = regexp.MustCompile(`^//\s*lint:allow(\s|$)`)
	allowRe     = regexp.MustCompile(`^//\s*lint:allow\s+(\S+)\s*(.*)$`)
)

// parseAllows scans a file's comments for lint:allow directives. A
// directive silences matching diagnostics reported on its own line or on
// the line immediately below (the standalone-comment form). Malformed
// directives — a missing analyzer name is unmatchable, a missing reason is
// unauditable — are themselves reported, so a typo cannot silently widen
// an exemption.
func parseAllows(fset *token.FileSet, f *ast.File, report func(Diagnostic)) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !allowHeadRe.MatchString(c.Text) {
				continue
			}
			m := allowRe.FindStringSubmatch(c.Text)
			pos := fset.Position(c.Pos())
			if m == nil {
				report(Diagnostic{Pos: pos, Analyzer: "allow",
					Message: "malformed lint:allow comment (want //lint:allow <analyzer> <reason>)"})
				continue
			}
			reason := strings.TrimSpace(m[2])
			if reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: "allow",
					Message: fmt.Sprintf("lint:allow %s needs a reason — exceptions must be auditable", m[1])})
				continue
			}
			out = append(out, allowDirective{line: pos.Line, analyzer: m[1], reason: reason})
		}
	}
	return out
}

// allowed reports whether a diagnostic at pos from the named analyzer is
// suppressed by a lint:allow directive.
func (p *Pass) allowed(name string, pos token.Position) bool {
	for _, d := range p.allows[pos.Filename] {
		if d.analyzer == name && (d.line == pos.Line || d.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// Reportf records a diagnostic unless a lint:allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, sorted by position. Malformed lint:allow comments are
// reported once per package set regardless of which analyzers run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersFacts(pkgs, analyzers)
	return diags, err
}

// expandUniverse returns the requested packages plus their transitive
// module-local dependencies in dependency order (imports before
// importers), so a pass can import any fact a dependency's pass exported.
func expandUniverse(pkgs []*Package) []*Package {
	var order []*Package
	seen := make(map[*Package]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// RunAnalyzersFacts is RunAnalyzers exposing the fact store: packages are
// analyzed in dependency order — including dependencies of the requested
// set, whose passes run facts-only (their diagnostics belong to runs that
// request them) — then each analyzer's Finish hook sees the whole module.
func RunAnalyzersFacts(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *FactSet, error) {
	var diags []Diagnostic
	facts := newFactSet()
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	universe := expandUniverse(pkgs)
	allAllows := make(map[string][]allowDirective)
	var fset *token.FileSet
	for _, pkg := range universe {
		fset = pkg.Fset
		var discard []Diagnostic
		sink := &diags
		if !requested[pkg] {
			sink = &discard
		}
		allows := make(map[string][]allowDirective)
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			allows[name] = parseAllows(pkg.Fset, f, func(d Diagnostic) { *sink = append(*sink, d) })
			allAllows[name] = allows[name]
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				PkgPath:    pkg.Path,
				Info:       pkg.Info,
				RelPath:    pkg.RelPath,
				IsLocalPkg: pkg.IsLocal,
				diags:      sink,
				allows:     allows,
				facts:      facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     universe,
			facts:    facts,
			allows:   allAllows,
			diags:    &diags,
		}
		if err := a.Finish(mp); err != nil {
			return nil, nil, fmt.Errorf("%s: finish: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, facts, nil
}

// All returns the full hailint suite in stable order: the six per-package
// rules of the original suite, then the three whole-module dataflow
// analyzers built on the facts mechanism.
func All() []*Analyzer {
	return []*Analyzer{
		SpanEnd,
		GenBump,
		LockOrder,
		WallClock,
		AtomicField,
		ErrSink,
		SigFlow,
		LockGraph,
		GoLeak,
	}
}

// ByName resolves a comma-separated analyzer list ("spanend,genbump").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}
