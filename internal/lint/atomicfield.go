package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity: a struct field accessed
// through sync/atomic anywhere (atomic.LoadInt64(&x.f), ...) must be
// accessed through sync/atomic everywhere. One plain read racing a
// concurrent atomic writer is still a data race — the mixed pattern is a
// bug every time, and it hides from the race detector until a test
// happens to interleave the two. (Fields typed atomic.Int64 etc. are
// immune by construction; this analyzer polices the pointer-style
// remnants, e.g. core.InputFormat.nnOps.)
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields that appear as &x.f in a sync/atomic call, and
	// remember the selector nodes so pass 2 does not re-flag them.
	atomicFields := make(map[*types.Var]bool)
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass.Info, sel); f != nil {
					atomicFields[f] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields is a violation.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			f := fieldOf(pass.Info, sel)
			if f == nil || !atomicFields[f] {
				return true
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed via sync/atomic elsewhere", f.Name())
			return true
		})
	}
	return nil
}

// fieldOf returns the struct field a selector denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
