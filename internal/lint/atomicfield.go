package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicUseFact marks a struct field as atomically accessed somewhere in
// its declaring package, so a dependent package's plain access to the
// (necessarily exported) field is flagged without re-analysis.
type atomicUseFact struct {
	Atomic bool
}

func (*atomicUseFact) AFact() {}

// AtomicField enforces all-or-nothing atomicity: a struct field accessed
// through sync/atomic anywhere (atomic.LoadInt64(&x.f), ...) must be
// accessed through sync/atomic everywhere. One plain read racing a
// concurrent atomic writer is still a data race — the mixed pattern is a
// bug every time, and it hides from the race detector until a test
// happens to interleave the two. (Fields typed atomic.Int64 etc. are
// immune by construction; this analyzer polices the pointer-style
// remnants, e.g. core.InputFormat.nnOps.) The atomic-use set travels
// across packages as an object fact on the field, so a plain access to
// an exported counter from a dependent package is caught too.
var AtomicField = &Analyzer{
	Name:      "atomicfield",
	Doc:       "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:       runAtomicField,
	FactTypes: []Fact{(*atomicUseFact)(nil)},
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields that appear as &x.f in a sync/atomic call, and
	// remember the selector nodes so pass 2 does not re-flag them.
	atomicFields := make(map[*types.Var]bool)
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass.Info, sel); f != nil {
					atomicFields[f] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}
	// Fields atomically used in this package are facts for dependents;
	// the shared loader keeps object identity stable, so the fact lands
	// on the same *types.Var a dependent's selector resolves to.
	for f := range atomicFields {
		pass.ExportObjectFact(f, &atomicUseFact{Atomic: true})
	}

	// Pass 2: every other access to those fields — including fields whose
	// declaring package exported an atomic-use fact — is a violation.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			f := fieldOf(pass.Info, sel)
			if f == nil {
				return true
			}
			if !atomicFields[f] {
				var fact atomicUseFact
				if f.Pkg() == pass.Pkg || !pass.ImportObjectFact(f, &fact) || !fact.Atomic {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "non-atomic access to field %s, which is accessed via sync/atomic elsewhere", f.Name())
			return true
		})
	}
	return nil
}

// fieldOf returns the struct field a selector denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
