package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// The loader is fed arbitrary on-disk source by the CLIs; go/parser and
// go/types both have histories of crashers on exotic inputs, and a panic
// would take hailint down mid-CI with no diagnostic. LoadModule and
// LoadFixture therefore convert panics into load errors
// (recoverLoadPanic), and these fuzz targets pin that contract: any
// byte sequence may fail to load, but must never panic. `go test` runs
// the seed corpus; `go test -fuzz FuzzLoadFixture ./internal/lint`
// explores from there.

var fuzzSeeds = []string{
	"",
	"package p\n",
	"package p\nfunc f() {",
	"package p\nimport \"nonesuch\"\nvar x = nonesuch.X\n",
	"package p\ntype T struct{ T }\n",
	"package p\nfunc f() { go func() { for {} }() }\n",
	"package p\nvar mu sync.Mutex\n",
	"package p\n//lint:allow\nfunc f() {}\n",
	"package p\n/* want `x` */\n",
	"package p\ntype C chan C\nfunc f(c C) { c <- c }\n",
	"package p\nconst c = 1 << 1000\nvar x = [c]int{}\n",
	"\xff\xfe invalid utf8",
	"package p\nfunc (r) m() {}\n",
	"package p\ngeneric nonsense ::= {",
}

func FuzzLoadFixture(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root := t.TempDir()
		dir := filepath.Join(root, "src", "fuzzpkg")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fuzz.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		// Must not panic; errors are the expected failure mode.
		pkg, err := LoadFixture(root, "fuzzpkg")
		if err != nil {
			return
		}
		// A package that loads must also survive the full suite, facts
		// included — the analyzers walk the same exotic AST.
		_, _, _ = RunAnalyzersFacts([]*Package{pkg}, All())
	})
}

func FuzzLoadModule(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root := t.TempDir()
		if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fuzzmod\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, "main.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadModule(root, []string{"./..."}); err != nil {
			return
		}
	})
}
