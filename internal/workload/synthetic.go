package workload

import (
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/schema"
)

// SynNumAttrs is the Synthetic dataset's attribute count (§6.2: "19
// integer attributes ... similar to scientific datasets").
const SynNumAttrs = 19

// synFilterMax bounds attr1, the filter attribute of all Syn queries:
// uniform in [0, 1000), so [0,99] selects 10% and [0,9] selects 1%.
const synFilterMax = 1000

// synValueMax bounds the remaining attributes. Uniform in [0, 1e7) gives
// ~6.9 text digits per value, putting the binary PAX size at ~51% of the
// text size — the ratio behind HAIL's Figure 4(b) upload win (the paper's
// storage numbers in §6.3.2 imply binary ≈ 0.54 × text).
const synValueMax = 10000000

var syntheticSchema = buildSyntheticSchema()

func buildSyntheticSchema() *schema.Schema {
	fields := make([]schema.Field, SynNumAttrs)
	for i := range fields {
		fields[i] = schema.Field{Name: "attr" + strconv.Itoa(i+1), Type: schema.Int32}
	}
	return schema.MustNew(fields...)
}

// SyntheticSchema returns the 19×int32 schema.
func SyntheticSchema() *schema.Schema { return syntheticSchema }

// GenerateSynthetic produces n delimited text lines of Synthetic data.
func GenerateSynthetic(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, 0, n)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.Reset()
		b.WriteString(strconv.Itoa(rng.Intn(synFilterMax)))
		for a := 1; a < SynNumAttrs; a++ {
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(rng.Intn(synValueMax)))
		}
		lines = append(lines, b.String())
	}
	return lines
}
