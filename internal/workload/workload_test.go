package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/schema"
)

func TestUserVisitsSchemaShape(t *testing.T) {
	s := UserVisitsSchema()
	if s.NumFields() != 9 {
		t.Fatalf("UserVisits has %d fields, want 9", s.NumFields())
	}
	// Positions used by the paper's annotations.
	checks := map[int]struct {
		name string
		typ  schema.Type
	}{
		UVSourceIP:  {"sourceIP", schema.String},
		UVVisitDate: {"visitDate", schema.Date},
		UVAdRevenue: {"adRevenue", schema.Float64},
		UVDuration:  {"duration", schema.Int32},
	}
	for pos, want := range checks {
		f := s.Field(pos)
		if f.Name != want.name || f.Type != want.typ {
			t.Errorf("field %d = %v, want %v", pos, f, want)
		}
	}
}

func TestUserVisitsParseable(t *testing.T) {
	lines := GenerateUserVisits(5000, 7, UserVisitsOptions{})
	p := schema.NewParser(UserVisitsSchema())
	for i, l := range lines {
		if _, err := p.ParseLine(l); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
	}
}

func TestUserVisitsDeterministic(t *testing.T) {
	a := GenerateUserVisits(1000, 3, UserVisitsOptions{NeedleEvery: 100})
	b := GenerateUserVisits(1000, 3, UserVisitsOptions{NeedleEvery: 100})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at line %d", i)
		}
	}
	c := GenerateUserVisits(1000, 4, UserVisitsOptions{NeedleEvery: 100})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 20 {
		t.Errorf("different seeds produced %d identical lines", same)
	}
}

func selectivityOf(t *testing.T, lines []string, match func(schema.Row) bool) float64 {
	t.Helper()
	p := schema.NewParser(UserVisitsSchema())
	n, hits := 0, 0
	for _, l := range lines {
		row, err := p.ParseLine(l)
		if err != nil {
			continue
		}
		n++
		if match(row) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func TestBobSelectivities(t *testing.T) {
	lines := GenerateUserVisits(120000, 11, UserVisitsOptions{})
	lo99, hi00 := schema.MustDate("1999-01-01"), schema.MustDate("2000-01-01")

	q1 := selectivityOf(t, lines, func(r schema.Row) bool {
		d := r[UVVisitDate].Days()
		return d >= lo99 && d <= hi00
	})
	if math.Abs(q1-3.1e-2) > 0.7e-2 {
		t.Errorf("Bob-Q1 selectivity = %.4f, want ≈0.031", q1)
	}
	q4 := selectivityOf(t, lines, func(r schema.Row) bool {
		v := r[UVAdRevenue].Float()
		return v >= 1 && v <= 10
	})
	if math.Abs(q4-1.8e-2) > 0.6e-2 {
		t.Errorf("Bob-Q4 selectivity = %.4f, want ≈0.018", q4)
	}
	q5 := selectivityOf(t, lines, func(r schema.Row) bool {
		v := r[UVAdRevenue].Float()
		return v >= 1 && v <= 100
	})
	if math.Abs(q5-0.198) > 0.03 {
		t.Errorf("Bob-Q5 selectivity = %.4f, want ≈0.198", q5)
	}
}

func TestNeedlePlanting(t *testing.T) {
	lines := GenerateUserVisits(10000, 13, UserVisitsOptions{NeedleEvery: 1000})
	p := schema.NewParser(UserVisitsSchema())
	needles, withDate := 0, 0
	for _, l := range lines {
		row, err := p.ParseLine(l)
		if err != nil {
			continue
		}
		if row[UVSourceIP].Str() == NeedleIP {
			needles++
			if row[UVVisitDate].Days() == schema.MustDate(NeedleDate) {
				withDate++
			}
		}
	}
	if needles != 10 {
		t.Errorf("planted %d needles, want 10", needles)
	}
	if withDate == 0 || withDate == needles {
		t.Errorf("Bob-Q3 needs a strict subset: %d of %d with the date", withDate, needles)
	}
}

func TestBadRecordInjection(t *testing.T) {
	lines := GenerateUserVisits(1000, 17, UserVisitsOptions{BadEvery: 100})
	p := schema.NewParser(UserVisitsSchema())
	bad := 0
	for _, l := range lines {
		if _, err := p.ParseLine(l); err != nil {
			bad++
		}
	}
	if bad != 10 {
		t.Errorf("%d bad records, want 10", bad)
	}
}

func TestSyntheticShapeAndSelectivity(t *testing.T) {
	s := SyntheticSchema()
	if s.NumFields() != 19 {
		t.Fatalf("Synthetic has %d fields", s.NumFields())
	}
	for i := 0; i < 19; i++ {
		if s.Field(i).Type != schema.Int32 {
			t.Fatalf("field %d is %s, want int32", i, s.Field(i).Type)
		}
	}
	lines := GenerateSynthetic(60000, 19)
	p := schema.NewParser(s)
	n, q1, q2 := 0, 0, 0
	for _, l := range lines {
		row, err := p.ParseLine(l)
		if err != nil {
			t.Fatalf("unparseable synthetic line: %v", err)
		}
		n++
		v := row[0].Int()
		if v <= 99 {
			q1++
		}
		if v <= 9 {
			q2++
		}
	}
	if got := float64(q1) / float64(n); math.Abs(got-0.10) > 0.01 {
		t.Errorf("Syn-Q1 selectivity = %.4f, want 0.10", got)
	}
	if got := float64(q2) / float64(n); math.Abs(got-0.01) > 0.004 {
		t.Errorf("Syn-Q2 selectivity = %.4f, want 0.01", got)
	}
}

func TestSyntheticBinaryRatio(t *testing.T) {
	// §6.3.1: HAIL's upload win on Synthetic comes from the binary PAX
	// representation being roughly half the text size (paper: 420 GB for
	// 6 binary replicas of a dataset whose 3 text replicas need 390 GB,
	// i.e. binary ≈ 0.54 × text).
	lines := GenerateSynthetic(20000, 23)
	var textBytes int64
	for _, l := range lines {
		textBytes += int64(len(l) + 1)
	}
	binBytes := int64(20000 * 19 * 4) // packed int32 columns
	ratio := float64(binBytes) / float64(textBytes)
	if ratio < 0.45 || ratio > 0.65 {
		t.Errorf("binary/text ratio = %.3f, want ≈0.54", ratio)
	}
}

func TestQueriesParseAgainstSchemas(t *testing.T) {
	if got := len(BobQueries()); got != 5 {
		t.Fatalf("BobQueries = %d, want 5", got)
	}
	if got := len(SynQueries()); got != 6 {
		t.Fatalf("SynQueries = %d, want 6", got)
	}
	for _, q := range BobQueries() {
		if err := q.Query.Validate(UserVisitsSchema()); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if q.HadoopMap == nil {
			t.Errorf("%s: no Hadoop map function", q.Name)
		}
	}
	widths := []int{19, 9, 1, 19, 9, 1}
	for i, q := range SynQueries() {
		if err := q.Query.Validate(SyntheticSchema()); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if len(q.Query.Projection) != widths[i] {
			t.Errorf("%s projects %d attrs, want %d", q.Name, len(q.Query.Projection), widths[i])
		}
	}
}

func TestTable1Grid(t *testing.T) {
	// Table 1: the selectivity × projection grid.
	qs := SynQueries()
	wantSel := []float64{0.10, 0.10, 0.10, 0.01, 0.01, 0.01}
	for i, q := range qs {
		if q.Selectivity != wantSel[i] {
			t.Errorf("%s selectivity = %v, want %v", q.Name, q.Selectivity, wantSel[i])
		}
		if !strings.HasPrefix(q.Name, "Syn-Q") {
			t.Errorf("unexpected name %s", q.Name)
		}
	}
}
