package workload

import (
	"strings"
	"testing"

	"repro/internal/mapred"
	"repro/internal/schema"
)

// collect runs a map function over raw lines and returns the emitted keys.
func collect(m mapred.MapFunc, lines []string) []string {
	var out []string
	emit := func(k, v string) { out = append(out, k) }
	for _, l := range lines {
		m(mapred.Record{Raw: l}, emit)
	}
	return out
}

func TestHadoopMapsMatchHailSemantics(t *testing.T) {
	// For every Bob query, the hand-written Hadoop map function over raw
	// text must produce exactly what HAIL's declarative path produces:
	// the projected attributes of matching rows.
	lines := GenerateUserVisits(20000, 31, UserVisitsOptions{NeedleEvery: 2000, BadEvery: 500})
	p := schema.NewParser(UserVisitsSchema())
	for _, bq := range BobQueries() {
		got := collect(bq.HadoopMap, lines)
		var want []string
		for _, l := range lines {
			row, err := p.ParseLine(l)
			if err != nil {
				continue
			}
			if !bq.Query.MatchesRow(row) {
				continue
			}
			proj := make(schema.Row, len(bq.Query.Projection))
			for j, c := range bq.Query.Projection {
				proj[j] = row[c]
			}
			want = append(want, proj.Line(','))
		}
		if len(got) != len(want) {
			t.Fatalf("%s: Hadoop map emitted %d rows, typed path %d", bq.Name, len(got), len(want))
		}
		gotSet := map[string]int{}
		for _, k := range got {
			gotSet[k]++
		}
		for _, k := range want {
			if gotSet[k] == 0 {
				t.Fatalf("%s: typed result %q missing from Hadoop map output", bq.Name, k)
			}
			gotSet[k]--
		}
	}
}

func TestSynHadoopMapsMatchTypedPath(t *testing.T) {
	lines := GenerateSynthetic(15000, 37)
	p := schema.NewParser(SyntheticSchema())
	for _, bq := range SynQueries() {
		got := collect(bq.HadoopMap, lines)
		count := 0
		for _, l := range lines {
			row, err := p.ParseLine(l)
			if err != nil {
				t.Fatal(err)
			}
			if bq.Query.MatchesRow(row) {
				count++
			}
		}
		if len(got) != count {
			t.Fatalf("%s: Hadoop map emitted %d rows, want %d", bq.Name, len(got), count)
		}
		// Projection width shows in the emitted field count.
		if count > 0 {
			fields := strings.Count(got[0], ",") + 1
			if fields != len(bq.Query.Projection) {
				t.Errorf("%s: emitted %d fields, want %d", bq.Name, fields, len(bq.Query.Projection))
			}
		}
	}
}

func TestHadoopMapsSkipMalformedLines(t *testing.T) {
	bad := []string{
		"",
		"too,few,fields",
		"a,b,c,d,e,f,g,h,i,j,k", // too many for Synthetic? 11 != 19; also != 9 for UV
		"CORRUPT LINE 7 WITHOUT PROPER FIELDS",
	}
	for _, bq := range BobQueries() {
		if got := collect(bq.HadoopMap, bad); len(got) != 0 {
			t.Errorf("%s emitted %d rows for malformed input", bq.Name, len(got))
		}
	}
	for _, bq := range SynQueries() {
		if got := collect(bq.HadoopMap, bad); len(got) != 0 {
			t.Errorf("%s emitted %d rows for malformed input", bq.Name, len(got))
		}
	}
}

func TestPassthroughMap(t *testing.T) {
	var out []string
	emit := func(k, v string) { out = append(out, k) }
	PassthroughMap(mapred.Record{Row: schema.Row{schema.IntVal(1), schema.StringVal("x")}}, emit)
	PassthroughMap(mapred.Record{Bad: true, Raw: "junk"}, emit)
	if len(out) != 1 || out[0] != "1,x" {
		t.Errorf("PassthroughMap output = %v", out)
	}
}

func TestBobQ4Q5BoundaryValues(t *testing.T) {
	// adRevenue range predicates are inclusive on both ends; make the
	// text and typed paths agree at the exact boundaries.
	mk := func(rev string) string {
		return "1.2.3.4,http://x/,1999-06-15," + rev + ",agent,DEU,de-DE,word,42"
	}
	q4 := BobQueries()[3]
	cases := map[string]bool{"0.9": false, "1": true, "5.5": true, "10": true, "10.1": false}
	for rev, want := range cases {
		got := len(collect(q4.HadoopMap, []string{mk(rev)})) == 1
		if got != want {
			t.Errorf("Bob-Q4 Hadoop map at adRevenue=%s: %v, want %v", rev, got, want)
		}
		p := schema.NewParser(UserVisitsSchema())
		row, err := p.ParseLine(mk(rev))
		if err != nil {
			t.Fatal(err)
		}
		if q4.Query.MatchesRow(row) != want {
			t.Errorf("Bob-Q4 typed path at adRevenue=%s: %v, want %v", rev, !want, want)
		}
	}
}
