// Package workload provides the paper's two benchmark datasets and query
// workloads (§6.2): the UserVisits table of Pavlo et al. [27] with Bob's
// five queries, and the 19-integer-attribute Synthetic dataset with the
// Syn-Q1/Q2 query grid of Table 1.
//
// Generators are deterministic in their seed, and value distributions are
// chosen so the queries reproduce the paper's selectivities:
//
//	Bob-Q1  visitDate ∈ [1999-01-01, 2000-01-01]   3.1 × 10⁻²
//	Bob-Q2  sourceIP = 172.101.11.46               ~10⁻⁸ (planted needle)
//	Bob-Q3  Q2 ∧ visitDate = 1992-12-22            ~10⁻⁹ (planted needle)
//	Bob-Q4  adRevenue ∈ [1, 10]                    1.7 × 10⁻²
//	Bob-Q5  adRevenue ∈ [1, 100]                   2.04 × 10⁻¹
//	Syn-Q1* attr1 ∈ [0, 99]                        0.10
//	Syn-Q2* attr1 ∈ [0, 9]                         0.01
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/schema"
)

// UserVisits attribute positions (0-based). The paper's annotations use
// 1-based @N references: @1 = sourceIP, @3 = visitDate, and so on.
const (
	UVSourceIP = iota
	UVDestURL
	UVVisitDate
	UVAdRevenue
	UVUserAgent
	UVCountryCode
	UVLanguageCode
	UVSearchWord
	UVDuration
)

// NeedleIP and NeedleDate are the planted values behind Bob-Q2 and Bob-Q3.
const (
	NeedleIP   = "172.101.11.46"
	NeedleDate = "1992-12-22"
)

// userVisitsSchema is the 9-attribute UserVisits schema of [27].
var userVisitsSchema = schema.MustNew(
	schema.Field{Name: "sourceIP", Type: schema.String},
	schema.Field{Name: "destURL", Type: schema.String},
	schema.Field{Name: "visitDate", Type: schema.Date},
	schema.Field{Name: "adRevenue", Type: schema.Float64},
	schema.Field{Name: "userAgent", Type: schema.String},
	schema.Field{Name: "countryCode", Type: schema.String},
	schema.Field{Name: "languageCode", Type: schema.String},
	schema.Field{Name: "searchWord", Type: schema.String},
	schema.Field{Name: "duration", Type: schema.Int32},
)

// UserVisitsSchema returns the UserVisits schema.
func UserVisitsSchema() *schema.Schema { return userVisitsSchema }

// visitDate spans ~32.4 years so that Bob-Q1's one-year window selects
// 3.1% of the rows.
var (
	visitDateMin  = schema.MustDate("1970-01-01")
	visitDateDays = int32(11807) // through 2002-04-30
)

// adRevenue is uniform in [0, 500) with one decimal: [1,10] selects 1.8%,
// [1,100] 19.8% — the paper's 1.7×10⁻² and 2.04×10⁻¹ within rounding.
const adRevenueMax = 500.0

var userAgents = []string{
	"Mozilla/5.0 (X11; Linux x86_64)",
	"Mozilla/4.0 (compatible; MSIE 6.0)",
	"Opera/9.80 (Windows NT 5.1)",
	"Lynx/2.8.5rel.1 libwww-FM/2.14",
	"Wget/1.12 (linux-gnu)",
}

var countries = []string{"DEU", "USA", "FRA", "MEX", "TUR", "BRA", "IND", "CHN", "JPN", "KOR"}
var languages = []string{"de-DE", "en-US", "fr-FR", "es-MX", "tr-TR", "pt-BR", "hi-IN", "zh-CN", "ja-JP", "ko-KR"}
var searchWords = []string{
	"elephant", "aggressive", "index", "hadoop", "mapreduce", "saarland",
	"weblog", "analytics", "cluster", "pipeline", "replica", "checksum",
}

// UserVisitsOptions tunes generation.
type UserVisitsOptions struct {
	// NeedleEvery plants NeedleIP once every this many rows (0 disables).
	// Half of the planted rows also carry NeedleDate, so Bob-Q3 matches a
	// strict subset of Bob-Q2.
	NeedleEvery int
	// BadEvery emits a malformed line every this many rows (0 disables),
	// exercising HAIL's bad-record handling.
	BadEvery int
}

// GenerateUserVisits produces n delimited text lines of UserVisits data.
func GenerateUserVisits(n int, seed int64, opts UserVisitsOptions) []string {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if opts.BadEvery > 0 && i%opts.BadEvery == opts.BadEvery-1 {
			lines = append(lines, fmt.Sprintf("CORRUPT LINE %d WITHOUT PROPER FIELDS", i))
			continue
		}
		ip := randIP(rng)
		date := schema.FormatDate(visitDateMin + rng.Int31n(visitDateDays))
		if opts.NeedleEvery > 0 && i%opts.NeedleEvery == opts.NeedleEvery/2 {
			ip = NeedleIP
			if (i/opts.NeedleEvery)%2 == 0 {
				date = NeedleDate
			}
		}
		rev := float64(rng.Intn(int(adRevenueMax*10))) / 10
		var b strings.Builder
		b.WriteString(ip)
		b.WriteByte(',')
		fmt.Fprintf(&b, "http://%s.example.com/%s/page-%d", searchWords[rng.Intn(len(searchWords))],
			countries[rng.Intn(len(countries))], rng.Intn(100000))
		b.WriteByte(',')
		b.WriteString(date)
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(rev, 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(userAgents[rng.Intn(len(userAgents))])
		b.WriteByte(',')
		b.WriteString(countries[rng.Intn(len(countries))])
		b.WriteByte(',')
		b.WriteString(languages[rng.Intn(len(languages))])
		b.WriteByte(',')
		b.WriteString(searchWords[rng.Intn(len(searchWords))])
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(1 + rng.Intn(999)))
		lines = append(lines, b.String())
	}
	return lines
}

func randIP(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(223), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}
