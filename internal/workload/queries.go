package workload

import (
	"strconv"
	"strings"

	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

// BenchQuery is one benchmark query in all three systems' dialects: a
// HailQuery annotation for HAIL and Hadoop++ (both get pre-filtered,
// pre-projected records), and a hand-written text map function for
// standard Hadoop (which must split and filter every record itself, §4.1).
type BenchQuery struct {
	Name        string
	Annotation  string
	Query       *query.Query
	Selectivity float64 // paper-reported selectivity
	// HadoopMap is the standard-Hadoop map function over raw text lines.
	HadoopMap mapred.MapFunc
}

// PassthroughMap is the map function for HAIL and Hadoop++ jobs: records
// arrive filtered and projected, so it just emits them (§4.1's two-line
// HAIL map function). Bad records are counted but not emitted, as Bob's
// queries only concern well-formed rows.
func PassthroughMap(r mapred.Record, emit mapred.Emit) {
	if r.Bad {
		return
	}
	emit(r.Row.Line(','), "")
}

// PassthroughMapBatch is PassthroughMap in batch form: jobs that set it
// (alongside Map) let the engine consume the record reader's vectorized
// batch stream directly. It materializes through Batch.Each, so its
// output is byte-identical to PassthroughMap's and the two share
// PassthroughMapSig.
func PassthroughMapBatch(b *mapred.Batch, emit mapred.Emit) {
	b.Each(func(r mapred.Record) { PassthroughMap(r, emit) })
}

// PassthroughMapSig is PassthroughMap's stable identity for
// mapred.Job.MapSig — every job that uses PassthroughMap must use this
// signature so their cached block results interchange.
const PassthroughMapSig = "workload.Passthrough"

// mustQuery parses an annotation against a schema, panicking on error —
// these are static benchmark definitions.
func mustQuery(s *schema.Schema, ann string) *query.Query {
	q, err := query.ParseAnnotation(s, ann)
	if err != nil {
		panic(err)
	}
	return q
}

// BobQueries returns Bob's UserVisits workload (§6.2).
func BobQueries() []BenchQuery {
	s := UserVisitsSchema()
	return []BenchQuery{
		{
			Name:        "Bob-Q1",
			Annotation:  `@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`,
			Query:       mustQuery(s, `@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`),
			Selectivity: 3.1e-2,
			HadoopMap: func(r mapred.Record, emit mapred.Emit) {
				f := strings.Split(r.Raw, ",")
				if len(f) != 9 {
					return
				}
				if f[UVVisitDate] >= "1999-01-01" && f[UVVisitDate] <= "2000-01-01" {
					emit(f[UVSourceIP], "")
				}
			},
		},
		{
			Name:        "Bob-Q2",
			Annotation:  `@HailQuery(filter="@1 = ` + NeedleIP + `", projection={@8,@9,@4})`,
			Query:       mustQuery(s, `@HailQuery(filter="@1 = `+NeedleIP+`", projection={@8,@9,@4})`),
			Selectivity: 3.2e-8,
			HadoopMap: func(r mapred.Record, emit mapred.Emit) {
				f := strings.Split(r.Raw, ",")
				if len(f) != 9 {
					return
				}
				if f[UVSourceIP] == NeedleIP {
					emit(f[UVSearchWord]+","+f[UVDuration]+","+f[UVAdRevenue], "")
				}
			},
		},
		{
			Name: "Bob-Q3",
			Annotation: `@HailQuery(filter="@1 = ` + NeedleIP + ` and @3 = ` + NeedleDate +
				`", projection={@8,@9,@4})`,
			Query: mustQuery(s, `@HailQuery(filter="@1 = `+NeedleIP+` and @3 = `+NeedleDate+
				`", projection={@8,@9,@4})`),
			Selectivity: 6e-9,
			HadoopMap: func(r mapred.Record, emit mapred.Emit) {
				f := strings.Split(r.Raw, ",")
				if len(f) != 9 {
					return
				}
				if f[UVSourceIP] == NeedleIP && f[UVVisitDate] == NeedleDate {
					emit(f[UVSearchWord]+","+f[UVDuration]+","+f[UVAdRevenue], "")
				}
			},
		},
		{
			Name:        "Bob-Q4",
			Annotation:  `@HailQuery(filter="@4 between(1,10)", projection={@8,@9,@4})`,
			Query:       mustQuery(s, `@HailQuery(filter="@4 between(1,10)", projection={@8,@9,@4})`),
			Selectivity: 1.7e-2,
			HadoopMap:   adRevenueRangeMap(1, 10),
		},
		{
			Name:        "Bob-Q5",
			Annotation:  `@HailQuery(filter="@4 between(1,100)", projection={@8,@9,@4})`,
			Query:       mustQuery(s, `@HailQuery(filter="@4 between(1,100)", projection={@8,@9,@4})`),
			Selectivity: 2.04e-1,
			HadoopMap:   adRevenueRangeMap(1, 100),
		},
	}
}

func adRevenueRangeMap(lo, hi float64) mapred.MapFunc {
	return func(r mapred.Record, emit mapred.Emit) {
		f := strings.Split(r.Raw, ",")
		if len(f) != 9 {
			return
		}
		rev, err := strconv.ParseFloat(f[UVAdRevenue], 64)
		if err != nil || rev < lo || rev > hi {
			return
		}
		emit(f[UVSearchWord]+","+f[UVDuration]+","+f[UVAdRevenue], "")
	}
}

// SynQueries returns the Synthetic workload of Table 1: the cross product
// of selectivity {0.10, 0.01} and projection width {19, 9, 1}. All six
// filter on attr1, so HAIL's multiple indexes cannot help — the setup the
// paper uses to isolate selectivity effects (§6.2).
func SynQueries() []BenchQuery {
	s := SyntheticSchema()
	mk := func(name string, hiVal int, width int, sel float64) BenchQuery {
		proj := make([]string, width)
		projIdx := make([]int, width)
		for i := 0; i < width; i++ {
			proj[i] = "@" + strconv.Itoa(i+1)
			projIdx[i] = i
		}
		ann := `@HailQuery(filter="@1 between(0,` + strconv.Itoa(hiVal) + `)", projection={` +
			strings.Join(proj, ",") + `})`
		hi := hiVal
		return BenchQuery{
			Name:        name,
			Annotation:  ann,
			Query:       mustQuery(s, ann),
			Selectivity: sel,
			HadoopMap: func(r mapred.Record, emit mapred.Emit) {
				f := strings.Split(r.Raw, ",")
				if len(f) != SynNumAttrs {
					return
				}
				v, err := strconv.Atoi(f[0])
				if err != nil || v < 0 || v > hi {
					return
				}
				emit(strings.Join(f[:width], ","), "")
			},
		}
	}
	return []BenchQuery{
		mk("Syn-Q1a", 99, 19, 0.10),
		mk("Syn-Q1b", 99, 9, 0.10),
		mk("Syn-Q1c", 99, 1, 0.10),
		mk("Syn-Q2a", 9, 19, 0.01),
		mk("Syn-Q2b", 9, 9, 0.01),
		mk("Syn-Q2c", 9, 1, 0.01),
	}
}
