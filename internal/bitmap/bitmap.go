// Package bitmap implements the bitmap index §3.5 names as future work:
// "an interesting direction for future work would be to extend HAIL to
// support additional indexes ... including bitmap indexes for low
// cardinality domains".
//
// A bitmap index on a low-cardinality attribute (countryCode,
// languageCode) stores one bitset per distinct value, one bit per row of
// the block. Unlike the clustered index it does not require any sort
// order, so it can be added to a replica *alongside* its clustered index
// on a different attribute, and equality lookups on the bitmap attribute
// cost a bitset scan instead of a full column scan. Conjunctions across
// bitmap attributes become bit-ANDs.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/pax"
	"repro/internal/schema"
)

// Index is a bitmap index over one attribute of one block.
type Index struct {
	column  int
	numRows int
	keys    []schema.Value // distinct values, sorted
	bitmaps [][]uint64     // one bitset per key, numRows bits each
}

// MaxCardinality bounds the distinct-value count a bitmap index accepts.
// Beyond a few hundred values the dense bitmaps lose to the clustered
// index in both size and scan cost.
const MaxCardinality = 1024

// Build creates the index for attribute col of block b. The block does
// not need to be sorted on col (that is the point). Build fails when the
// attribute's cardinality exceeds MaxCardinality.
func Build(b *pax.Block, col int) (*Index, error) {
	if col < 0 || col >= b.Schema().NumFields() {
		return nil, fmt.Errorf("bitmap: column %d out of range", col)
	}
	n := b.NumRows()
	ix := &Index{column: col, numRows: n}
	slot := make(map[string]int)
	words := (n + 63) / 64
	for r := 0; r < n; r++ {
		v := b.Value(r, col)
		key := v.String()
		s, ok := slot[key]
		if !ok {
			if len(ix.keys) >= MaxCardinality {
				return nil, fmt.Errorf("bitmap: attribute %d exceeds cardinality bound %d",
					col, MaxCardinality)
			}
			s = len(ix.keys)
			slot[key] = s
			ix.keys = append(ix.keys, v)
			ix.bitmaps = append(ix.bitmaps, make([]uint64, words))
		}
		ix.bitmaps[s][r/64] |= 1 << (r % 64)
	}
	// Sort keys (with their bitmaps) for binary-searchable lookups.
	order := make([]int, len(ix.keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return ix.keys[order[i]].Compare(ix.keys[order[j]]) < 0
	})
	keys := make([]schema.Value, len(order))
	bms := make([][]uint64, len(order))
	for i, o := range order {
		keys[i], bms[i] = ix.keys[o], ix.bitmaps[o]
	}
	ix.keys, ix.bitmaps = keys, bms
	return ix, nil
}

// Column returns the indexed attribute.
func (ix *Index) Column() int { return ix.column }

// NumRows returns the rows covered.
func (ix *Index) NumRows() int { return ix.numRows }

// Cardinality returns the number of distinct values.
func (ix *Index) Cardinality() int { return len(ix.keys) }

// Lookup returns the bitset of rows with value v, or nil when the value
// does not occur. The returned slice must not be modified.
func (ix *Index) Lookup(v schema.Value) []uint64 {
	i := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i].Compare(v) >= 0 })
	if i < len(ix.keys) && ix.keys[i].Compare(v) == 0 {
		return ix.bitmaps[i]
	}
	return nil
}

// Rows expands a bitset into ascending row IDs. A nil bitset yields nil.
func Rows(bitset []uint64) []int {
	var out []int
	for w, word := range bitset {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << b
		}
	}
	return out
}

// And intersects two bitsets of equal length (conjunctions across bitmap
// attributes). Either argument may be nil (empty result).
func And(a, b []uint64) []uint64 {
	if a == nil || b == nil {
		return nil
	}
	if len(a) != len(b) {
		panic("bitmap: And on bitsets of different blocks")
	}
	out := make([]uint64, len(a))
	any := false
	for i := range a {
		out[i] = a[i] & b[i]
		if out[i] != 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// Count returns the number of set bits.
func Count(bitset []uint64) int {
	n := 0
	for _, w := range bitset {
		n += bits.OnesCount64(w)
	}
	return n
}

// SizeBytes returns the serialized size: cardinality × numRows bits plus
// the key directory. For a 3-letter country code over 512k rows this is
// ~640 KB — larger than the clustered index but independent of sort order.
func (ix *Index) SizeBytes() int {
	data, err := ix.Marshal()
	if err != nil {
		return 0
	}
	return len(data)
}

// Binary layout: magic "HBMP", version uint16, column int32, keyType
// uint8, numRows uint32, numKeys uint32, then per key {len uint16, key
// string bytes, bitmap words}.
const (
	bitmapMagic   = "HBMP"
	bitmapVersion = 1
)

// Marshal serializes the index. Keys are stored in their textual form to
// keep one codepath for every type.
func (ix *Index) Marshal() ([]byte, error) {
	words := (ix.numRows + 63) / 64
	out := make([]byte, 0, 19+len(ix.keys)*(2+8*words))
	out = append(out, bitmapMagic...)
	out = binary.LittleEndian.AppendUint16(out, bitmapVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(ix.column)))
	keyType := schema.String
	if len(ix.keys) > 0 {
		keyType = ix.keys[0].Type()
	}
	out = append(out, byte(keyType))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.numRows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ix.keys)))
	for i, k := range ix.keys {
		ks := k.String()
		if len(ks) > math.MaxUint16 {
			return nil, fmt.Errorf("bitmap: key too long")
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(ks)))
		out = append(out, ks...)
		for _, w := range ix.bitmaps[i] {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	}
	return out, nil
}

// Unmarshal decodes a serialized bitmap index.
func Unmarshal(data []byte) (*Index, error) {
	if len(data) < 19 {
		return nil, fmt.Errorf("bitmap: too short")
	}
	if string(data[:4]) != bitmapMagic {
		return nil, fmt.Errorf("bitmap: bad magic %q", data[:4])
	}
	p := 4
	if v := binary.LittleEndian.Uint16(data[p:]); v != bitmapVersion {
		return nil, fmt.Errorf("bitmap: unsupported version %d", v)
	}
	p += 2
	ix := &Index{}
	ix.column = int(int32(binary.LittleEndian.Uint32(data[p:])))
	p += 4
	keyType := schema.Type(data[p])
	p++
	ix.numRows = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	nKeys := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	words := (ix.numRows + 63) / 64
	for i := 0; i < nKeys; i++ {
		if p+2 > len(data) {
			return nil, fmt.Errorf("bitmap: truncated key header")
		}
		kl := int(binary.LittleEndian.Uint16(data[p:]))
		p += 2
		if p+kl+8*words > len(data) {
			return nil, fmt.Errorf("bitmap: truncated key %d", i)
		}
		v, err := schema.ParseValue(keyType, string(data[p:p+kl]))
		if err != nil {
			return nil, fmt.Errorf("bitmap: bad key: %v", err)
		}
		p += kl
		bm := make([]uint64, words)
		for w := range bm {
			bm[w] = binary.LittleEndian.Uint64(data[p:])
			p += 8
		}
		ix.keys = append(ix.keys, v)
		ix.bitmaps = append(ix.bitmaps, bm)
	}
	for i := 1; i < len(ix.keys); i++ {
		if ix.keys[i-1].Compare(ix.keys[i]) >= 0 {
			return nil, fmt.Errorf("bitmap: keys out of order")
		}
	}
	return ix, nil
}
