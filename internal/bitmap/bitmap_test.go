package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pax"
	"repro/internal/schema"
)

var sch = schema.MustNew(
	schema.Field{Name: "id", Type: schema.Int32},
	schema.Field{Name: "country", Type: schema.String},
	schema.Field{Name: "lang", Type: schema.String},
)

var countries = []string{"DEU", "USA", "FRA", "MEX", "TUR"}
var langs = []string{"de", "en", "fr", "es", "tr"}

func buildBlock(n int, seed int64) *pax.Block {
	rng := rand.New(rand.NewSource(seed))
	b := pax.NewBlock(sch)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(schema.Row{
			schema.IntVal(int32(i)),
			schema.StringVal(countries[rng.Intn(len(countries))]),
			schema.StringVal(langs[rng.Intn(len(langs))]),
		}); err != nil {
			panic(err)
		}
	}
	return b
}

func TestLookupMatchesBruteForce(t *testing.T) {
	b := buildBlock(5000, 1)
	ix, err := Build(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Cardinality() != len(countries) {
		t.Fatalf("cardinality = %d", ix.Cardinality())
	}
	for _, c := range countries {
		rows := Rows(ix.Lookup(schema.StringVal(c)))
		var want []int
		for r := 0; r < b.NumRows(); r++ {
			if b.Value(r, 1).Str() == c {
				want = append(want, r)
			}
		}
		if len(rows) != len(want) {
			t.Fatalf("%s: %d rows, want %d", c, len(rows), len(want))
		}
		for i := range want {
			if rows[i] != want[i] {
				t.Fatalf("%s: row %d = %d, want %d", c, i, rows[i], want[i])
			}
		}
	}
	if ix.Lookup(schema.StringVal("XXX")) != nil {
		t.Error("absent value returned a bitset")
	}
}

func TestConjunctionViaAnd(t *testing.T) {
	b := buildBlock(4000, 2)
	ixC, err := Build(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	ixL, err := Build(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := Rows(And(ixC.Lookup(schema.StringVal("DEU")), ixL.Lookup(schema.StringVal("de"))))
	var want []int
	for r := 0; r < b.NumRows(); r++ {
		if b.Value(r, 1).Str() == "DEU" && b.Value(r, 2).Str() == "de" {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("AND: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AND row %d: %d != %d", i, got[i], want[i])
		}
	}
	if And(nil, ixL.Lookup(schema.StringVal("de"))) != nil {
		t.Error("And(nil, x) should be nil")
	}
}

func TestBuildNoSortRequired(t *testing.T) {
	// The point of the bitmap extension: it works on a replica clustered
	// on a *different* attribute.
	b := buildBlock(3000, 3)
	if _, err := b.SortBy(0); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range countries {
		total += Count(ix.Lookup(schema.StringVal(c)))
	}
	if total != b.NumRows() {
		t.Errorf("bitmaps cover %d rows, want %d", total, b.NumRows())
	}
}

func TestCardinalityBound(t *testing.T) {
	b := buildBlock(MaxCardinality+10, 4)
	// Column 0 (id) has one distinct value per row: exceeds the bound.
	if _, err := Build(b, 0); err == nil {
		t.Error("high-cardinality attribute accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := buildBlock(2500, 5)
	ix, err := Build(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != ix.Cardinality() || got.NumRows() != ix.NumRows() || got.Column() != ix.Column() {
		t.Fatal("metadata mismatch")
	}
	for _, c := range countries {
		a := Rows(ix.Lookup(schema.StringVal(c)))
		g := Rows(got.Lookup(schema.StringVal(c)))
		if len(a) != len(g) {
			t.Fatalf("%s: %d vs %d rows after round trip", c, len(a), len(g))
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := buildBlock(500, 6)
	ix, _ := Build(b, 1)
	data, _ := ix.Marshal()
	if _, err := Unmarshal(data[:10]); err == nil {
		t.Error("truncated index accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'Z'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBitsetInvariants(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%2000 + 100
		b := buildBlock(n, seed)
		ix, err := Build(b, 1)
		if err != nil {
			return false
		}
		// Bitmaps partition the rows: disjoint and complete.
		seen := make([]bool, n)
		for _, c := range countries {
			for _, r := range Rows(ix.Lookup(schema.StringVal(c))) {
				if r >= n || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCountAndRows(t *testing.T) {
	bs := []uint64{0b1011, 0, 1 << 63}
	if Count(bs) != 4 {
		t.Errorf("Count = %d", Count(bs))
	}
	rows := Rows(bs)
	want := []int{0, 1, 3, 191}
	if len(rows) != len(want) {
		t.Fatalf("Rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("Rows[%d] = %d, want %d", i, rows[i], want[i])
		}
	}
	if Rows(nil) != nil {
		t.Error("Rows(nil) != nil")
	}
}

func BenchmarkBuild(b *testing.B) {
	blk := buildBlock(64*1024, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(blk, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupAndExpand(b *testing.B) {
	blk := buildBlock(64*1024, 8)
	ix, err := Build(blk, 1)
	if err != nil {
		b.Fatal(err)
	}
	v := schema.StringVal("DEU")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Rows(ix.Lookup(v))) == 0 {
			b.Fatal("no rows")
		}
	}
}
