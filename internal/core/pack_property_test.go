package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestPackingPolicyProperty is the packing-policy property test: under
// random kill/revive sequences, every split policy (per-block scan,
// packed scan, per-block indexed, HailSplitting, each with and without
// PackScans) must
//
//  1. cover each input block exactly once — no duplicates, no drops;
//  2. never hand the engine a dead-only location list (every block keeps
//     at least one alive replica in these sequences);
//  3. execute to the same row multiset as per-block execution on the
//     healthy cluster — all replicas store the same logical block (§2.3),
//     so neither packing nor failover may change a single result row.
func TestPackingPolicyProperty(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cluster, _, sum, _ := uvFixture(t, 3000, workload.UserVisitsOptions{NeedleEvery: 400})
			queries := []*query.Query{
				workload.BobQueries()[0].Query, // indexed attribute
				scanOnlyQuery(),                // never-indexed attribute
			}
			policies := []InputFormat{
				{},
				{PackScans: true},
				{Splitting: true, SplitsPerNode: 2},
				{Splitting: true, SplitsPerNode: 2, PackScans: true},
			}

			// Healthy-cluster references, one per query, from the plain
			// per-block policy.
			refs := make([]map[string]int, len(queries))
			for qi, q := range queries {
				refs[qi] = outputMultiset(runHailQuery(t, cluster, "/uv", q, false))
				if len(refs[qi]) == 0 {
					t.Fatalf("query %d returned nothing on the healthy cluster", qi)
				}
			}

			check := func(step string) {
				for qi, q := range queries {
					for pi, pol := range policies {
						f := pol
						f.Cluster, f.Query = cluster, q
						splits, err := f.Splits("/uv")
						if err != nil {
							t.Fatalf("%s q%d p%d: %v", step, qi, pi, err)
						}
						assertCoverage(t, splits, sum.BlockIDs)
						assertAliveLocations(t, cluster, splits)

						e := &mapred.Engine{Cluster: cluster}
						res, err := e.Run(&mapred.Job{
							Name: "prop", File: "/uv", Input: &f, Map: workload.PassthroughMap,
						})
						if err != nil {
							t.Fatalf("%s q%d p%d: %v", step, qi, pi, err)
						}
						got := outputMultiset(res)
						if len(got) != len(refs[qi]) {
							t.Fatalf("%s q%d p%d: %d distinct rows, want %d", step, qi, pi, len(got), len(refs[qi]))
						}
						for k, v := range refs[qi] {
							if got[k] != v {
								t.Fatalf("%s q%d p%d: result diverged for %q", step, qi, pi, k)
							}
						}
					}
				}
			}

			// Random kill/revive walk. With 4 nodes and replication 3, any
			// 2 dead nodes still leave every block an alive replica.
			dead := map[hdfs.NodeID]bool{}
			for step := 0; step < 4; step++ {
				if len(dead) < 2 && (len(dead) == 0 || rng.Intn(2) == 0) {
					for {
						n := hdfs.NodeID(rng.Intn(cluster.NumNodes()))
						if !dead[n] {
							if err := cluster.KillNode(n); err != nil {
								t.Fatal(err)
							}
							dead[n] = true
							break
						}
					}
				} else {
					for n := range dead {
						if err := cluster.ReviveNode(n); err != nil {
							t.Fatal(err)
						}
						delete(dead, n)
						break
					}
				}
				check(fmt.Sprintf("step%d(dead=%d)", step, len(dead)))
			}
		})
	}
}
