package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestPackingPolicyProperty is the packing-policy property test: under
// random kill/revive sequences, every split policy (per-block scan,
// packed scan, per-block indexed, HailSplitting, each with and without
// PackScans) must
//
//  1. cover each input block exactly once — no duplicates, no drops;
//  2. never hand the engine a dead-only location list (every block keeps
//     at least one alive replica in these sequences);
//  3. execute to the same row multiset as per-block execution on the
//     healthy cluster — all replicas store the same logical block (§2.3),
//     so neither packing nor failover may change a single result row.
func TestPackingPolicyProperty(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			cluster, _, sum, _ := uvFixture(t, 3000, workload.UserVisitsOptions{NeedleEvery: 400})
			queries := []*query.Query{
				workload.BobQueries()[0].Query, // indexed attribute
				scanOnlyQuery(),                // never-indexed attribute
			}
			policies := []InputFormat{
				{},
				{PackScans: true},
				{Splitting: true, SplitsPerNode: 2},
				{Splitting: true, SplitsPerNode: 2, PackScans: true},
			}

			// Healthy-cluster references, one per query, from the plain
			// per-block policy.
			refs := make([]map[string]int, len(queries))
			for qi, q := range queries {
				refs[qi] = outputMultiset(runHailQuery(t, cluster, "/uv", q, false))
				if len(refs[qi]) == 0 {
					t.Fatalf("query %d returned nothing on the healthy cluster", qi)
				}
			}

			check := func(step string) {
				for qi, q := range queries {
					for pi, pol := range policies {
						f := pol
						f.Cluster, f.Query = cluster, q
						splits, err := f.Splits("/uv")
						if err != nil {
							t.Fatalf("%s q%d p%d: %v", step, qi, pi, err)
						}
						assertCoverage(t, splits, sum.BlockIDs)
						assertAliveLocations(t, cluster, splits)

						e := &mapred.Engine{Cluster: cluster}
						res, err := e.Run(&mapred.Job{
							Name: "prop", File: "/uv", Input: &f, Map: workload.PassthroughMap,
						})
						if err != nil {
							t.Fatalf("%s q%d p%d: %v", step, qi, pi, err)
						}
						got := outputMultiset(res)
						if len(got) != len(refs[qi]) {
							t.Fatalf("%s q%d p%d: %d distinct rows, want %d", step, qi, pi, len(got), len(refs[qi]))
						}
						for k, v := range refs[qi] {
							if got[k] != v {
								t.Fatalf("%s q%d p%d: result diverged for %q", step, qi, pi, k)
							}
						}
					}
				}
			}

			// Random kill/revive walk. With 4 nodes and replication 3, any
			// 2 dead nodes still leave every block an alive replica.
			dead := map[hdfs.NodeID]bool{}
			for step := 0; step < 4; step++ {
				if len(dead) < 2 && (len(dead) == 0 || rng.Intn(2) == 0) {
					for {
						n := hdfs.NodeID(rng.Intn(cluster.NumNodes()))
						if !dead[n] {
							if err := cluster.KillNode(n); err != nil {
								t.Fatal(err)
							}
							dead[n] = true
							break
						}
					}
				} else {
					for n := range dead {
						if err := cluster.ReviveNode(n); err != nil {
							t.Fatal(err)
						}
						delete(dead, n)
						break
					}
				}
				check(fmt.Sprintf("step%d(dead=%d)", step, len(dead)))
			}
		})
	}
}

// assertRegisteredPins is the ghost-replica regression: every replica pin
// a split carries must point at a node the namenode directory currently
// lists as a holder of that block — a pin to a dropped (or never-held)
// replica is a promise the reader cannot keep.
func assertRegisteredPins(t *testing.T, cluster *hdfs.Cluster, splits []mapred.Split) {
	t.Helper()
	nn := cluster.NameNode()
	for _, s := range splits {
		for b, n := range s.Replica {
			if _, ok := nn.ReplicaInfo(b, n); ok {
				continue
			}
			t.Errorf("block %d pinned to node %d, which the directory does not list as a holder", b, n)
		}
	}
}

// TestDropReplicaCacheProperty extends the kill/revive packing property
// test with replica drops — the primitive adaptive eviction is built on.
// Under random drop/kill/revive sequences interleaved with cached packed
// execution:
//
//  1. after any DropReplica, no qcache entry (block- or split-level)
//     survives for the dropped block — the generation bump's change hook
//     must purge both granularities;
//  2. packed-scan pinning (including the CachedReplica probe's pins)
//     never selects a dropped replica — no ghost pins;
//  3. cached execution stays multiset-identical to the healthy-cluster
//     uncached reference throughout.
func TestDropReplicaCacheProperty(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + seed)))
			cluster, _, sum, _ := uvFixture(t, 3000, workload.UserVisitsOptions{NeedleEvery: 400})
			nn := cluster.NameNode()
			q := scanOnlyQuery()
			reference := outputMultiset(runHailQuery(t, cluster, "/uv", q, false))

			cache := qcache.New(0)
			nn.SetReplicaChangeHook(cache.InvalidateBlock)
			defer nn.SetReplicaChangeHook(nil)

			newInput := func() *InputFormat {
				in := &InputFormat{
					Cluster: cluster, Query: q,
					Splitting: true, SplitsPerNode: 2, PackScans: true,
				}
				sig, _ := in.QuerySignature()
				in.CachedReplica = func(b hdfs.BlockID) (hdfs.NodeID, bool) {
					return cache.CachedReplica("/uv", b, nn.Generation(b), sig, workload.PassthroughMapSig)
				}
				return in
			}
			runCached := func(name string) *mapred.JobResult {
				e := &mapred.Engine{Cluster: cluster, Cache: cache}
				res, err := e.Run(&mapred.Job{
					Name: name, File: "/uv", Input: newInput(),
					Map: workload.PassthroughMap, MapSig: workload.PassthroughMapSig,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return res
			}

			aliveHolders := func(b hdfs.BlockID, skip hdfs.NodeID) int {
				n := 0
				for _, h := range nn.GetHosts(b) {
					if h == skip {
						continue
					}
					if dn, err := cluster.DataNode(h); err == nil && dn.Alive() {
						n++
					}
				}
				return n
			}
			checkSplits := func(step string) {
				in := newInput()
				splits, err := in.Splits("/uv")
				if err != nil {
					t.Fatalf("%s: %v", step, err)
				}
				assertCoverage(t, splits, sum.BlockIDs)
				assertAliveLocations(t, cluster, splits)
				assertRegisteredPins(t, cluster, splits)
			}

			dead := map[hdfs.NodeID]bool{}
			for step := 0; step < 6; step++ {
				// Populate (or re-populate) the cache and gate equivalence.
				got := outputMultiset(runCached(fmt.Sprintf("cached-step%d", step)))
				if len(got) != len(reference) {
					t.Fatalf("step %d: %d distinct rows, want %d", step, len(got), len(reference))
				}
				for k, v := range reference {
					if got[k] != v {
						t.Fatalf("step %d: cached result diverged for %q", step, k)
					}
				}

				switch op := rng.Intn(3); {
				case op == 0: // DropReplica on a block that stays ≥2-alive
					var b hdfs.BlockID
					var victim hdfs.NodeID = -1
					for try := 0; try < 20 && victim == -1; try++ {
						b = sum.BlockIDs[rng.Intn(len(sum.BlockIDs))]
						hosts := nn.GetHosts(b)
						n := hosts[rng.Intn(len(hosts))]
						if aliveHolders(b, n) >= 2 {
							victim = n
						}
					}
					if victim == -1 {
						continue // replication too thin everywhere; skip the op
					}
					if err := cluster.DropReplica(b, victim); err != nil {
						t.Fatalf("step %d: DropReplica(%d,%d): %v", step, b, victim, err)
					}
					// Invariant 1: nothing cached survives for the block.
					if be, se := cache.BlockEntries(b); be != 0 || se != 0 {
						t.Fatalf("step %d: %d block / %d split cache entries survive for dropped block %d",
							step, be, se, b)
					}
					// Invariant 2: no split pins the dropped replica.
					checkSplits(fmt.Sprintf("step%d-drop", step))
				case op == 1 && len(dead) == 0: // kill, if every block survives it
					n := hdfs.NodeID(rng.Intn(cluster.NumNodes()))
					safe := true
					for _, b := range sum.BlockIDs {
						if aliveHolders(b, n) == 0 {
							safe = false
							break
						}
					}
					if !safe {
						continue
					}
					if err := cluster.KillNode(n); err != nil {
						t.Fatal(err)
					}
					dead[n] = true
					checkSplits(fmt.Sprintf("step%d-kill", step))
				default: // revive
					for n := range dead {
						if err := cluster.ReviveNode(n); err != nil {
							t.Fatal(err)
						}
						delete(dead, n)
						break
					}
					checkSplits(fmt.Sprintf("step%d-revive", step))
				}
			}
			// Final end-to-end pass over whatever topology remains.
			got := outputMultiset(runCached("cached-final"))
			for k, v := range reference {
				if got[k] != v {
					t.Fatalf("final cached result diverged for %q", k)
				}
			}
		})
	}
}
