package core

import (
	"fmt"
	"sort"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
)

// InputFormat is the HailInputFormat (§4.3). It consults the namenode's
// replica directory to find, per block, a replica whose clustered index
// matches the job's filter, and shapes splits accordingly:
//
//   - Splitting disabled (§6.4's configuration): one split per block, like
//     standard Hadoop, but located at the replica with the matching index.
//   - HailSplitting enabled (§6.5): blocks are clustered by the node
//     holding their matching replica, and each cluster is packed into
//     SplitsPerNode splits — turning thousands of milliseconds-long map
//     tasks into a handful of longer ones.
//
// Jobs with no filter, or whose filter attribute has no index on any
// replica, fall back to standard per-block full-scan splitting, so failover
// behaviour for scan jobs is unchanged (§4.3).
type InputFormat struct {
	Cluster *hdfs.Cluster
	Query   *query.Query
	// Splitting enables the HailSplitting policy.
	Splitting bool
	// SplitsPerNode is the number of splits created per locality group
	// when Splitting is on; the paper uses the trackers' map slot count.
	// 0 defaults to 2.
	SplitsPerNode int
	// Adaptive, if set, receives the split phase's per-block index
	// coverage report for the query's filter column, including the blocks
	// that would fall back to a full scan. The adaptive indexer uses it to
	// record index demand and to plan lazy index creation during the job
	// (LIAH-style); nil keeps the static HAIL behaviour.
	Adaptive AdaptiveObserver
}

// AdaptiveObserver is the adaptive indexing layer's view of the split
// phase. ObserveJob is called once per Splits invocation that has a
// usable filter column: `indexed` blocks get index-scan splits, `missing`
// blocks have no replica indexed on `column` and get full-scan splits.
type AdaptiveObserver interface {
	ObserveJob(file string, column int, indexed, missing []hdfs.BlockID)
}

// pickColumn selects the filter predicate that drives index selection:
// the first one for which at least one of the probed blocks has a
// replica with a matching clustered index. With fallback, the first
// filter column is returned even when no block is indexed on it — the
// attribute the adaptive layer will build toward. Returns -1 when there
// is no filter (or, without fallback, no match).
func (f *InputFormat) pickColumn(blocks []hdfs.BlockID, fallback bool) int {
	if f.Query == nil || len(f.Query.Filter) == 0 || len(blocks) == 0 {
		return -1
	}
	for _, p := range f.Query.Filter {
		for _, b := range blocks {
			if len(f.Cluster.NameNode().GetHostsWithIndex(b, p.Column)) > 0 {
				return p.Column
			}
		}
	}
	if fallback {
		return f.Query.Filter[0].Column
	}
	return -1
}

// indexColumn is the static policy: probe only the first block (every
// block of a statically-uploaded file has the same layout).
func (f *InputFormat) indexColumn(blocks []hdfs.BlockID) int {
	if len(blocks) > 1 {
		blocks = blocks[:1]
	}
	return f.pickColumn(blocks, false)
}

// splitIndexedHosts partitions the block's matching-index holders by
// liveness. The real namenode drops heartbeat-lost datanodes from block
// locations; Dir_rep entries for dead nodes remain (the node may return),
// so liveness is applied at lookup time.
func (f *InputFormat) splitIndexedHosts(b hdfs.BlockID, col int) (alive, dead []hdfs.NodeID) {
	for _, h := range f.Cluster.NameNode().GetHostsWithIndex(b, col) {
		if dn, err := f.Cluster.DataNode(h); err == nil && dn.Alive() {
			alive = append(alive, h)
		} else {
			dead = append(dead, h)
		}
	}
	return alive, dead
}

// indexedHosts returns the block's matching-index holders, alive nodes
// first.
func (f *InputFormat) indexedHosts(b hdfs.BlockID, col int) []hdfs.NodeID {
	alive, dead := f.splitIndexedHosts(b, col)
	return append(alive, dead...)
}

// adaptiveTarget picks the filter column the adaptive layer should index
// toward: probe *every* block (a partially converted file keeps using
// its new indexes) and fall back to the first filter column — the
// attribute the job actually needs, which the adaptive indexer will
// start building.
func (f *InputFormat) adaptiveTarget(blocks []hdfs.BlockID) int {
	return f.pickColumn(blocks, true)
}

// partitionByIndex splits the block list into blocks that have a usable
// (alive) replica indexed on col and blocks that do not. Liveness
// matters here: Dir_rep keeps entries for dead nodes, but a block whose
// only matching replica is unreachable degrades to a full scan at read
// time, so the adaptive layer must treat it as missing and rebuild the
// index on a surviving node.
func (f *InputFormat) partitionByIndex(blocks []hdfs.BlockID, col int) (indexed, missing []hdfs.BlockID) {
	for _, b := range blocks {
		if alive, _ := f.splitIndexedHosts(b, col); len(alive) > 0 {
			indexed = append(indexed, b)
		} else {
			missing = append(missing, b)
		}
	}
	return indexed, missing
}

// Splits implements the split phase (§4.3).
func (f *InputFormat) Splits(file string) ([]mapred.Split, error) {
	blocks, err := f.Cluster.NameNode().FileBlocks(file)
	if err != nil {
		return nil, err
	}
	col := f.indexColumn(blocks)
	if f.Adaptive != nil {
		if col < 0 {
			col = f.adaptiveTarget(blocks)
		}
		if col >= 0 {
			indexed, missing := f.partitionByIndex(blocks, col)
			f.Adaptive.ObserveJob(file, col, indexed, missing)
		}
	}
	if col < 0 {
		return f.scanSplits(blocks), nil
	}
	if !f.Splitting {
		return f.perBlockIndexSplits(blocks, col), nil
	}
	return f.hailSplits(blocks, col)
}

// SplitPhaseStats: HAIL's split phase needs no block-header reads — all
// index information lives in the namenode's Dir_rep (§6.4.1: HAIL "does
// not have to read any block header to compute input splits").
func (f *InputFormat) SplitPhaseStats() mapred.TaskStats { return mapred.TaskStats{} }

// scanSplits is the standard Hadoop fallback: one split per block, located
// at any replica.
func (f *InputFormat) scanSplits(blocks []hdfs.BlockID) []mapred.Split {
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.Cluster.NameNode().GetHosts(b),
		})
	}
	return splits
}

// perBlockIndexSplits keeps one split per block but points it at the
// replica with the matching index.
func (f *InputFormat) perBlockIndexSplits(blocks []hdfs.BlockID, col int) []mapred.Split {
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			// This block has no matching replica (e.g. written under a
			// different config): full scan for it.
			splits = append(splits, mapred.Split{
				Blocks:    []hdfs.BlockID{b},
				Locations: f.Cluster.NameNode().GetHosts(b),
			})
			continue
		}
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: hosts,
			Replica:   map[hdfs.BlockID]hdfs.NodeID{b: hosts[0]},
		})
	}
	return splits
}

// hailSplits implements HailSplitting (§4.3): cluster the blocks of the
// input by locality — the node holding the replica with the matching index
// — then create SplitsPerNode splits per cluster.
func (f *InputFormat) hailSplits(blocks []hdfs.BlockID, col int) ([]mapred.Split, error) {
	perNode := f.SplitsPerNode
	if perNode <= 0 {
		perNode = 2
	}
	groups := make(map[hdfs.NodeID][]hdfs.BlockID)
	var scanBlocks []hdfs.BlockID
	for _, b := range blocks {
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			scanBlocks = append(scanBlocks, b)
			continue
		}
		groups[hosts[0]] = append(groups[hosts[0]], b)
	}
	// Deterministic split order: by node ID.
	nodes := make([]hdfs.NodeID, 0, len(groups))
	for n := range groups {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var splits []mapred.Split
	for _, n := range nodes {
		bs := groups[n]
		nSplits := perNode
		if nSplits > len(bs) {
			nSplits = len(bs)
		}
		for s := 0; s < nSplits; s++ {
			split := mapred.Split{
				Locations: []hdfs.NodeID{n},
				Replica:   make(map[hdfs.BlockID]hdfs.NodeID),
			}
			for i := s; i < len(bs); i += nSplits {
				split.Blocks = append(split.Blocks, bs[i])
				split.Replica[bs[i]] = n
			}
			splits = append(splits, split)
		}
	}
	// Blocks with no usable index keep default per-block scan splits, so
	// their failover properties are untouched.
	for _, b := range scanBlocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.Cluster.NameNode().GetHosts(b),
		})
	}
	if len(splits) == 0 && len(blocks) > 0 {
		return nil, fmt.Errorf("hail: splitting produced no splits for %d blocks", len(blocks))
	}
	return splits, nil
}

// Open creates the HailRecordReader for a split.
func (f *InputFormat) Open(split mapred.Split, node hdfs.NodeID) (mapred.RecordReader, error) {
	return &recordReader{
		cluster: f.Cluster,
		query:   f.Query,
		split:   split,
		node:    node,
	}, nil
}

// QuerySignature implements mapred.QuerySigner: the HailRecordReader is a
// pure function of (block bytes, query), so the query's normalized
// signature — conjuncts merged and ordered, projection preserved — keys
// the block-level result cache.
func (f *InputFormat) QuerySignature() (string, bool) {
	return f.Query.Signature(), true
}

// OpenBlock implements mapred.BlockOpener: a reader for one block of the
// split, with the split's replica pinning intact — exactly what Open's
// reader would do when it reaches that block.
func (f *InputFormat) OpenBlock(split mapred.Split, b hdfs.BlockID, node hdfs.NodeID) (mapred.RecordReader, error) {
	sub := split
	sub.Blocks = []hdfs.BlockID{b}
	return f.Open(sub, node)
}
