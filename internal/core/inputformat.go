package core

import (
	"fmt"
	"sort"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
)

// InputFormat is the HailInputFormat (§4.3). It consults the namenode's
// replica directory to find, per block, a replica whose clustered index
// matches the job's filter, and shapes splits accordingly:
//
//   - Splitting disabled (§6.4's configuration): one split per block, like
//     standard Hadoop, but located at the replica with the matching index.
//   - HailSplitting enabled (§6.5): blocks are clustered by the node
//     holding their matching replica, and each cluster is packed into
//     SplitsPerNode splits — turning thousands of milliseconds-long map
//     tasks into a handful of longer ones.
//
// Jobs with no filter, or whose filter attribute has no index on any
// replica, fall back to standard per-block full-scan splitting, so failover
// behaviour for scan jobs is unchanged (§4.3).
type InputFormat struct {
	Cluster *hdfs.Cluster
	Query   *query.Query
	// Splitting enables the HailSplitting policy.
	Splitting bool
	// SplitsPerNode is the number of splits created per locality group
	// when Splitting is on; the paper uses the trackers' map slot count.
	// 0 defaults to 2.
	SplitsPerNode int
}

// indexColumn picks the filter predicate that will drive index selection:
// the first one for which at least one replica of the first block carries
// a matching clustered index. Returns -1 when none does.
func (f *InputFormat) indexColumn(blocks []hdfs.BlockID) int {
	if f.Query == nil || len(f.Query.Filter) == 0 || len(blocks) == 0 {
		return -1
	}
	for _, p := range f.Query.Filter {
		if len(f.Cluster.NameNode().GetHostsWithIndex(blocks[0], p.Column)) > 0 {
			return p.Column
		}
	}
	return -1
}

// indexedHosts returns the block's matching-index holders with alive nodes
// first. The real namenode drops heartbeat-lost datanodes from block
// locations; Dir_rep entries for dead nodes remain (the node may return),
// so liveness is applied at lookup time.
func (f *InputFormat) indexedHosts(b hdfs.BlockID, col int) []hdfs.NodeID {
	hosts := f.Cluster.NameNode().GetHostsWithIndex(b, col)
	var alive, dead []hdfs.NodeID
	for _, h := range hosts {
		if dn, err := f.Cluster.DataNode(h); err == nil && dn.Alive() {
			alive = append(alive, h)
		} else {
			dead = append(dead, h)
		}
	}
	return append(alive, dead...)
}

// Splits implements the split phase (§4.3).
func (f *InputFormat) Splits(file string) ([]mapred.Split, error) {
	blocks, err := f.Cluster.NameNode().FileBlocks(file)
	if err != nil {
		return nil, err
	}
	col := f.indexColumn(blocks)
	if col < 0 {
		return f.scanSplits(blocks), nil
	}
	if !f.Splitting {
		return f.perBlockIndexSplits(blocks, col), nil
	}
	return f.hailSplits(blocks, col)
}

// SplitPhaseStats: HAIL's split phase needs no block-header reads — all
// index information lives in the namenode's Dir_rep (§6.4.1: HAIL "does
// not have to read any block header to compute input splits").
func (f *InputFormat) SplitPhaseStats() mapred.TaskStats { return mapred.TaskStats{} }

// scanSplits is the standard Hadoop fallback: one split per block, located
// at any replica.
func (f *InputFormat) scanSplits(blocks []hdfs.BlockID) []mapred.Split {
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.Cluster.NameNode().GetHosts(b),
		})
	}
	return splits
}

// perBlockIndexSplits keeps one split per block but points it at the
// replica with the matching index.
func (f *InputFormat) perBlockIndexSplits(blocks []hdfs.BlockID, col int) []mapred.Split {
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			// This block has no matching replica (e.g. written under a
			// different config): full scan for it.
			splits = append(splits, mapred.Split{
				Blocks:    []hdfs.BlockID{b},
				Locations: f.Cluster.NameNode().GetHosts(b),
			})
			continue
		}
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: hosts,
			Replica:   map[hdfs.BlockID]hdfs.NodeID{b: hosts[0]},
		})
	}
	return splits
}

// hailSplits implements HailSplitting (§4.3): cluster the blocks of the
// input by locality — the node holding the replica with the matching index
// — then create SplitsPerNode splits per cluster.
func (f *InputFormat) hailSplits(blocks []hdfs.BlockID, col int) ([]mapred.Split, error) {
	perNode := f.SplitsPerNode
	if perNode <= 0 {
		perNode = 2
	}
	groups := make(map[hdfs.NodeID][]hdfs.BlockID)
	var scanBlocks []hdfs.BlockID
	for _, b := range blocks {
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			scanBlocks = append(scanBlocks, b)
			continue
		}
		groups[hosts[0]] = append(groups[hosts[0]], b)
	}
	// Deterministic split order: by node ID.
	nodes := make([]hdfs.NodeID, 0, len(groups))
	for n := range groups {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var splits []mapred.Split
	for _, n := range nodes {
		bs := groups[n]
		nSplits := perNode
		if nSplits > len(bs) {
			nSplits = len(bs)
		}
		for s := 0; s < nSplits; s++ {
			split := mapred.Split{
				Locations: []hdfs.NodeID{n},
				Replica:   make(map[hdfs.BlockID]hdfs.NodeID),
			}
			for i := s; i < len(bs); i += nSplits {
				split.Blocks = append(split.Blocks, bs[i])
				split.Replica[bs[i]] = n
			}
			splits = append(splits, split)
		}
	}
	// Blocks with no usable index keep default per-block scan splits, so
	// their failover properties are untouched.
	for _, b := range scanBlocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.Cluster.NameNode().GetHosts(b),
		})
	}
	if len(splits) == 0 && len(blocks) > 0 {
		return nil, fmt.Errorf("hail: splitting produced no splits for %d blocks", len(blocks))
	}
	return splits, nil
}

// Open creates the HailRecordReader for a split.
func (f *InputFormat) Open(split mapred.Split, node hdfs.NodeID) (mapred.RecordReader, error) {
	return &recordReader{
		cluster: f.Cluster,
		query:   f.Query,
		split:   split,
		node:    node,
	}, nil
}
