package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
)

// InputFormat is the HailInputFormat (§4.3). It consults the namenode's
// replica directory to find, per block, a replica whose clustered index
// matches the job's filter, and shapes splits accordingly:
//
//   - Splitting disabled (§6.4's configuration): one split per block, like
//     standard Hadoop, but located at the replica with the matching index.
//   - HailSplitting enabled (§6.5): blocks are clustered by the node
//     holding their matching replica, and each cluster is packed into
//     SplitsPerNode splits — turning thousands of milliseconds-long map
//     tasks into a handful of longer ones.
//
// Jobs with no filter, or whose filter attribute has no index on any
// replica, fall back to standard per-block full-scan splitting, so failover
// behaviour for scan jobs is unchanged (§4.3).
type InputFormat struct {
	Cluster *hdfs.Cluster
	Query   *query.Query
	// Splitting enables the HailSplitting policy.
	Splitting bool
	// SplitsPerNode is the number of splits created per locality group
	// when Splitting is on; the paper uses the trackers' map slot count.
	// 0 defaults to 2.
	SplitsPerNode int
	// Adaptive, if set, receives the split phase's per-block index
	// coverage report for the query's filter column, including the blocks
	// that would fall back to a full scan. The adaptive indexer uses it to
	// record index demand and to plan lazy index creation during the job
	// (LIAH-style); the indexed blocks double as the lifecycle manager's
	// heat signal — every index-scan split an adaptive replica serves
	// stamps that replica's (file, column, block) entry, which is what
	// its eviction policy ranks cold replicas by. nil keeps the static
	// HAIL behaviour.
	Adaptive AdaptiveObserver
	// PackScans extends packing to the blocks §4.3 leaves per-block:
	// blocks with no usable index — and, when CachedReplica is wired,
	// blocks whose map output the result cache already holds — are grouped
	// by a preferred alive replica node and packed into SplitsPerNode
	// splits per node, exactly the HailSplitting shape. This removes the
	// per-task dispatch bound from adaptive job 1 (nothing indexed yet)
	// and from fully-cached hot jobs (~zero map work per block). Packing
	// trades away the one-block failover granularity of per-block scan
	// splits; the engine compensates by repacking a failed packed split
	// and re-executing only the affected blocks (mapred.Split.Fallback).
	PackScans bool
	// CachedReplica, if set alongside PackScans, reports whether the
	// block-level result cache already holds this block's output for the
	// job's query, and at which replica node. Fully-cached blocks are
	// packed pinned at that replica — even blocks whose only claim to
	// packing is that their work is already done (qcache.CachedReplica is
	// the canonical implementation).
	CachedReplica func(b hdfs.BlockID) (hdfs.NodeID, bool)
	// RowPath selects the legacy row-at-a-time record reader instead of
	// the vectorized batch pipeline. The two produce byte-identical
	// output and I/O accounting; the knob exists so the batch path's
	// speedup stays measured (experiments.ExpVector, hailquery
	// -row-path), not asserted.
	RowPath bool

	// nnOps holds the namenode-lookup count of the most recent Splits
	// call, for the legacy SplitPhaseStats accessor. Counting itself
	// happens on a per-call splitPlanner, so concurrent Splits calls on a
	// shared InputFormat never corrupt each other's totals; this field is
	// only the last call's published result (atomic: last writer wins).
	nnOps int64
}

// splitPlanner carries one Splits call's state — today just the namenode
// lookup counter. Every call gets a fresh planner, which is what makes a
// single InputFormat shareable across concurrent jobs: the split phase
// itself is pure directory reads, and the one mutable accumulator lives
// here instead of on the shared struct.
type splitPlanner struct {
	*InputFormat
	nnOps int64
}

// AdaptiveObserver is the adaptive indexing layer's view of the split
// phase. ObserveJob is called once per Splits invocation that has a
// usable filter column: `indexed` blocks get index-scan splits, `missing`
// blocks have no replica indexed on `column` and get full-scan splits.
type AdaptiveObserver interface {
	ObserveJob(file string, column int, indexed, missing []hdfs.BlockID)
}

// pickColumn selects the filter predicate that drives index selection:
// the first one for which at least one of the probed blocks has a
// replica with a matching clustered index. With fallback, the first
// filter column is returned even when no block is indexed on it — the
// attribute the adaptive layer will build toward. Returns -1 when there
// is no filter (or, without fallback, no match).
func (f *splitPlanner) pickColumn(blocks []hdfs.BlockID, fallback bool) int {
	if f.Query == nil || len(f.Query.Filter) == 0 || len(blocks) == 0 {
		return -1
	}
	for _, p := range f.Query.Filter {
		for _, b := range blocks {
			f.nnOps++
			if len(f.Cluster.NameNode().GetHostsWithIndex(b, p.Column)) > 0 {
				return p.Column
			}
		}
	}
	if fallback {
		return f.Query.Filter[0].Column
	}
	return -1
}

// indexColumn is the static policy: probe only the first block (every
// block of a statically-uploaded file has the same layout).
func (f *splitPlanner) indexColumn(blocks []hdfs.BlockID) int {
	if len(blocks) > 1 {
		blocks = blocks[:1]
	}
	return f.pickColumn(blocks, false)
}

// splitIndexedHosts partitions the block's matching-index holders by
// liveness. The real namenode drops heartbeat-lost datanodes from block
// locations; Dir_rep entries for dead nodes remain (the node may return),
// so liveness is applied at lookup time. Both partitions are sorted by
// node ID: Dir_block keeps registration order, which is deterministic for
// a static upload but lets the adaptive path's concurrently registered
// replicas (and any future multi-writer path) leak arrival order into
// replica pinning — sorting makes Replica[b] = hosts[0] a pure function
// of the directory's contents.
func (f *splitPlanner) splitIndexedHosts(b hdfs.BlockID, col int) (alive, dead []hdfs.NodeID) {
	f.nnOps++
	for _, h := range f.Cluster.NameNode().GetHostsWithIndex(b, col) {
		if dn, err := f.Cluster.DataNode(h); err == nil && dn.Alive() {
			alive = append(alive, h)
		} else {
			dead = append(dead, h)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	return alive, dead
}

// scanHosts resolves a scan block's candidate locations: the replica
// holders with dead nodes filtered out, in registration (pipeline) order.
// When no holder is alive the full list is returned — the engine then
// schedules availability-only and the read fails honestly — but a block
// with any alive replica never hands the engine a dead-only location
// list (the scan-split counterpart of splitIndexedHosts' liveness rule).
func (f *splitPlanner) scanHosts(b hdfs.BlockID) []hdfs.NodeID {
	f.nnOps++
	hosts := f.Cluster.NameNode().GetHosts(b)
	alive := make([]hdfs.NodeID, 0, len(hosts))
	for _, h := range hosts {
		if dn, err := f.Cluster.DataNode(h); err == nil && dn.Alive() {
			alive = append(alive, h)
		}
	}
	if len(alive) > 0 {
		return alive
	}
	return hosts
}

// indexedHosts returns the block's alive matching-index holders, sorted
// by node ID. Dead holders are dropped entirely: a split pinned at (or
// located on) a dead node is a promise the engine cannot keep, and a
// block whose matching replicas are all unreachable degrades to a scan
// split — the same call the adaptive path's partitionByIndex makes.
func (f *splitPlanner) indexedHosts(b hdfs.BlockID, col int) []hdfs.NodeID {
	alive, _ := f.splitIndexedHosts(b, col)
	return alive
}

// adaptiveTarget picks the filter column the adaptive layer should index
// toward: probe *every* block (a partially converted file keeps using
// its new indexes) and fall back to the first filter column — the
// attribute the job actually needs, which the adaptive indexer will
// start building.
func (f *splitPlanner) adaptiveTarget(blocks []hdfs.BlockID) int {
	return f.pickColumn(blocks, true)
}

// partitionByIndex splits the block list into blocks that have a usable
// (alive) replica indexed on col and blocks that do not. Liveness
// matters here: Dir_rep keeps entries for dead nodes, but a block whose
// only matching replica is unreachable degrades to a full scan at read
// time, so the adaptive layer must treat it as missing and rebuild the
// index on a surviving node.
func (f *splitPlanner) partitionByIndex(blocks []hdfs.BlockID, col int) (indexed, missing []hdfs.BlockID) {
	for _, b := range blocks {
		if alive, _ := f.splitIndexedHosts(b, col); len(alive) > 0 {
			indexed = append(indexed, b)
		} else {
			missing = append(missing, b)
		}
	}
	return indexed, missing
}

// Splits implements the split phase (§4.3). The stats of the call are
// published for SplitPhaseStats; callers running concurrent jobs over one
// shared InputFormat should use SplitsWithStats, whose per-call stats
// cannot be clobbered by an overlapping call.
func (f *InputFormat) Splits(file string) ([]mapred.Split, error) {
	splits, stats, err := f.SplitsWithStats(file)
	if err != nil {
		return nil, err
	}
	atomic.StoreInt64(&f.nnOps, int64(stats.NameNodeOps))
	return splits, nil
}

// SplitsWithStats implements mapred.StatsInputFormat: the split phase
// plus that call's own stats. All mutable split-phase state lives on a
// per-call planner, so one InputFormat value may serve any number of
// concurrent jobs.
func (f *InputFormat) SplitsWithStats(file string) ([]mapred.Split, mapred.TaskStats, error) {
	p := &splitPlanner{InputFormat: f, nnOps: 1} // 1: the FileBlocks lookup below
	blocks, err := f.Cluster.NameNode().FileBlocks(file)
	if err != nil {
		return nil, mapred.TaskStats{}, err
	}
	col := p.indexColumn(blocks)
	if f.Adaptive != nil {
		if col < 0 {
			col = p.adaptiveTarget(blocks)
		}
		if col >= 0 {
			indexed, missing := p.partitionByIndex(blocks, col)
			f.Adaptive.ObserveJob(file, col, indexed, missing)
		}
	}
	var splits []mapred.Split
	switch {
	case col < 0:
		splits = p.scanSplits(blocks)
	case !f.Splitting:
		splits = p.perBlockIndexSplits(blocks, col)
	default:
		splits, err = p.hailSplits(blocks, col)
		if err != nil {
			return nil, mapred.TaskStats{}, err
		}
	}
	return splits, mapred.TaskStats{NameNodeOps: int(p.nnOps)}, nil
}

// SplitPhaseStats: HAIL's split phase needs no block-header reads — all
// index information lives in the namenode's Dir_rep (§6.4.1: HAIL "does
// not have to read any block header to compute input splits"), so
// BytesRead and Seeks stay zero by design. The phase is not free, though:
// liveness-aware location resolution and especially the adaptive path
// (partitionByIndex probes every block) are namenode directory lookups,
// reported in NameNodeOps so the metadata cost of the latest Splits call
// is measured rather than hidden behind a zero struct.
func (f *InputFormat) SplitPhaseStats() mapred.TaskStats {
	return mapred.TaskStats{NameNodeOps: int(atomic.LoadInt64(&f.nnOps))}
}

// cachedAliveReplica is the packing probe for fully-cached blocks: the
// replica node the result cache holds this block's output at, provided
// packing is on, the probe is wired, and that node is alive.
func (f *splitPlanner) cachedAliveReplica(b hdfs.BlockID) (hdfs.NodeID, bool) {
	if !f.PackScans || f.CachedReplica == nil {
		return 0, false
	}
	n, ok := f.CachedReplica(b)
	if !ok {
		return 0, false
	}
	if dn, err := f.Cluster.DataNode(n); err != nil || !dn.Alive() {
		return 0, false
	}
	return n, true
}

// scanSplits is the standard Hadoop fallback for blocks with no usable
// index: one split per block located at the block's alive replicas — or,
// with PackScans, SplitsPerNode packed splits per preferred node.
func (f *splitPlanner) scanSplits(blocks []hdfs.BlockID) []mapred.Split {
	if f.PackScans {
		return f.packScanSplits(blocks)
	}
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.scanHosts(b),
		})
	}
	return splits
}

// packScanSplits is the PackScans policy: group scan blocks by a
// preferred alive replica node — the cached replica when the result cache
// already holds the block's output, the first alive holder otherwise —
// and emit SplitsPerNode packed splits per node, the same clustering
// shape hailSplits gives index-matched blocks. Blocks with no alive
// replica keep a degenerate per-block split (nothing can read them until
// a holder returns, and packing them would poison a whole packed split).
//
// Skewed replica placement is load-balanced: a node's pack-group share is
// capped at its fair share (⌈packable blocks / candidate nodes⌉), and a
// block whose preferred holder is at the cap spills to its next-preferred
// alive replica with room — so a node that happens to head most replica
// lists no longer absorbs most of the scan. Under even placement every
// head stays below the cap and grouping is identical to the unbalanced
// policy. Cache-pinned blocks never move (moving would forfeit the hit)
// but pre-charge their node's share so spillable blocks route around hot
// cached nodes.
func (f *splitPlanner) packScanSplits(blocks []hdfs.BlockID) []mapred.Split {
	type looseSplit struct {
		block hdfs.BlockID
		hosts []hdfs.NodeID
	}
	type packBlock struct {
		block  hdfs.BlockID
		pin    hdfs.NodeID // cache-pinned node, valid when pinned
		pinned bool
		hosts  []hdfs.NodeID // alive candidate holders, preference order
	}
	var packable []packBlock
	var loose []looseSplit
	load := make(map[hdfs.NodeID]int)
	cands := make(map[hdfs.NodeID]bool)
	for _, b := range blocks {
		if n, ok := f.cachedAliveReplica(b); ok {
			packable = append(packable, packBlock{block: b, pin: n, pinned: true})
			load[n]++
			cands[n] = true
			continue
		}
		hosts := f.scanHosts(b)
		alive := false
		if len(hosts) > 0 {
			// scanHosts returns the dead-only fallback list when no
			// holder is alive; probe the head to tell the cases apart.
			if dn, err := f.Cluster.DataNode(hosts[0]); err == nil && dn.Alive() {
				alive = true
			}
		}
		if !alive {
			loose = append(loose, looseSplit{b, hosts})
			continue
		}
		packable = append(packable, packBlock{block: b, hosts: hosts})
		for _, h := range hosts {
			cands[h] = true
		}
	}
	share := 0
	if len(cands) > 0 {
		share = (len(packable) + len(cands) - 1) / len(cands)
	}
	// Assign in block order (group member order is part of the output
	// byte-equivalence contract): preferred holder while under the cap,
	// else the first candidate with room, else the least-loaded candidate
	// (single-holder blocks can exceed the cap — there is nowhere else).
	groups := make(map[hdfs.NodeID][]hdfs.BlockID)
	for _, pb := range packable {
		n := pb.pin
		if !pb.pinned {
			n = pb.hosts[0]
			if load[n] >= share {
				for _, h := range pb.hosts {
					if load[h] < share {
						n = h
						break
					}
				}
				if load[n] >= share {
					for _, h := range pb.hosts[1:] {
						if load[h] < load[n] {
							n = h
						}
					}
				}
			}
			load[n]++
		}
		groups[n] = append(groups[n], pb.block)
	}
	splits := f.packGroups(groups)
	for _, l := range loose {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{l.block},
			Locations: l.hosts,
		})
	}
	return splits
}

// perBlockIndexSplits keeps one split per block but points it at the
// replica with the matching index. With PackScans, the blocks that would
// fall back to per-block scans — and fully-cached blocks, whose work is
// already done wherever their index lives — are packed instead.
func (f *splitPlanner) perBlockIndexSplits(blocks []hdfs.BlockID, col int) []mapred.Split {
	splits := make([]mapred.Split, 0, len(blocks))
	var packable []hdfs.BlockID
	for _, b := range blocks {
		if _, ok := f.cachedAliveReplica(b); ok {
			packable = append(packable, b)
			continue
		}
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			// This block has no matching replica (e.g. written under a
			// different config): full scan for it.
			if f.PackScans {
				packable = append(packable, b)
				continue
			}
			splits = append(splits, mapred.Split{
				Blocks:    []hdfs.BlockID{b},
				Locations: f.scanHosts(b),
			})
			continue
		}
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: hosts,
			Replica:   map[hdfs.BlockID]hdfs.NodeID{b: hosts[0]},
		})
	}
	if len(packable) > 0 {
		splits = append(splits, f.packScanSplits(packable)...)
	}
	return splits
}

// packGroups turns locality groups into SplitsPerNode packed splits per
// node with every block pinned to its group node — the split shape shared
// by hailSplits (§4.3) and packScanSplits. Split order is deterministic:
// ascending node ID, then stride.
func (f *splitPlanner) packGroups(groups map[hdfs.NodeID][]hdfs.BlockID) []mapred.Split {
	perNode := f.SplitsPerNode
	if perNode <= 0 {
		perNode = 2
	}
	nodes := make([]hdfs.NodeID, 0, len(groups))
	for n := range groups {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var splits []mapred.Split
	for _, n := range nodes {
		bs := groups[n]
		nSplits := perNode
		if nSplits > len(bs) {
			nSplits = len(bs)
		}
		for s := 0; s < nSplits; s++ {
			split := mapred.Split{
				Locations: []hdfs.NodeID{n},
				Replica:   make(map[hdfs.BlockID]hdfs.NodeID),
			}
			for i := s; i < len(bs); i += nSplits {
				split.Blocks = append(split.Blocks, bs[i])
				split.Replica[bs[i]] = n
			}
			splits = append(splits, split)
		}
	}
	return splits
}

// hailSplits implements HailSplitting (§4.3): cluster the blocks of the
// input by locality — the node holding the replica with the matching index
// — then create SplitsPerNode splits per cluster.
func (f *splitPlanner) hailSplits(blocks []hdfs.BlockID, col int) ([]mapred.Split, error) {
	groups := make(map[hdfs.NodeID][]hdfs.BlockID)
	var scanBlocks []hdfs.BlockID
	for _, b := range blocks {
		hosts := f.indexedHosts(b, col)
		if len(hosts) == 0 {
			scanBlocks = append(scanBlocks, b)
			continue
		}
		groups[hosts[0]] = append(groups[hosts[0]], b)
	}
	splits := f.packGroups(groups)
	// Blocks with no usable index fall back to scan splits: per-block by
	// default (failover properties untouched), packed under PackScans.
	splits = append(splits, f.scanSplits(scanBlocks)...)
	if len(splits) == 0 && len(blocks) > 0 {
		return nil, fmt.Errorf("hail: splitting produced no splits for %d blocks", len(blocks))
	}
	return splits, nil
}

// Open creates the HailRecordReader for a split.
func (f *InputFormat) Open(split mapred.Split, node hdfs.NodeID) (mapred.RecordReader, error) {
	return &recordReader{
		cluster: f.Cluster,
		query:   f.Query,
		split:   split,
		node:    node,
		rowPath: f.RowPath,
	}, nil
}

// QuerySignature implements mapred.QuerySigner: the HailRecordReader is a
// pure function of (block bytes, query, scan path), so the query's
// normalized signature — conjuncts merged and ordered, projection
// preserved — keys the block-level result cache, prefixed with the scan
// path when the legacy row-at-a-time reader is selected. The row and
// batch paths are byte-equivalent today, but that equivalence is an
// invariant maintained by tests (experiments.ExpVector), not by
// construction — keying the knob means cache correctness never rides on
// it. RowPath=false (the default) leaves every signature unchanged.
// This is the unkeyed knob sigflow exists to catch; see
// TestRowPathIsCacheKeyed for the runtime regression.
func (f *InputFormat) QuerySignature() (string, bool) {
	sig := f.Query.Signature()
	if f.RowPath {
		sig = "rowpath|" + sig
	}
	return sig, true
}

// OpenBlock implements mapred.BlockOpener: a reader for one block of the
// split, with the split's replica pinning intact — exactly what Open's
// reader would do when it reaches that block.
func (f *InputFormat) OpenBlock(split mapred.Split, b hdfs.BlockID, node hdfs.NodeID) (mapred.RecordReader, error) {
	sub := split
	sub.Blocks = []hdfs.BlockID{b}
	return f.Open(sub, node)
}
