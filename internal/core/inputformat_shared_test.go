package core

import (
	"sync"
	"testing"

	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// TestSharedInputFormatSplitStats is the regression test for the shared
// split-phase accumulator: one InputFormat served to many concurrent
// Engine.Run calls must report each job's own NameNodeOps, not an
// interleaving of resets and increments from whichever calls overlapped.
// Run under -race this also proves the split phase itself is data-race
// free on a shared instance.
func TestSharedInputFormatSplitStats(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 3000, workload.UserVisitsOptions{})
	q := &query.Query{
		Filter: []query.Predicate{query.Between(workload.UVVisitDate,
			schema.DateVal(schema.MustDate("1999-01-01")),
			schema.DateVal(schema.MustDate("2000-12-31")))},
		Projection: []int{workload.UVSourceIP},
	}
	shared := &InputFormat{Cluster: cluster, Query: q, Splitting: true}
	job := func() *mapred.Job {
		return &mapred.Job{
			Name:  "shared-if",
			File:  "/uv",
			Input: shared,
			Map: func(r mapred.Record, emit mapred.Emit) {
				if !r.Bad {
					emit(r.Row.Line(','), "")
				}
			},
		}
	}
	engine := &mapred.Engine{Cluster: cluster, Parallelism: 2}

	// Solo run: the per-job ground truth (the directory is static, so
	// every run performs the identical lookup sequence).
	ref, err := engine.Run(job())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SplitPhase.NameNodeOps
	if want <= 0 {
		t.Fatalf("reference NameNodeOps = %d, want > 0", want)
	}

	const jobs = 16
	var wg sync.WaitGroup
	got := make([]int, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := engine.Run(job())
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.SplitPhase.NameNodeOps
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("job %d: NameNodeOps = %d, want %d (stats leaked across concurrent jobs)", i, got[i], want)
		}
	}
}
