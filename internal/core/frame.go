package core

import (
	"encoding/binary"
	"fmt"
)

// A HAIL block replica as stored on a datanode is the sorted PAX block
// followed by its index, with a small frame so the record reader can find
// both (the paper's "HAIL Block" with Block Metadata and Index Metadata,
// Figure 1):
//
//	magic   "HLBK"
//	version uint16
//	paxLen  uint32
//	ixLen   uint32 (0 = no index)
//	pax bytes, index bytes
const (
	frameMagic   = "HLBK"
	frameVersion = 1
	frameHeader  = 4 + 2 + 4 + 4
)

// FrameReplica assembles the stored form of one replica. indexData may be
// nil for unsorted replicas.
func FrameReplica(paxData, indexData []byte) []byte {
	out := make([]byte, 0, frameHeader+len(paxData)+len(indexData))
	out = append(out, frameMagic...)
	out = binary.LittleEndian.AppendUint16(out, frameVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(paxData)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(indexData)))
	out = append(out, paxData...)
	out = append(out, indexData...)
	return out
}

// ParseFrame splits a stored replica back into PAX and index bytes.
func ParseFrame(data []byte) (paxData, indexData []byte, err error) {
	if len(data) < frameHeader {
		return nil, nil, fmt.Errorf("hail: replica frame too short (%d bytes)", len(data))
	}
	if string(data[:4]) != frameMagic {
		return nil, nil, fmt.Errorf("hail: bad replica frame magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != frameVersion {
		return nil, nil, fmt.Errorf("hail: unsupported replica frame version %d", v)
	}
	paxLen := int(binary.LittleEndian.Uint32(data[6:]))
	ixLen := int(binary.LittleEndian.Uint32(data[10:]))
	if frameHeader+paxLen+ixLen != len(data) {
		return nil, nil, fmt.Errorf("hail: replica frame length mismatch: header says %d+%d, have %d payload bytes",
			paxLen, ixLen, len(data)-frameHeader)
	}
	paxData = data[frameHeader : frameHeader+paxLen]
	if ixLen > 0 {
		indexData = data[frameHeader+paxLen:]
	}
	return paxData, indexData, nil
}
