// Package core implements HAIL — the Hadoop Aggressive Indexing Library —
// the paper's primary contribution.
//
// Upload side (§3): the HAIL client parses text input into typed rows
// (separating bad records), cuts blocks at record boundaries, converts each
// block to binary PAX and sends it through the HDFS pipeline once. Each
// datanode in the pipeline reassembles the block in memory, sorts it on its
// own attribute, builds a sparse clustered index, recomputes checksums and
// flushes — so with replication three, every block is stored in three sort
// orders with three different clustered indexes, for (almost) free.
//
// Query side (§4): HailInputFormat asks the namenode which replicas carry
// an index matching the job's filter attribute (getHostsWithIndex) and
// either builds one split per block (default) or packs all blocks of a
// locality group into a few splits (HailSplitting, §4.3) to amortize
// Hadoop's per-task scheduling overhead. HailRecordReader performs an
// index scan when a matching clustered index exists — partition range
// lookup in memory, contiguous column-range reads, post-filtering — and
// falls back to a PAX column scan otherwise, applying the selection and
// projection from the job's HailQuery annotation either way.
//
// Execution inside the record reader is vectorized and streaming: the
// candidate row range (whole block, or the index-narrowed slice of it)
// flows through in fixed-size batches. Filter columns are decoded from
// PAX bytes into typed vectors, the conjunction runs as selection-vector
// kernels (query.MatchesBatch), and projection columns are materialized
// late — only for the rows that survived, at row granularity via
// pax.ColumnCursor.NextSelected. Batches reach batch-aware map functions
// (mapred.Job.MapBatch) directly and ordinary map functions through a
// row-compat shim (mapred.Batch.Each), with output, I/O accounting and
// cache keys byte-identical to the legacy row path (InputFormat.RowPath),
// which is kept so the speedup stays measured (experiments.ExpVector).
package core

import (
	"fmt"

	"repro/internal/hdfs"
	"repro/internal/index"
	"repro/internal/pax"
	"repro/internal/schema"
)

// LayoutConfig is the per-dataset configuration Bob writes (§1.1): which
// attribute each replica is clustered and indexed on. It plays the role of
// the configuration file read by the HAIL upload pipeline.
type LayoutConfig struct {
	Schema *schema.Schema
	// SortColumns has one entry per replica: the attribute to cluster and
	// index that replica on, or -1 to store the replica as unsorted PAX
	// (no index). len(SortColumns) is the replication factor.
	SortColumns []int
	// BlockSize is the target input text bytes per block; rows are never
	// split across blocks (§3.1).
	BlockSize int
}

// Validate checks the configuration against its schema.
func (c *LayoutConfig) Validate() error {
	if c.Schema == nil {
		return fmt.Errorf("hail: config has no schema")
	}
	if len(c.SortColumns) == 0 {
		return fmt.Errorf("hail: config needs at least one replica")
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("hail: block size must be positive")
	}
	for i, col := range c.SortColumns {
		if col < -1 || col >= c.Schema.NumFields() {
			return fmt.Errorf("hail: replica %d sort column %d out of range", i, col)
		}
	}
	return nil
}

// Replication returns the replication factor implied by the config.
func (c *LayoutConfig) Replication() int { return len(c.SortColumns) }

// IndexedColumns returns the distinct attributes that get a clustered
// index on some replica.
func (c *LayoutConfig) IndexedColumns() []int {
	seen := make(map[int]bool)
	var out []int
	for _, col := range c.SortColumns {
		if col >= 0 && !seen[col] {
			seen[col] = true
			out = append(out, col)
		}
	}
	return out
}

// UploadSummary reports the real measured sizes of a HAIL upload; the
// experiment harness converts them into simulated upload time.
type UploadSummary struct {
	Blocks     int
	Rows       int64
	BadRecords int64
	TextBytes  int64 // input text size
	PaxBytes   int64 // client-side binary PAX size (what crosses the network)
	// StoredBytes is the total stored across replicas (per-replica sizes
	// differ: indexes and sort order change nothing in data size, but the
	// index is stored with the block).
	StoredBytes int64
	// SortedBytes is the PAX bytes that went through sort+index, summed
	// over replicas (k indexed replicas sort k× the block bytes).
	SortedBytes int64
	IndexBytes  int64 // total index bytes stored
	BlockIDs    []hdfs.BlockID
}

// BuildIndexedReplica converts a marshalled PAX block into the stored
// form of a replica clustered and indexed on col: sort on col, build the
// sparse clustered index, and frame both (§3.2 step 7). Both conversion
// paths share it — the upload pipeline's per-replica transform and the
// adaptive indexer's lazy query-time conversion — so the stored layout
// and the registered ReplicaInfo cannot diverge between them.
func BuildIndexedReplica(paxData []byte, col int) ([]byte, hdfs.ReplicaInfo, error) {
	b, err := pax.Unmarshal(paxData)
	if err != nil {
		return nil, hdfs.ReplicaInfo{}, err
	}
	if _, err := b.SortBy(col); err != nil {
		return nil, hdfs.ReplicaInfo{}, err
	}
	ix, err := index.Build(b, col)
	if err != nil {
		return nil, hdfs.ReplicaInfo{}, err
	}
	sorted, err := b.Marshal()
	if err != nil {
		return nil, hdfs.ReplicaInfo{}, err
	}
	ixData, err := ix.Marshal()
	if err != nil {
		return nil, hdfs.ReplicaInfo{}, err
	}
	framed := FrameReplica(sorted, ixData)
	return framed, hdfs.ReplicaInfo{SortColumn: col, HasIndex: true, IndexSize: len(ixData)}, nil
}

// Client uploads text data to HDFS the HAIL way.
type Client struct {
	Cluster *hdfs.Cluster
	Config  LayoutConfig
	Sep     byte // field separator; 0 defaults to ','
}

// Upload parses, blocks, converts and ships the given lines (§3.1–3.2).
// Bad records go to the block's bad-record section instead of failing the
// upload.
func (cl *Client) Upload(file string, lines []string) (UploadSummary, error) {
	if err := cl.Config.Validate(); err != nil {
		return UploadSummary{}, err
	}
	sep := cl.Sep
	if sep == 0 {
		sep = ','
	}
	parser := &schema.Parser{Schema: cl.Config.Schema, Sep: sep}

	var sum UploadSummary
	block := pax.NewBlock(cl.Config.Schema)
	blockText := 0

	flush := func() error {
		if block.NumRows() == 0 && block.NumBad() == 0 {
			return nil
		}
		if err := cl.uploadBlock(file, block, &sum); err != nil {
			return err
		}
		block = pax.NewBlock(cl.Config.Schema)
		blockText = 0
		return nil
	}

	for _, line := range lines {
		sum.TextBytes += int64(len(line) + 1)
		row, err := parser.ParseLine(line)
		if err != nil {
			block.AppendBad(line)
			sum.BadRecords++
		} else {
			if err := block.AppendRow(row); err != nil {
				return sum, err
			}
			sum.Rows++
		}
		blockText += len(line) + 1
		if blockText >= cl.Config.BlockSize {
			if err := flush(); err != nil {
				return sum, err
			}
		}
	}
	if err := flush(); err != nil {
		return sum, err
	}
	return sum, nil
}

// uploadBlock serializes one PAX block and writes it through the pipeline
// with the per-replica sort+index transform.
func (cl *Client) uploadBlock(file string, block *pax.Block, sum *UploadSummary) error {
	paxData, err := block.Marshal()
	if err != nil {
		return err
	}
	cfg := cl.Config
	transform := func(pos int, node hdfs.NodeID, data []byte) ([]byte, hdfs.ReplicaInfo, error) {
		// Each datanode reassembles the PAX block in memory (§3.2 step 6)
		// — `data` here is exactly the reassembled packet payload — then
		// sorts on its own attribute and builds its clustered index.
		col := cfg.SortColumns[pos]
		if col < 0 {
			// Unsorted PAX replica: validate and store as received.
			if _, err := pax.Unmarshal(data); err != nil {
				return nil, hdfs.ReplicaInfo{}, err
			}
			framed := FrameReplica(data, nil)
			return framed, hdfs.ReplicaInfo{SortColumn: -1}, nil
		}
		return BuildIndexedReplica(data, col)
	}

	id, stats, err := cl.Cluster.WriteBlock(file, paxData, cfg.Replication(), transform)
	if err != nil {
		return err
	}
	sum.Blocks++
	sum.PaxBytes += int64(len(paxData))
	sum.BlockIDs = append(sum.BlockIDs, id)
	for pos, sz := range stats.ReplicaSizes {
		sum.StoredBytes += int64(sz)
		if cfg.SortColumns[pos] >= 0 {
			sum.SortedBytes += int64(len(paxData))
			info, ok := cl.Cluster.NameNode().ReplicaInfo(id, stats.PipelineNodes[pos])
			if ok {
				sum.IndexBytes += int64(info.IndexSize)
			}
		}
	}
	return nil
}
