package core

import (
	"testing"

	"repro/internal/hdfs"
	"repro/internal/pax"
	"repro/internal/workload"
)

func TestRecoverFileRestoresIndexes(t *testing.T) {
	cluster, client, sum, _ := uvFixture(t, 4000, workload.UserVisitsOptions{})
	cfg := client.Config
	bq := workload.BobQueries()[0] // filter on visitDate

	// Baseline: all blocks index-scan.
	before := runHailQuery(t, cluster, "/uv", bq.Query, false)
	wantResults := outputMultiset(before)
	if st := before.TotalStats(); st.FullScans != 0 {
		t.Fatalf("baseline has %d full scans", st.FullScans)
	}

	// Kill a node holding visitDate-indexed replicas: some blocks lose
	// their matching index.
	victim := cluster.NameNode().GetHostsWithIndex(sum.BlockIDs[0], workload.UVVisitDate)[0]
	if err := cluster.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	degraded := runHailQuery(t, cluster, "/uv", bq.Query, false)
	if st := degraded.TotalStats(); st.FullScans == 0 {
		t.Fatal("kill did not degrade any block to a full scan; test premise broken")
	}

	// Recover: lost replicas are rebuilt with their sort order and index.
	rep, err := RecoverFile(cluster, "/uv", cfg)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if rep.ReplicasRecovered == 0 || rep.IndexesRebuilt == 0 {
		t.Fatalf("nothing recovered: %+v", rep)
	}
	if rep.BlocksScanned != sum.Blocks {
		t.Errorf("scanned %d blocks, want %d", rep.BlocksScanned, sum.Blocks)
	}

	// All blocks index-scan again, and results are unchanged.
	after := runHailQuery(t, cluster, "/uv", bq.Query, false)
	if st := after.TotalStats(); st.FullScans != 0 {
		t.Errorf("still %d full scans after recovery", st.FullScans)
	}
	got := outputMultiset(after)
	if len(got) != len(wantResults) {
		t.Fatalf("results changed after recovery: %d vs %d distinct", len(got), len(wantResults))
	}
	for k, v := range wantResults {
		if got[k] != v {
			t.Fatalf("result %q changed after recovery", k)
		}
	}

	// The recovered replicas really are clustered and indexed correctly.
	for _, b := range sum.BlockIDs {
		for _, col := range cfg.SortColumns {
			hosts := cluster.NameNode().GetHostsWithIndex(b, col)
			aliveWithIndex := 0
			for _, h := range hosts {
				dn, err := cluster.DataNode(h)
				if err != nil || !dn.Alive() {
					continue
				}
				aliveWithIndex++
				data, err := cluster.ReadBlockFrom(h, b)
				if err != nil {
					t.Fatal(err)
				}
				paxData, ixData, err := ParseFrame(data)
				if err != nil {
					t.Fatal(err)
				}
				r, err := pax.NewReader(paxData)
				if err != nil {
					t.Fatal(err)
				}
				if r.SortColumn() != col || ixData == nil {
					t.Fatalf("block %d on node %d: sortCol=%d ix=%v, want col %d with index",
						b, h, r.SortColumn(), ixData != nil, col)
				}
			}
			if aliveWithIndex == 0 {
				t.Errorf("block %d: no alive replica indexed on %d after recovery", b, col)
			}
		}
	}
}

func TestRecoverFileNoopWhenHealthy(t *testing.T) {
	cluster, client, sum, _ := uvFixture(t, 1500, workload.UserVisitsOptions{})
	rep, err := RecoverFile(cluster, "/uv", client.Config)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasRecovered != 0 || rep.IndexesRebuilt != 0 {
		t.Errorf("healthy file triggered recovery: %+v", rep)
	}
	if rep.BlocksScanned != sum.Blocks {
		t.Errorf("scanned %d, want %d", rep.BlocksScanned, sum.Blocks)
	}
}

func TestRecoverFileAllReplicasLost(t *testing.T) {
	// 3 of 3 nodes dead for some block's replicas: recovery must fail
	// loudly rather than silently dropping data.
	cluster, err := hdfs.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue},
			BlockSize:   32 << 10,
		},
	}
	if _, err := client.Upload("/uv", workload.GenerateUserVisits(500, 3, workload.UserVisitsOptions{})); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		cluster.KillNode(hdfs.NodeID(n))
	}
	if _, err := RecoverFile(cluster, "/uv", client.Config); err == nil {
		t.Error("recovery with zero alive replicas succeeded")
	}
}

func TestRecoverFileValidatesConfig(t *testing.T) {
	cluster, _ := hdfs.NewCluster(3)
	if _, err := RecoverFile(cluster, "/x", LayoutConfig{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStoreRecoveredReplicaRejectsDuplicates(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 500, workload.UserVisitsOptions{})
	b := sum.BlockIDs[0]
	holder := cluster.NameNode().GetHosts(b)[0]
	data, err := cluster.ReadBlockFrom(holder, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.StoreRecoveredReplica(b, holder, data, hdfs.ReplicaInfo{}); err == nil {
		t.Error("duplicate replica accepted on the same node")
	}
}
