package core

import (
	"reflect"
	"testing"

	"repro/internal/hdfs"
)

// skewedFixture registers nBlocks blocks whose replica lists all lead
// with node 0 — the placement skew packScanSplits must balance away —
// with two backup replicas spread over nodes 1..nodes-1.
func skewedFixture(t *testing.T, nodes, nBlocks int) (*hdfs.Cluster, []hdfs.BlockID) {
	t.Helper()
	cluster, err := hdfs.NewCluster(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nn := cluster.NameNode()
	blocks := make([]hdfs.BlockID, 0, nBlocks)
	for b := 0; b < nBlocks; b++ {
		id := hdfs.BlockID(b)
		nn.RegisterReplica(id, 0, hdfs.ReplicaInfo{})
		nn.RegisterReplica(id, hdfs.NodeID(1+b%(nodes-1)), hdfs.ReplicaInfo{})
		nn.RegisterReplica(id, hdfs.NodeID(1+(b+3)%(nodes-1)), hdfs.ReplicaInfo{})
		blocks = append(blocks, id)
	}
	return cluster, blocks
}

// TestPackScanSplitsBalanceSkewedPlacement: with every replica list headed
// by node 0, the unbalanced policy would pack all blocks onto node 0.
// Balanced packing caps each node at its fair share and spills the
// overflow to next-preferred alive replicas, preserving exactly-once
// coverage and valid pins.
func TestPackScanSplitsBalanceSkewedPlacement(t *testing.T) {
	const nodes, nBlocks = 8, 32
	cluster, blocks := skewedFixture(t, nodes, nBlocks)
	f := &InputFormat{Cluster: cluster, PackScans: true, SplitsPerNode: 2}
	splits := (&splitPlanner{InputFormat: f}).packScanSplits(blocks)
	assertCoverage(t, splits, blocks)
	assertAliveLocations(t, cluster, splits)

	nn := cluster.NameNode()
	perNode := map[hdfs.NodeID]int{}
	for _, s := range splits {
		for _, b := range s.Blocks {
			pin := s.Replica[b]
			perNode[pin]++
			holder := false
			for _, h := range nn.GetHosts(b) {
				if h == pin {
					holder = true
					break
				}
			}
			if !holder {
				t.Errorf("block %d pinned to node %d, which holds no replica", b, pin)
			}
		}
	}
	share := (nBlocks + nodes - 1) / nodes // 4
	busiest, busiestNode := 0, hdfs.NodeID(-1)
	for n, c := range perNode {
		if c > busiest {
			busiest, busiestNode = c, n
		}
	}
	if busiest > share {
		t.Fatalf("busiest node %d packs %d of %d blocks, want ≤ fair share %d (per-node: %v)",
			busiestNode, busiest, nBlocks, share, perNode)
	}
	// The preferred head keeps its full fair share — balancing spills
	// overflow, it does not shun the hot node.
	if perNode[0] != share {
		t.Errorf("node 0 packs %d blocks, want its full fair share %d", perNode[0], share)
	}

	// Deterministic: identical cluster state must yield identical splits.
	again := (&splitPlanner{InputFormat: f}).packScanSplits(blocks)
	if !reflect.DeepEqual(splits, again) {
		t.Error("packScanSplits is not deterministic across calls")
	}
}

// TestPackScanSplitsSingleHolderExceedsCap: blocks whose only alive
// replica sits on one node cannot spill — they stay on that node even
// past the fair share, and packing still covers them.
func TestPackScanSplitsSingleHolderExceedsCap(t *testing.T) {
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	nn := cluster.NameNode()
	var blocks []hdfs.BlockID
	for b := 0; b < 6; b++ {
		id := hdfs.BlockID(b)
		nn.RegisterReplica(id, 2, hdfs.ReplicaInfo{})
		blocks = append(blocks, id)
	}
	f := &InputFormat{Cluster: cluster, PackScans: true, SplitsPerNode: 2}
	splits := (&splitPlanner{InputFormat: f}).packScanSplits(blocks)
	assertCoverage(t, splits, blocks)
	for _, s := range splits {
		if s.Locations[0] != 2 {
			t.Errorf("split located at %v, want node 2 (only holder)", s.Locations)
		}
	}
}

// TestPackScanSplitsEvenPlacementUnchanged: under even pipeline placement
// every head stays below the fair-share cap, so balanced packing must
// produce exactly the head-of-list grouping the unbalanced policy did —
// the guarantee that keeps benchmark outputs byte-identical on the
// standard fixtures.
func TestPackScanSplitsEvenPlacementUnchanged(t *testing.T) {
	const nodes, nBlocks = 4, 12
	cluster, err := hdfs.NewCluster(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nn := cluster.NameNode()
	var blocks []hdfs.BlockID
	for b := 0; b < nBlocks; b++ {
		id := hdfs.BlockID(b)
		for r := 0; r < 3; r++ {
			nn.RegisterReplica(id, hdfs.NodeID((b+r)%nodes), hdfs.ReplicaInfo{})
		}
		blocks = append(blocks, id)
	}
	f := &InputFormat{Cluster: cluster, PackScans: true, SplitsPerNode: 2}
	splits := (&splitPlanner{InputFormat: f}).packScanSplits(blocks)
	assertCoverage(t, splits, blocks)
	for _, s := range splits {
		for _, b := range s.Blocks {
			if want := hdfs.NodeID(int(b) % nodes); s.Replica[b] != want {
				t.Errorf("block %d pinned to %d, want head-of-list %d", b, s.Replica[b], want)
			}
		}
	}
}
