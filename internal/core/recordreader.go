package core

import (
	"fmt"
	"sort"

	"repro/internal/hdfs"
	"repro/internal/index"
	"repro/internal/mapred"
	"repro/internal/pax"
	"repro/internal/query"
	"repro/internal/schema"
)

// recordReader is the HailRecordReader (§4.3): per block it performs an
// index scan when the block's replica carries a clustered index matching a
// filter predicate, and a PAX column scan otherwise. Either way it applies
// the full conjunction, reconstructs the projected attributes of
// qualifying tuples from PAX to row layout, and passes bad records through
// flagged.
type recordReader struct {
	cluster *hdfs.Cluster
	query   *query.Query
	split   mapred.Split
	node    hdfs.NodeID
}

func (r *recordReader) Read(fn func(mapred.Record)) (mapred.TaskStats, error) {
	var stats mapred.TaskStats
	for _, b := range r.split.Blocks {
		if err := r.readBlock(b, fn, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// openReplica fetches the preferred replica's bytes: the one with the
// matching index if the split recorded one (via getHostsWithIndex),
// otherwise the closest available replica.
func (r *recordReader) openReplica(b hdfs.BlockID) ([]byte, hdfs.NodeID, error) {
	if preferred, ok := r.split.Replica[b]; ok {
		data, err := r.cluster.ReadBlockFrom(preferred, b)
		if err == nil {
			return data, preferred, nil
		}
		// Preferred replica unreachable (e.g. node died): fall back to
		// any replica; the access path degrades to a scan if that
		// replica's index does not match (§6.4.3, HAIL vs HAIL-1Idx).
	}
	data, servedBy, err := r.cluster.ReadBlockAny(b, r.node)
	return data, servedBy, err
}

func (r *recordReader) readBlock(b hdfs.BlockID, fn func(mapred.Record), stats *mapred.TaskStats) error {
	data, servedBy, err := r.openReplica(b)
	if err != nil {
		return err
	}
	if servedBy != r.node {
		stats.RemoteReads++
	}
	stats.Blocks++

	paxData, ixData, err := ParseFrame(data)
	if err != nil {
		return err
	}
	reader, err := pax.NewReader(paxData)
	if err != nil {
		return err
	}
	sch := reader.Schema()
	q := r.query
	if q == nil {
		q = &query.Query{}
	}
	proj := q.ProjectionOrAll(sch)

	// Choose the access path: an index scan needs a predicate on the
	// replica's clustering attribute and the index bytes beside the block.
	fromRow, toRow := 0, reader.NumRows()
	indexed := false
	if ixData != nil {
		for _, p := range q.Filter {
			if p.Column != reader.SortColumn() {
				continue
			}
			ix, err := index.Unmarshal(ixData)
			if err != nil {
				return fmt.Errorf("hail: block %d index: %v", b, err)
			}
			// Reading the index costs its bytes plus one seek (§4.3:
			// "we read the index entirely into main memory").
			stats.IndexBytesRead += int64(len(ixData))
			stats.Seeks++
			f, t, ok := ix.PartitionRange(p.Lo, p.Hi)
			indexed = true
			if !ok {
				fromRow, toRow = 0, 0
			} else {
				fromRow, toRow = f, t
			}
			break
		}
	}
	if indexed {
		stats.IndexScans++
	} else {
		stats.FullScans++
	}

	if toRow > fromRow {
		stats.PartitionsScanned += int64((toRow - fromRow + pax.PartitionSize - 1) / pax.PartitionSize)
		if err := r.emitRange(reader, q, proj, fromRow, toRow, fn, stats); err != nil {
			return err
		}
	}

	// Bad records are handed to the map function flagged, whatever the
	// access path (§4.3).
	if reader.NumBad() > 0 {
		bad, err := reader.ReadAllBad()
		if err != nil {
			return err
		}
		for _, line := range bad {
			stats.RecordsDelivered++
			fn(mapred.Record{Raw: line, Bad: true})
		}
	}
	stats.AddIO(reader.Stats())
	return nil
}

// emitRange reads the filter and projection columns over the candidate row
// range, post-filters, and emits projected rows. Only the needed columns
// are touched — the PAX advantage — and each is read as one contiguous
// range.
func (r *recordReader) emitRange(reader *pax.Reader, q *query.Query, proj []int,
	fromRow, toRow int, fn func(mapred.Record), stats *mapred.TaskStats) error {

	// Collect the distinct columns we must materialize and read them in
	// ascending column order: the reader counts a seek whenever a read is
	// not adjacent to the previous one, so iterating the map directly
	// would make the job's seek count depend on Go's map iteration order.
	needed := make(map[int][]schema.Value)
	for _, p := range q.Filter {
		needed[p.Column] = nil
	}
	for _, c := range proj {
		needed[c] = nil
	}
	cols := make([]int, 0, len(needed))
	for col := range needed {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	for _, col := range cols {
		vals, err := reader.ReadColumnRange(col, fromRow, toRow)
		if err != nil {
			return err
		}
		needed[col] = vals
	}

	n := toRow - fromRow
	stats.RecordsScanned += int64(n)
rows:
	for i := 0; i < n; i++ {
		for _, p := range q.Filter {
			if !p.Matches(needed[p.Column][i]) {
				continue rows
			}
		}
		row := make(schema.Row, len(proj))
		for j, c := range proj {
			row[j] = needed[c][i]
		}
		stats.RecordsDelivered++
		stats.AttrsDelivered += int64(len(proj))
		fn(mapred.Record{Row: row})
	}
	return nil
}
