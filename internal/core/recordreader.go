package core

import (
	"fmt"
	"sort"

	"repro/internal/hdfs"
	"repro/internal/index"
	"repro/internal/mapred"
	"repro/internal/pax"
	"repro/internal/query"
	"repro/internal/schema"
)

// batchRows is the vectorized pipeline's batch size. It matches the PAX
// partition granularity, so one batch never straddles more variable-size
// partitions than the rows it carries.
const batchRows = pax.PartitionSize

// recordReader is the HailRecordReader (§4.3): per block it performs an
// index scan when the block's replica carries a clustered index matching a
// filter predicate, and a PAX column scan otherwise. Either way it applies
// the full conjunction, reconstructs the projected attributes of
// qualifying tuples, and passes bad records through flagged.
//
// The default execution is vectorized and streaming: the candidate row
// range flows through the reader in fixed-size batches (batchRows rows).
// Per batch, the filter columns are decoded from PAX bytes into typed
// vectors, the conjunction runs as selection-vector kernels
// (query.MatchesBatch), and the remaining projection columns are decoded
// only when the batch has surviving rows — late materialization. Column
// bytes are read (and I/O-accounted) once per block at cursor creation,
// in ascending column order, so the batch pipeline's BytesRead/Seeks/
// PartitionsScanned are byte-identical to the legacy row path's; only
// decoding and filtering are restructured. rowPath selects the legacy
// row-at-a-time path, kept for A/B measurement (experiments.ExpVector).
type recordReader struct {
	cluster *hdfs.Cluster
	query   *query.Query
	split   mapred.Split
	node    hdfs.NodeID
	rowPath bool

	batch mapred.Batch    // reused across blocks; fn must not retain it
	sel   query.Selection // reused selection vector
	ident query.Selection // reused identity selection for compacted batches
}

// Read implements mapred.RecordReader. The default path streams batches
// and materializes records through Batch.Each's scratch row, so ordinary
// map functions get the kernel speedup without change; rowPath runs the
// legacy scalar scan.
func (r *recordReader) Read(fn func(mapred.Record)) (mapred.TaskStats, error) {
	if r.rowPath {
		var stats mapred.TaskStats
		for _, b := range r.split.Blocks {
			if err := r.readBlockRows(b, fn, &stats); err != nil {
				return stats, err
			}
		}
		return stats, nil
	}
	return r.ReadBatches(func(b *mapred.Batch) { b.Each(fn) })
}

// ReadBatches implements mapred.BatchReader: the split's blocks as a lazy
// batch stream. The batch passed to fn is reused; it is valid only for
// the duration of the call.
func (r *recordReader) ReadBatches(fn func(*mapred.Batch)) (mapred.TaskStats, error) {
	var stats mapred.TaskStats
	for _, b := range r.split.Blocks {
		if err := r.readBlockBatches(b, fn, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// openReplica fetches the preferred replica's bytes: the one with the
// matching index if the split recorded one (via getHostsWithIndex),
// otherwise the closest available replica.
func (r *recordReader) openReplica(b hdfs.BlockID) ([]byte, hdfs.NodeID, error) {
	if preferred, ok := r.split.Replica[b]; ok {
		data, err := r.cluster.ReadBlockFrom(preferred, b)
		if err == nil {
			return data, preferred, nil
		}
		// Preferred replica unreachable (e.g. node died): fall back to
		// any replica; the access path degrades to a scan if that
		// replica's index does not match (§6.4.3, HAIL vs HAIL-1Idx).
	}
	data, servedBy, err := r.cluster.ReadBlockAny(b, r.node)
	return data, servedBy, err
}

// blockScan is the per-block prologue shared by both execution paths: the
// parsed PAX reader and the index-resolved candidate row range.
type blockScan struct {
	reader         *pax.Reader
	q              *query.Query
	proj           []int
	fromRow, toRow int
}

// openBlockScan opens block b's preferred replica, parses it, and picks
// the access path: an index scan narrows the candidate range via the
// replica's clustered index when one matches a filter predicate; a full
// scan keeps the whole block. All access-path stats (Blocks, RemoteReads,
// IndexScans/FullScans, IndexBytesRead, PartitionsScanned) are accounted
// here, identically for the row and batch pipelines.
func (r *recordReader) openBlockScan(b hdfs.BlockID, stats *mapred.TaskStats) (*blockScan, error) {
	data, servedBy, err := r.openReplica(b)
	if err != nil {
		return nil, err
	}
	if servedBy != r.node {
		stats.RemoteReads++
	}
	stats.Blocks++

	paxData, ixData, err := ParseFrame(data)
	if err != nil {
		return nil, err
	}
	reader, err := pax.NewReader(paxData)
	if err != nil {
		return nil, err
	}
	q := r.query
	if q == nil {
		q = &query.Query{}
	}
	bs := &blockScan{
		reader: reader,
		q:      q,
		proj:   q.ProjectionOrAll(reader.Schema()),
		toRow:  reader.NumRows(),
	}

	indexed := false
	if ixData != nil {
		for _, p := range q.Filter {
			if p.Column != reader.SortColumn() {
				continue
			}
			ix, err := index.Unmarshal(ixData)
			if err != nil {
				return nil, fmt.Errorf("hail: block %d index: %v", b, err)
			}
			// Reading the index costs its bytes plus one seek (§4.3:
			// "we read the index entirely into main memory").
			stats.IndexBytesRead += int64(len(ixData))
			stats.Seeks++
			f, t, ok := ix.PartitionRange(p.Lo, p.Hi)
			indexed = true
			if !ok {
				bs.fromRow, bs.toRow = 0, 0
			} else {
				bs.fromRow, bs.toRow = f, t
			}
			break
		}
	}
	if indexed {
		stats.IndexScans++
	} else {
		stats.FullScans++
	}
	if bs.toRow > bs.fromRow {
		stats.PartitionsScanned += int64((bs.toRow - bs.fromRow + pax.PartitionSize - 1) / pax.PartitionSize)
	}
	return bs, nil
}

// neededColumns returns the distinct columns the scan must touch
// (filter ∪ projection) in ascending order — the read order both paths
// use so the seek count never depends on map iteration order — plus the
// distinct filter columns, also ascending.
func neededColumns(q *query.Query, proj []int) (cols, filterCols []int) {
	need := make(map[int]bool)
	for _, p := range q.Filter {
		if !need[p.Column] {
			need[p.Column] = true
			filterCols = append(filterCols, p.Column)
		}
	}
	sort.Ints(filterCols)
	for _, c := range proj {
		need[c] = true
	}
	cols = make([]int, 0, len(need))
	for c := range need {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols, filterCols
}

// readBlockBatches is the vectorized per-block execution: stream the
// candidate range as batches, then the bad records as one final batch.
func (r *recordReader) readBlockBatches(b hdfs.BlockID, fn func(*mapred.Batch), stats *mapred.TaskStats) error {
	bs, err := r.openBlockScan(b, stats)
	if err != nil {
		return err
	}
	if bs.toRow > bs.fromRow {
		if err := r.streamRange(bs, fn, stats); err != nil {
			return err
		}
	}
	// Bad records are handed to the map function flagged, whatever the
	// access path (§4.3).
	if bs.reader.NumBad() > 0 {
		bad, err := bs.reader.ReadAllBad()
		if err != nil {
			return err
		}
		stats.RecordsDelivered += int64(len(bad))
		stats.BatchesEmitted++
		r.batch.Cols, r.batch.Sel, r.batch.Bad = nil, nil, bad
		fn(&r.batch)
	}
	stats.AddIO(bs.reader.Stats())
	return nil
}

// streamRange drives the candidate row range through the batch pipeline.
// Cursors for every needed column are opened up front in ascending column
// order — that is where all raw reads happen, reproducing the row path's
// I/O accounting exactly — then each batch decodes the filter columns and
// runs the selection-vector kernels. Projection columns are materialized
// at row granularity: when the filters discard part of a batch, the
// projection-only cursors decode (and, for strings, allocate) values for
// the surviving rows alone, and the already-decoded filter columns are
// compacted in place, so every emitted batch is dense. A selective scan
// therefore pays projection decoding proportional to its selectivity,
// not its scan range — the late-materialization payoff ExpVector
// measures.
func (r *recordReader) streamRange(bs *blockScan, fn func(*mapred.Batch), stats *mapred.TaskStats) error {
	cols, filterCols := neededColumns(bs.q, bs.proj)
	sch := bs.reader.Schema()
	cursors := make(map[int]*pax.ColumnCursor, len(cols))
	vecs := make(map[int]*schema.Vector, len(cols))
	for _, col := range cols {
		cur, err := bs.reader.NewColumnCursor(col, bs.fromRow, bs.toRow)
		if err != nil {
			return err
		}
		cursors[col] = cur
		vecs[col] = schema.NewVector(sch.Field(col).Type)
	}
	isFilter := make(map[int]bool, len(filterCols))
	for _, c := range filterCols {
		isFilter[c] = true
	}
	projVecs := make([]*schema.Vector, len(bs.proj))
	for j, c := range bs.proj {
		projVecs[j] = vecs[c]
	}

	for remaining := bs.toRow - bs.fromRow; remaining > 0; {
		n := batchRows
		if n > remaining {
			n = remaining
		}
		remaining -= n
		for _, col := range filterCols {
			if _, err := cursors[col].Next(n, vecs[col]); err != nil {
				return err
			}
		}
		r.sel = bs.q.MatchesBatch(func(c int) *schema.Vector { return vecs[c] }, query.MakeSelection(r.sel, n))
		stats.RecordsScanned += int64(n)
		stats.RowsScanned += int64(n)
		stats.RowsSelected += int64(len(r.sel))
		partial := len(r.sel) > 0 && len(r.sel) < n
		for _, col := range cols {
			if isFilter[col] {
				continue
			}
			var err error
			switch {
			case len(r.sel) == 0:
				_, err = cursors[col].Next(n, nil) // skip the bytes, decode nothing
			case partial:
				_, err = cursors[col].NextSelected(n, r.sel, vecs[col])
			default:
				_, err = cursors[col].Next(n, vecs[col])
			}
			if err != nil {
				return err
			}
		}
		if len(r.sel) == 0 {
			continue
		}
		sel := r.sel
		if partial {
			for _, col := range filterCols {
				if isProjected(bs.proj, col) {
					vecs[col].Gather(r.sel)
				}
			}
			r.ident = query.MakeSelection(r.ident, len(r.sel))
			sel = r.ident
		}
		stats.RecordsDelivered += int64(len(sel))
		stats.AttrsDelivered += int64(len(sel) * len(bs.proj))
		stats.BatchesEmitted++
		r.batch.Cols, r.batch.Sel, r.batch.Bad = projVecs, sel, nil
		fn(&r.batch)
	}
	return nil
}

// isProjected reports whether col appears in the (short, ascending)
// projection list.
func isProjected(proj []int, col int) bool {
	for _, c := range proj {
		if c == col {
			return true
		}
	}
	return false
}

// readBlockRows is the legacy row-at-a-time per-block execution, kept
// behind InputFormat.RowPath so the vectorized pipeline's speedup is
// measured against it rather than asserted.
func (r *recordReader) readBlockRows(b hdfs.BlockID, fn func(mapred.Record), stats *mapred.TaskStats) error {
	bs, err := r.openBlockScan(b, stats)
	if err != nil {
		return err
	}
	if bs.toRow > bs.fromRow {
		if err := r.emitRange(bs, fn, stats); err != nil {
			return err
		}
	}
	if bs.reader.NumBad() > 0 {
		bad, err := bs.reader.ReadAllBad()
		if err != nil {
			return err
		}
		for _, line := range bad {
			stats.RecordsDelivered++
			fn(mapred.Record{Raw: line, Bad: true})
		}
	}
	stats.AddIO(bs.reader.Stats())
	return nil
}

// emitRange reads the filter and projection columns over the candidate row
// range, post-filters row by row, and emits projected rows. Only the
// needed columns are touched — the PAX advantage — and each is read as one
// contiguous range. The projected row handed to fn is a scratch buffer
// reused across records (the same object-reuse contract as Batch.Each).
func (r *recordReader) emitRange(bs *blockScan, fn func(mapred.Record), stats *mapred.TaskStats) error {
	q, proj := bs.q, bs.proj
	cols, _ := neededColumns(q, proj)
	needed := make(map[int][]schema.Value, len(cols))
	for _, col := range cols {
		vals, err := bs.reader.ReadColumnRange(col, bs.fromRow, bs.toRow)
		if err != nil {
			return err
		}
		needed[col] = vals
	}

	n := bs.toRow - bs.fromRow
	stats.RecordsScanned += int64(n)
	row := make(schema.Row, len(proj))
rows:
	for i := 0; i < n; i++ {
		for _, p := range q.Filter {
			if !p.Matches(needed[p.Column][i]) {
				continue rows
			}
		}
		for j, c := range proj {
			row[j] = needed[c][i]
		}
		stats.RecordsDelivered++
		stats.AttrsDelivered += int64(len(proj))
		fn(mapred.Record{Row: row})
	}
	return nil
}
