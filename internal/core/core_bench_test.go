package core

import (
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/workload"
)

func mustParse(ann string) (*query.Query, error) {
	return query.ParseAnnotation(workload.UserVisitsSchema(), ann)
}

// benchFixture uploads once and is shared by the read benchmarks.
type benchFixtureT struct {
	cluster *hdfs.Cluster
	sum     UploadSummary
}

var benchFix *benchFixtureT

func getBenchFixture(b *testing.B) *benchFixtureT {
	b.Helper()
	if benchFix != nil {
		return benchFix
	}
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		b.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue},
			BlockSize:   1 << 21,
		},
	}
	lines := workload.GenerateUserVisits(100_000, 7, workload.UserVisitsOptions{})
	sum, err := client.Upload("/uv", lines)
	if err != nil {
		b.Fatal(err)
	}
	benchFix = &benchFixtureT{cluster: cluster, sum: sum}
	return benchFix
}

func BenchmarkHailUpload(b *testing.B) {
	lines := workload.GenerateUserVisits(20_000, 9, workload.UserVisitsOptions{})
	var textBytes int64
	for _, l := range lines {
		textBytes += int64(len(l) + 1)
	}
	b.SetBytes(textBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster, err := hdfs.NewCluster(4)
		if err != nil {
			b.Fatal(err)
		}
		client := &Client{
			Cluster: cluster,
			Config: LayoutConfig{
				Schema:      workload.UserVisitsSchema(),
				SortColumns: []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue},
				BlockSize:   1 << 20,
			},
		}
		if _, err := client.Upload("/uv", lines); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuery(b *testing.B, annotation string, splitting bool) {
	f := getBenchFixture(b)
	q, err := mustParse(annotation)
	if err != nil {
		b.Fatal(err)
	}
	e := &mapred.Engine{Cluster: f.cluster}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(&mapred.Job{
			Name: "bench", File: "/uv",
			Input: &InputFormat{Cluster: f.cluster, Query: q, Splitting: splitting},
			Map:   func(r mapred.Record, emit mapred.Emit) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkIndexScanQuery(b *testing.B) {
	benchQuery(b, `@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`, false)
}

func BenchmarkIndexScanQueryWithSplitting(b *testing.B) {
	benchQuery(b, `@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`, true)
}

func BenchmarkFullScanQuery(b *testing.B) {
	// Filter on duration — never indexed — forces the PAX column scan.
	benchQuery(b, `@HailQuery(filter="@9 between(1,100)", projection={@1})`, false)
}
