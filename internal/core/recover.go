package core

import (
	"fmt"

	"repro/internal/hdfs"
	"repro/internal/index"
	"repro/internal/pax"
)

// Replica recovery. When a datanode dies, HDFS re-replicates its blocks
// from surviving replicas. For HAIL the interesting part is *what* to
// recreate: every surviving replica holds the same logical rows (§2.3),
// so the recovered replica can be re-sorted and re-indexed into exactly
// the sort order that was lost — restoring the pre-failure index coverage
// instead of just the byte count. This implements the paper's remark that
// from each replica the logical block can be recovered, extended to
// recovering the *physical design*.

// RecoveryReport summarizes one recovery pass.
type RecoveryReport struct {
	BlocksScanned     int
	ReplicasRecovered int
	IndexesRebuilt    int
}

// RecoverFile restores the replication factor of every block of the file
// whose replica set lost nodes. For each under-replicated block it reads a
// surviving replica, determines which sort orders are missing relative to
// the config, and writes a fresh replica — re-sorted and re-indexed — to
// an alive node that does not yet hold one.
func RecoverFile(cluster *hdfs.Cluster, file string, cfg LayoutConfig) (RecoveryReport, error) {
	var rep RecoveryReport
	if err := cfg.Validate(); err != nil {
		return rep, err
	}
	nn := cluster.NameNode()
	blocks, err := nn.FileBlocks(file)
	if err != nil {
		return rep, err
	}
	aliveSet := make(map[hdfs.NodeID]bool)
	for _, n := range cluster.AliveNodes() {
		aliveSet[n] = true
	}

	for _, b := range blocks {
		rep.BlocksScanned++
		// Which configured sort orders are still served by alive nodes?
		// cfg.SortColumns is a multiset: count each clustering attribute.
		missing := make(map[int]int)
		for _, col := range cfg.SortColumns {
			missing[col]++
		}
		var holders []hdfs.NodeID
		for _, node := range nn.GetHosts(b) {
			if !aliveSet[node] {
				continue
			}
			holders = append(holders, node)
			info, ok := nn.ReplicaInfo(b, node)
			if !ok {
				continue
			}
			if missing[info.SortColumn] > 0 {
				missing[info.SortColumn]--
			}
		}
		if len(holders) == 0 {
			return rep, fmt.Errorf("hail: block %d has no alive replicas, cannot recover", b)
		}

		for col, count := range missing {
			for i := 0; i < count; i++ {
				target, ok := pickTarget(cluster, b, aliveSet)
				if !ok {
					// Not enough distinct alive nodes to restore full
					// replication; recover what is possible.
					continue
				}
				if err := recoverReplica(cluster, b, holders[0], target, col); err != nil {
					return rep, err
				}
				rep.ReplicasRecovered++
				if col >= 0 {
					rep.IndexesRebuilt++
				}
			}
		}
	}
	return rep, nil
}

// pickTarget finds an alive node that does not yet hold a replica of b.
func pickTarget(cluster *hdfs.Cluster, b hdfs.BlockID, alive map[hdfs.NodeID]bool) (hdfs.NodeID, bool) {
	has := make(map[hdfs.NodeID]bool)
	for _, n := range cluster.NameNode().GetHosts(b) {
		if alive[n] {
			// Only alive holders block a target; a dead node's stale
			// replica entry must not prevent re-replication.
			has[n] = true
		}
	}
	for n := range alive {
		if !has[n] {
			return n, true
		}
	}
	return 0, false
}

// recoverReplica reads the block from a surviving holder, re-sorts it on
// the lost replica's attribute, rebuilds the index and stores the result
// on the target node.
func recoverReplica(cluster *hdfs.Cluster, b hdfs.BlockID, from, to hdfs.NodeID, col int) error {
	data, err := cluster.ReadBlockFrom(from, b)
	if err != nil {
		return err
	}
	paxData, _, err := ParseFrame(data)
	if err != nil {
		return err
	}
	blk, err := pax.Unmarshal(paxData)
	if err != nil {
		return err
	}
	info := hdfs.ReplicaInfo{SortColumn: -1}
	var ixData []byte
	if col >= 0 {
		if _, err := blk.SortBy(col); err != nil {
			return err
		}
		ix, err := index.Build(blk, col)
		if err != nil {
			return err
		}
		ixData, err = ix.Marshal()
		if err != nil {
			return err
		}
		info = hdfs.ReplicaInfo{SortColumn: col, HasIndex: true, IndexSize: len(ixData)}
	}
	sorted, err := blk.Marshal()
	if err != nil {
		return err
	}
	framed := FrameReplica(sorted, ixData)
	info.Size = len(framed)
	if err := cluster.StoreRecoveredReplica(b, to, framed, info); err != nil {
		return err
	}
	return nil
}
