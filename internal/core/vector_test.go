package core

import (
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// runPath runs one query over the file with the given execution path,
// single-threaded so the output order is deterministic.
func runPath(t *testing.T, cluster *hdfs.Cluster, file string, q *query.Query, rowPath bool) *mapred.JobResult {
	t.Helper()
	e := &mapred.Engine{Cluster: cluster, Parallelism: 1}
	res, err := e.Run(&mapred.Job{
		Name:   "vector-ab",
		File:   file,
		Input:  &InputFormat{Cluster: cluster, Query: q, Splitting: true, RowPath: rowPath},
		Map:    workload.PassthroughMap,
		MapSig: workload.PassthroughMapSig,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normStats zeroes the counters only the batch pipeline reports, leaving
// everything both paths must agree on.
func normStats(s mapred.TaskStats) mapred.TaskStats {
	s.RowsScanned, s.RowsSelected, s.BatchesEmitted = 0, 0, 0
	return s
}

// TestBatchPathMatchesRowPath is the tentpole's equivalence gate at the
// core layer: for every Bob query plus scan/edge cases (no filter, string
// range, half-bounded predicate, empty result), the vectorized pipeline
// and the legacy row path must produce byte-identical output in identical
// order, and identical TaskStats up to the batch-only counters — same
// bytes, same seeks, same partitions, same records.
func TestBatchPathMatchesRowPath(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 6_000, workload.UserVisitsOptions{NeedleEvery: 500, BadEvery: 750})
	s := workload.UserVisitsSchema()

	queries := []*query.Query{
		{}, // full scan, all attributes
		{Projection: []int{workload.UVSearchWord}},
		{ // string range on a non-indexed attribute
			Filter:     []query.Predicate{query.Between(workload.UVCountryCode, schema.StringVal("AR"), schema.StringVal("MX"))},
			Projection: []int{workload.UVSourceIP, workload.UVCountryCode},
		},
		{ // half-bounded predicate
			Filter:     []query.Predicate{query.AtLeast(workload.UVAdRevenue, schema.FloatVal(900))},
			Projection: []int{workload.UVAdRevenue},
		},
		{ // empty result: index scan narrows to nothing
			Filter:     []query.Predicate{query.Eq(workload.UVVisitDate, schema.DateVal(schema.MustDate("2050-01-01")))},
			Projection: []int{workload.UVSourceIP},
		},
	}
	for _, bq := range workload.BobQueries() {
		queries = append(queries, bq.Query)
	}

	for _, q := range queries {
		if err := q.Validate(s); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		row := runPath(t, cluster, "/uv", q, true)
		batch := runPath(t, cluster, "/uv", q, false)
		if len(row.Output) != len(batch.Output) {
			t.Fatalf("%s: row path emitted %d records, batch path %d", q, len(row.Output), len(batch.Output))
		}
		for i := range row.Output {
			if row.Output[i] != batch.Output[i] {
				t.Fatalf("%s: output %d differs: %q vs %q", q, i, row.Output[i], batch.Output[i])
			}
		}
		rs, bs := row.TotalStats(), batch.TotalStats()
		if normStats(rs) != normStats(bs) {
			t.Errorf("%s: stats diverge:\nrow:   %+v\nbatch: %+v", q, normStats(rs), normStats(bs))
		}
		if rs.RowsScanned != 0 || rs.BatchesEmitted != 0 {
			t.Errorf("%s: row path reported batch counters: %+v", q, rs)
		}
		if bs.RowsScanned != bs.RecordsScanned {
			t.Errorf("%s: RowsScanned = %d, RecordsScanned = %d", q, bs.RowsScanned, bs.RecordsScanned)
		}
		if bs.RowsSelected > 0 && bs.BatchesEmitted == 0 {
			t.Errorf("%s: selected %d rows but emitted no batches", q, bs.RowsSelected)
		}
	}
}

// TestMapBatchMatchesMap: a job that opts into MapBatch must emit exactly
// what the record form emits — the engine's readRecords fast path and the
// Batch.Each shim are interchangeable.
func TestMapBatchMatchesMap(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 4_000, workload.UserVisitsOptions{BadEvery: 900})
	bq := workload.BobQueries()[0]
	run := func(mb mapred.MapBatchFunc) *mapred.JobResult {
		e := &mapred.Engine{Cluster: cluster, Parallelism: 1}
		res, err := e.Run(&mapred.Job{
			Name:     "mapbatch-ab",
			File:     "/uv",
			Input:    &InputFormat{Cluster: cluster, Query: bq.Query, Splitting: true},
			Map:      workload.PassthroughMap,
			MapBatch: mb,
			MapSig:   workload.PassthroughMapSig,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	record := run(nil)
	batched := run(workload.PassthroughMapBatch)
	if len(record.Output) != len(batched.Output) {
		t.Fatalf("record form emitted %d, batch form %d", len(record.Output), len(batched.Output))
	}
	for i := range record.Output {
		if record.Output[i] != batched.Output[i] {
			t.Fatalf("output %d differs: %q vs %q", i, record.Output[i], batched.Output[i])
		}
	}
}

// TestScanAllocationsNotPerRow pins down the scratch-buffer reuse: on an
// all-fixed-width schema, a whole-split read must not allocate per row —
// neither in the batch pipeline (reused vectors, selection and scratch
// row) nor in the legacy row path (reused projected row). The bound is
// generous for per-block/per-batch setup but orders of magnitude below
// one allocation per row.
func TestScanAllocationsNotPerRow(t *testing.T) {
	const nRows = 16_000
	cluster, err := hdfs.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.SyntheticSchema(),
			SortColumns: []int{0},
			BlockSize:   1 << 20,
		},
	}
	if _, err := client.Upload("/synalloc", workload.GenerateSynthetic(nRows, 7)); err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseAnnotation(workload.SyntheticSchema(),
		`@HailQuery(filter="@2 between(0,5000)", projection={@3,@4,@5})`)
	if err != nil {
		t.Fatal(err)
	}
	for _, rowPath := range []bool{false, true} {
		f := &InputFormat{Cluster: cluster, Query: q, Splitting: true, RowPath: rowPath}
		splits, err := f.Splits("/synalloc")
		if err != nil {
			t.Fatal(err)
		}
		var rows int64
		allocs := testing.AllocsPerRun(5, func() {
			rows = 0
			for _, split := range splits {
				rr, err := f.Open(split, split.Locations[0])
				if err != nil {
					t.Fatal(err)
				}
				st, err := rr.Read(func(mapred.Record) {})
				if err != nil {
					t.Fatal(err)
				}
				rows += st.RecordsScanned
			}
		})
		if rows != nRows {
			t.Fatalf("rowPath=%v: scanned %d rows, want %d", rowPath, rows, nRows)
		}
		// ~half the rows qualify, so one allocation per delivered row
		// would show up as thousands.
		if allocs > 600 {
			t.Errorf("rowPath=%v: %v allocations for a %d-row scan — per-row allocation regressed", rowPath, allocs, nRows)
		}
	}
}

// TestRowPathIsCacheKeyed pins the fix for the real finding hailint's
// sigflow analyzer surfaced on this tree: InputFormat.RowPath is read on
// the block-scan path (Open threads it into the reader), so it must be
// part of the cache key. Before the fix, a query run with -row-path and
// the same query run on the batch path shared qcache entries — correct
// only as long as the two paths stay byte-equivalent, a property tests
// maintain but nothing enforces at cache-probe time. Two InputFormats
// differing only in RowPath must therefore sign differently, and the
// default (batch) signature must stay exactly the query's own signature
// so existing cache keys are unchanged.
func TestRowPathIsCacheKeyed(t *testing.T) {
	q := &query.Query{
		Filter:     []query.Predicate{query.AtLeast(workload.UVAdRevenue, schema.FloatVal(100))},
		Projection: []int{workload.UVSourceIP},
	}
	batch := &InputFormat{Query: q}
	row := &InputFormat{Query: q, RowPath: true}

	bSig, ok := batch.QuerySignature()
	if !ok {
		t.Fatal("batch QuerySignature not ok")
	}
	rSig, ok := row.QuerySignature()
	if !ok {
		t.Fatal("row QuerySignature not ok")
	}
	if bSig == rSig {
		t.Fatalf("RowPath is not cache-keyed: both paths sign %q — the block cache would serve one path's bytes for the other", bSig)
	}
	if bSig != q.Signature() {
		t.Fatalf("batch signature changed by the fix: %q != %q — existing cache keys must stay valid", bSig, q.Signature())
	}
}
