package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

// TestRandomizedPipelineEquivalence fuzzes the whole HAIL pipeline:
// random schemas, random data (including bad records), random layouts and
// random range/point queries, asserting that the annotated MapReduce job
// returns exactly the rows a brute-force evaluation over the input does —
// whatever access path (index scan or PAX scan) the record reader picked.
func TestRandomizedPipelineEquivalence(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			sch := randomSchema(rng)
			lines, rows := randomData(rng, sch, 1500+rng.Intn(3000))

			layout := randomLayout(rng, sch)
			// The cluster must host at least len(layout) replicas.
			cluster, err := hdfs.NewCluster(len(layout) + rng.Intn(4))
			if err != nil {
				t.Fatal(err)
			}
			client := &Client{
				Cluster: cluster,
				Config: LayoutConfig{
					Schema:      sch,
					SortColumns: layout,
					BlockSize:   4096 + rng.Intn(1<<15),
				},
			}
			if _, err := client.Upload("/fuzz", lines); err != nil {
				t.Fatalf("upload (schema %s, layout %v): %v", sch, layout, err)
			}

			for qi := 0; qi < 4; qi++ {
				q := randomQuery(rng, sch, rows)
				splitting := rng.Intn(2) == 0
				e := &mapred.Engine{Cluster: cluster}
				res, err := e.Run(&mapred.Job{
					Name: "fuzz", File: "/fuzz",
					Input: &InputFormat{Cluster: cluster, Query: q, Splitting: splitting},
					Map: func(r mapred.Record, emit mapred.Emit) {
						if r.Bad {
							return
						}
						emit(r.Row.Line(','), "")
					},
				})
				if err != nil {
					t.Fatalf("query %s: %v", q, err)
				}
				want := bruteForce(rows, q)
				got := map[string]int{}
				for _, kv := range res.Output {
					got[kv.Key]++
				}
				if len(got) != len(want) {
					t.Fatalf("schema %s layout %v query %s splitting=%v: %d distinct rows, want %d",
						sch, layout, q, splitting, len(got), len(want))
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("query %s: row %q ×%d, want ×%d", q, k, got[k], v)
					}
				}
			}
		})
	}
}

// randomSchema builds a 2–6 attribute schema over all types.
func randomSchema(rng *rand.Rand) *schema.Schema {
	types := []schema.Type{schema.Int32, schema.Int64, schema.Float64, schema.Date, schema.String}
	n := 2 + rng.Intn(5)
	fields := make([]schema.Field, n)
	for i := range fields {
		fields[i] = schema.Field{
			Name: "f" + strconv.Itoa(i),
			Type: types[rng.Intn(len(types))],
		}
	}
	return schema.MustNew(fields...)
}

// randomLayout assigns each of 2–4 replicas a random sort column or -1.
func randomLayout(rng *rand.Rand, s *schema.Schema) []int {
	r := 2 + rng.Intn(3)
	out := make([]int, r)
	for i := range out {
		out[i] = rng.Intn(s.NumFields()+1) - 1 // -1 .. n-1
	}
	// Ensure at least one indexed replica so both access paths occur
	// across trials.
	if out[0] < 0 {
		out[0] = rng.Intn(s.NumFields())
	}
	return out
}

// randomData generates parseable lines plus occasional bad records,
// returning the typed rows of the good ones.
func randomData(rng *rand.Rand, s *schema.Schema, n int) ([]string, []schema.Row) {
	words := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"}
	var lines []string
	var rows []schema.Row
	for i := 0; i < n; i++ {
		if rng.Intn(97) == 0 {
			lines = append(lines, "### bad record ###")
			continue
		}
		row := make(schema.Row, s.NumFields())
		for c := 0; c < s.NumFields(); c++ {
			switch s.Field(c).Type {
			case schema.Int32:
				row[c] = schema.IntVal(rng.Int31n(1000))
			case schema.Int64:
				row[c] = schema.LongVal(rng.Int63n(100000))
			case schema.Float64:
				row[c] = schema.FloatVal(float64(rng.Intn(4000)) / 4)
			case schema.Date:
				row[c] = schema.DateVal(10000 + rng.Int31n(2000))
			case schema.String:
				row[c] = schema.StringVal(words[rng.Intn(len(words))])
			}
		}
		rows = append(rows, row)
		lines = append(lines, row.Line(','))
	}
	return lines, rows
}

// randomQuery builds a 1–2 predicate conjunction with a random projection,
// anchored on values that actually occur so results are non-trivial.
func randomQuery(rng *rand.Rand, s *schema.Schema, rows []schema.Row) *query.Query {
	q := &query.Query{}
	nPreds := 1 + rng.Intn(2)
	for p := 0; p < nPreds; p++ {
		col := rng.Intn(s.NumFields())
		anchor := rows[rng.Intn(len(rows))][col]
		switch rng.Intn(3) {
		case 0:
			q.Filter = append(q.Filter, query.Eq(col, anchor))
		case 1:
			q.Filter = append(q.Filter, query.AtLeast(col, anchor))
		default:
			hi := rows[rng.Intn(len(rows))][col]
			if anchor.Compare(hi) > 0 {
				anchor, hi = hi, anchor
			}
			q.Filter = append(q.Filter, query.Between(col, anchor, hi))
		}
	}
	// Random projection (possibly empty = all attributes).
	if rng.Intn(3) > 0 {
		nProj := 1 + rng.Intn(s.NumFields())
		perm := rng.Perm(s.NumFields())
		q.Projection = perm[:nProj]
	}
	return q
}

// bruteForce evaluates the query over the typed rows directly.
func bruteForce(rows []schema.Row, q *query.Query) map[string]int {
	out := make(map[string]int)
	for _, row := range rows {
		if !q.MatchesRow(row) {
			continue
		}
		proj := q.Projection
		if len(proj) == 0 {
			var sb strings.Builder
			for i, v := range row {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(v.String())
			}
			out[sb.String()]++
			continue
		}
		vals := make(schema.Row, len(proj))
		for j, c := range proj {
			vals[j] = row[c]
		}
		out[vals.Line(',')]++
	}
	return out
}
