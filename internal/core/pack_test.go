package core

import (
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// scanOnlyQuery filters on duration, which no replica of the uvFixture
// layout (visitDate, sourceIP, adRevenue) indexes — every block becomes a
// scan split, the adaptive job-1 shape.
func scanOnlyQuery() *query.Query {
	return &query.Query{
		Filter: []query.Predicate{
			query.Between(workload.UVDuration, schema.IntVal(100), schema.IntVal(500)),
		},
		Projection: []int{workload.UVSourceIP},
	}
}

// assertCoverage checks the packing invariant: every input block is
// covered exactly once, every split has locations, and pinned blocks pin
// the split's primary location.
func assertCoverage(t *testing.T, splits []mapred.Split, blocks []hdfs.BlockID) {
	t.Helper()
	seen := map[hdfs.BlockID]int{}
	for _, s := range splits {
		if len(s.Locations) == 0 {
			t.Error("split has no locations")
		}
		for _, b := range s.Blocks {
			seen[b]++
		}
		if len(s.Blocks) > 1 {
			for _, b := range s.Blocks {
				if s.Replica[b] != s.Locations[0] {
					t.Errorf("packed block %d pinned to %d, split located at %d", b, s.Replica[b], s.Locations[0])
				}
			}
		}
	}
	if len(seen) != len(blocks) {
		t.Fatalf("splits cover %d blocks, want %d", len(seen), len(blocks))
	}
	for b, n := range seen {
		if n != 1 {
			t.Errorf("block %d covered %d times", b, n)
		}
	}
}

// assertAliveLocations is the kill-node regression for the split phase:
// it must never hand the engine a dead-only location list while any
// replica of the block is alive.
func assertAliveLocations(t *testing.T, cluster *hdfs.Cluster, splits []mapred.Split) {
	t.Helper()
	for _, s := range splits {
		for _, n := range s.Locations {
			if dn, err := cluster.DataNode(n); err != nil || !dn.Alive() {
				t.Errorf("split over %v located at dead node %d (locations %v)", s.Blocks, n, s.Locations)
			}
		}
		for b, n := range s.Replica {
			if dn, err := cluster.DataNode(n); err != nil || !dn.Alive() {
				t.Errorf("block %d pinned to dead node %d", b, n)
			}
		}
	}
}

// TestPackedScanSplitsCoverage: PackScans turns per-block scan splits
// into a handful of per-node packed splits, covering every block exactly
// once, with results identical to unpacked execution.
func TestPackedScanSplitsCoverage(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 8000, workload.UserVisitsOptions{})
	q := scanOnlyQuery()
	packed := &InputFormat{Cluster: cluster, Query: q, Splitting: true, SplitsPerNode: 2, PackScans: true}
	splits, err := packed.Splits("/uv")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) >= sum.Blocks {
		t.Errorf("PackScans made %d splits for %d blocks", len(splits), sum.Blocks)
	}
	if max := cluster.NumNodes() * 2; len(splits) > max {
		t.Errorf("PackScans made %d splits, want ≤ %d (SplitsPerNode × nodes)", len(splits), max)
	}
	assertCoverage(t, splits, sum.BlockIDs)
	assertAliveLocations(t, cluster, splits)

	// Packed execution must be indistinguishable from unpacked.
	unpackedOut := outputMultiset(runHailQuery(t, cluster, "/uv", q, false))
	e := &mapred.Engine{Cluster: cluster}
	res, err := e.Run(&mapred.Job{
		Name: "packed", File: "/uv", Input: packed, Map: workload.PassthroughMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != len(splits) {
		t.Errorf("packed job dispatched %d tasks, want %d", len(res.Tasks), len(splits))
	}
	got := outputMultiset(res)
	if len(got) != len(unpackedOut) {
		t.Fatalf("packed result has %d distinct rows, unpacked %d", len(got), len(unpackedOut))
	}
	for k, v := range unpackedOut {
		if got[k] != v {
			t.Fatalf("packing changed result for %q", k)
		}
	}
}

// TestScanSplitLocationsAliveAfterKill is the satellite regression: the
// historical scanSplits (and hailSplits' scan fallback) pinned locations
// via GetHosts without filtering dead nodes, while indexed groups were
// alive-filtered. Both paths must agree on alive hosts.
func TestScanSplitLocationsAliveAfterKill(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 5000, workload.UserVisitsOptions{})
	if err := cluster.KillNode(cluster.NameNode().GetHosts(sum.BlockIDs[0])[0]); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		q    *query.Query
		in   InputFormat
	}{
		{"scan-per-block", scanOnlyQuery(), InputFormat{}},
		{"scan-packed", scanOnlyQuery(), InputFormat{PackScans: true}},
		{"indexed-per-block", workload.BobQueries()[0].Query, InputFormat{}},
		{"indexed-splitting", workload.BobQueries()[0].Query, InputFormat{Splitting: true, SplitsPerNode: 2}},
	} {
		f := cfg.in
		f.Cluster, f.Query = cluster, cfg.q
		splits, err := f.Splits("/uv")
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		assertCoverage(t, splits, sum.BlockIDs)
		assertAliveLocations(t, cluster, splits)
	}
}

// TestPerBlockIndexPinDeterministic is the satellite regression for
// Replica[b] = hosts[0]: with several replicas indexed on the same column
// (HAIL-1Idx) the pin must be alive-filtered and a pure function of the
// directory contents — the lowest alive indexed host — identical across
// repeated split phases.
func TestPerBlockIndexPinDeterministic(t *testing.T) {
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVVisitDate, workload.UVVisitDate},
			BlockSize:   32 << 10,
		},
	}
	sum, err := client.Upload("/uv1", workload.GenerateUserVisits(4000, 1, workload.UserVisitsOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.NameNode().GetHostsWithIndex(sum.BlockIDs[0], workload.UVVisitDate)[0]
	if err := cluster.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	q := workload.BobQueries()[0].Query // filter on visitDate
	f := &InputFormat{Cluster: cluster, Query: q}
	var first []mapred.Split
	for i := 0; i < 5; i++ {
		splits, err := f.Splits("/uv1")
		if err != nil {
			t.Fatal(err)
		}
		assertAliveLocations(t, cluster, splits)
		for _, s := range splits {
			b := s.Blocks[0]
			pin, ok := s.Replica[b]
			if !ok {
				t.Fatalf("block %d has no pinned replica", b)
			}
			// The pin is the lowest alive indexed host — sorted, not
			// registration (pipeline) order.
			want := hdfs.NodeID(-1)
			for _, h := range cluster.NameNode().GetHostsWithIndex(b, workload.UVVisitDate) {
				if dn, err := cluster.DataNode(h); err == nil && dn.Alive() && (want == -1 || h < want) {
					want = h
				}
			}
			if pin != want {
				t.Errorf("block %d pinned to %d, want lowest alive indexed host %d", b, pin, want)
			}
		}
		if i == 0 {
			first = splits
			continue
		}
		if len(splits) != len(first) {
			t.Fatalf("run %d produced %d splits, first run %d", i, len(splits), len(first))
		}
		for j := range splits {
			if splits[j].Blocks[0] != first[j].Blocks[0] ||
				splits[j].Replica[splits[j].Blocks[0]] != first[j].Replica[first[j].Blocks[0]] {
				t.Fatalf("run %d split %d diverged from first run", i, j)
			}
		}
	}
}

// countingObserver records the adaptive split-phase report.
type countingObserver struct{ indexed, missing int }

func (o *countingObserver) ObserveJob(_ string, _ int, indexed, missing []hdfs.BlockID) {
	o.indexed, o.missing = len(indexed), len(missing)
}

// TestSplitPhaseStatsCountNameNodeOps is the satellite regression for the
// hard-coded-zero SplitPhaseStats: the adaptive path performs per-block
// directory lookups during Splits, and those must be accounted — while
// block-header I/O stays zero by design (§6.4.1).
func TestSplitPhaseStatsCountNameNodeOps(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 5000, workload.UserVisitsOptions{})
	obs := &countingObserver{}
	f := &InputFormat{Cluster: cluster, Query: scanOnlyQuery(), Adaptive: obs}
	if _, err := f.Splits("/uv"); err != nil {
		t.Fatal(err)
	}
	st := f.SplitPhaseStats()
	if obs.missing != sum.Blocks {
		t.Fatalf("observer saw %d missing blocks, want %d", obs.missing, sum.Blocks)
	}
	// FileBlocks + per-block probes (pickColumn and partitionByIndex) +
	// per-block location lookups: strictly more than one op per block.
	if st.NameNodeOps <= sum.Blocks {
		t.Errorf("split phase reported %d namenode ops for %d blocks, want > blocks", st.NameNodeOps, sum.Blocks)
	}
	if st.BytesRead != 0 || st.Seeks != 0 || st.IndexBytesRead != 0 {
		t.Errorf("split phase reported block I/O (%+v); HAIL reads no headers at split time", st)
	}

	// The counter is per-Splits-call, not cumulative, and flows into the
	// engine's JobResult.
	e := &mapred.Engine{Cluster: cluster}
	res, err := e.Run(&mapred.Job{
		Name: "ops", File: "/uv",
		Input: &InputFormat{Cluster: cluster, Query: scanOnlyQuery()},
		Map:   workload.PassthroughMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitPhase.NameNodeOps == 0 {
		t.Error("JobResult.SplitPhase.NameNodeOps = 0, want > 0")
	}
}
