package core

import (
	"testing"

	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// TestStatsDeterministic is the regression test for map-iteration-order
// leakage in the I/O accounting: emitRange used to read the needed
// columns in Go map order, so the seek count of an identical job varied
// run to run (a read is a "seek" when not adjacent to the previous one).
// Columns are now read in ascending order; repeated identical jobs must
// report identical stats — which is also what lets the sharded-namenode
// equivalence tests compare runs byte for byte.
func TestStatsDeterministic(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 4000, workload.UserVisitsOptions{})
	// Filter on one column, project two others: three distinct columns
	// in the needed-set, enough for map order to have scrambled reads.
	q := &query.Query{
		Filter: []query.Predicate{query.Between(workload.UVVisitDate,
			schema.DateVal(schema.MustDate("1999-01-01")),
			schema.DateVal(schema.MustDate("2000-01-01")))},
		Projection: []int{workload.UVSourceIP, workload.UVAdRevenue},
	}
	var first mapred.TaskStats
	for i := 0; i < 10; i++ {
		engine := &mapred.Engine{Cluster: cluster, Parallelism: 1}
		res, err := engine.Run(&mapred.Job{
			Name: "stats-determinism", File: "/uv",
			Input: &InputFormat{Cluster: cluster, Query: q},
			Map:   workload.PassthroughMap,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.TotalStats()
		if i == 0 {
			first = st
			if st.Seeks == 0 || st.BytesRead == 0 {
				t.Fatalf("implausible baseline stats: %+v", st)
			}
			continue
		}
		if st != first {
			t.Fatalf("run %d stats diverged:\n%+v\nvs baseline\n%+v", i, st, first)
		}
	}
}
