package core

import (
	"sync"
	"testing"

	"repro/internal/mapred"
	"repro/internal/qcache"
	"repro/internal/workload"
)

// TestConcurrentBatchStreamsSharedCache stresses the seam the -race CI
// lane exists for: two multi-threaded engines — one consuming records,
// one consuming the vectorized batch stream via MapBatch — hammer the
// same file through one shared qcache. Every run's output must stay
// byte-identical to a cold single-threaded reference, whether a block
// was computed by either form or replayed from the other's cache entry
// (cache entries deliberately don't record which form produced them).
func TestConcurrentBatchStreamsSharedCache(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 5_000, workload.UserVisitsOptions{BadEvery: 800})
	bq := workload.BobQueries()[4] // 20% selectivity: many live batches per block

	newJob := func(mb mapred.MapBatchFunc) *mapred.Job {
		return &mapred.Job{
			Name:     "race-" + bq.Name,
			File:     "/uv",
			Input:    &InputFormat{Cluster: cluster, Query: bq.Query, Splitting: true},
			Map:      workload.PassthroughMap,
			MapBatch: mb,
			MapSig:   workload.PassthroughMapSig,
		}
	}

	ref, err := (&mapred.Engine{Cluster: cluster, Parallelism: 1}).Run(newJob(nil))
	if err != nil {
		t.Fatal(err)
	}

	cache := qcache.New(qcache.DefaultBudget)
	check := func(res *mapred.JobResult, who string) {
		if len(res.Output) != len(ref.Output) {
			t.Errorf("%s: emitted %d records, reference %d", who, len(res.Output), len(ref.Output))
			return
		}
		for i := range res.Output {
			if res.Output[i] != ref.Output[i] {
				t.Errorf("%s: output %d differs from reference", who, i)
				return
			}
		}
	}

	const rounds = 4
	var wg sync.WaitGroup
	for _, form := range []struct {
		who string
		mb  mapred.MapBatchFunc
	}{
		{"record-form", nil},
		{"batch-form", workload.PassthroughMapBatch},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := &mapred.Engine{Cluster: cluster, Parallelism: 4, Cache: cache}
			for i := 0; i < rounds; i++ {
				res, err := e.Run(newJob(form.mb))
				if err != nil {
					t.Errorf("%s: %v", form.who, err)
					return
				}
				check(res, form.who)
			}
		}()
	}
	wg.Wait()

	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("no cache hits across %d concurrent runs: %+v", 2*rounds, st)
	}
}
