package core

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/index"
	"repro/internal/mapred"
	"repro/internal/pax"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/workload"
)

// uvFixture uploads UserVisits data with the paper's Bob configuration:
// replica indexes on visitDate, sourceIP and adRevenue (§6.4.1).
func uvFixture(t *testing.T, nLines int, opts workload.UserVisitsOptions) (*hdfs.Cluster, *Client, UploadSummary, []string) {
	t.Helper()
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue},
			BlockSize:   64 << 10,
		},
	}
	lines := workload.GenerateUserVisits(nLines, 42, opts)
	sum, err := client.Upload("/uv", lines)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, client, sum, lines
}

func TestLayoutConfigValidate(t *testing.T) {
	s := workload.UserVisitsSchema()
	good := LayoutConfig{Schema: s, SortColumns: []int{0, -1, 2}, BlockSize: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []LayoutConfig{
		{SortColumns: []int{0}, BlockSize: 1},
		{Schema: s, BlockSize: 1},
		{Schema: s, SortColumns: []int{0}, BlockSize: 0},
		{Schema: s, SortColumns: []int{99}, BlockSize: 1},
		{Schema: s, SortColumns: []int{-2}, BlockSize: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", bad)
		}
	}
	if got := good.Replication(); got != 3 {
		t.Errorf("Replication = %d", got)
	}
	if cols := good.IndexedColumns(); len(cols) != 2 {
		t.Errorf("IndexedColumns = %v", cols)
	}
}

func TestUploadCreatesDivergentIndexedReplicas(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 4000, workload.UserVisitsOptions{})
	if sum.Blocks == 0 || sum.Rows != 4000 {
		t.Fatalf("summary: %+v", sum)
	}
	nn := cluster.NameNode()
	for _, b := range sum.BlockIDs {
		hosts := nn.GetHosts(b)
		if len(hosts) != 3 {
			t.Fatalf("block %d: %d replicas", b, len(hosts))
		}
		seenCols := map[int]bool{}
		for pos, h := range hosts {
			info, ok := nn.ReplicaInfo(b, h)
			if !ok {
				t.Fatalf("no Dir_rep entry for block %d node %d", b, h)
			}
			wantCol := []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue}[pos]
			if info.SortColumn != wantCol || !info.HasIndex || info.IndexSize == 0 {
				t.Errorf("block %d pos %d: %+v", b, pos, info)
			}
			seenCols[info.SortColumn] = true

			// The stored replica really is clustered on its column and
			// carries a parseable index on it.
			data, err := cluster.ReadBlockFrom(h, b)
			if err != nil {
				t.Fatal(err)
			}
			paxData, ixData, err := ParseFrame(data)
			if err != nil {
				t.Fatal(err)
			}
			r, err := pax.NewReader(paxData)
			if err != nil {
				t.Fatal(err)
			}
			if r.SortColumn() != wantCol {
				t.Errorf("block %d pos %d clustered on %d, want %d", b, pos, r.SortColumn(), wantCol)
			}
			ix, err := index.Unmarshal(ixData)
			if err != nil {
				t.Fatalf("block %d pos %d index: %v", b, pos, err)
			}
			if ix.Column() != wantCol || ix.NumRows() != r.NumRows() {
				t.Errorf("block %d pos %d index meta: col=%d rows=%d", b, pos, ix.Column(), ix.NumRows())
			}
		}
		if len(seenCols) != 3 {
			t.Errorf("block %d has %d distinct sort orders, want 3", b, len(seenCols))
		}
		// getHostsWithIndex must find exactly one replica per indexed column.
		for _, col := range []int{workload.UVVisitDate, workload.UVSourceIP, workload.UVAdRevenue} {
			if hosts := nn.GetHostsWithIndex(b, col); len(hosts) != 1 {
				t.Errorf("block %d col %d: %d indexed hosts", b, col, len(hosts))
			}
		}
	}
}

// TestReplicasReconstructSameLogicalBlock is the paper's failover property
// (§2.3(2)): all data stays on the same logical block, only the physical
// representation differs, so every replica recovers the same row set.
func TestReplicasReconstructSameLogicalBlock(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 3000, workload.UserVisitsOptions{BadEvery: 100})
	for _, b := range sum.BlockIDs {
		hosts := cluster.NameNode().GetHosts(b)
		var ref map[string]int
		var refBad []string
		for i, h := range hosts {
			data, err := cluster.ReadBlockFrom(h, b)
			if err != nil {
				t.Fatal(err)
			}
			paxData, _, err := ParseFrame(data)
			if err != nil {
				t.Fatal(err)
			}
			blk, err := pax.Unmarshal(paxData)
			if err != nil {
				t.Fatal(err)
			}
			rows := make(map[string]int)
			for r := 0; r < blk.NumRows(); r++ {
				rows[schema.RowKey(blk.Row(r))]++
			}
			var bad []string
			for i := 0; i < blk.NumBad(); i++ {
				bad = append(bad, blk.BadRecord(i))
			}
			sort.Strings(bad)
			if i == 0 {
				ref, refBad = rows, bad
				continue
			}
			if len(rows) != len(ref) {
				t.Fatalf("block %d replica %d has %d distinct rows, ref %d", b, i, len(rows), len(ref))
			}
			for k, v := range ref {
				if rows[k] != v {
					t.Fatalf("block %d replica %d: row multiset differs", b, i)
				}
			}
			if strings.Join(bad, "\n") != strings.Join(refBad, "\n") {
				t.Fatalf("block %d replica %d: bad records differ", b, i)
			}
		}
	}
}

func runHailQuery(t *testing.T, cluster *hdfs.Cluster, file string, q *query.Query, splitting bool) *mapred.JobResult {
	t.Helper()
	e := &mapred.Engine{Cluster: cluster}
	res, err := e.Run(&mapred.Job{
		Name:  "hail-query",
		File:  file,
		Input: &InputFormat{Cluster: cluster, Query: q, Splitting: splitting},
		Map:   workload.PassthroughMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func outputMultiset(res *mapred.JobResult) map[string]int {
	m := make(map[string]int)
	for _, kv := range res.Output {
		m[kv.Key]++
	}
	return m
}

func TestIndexScanMatchesBruteForce(t *testing.T) {
	cluster, _, _, lines := uvFixture(t, 6000, workload.UserVisitsOptions{NeedleEvery: 500})
	for _, bq := range workload.BobQueries() {
		res := runHailQuery(t, cluster, "/uv", bq.Query, false)
		stats := res.TotalStats()
		if stats.IndexScans == 0 {
			t.Errorf("%s: no index scans (filter should hit an indexed attribute)", bq.Name)
		}
		if stats.FullScans != 0 {
			t.Errorf("%s: %d full scans", bq.Name, stats.FullScans)
		}
		// Brute force over the raw text.
		want := make(map[string]int)
		parser := schema.NewParser(workload.UserVisitsSchema())
		for _, l := range lines {
			row, err := parser.ParseLine(l)
			if err != nil {
				continue
			}
			if !bq.Query.MatchesRow(row) {
				continue
			}
			proj := make(schema.Row, len(bq.Query.Projection))
			for j, c := range bq.Query.Projection {
				proj[j] = row[c]
			}
			want[proj.Line(',')]++
		}
		got := outputMultiset(res)
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct results, want %d", bq.Name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s: result %q count %d, want %d", bq.Name, k, got[k], v)
			}
		}
	}
}

func TestPAXProjectionReducesBytes(t *testing.T) {
	// HAIL's PAX layout reads only the needed columns: a 1-attribute
	// projection must read far fewer bytes than a 9-attribute one.
	cluster, _, _, _ := uvFixture(t, 6000, workload.UserVisitsOptions{})
	narrowQ, err := query.ParseAnnotation(workload.UserVisitsSchema(),
		`@HailQuery(filter="@3 between(1985-01-01,1995-01-01)", projection={@9})`)
	if err != nil {
		t.Fatal(err)
	}
	wideQ, err := query.ParseAnnotation(workload.UserVisitsSchema(),
		`@HailQuery(filter="@3 between(1985-01-01,1995-01-01)", projection={@1,@2,@3,@4,@5,@6,@7,@8,@9})`)
	if err != nil {
		t.Fatal(err)
	}
	narrow := runHailQuery(t, cluster, "/uv", narrowQ, false).TotalStats()
	wide := runHailQuery(t, cluster, "/uv", wideQ, false).TotalStats()
	if narrow.BytesRead*2 >= wide.BytesRead {
		t.Errorf("narrow projection read %d bytes, wide %d; want <50%%", narrow.BytesRead, wide.BytesRead)
	}
}

func TestIndexScanReadsLessThanFullScan(t *testing.T) {
	// Index pruning works at 1,024-row partition granularity, so this
	// test needs blocks spanning many partitions: Synthetic rows are
	// ~130 B, so 1 MB text blocks hold ~8,000 rows ≈ 8 partitions.
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.SyntheticSchema(),
			SortColumns: []int{0, 1, 2},
			BlockSize:   1 << 20,
		},
	}
	if _, err := client.Upload("/synix", workload.GenerateSynthetic(32000, 3)); err != nil {
		t.Fatal(err)
	}
	s := workload.SyntheticSchema()
	// Selective filter on the indexed attribute (1% selectivity).
	idxQ, err := query.ParseAnnotation(s, `@HailQuery(filter="@1 between(0,9)", projection={@5})`)
	if err != nil {
		t.Fatal(err)
	}
	// Same projection, filter on a non-indexed attribute: PAX full scan.
	scanQ, err := query.ParseAnnotation(s, `@HailQuery(filter="@10 between(0,9999)", projection={@5})`)
	if err != nil {
		t.Fatal(err)
	}
	idx := runHailQuery(t, cluster, "/synix", idxQ, false).TotalStats()
	scan := runHailQuery(t, cluster, "/synix", scanQ, false).TotalStats()
	if idx.IndexScans == 0 {
		t.Fatal("indexed query did not use the index")
	}
	if scan.FullScans == 0 || scan.IndexScans != 0 {
		t.Fatal("non-indexed query did not fall back to scan")
	}
	if idx.BytesRead*3 >= scan.BytesRead {
		t.Errorf("index scan read %d bytes, full scan %d; want <1/3", idx.BytesRead, scan.BytesRead)
	}
}

func TestHailSplittingCoverage(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 8000, workload.UserVisitsOptions{})
	q := workload.BobQueries()[0].Query
	f := &InputFormat{Cluster: cluster, Query: q, Splitting: true, SplitsPerNode: 2}
	splits, err := f.Splits("/uv")
	if err != nil {
		t.Fatal(err)
	}
	// Far fewer splits than blocks, and every block covered exactly once.
	if len(splits) >= sum.Blocks {
		t.Errorf("HailSplitting made %d splits for %d blocks", len(splits), sum.Blocks)
	}
	seen := map[hdfs.BlockID]int{}
	for _, s := range splits {
		if len(s.Locations) == 0 {
			t.Error("split has no locations")
		}
		for _, b := range s.Blocks {
			seen[b]++
		}
		for _, b := range s.Blocks {
			if s.Replica[b] != s.Locations[0] {
				t.Errorf("split block %d preferred replica %d != location %d", b, s.Replica[b], s.Locations[0])
			}
		}
	}
	if len(seen) != sum.Blocks {
		t.Fatalf("splits cover %d blocks, want %d", len(seen), sum.Blocks)
	}
	for b, n := range seen {
		if n != 1 {
			t.Errorf("block %d covered %d times", b, n)
		}
	}
	// Results with splitting on must equal results with splitting off.
	off := outputMultiset(runHailQuery(t, cluster, "/uv", q, false))
	on := outputMultiset(runHailQuery(t, cluster, "/uv", q, true))
	if len(off) != len(on) {
		t.Fatalf("splitting changed result size: %d vs %d", len(off), len(on))
	}
	for k, v := range off {
		if on[k] != v {
			t.Fatalf("splitting changed result for %q", k)
		}
	}
}

func TestFullScanFallbackWithoutFilter(t *testing.T) {
	cluster, _, sum, lines := uvFixture(t, 3000, workload.UserVisitsOptions{})
	res := runHailQuery(t, cluster, "/uv", &query.Query{}, true)
	stats := res.TotalStats()
	if stats.FullScans != sum.Blocks || stats.IndexScans != 0 {
		t.Errorf("no-filter job: %d full scans (want %d), %d index scans", stats.FullScans, sum.Blocks, stats.IndexScans)
	}
	if len(res.Output) != len(lines) {
		t.Errorf("full scan returned %d rows, want %d", len(res.Output), len(lines))
	}
	// With full scans HailSplitting must keep default per-block splits so
	// failover is unchanged (§4.3).
	if len(res.Tasks) != sum.Blocks {
		t.Errorf("full-scan job ran %d tasks, want one per block (%d)", len(res.Tasks), sum.Blocks)
	}
}

func TestBadRecordsDeliveredFlagged(t *testing.T) {
	cluster, _, sum, _ := uvFixture(t, 2000, workload.UserVisitsOptions{BadEvery: 100})
	if sum.BadRecords != 20 {
		t.Fatalf("BadRecords = %d, want 20", sum.BadRecords)
	}
	var mu sync.Mutex
	var badSeen int64
	e := &mapred.Engine{Cluster: cluster}
	_, err := e.Run(&mapred.Job{
		Name:  "bad",
		File:  "/uv",
		Input: &InputFormat{Cluster: cluster, Query: workload.BobQueries()[0].Query},
		Map: func(r mapred.Record, emit mapred.Emit) {
			if r.Bad {
				mu.Lock()
				badSeen++
				mu.Unlock()
				if !strings.Contains(r.Raw, "CORRUPT") {
					t.Errorf("bad record lost its raw text: %q", r.Raw)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if badSeen != 20 {
		t.Errorf("map saw %d bad records, want 20", badSeen)
	}
}

func TestFailoverFallsBackToScan(t *testing.T) {
	// §6.4.3: when the node holding the matching index dies, HAIL reads a
	// surviving replica — whose index does not match — and full-scans it.
	cluster, _, sum, _ := uvFixture(t, 5000, workload.UserVisitsOptions{})
	q := workload.BobQueries()[0].Query // filter on visitDate (replica position 0)

	before := runHailQuery(t, cluster, "/uv", q, false)
	wantResults := outputMultiset(before)

	// Kill every node that holds a visitDate-indexed replica of block 0's
	// file... more precisely: kill one node and verify degraded behaviour.
	victim := cluster.NameNode().GetHostsWithIndex(sum.BlockIDs[0], workload.UVVisitDate)[0]
	if err := cluster.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	after := runHailQuery(t, cluster, "/uv", q, false)
	got := outputMultiset(after)
	if len(got) != len(wantResults) {
		t.Fatalf("results after failover: %d distinct, want %d", len(got), len(wantResults))
	}
	for k, v := range wantResults {
		if got[k] != v {
			t.Fatalf("failover changed result for %q", k)
		}
	}
	stats := after.TotalStats()
	if stats.FullScans == 0 {
		t.Error("expected some blocks to fall back to full scan after node death")
	}
	if stats.IndexScans == 0 {
		t.Error("blocks with surviving indexed replicas should still index-scan")
	}
}

func TestHail1IdxKeepsIndexScansUnderFailure(t *testing.T) {
	// HAIL-1Idx (§6.4.3): the same index on all replicas means failover
	// never degrades to scans.
	cluster, err := hdfs.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.UserVisitsSchema(),
			SortColumns: []int{workload.UVVisitDate, workload.UVVisitDate, workload.UVVisitDate},
			BlockSize:   32 << 10,
		},
	}
	lines := workload.GenerateUserVisits(4000, 1, workload.UserVisitsOptions{})
	sum, err := client.Upload("/uv1", lines)
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.NameNode().GetHostsWithIndex(sum.BlockIDs[0], workload.UVVisitDate)[0]
	cluster.KillNode(victim)
	res := runHailQuery(t, cluster, "/uv1", workload.BobQueries()[0].Query, false)
	stats := res.TotalStats()
	if stats.FullScans != 0 {
		t.Errorf("HAIL-1Idx fell back to %d full scans; all replicas carry the index", stats.FullScans)
	}
	if stats.IndexScans == 0 {
		t.Error("no index scans at all")
	}
}

func TestUnsortedReplicaConfig(t *testing.T) {
	// SortColumns entry -1 stores plain PAX without an index (the
	// "0 indexes" upload configurations of Figure 4).
	cluster, err := hdfs.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Cluster: cluster,
		Config: LayoutConfig{
			Schema:      workload.SyntheticSchema(),
			SortColumns: []int{-1, -1, -1},
			BlockSize:   32 << 10,
		},
	}
	lines := workload.GenerateSynthetic(2000, 2)
	sum, err := client.Upload("/syn", lines)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SortedBytes != 0 || sum.IndexBytes != 0 {
		t.Errorf("unsorted upload recorded sorting: %+v", sum)
	}
	// Queries still work via PAX full scan.
	res := runHailQuery(t, cluster, "/syn", workload.SynQueries()[2].Query, false)
	if res.TotalStats().IndexScans != 0 {
		t.Error("index scan without any index")
	}
	if len(res.Output) == 0 {
		t.Error("scan query returned nothing")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	paxData := []byte("pax-bytes-here")
	ixData := []byte("ix")
	framed := FrameReplica(paxData, ixData)
	p, ix, err := ParseFrame(framed)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != string(paxData) || string(ix) != string(ixData) {
		t.Error("frame round trip mismatch")
	}
	p2, ix2, err := ParseFrame(FrameReplica(paxData, nil))
	if err != nil || ix2 != nil || string(p2) != string(paxData) {
		t.Errorf("frame without index: %v %v %v", p2, ix2, err)
	}
	if _, _, err := ParseFrame(framed[:5]); err == nil {
		t.Error("short frame accepted")
	}
	bad := append([]byte(nil), framed...)
	bad[0] = 'X'
	if _, _, err := ParseFrame(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ParseFrame(framed[:len(framed)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
}

// TestOpenBlockMatchesWholeSplitRead: reading a split block by block via
// OpenBlock must deliver exactly what Open's whole-split reader delivers,
// in the same order — the invariant the engine's result-cache path
// depends on for byte-identical output.
func TestOpenBlockMatchesWholeSplitRead(t *testing.T) {
	cluster, _, _, _ := uvFixture(t, 3_000, workload.UserVisitsOptions{})
	q := &query.Query{
		Filter: []query.Predicate{
			query.Between(workload.UVVisitDate,
				schema.DateVal(schema.MustDate("1999-01-01")),
				schema.DateVal(schema.MustDate("2000-06-01"))),
		},
		Projection: []int{workload.UVSourceIP, workload.UVAdRevenue},
	}
	f := &InputFormat{Cluster: cluster, Query: q, Splitting: true, SplitsPerNode: 2}
	if _, ok := any(f).(mapred.QuerySigner); !ok {
		t.Fatal("InputFormat must implement mapred.QuerySigner")
	}
	if _, ok := any(f).(mapred.BlockOpener); !ok {
		t.Fatal("InputFormat must implement mapred.BlockOpener")
	}
	sig, ok := f.QuerySignature()
	if !ok || sig == "" {
		t.Fatalf("QuerySignature = %q, %v", sig, ok)
	}

	splits, err := f.Splits("/uv")
	if err != nil {
		t.Fatal(err)
	}
	read := func(rr mapred.RecordReader) []string {
		var rows []string
		if _, err := rr.Read(func(r mapred.Record) { rows = append(rows, r.Row.Line(',')) }); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	for _, split := range splits {
		node := split.Locations[0]
		whole, err := f.Open(split, node)
		if err != nil {
			t.Fatal(err)
		}
		want := read(whole)
		var got []string
		for _, b := range split.Blocks {
			rr, err := f.OpenBlock(split, b, node)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, read(rr)...)
		}
		if len(got) != len(want) {
			t.Fatalf("per-block read %d rows, whole split %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d: per-block %q, whole-split %q", i, got[i], want[i])
			}
		}
	}
}
