// Package advisor implements a per-replica index selection algorithm —
// the physical design algorithm §3.4 leaves as future work. Given a query
// workload, it proposes which attribute each block replica should be
// clustered and indexed on, respecting the replication factor the way the
// paper's Trojan Layouts work respects it for vertical partitioning.
//
// The problem is weighted maximum coverage: a query benefits if *some*
// replica carries a clustered index on one of its filter attributes
// (§2.2: HAIL picks the replica with a suitable index at query time).
// Greedy selection is the standard (1−1/e)-approximation and is exact
// when queries filter on single attributes, which covers the paper's
// workloads.
//
// When fewer attributes are worth indexing than there are replicas, the
// advisor duplicates the most valuable index instead of leaving replicas
// unsorted: duplicate indexes keep index scans alive under node failures
// (the HAIL-1Idx effect of §6.4.3).
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/schema"
)

// QueryInfo is one workload entry: the filter attributes of a query class
// and its relative weight (frequency, importance).
type QueryInfo struct {
	// FilterColumns are the 0-based attributes the query filters on; an
	// index on any one of them serves the query.
	FilterColumns []int
	Weight        float64
}

// FromQuery derives a QueryInfo from a parsed annotation.
func FromQuery(q *query.Query, weight float64) QueryInfo {
	info := QueryInfo{Weight: weight}
	for _, p := range q.Filter {
		info.FilterColumns = append(info.FilterColumns, p.Column)
	}
	return info
}

// Choose proposes the SortColumns configuration for the given replication
// factor. The result always has length `replicas`; entries are attribute
// positions. An error is returned for an empty workload or invalid
// attribute references — callers with no workload knowledge should simply
// index the first `replicas` attributes (Bob's "index everything" default,
// §3.4).
func Choose(s *schema.Schema, workload []QueryInfo, replicas int) ([]int, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("advisor: replicas must be positive")
	}
	if len(workload) == 0 {
		return nil, fmt.Errorf("advisor: empty workload")
	}
	for _, q := range workload {
		if q.Weight < 0 {
			return nil, fmt.Errorf("advisor: negative weight")
		}
		if len(q.FilterColumns) == 0 {
			continue // full-scan query: no index helps, any layout works
		}
		for _, c := range q.FilterColumns {
			if c < 0 || c >= s.NumFields() {
				return nil, fmt.Errorf("advisor: filter attribute %d out of range", c)
			}
		}
	}

	covered := make([]bool, len(workload))
	var chosen []int
	chosenSet := make(map[int]bool)
	for len(chosen) < replicas {
		bestCol, bestGain := -1, 0.0
		for col := 0; col < s.NumFields(); col++ {
			if chosenSet[col] {
				continue
			}
			gain := 0.0
			for qi, q := range workload {
				if covered[qi] {
					continue
				}
				for _, c := range q.FilterColumns {
					if c == col {
						gain += q.Weight
						break
					}
				}
			}
			// Deterministic tie-break: lowest attribute position.
			if gain > bestGain {
				bestCol, bestGain = col, gain
			}
		}
		if bestCol < 0 {
			break // no remaining attribute helps any uncovered query
		}
		chosen = append(chosen, bestCol)
		chosenSet[bestCol] = true
		for qi, q := range workload {
			for _, c := range q.FilterColumns {
				if c == bestCol {
					covered[qi] = true
					break
				}
			}
		}
	}

	if len(chosen) == 0 {
		// Workload is all full scans: cluster on attribute 0 so at least
		// one index exists for future filters, duplicate for failover.
		chosen = []int{0}
	}
	// Fill the remaining replicas by duplicating the most valuable
	// indexes in order: duplicated indexes preserve index scans under
	// node failure (§6.4.3).
	for i := 0; len(chosen) < replicas; i++ {
		chosen = append(chosen, chosen[i%len(chosen)])
	}
	return chosen, nil
}

// Coverage reports the fraction of workload weight served by an index
// under the given per-replica layout, for evaluating configurations.
func Coverage(layout []int, workload []QueryInfo) float64 {
	have := make(map[int]bool, len(layout))
	for _, c := range layout {
		if c >= 0 {
			have[c] = true
		}
	}
	total, served := 0.0, 0.0
	for _, q := range workload {
		total += q.Weight
		for _, c := range q.FilterColumns {
			if have[c] {
				served += q.Weight
				break
			}
		}
	}
	if total == 0 {
		return 0
	}
	return served / total
}

// Explain renders a human-readable summary of a layout proposal.
func Explain(s *schema.Schema, layout []int, workload []QueryInfo) string {
	names := make([]string, len(layout))
	for i, c := range layout {
		if c < 0 {
			names[i] = "(unsorted)"
		} else {
			names[i] = s.Field(c).Name
		}
	}
	sort.Strings(names)
	return fmt.Sprintf("replicas clustered on %v; %.0f%% of workload weight index-served",
		names, 100*Coverage(layout, workload))
}
