package advisor_test

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/workload"
)

// The advisor proposes Bob's §6.4.1 configuration from his workload: one
// replica indexed on each of visitDate, sourceIP and adRevenue.
func ExampleChoose() {
	sch := workload.UserVisitsSchema()
	var wl []advisor.QueryInfo
	for _, bq := range workload.BobQueries() {
		wl = append(wl, advisor.FromQuery(bq.Query, 1))
	}
	layout, err := advisor.Choose(sch, wl, 3)
	if err != nil {
		panic(err)
	}
	// Replicas are listed in greedy-gain order: sourceIP first (it covers
	// both Q2 and Q3), then adRevenue (Q4, Q5), then visitDate (Q1).
	for _, col := range layout {
		fmt.Println(sch.Field(col).Name)
	}
	fmt.Printf("coverage: %.0f%%\n", 100*advisor.Coverage(layout, wl))
	// Output:
	// sourceIP
	// adRevenue
	// visitDate
	// coverage: 100%
}
