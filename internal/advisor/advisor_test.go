package advisor

import (
	"testing"

	"repro/internal/workload"
)

// bobWorkload builds the advisor's view of Bob's five queries with equal
// weights.
func bobWorkload() []QueryInfo {
	var out []QueryInfo
	for _, bq := range workload.BobQueries() {
		out = append(out, FromQuery(bq.Query, 1))
	}
	return out
}

func TestChooseBobWorkload(t *testing.T) {
	s := workload.UserVisitsSchema()
	layout, err := Choose(s, bobWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 3 {
		t.Fatalf("layout = %v", layout)
	}
	// Bob's workload filters on visitDate (Q1), sourceIP (Q2, Q3) and
	// adRevenue (Q4, Q5): the advisor must pick exactly those three — the
	// configuration the paper uses in §6.4.1.
	want := map[int]bool{
		workload.UVVisitDate: true,
		workload.UVSourceIP:  true,
		workload.UVAdRevenue: true,
	}
	got := map[int]bool{}
	for _, c := range layout {
		got[c] = true
	}
	for c := range want {
		if !got[c] {
			t.Errorf("layout %v misses attribute %d", layout, c)
		}
	}
	if cov := Coverage(layout, bobWorkload()); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
}

func TestChooseWeightsDriveOrder(t *testing.T) {
	s := workload.UserVisitsSchema()
	// adRevenue queries dominate: it must be picked first.
	wl := []QueryInfo{
		{FilterColumns: []int{workload.UVAdRevenue}, Weight: 10},
		{FilterColumns: []int{workload.UVVisitDate}, Weight: 1},
	}
	layout, err := Choose(s, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if layout[0] != workload.UVAdRevenue {
		t.Errorf("layout = %v, want adRevenue first", layout)
	}
}

func TestChooseDuplicatesForFailover(t *testing.T) {
	s := workload.UserVisitsSchema()
	wl := []QueryInfo{{FilterColumns: []int{workload.UVSourceIP}, Weight: 1}}
	layout, err := Choose(s, wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Only one useful attribute: replicate its index (HAIL-1Idx) rather
	// than leaving replicas unsorted.
	for i, c := range layout {
		if c != workload.UVSourceIP {
			t.Errorf("replica %d clustered on %d, want sourceIP everywhere", i, c)
		}
	}
}

func TestChooseConjunctionCountsOnce(t *testing.T) {
	s := workload.UserVisitsSchema()
	// Bob-Q3 filters on sourceIP AND visitDate: one index on either
	// serves it; the second pick must go to the other query's attribute.
	wl := []QueryInfo{
		{FilterColumns: []int{workload.UVSourceIP, workload.UVVisitDate}, Weight: 5},
		{FilterColumns: []int{workload.UVAdRevenue}, Weight: 1},
	}
	layout, err := Choose(s, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, c := range layout {
		got[c] = true
	}
	if !got[workload.UVAdRevenue] {
		t.Errorf("layout %v should cover the adRevenue query with its second replica", layout)
	}
	if cov := Coverage(layout, wl); cov != 1 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestChooseFullScanWorkload(t *testing.T) {
	s := workload.UserVisitsSchema()
	wl := []QueryInfo{{Weight: 1}} // no filters at all
	layout, err := Choose(s, wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 3 {
		t.Fatalf("layout = %v", layout)
	}
}

func TestChooseErrors(t *testing.T) {
	s := workload.UserVisitsSchema()
	if _, err := Choose(s, nil, 3); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Choose(s, bobWorkload(), 0); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := Choose(s, []QueryInfo{{FilterColumns: []int{99}, Weight: 1}}, 1); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := Choose(s, []QueryInfo{{FilterColumns: []int{0}, Weight: -1}}, 1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCoverage(t *testing.T) {
	wl := []QueryInfo{
		{FilterColumns: []int{0}, Weight: 1},
		{FilterColumns: []int{1}, Weight: 3},
	}
	if cov := Coverage([]int{0}, wl); cov != 0.25 {
		t.Errorf("coverage = %v, want 0.25", cov)
	}
	if cov := Coverage([]int{0, 1}, wl); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
	if cov := Coverage([]int{-1}, wl); cov != 0 {
		t.Errorf("coverage = %v, want 0", cov)
	}
}

func TestExplain(t *testing.T) {
	s := workload.UserVisitsSchema()
	out := Explain(s, []int{workload.UVVisitDate, -1}, bobWorkload())
	if out == "" {
		t.Error("empty explanation")
	}
}
