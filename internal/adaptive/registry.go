package adaptive

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Registry persistence: the lifecycle manager's replica registry — which
// replicas are adaptive, what they cost against the budget, and how hot
// they are — is in-process state. A CLI like hailquery builds one Indexer
// per invocation, so without persistence the budget would reset every
// run and eviction could never see a "cold" replica. SaveRegistry and
// LoadRegistry store the registry as a small JSON sidecar next to the
// filesystem manifest, and AdoptReplicas seeds a fresh Indexer from it,
// re-validating every entry against the namenode directory (a replica
// dropped or lost since the save is simply not adopted).

// AdoptReplicas seeds the lifecycle registry with replicas a previous
// Indexer built (LoadRegistry's output). Entries whose (block, node) the
// namenode no longer lists with a matching index are skipped — the
// directory is authoritative. Adopted charges count against the budget,
// and the heat clock fast-forwards past the hottest adopted entry so
// relative coldness survives the restart. Returns the number of replicas
// adopted.
func (i *Indexer) AdoptReplicas(reps []ReplicaHeat) int {
	nn := i.Cluster.NameNode()
	adopted := 0
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range reps {
		info, ok := nn.ReplicaInfo(r.Block, r.Node)
		if !ok || !info.HasIndex || info.SortColumn != r.Column {
			continue
		}
		id := repID{r.Block, r.Column}
		if _, dup := i.replicas[id]; dup {
			continue
		}
		// Wall-clock decay on load: a registry saved long ago carries
		// logical stamps from a workload that may be ancient history. With
		// decay configured, each full decay interval since the entry's last
		// wall-clock touch knocks one tick off its logical stamp, so a
		// week-idle replica adopts as cold even if it was the hottest entry
		// at save time.
		last := i.decayedTouchLocked(r.LastTouch, r.TouchedAt)
		i.replicas[id] = &replicaRecord{
			file: r.File, col: r.Column, block: r.Block, node: r.Node,
			charged: r.Bytes, added: r.Added,
			lastTouch: last, touches: r.Touches, touchedAt: r.TouchedAt,
		}
		i.extra += r.Bytes
		if last > i.clock {
			i.clock = last
		}
		adopted++
	}
	return adopted
}

// SaveRegistry writes the registry snapshot as JSON to path. The write is
// atomic — data goes to a temp file in the same directory which is then
// renamed into place — so a crash mid-write leaves either the previous
// snapshot or the new one, never a torn file.
func SaveRegistry(path string, reps []ReplicaHeat) error {
	data, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadRegistry reads a registry snapshot written by SaveRegistry. A
// missing file is an empty registry, not an error — and so is a corrupt
// or truncated one: the registry is a cache of lifecycle state that
// AdoptReplicas re-validates against the namenode anyway, so a torn
// sidecar (pre-atomic-write crash, disk corruption) degrades to a cold
// start with a warning instead of wedging every subsequent invocation.
func LoadRegistry(path string) ([]ReplicaHeat, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var reps []ReplicaHeat
	if err := json.Unmarshal(raw, &reps); err != nil {
		fmt.Fprintf(os.Stderr, "adaptive: ignoring corrupt registry %s: %v\n", path, err)
		return nil, nil
	}
	return reps, nil
}

// RegistryFile is the registry sidecar's conventional filename, next to
// the filesystem manifest.
const RegistryFile = "adaptive-registry.json"
