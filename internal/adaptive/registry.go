package adaptive

import (
	"encoding/json"
	"fmt"
	"os"
)

// Registry persistence: the lifecycle manager's replica registry — which
// replicas are adaptive, what they cost against the budget, and how hot
// they are — is in-process state. A CLI like hailquery builds one Indexer
// per invocation, so without persistence the budget would reset every
// run and eviction could never see a "cold" replica. SaveRegistry and
// LoadRegistry store the registry as a small JSON sidecar next to the
// filesystem manifest, and AdoptReplicas seeds a fresh Indexer from it,
// re-validating every entry against the namenode directory (a replica
// dropped or lost since the save is simply not adopted).

// AdoptReplicas seeds the lifecycle registry with replicas a previous
// Indexer built (LoadRegistry's output). Entries whose (block, node) the
// namenode no longer lists with a matching index are skipped — the
// directory is authoritative. Adopted charges count against the budget,
// and the heat clock fast-forwards past the hottest adopted entry so
// relative coldness survives the restart. Returns the number of replicas
// adopted.
func (i *Indexer) AdoptReplicas(reps []ReplicaHeat) int {
	nn := i.Cluster.NameNode()
	adopted := 0
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range reps {
		info, ok := nn.ReplicaInfo(r.Block, r.Node)
		if !ok || !info.HasIndex || info.SortColumn != r.Column {
			continue
		}
		id := repID{r.Block, r.Column}
		if _, dup := i.replicas[id]; dup {
			continue
		}
		i.replicas[id] = &replicaRecord{
			file: r.File, col: r.Column, block: r.Block, node: r.Node,
			charged: r.Bytes, added: r.Added,
			lastTouch: r.LastTouch, touches: r.Touches,
		}
		i.extra += r.Bytes
		if r.LastTouch > i.clock {
			i.clock = r.LastTouch
		}
		adopted++
	}
	return adopted
}

// SaveRegistry writes the registry snapshot as JSON to path.
func SaveRegistry(path string, reps []ReplicaHeat) error {
	data, err := json.MarshalIndent(reps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRegistry reads a registry snapshot written by SaveRegistry. A
// missing file is an empty registry, not an error.
func LoadRegistry(path string) ([]ReplicaHeat, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var reps []ReplicaHeat
	if err := json.Unmarshal(raw, &reps); err != nil {
		return nil, fmt.Errorf("adaptive: bad registry %s: %v", path, err)
	}
	return reps, nil
}

// RegistryFile is the registry sidecar's conventional filename, next to
// the filesystem manifest.
const RegistryFile = "adaptive-registry.json"
