// Package adaptive implements lazy, workload-driven index creation on top
// of HAIL's static per-replica indexing — the direction the paper's own
// follow-up work (LIAH) takes §4.1's evolving-workload story.
//
// Static HAIL fixes each replica's clustered index at upload time. When
// Bob's queries move to an attribute no replica is indexed on, every job
// pays a full scan forever. The adaptive indexer closes that gap as a
// by-product of normal job execution:
//
//  1. The HailInputFormat reports, per job, which blocks have no replica
//     indexed on the query's filter column (ObserveJob). Each miss is
//     recorded in a per-file index-demand Ledger.
//  2. A bounded fraction of the missing blocks — the offer rate — is
//     marked for conversion in this job. After a map task finishes
//     scanning such a block, the engine's PostTask hook (still holding
//     the task's execution slot, so the work overlaps the job's remaining
//     tasks) re-sorts the block on the filter column, builds the sparse
//     clustered index, and stores the reorganized replica.
//  3. The new replica is registered with the namenode, so every
//     subsequent job gets index-scan splits for that block.
//
// The offer rate bounds the first job's penalty: with rate r, job 1 pays
// roughly r times the cost of indexing the whole file, and after ~1/r
// identical jobs every block is index-scanned.
package adaptive

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
)

// DefaultOfferRate is the fraction of a job's unindexed blocks offered
// for conversion when Indexer.OfferRate is unset.
const DefaultOfferRate = 0.25

// Disabled is an OfferRate that records index demand in the ledger but
// never converts a block.
const Disabled = -1.0

// RateFromFlag maps a CLI -offer-rate value to an OfferRate: flags use 0
// to mean "observe only, build nothing", while OfferRate's zero value
// means DefaultOfferRate.
func RateFromFlag(v float64) float64 {
	if v == 0 {
		return Disabled
	}
	return v
}

// JobPlan is the adaptive plan and outcome for one job: coverage seen at
// split time, blocks offered for conversion, and what the build step did.
type JobPlan struct {
	File   string
	Column int
	// Split-phase coverage for Column.
	Indexed int // blocks with an index-scan split
	Missing int // blocks that fell back to a full scan
	Offered int // missing blocks selected for conversion this job
	// Build outcomes (filled in as tasks complete).
	Built            int
	ReplicasAdded    int // stored as an additional replica
	ReplicasReplaced int // converted an unsorted replica in place
	// Skipped counts offered blocks with nowhere to put a new replica
	// (every alive node already holds one and none is unsorted) — a
	// capacity condition, not an error; they stay full-scan.
	Skipped int
	// BudgetDenied counts blocks whose conversion was refused because the
	// indexer's extra-storage budget (BudgetBytes) is exhausted.
	BudgetDenied int
	Failed       int
	// Real measured build volume, for the cost model.
	SortedBytes int64 // PAX bytes sorted and rewritten
	IndexBytes  int64 // index bytes created
	StoredBytes int64 // total replica bytes stored (frame + pax + index)
}

// Indexer piggybacks lazy index creation on MapReduce job execution. Wire
// it into a job by setting core.InputFormat.Adaptive = idx and
// mapred.Engine.PostTask = idx.AfterTask.
type Indexer struct {
	Cluster *hdfs.Cluster
	// OfferRate is the fraction of a job's unindexed blocks converted
	// during that job, in (0, 1]; at least one block is offered whenever
	// any block misses. 0 defaults to DefaultOfferRate; negative disables
	// conversion (the ledger still records demand).
	OfferRate float64
	// BudgetBytes caps the extra storage adaptive conversions may
	// consume, summed across all jobs: a replica added on a free node
	// counts its full stored size, an in-place replacement only its
	// growth (the index). 0 means unbounded. Once the cap is reached the
	// offer loop refuses further builds (JobPlan.BudgetDenied) instead of
	// growing without bound; the last build before the cap may overshoot
	// it by at most one replica.
	BudgetBytes int64

	mu      sync.Mutex
	ledger  *Ledger
	pending map[hdfs.BlockID]pendingBuild
	job     JobPlan
	extra   int64 // extra storage consumed so far, against BudgetBytes
	lastErr error
}

type pendingBuild struct {
	file string
	col  int
}

// New returns an Indexer for the cluster. offerRate 0 selects
// DefaultOfferRate.
func New(cluster *hdfs.Cluster, offerRate float64) *Indexer {
	return &Indexer{Cluster: cluster, OfferRate: offerRate, ledger: NewLedger()}
}

// Ledger returns the indexer's index-demand ledger.
func (i *Indexer) Ledger() *Ledger {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ledger == nil {
		i.ledger = NewLedger()
	}
	return i.ledger
}

func (i *Indexer) offerRate() float64 {
	if i.OfferRate == 0 {
		return DefaultOfferRate
	}
	return i.OfferRate
}

// EffectiveOfferRate resolves the 0-means-default sentinel: the rate the
// indexer actually plans with (negative means conversion is disabled).
func (i *Indexer) EffectiveOfferRate() float64 { return i.offerRate() }

// ObserveJob implements core.AdaptiveObserver: it records every missing
// (block, column) in the ledger and selects the offer-rate-bounded subset
// of missing blocks to convert during this job. Any conversions still
// pending from a previous job are dropped — demand is re-derived from the
// current workload each job.
func (i *Indexer) ObserveJob(file string, column int, indexed, missing []hdfs.BlockID) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ledger == nil {
		i.ledger = NewLedger()
	}
	for _, b := range missing {
		i.ledger.RecordMiss(file, b, column)
	}

	offer := 0
	if rate := i.offerRate(); rate > 0 && len(missing) > 0 {
		offer = int(math.Ceil(rate * float64(len(missing))))
		if offer > len(missing) {
			offer = len(missing)
		}
	}
	denied := 0
	if offer > 0 && i.BudgetBytes > 0 && i.extra >= i.BudgetBytes {
		// Extra-storage budget exhausted: keep recording demand, build
		// nothing more.
		denied = offer
		offer = 0
	}
	// Deterministic selection: lowest block IDs first.
	sel := append([]hdfs.BlockID(nil), missing...)
	sort.Slice(sel, func(a, b int) bool { return sel[a] < sel[b] })
	i.pending = make(map[hdfs.BlockID]pendingBuild, offer)
	for _, b := range sel[:offer] {
		i.pending[b] = pendingBuild{file: file, col: column}
	}
	i.job = JobPlan{
		File: file, Column: column,
		Indexed: len(indexed), Missing: len(missing), Offered: offer,
		BudgetDenied: denied,
	}
	i.lastErr = nil // errors are per job, like the plan
}

// AfterTask is the mapred.Engine PostTask hook: for every block of the
// finished task that was offered for conversion, it sorts the block on
// the target column, builds its clustered index, and stores the
// reorganized replica. It runs on the task's worker goroutine, so the
// build overlaps the job's remaining map tasks.
func (i *Indexer) AfterTask(report mapred.TaskReport) {
	for _, b := range report.Split.Blocks {
		i.mu.Lock()
		p, ok := i.pending[b]
		if ok {
			delete(i.pending, b)
		}
		i.mu.Unlock()
		if !ok {
			continue
		}
		i.buildOne(p.file, b, p.col, report.Node)
	}
}

// LastJob returns the most recent job's plan and build outcome.
func (i *Indexer) LastJob() JobPlan {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.job
}

// ExtraBytes returns the extra storage adaptive conversions have consumed
// so far — the quantity BudgetBytes caps.
func (i *Indexer) ExtraBytes() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.extra
}

// LastErr returns the most recent build error, if any.
func (i *Indexer) LastErr() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.lastErr
}

// buildOne converts one block: read any replica, re-sort on col, build
// the sparse clustered index, and store the result — in place of an
// unsorted replica when one exists (no extra storage beyond the index),
// as an additional replica on a free node otherwise.
func (i *Indexer) buildOne(file string, b hdfs.BlockID, col int, near hdfs.NodeID) {
	fail := func(err error) {
		i.mu.Lock()
		i.job.Failed++
		i.lastErr = fmt.Errorf("adaptive: block %d column %d: %v", b, col, err)
		i.mu.Unlock()
	}

	// Builds earlier in this very job may have exhausted the budget since
	// the offer was made; re-check before paying for anything.
	if i.BudgetBytes > 0 {
		i.mu.Lock()
		over := i.extra >= i.BudgetBytes
		if over {
			i.job.BudgetDenied++
		}
		i.mu.Unlock()
		if over {
			return
		}
	}

	// Choose the placement before paying for the read and sort: on a
	// fully replicated cluster there may be nowhere to put a new copy,
	// and that is a capacity condition to skip cheaply, not an error to
	// re-pay the build cost for on every job.
	target, replace := i.findUnsortedReplica(b)
	if !replace {
		var ok bool
		if target, ok = i.pickFreeNode(b); !ok {
			i.mu.Lock()
			i.job.Skipped++
			i.mu.Unlock()
			return
		}
	}

	// The map task just scanned this block, so in a real deployment these
	// bytes are hot in the task's page cache; re-reading from the serving
	// node models that (the cost model charges no extra read).
	data, _, err := i.Cluster.ReadBlockAny(b, near)
	if err != nil {
		fail(err)
		return
	}
	paxData, _, err := core.ParseFrame(data)
	if err != nil {
		fail(err)
		return
	}
	framed, info, err := core.BuildIndexedReplica(paxData, col)
	if err != nil {
		fail(err)
		return
	}

	// Extra-storage accounting: a replacement rewrites bytes that were
	// already stored, so only its growth (the attached index) counts
	// against the budget; an added replica counts in full.
	extraDelta := int64(len(framed))
	if replace {
		if dn, dnErr := i.Cluster.DataNode(target); dnErr == nil {
			if old := dn.ReplicaSize(b); old >= 0 {
				extraDelta -= int64(old)
			}
		}
		if extraDelta < 0 {
			extraDelta = 0
		}
	}

	// Reserve the delta atomically with the budget check: parallel
	// PostTask workers all build concurrently, and a check-then-store
	// window would let every in-flight build pass while extra is still
	// under the cap. Reserving caps the overshoot at one replica per
	// budget crossing; the reservation is released if the store fails.
	i.mu.Lock()
	if i.BudgetBytes > 0 && i.extra >= i.BudgetBytes {
		i.job.BudgetDenied++
		i.mu.Unlock()
		return
	}
	i.extra += extraDelta
	i.mu.Unlock()

	if replace {
		err = i.Cluster.ReplaceReplica(b, target, framed, info)
	} else {
		err = i.Cluster.StoreAdditionalReplica(b, target, framed, info)
	}
	if err != nil {
		i.mu.Lock()
		i.extra -= extraDelta
		i.mu.Unlock()
		fail(err)
		return
	}

	i.mu.Lock()
	i.job.Built++
	if replace {
		i.job.ReplicasReplaced++
	} else {
		i.job.ReplicasAdded++
	}
	// Sorting rewrites the whole PAX payload; the sorted marshal is the
	// same size as the input block.
	i.job.SortedBytes += int64(len(paxData))
	i.job.IndexBytes += int64(info.IndexSize)
	i.job.StoredBytes += int64(len(framed))
	i.ledger.RecordBuilt(file, b, col)
	i.mu.Unlock()
}

// findUnsortedReplica returns an alive node holding an unsorted, unindexed
// replica of b — the cheapest conversion target, since replacing it costs
// no extra storage beyond the index.
func (i *Indexer) findUnsortedReplica(b hdfs.BlockID) (hdfs.NodeID, bool) {
	nn := i.Cluster.NameNode()
	for _, h := range nn.GetHosts(b) {
		info, ok := nn.ReplicaInfo(b, h)
		if !ok || info.HasIndex || info.SortColumn != -1 {
			continue
		}
		if dn, err := i.Cluster.DataNode(h); err == nil && dn.Alive() {
			return h, true
		}
	}
	return 0, false
}

// pickFreeNode returns an alive node not yet holding a replica of b,
// spreading adaptive replicas across the cluster by block ID.
func (i *Indexer) pickFreeNode(b hdfs.BlockID) (hdfs.NodeID, bool) {
	holders := make(map[hdfs.NodeID]bool)
	for _, h := range i.Cluster.NameNode().GetHosts(b) {
		holders[h] = true
	}
	var cands []hdfs.NodeID
	for _, n := range i.Cluster.AliveNodes() {
		if !holders[n] {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	return cands[int(b)%len(cands)], true
}
