// Package adaptive implements lazy, workload-driven index creation on top
// of HAIL's static per-replica indexing — the direction the paper's own
// follow-up work (LIAH) takes §4.1's evolving-workload story — plus the
// lifecycle management that keeps it honest under a storage budget.
//
// Static HAIL fixes each replica's clustered index at upload time. When
// Bob's queries move to an attribute no replica is indexed on, every job
// pays a full scan forever. The adaptive indexer closes that gap as a
// by-product of normal job execution:
//
//  1. The HailInputFormat reports, per job, which blocks have no replica
//     indexed on the query's filter column (ObserveJob). Each miss is
//     recorded in a per-file index-demand Ledger. The same report is the
//     heat signal: every index-scan split an adaptive replica serves
//     stamps that replica's (file, column, block) entry, so the lifecycle
//     manager knows which replicas the current workload still uses.
//  2. A bounded fraction of the missing blocks — the offer rate — is
//     marked for conversion in this job. After a map task finishes
//     scanning such a block, the engine's PostTask hook (still holding
//     the task's execution slot, so the work overlaps the job's remaining
//     tasks) re-sorts the block on the filter column, builds the sparse
//     clustered index, and stores the reorganized replica.
//  3. The new replica is registered with the namenode, so every
//     subsequent job gets index-scan splits for that block.
//
// The offer rate bounds the first job's penalty: with rate r, job 1 pays
// roughly r times the cost of indexing the whole job, and after ~1/r
// identical jobs every block is index-scanned.
//
// Offers are kept per (file, column): concurrent jobs filtering on
// different attributes share one Indexer without clobbering each other's
// in-flight offers or plan counters, and a shifting workload accumulates
// demand for several columns at once (Ledger.Demands ranks them).
//
// With eviction enabled (SetEvict), the extra-storage budget becomes a
// working set instead of a one-way ratchet: when a build would exceed
// BudgetBytes, the coldest adaptive replicas — dead-node orphans first,
// then least-recently-touched — are dropped via Cluster.DropReplica to
// reclaim budget, so the workload's *current* hot column converges while
// replicas built for a column the workload abandoned are retired. Every
// drop bumps the block's replica generation and fires the namenode's
// change hook, so cached results pinned at the dropped replica are purged
// and split pinning never routes to a ghost replica.
package adaptive

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/obs"
)

// DefaultOfferRate is the fraction of a job's unindexed blocks offered
// for conversion when the offer rate is unset.
const DefaultOfferRate = 0.25

// Disabled is an OfferRate that records index demand in the ledger but
// never converts a block.
const Disabled = -1.0

// RateFromFlag maps a CLI -offer-rate value to an OfferRate: flags use 0
// to mean "observe only, build nothing", while OfferRate's zero value
// means DefaultOfferRate.
func RateFromFlag(v float64) float64 {
	if v == 0 {
		return Disabled
	}
	return v
}

// EvictedReplica records one adaptive replica the lifecycle manager
// dropped to reclaim budget.
type EvictedReplica struct {
	File   string
	Column int
	Block  hdfs.BlockID
	Node   hdfs.NodeID
	// Bytes is the budget charge the drop reclaimed.
	Bytes int64
}

// JobPlan is the adaptive plan and outcome for one (file, column) job:
// coverage seen at split time, blocks offered for conversion, and what
// the build step did.
type JobPlan struct {
	File   string
	Column int
	// Split-phase coverage for Column.
	Indexed int // blocks with an index-scan split
	Missing int // blocks that fell back to a full scan
	Offered int // missing blocks selected for conversion this job
	// Build outcomes (filled in as tasks complete).
	Built            int
	ReplicasAdded    int // stored as an additional replica
	ReplicasReplaced int // converted an unsorted replica in place
	// Skipped counts offered blocks with nowhere to put a new replica
	// (every alive node already holds one and none is unsorted) — a
	// capacity condition, not an error; they stay full-scan. Placement
	// races lost to a concurrent build or recovery land here too.
	Skipped int
	// BudgetDenied counts blocks whose conversion was refused because the
	// indexer's extra-storage budget (BudgetBytes) is exhausted and (with
	// eviction enabled) no adaptive replica was cold enough to retire.
	BudgetDenied int
	Failed       int
	// Eviction churn: adaptive replicas dropped to make room for this
	// plan's builds.
	Evicted         int
	EvictedBytes    int64
	EvictedReplicas []EvictedReplica
	// Real measured build volume, for the cost model.
	SortedBytes int64 // PAX bytes sorted and rewritten
	IndexBytes  int64 // index bytes created
	StoredBytes int64 // total replica bytes stored (frame + pax + index)

	// observedAt is the indexer's job clock when the plan was created;
	// pending offers whose plan has aged past pendingTTL ticks are
	// dropped (an abandoned job's offers must not fire builds later).
	observedAt uint64
	// err is the stream's most recent build error, read via LastErr /
	// StreamErr. Per plan, like the counters: a concurrent stream's job
	// start must not wipe another stream's failure.
	err error
}

// pendingTTL is how many job-clock ticks a pending offer survives
// without its (file, column) stream re-observing. Offers are normally
// consumed by the very job that made them; the TTL only matters for
// offers orphaned by a failed or abandoned job, which must not fire
// builds for a column nothing demands anymore. Generous enough that a
// slow job overlapped by many other streams' ObserveJob ticks keeps its
// offers.
const pendingTTL = 16

// planKey identifies one (file, column) conversion stream.
type planKey struct {
	file string
	col  int
}

// replicaRecord is the lifecycle manager's registry entry for one
// adaptive replica it built and charged against the budget.
type replicaRecord struct {
	file    string
	col     int
	block   hdfs.BlockID
	node    hdfs.NodeID
	charged int64 // bytes charged against BudgetBytes
	added   bool  // stored as an additional replica (evictable)
	// Heat: the logical clock (one tick per ObserveJob) of the last job
	// whose split phase index-scanned this replica, and how often that
	// happened. Builds count as a touch. touchedAt is the wall-clock side
	// of the same stamp, persisted so a long-idle process can decay heat
	// on restart (heatDecay).
	lastTouch uint64
	touches   int
	touchedAt time.Time
}

// repID keys the replica registry: one adaptive replica per (block,
// column) — rebuilding the same column elsewhere (e.g. after a node loss)
// replaces the entry and retires the orphan.
type repID struct {
	block hdfs.BlockID
	col   int
}

// dropKey identifies one physical replica selected for eviction but not
// yet dropped from the cluster — the in-flight set the readability guard
// must not count as a survivor.
type dropKey struct {
	block hdfs.BlockID
	node  hdfs.NodeID
}

// ReplicaHeat is the exported view of one registry entry, for reports and
// tests.
type ReplicaHeat struct {
	File      string
	Column    int
	Block     hdfs.BlockID
	Node      hdfs.NodeID
	Bytes     int64
	Added     bool
	Touches   int
	LastTouch uint64
	// TouchedAt is the wall-clock time of the last touch. The logical
	// clock orders replicas within a process lifetime; the wall-clock
	// stamp is what lets decay see through restarts and idle stretches
	// (omitted from old registries, in which case no decay applies).
	TouchedAt time.Time `json:",omitempty"`
}

// Indexer piggybacks lazy index creation on MapReduce job execution and
// manages the lifecycle of the replicas it creates. Wire it into a job by
// setting core.InputFormat.Adaptive = idx and mapred.Engine.PostTask =
// idx.AfterTask. All configuration (offer rate, budget, eviction) is read
// under the indexer's lock, so it may be adjusted between jobs while
// other goroutines still run AfterTask callbacks.
type Indexer struct {
	Cluster *hdfs.Cluster

	mu sync.Mutex
	// rate is the fraction of a job's unindexed blocks converted during
	// that job, in (0, 1]; at least one block is offered whenever any
	// block misses. 0 defaults to DefaultOfferRate; negative disables
	// conversion (the ledger still records demand).
	rate float64
	// budget caps the extra storage adaptive conversions may consume,
	// summed across all jobs: a replica added on a free node counts its
	// full stored size, an in-place replacement only its growth (the
	// index). 0 means unbounded. Once the cap is reached the offer loop
	// refuses further builds (JobPlan.BudgetDenied) — or, with evict set,
	// drops the coldest adaptive replicas to make room; the last build
	// before the cap may overshoot it by at most one replica.
	budget int64
	evict  bool

	ledger *Ledger
	clock  uint64 // logical job clock: one tick per ObserveJob
	// pending maps each offered block to the (file, column) plans that
	// offered it; AfterTask consumes entries as the blocks' tasks finish.
	pending  map[hdfs.BlockID]map[planKey]*JobPlan
	plans    map[planKey]*JobPlan
	lastKey  planKey
	hasLast  bool
	replicas map[repID]*replicaRecord
	// dropping marks replicas selected for eviction whose cluster drop
	// has not landed yet (the drop runs outside the lock); the victim
	// selection's readability guard treats them as already gone.
	dropping map[dropKey]bool
	extra    int64 // extra storage consumed so far, against budget

	// heatDecay is the wall-clock interval after which one logical-clock
	// tick of replica heat evaporates: at eviction time and when adopting
	// a persisted registry, a replica's effective lastTouch is its stamp
	// minus one tick per full interval since its wall-clock touch. 0 (the
	// default) disables decay — ranking is purely logical-clock LRU. now
	// is the clock source, replaceable for tests (SetClockFunc).
	heatDecay time.Duration
	now       func() time.Time

	// om/tr are the observability hooks (BindObs / SetTrace): registry
	// handles for activity counters and the build-latency histogram, and
	// the per-query trace receiving offer/build/evict/deny events. Both
	// nil by default, making every recording site a no-op.
	om obsHandles
	tr *obs.Trace
}

// New returns an Indexer for the cluster. offerRate 0 selects
// DefaultOfferRate.
func New(cluster *hdfs.Cluster, offerRate float64) *Indexer {
	return &Indexer{
		Cluster:  cluster,
		rate:     offerRate,
		ledger:   NewLedger(),
		pending:  make(map[hdfs.BlockID]map[planKey]*JobPlan),
		plans:    make(map[planKey]*JobPlan),
		replicas: make(map[repID]*replicaRecord),
		dropping: make(map[dropKey]bool),
	}
}

// SetOfferRate changes the offer rate (0 selects DefaultOfferRate,
// negative disables conversion). Safe to call while jobs run.
func (i *Indexer) SetOfferRate(r float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rate = r
}

// SetBudgetBytes sets the extra-storage cap (0 = unbounded).
func (i *Indexer) SetBudgetBytes(n int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.budget = n
}

// BudgetBytes returns the configured extra-storage cap.
func (i *Indexer) BudgetBytes() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.budget
}

// SetEvict enables or disables the eviction policy: with it on, a build
// that would exceed the budget drops the coldest adaptive replicas to
// reclaim space instead of being denied.
func (i *Indexer) SetEvict(on bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.evict = on
}

// SetHeatDecay configures wall-clock heat decay: every full interval d
// since a replica's last wall-clock touch subtracts one logical-clock
// tick from its effective heat when ranking eviction victims and when
// adopting a persisted registry. 0 disables decay. Safe to call while
// jobs run.
func (i *Indexer) SetHeatDecay(d time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.heatDecay = d
}

// HeatDecay returns the configured decay interval (0 = disabled).
func (i *Indexer) HeatDecay() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.heatDecay
}

// SetClockFunc replaces the wall-clock source used for heat stamps and
// decay. For tests; nil restores time.Now.
func (i *Indexer) SetClockFunc(fn func() time.Time) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.now = fn
}

// nowLocked returns the current wall-clock time from the configured
// source. Caller holds i.mu.
func (i *Indexer) nowLocked() time.Time {
	if i.now != nil {
		return i.now()
	}
	return time.Now() //lint:allow wallclock this IS the injectable clock's default source
}

// decayedTouchLocked returns a replica's effective logical last-touch
// after wall-clock decay: one tick lost per full heatDecay interval since
// touchedAt, floored at zero. With decay off, a zero stamp (old
// registries), or a clock that went backwards, the logical stamp stands.
// Caller holds i.mu.
func (i *Indexer) decayedTouchLocked(last uint64, touchedAt time.Time) uint64 {
	if i.heatDecay <= 0 || touchedAt.IsZero() {
		return last
	}
	age := i.nowLocked().Sub(touchedAt)
	if age <= 0 {
		return last
	}
	steps := uint64(age / i.heatDecay)
	if steps >= last {
		return 0
	}
	return last - steps
}

// EvictEnabled reports whether the eviction policy is on.
func (i *Indexer) EvictEnabled() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.evict
}

// Ledger returns the indexer's index-demand ledger.
func (i *Indexer) Ledger() *Ledger {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ledger == nil {
		i.ledger = NewLedger()
	}
	return i.ledger
}

// offerRateLocked resolves the 0-means-default sentinel. Caller holds
// i.mu.
func (i *Indexer) offerRateLocked() float64 {
	if i.rate == 0 {
		return DefaultOfferRate
	}
	return i.rate
}

// EffectiveOfferRate resolves the 0-means-default sentinel: the rate the
// indexer actually plans with (negative means conversion is disabled).
func (i *Indexer) EffectiveOfferRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.offerRateLocked()
}

// ObserveJob implements core.AdaptiveObserver: it records every missing
// (block, column) in the ledger, stamps the heat of the adaptive replicas
// serving this job's index scans, and selects the offer-rate-bounded
// subset of missing blocks to convert during this job. Offers pending for
// the *same* (file, column) from a previous job are dropped — demand for
// a column is re-derived from the current workload each job — but offers
// for other columns (concurrent or interleaved jobs) are untouched.
func (i *Indexer) ObserveJob(file string, column int, indexed, missing []hdfs.BlockID) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.ledger == nil {
		i.ledger = NewLedger()
	}
	i.clock++
	for _, b := range missing {
		i.ledger.RecordMiss(file, b, column)
	}
	// Heat: an index-scan split over an adaptive replica is a touch.
	touchNow := i.nowLocked()
	for _, b := range indexed {
		if r, ok := i.replicas[repID{b, column}]; ok && r.file == file {
			r.lastTouch = i.clock
			r.touches++
			r.touchedAt = touchNow
		}
	}

	key := planKey{file, column}
	offer := 0
	if rate := i.offerRateLocked(); rate > 0 && len(missing) > 0 {
		offer = int(math.Ceil(rate * float64(len(missing))))
		if offer > len(missing) {
			offer = len(missing)
		}
	}
	denied := 0
	if offer > 0 && i.budget > 0 && i.extra >= i.budget &&
		!(i.evict && i.extra-i.evictableBytesLocked(key) < i.budget) {
		// Extra-storage budget exhausted and eviction — off, or unable to
		// reclaim enough even by retiring every candidate — cannot make
		// room: keep recording demand, build nothing more. With eviction
		// enabled and sufficient evictable bytes the offers stand — the
		// build step reclaims budget replica by replica.
		denied = offer
		offer = 0
	}
	// Drop this key's superseded offers — demand for a column is
	// re-derived each job — and expire offers whose stream went silent:
	// an abandoned job's offers must not fire builds for a column
	// nothing demands anymore.
	for b, m := range i.pending {
		for k, p := range m {
			if k == key || p.observedAt+pendingTTL < i.clock {
				delete(m, k)
			}
		}
		if len(m) == 0 {
			delete(i.pending, b)
		}
	}
	i.om.offers.Add(int64(offer))
	i.om.denied.Add(int64(denied))
	if i.tr.Enabled() {
		i.tr.Instant("adaptive.observe", "adaptive", 0, obs.Span{})
		i.tr.Count("adaptive.offered", int64(offer))
		i.tr.Count("adaptive.budget_denied", int64(denied))
		i.tr.Count("adaptive.missing", int64(len(missing)))
	}
	plan := &JobPlan{
		File: file, Column: column,
		Indexed: len(indexed), Missing: len(missing), Offered: offer,
		BudgetDenied: denied,
		observedAt:   i.clock,
	}
	// Deterministic selection: lowest block IDs first.
	sel := append([]hdfs.BlockID(nil), missing...)
	sort.Slice(sel, func(a, b int) bool { return sel[a] < sel[b] })
	for _, b := range sel[:offer] {
		m := i.pending[b]
		if m == nil {
			m = make(map[planKey]*JobPlan, 1)
			i.pending[b] = m
		}
		m[key] = plan
	}
	i.plans[key] = plan
	i.lastKey, i.hasLast = key, true
}

// AfterTask is the mapred.Engine PostTask hook: for every block of the
// finished task that was offered for conversion — by any (file, column)
// stream — it sorts the block on the target column, builds its clustered
// index, and stores the reorganized replica. It runs on the task's worker
// goroutine, so the build overlaps the job's remaining map tasks.
func (i *Indexer) AfterTask(report mapred.TaskReport) {
	type build struct {
		key  planKey
		plan *JobPlan
	}
	for _, b := range report.Split.Blocks {
		i.mu.Lock()
		var builds []build
		if m := i.pending[b]; len(m) > 0 {
			for k, p := range m {
				builds = append(builds, build{k, p})
			}
			delete(i.pending, b)
		}
		i.mu.Unlock()
		// Deterministic build order under map iteration: by (file, column).
		sort.Slice(builds, func(a, c int) bool {
			if builds[a].key.file != builds[c].key.file {
				return builds[a].key.file < builds[c].key.file
			}
			return builds[a].key.col < builds[c].key.col
		})
		for _, bd := range builds {
			i.buildOne(bd.key, bd.plan, b, report.Node)
		}
	}
}

// LastJob returns the plan and build outcome of the most recently
// observed job. With several (file, column) streams in flight, Plan gives
// per-stream access.
func (i *Indexer) LastJob() JobPlan {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.hasLast {
		return JobPlan{}
	}
	return clonePlan(i.plans[i.lastKey])
}

// Plan returns the most recent plan for one (file, column) stream.
func (i *Indexer) Plan(file string, col int) (JobPlan, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	p, ok := i.plans[planKey{file, col}]
	if !ok {
		return JobPlan{}, false
	}
	return clonePlan(p), true
}

func clonePlan(p *JobPlan) JobPlan {
	if p == nil {
		return JobPlan{}
	}
	out := *p
	out.EvictedReplicas = append([]EvictedReplica(nil), p.EvictedReplicas...)
	return out
}

// ExtraBytes returns the extra storage adaptive conversions have consumed
// so far — the quantity BudgetBytes caps, net of evictions.
func (i *Indexer) ExtraBytes() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.extra
}

// Replicas returns the lifecycle registry — every adaptive replica
// currently charged against the budget, with its heat — sorted by (file,
// column, block) for deterministic reports.
func (i *Indexer) Replicas() []ReplicaHeat {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]ReplicaHeat, 0, len(i.replicas))
	for _, r := range i.replicas {
		out = append(out, ReplicaHeat{
			File: r.file, Column: r.col, Block: r.block, Node: r.node,
			Bytes: r.charged, Added: r.added,
			Touches: r.touches, LastTouch: r.lastTouch, TouchedAt: r.touchedAt,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].File != out[b].File {
			return out[a].File < out[b].File
		}
		if out[a].Column != out[b].Column {
			return out[a].Column < out[b].Column
		}
		return out[a].Block < out[b].Block
	})
	return out
}

// LastErr returns the most recently observed stream's build error, if
// any. Errors live on the stream's plan, like the counters — a
// concurrent stream starting a job never wipes another stream's failure;
// a stream's error clears when its own next job is observed. StreamErr
// reads a specific stream.
func (i *Indexer) LastErr() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.hasLast {
		return nil
	}
	if p := i.plans[i.lastKey]; p != nil {
		return p.err
	}
	return nil
}

// StreamErr returns the most recent build error of one (file, column)
// stream's current plan.
func (i *Indexer) StreamErr(file string, col int) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if p := i.plans[planKey{file, col}]; p != nil {
		return p.err
	}
	return nil
}

// selectVictimsLocked picks the adaptive replicas to retire so that
// `need` more budget bytes fit, never cannibalizing the requesting
// (file, column) stream. Victims must be strictly colder than the
// current job (lastTouch < clock) and evictable:
//
//   - only *added* replicas qualify — an in-place conversion reorganized
//     one of the file's original replicas, so dropping it would shrink
//     the file below its upload replication (its budget charge is only
//     the index growth anyway);
//   - a victim on an alive node must leave the block with another alive
//     replica (dropping the only readable copy would trade budget for an
//     unreadable block); replicas already selected for dropping — in this
//     batch or by a concurrent build whose drop has not landed yet
//     (i.dropping) — do not count as survivors, so two victims of one
//     block can never be selected against each other; dead-node orphans
//     are always evictable and are retired first — they serve nobody.
//
// Among equally dead-or-alive candidates the order is least recently
// touched first, then lower ledger demand (Misses for the victim's
// column), then block/column for determinism. If the evictable total
// cannot cover `need`, nothing is evicted — retiring replicas without
// unblocking the build would be pure churn. The selected records are
// removed from the registry and their charge released; the caller drops
// the physical replicas after releasing the lock.
func (i *Indexer) selectVictimsLocked(requester planKey, need int64) []*replicaRecord {
	type cand struct {
		r      *replicaRecord
		dead   bool
		misses int
		// touch is the decay-adjusted lastTouch the ranking uses: with
		// heat decay configured, a replica untouched for many wall-clock
		// intervals ranks colder than its logical stamp says.
		touch uint64
	}
	aliveSurvivors := func(r *replicaRecord) int {
		n := 0
		for _, h := range i.Cluster.NameNode().GetHosts(r.block) {
			if h == r.node || i.dropping[dropKey{r.block, h}] {
				continue
			}
			if dn, err := i.Cluster.DataNode(h); err == nil && dn.Alive() {
				n++
			}
		}
		return n
	}
	var cands []cand
	for _, r := range i.replicas {
		if (planKey{r.file, r.col}) == requester || !r.added {
			continue
		}
		if r.lastTouch >= i.clock {
			continue // touched by the current job's own split phase
		}
		dead := true
		if dn, err := i.Cluster.DataNode(r.node); err == nil && dn.Alive() {
			dead = false
		}
		misses := 0
		if d, ok := i.ledger.Demand(r.file, r.col); ok {
			misses = d.Misses
		}
		cands = append(cands, cand{r, dead, misses, i.decayedTouchLocked(r.lastTouch, r.touchedAt)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dead != cands[b].dead {
			return cands[a].dead // orphans on dead nodes go first
		}
		if cands[a].touch != cands[b].touch {
			return cands[a].touch < cands[b].touch
		}
		if cands[a].misses != cands[b].misses {
			return cands[a].misses < cands[b].misses
		}
		if cands[a].r.block != cands[b].r.block {
			return cands[a].r.block < cands[b].r.block
		}
		return cands[a].r.col < cands[b].r.col
	})
	// Greedy pick in priority order, applying the readability guard
	// against the victims picked so far: an alive victim must leave the
	// block another alive replica that is not itself being dropped.
	var victims []*replicaRecord
	var avail int64
	for _, c := range cands {
		if avail >= need {
			break
		}
		if !c.dead && aliveSurvivors(c.r) == 0 {
			continue // would be the block's last readable replica
		}
		i.dropping[dropKey{c.r.block, c.r.node}] = true
		victims = append(victims, c.r)
		avail += c.r.charged
	}
	if avail < need {
		// Not enough evictable bytes: retiring replicas without
		// unblocking the build would be pure churn. Undo the tentative
		// selection.
		for _, v := range victims {
			delete(i.dropping, dropKey{v.block, v.node})
		}
		return nil
	}
	for _, v := range victims {
		delete(i.replicas, repID{v.block, v.col})
		i.extra -= v.charged
	}
	return victims
}

// evictableBytesLocked sums the budget charges eviction could possibly
// reclaim for requester — the cheap screen the offer and build paths use
// to keep the pre-eviction early-deny behaviour when eviction is on but
// can never succeed: a stream is hopeless when even retiring every
// candidate leaves the budget full (extra − evictable ≥ budget), e.g.
// because every conversion was in-place or the charges are too small. It
// deliberately ignores heat and liveness — a false positive costs at
// most one job's wasted builds, a false negative would freeze the
// stream; the strict filters run at reservation time.
func (i *Indexer) evictableBytesLocked(requester planKey) int64 {
	var n int64
	for _, r := range i.replicas {
		if r.added && (planKey{r.file, r.col}) != requester {
			n += r.charged
		}
	}
	return n
}

// dropVictims retires the selected replicas from the cluster. Runs
// without i.mu held: DropReplica takes namenode shard locks and fires the
// replica-change hook (the result cache's purge path). Only successful
// drops are reported as evictions; a failed drop restores the victim's
// registry entry and budget charge so the accounting keeps matching the
// directory.
func (i *Indexer) dropVictims(plan *JobPlan, victims []*replicaRecord) {
	for _, v := range victims {
		err := i.Cluster.DropReplica(v.block, v.node)
		i.mu.Lock()
		delete(i.dropping, dropKey{v.block, v.node})
		if err != nil {
			plan.err = fmt.Errorf("adaptive: evict block %d column %d from node %d: %v", v.block, v.col, v.node, err)
			if _, taken := i.replicas[repID{v.block, v.col}]; !taken {
				i.replicas[repID{v.block, v.col}] = v
				i.extra += v.charged
			}
			i.mu.Unlock()
			continue
		}
		plan.Evicted++
		plan.EvictedBytes += v.charged
		plan.EvictedReplicas = append(plan.EvictedReplicas, EvictedReplica{
			File: v.file, Column: v.col, Block: v.block, Node: v.node, Bytes: v.charged,
		})
		i.om.evicted.Inc()
		i.om.evictedBytes.Add(v.charged)
		if i.tr.Enabled() {
			i.tr.Instant("adaptive.evict", "adaptive", 0, obs.Span{})
			i.tr.Count("adaptive.evicted", 1)
		}
		i.mu.Unlock()
	}
}

// buildOne converts one block for one (file, column) stream: read any
// replica, re-sort on col, build the sparse clustered index, and store
// the result — in place of an unsorted replica when one exists (no extra
// storage beyond the index), as an additional replica on a free node
// otherwise.
func (i *Indexer) buildOne(key planKey, plan *JobPlan, b hdfs.BlockID, near hdfs.NodeID) {
	file, col := key.file, key.col
	i.mu.Lock()
	om, tr := i.om, i.tr
	i.mu.Unlock()
	sp := tr.StartSpan("adaptive.build", "adaptive", 0, obs.Span{})
	sp.SetInt("block", int64(b))
	sp.SetInt("col", int64(col))
	defer sp.End()
	var buildStart time.Time
	if om.buildSeconds != nil {
		buildStart = time.Now()
	}
	fail := func(err error) {
		om.failed.Inc()
		i.mu.Lock()
		plan.Failed++
		plan.err = fmt.Errorf("adaptive: block %d column %d: %v", b, col, err)
		i.mu.Unlock()
	}

	// Builds earlier in this very job may have exhausted the budget since
	// the offer was made; re-check before paying for anything. With
	// eviction on, the exact decision needs the replica's size (it
	// happens at reservation time below), but when even retiring every
	// evictable replica could not bring the budget under the cap the
	// build is already hopeless — skip it before the read+sort+index
	// work, like the pre-eviction path always did.
	i.mu.Lock()
	over := i.budget > 0 && i.extra >= i.budget &&
		!(i.evict && i.extra-i.evictableBytesLocked(key) < i.budget)
	if over {
		plan.BudgetDenied++
	}
	i.mu.Unlock()
	if over {
		om.denied.Inc()
		tr.Count("adaptive.budget_denied", 1)
		return
	}

	// Choose the placement before paying for the read and sort: on a
	// fully replicated cluster there may be nowhere to put a new copy,
	// and that is a capacity condition to skip cheaply, not an error to
	// re-pay the build cost for on every job.
	target, replace := i.findUnsortedReplica(b)
	if !replace {
		var ok bool
		if target, ok = i.pickFreeNode(b, nil); !ok {
			om.skipped.Inc()
			i.mu.Lock()
			plan.Skipped++
			i.mu.Unlock()
			return
		}
	}

	// The map task just scanned this block, so in a real deployment these
	// bytes are hot in the task's page cache; re-reading from the serving
	// node models that (the cost model charges no extra read).
	data, _, err := i.Cluster.ReadBlockAny(b, near)
	if err != nil {
		fail(err)
		return
	}
	paxData, _, err := core.ParseFrame(data)
	if err != nil {
		fail(err)
		return
	}
	framed, info, err := core.BuildIndexedReplica(paxData, col)
	if err != nil {
		fail(err)
		return
	}

	// Extra-storage accounting: a replacement rewrites bytes that were
	// already stored, so only its growth (the attached index) counts
	// against the budget; an added replica counts in full.
	extraDelta := int64(len(framed))
	if replace {
		if dn, dnErr := i.Cluster.DataNode(target); dnErr == nil {
			if old := dn.ReplicaSize(b); old >= 0 {
				extraDelta -= int64(old)
			}
		}
		if extraDelta < 0 {
			extraDelta = 0
		}
	}

	// Reserve the delta atomically with the budget check: parallel
	// PostTask workers all build concurrently, and a check-then-store
	// window would let every in-flight build pass while extra is still
	// under the cap. Reserving caps the overshoot at one replica per
	// budget crossing; the reservation is released if the store fails.
	// With eviction enabled, a build that would cross the cap first
	// retires the coldest adaptive replicas (selected under the same
	// lock, dropped from the cluster after it is released).
	var victims []*replicaRecord
	i.mu.Lock()
	if i.budget > 0 && i.evict && i.extra+extraDelta > i.budget {
		victims = i.selectVictimsLocked(key, i.extra+extraDelta-i.budget)
	}
	if i.budget > 0 && i.extra >= i.budget {
		plan.BudgetDenied++
		i.mu.Unlock()
		om.denied.Inc()
		tr.Count("adaptive.budget_denied", 1)
		i.dropVictims(plan, victims)
		return
	}
	i.extra += extraDelta
	i.mu.Unlock()
	i.dropVictims(plan, victims)

	collided := make(map[hdfs.NodeID]bool)
	for {
		if replace {
			err = i.Cluster.ReplaceReplica(b, target, framed, info)
		} else {
			err = i.Cluster.StoreAdditionalReplica(b, target, framed, info)
		}
		if err == nil {
			break
		}
		if !replace && errors.Is(err, hdfs.ErrReplicaExists) {
			// Benign capacity race: a concurrent build or recovery put a
			// replica on the node after pickFreeNode chose it (or ghost
			// bytes survive on a revived node the directory no longer
			// lists). Re-pick around the collision; with every node
			// occupied this is a skip, not a failure.
			collided[target] = true
			var ok bool
			if target, ok = i.pickFreeNode(b, collided); ok {
				continue
			}
			om.skipped.Inc()
			i.mu.Lock()
			i.extra -= extraDelta
			plan.Skipped++
			i.mu.Unlock()
			return
		}
		i.mu.Lock()
		i.extra -= extraDelta
		i.mu.Unlock()
		fail(err)
		return
	}

	om.built.Inc()
	if replace {
		om.replaced.Inc()
	} else {
		om.added.Inc()
	}
	if om.buildSeconds != nil {
		om.buildSeconds.Observe(time.Since(buildStart))
	}
	tr.Count("adaptive.built", 1)
	i.mu.Lock()
	plan.Built++
	if replace {
		plan.ReplicasReplaced++
	} else {
		plan.ReplicasAdded++
	}
	// Sorting rewrites the whole PAX payload; the sorted marshal is the
	// same size as the input block.
	plan.SortedBytes += int64(len(paxData))
	plan.IndexBytes += int64(info.IndexSize)
	plan.StoredBytes += int64(len(framed))
	// Lifecycle registry: the new replica starts hot (a build is a
	// touch). A previous adaptive replica for the same (block, column) —
	// orphaned on a dead node, which is why the block showed up missing
	// again — is retired: its budget charge is released and the stale
	// directory entry dropped, so the registry tracks exactly the
	// replicas the budget pays for.
	id := repID{b, col}
	orphan := i.replicas[id]
	if orphan != nil {
		i.extra -= orphan.charged
	}
	i.replicas[id] = &replicaRecord{
		file: file, col: col, block: b, node: target,
		charged: extraDelta, added: !replace,
		lastTouch: i.clock, touches: 1, touchedAt: i.nowLocked(),
	}
	i.ledger.RecordBuilt(file, b, col)
	i.mu.Unlock()
	if orphan != nil && orphan.node != target {
		if err := i.Cluster.DropReplica(orphan.block, orphan.node); err != nil {
			i.mu.Lock()
			plan.err = fmt.Errorf("adaptive: retire orphaned replica of block %d on node %d: %v", orphan.block, orphan.node, err)
			i.mu.Unlock()
		}
	}
}

// findUnsortedReplica returns an alive node holding an unsorted, unindexed
// replica of b — the cheapest conversion target, since replacing it costs
// no extra storage beyond the index.
func (i *Indexer) findUnsortedReplica(b hdfs.BlockID) (hdfs.NodeID, bool) {
	nn := i.Cluster.NameNode()
	for _, h := range nn.GetHosts(b) {
		info, ok := nn.ReplicaInfo(b, h)
		if !ok || info.HasIndex || info.SortColumn != -1 {
			continue
		}
		if dn, err := i.Cluster.DataNode(h); err == nil && dn.Alive() {
			return h, true
		}
	}
	return 0, false
}

// pickFreeNode returns an alive node not yet holding a replica of b,
// spreading adaptive replicas across the cluster by block ID. exclude
// lists nodes a placement race already collided on.
func (i *Indexer) pickFreeNode(b hdfs.BlockID, exclude map[hdfs.NodeID]bool) (hdfs.NodeID, bool) {
	holders := make(map[hdfs.NodeID]bool)
	for _, h := range i.Cluster.NameNode().GetHosts(b) {
		holders[h] = true
	}
	var cands []hdfs.NodeID
	for _, n := range i.Cluster.AliveNodes() {
		if !holders[n] && !exclude[n] {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	return cands[int(b)%len(cands)], true
}
