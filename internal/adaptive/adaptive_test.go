package adaptive

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

// testSchema: a (int32), b (string), c (int32), d (int32). The static
// layout never indexes c or d, so queries filtering on them exercise the
// adaptive path — two of them, so a shifting workload (c hot → d hot)
// exercises the lifecycle manager.
var testSchema = schema.MustNew(
	schema.Field{Name: "a", Type: schema.Int32},
	schema.Field{Name: "b", Type: schema.String},
	schema.Field{Name: "c", Type: schema.Int32},
	schema.Field{Name: "d", Type: schema.Int32},
)

func testLines(n int) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("%d,word-%d,%d,%d", i%7, i, i%13, i%11))
	}
	return lines
}

// upload creates a cluster and uploads n rows with the given per-replica
// sort columns, sized so the file spans several blocks.
func upload(t *testing.T, nodes, n int, sortCols []int) (*hdfs.Cluster, string) {
	t.Helper()
	cluster, err := hdfs.NewCluster(nodes)
	if err != nil {
		t.Fatal(err)
	}
	lines := testLines(n)
	perLine := len(lines[0]) + 1
	client := &core.Client{
		Cluster: cluster,
		Config: core.LayoutConfig{
			Schema:      testSchema,
			SortColumns: sortCols,
			BlockSize:   perLine * n / 4, // ~4 blocks
		},
	}
	if _, err := client.Upload("/t", lines); err != nil {
		t.Fatal(err)
	}
	return cluster, "/t"
}

func cQuery() *query.Query {
	return &query.Query{
		Filter:     []query.Predicate{query.Between(2, schema.IntVal(2), schema.IntVal(5))},
		Projection: []int{0, 2},
	}
}

// dQuery filters on the other never-indexed attribute — the column the
// workload shifts to in the lifecycle tests.
func dQuery() *query.Query {
	return &query.Query{
		Filter:     []query.Predicate{query.Between(3, schema.IntVal(1), schema.IntVal(4))},
		Projection: []int{0, 3},
	}
}

// runQueryJob executes one adaptive job with the given query.
func runQueryJob(t *testing.T, cluster *hdfs.Cluster, file string, idx *Indexer, q *query.Query) *mapred.JobResult {
	t.Helper()
	engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask}
	res, err := engine.Run(&mapred.Job{
		Name:  "adaptive-test",
		File:  file,
		Input: &core.InputFormat{Cluster: cluster, Query: q, Adaptive: idx},
		Map: func(r mapred.Record, emit mapred.Emit) {
			if !r.Bad {
				emit(r.Row.Line(','), "")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LastErr(); err != nil {
		t.Fatal(err)
	}
	return res
}

// runJob executes one adaptive job on the c-column query.
func runJob(t *testing.T, cluster *hdfs.Cluster, file string, idx *Indexer) *mapred.JobResult {
	t.Helper()
	return runQueryJob(t, cluster, file, idx, cQuery())
}

func TestLedgerDemand(t *testing.T) {
	l := NewLedger()
	l.RecordMiss("/f", 1, 2)
	l.RecordMiss("/f", 1, 2)
	l.RecordMiss("/f", 2, 2)
	l.RecordMiss("/f", 1, 5)
	l.RecordBuilt("/f", 1, 2)
	l.RecordBuilt("/f", 1, 2) // idempotent

	d, ok := l.Demand("/f", 2)
	if !ok {
		t.Fatal("no demand recorded for column 2")
	}
	if d.Misses != 3 || d.Blocks != 2 || d.Built != 1 {
		t.Errorf("demand = %+v, want Misses=3 Blocks=2 Built=1", d)
	}
	ds := l.Demands("/f")
	if len(ds) != 2 || ds[0].Column != 2 || ds[1].Column != 5 {
		t.Errorf("Demands order = %+v, want column 2 (hotter) first", ds)
	}
	if _, ok := l.Demand("/other", 2); ok {
		t.Error("unexpected demand for unrelated file")
	}
}

func TestFirstJobOffersBoundedFraction(t *testing.T) {
	cluster, file := upload(t, 6, 2000, []int{0, 1})
	idx := New(cluster, 0.5)
	res := runJob(t, cluster, file, idx)

	plan := idx.LastJob()
	blocks, _ := cluster.NameNode().FileBlocks(file)
	nBlocks := len(blocks)
	if plan.Column != 2 {
		t.Fatalf("adaptive column = %d, want 2", plan.Column)
	}
	if plan.Indexed != 0 || plan.Missing != nBlocks {
		t.Fatalf("plan coverage = %d indexed / %d missing, want 0 / %d", plan.Indexed, plan.Missing, nBlocks)
	}
	want := (nBlocks + 1) / 2 // ceil(0.5 × nBlocks)
	if plan.Offered != want || plan.Built != want {
		t.Fatalf("offered %d built %d, want %d", plan.Offered, plan.Built, want)
	}

	// The first job saw no index at all.
	st := res.TotalStats()
	if st.IndexScans != 0 || st.FullScans != nBlocks {
		t.Errorf("first job: %d index scans, %d full scans, want 0/%d", st.IndexScans, st.FullScans, nBlocks)
	}

	// The built blocks are registered with the namenode.
	indexed := 0
	for _, b := range blocks {
		if len(cluster.NameNode().GetHostsWithIndex(b, 2)) > 0 {
			indexed++
		}
	}
	if indexed != want {
		t.Errorf("%d blocks registered with an index on column 2, want %d", indexed, want)
	}

	// Demand was recorded for every block.
	d, ok := idx.Ledger().Demand(file, 2)
	if !ok || d.Blocks != nBlocks || d.Built != want {
		t.Errorf("ledger demand = %+v, want Blocks=%d Built=%d", d, nBlocks, want)
	}
}

func TestAdaptiveReplacesUnsortedReplica(t *testing.T) {
	cluster, file := upload(t, 6, 2000, []int{0, -1}) // replica 1 is unsorted PAX
	blocks, _ := cluster.NameNode().FileBlocks(file)
	before := make(map[hdfs.BlockID]int)
	for _, b := range blocks {
		before[b] = cluster.NameNode().ReplicaCount(b)
	}

	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx)
	plan := idx.LastJob()
	if plan.Built != len(blocks) || plan.ReplicasReplaced != len(blocks) || plan.ReplicasAdded != 0 {
		t.Fatalf("plan = %+v, want all %d blocks converted in place", plan, len(blocks))
	}
	for _, b := range blocks {
		if got := cluster.NameNode().ReplicaCount(b); got != before[b] {
			t.Errorf("block %d replica count %d, want unchanged %d", b, got, before[b])
		}
		if len(cluster.NameNode().GetHostsWithIndex(b, 2)) == 0 {
			t.Errorf("block %d has no replica indexed on column 2", b)
		}
	}
}

func TestAdaptiveAddsReplicaWhenAllSorted(t *testing.T) {
	cluster, file := upload(t, 6, 2000, []int{0, 1}) // both replicas sorted+indexed
	blocks, _ := cluster.NameNode().FileBlocks(file)

	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx)
	plan := idx.LastJob()
	if plan.Built != len(blocks) || plan.ReplicasAdded != len(blocks) || plan.ReplicasReplaced != 0 {
		t.Fatalf("plan = %+v, want all %d blocks stored as additional replicas", plan, len(blocks))
	}
	for _, b := range blocks {
		if got := cluster.NameNode().ReplicaCount(b); got != 3 {
			t.Errorf("block %d replica count %d, want 3 (2 static + 1 adaptive)", b, got)
		}
	}
}

// TestConvergenceAndEquivalence runs the same job repeatedly: the
// index-scan fraction must rise monotonically to 1.0, and every job must
// return exactly the same rows.
func TestConvergenceAndEquivalence(t *testing.T) {
	cluster, file := upload(t, 8, 3000, []int{0, 1, -1})
	blocks, _ := cluster.NameNode().FileBlocks(file)
	idx := New(cluster, 0.34)

	var baseline []string
	lastFrac := -1.0
	converged := false
	for job := 0; job < 2*len(blocks)+2; job++ {
		res := runJob(t, cluster, file, idx)

		var rows []string
		for _, kv := range res.Output {
			rows = append(rows, kv.Key)
		}
		sort.Strings(rows)
		if baseline == nil {
			baseline = rows
			if len(baseline) == 0 {
				t.Fatal("query returned no rows")
			}
		} else if len(rows) != len(baseline) {
			t.Fatalf("job %d returned %d rows, baseline %d", job, len(rows), len(baseline))
		} else {
			for i := range rows {
				if rows[i] != baseline[i] {
					t.Fatalf("job %d row %d = %q, baseline %q", job, i, rows[i], baseline[i])
				}
			}
		}

		st := res.TotalStats()
		frac := float64(st.IndexScans) / float64(st.IndexScans+st.FullScans)
		if frac < lastFrac {
			t.Fatalf("job %d index-scan fraction %f < previous %f", job, frac, lastFrac)
		}
		if frac == 1.0 {
			converged = true
			break
		}
		if job > 0 && frac == lastFrac {
			t.Fatalf("job %d made no progress (fraction stuck at %f)", job, frac)
		}
		lastFrac = frac
	}
	if !converged {
		t.Fatal("index-scan fraction never reached 1.0")
	}
}

// TestAdaptiveRebuildsAfterNodeLoss: when the node holding a block's
// only adaptive index dies, the next job treats the block as missing
// again and rebuilds the index on a surviving node — Dir_rep's dead
// entries must not count as coverage.
func TestAdaptiveRebuildsAfterNodeLoss(t *testing.T) {
	cluster, file := upload(t, 6, 2000, []int{0, 1})
	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx)
	blocks, _ := cluster.NameNode().FileBlocks(file)

	// Kill the node holding the first block's adaptive replica.
	hosts := cluster.NameNode().GetHostsWithIndex(blocks[0], 2)
	if len(hosts) != 1 {
		t.Fatalf("block %d has %d indexed replicas on column 2, want 1", blocks[0], len(hosts))
	}
	if err := cluster.KillNode(hosts[0]); err != nil {
		t.Fatal(err)
	}

	runJob(t, cluster, file, idx)
	plan := idx.LastJob()
	if plan.Missing == 0 || plan.Built == 0 {
		t.Fatalf("plan after node loss = %+v, want the orphaned blocks re-offered and rebuilt", plan)
	}
	for _, b := range blocks {
		alive := false
		for _, h := range cluster.NameNode().GetHostsWithIndex(b, 2) {
			if dn, err := cluster.DataNode(h); err == nil && dn.Alive() {
				alive = true
				break
			}
		}
		if !alive {
			t.Errorf("block %d has no alive replica indexed on column 2 after rebuild", b)
		}
	}
}

// TestAdaptiveSkipsWhenClusterFull: with replication == node count and
// no unsorted replica, there is nowhere to put a new indexed copy — the
// offered blocks are skipped cleanly (no error, no repeated build work)
// and the job still returns correct results.
func TestAdaptiveSkipsWhenClusterFull(t *testing.T) {
	cluster, file := upload(t, 2, 2000, []int{0, 1}) // replication 2 on 2 nodes
	blocks, _ := cluster.NameNode().FileBlocks(file)

	idx := New(cluster, 1.0)
	res := runJob(t, cluster, file, idx) // runJob fails the test if LastErr is set
	plan := idx.LastJob()
	if plan.Built != 0 || plan.Failed != 0 || plan.Skipped != len(blocks) {
		t.Fatalf("plan = %+v, want all %d offered blocks skipped without error", plan, len(blocks))
	}
	if len(res.Output) == 0 {
		t.Error("query returned no rows")
	}
}

// TestObserveOnlyWhenDisabled: a negative offer rate records demand but
// never builds.
func TestObserveOnlyWhenDisabled(t *testing.T) {
	cluster, file := upload(t, 6, 2000, []int{0, 1})
	idx := New(cluster, -1)
	runJob(t, cluster, file, idx)
	plan := idx.LastJob()
	if plan.Offered != 0 || plan.Built != 0 {
		t.Fatalf("plan = %+v, want nothing offered or built", plan)
	}
	if d, ok := idx.Ledger().Demand(file, 2); !ok || d.Blocks != plan.Missing {
		t.Errorf("ledger demand = %+v, want %d blocks recorded", d, plan.Missing)
	}
}

// TestBudgetCapsExtraStorage: with a byte budget roughly one replica
// wide, the indexer converts until the cap and then refuses further
// builds (BudgetDenied) instead of growing unboundedly.
func TestBudgetCapsExtraStorage(t *testing.T) {
	// All replicas sorted (on a and b): every conversion must add a
	// replica, so each build costs a full block against the budget.
	cluster, file := upload(t, 8, 2_000, []int{0, 1})
	idx := New(cluster, 1.0)

	// Discover a typical stored replica size from block 0.
	blocks, err := cluster.NameNode().FileBlocks(file)
	if err != nil {
		t.Fatal(err)
	}
	node := cluster.NameNode().GetHosts(blocks[0])[0]
	data, err := cluster.ReadBlockFrom(node, blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	blockSize := int64(len(data))
	idx.SetBudgetBytes(blockSize + blockSize/2) // room for ~1 replica, then deny

	var denied, built int
	for j := 0; j < 4; j++ {
		runJob(t, cluster, file, idx)
		plan := idx.LastJob()
		built += plan.Built
		denied += plan.BudgetDenied
	}
	if built == 0 {
		t.Fatal("budget prevented every build; want at least one under the cap")
	}
	if denied == 0 {
		t.Fatal("no builds denied despite an exhausted budget")
	}
	// Overshoot is bounded by one replica.
	if extra := idx.ExtraBytes(); extra > idx.BudgetBytes()+2*blockSize {
		t.Errorf("extra storage %d far exceeds budget %d", extra, idx.BudgetBytes())
	}
	if got := idx.ExtraBytes(); got == 0 {
		t.Error("ExtraBytes = 0 after successful builds")
	}
}

// TestBudgetUnlimitedByDefault: BudgetBytes == 0 never denies.
func TestBudgetUnlimitedByDefault(t *testing.T) {
	cluster, file := upload(t, 8, 1_200, []int{0, -1})
	idx := New(cluster, 1.0)
	for j := 0; j < 3; j++ {
		runJob(t, cluster, file, idx)
		if d := idx.LastJob().BudgetDenied; d != 0 {
			t.Fatalf("job %d denied %d builds with no budget set", j+1, d)
		}
	}
}

// TestLedgerConcurrentStress is the -race satellite for the demand
// ledger: misses, builds and reads race from many goroutines, as they do
// when parallel PostTask callbacks record builds while a split phase
// records the next job's misses.
func TestLedgerConcurrentStress(t *testing.T) {
	l := NewLedger()
	const workers = 8
	const ops = 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				b := hdfs.BlockID((seed + i) % 17)
				col := (seed + i) % 3
				switch i % 5 {
				case 0:
					l.RecordBuilt("/f", b, col)
				case 1:
					_, _ = l.Demand("/f", col)
				case 2:
					_ = l.Demands("/f")
				default:
					l.RecordMiss("/f", b, col)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, d := range l.Demands("/f") {
		if d.Blocks > 17 || d.Built > d.Blocks {
			t.Errorf("implausible demand after stress: %+v", d)
		}
		if d.Misses == 0 {
			t.Errorf("column %d lost all its misses", d.Column)
		}
	}
}

// TestIndexerConcurrentAfterTask races AfterTask callbacks (as the engine
// fires them from parallel workers) against ledger reads and — the
// satellite regression for the unlocked OfferRate/BudgetBytes fields —
// concurrent configuration reads and writes, which the engine's build
// goroutines consult mid-job.
func TestIndexerConcurrentAfterTask(t *testing.T) {
	cluster, file := upload(t, 8, 2_000, []int{0, -1})
	idx := New(cluster, 1.0)
	engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask, Parallelism: 8}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for {
			select {
			case <-done:
				return
			default:
				_ = idx.Ledger().Demands(file)
				_ = idx.LastJob()
				_ = idx.EffectiveOfferRate()
				_ = idx.BudgetBytes()
				_ = idx.Replicas()
				// Mutate the config while builds run: offer rate stays
				// positive so the job still converges, the budget stays
				// unbounded.
				idx.SetOfferRate(1.0 - float64(n%3)*0.1)
				idx.SetBudgetBytes(0)
				idx.SetEvict(n%2 == 0)
				n++
			}
		}
	}()
	res, err := engine.Run(&mapred.Job{
		Name:  "race",
		File:  file,
		Input: &core.InputFormat{Cluster: cluster, Query: cQuery(), Adaptive: idx},
		Map: func(r mapred.Record, emit mapred.Emit) {
			if !r.Bad {
				emit(r.Row.Line(','), "")
			}
		},
	})
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.LastErr(); err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output from race job")
	}
}
