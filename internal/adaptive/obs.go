package adaptive

import "repro/internal/obs"

// obsHandles are the indexer's resolved registry handles. The zero value
// (no registry bound) holds nil handles whose methods no-op, so recording
// sites never branch.
type obsHandles struct {
	offers       *obs.Counter
	built        *obs.Counter
	added        *obs.Counter
	replaced     *obs.Counter
	denied       *obs.Counter
	skipped      *obs.Counter
	failed       *obs.Counter
	evicted      *obs.Counter
	evictedBytes *obs.Counter
	buildSeconds *obs.Histogram
}

// BindObs registers the indexer's activity counters and build-latency
// histogram with the registry, plus lazily evaluated gauges over its
// lifecycle state (extra bytes against budget, live adaptive replicas,
// pending offers).
func (i *Indexer) BindObs(reg *obs.Registry) {
	if i == nil || reg == nil {
		return
	}
	h := obsHandles{
		offers:       reg.Counter("adaptive.offers"),
		built:        reg.Counter("adaptive.built"),
		added:        reg.Counter("adaptive.replicas_added"),
		replaced:     reg.Counter("adaptive.replicas_replaced"),
		denied:       reg.Counter("adaptive.budget_denied"),
		skipped:      reg.Counter("adaptive.skipped"),
		failed:       reg.Counter("adaptive.failed"),
		evicted:      reg.Counter("adaptive.evicted"),
		evictedBytes: reg.Counter("adaptive.evicted_bytes"),
		buildSeconds: reg.Histogram("adaptive.build_seconds"),
	}
	reg.SetGaugeFunc("adaptive.extra_bytes", func() int64 { return i.ExtraBytes() })
	reg.SetGaugeFunc("adaptive.replicas", func() int64 {
		i.mu.Lock()
		defer i.mu.Unlock()
		return int64(len(i.replicas))
	})
	reg.SetGaugeFunc("adaptive.pending_offers", func() int64 {
		i.mu.Lock()
		defer i.mu.Unlock()
		return int64(len(i.pending))
	})
	i.mu.Lock()
	i.om = h
	i.mu.Unlock()
}

// SetTrace attaches (or, with nil, detaches) a trace: offer decisions,
// builds, evictions, and budget denials are recorded into it as spans and
// counts. The indexer never closes over a job's lifetime, so callers
// re-point the trace per query; all recording is nil-safe.
func (i *Indexer) SetTrace(tr *obs.Trace) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.tr = tr
	i.mu.Unlock()
}
