package adaptive

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/hdfs"
)

// TestSaveRegistryRoundTrip checks the sidecar survives a save/load cycle
// with the wall-clock stamp intact and leaves no temp-file litter behind.
func TestSaveRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, RegistryFile)
	stamp := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	in := []ReplicaHeat{
		{File: "/t", Column: 2, Block: 3, Node: 1, Bytes: 4096, Added: true,
			Touches: 7, LastTouch: 9, TouchedAt: stamp},
	}
	if err := SaveRegistry(path, in); err != nil {
		t.Fatal(err)
	}
	// Atomic write must not leave its temp file behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != RegistryFile {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("expected only %s in dir, got %v", RegistryFile, names)
	}
	out, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d entries, want 1", len(out))
	}
	if out[0] != in[0] {
		t.Fatalf("round trip changed entry: got %+v want %+v", out[0], in[0])
	}
	if !out[0].TouchedAt.Equal(stamp) {
		t.Fatalf("TouchedAt lost: got %v want %v", out[0].TouchedAt, stamp)
	}
}

// TestLoadRegistryToleratesTornFile is the crash-safety gate: a corrupt or
// truncated sidecar (a crash before writes were atomic, or disk damage)
// must load as an empty registry with a warning, never wedge the caller.
func TestLoadRegistryToleratesTornFile(t *testing.T) {
	dir := t.TempDir()
	good := []ReplicaHeat{{File: "/t", Column: 2, Block: 3, Node: 1, Bytes: 4096}}
	path := filepath.Join(dir, RegistryFile)
	if err := SaveRegistry(path, good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, contents := range map[string][]byte{
		"truncated": raw[:len(raw)/2],
		"garbage":   []byte("not json at all\x00\x01"),
		"empty":     {},
	} {
		t.Run(name, func(t *testing.T) {
			torn := filepath.Join(dir, "torn-"+name+".json")
			if err := os.WriteFile(torn, contents, 0o644); err != nil {
				t.Fatal(err)
			}
			reps, err := LoadRegistry(torn)
			if err != nil {
				t.Fatalf("torn file must not error, got: %v", err)
			}
			if len(reps) != 0 {
				t.Fatalf("torn file must load empty, got %d entries", len(reps))
			}
		})
	}
	// The intact file still loads.
	reps, err := LoadRegistry(path)
	if err != nil || len(reps) != 1 {
		t.Fatalf("intact registry: got %d entries, err %v", len(reps), err)
	}
}

// TestSaveRegistryReplacesAtomically overwrites an existing sidecar and
// verifies the new contents landed — the rename path, not a fresh create.
func TestSaveRegistryReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), RegistryFile)
	if err := SaveRegistry(path, []ReplicaHeat{{File: "/old", Column: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveRegistry(path, []ReplicaHeat{{File: "/new", Column: 2}}); err != nil {
		t.Fatal(err)
	}
	reps, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].File != "/new" {
		t.Fatalf("overwrite not visible: %+v", reps)
	}
	raw, _ := os.ReadFile(path)
	if strings.Contains(string(raw), "/old") {
		t.Fatal("old contents survived the overwrite")
	}
}

// indexedHost returns a host of block b whose replica carries an index on
// col, per the namenode directory.
func indexedHost(t *testing.T, cluster *hdfs.Cluster, b hdfs.BlockID, col int) hdfs.NodeID {
	t.Helper()
	nn := cluster.NameNode()
	for _, h := range nn.GetHosts(b) {
		if info, ok := nn.ReplicaInfo(b, h); ok && info.HasIndex && info.SortColumn == col {
			return h
		}
	}
	t.Fatalf("no replica of block %d indexed on column %d", b, col)
	return 0
}

// TestAdoptDecaysHeatFromWallClock is the fake-clock restart test: a
// registry saved with wall-clock stamps is adopted through a decay window,
// so entries idle for many intervals come back logically colder than
// fresh ones, regardless of their saved logical stamps.
func TestAdoptDecaysHeatFromWallClock(t *testing.T) {
	// Replica 1 of each block is indexed on column 2, so crafted registry
	// entries for (block, col 2) pass AdoptReplicas' directory validation.
	cluster, file := upload(t, 4, 700, []int{0, 2})
	blocks, err := cluster.NameNode().FileBlocks(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 3 {
		t.Fatalf("need ≥3 blocks, got %d", len(blocks))
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	reps := []ReplicaHeat{
		// Hot logical stamp, but idle for 8 decay intervals → effective 2.
		{File: file, Column: 2, Block: blocks[0], Node: indexedHost(t, cluster, blocks[0], 2),
			Bytes: 100, Added: true, Touches: 10, LastTouch: 10, TouchedAt: now.Add(-8 * time.Hour)},
		// Cooler logical stamp, touched recently → keeps 5.
		{File: file, Column: 2, Block: blocks[1], Node: indexedHost(t, cluster, blocks[1], 2),
			Bytes: 100, Added: true, Touches: 5, LastTouch: 5, TouchedAt: now.Add(-30 * time.Minute)},
		// Idle past its whole stamp → floors at 0, never underflows.
		{File: file, Column: 2, Block: blocks[2], Node: indexedHost(t, cluster, blocks[2], 2),
			Bytes: 100, Added: true, Touches: 3, LastTouch: 3, TouchedAt: now.Add(-100 * time.Hour)},
	}

	idx := New(cluster, Disabled)
	idx.SetHeatDecay(time.Hour)
	idx.SetClockFunc(func() time.Time { return now })
	if n := idx.AdoptReplicas(reps); n != 3 {
		t.Fatalf("adopted %d, want 3", n)
	}
	got := map[hdfs.BlockID]uint64{}
	for _, r := range idx.Replicas() {
		got[r.Block] = r.LastTouch
	}
	want := map[hdfs.BlockID]uint64{blocks[0]: 2, blocks[1]: 5, blocks[2]: 0}
	for b, w := range want {
		if got[b] != w {
			t.Errorf("block %d: effective LastTouch = %d, want %d", b, got[b], w)
		}
	}
	// The heat clock fast-forwards past the hottest *effective* stamp.
	idx.mu.Lock()
	clock := idx.clock
	idx.mu.Unlock()
	if clock != 5 {
		t.Errorf("clock = %d, want 5 (hottest decayed stamp)", clock)
	}

	// Without decay configured the logical stamps adopt unchanged — the
	// pre-existing behaviour (and the path old registries without
	// TouchedAt always take).
	plain := New(cluster, Disabled)
	plain.SetClockFunc(func() time.Time { return now })
	plain.AdoptReplicas(reps)
	for _, r := range plain.Replicas() {
		var orig uint64
		for _, in := range reps {
			if in.Block == r.Block {
				orig = in.LastTouch
			}
		}
		if r.LastTouch != orig {
			t.Errorf("no-decay adopt changed block %d stamp: %d != %d", r.Block, r.LastTouch, orig)
		}
	}
}

// TestEvictionDecayFlipsVictimOrder drives the eviction ranking with a
// fake clock: a replica with the hotter logical stamp but a week of
// wall-clock idleness must be retired before a logically-cooler replica
// touched minutes ago — and without decay the order is the old pure-LRU
// one.
func TestEvictionDecayFlipsVictimOrder(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	setup := func(t *testing.T, decay time.Duration) (*Indexer, hdfs.BlockID, hdfs.BlockID) {
		cluster, file := upload(t, 4, 700, []int{0, -1})
		blocks, err := cluster.NameNode().FileBlocks(file)
		if err != nil || len(blocks) < 2 {
			t.Fatalf("blocks: %v err %v", blocks, err)
		}
		idx := New(cluster, Disabled)
		idx.SetClockFunc(func() time.Time { return now })
		idx.SetHeatDecay(decay)
		idx.mu.Lock()
		idx.clock = 20
		// Stale by the wall clock, hot by the logical clock.
		idx.replicas[repID{blocks[0], 5}] = &replicaRecord{
			file: file, col: 5, block: blocks[0], node: 3, charged: 100, added: true,
			lastTouch: 10, touches: 10, touchedAt: now.Add(-9 * time.Hour),
		}
		// Fresh by the wall clock, cooler by the logical clock.
		idx.replicas[repID{blocks[1], 5}] = &replicaRecord{
			file: file, col: 5, block: blocks[1], node: 3, charged: 100, added: true,
			lastTouch: 5, touches: 5, touchedAt: now.Add(-time.Minute),
		}
		idx.extra = 200
		idx.mu.Unlock()
		return idx, blocks[0], blocks[1]
	}
	victimOf := func(t *testing.T, idx *Indexer) hdfs.BlockID {
		t.Helper()
		idx.mu.Lock()
		victims := idx.selectVictimsLocked(planKey{"/t", 9}, 100)
		idx.mu.Unlock()
		if len(victims) != 1 {
			t.Fatalf("selected %d victims, want 1", len(victims))
		}
		return victims[0].block
	}

	t.Run("decay", func(t *testing.T) {
		idx, stale, _ := setup(t, time.Hour)
		// Effective heat: stale 10−9=1, fresh 5−0=5 → the wall-clock-stale
		// replica goes first despite its hotter logical stamp.
		if got := victimOf(t, idx); got != stale {
			t.Fatalf("victim = block %d, want wall-clock-stale block %d", got, stale)
		}
	})
	t.Run("no-decay", func(t *testing.T) {
		idx, _, fresh := setup(t, 0)
		// Pure logical LRU: the lower stamp (5) loses, as before.
		if got := victimOf(t, idx); got != fresh {
			t.Fatalf("victim = block %d, want logically-cooler block %d", got, fresh)
		}
	})
}
