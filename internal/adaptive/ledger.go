package adaptive

import (
	"sort"
	"sync"

	"repro/internal/hdfs"
)

// demandKey identifies one (file, column) index demand stream.
type demandKey struct {
	file string
	col  int
}

// Demand summarizes the recorded index demand for one (file, column):
// how often jobs wanted an index that was missing, over how many distinct
// blocks, and how many of those blocks have since been indexed.
type Demand struct {
	File   string
	Column int
	// Misses is the cumulative number of (job, block) full-scan events
	// caused by the missing index — the signal a future eviction or
	// prioritization policy would rank columns by.
	Misses int
	// Blocks is the number of distinct blocks that ever missed.
	Blocks int
	// Built is the number of those blocks the adaptive indexer has
	// converted so far.
	Built int
}

// Ledger is the per-file index-demand record: every time the split phase
// falls back to a full scan because no replica of a block is indexed on
// the query's filter column, the miss is recorded here. It is the
// persistent "what does the workload want" signal that outlives any
// single job plan.
type Ledger struct {
	mu      sync.Mutex
	demands map[demandKey]*Demand
	blocks  map[demandKey]map[hdfs.BlockID]bool // distinct missing blocks
	built   map[demandKey]map[hdfs.BlockID]bool
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		demands: make(map[demandKey]*Demand),
		blocks:  make(map[demandKey]map[hdfs.BlockID]bool),
		built:   make(map[demandKey]map[hdfs.BlockID]bool),
	}
}

func (l *Ledger) demand(key demandKey) *Demand {
	d, ok := l.demands[key]
	if !ok {
		d = &Demand{File: key.file, Column: key.col}
		l.demands[key] = d
		l.blocks[key] = make(map[hdfs.BlockID]bool)
		l.built[key] = make(map[hdfs.BlockID]bool)
	}
	return d
}

// RecordMiss records that a job wanted block b of file indexed on col and
// had to scan instead.
func (l *Ledger) RecordMiss(file string, b hdfs.BlockID, col int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := demandKey{file, col}
	d := l.demand(key)
	d.Misses++
	if !l.blocks[key][b] {
		l.blocks[key][b] = true
		d.Blocks++
	}
}

// RecordBuilt records that block b of file now has a replica indexed on
// col, satisfying its recorded demand.
func (l *Ledger) RecordBuilt(file string, b hdfs.BlockID, col int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := demandKey{file, col}
	d := l.demand(key)
	if !l.built[key][b] {
		l.built[key][b] = true
		d.Built++
	}
}

// Demand returns the recorded demand for (file, col); ok is false when no
// miss was ever recorded for it.
func (l *Ledger) Demand(file string, col int) (Demand, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.demands[demandKey{file, col}]
	if !ok {
		return Demand{}, false
	}
	return *d, true
}

// Demands lists all recorded demands for a file, hottest (most misses)
// first; ties break on column for determinism.
func (l *Ledger) Demands(file string) []Demand {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Demand
	for key, d := range l.demands {
		if key.file == file {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].Column < out[j].Column
	})
	return out
}
