package adaptive

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/mapred"
	"repro/internal/query"
	"repro/internal/schema"
)

// sortedRows flattens a job result to sorted row strings for equivalence
// checks.
func sortedRows(res *mapred.JobResult) []string {
	rows := make([]string, 0, len(res.Output))
	for _, kv := range res.Output {
		rows = append(rows, kv.Key)
	}
	sort.Strings(rows)
	return rows
}

// referenceRows runs the query without any adaptive machinery.
func referenceRows(t *testing.T, cluster *hdfs.Cluster, file string, q *query.Query) []string {
	t.Helper()
	engine := &mapred.Engine{Cluster: cluster}
	res, err := engine.Run(&mapred.Job{
		Name:  "reference",
		File:  file,
		Input: &core.InputFormat{Cluster: cluster, Query: q},
		Map: func(r mapred.Record, emit mapred.Emit) {
			if !r.Bad {
				emit(r.Row.Line(','), "")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sortedRows(res)
}

func assertSameRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestEvictionReclaimsBudgetOnWorkloadShift is the lifecycle tentpole's
// acceptance test at unit scale: converge on column c, freeze the budget
// at exactly the space those replicas occupy, then shift the workload to
// column d. Without eviction the system would be BudgetDenied forever;
// with it, each d-build retires the coldest c-replicas, every drop is
// unregistered from the directory with a generation bump, and the
// workload converges on d — with results byte-equivalent to non-adaptive
// execution throughout.
func TestEvictionReclaimsBudgetOnWorkloadShift(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1}) // all replicas sorted: builds add replicas
	nn := cluster.NameNode()
	blocks, _ := nn.FileBlocks(file)
	refC := referenceRows(t, cluster, file, cQuery())
	refD := referenceRows(t, cluster, file, dQuery())

	idx := New(cluster, 1.0)

	// Phase 1: converge on c (unbounded budget).
	assertSameRows(t, "phase-c job", sortedRows(runJob(t, cluster, file, idx)), refC)
	if plan := idx.LastJob(); plan.Built != len(blocks) {
		t.Fatalf("phase c built %d blocks, want %d", plan.Built, len(blocks))
	}
	used := idx.ExtraBytes()
	if used == 0 {
		t.Fatal("no extra storage consumed by phase c")
	}

	// Freeze the budget at the current consumption: nothing new fits
	// without retiring something first.
	idx.SetBudgetBytes(used + 16)
	idx.SetEvict(true)

	gensBefore := make(map[hdfs.BlockID]uint64)
	for _, b := range blocks {
		gensBefore[b] = nn.Generation(b)
	}

	// Phase 2: the workload shifts to d. Builds must evict c-replicas.
	assertSameRows(t, "phase-d job 1", sortedRows(runQueryJob(t, cluster, file, idx, dQuery())), refD)
	plan := idx.LastJob()
	if plan.Column != 3 {
		t.Fatalf("phase d plan column = %d, want 3", plan.Column)
	}
	if plan.Built == 0 || plan.Evicted == 0 {
		t.Fatalf("phase d plan = %+v, want builds funded by evictions", plan)
	}
	if plan.BudgetDenied != 0 || plan.Failed != 0 {
		t.Fatalf("phase d plan = %+v, want no denials or failures with eviction on", plan)
	}
	// Every eviction unregistered the replica and bumped the generation.
	// The freed node may legitimately host a new column-3 replica of the
	// same block later in the job, so the check is column-precise.
	for _, ev := range plan.EvictedReplicas {
		if ev.Column != 2 {
			t.Errorf("evicted a column-%d replica, want only cold column-2 victims", ev.Column)
		}
		if info, ok := nn.ReplicaInfo(ev.Block, ev.Node); ok && info.HasIndex && info.SortColumn == ev.Column {
			t.Errorf("evicted replica (%d,%d,col %d) still registered", ev.Block, ev.Node, ev.Column)
		}
		if g := nn.Generation(ev.Block); g <= gensBefore[ev.Block] {
			t.Errorf("block %d generation %d not bumped by eviction (was %d)", ev.Block, g, gensBefore[ev.Block])
		}
	}
	// The budget holds: eviction reclaims, it does not overshoot.
	if extra := idx.ExtraBytes(); extra > idx.BudgetBytes() {
		t.Errorf("extra storage %d exceeds budget %d despite eviction", extra, idx.BudgetBytes())
	}

	// Phase 2 continues to full convergence on d.
	assertSameRows(t, "phase-d job 2", sortedRows(runQueryJob(t, cluster, file, idx, dQuery())), refD)
	plan = idx.LastJob()
	if plan.Missing != 0 || plan.Indexed != len(blocks) {
		t.Fatalf("phase d did not converge: %+v", plan)
	}
	// The registry now tracks d-replicas (c's were retired as needed).
	for _, r := range idx.Replicas() {
		if r.Column != 2 && r.Column != 3 {
			t.Errorf("unexpected registry column %d", r.Column)
		}
	}
}

// TestBudgetDeniedForeverWithoutEviction pins the pre-eviction behaviour
// the lifecycle manager exists to fix (and that SetEvict(false) must
// preserve): once the budget is consumed by a stale column, a shifted
// workload is denied every build, forever.
func TestBudgetDeniedForeverWithoutEviction(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1})
	refD := referenceRows(t, cluster, file, dQuery())
	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx) // converge on c
	// Freeze the budget at (not above) the consumed bytes: the historical
	// overshoot-by-one allowance applies only while extra is still under
	// the cap.
	idx.SetBudgetBytes(idx.ExtraBytes())

	for j := 0; j < 2; j++ {
		assertSameRows(t, "denied job", sortedRows(runQueryJob(t, cluster, file, idx, dQuery())), refD)
		plan := idx.LastJob()
		if plan.Built != 0 || plan.Evicted != 0 {
			t.Fatalf("job %d plan = %+v, want nothing built or evicted without -adaptive-evict", j+1, plan)
		}
		if plan.BudgetDenied == 0 {
			t.Fatalf("job %d plan = %+v, want offers denied at the exhausted budget", j+1, plan)
		}
	}
}

// TestEvictionPrefersDeadNodeOrphans: an adaptive replica stranded on a
// dead node serves nobody — the eviction policy must retire it before any
// replica the workload can still read.
func TestEvictionPrefersDeadNodeOrphans(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1})
	nn := cluster.NameNode()
	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx) // converge on c

	// Strand one c-replica on a dead node.
	var orphanNode hdfs.NodeID = -1
	var orphanBlock hdfs.BlockID
	for _, r := range idx.Replicas() {
		orphanNode, orphanBlock = r.Node, r.Block
		break
	}
	if orphanNode == -1 {
		t.Fatal("no adaptive replicas registered")
	}
	if err := cluster.KillNode(orphanNode); err != nil {
		t.Fatal(err)
	}

	idx.SetBudgetBytes(idx.ExtraBytes() + 16)
	idx.SetEvict(true)
	runQueryJob(t, cluster, file, idx, dQuery())
	plan := idx.LastJob()
	if plan.Built == 0 || plan.Evicted == 0 {
		t.Fatalf("plan = %+v, want evictions funding builds", plan)
	}
	first := plan.EvictedReplicas[0]
	if first.Node != orphanNode {
		t.Errorf("first eviction was (%d,%d), want the dead-node orphan (%d,%d)",
			first.Block, first.Node, orphanBlock, orphanNode)
	}
	if _, ok := nn.ReplicaInfo(first.Block, first.Node); ok {
		t.Error("dead-node orphan still registered after eviction")
	}
}

// TestConcurrentJobsKeepPerColumnPlans is the satellite-1 -race
// regression: two engines sharing one Indexer run overlapping jobs on
// different columns. Before the per-(file,column) keying, the second
// ObserveJob wiped the first job's in-flight offers and its JobPlan
// counters; now each stream's accounting must balance on its own.
func TestConcurrentJobsKeepPerColumnPlans(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1})
	refC := referenceRows(t, cluster, file, cQuery())
	refD := referenceRows(t, cluster, file, dQuery())
	idx := New(cluster, 1.0)

	var wg sync.WaitGroup
	results := make([]*mapred.JobResult, 2)
	errs := make([]error, 2)
	queries := []*query.Query{cQuery(), dQuery()}
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			engine := &mapred.Engine{Cluster: cluster, PostTask: idx.AfterTask, Parallelism: 4}
			results[n], errs[n] = engine.Run(&mapred.Job{
				Name:  "overlap",
				File:  file,
				Input: &core.InputFormat{Cluster: cluster, Query: queries[n], Adaptive: idx},
				Map: func(r mapred.Record, emit mapred.Emit) {
					if !r.Bad {
						emit(r.Row.Line(','), "")
					}
				},
			})
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", n, err)
		}
	}
	if err := idx.LastErr(); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "overlapping c job", sortedRows(results[0]), refC)
	assertSameRows(t, "overlapping d job", sortedRows(results[1]), refD)

	for _, col := range []int{2, 3} {
		plan, ok := idx.Plan(file, col)
		if !ok {
			t.Fatalf("no plan recorded for column %d", col)
		}
		if got := plan.Built + plan.Skipped + plan.Failed + plan.BudgetDenied; got != plan.Offered {
			t.Errorf("column %d: Built+Skipped+Failed+BudgetDenied = %d, want Offered = %d (plan %+v)",
				col, got, plan.Offered, plan)
		}
		if plan.Failed != 0 {
			t.Errorf("column %d: %d failed builds in a benign overlap (%+v)", col, plan.Failed, plan)
		}
		if plan.Built == 0 {
			t.Errorf("column %d: nothing built — the overlapping job dropped its offers", col)
		}
	}
}

// TestCollisionRepicksFreeNode is the satellite-2 regression: ghost bytes
// on a revived node (the directory no longer lists them) collide with a
// build's StoreAdditionalReplica. The collision is a benign placement
// race: the build must re-pick another free node — or skip cleanly when
// none is left — never count Failed or surface an error.
func TestCollisionRepicksFreeNode(t *testing.T) {
	// One block on 2 of 4 nodes: two free nodes for the adaptive replica.
	cluster, file := upload(t, 4, 400, []int{0, 1})
	nn := cluster.NameNode()
	blocks, _ := nn.FileBlocks(file)
	if len(blocks) != 4 {
		// upload sizes blocks so the file spans ~4 blocks; the test only
		// needs "some" blocks, but pin the ghost on block 0's pick.
		t.Logf("file spans %d blocks", len(blocks))
	}
	b := blocks[0]

	// Plant ghost bytes on the free node pickFreeNode would choose for b:
	// register a replica there, drop it while the node is dead (bytes
	// linger), revive.
	idxProbe := New(cluster, 1.0)
	ghost, ok := idxProbe.pickFreeNode(b, nil)
	if !ok {
		t.Fatal("no free node for the ghost")
	}
	data, _, err := cluster.ReadBlockAny(b, ghost)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.StoreAdditionalReplica(b, ghost, data, hdfs.ReplicaInfo{SortColumn: -1}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.KillNode(ghost); err != nil {
		t.Fatal(err)
	}
	if err := cluster.DropReplica(b, ghost); err != nil {
		t.Fatal(err)
	}
	if err := cluster.ReviveNode(ghost); err != nil {
		t.Fatal(err)
	}

	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx)
	plan := idx.LastJob()
	if plan.Failed != 0 {
		t.Fatalf("plan = %+v: ghost-byte collision counted as Failed", plan)
	}
	if err := idx.LastErr(); err != nil {
		t.Fatalf("collision surfaced as an error: %v", err)
	}
	if plan.Built != len(blocks) {
		t.Fatalf("plan = %+v, want all %d blocks built (collision re-picked)", plan, len(blocks))
	}
	// The colliding block's adaptive replica landed on a node that is not
	// the ghost.
	for _, h := range nn.GetHostsWithIndex(b, 2) {
		if h == ghost {
			t.Errorf("adaptive replica registered on the ghost node %d", ghost)
		}
	}
}

// TestCollisionSkipsWhenNoNodeLeft: with ghosts on every free node, the
// collision degrades to Skipped — the capacity outcome — not Failed.
func TestCollisionSkipsWhenNoNodeLeft(t *testing.T) {
	cluster, file := upload(t, 3, 400, []int{0, 1}) // replication 2 of 3: one free node per block
	nn := cluster.NameNode()
	blocks, _ := nn.FileBlocks(file)

	// Ghost every block's single free node.
	probe := New(cluster, 1.0)
	type ghostRep struct {
		b hdfs.BlockID
		n hdfs.NodeID
	}
	var ghosts []ghostRep
	for _, b := range blocks {
		n, ok := probe.pickFreeNode(b, nil)
		if !ok {
			t.Fatalf("block %d has no free node", b)
		}
		data, _, err := cluster.ReadBlockAny(b, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.StoreAdditionalReplica(b, n, data, hdfs.ReplicaInfo{SortColumn: -1}); err != nil {
			t.Fatal(err)
		}
		ghosts = append(ghosts, ghostRep{b, n})
	}
	for n := 0; n < cluster.NumNodes(); n++ {
		if err := cluster.KillNode(hdfs.NodeID(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range ghosts {
		if err := cluster.DropReplica(g.b, g.n); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < cluster.NumNodes(); n++ {
		if err := cluster.ReviveNode(hdfs.NodeID(n)); err != nil {
			t.Fatal(err)
		}
	}

	idx := New(cluster, 1.0)
	res := runQueryJob(t, cluster, file, idx, cQuery())
	plan := idx.LastJob()
	if plan.Failed != 0 {
		t.Fatalf("plan = %+v: full-cluster collision counted as Failed", plan)
	}
	if plan.Skipped != len(blocks) || plan.Built != 0 {
		t.Fatalf("plan = %+v, want all %d offered blocks skipped", plan, len(blocks))
	}
	if len(res.Output) == 0 {
		t.Error("query returned no rows")
	}
}

// TestHeatTracksIndexScanTouches: the heat registry must record a touch
// for every job whose split phase index-scans an adaptive replica — the
// signal eviction ranks by.
func TestHeatTracksIndexScanTouches(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1})
	idx := New(cluster, 1.0)
	runJob(t, cluster, file, idx) // builds everything: touch 1
	runJob(t, cluster, file, idx) // all index scans: touch 2
	runJob(t, cluster, file, idx) // touch 3
	reps := idx.Replicas()
	if len(reps) == 0 {
		t.Fatal("no replicas in the registry")
	}
	for _, r := range reps {
		if r.Touches != 3 {
			t.Errorf("replica (%d,col %d): %d touches, want 3 (build + two index-scan jobs)", r.Block, r.Column, r.Touches)
		}
		if r.LastTouch == 0 {
			t.Errorf("replica (%d,col %d): zero LastTouch clock", r.Block, r.Column)
		}
		if !r.Added {
			t.Errorf("replica (%d,col %d): expected an added replica on this all-sorted layout", r.Block, r.Column)
		}
	}
	// A d-job does not touch c's replicas.
	runQueryJob(t, cluster, file, idx, dQuery())
	for _, r := range idx.Replicas() {
		if r.Column == 2 && r.Touches != 3 {
			t.Errorf("c-replica (%d): touches rose to %d on a d-job", r.Block, r.Touches)
		}
	}
}

// TestEvictionNeverDropsLastReadableReplica: when a block's original
// replicas are all dead and its only alive copies are two adaptive
// replicas (different columns), a build whose budget shortfall could
// only be covered by evicting BOTH must be denied instead — the victim
// guard counts replicas already selected for dropping as gone, so two
// victims of one block can never be selected against each other.
func TestEvictionNeverDropsLastReadableReplica(t *testing.T) {
	// One block on 2 of 6 nodes (both replicas sorted on a).
	cluster, err := hdfs.NewCluster(6)
	if err != nil {
		t.Fatal(err)
	}
	lines := testLines(400)
	client := &core.Client{
		Cluster: cluster,
		Config: core.LayoutConfig{
			Schema:      testSchema,
			SortColumns: []int{0, 0},
			BlockSize:   1 << 20, // everything in one block
		},
	}
	if _, err := client.Upload("/t", lines); err != nil {
		t.Fatal(err)
	}
	file := "/t"
	nn := cluster.NameNode()
	blocks, _ := nn.FileBlocks(file)
	if len(blocks) != 1 {
		t.Fatalf("fixture spans %d blocks, want 1", len(blocks))
	}
	b := blocks[0]
	originals := append([]hdfs.NodeID(nil), nn.GetHosts(b)...)

	idx := New(cluster, 1.0)
	runQueryJob(t, cluster, file, idx, cQuery()) // adaptive replica on col 2
	runQueryJob(t, cluster, file, idx, dQuery()) // adaptive replica on col 3
	if got := len(idx.Replicas()); got != 2 {
		t.Fatalf("registry has %d replicas, want 2", got)
	}

	// Kill the original holders: the two adaptive replicas are now the
	// block's only readable copies.
	for _, n := range originals {
		if err := cluster.KillNode(n); err != nil {
			t.Fatal(err)
		}
	}

	// A column-1 build now needs ~two replicas' worth of budget: only
	// both adaptive replicas together could fund it — which must never
	// be allowed.
	perReplica := idx.ExtraBytes() / 2
	idx.SetBudgetBytes(perReplica)
	idx.SetEvict(true)
	bQ := &query.Query{
		Filter:     []query.Predicate{query.Between(1, schema.StringVal("word-0"), schema.StringVal("word-3"))},
		Projection: []int{0, 1},
	}
	res := runQueryJob(t, cluster, file, idx, bQ)
	if len(res.Output) == 0 {
		t.Fatal("column-1 query returned no rows")
	}
	plan := idx.LastJob()
	if plan.Built != 0 || plan.Evicted != 0 {
		t.Fatalf("plan = %+v: the build was funded by dropping the block's last readable replicas", plan)
	}
	if plan.BudgetDenied == 0 {
		t.Fatalf("plan = %+v, want the un-fundable build denied", plan)
	}
	alive := 0
	for _, h := range nn.GetHosts(b) {
		if dn, err := cluster.DataNode(h); err == nil && dn.Alive() {
			alive++
		}
	}
	if alive == 0 {
		t.Fatal("block lost every readable replica to eviction")
	}
	// The block is still answerable.
	if _, _, err := cluster.ReadBlockAny(b, 0); err != nil {
		t.Fatalf("block unreadable after the denied build: %v", err)
	}
}

// TestStalePendingOffersExpire: offers from a job that died before its
// tasks completed must not fire builds for the abandoned column after
// the workload has long moved on — pending entries age out after
// pendingTTL job ticks.
func TestStalePendingOffersExpire(t *testing.T) {
	cluster, file := upload(t, 8, 2000, []int{0, 1})
	idx := New(cluster, 1.0)
	blocks, _ := cluster.NameNode().FileBlocks(file)

	// A col-2 job offers every block, then dies: no task ever reaches
	// AfterTask.
	idx.ObserveJob(file, 2, nil, blocks)

	// The workload shifts to col 3 for more than pendingTTL jobs.
	for j := 0; j < pendingTTL+1; j++ {
		idx.ObserveJob(file, 3, nil, blocks)
	}

	// A task finally covers the blocks: only col-3 builds may fire.
	idx.AfterTask(mapred.TaskReport{Split: mapred.Split{Blocks: blocks}, Node: 0})
	if err := idx.StreamErr(file, 3); err != nil {
		t.Fatal(err)
	}
	if p, ok := idx.Plan(file, 2); !ok || p.Built != 0 {
		t.Errorf("abandoned col-2 stream built %d blocks after %d silent ticks, want 0", p.Built, pendingTTL+1)
	}
	if p, ok := idx.Plan(file, 3); !ok || p.Built != len(blocks) {
		t.Errorf("current col-3 stream built %d blocks, want %d", p.Built, len(blocks))
	}
	for _, r := range idx.Replicas() {
		if r.Column == 2 {
			t.Errorf("registry holds a col-2 replica (block %d) built from an expired offer", r.Block)
		}
	}
}
