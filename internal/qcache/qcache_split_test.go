package qcache

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

func splitKey(blocks []hdfs.BlockID, gens []uint64, rep hdfs.NodeID) (mapred.SplitCacheKey, []hdfs.BlockID) {
	parts := make([]string, len(blocks))
	for i, b := range blocks {
		parts[i] = fmt.Sprintf("%d:%d", b, gens[i])
	}
	return mapred.SplitCacheKey{
		File: "/f", BlockSig: strings.Join(parts, ","),
		Query: "q", MapSig: "m", Replica: rep,
	}, blocks
}

func splitKVs(n int) []mapred.KV {
	out := make([]mapred.KV, n)
	for i := range out {
		out[i] = mapred.KV{Key: fmt.Sprintf("k%d", i), Value: "v"}
	}
	return out
}

func TestSplitCacheRoundTrip(t *testing.T) {
	c := New(1 << 20)
	k, blocks := splitKey([]hdfs.BlockID{1, 2, 3}, []uint64{0, 0, 0}, 4)
	if _, _, ok := c.GetSplit(k); ok {
		t.Fatal("hit on empty cache")
	}
	kvs := splitKVs(5)
	c.PutSplit(k, blocks, kvs, mapred.TaskStats{Blocks: 3, BytesRead: 99})
	got, stats, ok := c.GetSplit(k)
	if !ok || len(got) != 5 || stats.BytesRead != 99 {
		t.Fatalf("GetSplit = %v, %+v, %v", got, stats, ok)
	}
	st := c.Stats()
	if st.SplitPuts != 1 || st.SplitHits != 1 || st.SplitMisses != 1 || st.SplitEntries != 1 {
		t.Errorf("split counters: %+v", st)
	}
	if st.BytesSaved != 99 {
		t.Errorf("BytesSaved = %d, want 99", st.BytesSaved)
	}
	if st.Bytes == 0 {
		t.Error("split entry bytes not charged against occupancy")
	}

	// A different generation of any member block is a different key.
	k2, _ := splitKey([]hdfs.BlockID{1, 2, 3}, []uint64{0, 1, 0}, 4)
	if _, _, ok := c.GetSplit(k2); ok {
		t.Error("generation change did not miss")
	}
}

// TestSplitCacheInvalidateMemberBlock: invalidating any member block
// purges the packed-split entry, whatever shard the block hashes to.
func TestSplitCacheInvalidateMemberBlock(t *testing.T) {
	for _, member := range []hdfs.BlockID{7, 8, 9} {
		c := New(1 << 20)
		k, blocks := splitKey([]hdfs.BlockID{7, 8, 9}, []uint64{0, 0, 0}, 1)
		c.PutSplit(k, blocks, splitKVs(3), mapred.TaskStats{})
		c.InvalidateBlock(member)
		if _, _, ok := c.GetSplit(k); ok {
			t.Errorf("entry survived invalidation of member block %d", member)
		}
		if st := c.Stats(); st.SplitEntries != 0 || st.Bytes != 0 {
			t.Errorf("member %d: occupancy not reclaimed: %+v", member, st)
		}
	}
}

// TestSplitCacheBudgetEviction: split entries participate in the shared
// byte budget and are evicted before protected per-block entries.
func TestSplitCacheBudgetEviction(t *testing.T) {
	c := New(minBudget)
	// A protected per-block entry (hit once to promote).
	bk := mapred.CacheKey{File: "/f", Block: 1, Query: "q", MapSig: "m"}
	c.Put(bk, splitKVs(2), mapred.TaskStats{})
	c.Get(bk)
	// Fill with split entries until the budget forces eviction.
	for i := 0; i < 64; i++ {
		k, blocks := splitKey([]hdfs.BlockID{hdfs.BlockID(10 + 2*i), hdfs.BlockID(11 + 2*i)}, []uint64{0, 0}, 1)
		c.PutSplit(k, blocks, splitKVs(20), mapred.TaskStats{})
	}
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Errorf("occupancy %d exceeds budget %d", st.Bytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under budget pressure")
	}
	if _, _, ok := c.Get(bk); !ok {
		t.Error("protected per-block entry evicted before split entries")
	}
}

// TestCachedReplicaProbe: the split phase's packing probe finds resident
// per-block entries by (file, block, generation, query, map identity) and
// reports the replica deterministically (lowest node ID).
func TestCachedReplicaProbe(t *testing.T) {
	c := New(1 << 20)
	put := func(b hdfs.BlockID, gen uint64, rep hdfs.NodeID) {
		c.Put(mapred.CacheKey{File: "/f", Block: b, Gen: gen, Query: "q", MapSig: "m", Replica: rep},
			splitKVs(1), mapred.TaskStats{})
	}
	put(5, 3, 2)
	put(5, 3, 1)
	put(5, 2, 0) // stale generation
	if n, ok := c.CachedReplica("/f", 5, 3, "q", "m"); !ok || n != 1 {
		t.Errorf("CachedReplica = %d, %v; want 1, true", n, ok)
	}
	if _, ok := c.CachedReplica("/f", 5, 4, "q", "m"); ok {
		t.Error("probe hit at a generation never admitted")
	}
	if _, ok := c.CachedReplica("/f", 6, 3, "q", "m"); ok {
		t.Error("probe hit for a block never admitted")
	}
	if _, ok := c.CachedReplica("/f", 5, 3, "other", "m"); ok {
		t.Error("probe ignored the query signature")
	}
}
