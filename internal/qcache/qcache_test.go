package qcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

func key(b int, gen uint64) mapred.CacheKey {
	return mapred.CacheKey{
		File: "/f", Block: hdfs.BlockID(b), Gen: gen,
		Query: "f{@9[100..199]}|p{@1}", MapSig: "test", Replica: 0,
	}
}

func kvs(n int, tag string) []mapred.KV {
	out := make([]mapred.KV, n)
	for i := range out {
		out[i] = mapred.KV{Key: fmt.Sprintf("%s-%d", tag, i), Value: "v"}
	}
	return out
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	want := kvs(10, "a")
	c.Put(key(1, 1), want, mapred.TaskStats{BytesRead: 1000})
	got, stats, ok := c.Get(key(1, 1))
	if !ok {
		t.Fatal("miss after put")
	}
	if len(got) != len(want) || got[0] != want[0] || got[9] != want[9] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if stats.BytesRead != 1000 {
		t.Errorf("stats not preserved: %+v", stats)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 put / 1 entry", st)
	}
	if st.BytesSaved != 1000 {
		t.Errorf("BytesSaved = %d, want 1000", st.BytesSaved)
	}
}

func TestKeyComponentsSeparateEntries(t *testing.T) {
	c := New(1 << 20)
	base := key(1, 1)
	c.Put(base, kvs(1, "base"), mapred.TaskStats{})
	variants := []mapred.CacheKey{
		{File: "/g", Block: base.Block, Gen: base.Gen, Query: base.Query, MapSig: base.MapSig, Replica: base.Replica},
		{File: base.File, Block: 2, Gen: base.Gen, Query: base.Query, MapSig: base.MapSig, Replica: base.Replica},
		{File: base.File, Block: base.Block, Gen: 2, Query: base.Query, MapSig: base.MapSig, Replica: base.Replica},
		{File: base.File, Block: base.Block, Gen: base.Gen, Query: "f{}|p{*}", MapSig: base.MapSig, Replica: base.Replica},
		{File: base.File, Block: base.Block, Gen: base.Gen, Query: base.Query, MapSig: "other", Replica: base.Replica},
		{File: base.File, Block: base.Block, Gen: base.Gen, Query: base.Query, MapSig: base.MapSig, Replica: 1},
	}
	for i, k := range variants {
		if _, _, ok := c.Get(k); ok {
			t.Errorf("variant %d unexpectedly hit: %+v", i, k)
		}
	}
	if _, _, ok := c.Get(base); !ok {
		t.Error("exact key must still hit")
	}
}

func TestGenerationChangeMisses(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(7, 3), kvs(4, "g3"), mapred.TaskStats{})
	if _, _, ok := c.Get(key(7, 4)); ok {
		t.Fatal("bumped generation must miss")
	}
	if _, _, ok := c.Get(key(7, 3)); !ok {
		t.Fatal("old generation entry should still be resident until purged")
	}
	c.InvalidateBlock(7)
	if _, _, ok := c.Get(key(7, 3)); ok {
		t.Fatal("invalidated entry served")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after invalidation: %+v", st)
	}
}

func TestInvalidateBlockPurgesAllGenerationsAndQueries(t *testing.T) {
	c := New(1 << 20)
	for gen := uint64(1); gen <= 3; gen++ {
		k := key(5, gen)
		c.Put(k, kvs(2, "x"), mapred.TaskStats{})
		k.Query = "f{}|p{*}"
		c.Put(k, kvs(2, "y"), mapred.TaskStats{})
	}
	c.Put(key(6, 1), kvs(2, "other-block"), mapred.TaskStats{})
	c.InvalidateBlock(5)
	st := c.Stats()
	if st.Invalidations != 6 {
		t.Errorf("invalidations = %d, want 6", st.Invalidations)
	}
	if _, _, ok := c.Get(key(6, 1)); !ok {
		t.Error("unrelated block purged")
	}
}

func TestBudgetEviction2Q(t *testing.T) {
	// Room for ~3 entries (payloads sized so 3 × entry ≥ the budget
	// floor). All keys land in one shard (block IDs ≡ 0 mod numShards).
	payload := kvs(300, "p")
	one := entryBytes(key(0, 1), payload)
	c := New(3 * one)

	put := func(b int) { c.Put(key(b*numShards, 1), payload, mapred.TaskStats{}) }
	get := func(b int) bool { _, _, ok := c.Get(key(b*numShards, 1)); return ok }

	put(1)
	put(2)
	if !get(1) { // promote 1 to protected
		t.Fatal("warm entry missing")
	}
	put(3)
	put(4) // over budget: evicts from probation (oldest first), never protected 1
	if !get(1) {
		t.Error("protected entry evicted while probation entries remained")
	}
	if get(2) {
		t.Error("probationary FIFO tail survived eviction")
	}
	if !get(4) {
		t.Error("just-admitted entry was chosen as its own eviction victim")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if st.Bytes > c.budget {
		t.Errorf("cache over budget: %d > %d", st.Bytes, c.budget)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(1) // floored to minBudget
	huge := kvs(2000, "hugepayload")
	if entryBytes(key(0, 1), huge) <= c.budget {
		t.Fatal("test payload no longer exceeds the floored budget")
	}
	c.Put(key(0, 1), huge, mapred.TaskStats{})
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Errorf("oversized entry not rejected: %+v", st)
	}
}

// TestLargeEntryFitsGlobalBudget: an entry bigger than budget/numShards
// must still be admissible — the budget is global, not per shard.
func TestLargeEntryFitsGlobalBudget(t *testing.T) {
	c := New(minBudget)
	big := kvs(500, "big") // ≈ 19 KB: over minBudget/16, under minBudget
	cost := entryBytes(key(3, 1), big)
	if cost >= c.budget || cost <= c.budget/numShards {
		t.Fatalf("test payload %d outside (budget/shards, budget) = (%d, %d)", cost, c.budget/numShards, c.budget)
	}
	c.Put(key(3, 1), big, mapred.TaskStats{})
	if _, _, ok := c.Get(key(3, 1)); !ok {
		t.Fatal("entry within the total budget rejected")
	}
	if st := c.Stats(); st.Rejected != 0 {
		t.Errorf("rejected: %+v", st)
	}
}

func TestRePutReplaces(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(1, 1), kvs(5, "old"), mapred.TaskStats{})
	c.Put(key(1, 1), kvs(5, "new"), mapred.TaskStats{})
	got, _, ok := c.Get(key(1, 1))
	if !ok || got[0].Key != "new-0" {
		t.Fatalf("re-put did not replace: %v", got)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("duplicate entries after re-put: %+v", st)
	}
}

func TestPutCopiesInput(t *testing.T) {
	c := New(1 << 20)
	in := kvs(3, "a")
	c.Put(key(1, 1), in, mapred.TaskStats{})
	in[0] = mapred.KV{Key: "mutated", Value: "!"}
	got, _, _ := c.Get(key(1, 1))
	if got[0].Key != "a-0" {
		t.Error("cache shares the caller's backing array")
	}
}

// TestConcurrentGetPutInvalidate is the -race stress test the issue asks
// for: many goroutines hammer overlapping blocks with Get, Put,
// InvalidateBlock and Stats. Correctness here is "no race, no panic, and
// every hit returns an intact entry".
func TestConcurrentGetPutInvalidate(t *testing.T) {
	c := New(256 << 10)
	const (
		workers = 8
		blocks  = 40
		ops     = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				b := rng.Intn(blocks)
				gen := uint64(rng.Intn(3))
				switch rng.Intn(10) {
				case 0:
					c.InvalidateBlock(hdfs.BlockID(b))
				case 1:
					_ = c.Stats()
				case 2, 3, 4:
					c.Put(key(b, gen), kvs(1+rng.Intn(20), "w"), mapred.TaskStats{BytesRead: int64(b)})
				default:
					if got, _, ok := c.Get(key(b, gen)); ok {
						if len(got) == 0 || got[0].Value != "v" {
							t.Errorf("hit returned corrupt entry: %v", got)
							return
						}
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Entries < 0 {
		t.Errorf("negative occupancy after stress: %+v", st)
	}
	if st.Bytes > c.budget {
		t.Errorf("cache over budget after stress: %d > %d", st.Bytes, c.budget)
	}
}

// TestTinyBudgetFloor: an explicit budget below the per-shard floor is
// raised so small entries are still cacheable (heavy eviction, not a
// silent no-op cache).
func TestTinyBudgetFloor(t *testing.T) {
	c := New(1024)
	if c.Stats().Budget < minBudget {
		t.Fatalf("budget %d below floor", c.Stats().Budget)
	}
	c.Put(key(1, 1), kvs(3, "small"), mapred.TaskStats{})
	if _, _, ok := c.Get(key(1, 1)); !ok {
		t.Error("small entry rejected under the floored budget")
	}
	if st := c.Stats(); st.Rejected != 0 {
		t.Errorf("rejected %d small entries: %+v", st.Rejected, st)
	}
}

// TestBlockEntriesAndInvalidation: BlockEntries must see both
// granularities an entry can live at, and InvalidateBlock — the
// replica-drop purge path — must clear both.
func TestBlockEntriesAndInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(1, 1), kvs(3, "a"), mapred.TaskStats{})
	c.Put(key(1, 2), kvs(3, "b"), mapred.TaskStats{}) // second generation, same block
	sk := mapred.SplitCacheKey{File: "/f", BlockSig: "1:2,2:1", Query: "q", MapSig: "m", Replica: 0}
	c.PutSplit(sk, []hdfs.BlockID{1, 2}, kvs(4, "s"), mapred.TaskStats{})

	if be, se := c.BlockEntries(1); be != 2 || se != 1 {
		t.Fatalf("BlockEntries(1) = (%d,%d), want (2,1)", be, se)
	}
	if be, se := c.BlockEntries(2); be != 0 || se != 1 {
		t.Fatalf("BlockEntries(2) = (%d,%d), want (0,1)", be, se)
	}
	c.InvalidateBlock(1)
	if be, se := c.BlockEntries(1); be != 0 || se != 0 {
		t.Errorf("BlockEntries(1) = (%d,%d) after invalidation, want (0,0)", be, se)
	}
	// The split entry was a member of block 2 as well: invalidating
	// block 1 must have purged it everywhere.
	if be, se := c.BlockEntries(2); be != 0 || se != 0 {
		t.Errorf("BlockEntries(2) = (%d,%d) after member invalidation, want (0,0)", be, se)
	}
	if st := c.Stats(); st.Invalidations != 3 {
		t.Errorf("Invalidations = %d, want 3 (two block entries + one split entry)", st.Invalidations)
	}
}
