// Package qcache is a block-level query result cache: it remembers, per
// (file, block, replica generation, normalized query, map identity,
// replica), the KV output a map task produced over that block, so a
// repeated job replays the output instead of re-reading the block and
// re-running the record reader and map function over it. HAIL's workloads
// are exactly the shape this pays off for — the adaptive experiment's job
// sequence repeats one selection until the file converges — and the
// data-skipping literature (PAPERS.md, "Provenance-based Data Skipping")
// frames the same idea as not re-touching data a prior query already
// answered over.
//
// Correctness rests on the replica generation baked into every key
// (hdfs.NameNode.Generation): adaptive re-indexing, node-loss healing and
// node revival all bump it, making stale entries unreachable. Nothing in
// a key records how the map output was computed: the vectorized batch
// pipeline and the legacy row path emit byte-identical KV streams for the
// same (query, map identity), so entries produced by one execution path
// replay correctly into jobs running the other. On top of
// that, the cache's InvalidateBlock can be registered as the namenode's
// replica-change hook to actively purge the block's entries, so the
// budget is not squatted by garbage.
//
// The cache is sharded by block ID — Get/Put/Invalidate for one block
// touch exactly one shard's mutex — with one byte budget enforced across
// all shards (an entry may be as large as the whole budget) and 2Q-style
// eviction: new entries enter a per-shard probationary FIFO and are
// promoted to a protected LRU on their first hit; eviction drains
// probationary entries everywhere before touching any protected one, so
// a one-off scan of a huge file cannot flush the entries a repeating
// workload actually re-uses.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

// DefaultBudget is the byte budget used when New is given a non-positive
// one: 64 MiB, a few blocks' worth of selective query output.
const DefaultBudget = 64 << 20

// numShards is the shard count. Block IDs are assigned sequentially, so
// modulo sharding spreads a file's blocks evenly.
const numShards = 16

// entryOverhead approximates the per-entry bookkeeping bytes (key
// strings are accounted separately) charged against the budget.
const entryOverhead = 96

// minBudget is the floor the total budget is clamped to: below it even a
// handful of single-row entries would thrash and a tiny explicit budget
// would silently cache almost nothing.
const minBudget = numShards * 2048

// kvOverhead approximates the per-KV slice/header bytes beyond the string
// payloads.
const kvOverhead = 32

// Stats is a point-in-time snapshot of the cache's counters. Counters are
// cumulative; Bytes and Entries are current occupancy. Sub yields per-job
// deltas.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64 // entries purged by InvalidateBlock
	Rejected      int64 // entries larger than the whole budget
	// Split-level counters: packed-split entries admitted and served
	// (GetSplit/PutSplit), counted separately from the per-block numbers.
	SplitHits   int64
	SplitMisses int64
	SplitPuts   int64
	// BytesSaved accumulates the data + index bytes hits avoided
	// re-reading (from the stats recorded at admission).
	BytesSaved int64
	Bytes      int64 // resident entry bytes
	Entries    int
	// SplitEntries is the resident packed-split entry count (their bytes
	// are included in Bytes).
	SplitEntries int
	Budget       int64 // configured byte budget
}

// Sub returns the counter deltas s − prev; occupancy fields (Bytes,
// Entries, Budget) keep s's current values.
func (s Stats) Sub(prev Stats) Stats {
	s.Hits -= prev.Hits
	s.Misses -= prev.Misses
	s.Puts -= prev.Puts
	s.Evictions -= prev.Evictions
	s.Invalidations -= prev.Invalidations
	s.Rejected -= prev.Rejected
	s.SplitHits -= prev.SplitHits
	s.SplitMisses -= prev.SplitMisses
	s.SplitPuts -= prev.SplitPuts
	s.BytesSaved -= prev.BytesSaved
	return s
}

type entry struct {
	key       mapred.CacheKey
	kvs       []mapred.KV
	stats     mapred.TaskStats
	bytes     int64
	elem      *list.Element
	protected bool
}

type shard struct {
	mu      sync.Mutex
	bytes   int64
	entries map[mapred.CacheKey]*entry
	byBlock map[hdfs.BlockID]map[*entry]struct{}
	// 2Q queues: probation is a FIFO of once-seen entries, protected an
	// LRU of entries that have hit at least once. Eviction drains
	// probation first.
	probation *list.List
	protected *list.List
}

// splitEntry is one packed split's cached output (mapred.SplitCache).
// Split entries live in a single store beside the per-block shards: packed
// splits are few (SplitsPerNode × nodes per job), so one mutex suffices,
// and the store needs a cross-block view anyway — InvalidateBlock must
// find every split entry a block participates in, whatever shard the
// block itself hashes to.
type splitEntry struct {
	key    mapred.SplitCacheKey
	blocks []hdfs.BlockID
	kvs    []mapred.KV
	stats  mapred.TaskStats
	bytes  int64
	elem   *list.Element
}

// Cache is a sharded, concurrency-safe block-level result cache
// implementing mapred.ResultCache, with split-level admission for packed
// splits (mapred.SplitCache) on top.
type Cache struct {
	budget int64
	shards [numShards]shard
	// bytes is the resident total across shards and the split store; Put
	// enforces the budget against it, evicting round-robin across shards
	// (probation first).
	bytes       atomic.Int64
	evictCursor atomic.Uint32

	// Split-level store: entries keyed by the packed split's sorted
	// (block, generation) signature, in an LRU list for eviction, with a
	// per-block reverse index for invalidation.
	splitMu      sync.Mutex
	splits       map[mapred.SplitCacheKey]*splitEntry
	splitByBlock map[hdfs.BlockID]map[*splitEntry]struct{}
	splitLRU     *list.List

	hits          atomic.Int64
	misses        atomic.Int64
	puts          atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	rejected      atomic.Int64
	splitHits     atomic.Int64
	splitMisses   atomic.Int64
	splitPuts     atomic.Int64
	bytesSaved    atomic.Int64
}

// New returns a cache with the given total byte budget. A non-positive
// budget selects DefaultBudget; budgets below 32 KiB are raised to that
// floor so a small budget degrades to heavy eviction rather than
// silently caching nothing.
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if budget < minBudget {
		budget = minBudget
	}
	c := &Cache{
		budget:       budget,
		splits:       make(map[mapred.SplitCacheKey]*splitEntry),
		splitByBlock: make(map[hdfs.BlockID]map[*splitEntry]struct{}),
		splitLRU:     list.New(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[mapred.CacheKey]*entry)
		s.byBlock = make(map[hdfs.BlockID]map[*entry]struct{})
		s.probation = list.New()
		s.protected = list.New()
	}
	return c
}

func (c *Cache) shard(b hdfs.BlockID) *shard {
	i := int64(b) % numShards
	if i < 0 {
		i += numShards
	}
	return &c.shards[i]
}

// entryBytes is the budget charge for one entry.
func entryBytes(k mapred.CacheKey, kvs []mapred.KV) int64 {
	n := int64(entryOverhead + len(k.File) + len(k.Query) + len(k.MapSig))
	for _, kv := range kvs {
		n += int64(len(kv.Key) + len(kv.Value) + kvOverhead)
	}
	return n
}

// EntryCost is the budget charge Put would levy for this entry — exported
// so admission layers above the cache (per-tenant budget ledgers) account
// in exactly the cache's own currency.
func EntryCost(k mapred.CacheKey, kvs []mapred.KV) int64 { return entryBytes(k, kvs) }

// SplitEntryCost is EntryCost for a packed-split entry (PutSplit).
func SplitEntryCost(k mapred.SplitCacheKey, blocks int, kvs []mapred.KV) int64 {
	return splitEntryBytes(k, blocks, kvs)
}

// Get returns the cached map output for the key. On a hit the entry is
// promoted (probation → protected, or refreshed within protected). The
// returned slice is shared and must be treated as read-only.
func (c *Cache) Get(k mapred.CacheKey) ([]mapred.KV, mapred.TaskStats, bool) {
	s := c.shard(k.Block)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, mapred.TaskStats{}, false
	}
	if e.protected {
		s.protected.MoveToFront(e.elem)
	} else {
		// First re-use: promote out of probation.
		s.probation.Remove(e.elem)
		e.elem = s.protected.PushFront(e)
		e.protected = true
	}
	kvs, stats := e.kvs, e.stats
	s.mu.Unlock()
	c.hits.Add(1)
	c.bytesSaved.Add(stats.BytesRead + stats.IndexBytesRead)
	return kvs, stats, true
}

// Put admits one block's map output. Entries larger than the whole
// budget are rejected outright; otherwise colder entries are evicted —
// probationary entries across all shards before any protected one —
// until the total fits. Re-putting an existing key replaces its value in
// place.
func (c *Cache) Put(k mapred.CacheKey, kvs []mapred.KV, stats mapred.TaskStats) {
	cost := entryBytes(k, kvs)
	if cost > c.budget {
		c.rejected.Add(1)
		return
	}
	s := c.shard(k.Block)
	s.mu.Lock()
	if old, ok := s.entries[k]; ok {
		s.removeLocked(old)
		c.bytes.Add(-old.bytes)
	}
	e := &entry{
		key:   k,
		kvs:   append([]mapred.KV(nil), kvs...),
		stats: stats,
		bytes: cost,
	}
	e.elem = s.probation.PushFront(e)
	s.entries[k] = e
	bb := s.byBlock[k.Block]
	if bb == nil {
		bb = make(map[*entry]struct{})
		s.byBlock[k.Block] = bb
	}
	bb[e] = struct{}{}
	s.bytes += cost
	s.mu.Unlock()
	c.bytes.Add(cost)
	c.puts.Add(1)
	c.enforceBudget(e, nil)
}

// enforceBudget evicts until the resident total fits the budget: one
// round-robin sweep pops probationary tails across shards, then the
// split-level LRU is drained, and a final sweep reaches into protected
// LRUs. The just-admitted entry (block- or split-level) is never the
// victim — evicting everything else always suffices, since its cost is at
// most the budget.
func (c *Cache) enforceBudget(keep *entry, keepSplit *splitEntry) {
	c.evictShards(keep, true)
	c.evictSplits(keepSplit)
	c.evictShards(keep, false)
}

// evictShards is one round-robin sweep over the per-block shards.
func (c *Cache) evictShards(keep *entry, probationOnly bool) {
	start := int(c.evictCursor.Add(1) % numShards) // mod before int: never negative on 32-bit
	for i := 0; i < numShards; i++ {
		if c.bytes.Load() <= c.budget {
			return
		}
		s := &c.shards[(start+i)%numShards]
		s.mu.Lock()
		for c.bytes.Load() > c.budget {
			v := s.victimLocked(keep, probationOnly)
			if v == nil {
				break
			}
			s.removeLocked(v)
			c.bytes.Add(-v.bytes)
			c.evictions.Add(1)
		}
		s.mu.Unlock()
	}
}

// evictSplits drains split-level entries coldest-first until the budget
// fits (or only keepSplit remains).
func (c *Cache) evictSplits(keepSplit *splitEntry) {
	c.splitMu.Lock()
	defer c.splitMu.Unlock()
	for c.bytes.Load() > c.budget {
		var victim *splitEntry
		for el := c.splitLRU.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*splitEntry); e != keepSplit {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.removeSplitLocked(victim)
		c.evictions.Add(1)
	}
}

// victimLocked picks the coldest evictable entry of the shard: the
// probationary FIFO tail, then (unless probationOnly) the protected LRU
// tail; keep is exempt. Caller holds the shard lock.
func (s *shard) victimLocked(keep *entry, probationOnly bool) *entry {
	lists := []*list.List{s.probation}
	if !probationOnly {
		lists = append(lists, s.protected)
	}
	for _, l := range lists {
		for el := l.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e != keep {
				return e
			}
		}
	}
	return nil
}

// removeLocked unlinks an entry from all shard structures. Caller holds
// the shard lock.
func (s *shard) removeLocked(e *entry) {
	if e.protected {
		s.protected.Remove(e.elem)
	} else {
		s.probation.Remove(e.elem)
	}
	delete(s.entries, e.key)
	if bb := s.byBlock[e.key.Block]; bb != nil {
		delete(bb, e)
		if len(bb) == 0 {
			delete(s.byBlock, e.key.Block)
		}
	}
	s.bytes -= e.bytes
}

// InvalidateBlock purges every entry for the block — per-block and
// packed-split entries alike — whatever its generation. Registered as the
// namenode's replica-change hook it turns generation bumps into active
// space reclamation; generation keying alone already guarantees the
// purged entries could never have been served again.
func (c *Cache) InvalidateBlock(b hdfs.BlockID) {
	s := c.shard(b)
	s.mu.Lock()
	for e := range s.byBlock[b] {
		s.removeLocked(e)
		c.bytes.Add(-e.bytes)
		c.invalidations.Add(1)
	}
	s.mu.Unlock()

	c.splitMu.Lock()
	for e := range c.splitByBlock[b] {
		c.removeSplitLocked(e)
		c.invalidations.Add(1)
	}
	c.splitMu.Unlock()
}

// splitEntryBytes is the budget charge for one packed-split entry.
func splitEntryBytes(k mapred.SplitCacheKey, blocks int, kvs []mapred.KV) int64 {
	n := int64(entryOverhead + len(k.File) + len(k.BlockSig) + len(k.Query) + len(k.MapSig))
	n += int64(blocks) * 16 // member-block reverse-index bookkeeping
	for _, kv := range kvs {
		n += int64(len(kv.Key) + len(kv.Value) + kvOverhead)
	}
	return n
}

// GetSplit returns the cached output of a whole packed split. On a hit
// the entry is refreshed to the LRU front. The returned slice is shared
// and must be treated as read-only.
func (c *Cache) GetSplit(k mapred.SplitCacheKey) ([]mapred.KV, mapred.TaskStats, bool) {
	c.splitMu.Lock()
	e, ok := c.splits[k]
	if !ok {
		c.splitMu.Unlock()
		c.splitMisses.Add(1)
		return nil, mapred.TaskStats{}, false
	}
	c.splitLRU.MoveToFront(e.elem)
	kvs, stats := e.kvs, e.stats
	c.splitMu.Unlock()
	c.splitHits.Add(1)
	c.bytesSaved.Add(stats.BytesRead + stats.IndexBytesRead)
	return kvs, stats, true
}

// PutSplit admits one packed split's assembled map output, indexed under
// every member block so invalidating any of them purges the whole entry.
// Entries larger than the budget are rejected; re-putting an existing key
// replaces it in place.
func (c *Cache) PutSplit(k mapred.SplitCacheKey, blocks []hdfs.BlockID, kvs []mapred.KV, stats mapred.TaskStats) {
	cost := splitEntryBytes(k, len(blocks), kvs)
	if cost > c.budget {
		c.rejected.Add(1)
		return
	}
	e := &splitEntry{
		key:    k,
		blocks: append([]hdfs.BlockID(nil), blocks...),
		kvs:    append([]mapred.KV(nil), kvs...),
		stats:  stats,
		bytes:  cost,
	}
	c.splitMu.Lock()
	if old, ok := c.splits[k]; ok {
		c.removeSplitLocked(old)
	}
	e.elem = c.splitLRU.PushFront(e)
	c.splits[k] = e
	for _, b := range blocks {
		bb := c.splitByBlock[b]
		if bb == nil {
			bb = make(map[*splitEntry]struct{})
			c.splitByBlock[b] = bb
		}
		bb[e] = struct{}{}
	}
	c.splitMu.Unlock()
	c.bytes.Add(cost)
	c.splitPuts.Add(1)
	c.enforceBudget(nil, e)
}

// removeSplitLocked unlinks a split entry from the store. Caller holds
// splitMu.
func (c *Cache) removeSplitLocked(e *splitEntry) {
	c.splitLRU.Remove(e.elem)
	delete(c.splits, e.key)
	for _, b := range e.blocks {
		if bb := c.splitByBlock[b]; bb != nil {
			delete(bb, e)
			if len(bb) == 0 {
				delete(c.splitByBlock, b)
			}
		}
	}
	c.bytes.Add(-e.bytes)
}

// CachedReplica reports whether the cache holds the block's map output
// for the given (generation, query signature, map identity), and at which
// replica node — the split phase's packing probe: a fully-cached block
// can be packed pinned at its cached replica even when no index matches
// the query (core.InputFormat.CachedReplica). When several replicas'
// results are resident the lowest node ID wins, keeping the packing
// decision deterministic.
func (c *Cache) CachedReplica(file string, b hdfs.BlockID, gen uint64, query, mapSig string) (hdfs.NodeID, bool) {
	s := c.shard(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	var best hdfs.NodeID
	found := false
	for e := range s.byBlock[b] {
		k := e.key
		if k.File != file || k.Gen != gen || k.Query != query || k.MapSig != mapSig {
			continue
		}
		if !found || k.Replica < best {
			best, found = k.Replica, true
		}
	}
	return best, found
}

// BlockEntries reports the resident entries touching block b: block-level
// entries in b's shard and packed-split entries any of whose member
// blocks is b. The eviction and replica-drop property tests use it to
// assert that no entry — at either granularity — survives for a block
// whose replica topology changed.
func (c *Cache) BlockEntries(b hdfs.BlockID) (blockEntries, splitEntries int) {
	s := c.shard(b)
	s.mu.Lock()
	blockEntries = len(s.byBlock[b])
	s.mu.Unlock()
	c.splitMu.Lock()
	splitEntries = len(c.splitByBlock[b])
	c.splitMu.Unlock()
	return blockEntries, splitEntries
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Puts:          c.puts.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Rejected:      c.rejected.Load(),
		SplitHits:     c.splitHits.Load(),
		SplitMisses:   c.splitMisses.Load(),
		SplitPuts:     c.splitPuts.Load(),
		BytesSaved:    c.bytesSaved.Load(),
		Budget:        c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	c.splitMu.Lock()
	for el := c.splitLRU.Front(); el != nil; el = el.Next() {
		st.Bytes += el.Value.(*splitEntry).bytes
	}
	st.SplitEntries = len(c.splits)
	c.splitMu.Unlock()
	return st
}

// Interface conformance: the engine consumes the cache through
// mapred.ResultCache and, for packed splits, mapred.SplitCache.
var (
	_ mapred.ResultCache = (*Cache)(nil)
	_ mapred.SplitCache  = (*Cache)(nil)
)
