// Package qcache is a block-level query result cache: it remembers, per
// (file, block, replica generation, normalized query, map identity,
// replica), the KV output a map task produced over that block, so a
// repeated job replays the output instead of re-reading the block and
// re-running the record reader and map function over it. HAIL's workloads
// are exactly the shape this pays off for — the adaptive experiment's job
// sequence repeats one selection until the file converges — and the
// data-skipping literature (PAPERS.md, "Provenance-based Data Skipping")
// frames the same idea as not re-touching data a prior query already
// answered over.
//
// Correctness rests on the replica generation baked into every key
// (hdfs.NameNode.Generation): adaptive re-indexing, node-loss healing and
// node revival all bump it, making stale entries unreachable. On top of
// that, the cache's InvalidateBlock can be registered as the namenode's
// replica-change hook to actively purge the block's entries, so the
// budget is not squatted by garbage.
//
// The cache is sharded by block ID — Get/Put/Invalidate for one block
// touch exactly one shard's mutex — with one byte budget enforced across
// all shards (an entry may be as large as the whole budget) and 2Q-style
// eviction: new entries enter a per-shard probationary FIFO and are
// promoted to a protected LRU on their first hit; eviction drains
// probationary entries everywhere before touching any protected one, so
// a one-off scan of a huge file cannot flush the entries a repeating
// workload actually re-uses.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

// DefaultBudget is the byte budget used when New is given a non-positive
// one: 64 MiB, a few blocks' worth of selective query output.
const DefaultBudget = 64 << 20

// numShards is the shard count. Block IDs are assigned sequentially, so
// modulo sharding spreads a file's blocks evenly.
const numShards = 16

// entryOverhead approximates the per-entry bookkeeping bytes (key
// strings are accounted separately) charged against the budget.
const entryOverhead = 96

// minBudget is the floor the total budget is clamped to: below it even a
// handful of single-row entries would thrash and a tiny explicit budget
// would silently cache almost nothing.
const minBudget = numShards * 2048

// kvOverhead approximates the per-KV slice/header bytes beyond the string
// payloads.
const kvOverhead = 32

// Stats is a point-in-time snapshot of the cache's counters. Counters are
// cumulative; Bytes and Entries are current occupancy. Sub yields per-job
// deltas.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64 // entries purged by InvalidateBlock
	Rejected      int64 // entries larger than the whole budget
	// BytesSaved accumulates the data + index bytes hits avoided
	// re-reading (from the stats recorded at admission).
	BytesSaved int64
	Bytes      int64 // resident entry bytes
	Entries    int
	Budget     int64 // configured byte budget
}

// Sub returns the counter deltas s − prev; occupancy fields (Bytes,
// Entries, Budget) keep s's current values.
func (s Stats) Sub(prev Stats) Stats {
	s.Hits -= prev.Hits
	s.Misses -= prev.Misses
	s.Puts -= prev.Puts
	s.Evictions -= prev.Evictions
	s.Invalidations -= prev.Invalidations
	s.Rejected -= prev.Rejected
	s.BytesSaved -= prev.BytesSaved
	return s
}

type entry struct {
	key       mapred.CacheKey
	kvs       []mapred.KV
	stats     mapred.TaskStats
	bytes     int64
	elem      *list.Element
	protected bool
}

type shard struct {
	mu      sync.Mutex
	bytes   int64
	entries map[mapred.CacheKey]*entry
	byBlock map[hdfs.BlockID]map[*entry]struct{}
	// 2Q queues: probation is a FIFO of once-seen entries, protected an
	// LRU of entries that have hit at least once. Eviction drains
	// probation first.
	probation *list.List
	protected *list.List
}

// Cache is a sharded, concurrency-safe block-level result cache
// implementing mapred.ResultCache.
type Cache struct {
	budget int64
	shards [numShards]shard
	// bytes is the resident total across shards; Put enforces the budget
	// against it, evicting round-robin across shards (probation first).
	bytes       atomic.Int64
	evictCursor atomic.Uint32

	hits          atomic.Int64
	misses        atomic.Int64
	puts          atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	rejected      atomic.Int64
	bytesSaved    atomic.Int64
}

// New returns a cache with the given total byte budget. A non-positive
// budget selects DefaultBudget; budgets below 32 KiB are raised to that
// floor so a small budget degrades to heavy eviction rather than
// silently caching nothing.
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if budget < minBudget {
		budget = minBudget
	}
	c := &Cache{budget: budget}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[mapred.CacheKey]*entry)
		s.byBlock = make(map[hdfs.BlockID]map[*entry]struct{})
		s.probation = list.New()
		s.protected = list.New()
	}
	return c
}

func (c *Cache) shard(b hdfs.BlockID) *shard {
	i := int64(b) % numShards
	if i < 0 {
		i += numShards
	}
	return &c.shards[i]
}

// entryBytes is the budget charge for one entry.
func entryBytes(k mapred.CacheKey, kvs []mapred.KV) int64 {
	n := int64(entryOverhead + len(k.File) + len(k.Query) + len(k.MapSig))
	for _, kv := range kvs {
		n += int64(len(kv.Key) + len(kv.Value) + kvOverhead)
	}
	return n
}

// Get returns the cached map output for the key. On a hit the entry is
// promoted (probation → protected, or refreshed within protected). The
// returned slice is shared and must be treated as read-only.
func (c *Cache) Get(k mapred.CacheKey) ([]mapred.KV, mapred.TaskStats, bool) {
	s := c.shard(k.Block)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, mapred.TaskStats{}, false
	}
	if e.protected {
		s.protected.MoveToFront(e.elem)
	} else {
		// First re-use: promote out of probation.
		s.probation.Remove(e.elem)
		e.elem = s.protected.PushFront(e)
		e.protected = true
	}
	kvs, stats := e.kvs, e.stats
	s.mu.Unlock()
	c.hits.Add(1)
	c.bytesSaved.Add(stats.BytesRead + stats.IndexBytesRead)
	return kvs, stats, true
}

// Put admits one block's map output. Entries larger than the whole
// budget are rejected outright; otherwise colder entries are evicted —
// probationary entries across all shards before any protected one —
// until the total fits. Re-putting an existing key replaces its value in
// place.
func (c *Cache) Put(k mapred.CacheKey, kvs []mapred.KV, stats mapred.TaskStats) {
	cost := entryBytes(k, kvs)
	if cost > c.budget {
		c.rejected.Add(1)
		return
	}
	s := c.shard(k.Block)
	s.mu.Lock()
	if old, ok := s.entries[k]; ok {
		s.removeLocked(old)
		c.bytes.Add(-old.bytes)
	}
	e := &entry{
		key:   k,
		kvs:   append([]mapred.KV(nil), kvs...),
		stats: stats,
		bytes: cost,
	}
	e.elem = s.probation.PushFront(e)
	s.entries[k] = e
	bb := s.byBlock[k.Block]
	if bb == nil {
		bb = make(map[*entry]struct{})
		s.byBlock[k.Block] = bb
	}
	bb[e] = struct{}{}
	s.bytes += cost
	s.mu.Unlock()
	c.bytes.Add(cost)
	c.puts.Add(1)
	c.enforceBudget(e)
}

// enforceBudget evicts until the resident total fits the budget: one
// round-robin sweep pops probationary tails across shards, a second
// reaches into protected LRUs, and the just-admitted entry is never the
// victim (evicting everything else always suffices, since its cost is at
// most the budget).
func (c *Cache) enforceBudget(keep *entry) {
	for _, probationOnly := range []bool{true, false} {
		start := int(c.evictCursor.Add(1) % numShards) // mod before int: never negative on 32-bit
		for i := 0; i < numShards; i++ {
			if c.bytes.Load() <= c.budget {
				return
			}
			s := &c.shards[(start+i)%numShards]
			s.mu.Lock()
			for c.bytes.Load() > c.budget {
				v := s.victimLocked(keep, probationOnly)
				if v == nil {
					break
				}
				s.removeLocked(v)
				c.bytes.Add(-v.bytes)
				c.evictions.Add(1)
			}
			s.mu.Unlock()
		}
	}
}

// victimLocked picks the coldest evictable entry of the shard: the
// probationary FIFO tail, then (unless probationOnly) the protected LRU
// tail; keep is exempt. Caller holds the shard lock.
func (s *shard) victimLocked(keep *entry, probationOnly bool) *entry {
	lists := []*list.List{s.probation}
	if !probationOnly {
		lists = append(lists, s.protected)
	}
	for _, l := range lists {
		for el := l.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e != keep {
				return e
			}
		}
	}
	return nil
}

// removeLocked unlinks an entry from all shard structures. Caller holds
// the shard lock.
func (s *shard) removeLocked(e *entry) {
	if e.protected {
		s.protected.Remove(e.elem)
	} else {
		s.probation.Remove(e.elem)
	}
	delete(s.entries, e.key)
	if bb := s.byBlock[e.key.Block]; bb != nil {
		delete(bb, e)
		if len(bb) == 0 {
			delete(s.byBlock, e.key.Block)
		}
	}
	s.bytes -= e.bytes
}

// InvalidateBlock purges every entry for the block, whatever its
// generation, and returns the number removed. Registered as the
// namenode's replica-change hook it turns generation bumps into active
// space reclamation; generation keying alone already guarantees the
// purged entries could never have been served again.
func (c *Cache) InvalidateBlock(b hdfs.BlockID) {
	s := c.shard(b)
	s.mu.Lock()
	for e := range s.byBlock[b] {
		s.removeLocked(e)
		c.bytes.Add(-e.bytes)
		c.invalidations.Add(1)
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Puts:          c.puts.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Rejected:      c.rejected.Load(),
		BytesSaved:    c.bytesSaved.Load(),
		Budget:        c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Interface conformance: the engine consumes the cache through
// mapred.ResultCache.
var _ mapred.ResultCache = (*Cache)(nil)
