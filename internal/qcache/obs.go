package qcache

import "repro/internal/obs"

// BindObs folds the cache's counters into the registry as lazily
// evaluated gauges over Stats(): the sharded hot path keeps its existing
// atomics and pays nothing; each gauge read takes one stats snapshot at
// registry-snapshot time.
func (c *Cache) BindObs(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	bind := func(name string, f func(Stats) int64) {
		reg.SetGaugeFunc(name, func() int64 { return f(c.Stats()) })
	}
	bind("qcache.hits", func(s Stats) int64 { return s.Hits })
	bind("qcache.misses", func(s Stats) int64 { return s.Misses })
	bind("qcache.puts", func(s Stats) int64 { return s.Puts })
	bind("qcache.evictions", func(s Stats) int64 { return s.Evictions })
	bind("qcache.invalidations", func(s Stats) int64 { return s.Invalidations })
	bind("qcache.rejected", func(s Stats) int64 { return s.Rejected })
	bind("qcache.split_hits", func(s Stats) int64 { return s.SplitHits })
	bind("qcache.split_misses", func(s Stats) int64 { return s.SplitMisses })
	bind("qcache.split_puts", func(s Stats) int64 { return s.SplitPuts })
	bind("qcache.bytes_saved", func(s Stats) int64 { return s.BytesSaved })
	bind("qcache.bytes", func(s Stats) int64 { return s.Bytes })
	bind("qcache.entries", func(s Stats) int64 { return int64(s.Entries) })
	bind("qcache.split_entries", func(s Stats) int64 { return int64(s.SplitEntries) })
}
