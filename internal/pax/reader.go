package pax

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/schema"
)

// IOStats records how much of a serialized block an access path touched.
// The cluster simulator converts these counts into simulated disk time, so
// the numbers must reflect what a disk-resident block would really cost:
// every non-adjacent byte range costs one seek, and variable-size columns
// are read at whole-partition granularity (paper §3.5).
type IOStats struct {
	BytesRead int64 // bytes transferred from the block
	Seeks     int   // non-contiguous range starts
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.BytesRead += other.BytesRead
	s.Seeks += other.Seeks
}

// Reader provides random access to a serialized PAX block without decoding
// the whole block, mirroring how the HailRecordReader reads only the
// qualifying column ranges from disk. It tracks IOStats: consecutive reads
// of adjacent ranges count as one seek.
type Reader struct {
	data    []byte
	sch     *schema.Schema
	sortCol int
	numRows int
	numBad  int
	colOff  []int // absolute offset of each column area
	colLen  []int
	badOff  int
	badLen  int

	stats   IOStats
	lastEnd int64 // end offset of the previous raw read, -1 initially
}

// NewReader parses the block header. It validates the directory against the
// data length so that a corrupted or truncated block fails fast here rather
// than during reads.
func NewReader(data []byte) (*Reader, error) {
	r := &Reader{data: data, lastEnd: -1}
	if len(data) < 4+2+4+4+4+2 {
		return nil, fmt.Errorf("pax: block too short (%d bytes)", len(data))
	}
	if string(data[:4]) != blockMagic {
		return nil, fmt.Errorf("pax: bad magic %q", data[:4])
	}
	p := 4
	version := binary.LittleEndian.Uint16(data[p:])
	p += 2
	if version != blockVersion {
		return nil, fmt.Errorf("pax: unsupported version %d", version)
	}
	r.sortCol = int(int32(binary.LittleEndian.Uint32(data[p:])))
	p += 4
	r.numRows = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	r.numBad = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	schemaLen := int(binary.LittleEndian.Uint16(data[p:]))
	p += 2
	if p+schemaLen+2 > len(data) {
		return nil, fmt.Errorf("pax: truncated schema")
	}
	sch, err := schema.ParseSchema(string(data[p : p+schemaLen]))
	if err != nil {
		return nil, err
	}
	r.sch = sch
	p += schemaLen
	nCols := int(binary.LittleEndian.Uint16(data[p:]))
	p += 2
	if nCols != sch.NumFields() {
		return nil, fmt.Errorf("pax: directory has %d columns, schema has %d", nCols, sch.NumFields())
	}
	if p+nCols*8+8 > len(data) {
		return nil, fmt.Errorf("pax: truncated column directory")
	}
	r.colOff = make([]int, nCols)
	r.colLen = make([]int, nCols)
	for i := 0; i < nCols; i++ {
		r.colOff[i] = int(binary.LittleEndian.Uint32(data[p:]))
		r.colLen[i] = int(binary.LittleEndian.Uint32(data[p+4:]))
		p += 8
		if r.colOff[i]+r.colLen[i] > len(data) {
			return nil, fmt.Errorf("pax: column %d area out of bounds", i)
		}
	}
	r.badOff = int(binary.LittleEndian.Uint32(data[p:]))
	r.badLen = int(binary.LittleEndian.Uint32(data[p+4:]))
	if r.badOff+r.badLen > len(data) {
		return nil, fmt.Errorf("pax: bad-record area out of bounds")
	}
	if r.sortCol < -1 || r.sortCol >= nCols {
		return nil, fmt.Errorf("pax: sort column %d out of range", r.sortCol)
	}
	return r, nil
}

// Schema returns the block schema parsed from the header.
func (r *Reader) Schema() *schema.Schema { return r.sch }

// NumRows returns the number of good rows.
func (r *Reader) NumRows() int { return r.numRows }

// NumBad returns the number of bad records.
func (r *Reader) NumBad() int { return r.numBad }

// SortColumn returns the clustering attribute, or -1.
func (r *Reader) SortColumn() int { return r.sortCol }

// BlockSize returns the total serialized size.
func (r *Reader) BlockSize() int { return len(r.data) }

// Stats returns the accumulated I/O accounting.
func (r *Reader) Stats() IOStats { return r.stats }

// ResetStats clears the I/O accounting.
func (r *Reader) ResetStats() {
	r.stats = IOStats{}
	r.lastEnd = -1
}

// raw reads data[off:off+n], accounting for a seek when the range is not
// adjacent to the previous read.
func (r *Reader) raw(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(r.data) {
		return nil, fmt.Errorf("pax: read [%d,%d) out of bounds", off, off+n)
	}
	if int64(off) != r.lastEnd {
		r.stats.Seeks++
	}
	r.stats.BytesRead += int64(n)
	r.lastEnd = int64(off + n)
	return r.data[off : off+n], nil
}

// ReadColumnRange reads the values of attribute col for rows [fromRow,
// toRow). For variable-size attributes it reads whole partitions covering
// the range, as the on-disk format only records every PartitionSize-th
// offset, but returns exactly the requested values.
func (r *Reader) ReadColumnRange(col, fromRow, toRow int) ([]schema.Value, error) {
	if col < 0 || col >= r.sch.NumFields() {
		return nil, fmt.Errorf("pax: column %d out of range", col)
	}
	if fromRow < 0 || toRow > r.numRows || fromRow > toRow {
		return nil, fmt.Errorf("pax: row range [%d,%d) out of bounds (rows=%d)", fromRow, toRow, r.numRows)
	}
	if fromRow == toRow {
		return nil, nil
	}
	t := r.sch.Field(col).Type
	if t.FixedSize() {
		return r.readFixedRange(col, t, fromRow, toRow)
	}
	return r.readStringRange(col, fromRow, toRow)
}

func (r *Reader) readFixedRange(col int, t schema.Type, fromRow, toRow int) ([]schema.Value, error) {
	w := t.Width()
	raw, err := r.raw(r.colOff[col]+fromRow*w, (toRow-fromRow)*w)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Value, 0, toRow-fromRow)
	for i := 0; i < toRow-fromRow; i++ {
		switch t {
		case schema.Int32:
			out = append(out, schema.IntVal(int32(binary.LittleEndian.Uint32(raw[i*4:]))))
		case schema.Date:
			out = append(out, schema.DateVal(int32(binary.LittleEndian.Uint32(raw[i*4:]))))
		case schema.Int64:
			out = append(out, schema.LongVal(int64(binary.LittleEndian.Uint64(raw[i*8:]))))
		case schema.Float64:
			out = append(out, schema.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))))
		}
	}
	return out, nil
}

func (r *Reader) readStringRange(col, fromRow, toRow int) ([]schema.Value, error) {
	nParts := numPartitions(r.numRows)
	valBase := r.colOff[col] + nParts*4
	valLen := r.colLen[col] - nParts*4
	pFrom := fromRow / PartitionSize
	pTo := (toRow - 1) / PartitionSize

	// Read the needed slice of the sparse offset list. The list is tiny
	// (4 bytes per 1,024 rows) and in practice cached in memory; it still
	// counts as a read the first time.
	offRaw, err := r.raw(r.colOff[col]+pFrom*4, (pTo-pFrom+1)*4)
	if err != nil {
		return nil, err
	}
	startOff := int(binary.LittleEndian.Uint32(offRaw[0:]))
	// The byte span ends at the start of partition pTo+1, or at the end of
	// the value area for the last partition. We read to the partition
	// boundary and post-filter in memory (paper §3.5).
	endOff := valLen
	if (pTo+1)*PartitionSize < r.numRows {
		tail, err := r.raw(r.colOff[col]+(pTo+1)*4, 4)
		if err != nil {
			return nil, err
		}
		endOff = int(binary.LittleEndian.Uint32(tail))
	}
	raw, err := r.raw(valBase+startOff, endOff-startOff)
	if err != nil {
		return nil, err
	}

	out := make([]schema.Value, 0, toRow-fromRow)
	row := pFrom * PartitionSize
	pos := 0
	for row < toRow {
		z := indexByteFrom(raw, pos, 0)
		if z < 0 {
			return nil, fmt.Errorf("pax: unterminated string value in column %d", col)
		}
		if row >= fromRow {
			out = append(out, schema.StringVal(string(raw[pos:z])))
		}
		pos = z + 1
		row++
	}
	return out, nil
}

// ReadBad reads the i-th bad record. Bad records are delivered to the map
// function flagged as such (paper §4.3).
func (r *Reader) ReadBad(i int) (string, error) {
	if i < 0 || i >= r.numBad {
		return "", fmt.Errorf("pax: bad record %d out of range (have %d)", i, r.numBad)
	}
	// Walk the length-prefixed sequence. Bad records are few; jobs that
	// touch them scan the whole section anyway.
	p := r.badOff
	for k := 0; ; k++ {
		hdr, err := r.raw(p, 4)
		if err != nil {
			return "", err
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		if k == i {
			body, err := r.raw(p+4, n)
			if err != nil {
				return "", err
			}
			return string(body), nil
		}
		p += 4 + n
	}
}

// ReadAllBad reads the whole bad-record section.
func (r *Reader) ReadAllBad() ([]string, error) {
	out := make([]string, 0, r.numBad)
	p := r.badOff
	for k := 0; k < r.numBad; k++ {
		hdr, err := r.raw(p, 4)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		body, err := r.raw(p+4, n)
		if err != nil {
			return nil, err
		}
		out = append(out, string(body))
		p += 4 + n
	}
	return out, nil
}

// ColumnSize returns the serialized size of attribute col.
func (r *Reader) ColumnSize(col int) int { return r.colLen[col] }

func indexByteFrom(b []byte, from int, c byte) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}
