package pax

import (
	"testing"

	"repro/internal/schema"
)

// drainCursor collects the cursor's remaining rows in batches of batchN.
func drainCursor(t *testing.T, c *ColumnCursor, typ schema.Type, batchN int) []schema.Value {
	t.Helper()
	vec := schema.NewVector(typ)
	var out []schema.Value
	for {
		n, err := c.Next(batchN, vec)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if n == 0 {
			break
		}
		if vec.Len() != n {
			t.Fatalf("Next returned %d but vector has %d values", n, vec.Len())
		}
		for i := 0; i < n; i++ {
			out = append(out, vec.Value(i))
		}
	}
	return out
}

func TestColumnCursorMatchesReadColumnRange(t *testing.T) {
	b := buildBlock(t, 4000, 21)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{
		{0, 4000},                          // whole block
		{1500, 2600},                       // interior, crosses a partition boundary
		{0, 1},                             // single row
		{PartitionSize, 2 * PartitionSize}, // exactly one partition
		{PartitionSize - 1, PartitionSize}, // last row of a partition
		{PartitionSize, PartitionSize + 1}, // first row of a partition
		{3999, 4000},                       // last row of the block
		{700, 700},                         // empty
	}
	for col := 0; col < testSchema.NumFields(); col++ {
		typ := testSchema.Field(col).Type
		for _, rg := range ranges {
			from, to := rg[0], rg[1]
			for _, batchN := range []int{1, 7, PartitionSize, 5000} {
				r, err := NewReader(data)
				if err != nil {
					t.Fatal(err)
				}
				c, err := r.NewColumnCursor(col, from, to)
				if err != nil {
					t.Fatalf("col %d [%d,%d): %v", col, from, to, err)
				}
				if c.Remaining() != to-from {
					t.Fatalf("col %d: Remaining = %d, want %d", col, c.Remaining(), to-from)
				}
				got := drainCursor(t, c, typ, batchN)

				ref, err := NewReader(data)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.ReadColumnRange(col, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("col %d [%d,%d) batch %d: %d values, want %d", col, from, to, batchN, len(got), len(want))
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("col %d [%d,%d) row %d: %v != %v", col, from, to, i, got[i], want[i])
					}
				}
				// The cursor must cost exactly what the eager range read
				// costs — all raw reads happen at creation, none during Next.
				if r.Stats() != ref.Stats() {
					t.Fatalf("col %d [%d,%d): cursor stats %+v != range stats %+v",
						col, from, to, r.Stats(), ref.Stats())
				}
			}
		}
	}
}

func TestColumnCursorMultiColumnSeekParity(t *testing.T) {
	// Opening cursors for several columns in ascending order must produce
	// the same seek count as the row path's ascending ReadColumnRange
	// calls — this is what keeps block scan I/O accounting byte-identical
	// between the row and batch pipelines.
	b := buildBlock(t, 3000, 22)
	data, _ := b.Marshal()
	cols := []int{0, 2, 4}
	from, to := 800, 2500

	cur, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols {
		if _, err := cur.NewColumnCursor(col, from, to); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range cols {
		if _, err := ref.ReadColumnRange(col, from, to); err != nil {
			t.Fatal(err)
		}
	}
	if cur.Stats() != ref.Stats() {
		t.Fatalf("cursor stats %+v != range stats %+v", cur.Stats(), ref.Stats())
	}
}

func TestColumnCursorSkip(t *testing.T) {
	b := buildBlock(t, 2*PartitionSize, 23)
	data, _ := b.Marshal()
	for col := 0; col < testSchema.NumFields(); col++ {
		typ := testSchema.Field(col).Type
		r, err := NewReader(data)
		if err != nil {
			t.Fatal(err)
		}
		c, err := r.NewColumnCursor(col, 10, 2*PartitionSize)
		if err != nil {
			t.Fatal(err)
		}
		// Skip one batch (nil dst), then decode: values must line up with
		// the rows after the skipped span.
		skipN := 300
		if n, err := c.Next(skipN, nil); err != nil || n != skipN {
			t.Fatalf("skip: n=%d err=%v", n, err)
		}
		vec := schema.NewVector(typ)
		n, err := c.Next(50, vec)
		if err != nil || n != 50 {
			t.Fatalf("decode after skip: n=%d err=%v", n, err)
		}
		for i := 0; i < n; i++ {
			want := b.Value(10+skipN+i, col)
			if !vec.Value(i).Equal(want) {
				t.Fatalf("col %d: after skip, row %d = %v, want %v", col, i, vec.Value(i), want)
			}
		}
	}
}

// TestColumnCursorNextSelected: decoding only a selection out of each
// batch must yield exactly the selected rows' values, and the cursor must
// keep advancing full batches so mixed Next/NextSelected calls stay
// aligned with the row range.
func TestColumnCursorNextSelected(t *testing.T) {
	b := buildBlock(t, 3*PartitionSize, 25)
	data, _ := b.Marshal()
	from, to := 100, 3*PartitionSize-50
	sels := [][]int32{
		{},                 // nothing survives: advance only
		{0},                // first row of the batch
		{0, 1, 2},          // dense prefix
		{3, 97, 401, 500},  // scattered
		{511},              // last row of a 512-row batch
		{5, 6, 300, 301},   // pairs
		{17, 200, 350, 77}, // deliberately reused buffer shape below
	}
	for col := 0; col < testSchema.NumFields(); col++ {
		typ := testSchema.Field(col).Type
		r, err := NewReader(data)
		if err != nil {
			t.Fatal(err)
		}
		c, err := r.NewColumnCursor(col, from, to)
		if err != nil {
			t.Fatal(err)
		}
		vec := schema.NewVector(typ)
		base := from
		for i := 0; c.Remaining() > 0; i++ {
			const batchN = 512
			sel := sels[i%len(sels)]
			n := batchN
			if rem := c.Remaining(); n > rem {
				n = rem
			}
			kept := sel[:0:0]
			for _, s := range sel {
				if int(s) < n {
					kept = append(kept, s)
				}
			}
			if _, err := c.NextSelected(n, kept, vec); err != nil {
				t.Fatal(err)
			}
			if vec.Len() != len(kept) {
				t.Fatalf("col %d batch %d: %d values, want %d", col, i, vec.Len(), len(kept))
			}
			for j, s := range kept {
				want := b.Value(base+int(s), col)
				if !vec.Value(j).Equal(want) {
					t.Fatalf("col %d batch %d sel %d: %v, want %v", col, i, s, vec.Value(j), want)
				}
			}
			base += n
		}
		if base != to {
			t.Fatalf("col %d: cursor advanced to %d, want %d", col, base, to)
		}
	}
}

// TestColumnCursorNextSelectedUnsorted documents the contract: selection
// indices must be ascending; string columns silently skip out-of-order
// entries because the terminator walk is one-directional. (Fixed-width
// columns tolerate any order, but callers must not rely on that.)
func TestColumnCursorNextSelectedUnsorted(t *testing.T) {
	b := buildBlock(t, PartitionSize, 26)
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.NewColumnCursor(4, 0, PartitionSize) // url: String
	if err != nil {
		t.Fatal(err)
	}
	vec := schema.NewVector(schema.String)
	if _, err := c.NextSelected(PartitionSize, []int32{10, 5}, vec); err != nil {
		t.Fatal(err)
	}
	if vec.Len() != 1 || !vec.Value(0).Equal(b.Value(10, 4)) {
		t.Fatalf("unsorted selection: got %d values, want the one in-order entry", vec.Len())
	}
}

func TestColumnCursorBounds(t *testing.T) {
	b := buildBlock(t, 100, 24)
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewColumnCursor(-1, 0, 10); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := r.NewColumnCursor(99, 0, 10); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := r.NewColumnCursor(0, -1, 10); err == nil {
		t.Error("negative fromRow accepted")
	}
	if _, err := r.NewColumnCursor(0, 5, 101); err == nil {
		t.Error("toRow beyond rows accepted")
	}
	if _, err := r.NewColumnCursor(0, 7, 3); err == nil {
		t.Error("inverted range accepted")
	}
	c, err := r.NewColumnCursor(0, 5, 5)
	if err != nil {
		t.Fatalf("empty range: %v", err)
	}
	if st := r.Stats(); st != (IOStats{}) {
		t.Errorf("empty cursor performed reads: %+v", st)
	}
	vec := schema.NewVector(schema.Int32)
	if n, err := c.Next(10, vec); err != nil || n != 0 {
		t.Errorf("Next on empty cursor: n=%d err=%v", n, err)
	}
}
