package pax

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/schema"
)

// ColumnCursor decodes one column's candidate row range batch by batch —
// the access path of the vectorized scan pipeline. The raw column bytes
// are read (and accounted) once, at cursor creation, with exactly the
// same read sequence ReadColumnRange performs: one contiguous range per
// fixed-size column, the sparse offset list plus one partition-bounded
// value range for variable-size columns. A serialized block therefore
// costs the same bytes and seeks whether it is scanned row at a time or
// streamed in batches; what the cursor changes is decoding, which happens
// lazily, PartitionSize rows at a time, into a reused typed Vector
// instead of boxing the whole range into []schema.Value up front.
type ColumnCursor struct {
	typ schema.Type
	raw []byte // the column's value bytes for the (partition-aligned) range

	// Fixed-size columns: raw holds exactly the requested rows.
	width int
	pos   int // next undecoded row, as an index into raw/width

	// Variable-size columns: raw starts at a partition boundary at or
	// before fromRow; bpos is the next undecoded byte.
	bpos int

	remaining int // rows left to deliver
}

// NewColumnCursor opens a cursor over attribute col for rows [fromRow,
// toRow). All raw reads (and their IOStats) happen here, in the same
// order ReadColumnRange would issue them, so creating cursors for several
// columns in ascending column order reproduces the row path's seek count
// exactly.
func (r *Reader) NewColumnCursor(col, fromRow, toRow int) (*ColumnCursor, error) {
	if col < 0 || col >= r.sch.NumFields() {
		return nil, fmt.Errorf("pax: column %d out of range", col)
	}
	if fromRow < 0 || toRow > r.numRows || fromRow > toRow {
		return nil, fmt.Errorf("pax: row range [%d,%d) out of bounds (rows=%d)", fromRow, toRow, r.numRows)
	}
	t := r.sch.Field(col).Type
	c := &ColumnCursor{typ: t, remaining: toRow - fromRow}
	if fromRow == toRow {
		return c, nil
	}
	if t.FixedSize() {
		c.width = t.Width()
		raw, err := r.raw(r.colOff[col]+fromRow*c.width, (toRow-fromRow)*c.width)
		if err != nil {
			return nil, err
		}
		c.raw = raw
		return c, nil
	}

	// Variable-size: replicate readStringRange's reads, then skip the
	// partition-alignment prefix so Next starts delivering at fromRow.
	nParts := numPartitions(r.numRows)
	valBase := r.colOff[col] + nParts*4
	valLen := r.colLen[col] - nParts*4
	pFrom := fromRow / PartitionSize
	pTo := (toRow - 1) / PartitionSize
	offRaw, err := r.raw(r.colOff[col]+pFrom*4, (pTo-pFrom+1)*4)
	if err != nil {
		return nil, err
	}
	startOff := int(binary.LittleEndian.Uint32(offRaw[0:]))
	endOff := valLen
	if (pTo+1)*PartitionSize < r.numRows {
		tail, err := r.raw(r.colOff[col]+(pTo+1)*4, 4)
		if err != nil {
			return nil, err
		}
		endOff = int(binary.LittleEndian.Uint32(tail))
	}
	raw, err := r.raw(valBase+startOff, endOff-startOff)
	if err != nil {
		return nil, err
	}
	c.raw = raw
	for row := pFrom * PartitionSize; row < fromRow; row++ {
		z := indexByteFrom(c.raw, c.bpos, 0)
		if z < 0 {
			return nil, fmt.Errorf("pax: unterminated string value in column %d", col)
		}
		c.bpos = z + 1
	}
	return c, nil
}

// Remaining returns the rows the cursor has yet to deliver.
func (c *ColumnCursor) Remaining() int { return c.remaining }

// Next decodes up to n rows into dst (which is Reset first and must have
// the cursor's type) and returns the count delivered — less than n only
// at the end of the range. A nil dst skips the rows instead of decoding
// them: fixed-size columns jump, variable-size columns walk terminators.
// The batch pipeline uses the skip form for projection-only columns of
// batches in which no row survived the filters — late materialization at
// batch granularity.
func (c *ColumnCursor) Next(n int, dst *schema.Vector) (int, error) {
	if n > c.remaining {
		n = c.remaining
	}
	if dst != nil {
		dst.Reset()
	}
	if n <= 0 {
		return 0, nil
	}
	if c.typ.FixedSize() {
		c.nextFixed(n, dst)
		c.remaining -= n
		return n, nil
	}
	if err := c.nextString(n, dst); err != nil {
		return 0, err
	}
	c.remaining -= n
	return n, nil
}

// NextSelected advances the cursor n rows like Next, but decodes only the
// rows whose batch-relative indices appear in sel (ascending, each in
// [0,n)), appending len(sel) values to dst — late materialization at row
// granularity: a selective filter pays decoding (and, for strings, the
// per-value allocation) only for surviving rows, while the cursor still
// walks past the rest. dst is Reset first and receives values in sel
// order. Returns the rows advanced, like Next.
func (c *ColumnCursor) NextSelected(n int, sel []int32, dst *schema.Vector) (int, error) {
	if n > c.remaining {
		n = c.remaining
	}
	dst.Reset()
	if n <= 0 {
		return 0, nil
	}
	if c.typ.FixedSize() {
		raw := c.raw[c.pos*c.width:]
		switch c.typ {
		case schema.Int32, schema.Date:
			for _, s := range sel {
				dst.I32 = append(dst.I32, int32(binary.LittleEndian.Uint32(raw[int(s)*4:])))
			}
		case schema.Int64:
			for _, s := range sel {
				dst.I64 = append(dst.I64, int64(binary.LittleEndian.Uint64(raw[int(s)*8:])))
			}
		case schema.Float64:
			for _, s := range sel {
				dst.F64 = append(dst.F64, math.Float64frombits(binary.LittleEndian.Uint64(raw[int(s)*8:])))
			}
		}
		c.pos += n
		c.remaining -= n
		return n, nil
	}
	k := 0
	for i := 0; i < n; i++ {
		z := indexByteFrom(c.raw, c.bpos, 0)
		if z < 0 {
			return 0, fmt.Errorf("pax: unterminated string value")
		}
		if k < len(sel) && int(sel[k]) == i {
			dst.Str = append(dst.Str, string(c.raw[c.bpos:z]))
			k++
		}
		c.bpos = z + 1
	}
	c.remaining -= n
	return n, nil
}

func (c *ColumnCursor) nextFixed(n int, dst *schema.Vector) {
	if dst == nil {
		c.pos += n
		return
	}
	raw := c.raw[c.pos*c.width:]
	switch c.typ {
	case schema.Int32, schema.Date:
		for i := 0; i < n; i++ {
			dst.I32 = append(dst.I32, int32(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case schema.Int64:
		for i := 0; i < n; i++ {
			dst.I64 = append(dst.I64, int64(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	case schema.Float64:
		for i := 0; i < n; i++ {
			dst.F64 = append(dst.F64, math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	}
	c.pos += n
}

func (c *ColumnCursor) nextString(n int, dst *schema.Vector) error {
	for i := 0; i < n; i++ {
		z := indexByteFrom(c.raw, c.bpos, 0)
		if z < 0 {
			return fmt.Errorf("pax: unterminated string value")
		}
		if dst != nil {
			dst.Str = append(dst.Str, string(c.raw[c.bpos:z]))
		}
		c.bpos = z + 1
	}
	return nil
}
