package pax

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// Micro-benchmarks for the PAX block operations that sit on HAIL's upload
// hot path: append, sort (with full-column permutation), serialization and
// range reads. Run with -benchmem to see allocation behaviour.

func benchBlock(n int) *Block {
	rng := rand.New(rand.NewSource(42))
	b := NewBlock(testSchema)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(testRow(rng)); err != nil {
			panic(err)
		}
	}
	return b
}

func BenchmarkAppendRow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([]schema.Row, 1024)
	for i := range rows {
		rows[i] = testRow(rng)
	}
	b.ResetTimer()
	blk := NewBlock(testSchema)
	for i := 0; i < b.N; i++ {
		if err := blk.AppendRow(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	// The per-replica in-memory sort of §3.5: "two or three seconds" for
	// a 64 MB block on the paper's hardware.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		blk := benchBlock(64 * 1024)
		b.StartTimer()
		if _, err := blk.SortBy(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	blk := benchBlock(32 * 1024)
	data, err := blk.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	blk := benchBlock(32 * 1024)
	data, err := blk.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFixedColumnRange(b *testing.B) {
	blk := benchBlock(32 * 1024)
	data, _ := blk.Marshal()
	r, err := NewReader(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadColumnRange(0, 1024, 9*1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadStringColumnRange(b *testing.B) {
	blk := benchBlock(32 * 1024)
	data, _ := blk.Marshal()
	r, err := NewReader(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadColumnRange(4, 1024, 9*1024); err != nil {
			b.Fatal(err)
		}
	}
}
