package pax

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

var testSchema = schema.MustNew(
	schema.Field{Name: "id", Type: schema.Int32},
	schema.Field{Name: "big", Type: schema.Int64},
	schema.Field{Name: "rev", Type: schema.Float64},
	schema.Field{Name: "day", Type: schema.Date},
	schema.Field{Name: "url", Type: schema.String},
)

func testRow(rng *rand.Rand) schema.Row {
	urls := []string{"", "a", "example.com/page", "x/y/z?q=1", "long-url-with-many-characters/and/segments"}
	return schema.Row{
		schema.IntVal(rng.Int31n(1 << 20)),
		schema.LongVal(rng.Int63n(1 << 40)),
		schema.FloatVal(float64(rng.Intn(1000)) / 4),
		schema.DateVal(rng.Int31n(20000)),
		schema.StringVal(urls[rng.Intn(len(urls))]),
	}
}

// buildBlock builds an n-row random block; testRow always matches
// testSchema so append errors are programming bugs and panic.
func buildBlock(_ *testing.T, n int, seed int64) *Block {
	rng := rand.New(rand.NewSource(seed))
	b := NewBlock(testSchema)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(testRow(rng)); err != nil {
			panic(err)
		}
	}
	return b
}

func rowMultiset(rows []schema.Row) map[string]int {
	m := make(map[string]int)
	for _, r := range rows {
		m[schema.RowKey(r)]++
	}
	return m
}

func sameMultiset(a, b []schema.Row) bool {
	ma, mb := rowMultiset(a), rowMultiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func TestAppendAndAccess(t *testing.T) {
	b := NewBlock(testSchema)
	row := schema.Row{
		schema.IntVal(7), schema.LongVal(8), schema.FloatVal(1.5),
		schema.DateVal(schema.MustDate("1999-06-15")), schema.StringVal("u"),
	}
	if err := b.AppendRow(row); err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if b.NumRows() != 1 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
	if !b.Row(0).Equal(row) {
		t.Errorf("Row(0) = %v, want %v", b.Row(0), row)
	}
	if b.Value(0, 0).Int() != 7 {
		t.Errorf("Value(0,0) = %v", b.Value(0, 0))
	}
}

func TestAppendRowValidation(t *testing.T) {
	b := NewBlock(testSchema)
	if err := b.AppendRow(schema.Row{schema.IntVal(1)}); err == nil {
		t.Error("short row accepted")
	}
	bad := schema.Row{
		schema.StringVal("not-an-int"), schema.LongVal(8), schema.FloatVal(1.5),
		schema.DateVal(0), schema.StringVal("u"),
	}
	if err := b.AppendRow(bad); err == nil {
		t.Error("type-mismatched row accepted")
	}
	if b.NumRows() != 0 {
		t.Errorf("failed appends changed row count: %d", b.NumRows())
	}
}

func TestSortByClustersRows(t *testing.T) {
	b := buildBlock(t, 5000, 1)
	before := b.Rows()
	perm, err := b.SortBy(3) // day
	if err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	if len(perm) != 5000 {
		t.Fatalf("perm length = %d", len(perm))
	}
	if b.SortColumn() != 3 {
		t.Errorf("SortColumn = %d", b.SortColumn())
	}
	for i := 1; i < b.NumRows(); i++ {
		if b.Value(i-1, 3).Compare(b.Value(i, 3)) > 0 {
			t.Fatalf("rows %d,%d out of order on sort column", i-1, i)
		}
	}
	if !sameMultiset(before, b.Rows()) {
		t.Error("SortBy changed the multiset of rows")
	}
	// Row integrity: applying perm to the original rows gives the sorted rows.
	for i, p := range perm {
		if !b.Row(i).Equal(before[p]) {
			t.Fatalf("row %d does not match original row %d", i, p)
		}
	}
}

func TestSortByEveryColumnPreservesRows(t *testing.T) {
	for col := 0; col < testSchema.NumFields(); col++ {
		b := buildBlock(t, 1200, int64(col+10))
		before := b.Rows()
		if _, err := b.SortBy(col); err != nil {
			t.Fatalf("SortBy(%d): %v", col, err)
		}
		for i := 1; i < b.NumRows(); i++ {
			if b.Value(i-1, col).Compare(b.Value(i, col)) > 0 {
				t.Fatalf("col %d: out of order at %d", col, i)
			}
		}
		if !sameMultiset(before, b.Rows()) {
			t.Fatalf("col %d: multiset changed", col)
		}
	}
}

func TestSortByOutOfRange(t *testing.T) {
	b := buildBlock(t, 10, 2)
	if _, err := b.SortBy(-1); err == nil {
		t.Error("SortBy(-1) succeeded")
	}
	if _, err := b.SortBy(99); err == nil {
		t.Error("SortBy(99) succeeded")
	}
}

func TestAppendInvalidatesSortOrder(t *testing.T) {
	b := buildBlock(t, 100, 3)
	if _, err := b.SortBy(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := b.AppendRow(testRow(rng)); err != nil {
		t.Fatal(err)
	}
	if b.SortColumn() != -1 {
		t.Errorf("SortColumn after append = %d, want -1", b.SortColumn())
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := buildBlock(t, 500, 5)
	b.AppendBad("oops")
	c := b.Clone()
	if _, err := c.SortBy(1); err != nil {
		t.Fatal(err)
	}
	if b.SortColumn() != -1 {
		t.Error("sorting the clone changed the original's sort column")
	}
	if !sameMultiset(b.Rows(), c.Rows()) {
		t.Error("clone has different rows")
	}
	if c.NumBad() != 1 || c.BadRecord(0) != "oops" {
		t.Error("clone lost bad records")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := buildBlock(t, 3000, 6)
	b.AppendBad("bad line 1")
	b.AppendBad("")
	b.AppendBad("another,malformed,record,with,fields")
	if _, err := b.SortBy(4); err != nil {
		t.Fatal(err)
	}
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.SortColumn() != 4 {
		t.Errorf("SortColumn = %d, want 4", got.SortColumn())
	}
	if got.NumRows() != b.NumRows() || got.NumBad() != 3 {
		t.Fatalf("rows/bad = %d/%d, want %d/3", got.NumRows(), got.NumBad(), b.NumRows())
	}
	for i := 0; i < b.NumRows(); i++ {
		if !got.Row(i).Equal(b.Row(i)) {
			t.Fatalf("row %d mismatch", i)
		}
	}
	for i := 0; i < 3; i++ {
		if got.BadRecord(i) != b.BadRecord(i) {
			t.Errorf("bad record %d = %q, want %q", i, got.BadRecord(i), b.BadRecord(i))
		}
	}
}

func TestMarshalEmptyBlock(t *testing.T) {
	b := NewBlock(testSchema)
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal empty: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal empty: %v", err)
	}
	if got.NumRows() != 0 || got.NumBad() != 0 {
		t.Errorf("empty block round trip: rows=%d bad=%d", got.NumRows(), got.NumBad())
	}
}

func TestMarshalRejectsNULStrings(t *testing.T) {
	b := NewBlock(schema.MustNew(schema.Field{Name: "s", Type: schema.String}))
	if err := b.AppendRow(schema.Row{schema.StringVal("a\x00b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Marshal(); err == nil {
		t.Error("Marshal accepted a string containing NUL")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall) * 17 // 0 .. 4335, crosses partition boundaries scaled down
		b := buildBlock(nil, n, seed)
		if seed%2 == 0 && n > 0 {
			if _, err := b.SortBy(int(uint(seed) % 5)); err != nil {
				return false
			}
		}
		data, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return sameMultiset(b.Rows(), got.Rows()) && got.SortColumn() == b.SortColumn()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReaderHeaderValidation(t *testing.T) {
	b := buildBlock(t, 10, 7)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(data[:8]); err == nil {
		t.Error("truncated block accepted")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[0] = 'X'
	if _, err := NewReader(corrupt); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(nil); err == nil {
		t.Error("nil block accepted")
	}
}

func TestReaderColumnRange(t *testing.T) {
	b := buildBlock(t, 4000, 8)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []int{0, 1, 2, 3, 4} {
		from, to := 1500, 2600
		vals, err := r.ReadColumnRange(col, from, to)
		if err != nil {
			t.Fatalf("ReadColumnRange(%d): %v", col, err)
		}
		if len(vals) != to-from {
			t.Fatalf("col %d: got %d values, want %d", col, len(vals), to-from)
		}
		for i, v := range vals {
			if !v.Equal(b.Value(from+i, col)) {
				t.Fatalf("col %d row %d: %v != %v", col, from+i, v, b.Value(from+i, col))
			}
		}
	}
}

func TestReaderRangeBounds(t *testing.T) {
	b := buildBlock(t, 100, 9)
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadColumnRange(0, -1, 5); err == nil {
		t.Error("negative fromRow accepted")
	}
	if _, err := r.ReadColumnRange(0, 5, 101); err == nil {
		t.Error("toRow beyond rows accepted")
	}
	if _, err := r.ReadColumnRange(0, 7, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := r.ReadColumnRange(99, 0, 1); err == nil {
		t.Error("bad column accepted")
	}
	if vals, err := r.ReadColumnRange(0, 5, 5); err != nil || vals != nil {
		t.Errorf("empty range: %v, %v", vals, err)
	}
}

func TestReaderIOAccounting(t *testing.T) {
	b := buildBlock(t, 3000, 10)
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-size column: exact byte accounting, one seek.
	if _, err := r.ReadColumnRange(0, 100, 300); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.BytesRead != 200*4 {
		t.Errorf("BytesRead = %d, want 800", st.BytesRead)
	}
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1", st.Seeks)
	}
	// Adjacent follow-up read: no extra seek.
	if _, err := r.ReadColumnRange(0, 300, 400); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Seeks; got != 1 {
		t.Errorf("Seeks after adjacent read = %d, want 1", got)
	}
	// Distant read: one more seek.
	if _, err := r.ReadColumnRange(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Seeks; got != 2 {
		t.Errorf("Seeks after distant read = %d, want 2", got)
	}
	r.ResetStats()
	if r.Stats() != (IOStats{}) {
		t.Error("ResetStats did not clear stats")
	}
}

func TestStringColumnPartitionGranularity(t *testing.T) {
	// Reading one string row must read the whole covering partition, not
	// just one value (paper §3.5: "we scan the partition entirely").
	b := buildBlock(t, 3*PartitionSize, 11)
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := r.ReadColumnRange(4, PartitionSize+5, PartitionSize+6)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || !vals[0].Equal(b.Value(PartitionSize+5, 4)) {
		t.Fatalf("wrong value: %v", vals)
	}
	st := r.Stats()
	// Must have read at least a partition's worth of terminators.
	if st.BytesRead < PartitionSize {
		t.Errorf("BytesRead = %d, expected at least one partition (%d)", st.BytesRead, PartitionSize)
	}
}

func TestColumnBytesMatchesSerialized(t *testing.T) {
	b := buildBlock(t, 2500, 12)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < testSchema.NumFields(); col++ {
		if b.ColumnBytes(col) != r.ColumnSize(col) {
			t.Errorf("col %d: ColumnBytes=%d, serialized=%d", col, b.ColumnBytes(col), r.ColumnSize(col))
		}
	}
}

func TestReadBadRecords(t *testing.T) {
	b := buildBlock(t, 50, 13)
	want := []string{"first bad", "", "third,bad,record"}
	for _, s := range want {
		b.AppendBad(s)
	}
	data, _ := b.Marshal()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAllBad()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d bad records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bad[%d] = %q, want %q", i, got[i], want[i])
		}
		one, err := r.ReadBad(i)
		if err != nil || one != want[i] {
			t.Errorf("ReadBad(%d) = %q, %v", i, one, err)
		}
	}
	if _, err := r.ReadBad(3); err == nil {
		t.Error("ReadBad out of range succeeded")
	}
}

func TestSortIsStable(t *testing.T) {
	// Duplicate keys must preserve input order (stable sort), so replicas
	// built from the same logical block agree on tie order.
	s := schema.MustNew(
		schema.Field{Name: "k", Type: schema.Int32},
		schema.Field{Name: "seq", Type: schema.Int32},
	)
	b := NewBlock(s)
	for i := 0; i < 1000; i++ {
		if err := b.AppendRow(schema.Row{schema.IntVal(int32(i % 7)), schema.IntVal(int32(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.SortBy(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < b.NumRows(); i++ {
		if b.Value(i-1, 0).Int() == b.Value(i, 0).Int() && b.Value(i-1, 1).Int() > b.Value(i, 1).Int() {
			t.Fatalf("unstable sort at row %d", i)
		}
	}
}

func TestMarshalSizeIsReasonable(t *testing.T) {
	b := buildBlock(t, 5000, 14)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fixed := 5000 * (4 + 8 + 8 + 4)
	if len(data) < fixed {
		t.Errorf("serialized size %d smaller than fixed column payload %d", len(data), fixed)
	}
	sum := 0
	for c := 0; c < testSchema.NumFields(); c++ {
		sum += b.ColumnBytes(c)
	}
	if len(data) > sum+4096 {
		t.Errorf("header overhead too large: total=%d, columns=%d", len(data), sum)
	}
}

func TestSortedBlockBinarySearchable(t *testing.T) {
	b := buildBlock(t, 4096, 15)
	if _, err := b.SortBy(0); err != nil {
		t.Fatal(err)
	}
	// sort.Search over the clustered column must find every present value.
	n := b.NumRows()
	for probe := 0; probe < 100; probe++ {
		target := b.Value(probe*37%n, 0)
		i := sort.Search(n, func(i int) bool { return b.Value(i, 0).Compare(target) >= 0 })
		if i >= n || b.Value(i, 0).Compare(target) != 0 {
			t.Fatalf("binary search missed value %v", target)
		}
	}
}
