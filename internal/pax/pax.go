// Package pax implements the PAX (Partition Attributes Across) block layout
// HAIL uses for every block replica (paper §2.2, §3.1, §3.5).
//
// A Block holds the parsed rows of one HDFS block column-wise: all values of
// attribute 0, then all values of attribute 1, and so on. Records that did
// not parse against the schema ("bad records") are kept verbatim in a
// dedicated section of the block and are delivered, flagged, to the map
// function at query time.
//
// Fixed-size attributes are stored as packed little-endian values.
// Variable-size attributes are stored as zero-terminated byte strings,
// preceded by a sparse offset list holding the position of every n-th value
// (n = PartitionSize), exactly as described in §3.5 "Accessing Variable-size
// Attributes": tuple reconstruction for row r starts at offset[r/n] and
// skips r%n terminators.
//
// Reading has two granularities. Reader.ReadColumnRange boxes a row range
// into []schema.Value eagerly — the legacy row path. ColumnCursor is the
// vectorized access path: it performs the same raw reads (same bytes,
// same seeks) once at creation, then decodes lazily, batch by batch, into
// reused typed schema.Vectors; NextSelected decodes only the rows a
// selection vector kept, which is what makes late materialization pay on
// selective scans — skipped string values are walked past, never
// allocated.
package pax

import (
	"fmt"
	"sort"

	"repro/internal/schema"
)

// PartitionSize is the number of rows per logical index partition. Sparse
// offset lists for variable-size attributes and the sparse clustered index
// both use this granularity (paper §3.5: "partitions consisting of 1,024
// values").
const PartitionSize = 1024

// column is the in-memory representation of one attribute's values.
type column struct {
	typ schema.Type
	i32 []int32 // Int32, Date
	i64 []int64
	f64 []float64
	str []string
}

func newColumn(t schema.Type) *column { return &column{typ: t} }

func (c *column) len() int {
	switch c.typ {
	case schema.Int32, schema.Date:
		return len(c.i32)
	case schema.Int64:
		return len(c.i64)
	case schema.Float64:
		return len(c.f64)
	case schema.String:
		return len(c.str)
	}
	return 0
}

func (c *column) append(v schema.Value) {
	switch c.typ {
	case schema.Int32, schema.Date:
		c.i32 = append(c.i32, int32(v.Long()))
	case schema.Int64:
		c.i64 = append(c.i64, v.Long())
	case schema.Float64:
		c.f64 = append(c.f64, v.Float())
	case schema.String:
		c.str = append(c.str, v.Str())
	}
}

func (c *column) value(i int) schema.Value {
	switch c.typ {
	case schema.Int32:
		return schema.IntVal(c.i32[i])
	case schema.Date:
		return schema.DateVal(c.i32[i])
	case schema.Int64:
		return schema.LongVal(c.i64[i])
	case schema.Float64:
		return schema.FloatVal(c.f64[i])
	case schema.String:
		return schema.StringVal(c.str[i])
	}
	panic("pax: invalid column type")
}

// compare orders the values at rows i and j.
func (c *column) compare(i, j int) int {
	switch c.typ {
	case schema.Int32, schema.Date:
		a, b := c.i32[i], c.i32[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case schema.Int64:
		a, b := c.i64[i], c.i64[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case schema.Float64:
		a, b := c.f64[i], c.f64[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case schema.String:
		a, b := c.str[i], c.str[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	panic("pax: invalid column type")
}

// permute reorders the column in place so that new position i holds the
// value previously at perm[i].
func (c *column) permute(perm []int) {
	switch c.typ {
	case schema.Int32, schema.Date:
		out := make([]int32, len(c.i32))
		for i, p := range perm {
			out[i] = c.i32[p]
		}
		c.i32 = out
	case schema.Int64:
		out := make([]int64, len(c.i64))
		for i, p := range perm {
			out[i] = c.i64[p]
		}
		c.i64 = out
	case schema.Float64:
		out := make([]float64, len(c.f64))
		for i, p := range perm {
			out[i] = c.f64[p]
		}
		c.f64 = out
	case schema.String:
		out := make([]string, len(c.str))
		for i, p := range perm {
			out[i] = c.str[p]
		}
		c.str = out
	}
}

// Block is an in-memory PAX block: the unit HAIL sorts, indexes and flushes.
type Block struct {
	sch  *schema.Schema
	cols []*column
	bad  []string // bad records, verbatim input lines
	// sortCol is the attribute the good rows are clustered on, or -1.
	sortCol int
}

// NewBlock returns an empty block for the given schema.
func NewBlock(s *schema.Schema) *Block {
	cols := make([]*column, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		cols[i] = newColumn(s.Field(i).Type)
	}
	return &Block{sch: s, cols: cols, sortCol: -1}
}

// Schema returns the block's schema.
func (b *Block) Schema() *schema.Schema { return b.sch }

// NumRows returns the number of good (parsed) rows.
func (b *Block) NumRows() int { return b.cols[0].len() }

// NumBad returns the number of bad records.
func (b *Block) NumBad() int { return len(b.bad) }

// SortColumn returns the attribute index the rows are clustered on, or -1
// if the block is in arrival order.
func (b *Block) SortColumn() int { return b.sortCol }

// AppendRow adds one parsed row. The row must match the schema.
func (b *Block) AppendRow(r schema.Row) error {
	if len(r) != len(b.cols) {
		return fmt.Errorf("pax: row has %d values, schema has %d", len(r), len(b.cols))
	}
	for i, v := range r {
		want := b.sch.Field(i).Type
		if v.Type() != want {
			return fmt.Errorf("pax: row value %d is %s, schema wants %s", i, v.Type(), want)
		}
	}
	for i, v := range r {
		b.cols[i].append(v)
	}
	b.sortCol = -1
	return nil
}

// AppendBad adds one bad record (the unparsed input line).
func (b *Block) AppendBad(line string) { b.bad = append(b.bad, line) }

// BadRecord returns the i-th bad record.
func (b *Block) BadRecord(i int) string { return b.bad[i] }

// Value returns the value of attribute col in row r.
func (b *Block) Value(r, col int) schema.Value { return b.cols[col].value(r) }

// Row materializes row r across all attributes.
func (b *Block) Row(r int) schema.Row {
	row := make(schema.Row, len(b.cols))
	for i, c := range b.cols {
		row[i] = c.value(r)
	}
	return row
}

// Rows materializes every good row (test helper; O(rows × cols)).
func (b *Block) Rows() []schema.Row {
	out := make([]schema.Row, b.NumRows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

// SortBy clusters the block on attribute col: it stable-sorts the rows by
// that attribute and applies the resulting permutation (the paper's "sort
// index") to every column, preserving row integrity. It returns the
// permutation so callers can account for the reorganization cost.
func (b *Block) SortBy(col int) ([]int, error) {
	if col < 0 || col >= len(b.cols) {
		return nil, fmt.Errorf("pax: sort column %d out of range [0,%d)", col, len(b.cols))
	}
	n := b.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	key := b.cols[col]
	sort.SliceStable(perm, func(i, j int) bool { return key.compare(perm[i], perm[j]) < 0 })
	for _, c := range b.cols {
		c.permute(perm)
	}
	b.sortCol = col
	return perm, nil
}

// Clone deep-copies the block. Each replica of a block starts from the same
// logical content and is then sorted independently (paper §3.2).
func (b *Block) Clone() *Block {
	nb := NewBlock(b.sch)
	nb.sortCol = b.sortCol
	for i, c := range b.cols {
		nc := nb.cols[i]
		nc.i32 = append(nc.i32, c.i32...)
		nc.i64 = append(nc.i64, c.i64...)
		nc.f64 = append(nc.f64, c.f64...)
		nc.str = append(nc.str, c.str...)
	}
	nb.bad = append(nb.bad, b.bad...)
	return nb
}

// ColumnBytes returns the serialized size in bytes of attribute col,
// including the sparse offset list for variable-size attributes.
func (b *Block) ColumnBytes(col int) int {
	c := b.cols[col]
	n := c.len()
	if c.typ.FixedSize() {
		return n * c.typ.Width()
	}
	sz := numPartitions(n) * 4 // sparse offset list, one uint32 per partition
	for _, s := range c.str {
		sz += len(s) + 1 // zero-terminated
	}
	return sz
}

// numPartitions returns the number of PartitionSize-row partitions needed
// to cover n rows.
func numPartitions(n int) int { return (n + PartitionSize - 1) / PartitionSize }
