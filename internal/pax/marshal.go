package pax

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/schema"
)

// Binary layout of a serialized PAX block ("Block Metadata" header followed
// by the column data areas and the bad-record section):
//
//	magic     [4]byte  "PAXB"
//	version   uint16   currently 1
//	sortCol   int32    clustering attribute, -1 if unsorted
//	numRows   uint32
//	numBad    uint32
//	schemaLen uint16, schema DDL (see schema.ParseSchema)
//	colCount  uint16
//	col dirs  colCount × {offset uint32, length uint32}
//	bad dir   {offset uint32, length uint32}
//	data      column areas in order, then the bad-record section
//
// A fixed-size column area is packed little-endian values. A variable-size
// column area is a sparse offset list (one uint32 per PartitionSize rows,
// relative to the start of the value bytes) followed by the zero-terminated
// values. The bad-record section is a sequence of {len uint32, bytes}.
const (
	blockMagic   = "PAXB"
	blockVersion = 1
)

// Marshal serializes the block.
func (b *Block) Marshal() ([]byte, error) {
	nRows := b.NumRows()
	if nRows > math.MaxUint32 {
		return nil, fmt.Errorf("pax: too many rows (%d)", nRows)
	}
	ddl := b.sch.String()
	if len(ddl) > math.MaxUint16 {
		return nil, fmt.Errorf("pax: schema too large")
	}
	nCols := len(b.cols)

	headerLen := 4 + 2 + 4 + 4 + 4 + 2 + len(ddl) + 2 + nCols*8 + 8
	colAreas := make([][]byte, nCols)
	for i, c := range b.cols {
		area, err := marshalColumn(c)
		if err != nil {
			return nil, fmt.Errorf("pax: column %d (%s): %v", i, b.sch.Field(i).Name, err)
		}
		colAreas[i] = area
	}
	badArea := marshalBad(b.bad)

	total := headerLen
	for _, a := range colAreas {
		total += len(a)
	}
	total += len(badArea)
	if total > math.MaxUint32 {
		return nil, fmt.Errorf("pax: block too large (%d bytes)", total)
	}

	out := make([]byte, 0, total)
	out = append(out, blockMagic...)
	out = binary.LittleEndian.AppendUint16(out, blockVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(b.sortCol)))
	out = binary.LittleEndian.AppendUint32(out, uint32(nRows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.bad)))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ddl)))
	out = append(out, ddl...)
	out = binary.LittleEndian.AppendUint16(out, uint16(nCols))
	off := headerLen
	for _, a := range colAreas {
		out = binary.LittleEndian.AppendUint32(out, uint32(off))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(a)))
		off += len(a)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(off))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(badArea)))
	for _, a := range colAreas {
		out = append(out, a...)
	}
	out = append(out, badArea...)
	return out, nil
}

func marshalColumn(c *column) ([]byte, error) {
	switch c.typ {
	case schema.Int32, schema.Date:
		out := make([]byte, 0, 4*len(c.i32))
		for _, v := range c.i32 {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
		return out, nil
	case schema.Int64:
		out := make([]byte, 0, 8*len(c.i64))
		for _, v := range c.i64 {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
		return out, nil
	case schema.Float64:
		out := make([]byte, 0, 8*len(c.f64))
		for _, v := range c.f64 {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out, nil
	case schema.String:
		nParts := numPartitions(len(c.str))
		valBytes := 0
		for _, s := range c.str {
			if strings.IndexByte(s, 0) >= 0 {
				return nil, fmt.Errorf("string value contains NUL")
			}
			valBytes += len(s) + 1
		}
		out := make([]byte, 0, nParts*4+valBytes)
		off := 0
		for i, s := range c.str {
			if i%PartitionSize == 0 {
				out = binary.LittleEndian.AppendUint32(out, uint32(off))
			}
			off += len(s) + 1
		}
		for _, s := range c.str {
			out = append(out, s...)
			out = append(out, 0)
		}
		return out, nil
	}
	return nil, fmt.Errorf("invalid column type")
}

func marshalBad(bad []string) []byte {
	sz := 0
	for _, s := range bad {
		sz += 4 + len(s)
	}
	out := make([]byte, 0, sz)
	for _, s := range bad {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out
}

// Unmarshal fully decodes a serialized block back into an in-memory Block.
// The upload path uses this when a datanode reassembles a block from
// packets; query-time access should prefer Reader, which touches only the
// byte ranges a query needs.
func Unmarshal(data []byte) (*Block, error) {
	r, err := NewReader(data)
	if err != nil {
		return nil, err
	}
	b := NewBlock(r.Schema())
	b.sortCol = r.SortColumn()
	n := r.NumRows()
	for col := 0; col < r.Schema().NumFields(); col++ {
		vals, err := r.ReadColumnRange(col, 0, n)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			b.cols[col].append(v)
		}
	}
	for i := 0; i < r.NumBad(); i++ {
		s, err := r.ReadBad(i)
		if err != nil {
			return nil, err
		}
		b.bad = append(b.bad, s)
	}
	return b, nil
}
