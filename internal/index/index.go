// Package index implements HAIL's sparse clustered index (paper §3.5).
//
// The index is built on a block whose rows are already clustered (sorted)
// on the indexed attribute. It has a single root directory — an array with
// the first key of every PartitionSize-row partition. Child pointers are
// implicit: all partitions are contiguous on disk, so partition p starts at
// row p × PartitionSize. For a range query the first and last qualifying
// partitions are determined entirely in main memory (steps 1 and 2 in the
// paper's Figure 2), the covering rows are read from disk, and boundary
// partitions are post-filtered.
//
// The paper argues (§3.5 "Why not a multi-level tree?") that a single-level
// directory is optimal for block sizes below ~5 GB; see the ablation bench
// BenchmarkAblationMultiLevelIndex.
package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/pax"
	"repro/internal/schema"
)

// Index is a sparse clustered index over one attribute of one PAX block.
type Index struct {
	column  int            // indexed (and clustering) attribute
	keyType schema.Type    // type of the indexed attribute
	numRows int            // rows covered
	keys    []schema.Value // first key of each partition, ascending
}

// Build creates the index for attribute col of block b. The block must
// already be clustered on col (call (*pax.Block).SortBy first); requiring
// this keeps "sort, then index" two explicit steps of the upload pipeline.
func Build(b *pax.Block, col int) (*Index, error) {
	if col < 0 || col >= b.Schema().NumFields() {
		return nil, fmt.Errorf("index: column %d out of range", col)
	}
	if b.SortColumn() != col {
		return nil, fmt.Errorf("index: block is clustered on %d, not %d", b.SortColumn(), col)
	}
	n := b.NumRows()
	ix := &Index{
		column:  col,
		keyType: b.Schema().Field(col).Type,
		numRows: n,
	}
	for r := 0; r < n; r += pax.PartitionSize {
		ix.keys = append(ix.keys, b.Value(r, col))
	}
	return ix, nil
}

// Column returns the indexed attribute position.
func (ix *Index) Column() int { return ix.column }

// KeyType returns the type of the indexed attribute.
func (ix *Index) KeyType() schema.Type { return ix.keyType }

// NumRows returns the number of rows the index covers.
func (ix *Index) NumRows() int { return ix.numRows }

// NumPartitions returns the number of partitions (index entries).
func (ix *Index) NumPartitions() int { return len(ix.keys) }

// PartitionRange computes, in main memory, the contiguous row range
// [fromRow, toRow) that covers every row possibly matching lo <= key <= hi
// (nil bounds are unbounded). The range is partition-aligned; callers
// post-filter the boundary partitions. ok is false when no row can match.
func (ix *Index) PartitionRange(lo, hi *schema.Value) (fromRow, toRow int, ok bool) {
	if ix.numRows == 0 {
		return 0, 0, false
	}
	nParts := len(ix.keys)

	// First partition: the predecessor of the first partition whose first
	// key is >= lo. Strictly earlier partitions contain only keys < lo
	// (clustered order); the predecessor itself may hold keys == lo or the
	// first keys >= lo in its tail — note ">= lo", not "> lo": when a run
	// of duplicates of lo crosses a partition boundary, the duplicates at
	// the tail of the previous partition must be covered too.
	pFrom := 0
	if lo != nil {
		i := sort.Search(nParts, func(p int) bool { return ix.keys[p].Compare(*lo) >= 0 })
		if i > 0 {
			pFrom = i - 1
		}
	}

	// Last partition: the last one whose first key is <= hi. If even the
	// first partition starts above hi, nothing matches.
	pTo := nParts - 1
	if hi != nil {
		i := sort.Search(nParts, func(p int) bool { return ix.keys[p].Compare(*hi) > 0 })
		if i == 0 {
			return 0, 0, false
		}
		pTo = i - 1
	}
	if pFrom > pTo {
		return 0, 0, false
	}
	fromRow = pFrom * pax.PartitionSize
	toRow = (pTo + 1) * pax.PartitionSize
	if toRow > ix.numRows {
		toRow = ix.numRows
	}
	return fromRow, toRow, true
}

// SizeBytes returns the serialized size of the index. For the paper's
// datasets this is a few KB (they report 2 KB vs. Hadoop++'s 304 KB), which
// is why reading the whole index into memory per block is cheap.
func (ix *Index) SizeBytes() int {
	data, err := ix.Marshal()
	if err != nil {
		return 0
	}
	return len(data)
}

// Binary layout: magic "HIDX", version uint16, column int32, keyType uint8,
// numRows uint32, numKeys uint32, then the keys (packed little-endian for
// fixed types; {len uint16, bytes} for strings).
const (
	indexMagic   = "HIDX"
	indexVersion = 1
)

// Marshal serializes the index (the "Index Metadata" plus the root
// directory that gets stored with the block, paper §3.2 step 7).
func (ix *Index) Marshal() ([]byte, error) {
	out := make([]byte, 0, 16+len(ix.keys)*8)
	out = append(out, indexMagic...)
	out = binary.LittleEndian.AppendUint16(out, indexVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(ix.column)))
	out = append(out, byte(ix.keyType))
	out = binary.LittleEndian.AppendUint32(out, uint32(ix.numRows))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ix.keys)))
	for _, k := range ix.keys {
		switch ix.keyType {
		case schema.Int32, schema.Date:
			out = binary.LittleEndian.AppendUint32(out, uint32(k.Int()))
		case schema.Int64:
			out = binary.LittleEndian.AppendUint64(out, uint64(k.Long()))
		case schema.Float64:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(k.Float()))
		case schema.String:
			s := k.Str()
			if len(s) > math.MaxUint16 {
				return nil, fmt.Errorf("index: key too long (%d bytes)", len(s))
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
			out = append(out, s...)
		default:
			return nil, fmt.Errorf("index: cannot marshal key type %s", ix.keyType)
		}
	}
	return out, nil
}

// Unmarshal decodes a serialized index.
func Unmarshal(data []byte) (*Index, error) {
	if len(data) < 4+2+4+1+4+4 {
		return nil, fmt.Errorf("index: too short (%d bytes)", len(data))
	}
	if string(data[:4]) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", data[:4])
	}
	p := 4
	if v := binary.LittleEndian.Uint16(data[p:]); v != indexVersion {
		return nil, fmt.Errorf("index: unsupported version %d", v)
	}
	p += 2
	ix := &Index{}
	ix.column = int(int32(binary.LittleEndian.Uint32(data[p:])))
	p += 4
	ix.keyType = schema.Type(data[p])
	p++
	ix.numRows = int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	nKeys := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	ix.keys = make([]schema.Value, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		switch ix.keyType {
		case schema.Int32:
			if p+4 > len(data) {
				return nil, fmt.Errorf("index: truncated keys")
			}
			ix.keys = append(ix.keys, schema.IntVal(int32(binary.LittleEndian.Uint32(data[p:]))))
			p += 4
		case schema.Date:
			if p+4 > len(data) {
				return nil, fmt.Errorf("index: truncated keys")
			}
			ix.keys = append(ix.keys, schema.DateVal(int32(binary.LittleEndian.Uint32(data[p:]))))
			p += 4
		case schema.Int64:
			if p+8 > len(data) {
				return nil, fmt.Errorf("index: truncated keys")
			}
			ix.keys = append(ix.keys, schema.LongVal(int64(binary.LittleEndian.Uint64(data[p:]))))
			p += 8
		case schema.Float64:
			if p+8 > len(data) {
				return nil, fmt.Errorf("index: truncated keys")
			}
			ix.keys = append(ix.keys, schema.FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))))
			p += 8
		case schema.String:
			if p+2 > len(data) {
				return nil, fmt.Errorf("index: truncated keys")
			}
			n := int(binary.LittleEndian.Uint16(data[p:]))
			p += 2
			if p+n > len(data) {
				return nil, fmt.Errorf("index: truncated string key")
			}
			ix.keys = append(ix.keys, schema.StringVal(string(data[p:p+n])))
			p += n
		default:
			return nil, fmt.Errorf("index: invalid key type %d", ix.keyType)
		}
	}
	// Sanity: keys must be ascending or the index was corrupted.
	for i := 1; i < len(ix.keys); i++ {
		if ix.keys[i-1].Compare(ix.keys[i]) > 0 {
			return nil, fmt.Errorf("index: keys out of order at %d", i)
		}
	}
	if want := (ix.numRows + pax.PartitionSize - 1) / pax.PartitionSize; len(ix.keys) != want {
		return nil, fmt.Errorf("index: %d keys for %d rows, want %d", len(ix.keys), ix.numRows, want)
	}
	return ix, nil
}
