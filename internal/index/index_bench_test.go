package index

import (
	"testing"

	"repro/internal/schema"
)

func BenchmarkBuild(b *testing.B) {
	blk := sortedBlock(64*1024, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(blk, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionRange(b *testing.B) {
	blk := sortedBlock(64*1024, 0, 2)
	ix, err := Build(blk, 0)
	if err != nil {
		b.Fatal(err)
	}
	lo := schema.IntVal(1000)
	hi := schema.IntVal(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PartitionRange(&lo, &hi)
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	blk := sortedBlock(64*1024, 0, 3)
	ix, err := Build(blk, 0)
	if err != nil {
		b.Fatal(err)
	}
	data, err := ix.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ix.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unmarshal(d); err != nil {
			b.Fatal(err)
		}
	}
}
