package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pax"
	"repro/internal/schema"
)

var sch = schema.MustNew(
	schema.Field{Name: "k", Type: schema.Int32},
	schema.Field{Name: "day", Type: schema.Date},
	schema.Field{Name: "rev", Type: schema.Float64},
	schema.Field{Name: "word", Type: schema.String},
)

// sortedBlock builds an n-row block clustered on col.
func sortedBlock(n int, col int, seed int64) *pax.Block {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf"}
	b := pax.NewBlock(sch)
	for i := 0; i < n; i++ {
		row := schema.Row{
			schema.IntVal(rng.Int31n(1 << 16)),
			schema.DateVal(10000 + rng.Int31n(1000)),
			schema.FloatVal(float64(rng.Intn(200))),
			schema.StringVal(words[rng.Intn(len(words))]),
		}
		if err := b.AppendRow(row); err != nil {
			panic(err)
		}
	}
	if _, err := b.SortBy(col); err != nil {
		panic(err)
	}
	return b
}

func TestBuildRequiresClusteredBlock(t *testing.T) {
	b := sortedBlock(100, 0, 1)
	if _, err := Build(b, 1); err == nil {
		t.Error("Build on non-clustering column succeeded")
	}
	if _, err := Build(b, -1); err == nil {
		t.Error("Build(-1) succeeded")
	}
	if _, err := Build(b, 99); err == nil {
		t.Error("Build(99) succeeded")
	}
	if _, err := Build(b, 0); err != nil {
		t.Errorf("Build on clustering column failed: %v", err)
	}
}

func TestIndexShape(t *testing.T) {
	n := 3*pax.PartitionSize + 17
	b := sortedBlock(n, 0, 2)
	ix, err := Build(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRows() != n {
		t.Errorf("NumRows = %d, want %d", ix.NumRows(), n)
	}
	if ix.NumPartitions() != 4 {
		t.Errorf("NumPartitions = %d, want 4", ix.NumPartitions())
	}
	if ix.Column() != 0 || ix.KeyType() != schema.Int32 {
		t.Errorf("Column/KeyType = %d/%s", ix.Column(), ix.KeyType())
	}
}

// bruteRange returns the tightest partition-aligned row range covering all
// rows with lo <= v <= hi, computed by scanning the block.
func bruteRange(b *pax.Block, col int, lo, hi *schema.Value) (int, int, bool) {
	first, last := -1, -1
	for i := 0; i < b.NumRows(); i++ {
		v := b.Value(i, col)
		if lo != nil && v.Compare(*lo) < 0 {
			continue
		}
		if hi != nil && v.Compare(*hi) > 0 {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
	}
	if first < 0 {
		return 0, 0, false
	}
	pFrom := first / pax.PartitionSize
	pTo := last / pax.PartitionSize
	toRow := (pTo + 1) * pax.PartitionSize
	if toRow > b.NumRows() {
		toRow = b.NumRows()
	}
	return pFrom * pax.PartitionSize, toRow, true
}

func TestPartitionRangeMatchesBruteForce(t *testing.T) {
	n := 5*pax.PartitionSize + 123
	b := sortedBlock(n, 0, 3)
	ix, err := Build(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		loV := schema.IntVal(rng.Int31n(1 << 16))
		hiV := schema.IntVal(loV.Int() + rng.Int31n(1<<14))
		var lo, hi *schema.Value
		switch trial % 4 {
		case 0:
			lo, hi = &loV, &hiV
		case 1:
			lo, hi = &loV, nil
		case 2:
			lo, hi = nil, &hiV
		case 3:
			eq := schema.Value(loV)
			lo, hi = &eq, &eq
		}
		gf, gt, gok := ix.PartitionRange(lo, hi)
		bf, bt, bok := bruteRange(b, 0, lo, hi)
		if bok && !gok {
			t.Fatalf("trial %d: index missed matching rows (lo=%v hi=%v)", trial, lo, hi)
		}
		if !bok {
			// The index knows only first keys per partition, so it may
			// return a candidate range for an absent value; post-filtering
			// handles that. A false negative would be a bug (checked above).
			continue
		}
		// The index range must cover the brute range...
		if gf > bf || gt < bt {
			t.Fatalf("trial %d: index [%d,%d) does not cover brute [%d,%d)", trial, gf, gt, bf, bt)
		}
		// ...with at most one false-positive partition on each side: the
		// index cannot distinguish positions inside a partition.
		if bf-gf > pax.PartitionSize || gt-bt > pax.PartitionSize {
			t.Fatalf("trial %d: index [%d,%d) too loose for tightest [%d,%d)", trial, gf, gt, bf, bt)
		}
	}
}

func TestPartitionRangeEmptyResults(t *testing.T) {
	b := sortedBlock(2048, 0, 5)
	ix, err := Build(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Below all keys: no partition can match only if min > hi.
	minV := b.Value(0, 0)
	below := schema.IntVal(minV.Int() - 1)
	if _, _, ok := ix.PartitionRange(nil, &below); ok {
		t.Error("range below minimum returned ok")
	}
	// Above all keys: the last partition still must be checked, since the
	// index only stores first keys; ok=true is correct here.
	maxFirst := schema.IntVal(1 << 30)
	if _, _, ok := ix.PartitionRange(&maxFirst, nil); !ok {
		t.Error("range above all first keys must still cover the last partition")
	}
}

func TestPartitionRangeEmptyIndex(t *testing.T) {
	b := pax.NewBlock(sch)
	if _, err := b.SortBy(0); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ix.PartitionRange(nil, nil); ok {
		t.Error("empty index returned ok")
	}
}

func TestPartitionRangeUnbounded(t *testing.T) {
	n := 4 * pax.PartitionSize
	b := sortedBlock(n, 2, 6)
	ix, err := Build(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, to, ok := ix.PartitionRange(nil, nil)
	if !ok || f != 0 || to != n {
		t.Errorf("unbounded range = [%d,%d) ok=%v, want [0,%d) true", f, to, ok, n)
	}
}

func TestIndexOnEveryType(t *testing.T) {
	for col := 0; col < sch.NumFields(); col++ {
		b := sortedBlock(3000, col, int64(100+col))
		ix, err := Build(b, col)
		if err != nil {
			t.Fatalf("col %d: %v", col, err)
		}
		lo := b.Value(1500, col)
		f, to, ok := ix.PartitionRange(&lo, &lo)
		if !ok {
			t.Fatalf("col %d: present value not found", col)
		}
		found := false
		for r := f; r < to; r++ {
			if b.Value(r, col).Equal(lo) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("col %d: returned range does not contain the probe value", col)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for col := 0; col < sch.NumFields(); col++ {
		b := sortedBlock(2*pax.PartitionSize+50, col, int64(200+col))
		ix, err := Build(b, col)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ix.Marshal()
		if err != nil {
			t.Fatalf("col %d Marshal: %v", col, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("col %d Unmarshal: %v", col, err)
		}
		if got.Column() != ix.Column() || got.KeyType() != ix.KeyType() ||
			got.NumRows() != ix.NumRows() || got.NumPartitions() != ix.NumPartitions() {
			t.Fatalf("col %d: metadata mismatch after round trip", col)
		}
		// Lookups must agree.
		lo := b.Value(700, col)
		f1, t1, ok1 := ix.PartitionRange(&lo, nil)
		f2, t2, ok2 := got.PartitionRange(&lo, nil)
		if f1 != f2 || t1 != t2 || ok1 != ok2 {
			t.Errorf("col %d: lookup mismatch after round trip", col)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := sortedBlock(2048, 0, 7)
	ix, _ := Build(b, 0)
	data, err := ix.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data[:6]); err == nil {
		t.Error("truncated index accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'Z'
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Swap two keys to break ordering: keys start after the 19-byte header.
	swapped := append([]byte(nil), data...)
	copy(swapped[19:23], data[23:27])
	copy(swapped[23:27], data[19:23])
	if ix.NumPartitions() >= 2 {
		if _, err := Unmarshal(swapped); err == nil {
			t.Error("out-of-order keys accepted")
		}
	}
}

func TestIndexIsSparse(t *testing.T) {
	// The paper reports ~2 KB indexes vs. 304 KB for Hadoop++'s dense
	// trojan index; on a 256 MB block the root is ~0.01% of the data.
	n := 64 * pax.PartitionSize // 65,536 rows
	b := sortedBlock(n, 0, 8)
	ix, err := Build(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	sz := ix.SizeBytes()
	if sz == 0 || sz > 1024 {
		t.Errorf("index size = %d bytes, want sparse (<=1KB for 64 partitions)", sz)
	}
}

func TestLookupProperty(t *testing.T) {
	// Property: for any probe value, every row in the block matching the
	// point predicate lies inside the returned partition range.
	b := sortedBlock(4*pax.PartitionSize+99, 1, 9)
	ix, err := Build(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(probe int32) bool {
		v := schema.DateVal(10000 + probe%1000)
		from, to, ok := ix.PartitionRange(&v, &v)
		for i := 0; i < b.NumRows(); i++ {
			if b.Value(i, 1).Equal(v) {
				if !ok || i < from || i >= to {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
