// Package hadoop implements the baseline system of the paper's
// experiments: standard Hadoop MapReduce over standard HDFS. Files are
// uploaded as plain text blocks with byte-identical replicas; queries scan
// every block, and the user map function splits each text record into
// attributes itself (the "MAP FUNCTION FOR HADOOP MAPREDUCE" pseudo-code in
// §4.1).
//
// One simplification relative to real HDFS: blocks are cut at line
// boundaries instead of at a fixed byte count. Real Hadoop cuts at a fixed
// size and TextInputFormat re-attaches boundary-spanning lines at read
// time; cutting at line boundaries yields the same record-to-block
// assignment without reimplementing the boundary dance, and matches how
// HAIL's content-aware upload cuts blocks anyway (§3.1).
package hadoop

import (
	"fmt"
	"strings"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

// DefaultBlockSize is HDFS's default of 64 MB (§2.1). Experiments use much
// smaller real blocks and scale costs with sim's block scale factor.
const DefaultBlockSize = 64 << 20

// Uploader writes text files to HDFS the standard way.
type Uploader struct {
	Cluster     *hdfs.Cluster
	BlockSize   int // target block size in bytes
	Replication int
}

// UploadSummary reports what an upload stored, for the cost model.
type UploadSummary struct {
	Blocks      int
	TextBytes   int64 // total input text size
	StoredBytes int64 // bytes stored across all replicas
	BlockSizes  []int // per-block text size
	BlockIDs    []hdfs.BlockID
}

// Upload cuts lines into blocks of roughly BlockSize bytes and writes each
// through the HDFS pipeline with byte-identical replicas.
func (u *Uploader) Upload(file string, lines []string) (UploadSummary, error) {
	if u.BlockSize <= 0 {
		return UploadSummary{}, fmt.Errorf("hadoop: block size must be positive")
	}
	if u.Replication <= 0 {
		return UploadSummary{}, fmt.Errorf("hadoop: replication must be positive")
	}
	var sum UploadSummary
	var buf strings.Builder
	flush := func() error {
		if buf.Len() == 0 {
			return nil
		}
		data := []byte(buf.String())
		id, _, err := u.Cluster.WriteBlock(file, data, u.Replication, nil)
		if err != nil {
			return err
		}
		sum.Blocks++
		sum.BlockSizes = append(sum.BlockSizes, len(data))
		sum.BlockIDs = append(sum.BlockIDs, id)
		sum.StoredBytes += int64(len(data)) * int64(u.Replication)
		buf.Reset()
		return nil
	}
	for _, line := range lines {
		buf.WriteString(line)
		buf.WriteByte('\n')
		sum.TextBytes += int64(len(line) + 1)
		if buf.Len() >= u.BlockSize {
			if err := flush(); err != nil {
				return sum, err
			}
		}
	}
	if err := flush(); err != nil {
		return sum, err
	}
	return sum, nil
}

// TextInputFormat is standard Hadoop's input format: one split per block,
// split locations = the block's replica holders, full-scan line reader.
type TextInputFormat struct {
	Cluster *hdfs.Cluster
}

// Splits creates one split per HDFS block (the default policy, §4.2).
func (f *TextInputFormat) Splits(file string) ([]mapred.Split, error) {
	blocks, err := f.Cluster.NameNode().FileBlocks(file)
	if err != nil {
		return nil, err
	}
	splits := make([]mapred.Split, 0, len(blocks))
	for _, b := range blocks {
		splits = append(splits, mapred.Split{
			Blocks:    []hdfs.BlockID{b},
			Locations: f.Cluster.NameNode().GetHosts(b),
		})
	}
	return splits, nil
}

// SplitPhaseStats: the standard split phase only consults the namenode.
func (f *TextInputFormat) SplitPhaseStats() mapred.TaskStats { return mapred.TaskStats{} }

// Open returns a line record reader for the split.
func (f *TextInputFormat) Open(split mapred.Split, node hdfs.NodeID) (mapred.RecordReader, error) {
	return &lineReader{cluster: f.Cluster, split: split, node: node}, nil
}

// lineReader reads whole blocks and delivers one Record per text line,
// leaving parsing to the map function — exactly what makes the Hadoop
// baseline pay full-scan I/O plus per-record split CPU for every query.
type lineReader struct {
	cluster *hdfs.Cluster
	split   mapred.Split
	node    hdfs.NodeID
}

func (r *lineReader) Read(fn func(mapred.Record)) (mapred.TaskStats, error) {
	var stats mapred.TaskStats
	for _, b := range r.split.Blocks {
		data, servedBy, err := r.cluster.ReadBlockAny(b, r.node)
		if err != nil {
			return stats, err
		}
		stats.Blocks++
		stats.FullScans++
		stats.BytesRead += int64(len(data))
		stats.Seeks++
		stats.TextBytesParsed += int64(len(data))
		if servedBy != r.node {
			stats.RemoteReads++
		}
		for len(data) > 0 {
			nl := indexByte(data, '\n')
			var line []byte
			if nl < 0 {
				line, data = data, nil
			} else {
				line, data = data[:nl], data[nl+1:]
			}
			if len(line) == 0 && len(data) == 0 {
				break
			}
			stats.RecordsScanned++
			stats.RecordsDelivered++
			fn(mapred.Record{Raw: string(line)})
		}
	}
	return stats, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
