package hadoop

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/mapred"
)

func lines(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d,row-%d,value-%d", i, i, i*i)
	}
	return out
}

func upload(t *testing.T, nodes int, blockSize int, data []string) (*hdfs.Cluster, UploadSummary) {
	t.Helper()
	c, err := hdfs.NewCluster(nodes)
	if err != nil {
		t.Fatal(err)
	}
	u := &Uploader{Cluster: c, BlockSize: blockSize, Replication: 3}
	sum, err := u.Upload("/data", data)
	if err != nil {
		t.Fatal(err)
	}
	return c, sum
}

func TestUploadBlocksAtLineBoundaries(t *testing.T) {
	data := lines(1000)
	c, sum := upload(t, 5, 4096, data)
	if sum.Blocks < 2 {
		t.Fatalf("expected multiple blocks, got %d", sum.Blocks)
	}
	var total int64
	for _, l := range data {
		total += int64(len(l) + 1)
	}
	if sum.TextBytes != total {
		t.Errorf("TextBytes = %d, want %d", sum.TextBytes, total)
	}
	if sum.StoredBytes != 3*total {
		t.Errorf("StoredBytes = %d, want %d (3 replicas)", sum.StoredBytes, 3*total)
	}
	// Every block must end exactly at a line boundary: reassembling all
	// blocks gives back the input.
	var rebuilt []string
	for _, id := range sum.BlockIDs {
		raw, _, err := c.ReadBlockAny(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if raw[len(raw)-1] != '\n' {
			t.Errorf("block %d does not end at a line boundary", id)
		}
		for _, l := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
			rebuilt = append(rebuilt, l)
		}
	}
	if len(rebuilt) != len(data) {
		t.Fatalf("rebuilt %d lines, want %d", len(rebuilt), len(data))
	}
	for i := range data {
		if rebuilt[i] != data[i] {
			t.Fatalf("line %d = %q, want %q", i, rebuilt[i], data[i])
		}
	}
}

func TestUploadValidation(t *testing.T) {
	c, _ := hdfs.NewCluster(3)
	if _, err := (&Uploader{Cluster: c, BlockSize: 0, Replication: 3}).Upload("/x", lines(1)); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := (&Uploader{Cluster: c, BlockSize: 100, Replication: 0}).Upload("/x", lines(1)); err == nil {
		t.Error("zero replication accepted")
	}
}

func TestFullScanJobSeesEveryLine(t *testing.T) {
	data := lines(2000)
	c, sum := upload(t, 4, 8192, data)
	e := &mapred.Engine{Cluster: c}
	job := &mapred.Job{
		Name:  "scan",
		File:  "/data",
		Input: &TextInputFormat{Cluster: c},
		Map: func(r mapred.Record, emit mapred.Emit) {
			emit(r.Raw, "")
		},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(data) {
		t.Fatalf("scan saw %d lines, want %d", len(res.Output), len(data))
	}
	seen := make(map[string]int)
	for _, kv := range res.Output {
		seen[kv.Key]++
	}
	for _, l := range data {
		if seen[l] != 1 {
			t.Fatalf("line %q seen %d times", l, seen[l])
		}
	}
	if len(res.Tasks) != sum.Blocks {
		t.Errorf("tasks = %d, want one per block (%d)", len(res.Tasks), sum.Blocks)
	}
	stats := res.TotalStats()
	if stats.FullScans != sum.Blocks || stats.IndexScans != 0 {
		t.Errorf("scans: %d full, %d index", stats.FullScans, stats.IndexScans)
	}
	if stats.BytesRead != sum.TextBytes {
		t.Errorf("BytesRead = %d, want %d (full scan reads everything)", stats.BytesRead, sum.TextBytes)
	}
	if stats.TextBytesParsed != sum.TextBytes {
		t.Errorf("TextBytesParsed = %d, want %d", stats.TextBytesParsed, sum.TextBytes)
	}
}

func TestSplitsOnePerBlockWithLocations(t *testing.T) {
	data := lines(500)
	c, sum := upload(t, 5, 4096, data)
	f := &TextInputFormat{Cluster: c}
	splits, err := f.Splits("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != sum.Blocks {
		t.Fatalf("splits = %d, want %d", len(splits), sum.Blocks)
	}
	for _, s := range splits {
		if len(s.Blocks) != 1 {
			t.Errorf("split has %d blocks, want 1", len(s.Blocks))
		}
		if len(s.Locations) != 3 {
			t.Errorf("split has %d locations, want 3 replicas", len(s.Locations))
		}
	}
	if _, err := f.Splits("/missing"); err == nil {
		t.Error("Splits on missing file succeeded")
	}
}

func TestScanSurvivesNodeFailure(t *testing.T) {
	data := lines(1500)
	c, _ := upload(t, 5, 4096, data)
	c.KillNode(2)
	e := &mapred.Engine{Cluster: c}
	res, err := e.Run(&mapred.Job{
		Name:  "scan-fo",
		File:  "/data",
		Input: &TextInputFormat{Cluster: c},
		Map:   func(r mapred.Record, emit mapred.Emit) { emit(r.Raw, "") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(data) {
		t.Errorf("scan after failure saw %d lines, want %d", len(res.Output), len(data))
	}
}
