package query_test

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/schema"
)

// Bob's first query from the paper (§4.1): filter a one-year visitDate
// window, project sourceIP.
func ExampleParseAnnotation() {
	sch := schema.MustNew(
		schema.Field{Name: "sourceIP", Type: schema.String},
		schema.Field{Name: "destURL", Type: schema.String},
		schema.Field{Name: "visitDate", Type: schema.Date},
	)
	q, err := query.ParseAnnotation(sch,
		`@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`)
	if err != nil {
		panic(err)
	}
	fmt.Println("predicates:", len(q.Filter))
	fmt.Println("filter column:", q.Filter[0].Column)
	fmt.Println("projection:", q.Projection)

	row := schema.Row{
		schema.StringVal("10.0.0.1"),
		schema.StringVal("http://x/"),
		schema.DateVal(schema.MustDate("1999-06-15")),
	}
	fmt.Println("matches 1999-06-15:", q.MatchesRow(row))
	// Output:
	// predicates: 1
	// filter column: 2
	// projection: [0]
	// matches 1999-06-15: true
}

func ExamplePredicate() {
	p := query.Between(0, schema.IntVal(10), schema.IntVal(20))
	fmt.Println(p.Matches(schema.IntVal(15)))
	fmt.Println(p.Matches(schema.IntVal(21)))
	fmt.Println(p)
	// Output:
	// true
	// false
	// @1 between(10,20)
}
