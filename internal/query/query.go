// Package query defines selection predicates, projections, and the
// HailQuery annotation syntax that MapReduce jobs use to tell HAIL what a
// map function needs (paper §4.1).
//
// A job annotated with
//
//	@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})
//
// receives only the projected attributes of the tuples matching the filter.
// Attribute references are 1-based (@1 is the first attribute), following
// the paper. A filter is a conjunction of per-attribute predicates; HAIL
// picks a clustered index matching one of them and post-filters the rest.
//
// Predicates evaluate in two forms. Matches/MatchesRow compare boxed
// schema.Values one row at a time. The vectorized form works on whole
// batches: FilterVector runs one predicate as a typed kernel over a
// schema.Vector, writing the indices of surviving rows into a Selection
// (a selection vector), and MatchesBatch chains the conjunction by
// feeding each predicate the previous one's survivors — intersection by
// construction, with an empty-selection short circuit. Both forms are
// equivalence-tested against each other on randomized blocks.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/schema"
)

// Predicate is a range or point condition on a single attribute. Bounds are
// inclusive; a nil bound is unbounded on that side. A point predicate has
// Lo == Hi.
type Predicate struct {
	Column int // 0-based attribute position
	Lo, Hi *schema.Value
}

// Eq returns the point predicate column = v.
func Eq(column int, v schema.Value) Predicate {
	return Predicate{Column: column, Lo: &v, Hi: &v}
}

// Between returns the inclusive range predicate lo <= column <= hi.
func Between(column int, lo, hi schema.Value) Predicate {
	return Predicate{Column: column, Lo: &lo, Hi: &hi}
}

// AtLeast returns column >= lo.
func AtLeast(column int, lo schema.Value) Predicate {
	return Predicate{Column: column, Lo: &lo}
}

// AtMost returns column <= hi.
func AtMost(column int, hi schema.Value) Predicate {
	return Predicate{Column: column, Hi: &hi}
}

// Matches reports whether value v (of the predicate's attribute) satisfies
// the predicate.
func (p Predicate) Matches(v schema.Value) bool {
	if p.Lo != nil && v.Compare(*p.Lo) < 0 {
		return false
	}
	if p.Hi != nil && v.Compare(*p.Hi) > 0 {
		return false
	}
	return true
}

// IsPoint reports whether the predicate is an equality.
func (p Predicate) IsPoint() bool {
	return p.Lo != nil && p.Hi != nil && p.Lo.Equal(*p.Hi)
}

// Canonical renders the predicate as a whitespace-free interval,
// independent of how it was constructed: `@8 >= 1 and @8 <= 10`,
// `@8 between(1,10)` and `@8 between( 1 , 10 )` all canonicalize to
// "@8[1..10]". Unbounded sides render as -inf / +inf. This is the stable
// string form cache keys and logs are built from, so it must be
// injective: string-typed bounds are quoted (they may contain the ".."
// and ";" delimiters); numeric and date renderings cannot.
func (p Predicate) Canonical() string {
	canon := func(v *schema.Value, unbounded string) string {
		if v == nil {
			return unbounded
		}
		if v.Type() == schema.String {
			return strconv.Quote(v.String())
		}
		return v.String()
	}
	return fmt.Sprintf("@%d[%s..%s]", p.Column+1, canon(p.Lo, "-inf"), canon(p.Hi, "+inf"))
}

// String renders the predicate in annotation syntax.
func (p Predicate) String() string {
	switch {
	case p.IsPoint():
		return fmt.Sprintf("@%d = %s", p.Column+1, p.Lo)
	case p.Lo != nil && p.Hi != nil:
		return fmt.Sprintf("@%d between(%s,%s)", p.Column+1, p.Lo, p.Hi)
	case p.Lo != nil:
		return fmt.Sprintf("@%d >= %s", p.Column+1, p.Lo)
	case p.Hi != nil:
		return fmt.Sprintf("@%d <= %s", p.Column+1, p.Hi)
	default:
		return fmt.Sprintf("@%d any", p.Column+1)
	}
}

// Query is the selection and projection a map function declared. A nil or
// empty Filter means full scan; an empty Projection means all attributes
// (paper §4.3: "In case that no projection was specified by users, we then
// reconstruct all attributes").
type Query struct {
	Filter     []Predicate // conjunction
	Projection []int       // 0-based attribute positions, in output order
}

// MatchesRow evaluates the conjunction against a materialized row.
func (q *Query) MatchesRow(row schema.Row) bool {
	for _, p := range q.Filter {
		if !p.Matches(row[p.Column]) {
			return false
		}
	}
	return true
}

// ProjectionOrAll resolves the projection against a schema: an empty
// projection expands to all attributes.
func (q *Query) ProjectionOrAll(s *schema.Schema) []int {
	if len(q.Projection) > 0 {
		return q.Projection
	}
	all := make([]int, s.NumFields())
	for i := range all {
		all[i] = i
	}
	return all
}

// Validate checks attribute positions and bound types against a schema.
func (q *Query) Validate(s *schema.Schema) error {
	for _, p := range q.Filter {
		if p.Column < 0 || p.Column >= s.NumFields() {
			return fmt.Errorf("query: filter attribute @%d out of range", p.Column+1)
		}
		t := s.Field(p.Column).Type
		if p.Lo != nil && p.Lo.Type() != t {
			return fmt.Errorf("query: filter on @%d: bound type %s, attribute type %s", p.Column+1, p.Lo.Type(), t)
		}
		if p.Hi != nil && p.Hi.Type() != t {
			return fmt.Errorf("query: filter on @%d: bound type %s, attribute type %s", p.Column+1, p.Hi.Type(), t)
		}
		if p.Lo != nil && p.Hi != nil && p.Lo.Compare(*p.Hi) > 0 {
			return fmt.Errorf("query: filter on @%d: empty range (%s > %s)", p.Column+1, p.Lo, p.Hi)
		}
	}
	for _, c := range q.Projection {
		if c < 0 || c >= s.NumFields() {
			return fmt.Errorf("query: projection attribute @%d out of range", c+1)
		}
	}
	return nil
}

// Signature returns a canonical, normalized identity of the query's
// semantics: predicates on the same attribute are intersected, conjuncts
// are ordered by attribute, and each is rendered in its Canonical interval
// form, so two queries that select the same rows and project the same
// attributes have equal signatures regardless of operand order, operator
// spelling (>=/<= vs between) or whitespace. The block-level result cache
// keys entries by this string; it is also the stable form for logs.
// Projection order is preserved — it changes the output rows.
func (q *Query) Signature() string {
	if q == nil {
		q = &Query{}
	}
	merged := mergeConjuncts(append([]Predicate(nil), q.Filter...))
	sort.Slice(merged, func(i, j int) bool { return merged[i].Column < merged[j].Column })
	var b strings.Builder
	b.WriteString("f{")
	for i, p := range merged {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(p.Canonical())
	}
	b.WriteString("}|p{")
	if len(q.Projection) == 0 {
		b.WriteByte('*')
	}
	for i, c := range q.Projection {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "@%d", c+1)
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the query in annotation syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(`@HailQuery(filter="`)
	for i, p := range q.Filter {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(`", projection={`)
	for i, c := range q.Projection {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "@%d", c+1)
	}
	b.WriteString("})")
	return b.String()
}
