package query

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

// userVisits mirrors the paper's UserVisits schema (§6.2): @1 sourceIP,
// @2 destURL, @3 visitDate, @4 adRevenue, @5 userAgent, @6 countryCode,
// @7 languageCode, @8 searchWord, @9 duration.
var userVisits = schema.MustNew(
	schema.Field{Name: "sourceIP", Type: schema.String},
	schema.Field{Name: "destURL", Type: schema.String},
	schema.Field{Name: "visitDate", Type: schema.Date},
	schema.Field{Name: "adRevenue", Type: schema.Float64},
	schema.Field{Name: "userAgent", Type: schema.String},
	schema.Field{Name: "countryCode", Type: schema.String},
	schema.Field{Name: "languageCode", Type: schema.String},
	schema.Field{Name: "searchWord", Type: schema.String},
	schema.Field{Name: "duration", Type: schema.Int32},
)

func TestParseBobQ1Annotation(t *testing.T) {
	// The exact annotation from paper §4.1.
	q, err := ParseAnnotation(userVisits,
		`@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`)
	if err != nil {
		t.Fatalf("ParseAnnotation: %v", err)
	}
	if len(q.Filter) != 1 {
		t.Fatalf("got %d predicates, want 1", len(q.Filter))
	}
	p := q.Filter[0]
	if p.Column != 2 {
		t.Errorf("filter column = %d, want 2", p.Column)
	}
	if p.Lo == nil || p.Hi == nil {
		t.Fatal("between produced unbounded predicate")
	}
	if p.Lo.Days() != schema.MustDate("1999-01-01") || p.Hi.Days() != schema.MustDate("2000-01-01") {
		t.Errorf("bounds = %v..%v", p.Lo, p.Hi)
	}
	if len(q.Projection) != 1 || q.Projection[0] != 0 {
		t.Errorf("projection = %v, want [0]", q.Projection)
	}
}

func TestParseEqualityAndConjunction(t *testing.T) {
	// Bob-Q3: sourceIP = '172.101.11.46' AND visitDate = '1992-12-22'.
	q, err := ParseAnnotation(userVisits,
		`@HailQuery(filter="@1 = 172.101.11.46 and @3 = 1992-12-22", projection={@8,@9,@4})`)
	if err != nil {
		t.Fatalf("ParseAnnotation: %v", err)
	}
	if len(q.Filter) != 2 {
		t.Fatalf("got %d predicates, want 2", len(q.Filter))
	}
	if !q.Filter[0].IsPoint() || !q.Filter[1].IsPoint() {
		t.Error("expected two point predicates")
	}
	if got := q.Projection; len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 3 {
		t.Errorf("projection = %v, want [7 8 3]", got)
	}
}

func TestParseRangeConjunctionMerges(t *testing.T) {
	// Bob-Q4: adRevenue>=1 AND adRevenue<=10 merges to one range predicate.
	preds, err := ParseFilter(userVisits, "@4 >= 1 and @4 <= 10")
	if err != nil {
		t.Fatalf("ParseFilter: %v", err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predicates, want 1 merged", len(preds))
	}
	p := preds[0]
	if p.Lo == nil || p.Hi == nil || p.Lo.Float() != 1 || p.Hi.Float() != 10 {
		t.Errorf("merged bounds = %v..%v", p.Lo, p.Hi)
	}
}

func TestParseErrors(t *testing.T) {
	for _, ann := range []string{
		`@HailQuery filter="@1 = x"`,                          // no parens
		`@HailQuery(filter="@99 = x")`,                        // attribute out of range
		`@HailQuery(filter="@0 = x")`,                         // attributes are 1-based
		`@HailQuery(filter="@3 between(1999-01-01)")`,         // one bound
		`@HailQuery(filter="@3 like(x)")`,                     // unsupported op
		`@HailQuery(filter="@3 = not-a-date")`,                // bad literal
		`@HailQuery(filter=@3 = 1992-12-22)`,                  // unquoted filter
		`@HailQuery(projection={@1,@99})`,                     // projection out of range
		`@HailQuery(projection=[@1])`,                         // wrong braces
		`@HailQuery(frobnicate="x")`,                          // unknown key
		`@HailQuery(filter="@4 between(10,1)")`,               // empty range
		`@HailQuery(filter="@9 = 5 and @9 = 6", projection=)`, // malformed projection
	} {
		if _, err := ParseAnnotation(userVisits, ann); err == nil {
			t.Errorf("ParseAnnotation(%q) succeeded, want error", ann)
		}
	}
}

func TestEmptyAnnotationIsFullScan(t *testing.T) {
	q, err := ParseAnnotation(userVisits, `@HailQuery()`)
	if err != nil {
		t.Fatalf("ParseAnnotation: %v", err)
	}
	if len(q.Filter) != 0 {
		t.Errorf("filter = %v, want none", q.Filter)
	}
	if got := q.ProjectionOrAll(userVisits); len(got) != 9 {
		t.Errorf("ProjectionOrAll = %v, want all 9", got)
	}
}

func TestPredicateMatches(t *testing.T) {
	p := Between(0, schema.IntVal(10), schema.IntVal(20))
	for v, want := range map[int32]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if got := p.Matches(schema.IntVal(v)); got != want {
			t.Errorf("between(10,20).Matches(%d) = %v, want %v", v, got, want)
		}
	}
	ge := AtLeast(0, schema.IntVal(5))
	if ge.Matches(schema.IntVal(4)) || !ge.Matches(schema.IntVal(5)) {
		t.Error("AtLeast misbehaves")
	}
	le := AtMost(0, schema.IntVal(5))
	if le.Matches(schema.IntVal(6)) || !le.Matches(schema.IntVal(5)) {
		t.Error("AtMost misbehaves")
	}
	eq := Eq(0, schema.StringVal("x"))
	if !eq.IsPoint() || !eq.Matches(schema.StringVal("x")) || eq.Matches(schema.StringVal("y")) {
		t.Error("Eq misbehaves")
	}
}

func TestMatchesRowConjunction(t *testing.T) {
	q := &Query{Filter: []Predicate{
		Eq(0, schema.IntVal(1)),
		AtLeast(1, schema.IntVal(10)),
	}}
	if !q.MatchesRow(schema.Row{schema.IntVal(1), schema.IntVal(10)}) {
		t.Error("matching row rejected")
	}
	if q.MatchesRow(schema.Row{schema.IntVal(1), schema.IntVal(9)}) {
		t.Error("second conjunct ignored")
	}
	if q.MatchesRow(schema.Row{schema.IntVal(2), schema.IntVal(99)}) {
		t.Error("first conjunct ignored")
	}
}

func TestAnnotationRoundTrip(t *testing.T) {
	for _, ann := range []string{
		`@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})`,
		`@HailQuery(filter="@1 = 172.101.11.46", projection={@8,@9,@4})`,
		`@HailQuery(filter="@4 between(1,100)", projection={@8,@9,@4})`,
	} {
		q, err := ParseAnnotation(userVisits, ann)
		if err != nil {
			t.Fatalf("parse %q: %v", ann, err)
		}
		q2, err := ParseAnnotation(userVisits, q.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestPredicateMatchesRangeProperty(t *testing.T) {
	f := func(lo, hi, v int32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		p := Between(0, schema.IntVal(lo), schema.IntVal(hi))
		return p.Matches(schema.IntVal(v)) == (v >= lo && v <= hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := &Query{Filter: []Predicate{Eq(2, schema.StringVal("x"))}} // @3 is a Date
	if err := bad.Validate(userVisits); err == nil {
		t.Error("type-mismatched predicate validated")
	}
	badProj := &Query{Projection: []int{42}}
	if err := badProj.Validate(userVisits); err == nil {
		t.Error("out-of-range projection validated")
	}
}

func TestStringRendering(t *testing.T) {
	q := &Query{
		Filter:     []Predicate{Between(2, schema.DateVal(schema.MustDate("1999-01-01")), schema.DateVal(schema.MustDate("2000-01-01")))},
		Projection: []int{0},
	}
	s := q.String()
	for _, want := range []string{"@3 between(1999-01-01,2000-01-01)", "{@1}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSignatureNormalizesEquivalentQueries(t *testing.T) {
	// The same selection, written four different ways: operand order,
	// operator spelling (>=/<= vs between) and whitespace must not leak
	// into the signature — it is the result cache's key material.
	variants := []string{
		"@9 between(100,199) and @3 between(1999-01-01,2000-01-01)",
		"@3 between(1999-01-01,2000-01-01) and @9 between(100,199)",
		"@9 >= 100 and @3 between( 1999-01-01 , 2000-01-01 ) and @9 <= 199",
		"  @3   between(1999-01-01,2000-01-01)   and @9>=100 and @9<=199 ",
	}
	var first string
	for i, filter := range variants {
		preds, err := ParseFilter(userVisits, filter)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		sig := (&Query{Filter: preds, Projection: []int{0}}).Signature()
		if i == 0 {
			first = sig
			continue
		}
		if sig != first {
			t.Errorf("variant %d signature %q != %q", i, sig, first)
		}
	}
	if !strings.Contains(first, "@3[1999-01-01..2000-01-01]") ||
		!strings.Contains(first, "@9[100..199]") {
		t.Errorf("signature %q missing canonical intervals", first)
	}
}

func TestSignatureDistinguishesDifferentQueries(t *testing.T) {
	base := &Query{Filter: []Predicate{Eq(0, schema.StringVal("x"))}, Projection: []int{1}}
	cases := []*Query{
		{Filter: []Predicate{Eq(0, schema.StringVal("y"))}, Projection: []int{1}}, // other value
		{Filter: []Predicate{Eq(1, schema.StringVal("x"))}, Projection: []int{1}}, // other column
		{Filter: []Predicate{Eq(0, schema.StringVal("x"))}, Projection: []int{2}}, // other projection
		{Filter: []Predicate{Eq(0, schema.StringVal("x"))}},                       // project-all
		{Filter: []Predicate{AtLeast(0, schema.StringVal("x"))}, Projection: []int{1}},
	}
	for i, q := range cases {
		if q.Signature() == base.Signature() {
			t.Errorf("case %d: distinct query shares signature %q", i, base.Signature())
		}
	}
	var nilQ *Query
	if nilQ.Signature() != (&Query{}).Signature() {
		t.Error("nil query and empty query must share the full-scan signature")
	}
}

func TestSignatureProjectionOrderMatters(t *testing.T) {
	a := &Query{Projection: []int{0, 1}}
	b := &Query{Projection: []int{1, 0}}
	if a.Signature() == b.Signature() {
		t.Error("projection order changes output rows and must change the signature")
	}
}

func TestSignatureStringBoundsUnambiguous(t *testing.T) {
	// String bounds may contain the canonical form's own delimiters;
	// without quoting, these two distinct selections would collide on one
	// signature — and the result cache would serve one query's rows for
	// the other.
	a := &Query{Filter: []Predicate{Between(0, schema.StringVal("a..b"), schema.StringVal("c"))}}
	b := &Query{Filter: []Predicate{Between(0, schema.StringVal("a"), schema.StringVal("b..c"))}}
	if a.Signature() == b.Signature() {
		t.Fatalf("distinct string-bound queries share signature %q", a.Signature())
	}
	c := &Query{Filter: []Predicate{
		Eq(0, schema.StringVal(`x".."y`)),
	}}
	d := &Query{Filter: []Predicate{
		Eq(0, schema.StringVal(`x".."z`)),
	}}
	if c.Signature() == d.Signature() {
		t.Fatalf("quote-bearing bounds collide: %q", c.Signature())
	}
}
