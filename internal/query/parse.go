package query

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// ParseAnnotation parses a full HailQuery annotation of the form
//
//	@HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})
//
// against the given schema. Both clauses are optional: a missing filter
// means full scan, a missing projection means all attributes.
func ParseAnnotation(s *schema.Schema, ann string) (*Query, error) {
	text := strings.TrimSpace(ann)
	text = strings.TrimPrefix(text, "@HailQuery")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "(") || !strings.HasSuffix(text, ")") {
		return nil, fmt.Errorf("query: annotation must be @HailQuery(...): %q", ann)
	}
	text = text[1 : len(text)-1]

	q := &Query{}
	for _, clause := range splitTopLevel(text, ',') {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("query: malformed clause %q", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "filter":
			unq, err := unquote(val)
			if err != nil {
				return nil, err
			}
			preds, err := ParseFilter(s, unq)
			if err != nil {
				return nil, err
			}
			q.Filter = preds
		case "projection":
			proj, err := parseProjection(val)
			if err != nil {
				return nil, err
			}
			q.Projection = proj
		default:
			return nil, fmt.Errorf("query: unknown annotation key %q", key)
		}
	}
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseFilter parses a conjunction of predicates in the annotation filter
// syntax, e.g.
//
//	@2 = 172.101.11.46 and @3 between(1992-12-22,1992-12-22)
//	@8 >= 1 and @8 <= 10
func ParseFilter(s *schema.Schema, filter string) ([]Predicate, error) {
	var preds []Predicate
	for _, part := range splitAnd(filter) {
		p, err := parsePredicate(s, part)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	// Merge >=/<= pairs on the same attribute into one range predicate so
	// the index sees a single bounded range (e.g. Bob-Q4's adRevenue>=1
	// AND adRevenue<=10).
	return mergeConjuncts(preds), nil
}

func parsePredicate(s *schema.Schema, text string) (Predicate, error) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "@") {
		return Predicate{}, fmt.Errorf("query: predicate must start with @attr: %q", text)
	}
	i := 1
	for i < len(text) && text[i] >= '0' && text[i] <= '9' {
		i++
	}
	if i == 1 {
		return Predicate{}, fmt.Errorf("query: missing attribute number in %q", text)
	}
	var attr int
	fmt.Sscanf(text[1:i], "%d", &attr)
	if attr < 1 || attr > s.NumFields() {
		return Predicate{}, fmt.Errorf("query: attribute @%d out of range (schema has %d)", attr, s.NumFields())
	}
	col := attr - 1
	t := s.Field(col).Type
	rest := strings.TrimSpace(text[i:])

	parseV := func(lit string) (schema.Value, error) {
		return schema.ParseValue(t, strings.TrimSpace(lit))
	}

	switch {
	case strings.HasPrefix(rest, "between(") && strings.HasSuffix(rest, ")"):
		inner := rest[len("between(") : len(rest)-1]
		lo, hi, ok := strings.Cut(inner, ",")
		if !ok {
			return Predicate{}, fmt.Errorf("query: between needs two bounds: %q", text)
		}
		loV, err := parseV(lo)
		if err != nil {
			return Predicate{}, err
		}
		hiV, err := parseV(hi)
		if err != nil {
			return Predicate{}, err
		}
		return Between(col, loV, hiV), nil
	case strings.HasPrefix(rest, ">="):
		v, err := parseV(rest[2:])
		if err != nil {
			return Predicate{}, err
		}
		return AtLeast(col, v), nil
	case strings.HasPrefix(rest, "<="):
		v, err := parseV(rest[2:])
		if err != nil {
			return Predicate{}, err
		}
		return AtMost(col, v), nil
	case strings.HasPrefix(rest, "="):
		v, err := parseV(rest[1:])
		if err != nil {
			return Predicate{}, err
		}
		return Eq(col, v), nil
	default:
		return Predicate{}, fmt.Errorf("query: unsupported operator in %q", text)
	}
}

// mergeConjuncts combines predicates on the same attribute by intersecting
// their bounds.
func mergeConjuncts(preds []Predicate) []Predicate {
	var out []Predicate
	for _, p := range preds {
		merged := false
		for i := range out {
			if out[i].Column != p.Column {
				continue
			}
			if p.Lo != nil && (out[i].Lo == nil || p.Lo.Compare(*out[i].Lo) > 0) {
				out[i].Lo = p.Lo
			}
			if p.Hi != nil && (out[i].Hi == nil || p.Hi.Compare(*out[i].Hi) < 0) {
				out[i].Hi = p.Hi
			}
			merged = true
			break
		}
		if !merged {
			out = append(out, p)
		}
	}
	return out
}

func parseProjection(val string) ([]int, error) {
	val = strings.TrimSpace(val)
	if !strings.HasPrefix(val, "{") || !strings.HasSuffix(val, "}") {
		return nil, fmt.Errorf("query: projection must be {@i,...}: %q", val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return nil, nil
	}
	var out []int
	for _, ref := range strings.Split(inner, ",") {
		ref = strings.TrimSpace(ref)
		if !strings.HasPrefix(ref, "@") {
			return nil, fmt.Errorf("query: projection entry %q must be @i", ref)
		}
		var attr int
		if _, err := fmt.Sscanf(ref[1:], "%d", &attr); err != nil || attr < 1 {
			return nil, fmt.Errorf("query: bad projection entry %q", ref)
		}
		out = append(out, attr-1)
	}
	return out, nil
}

// splitAnd splits on the keyword "and" at top level (not inside parens).
func splitAnd(s string) []string {
	var parts []string
	depth := 0
	start := 0
	lower := strings.ToLower(s)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && i+5 <= len(s) && lower[i:i+5] == " and " {
			parts = append(parts, s[start:i])
			start = i + 5
			i += 4
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// splitTopLevel splits on sep outside quotes, parens and braces.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case inQuote:
		case c == '(' || c == '{':
			depth++
		case c == ')' || c == '}':
			depth--
		case c == sep && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("query: expected quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}
