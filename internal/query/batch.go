package query

import (
	"math"

	"repro/internal/schema"
)

// Selection is a selection vector: the row indexes (ascending, within one
// batch) that survive the predicates evaluated so far. Conjunctions are
// evaluated by running each predicate's kernel over the previous
// selection, so intersection falls out of the pipeline shape — no bitmaps
// to AND, no row ever re-tested against a predicate it already passed.
type Selection []int32

// MakeSelection fills sel with the identity selection 0..n-1 (every row
// selected), reusing sel's capacity. This is the starting selection for
// each batch.
func MakeSelection(sel Selection, n int) Selection {
	sel = sel[:0]
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// FilterVector is the batch kernel form of Matches: it keeps the rows of
// sel whose value in vec satisfies the predicate, writing survivors into
// sel's prefix and returning the shortened selection. The bounds are
// unboxed once per batch, so the per-row work is a native comparison over
// the vector's typed slice — not a Value.Compare over boxed structs.
//
// The vector's type must match the predicate's bound types (the same
// contract Matches has via Value.Compare, which panics on mixed types;
// Query.Validate checks it against the schema up front).
func (p Predicate) FilterVector(vec *schema.Vector, sel Selection) Selection {
	out := sel[:0]
	switch vec.Type() {
	case schema.Int32, schema.Date:
		lo, hi := int32(math.MinInt32), int32(math.MaxInt32)
		if p.Lo != nil {
			lo = int32(p.Lo.Long())
		}
		if p.Hi != nil {
			hi = int32(p.Hi.Long())
		}
		vals := vec.I32
		for _, i := range sel {
			if v := vals[i]; v >= lo && v <= hi {
				out = append(out, i)
			}
		}
	case schema.Int64:
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		if p.Lo != nil {
			lo = p.Lo.Long()
		}
		if p.Hi != nil {
			hi = p.Hi.Long()
		}
		vals := vec.I64
		for _, i := range sel {
			if v := vals[i]; v >= lo && v <= hi {
				out = append(out, i)
			}
		}
	case schema.Float64:
		// Values are never NaN (schema.ParseValue rejects it so sort
		// orders stay total), so ±Inf sentinels are exact unbounded ends.
		lo, hi := math.Inf(-1), math.Inf(1)
		if p.Lo != nil {
			lo = p.Lo.Float()
		}
		if p.Hi != nil {
			hi = p.Hi.Float()
		}
		vals := vec.F64
		for _, i := range sel {
			if v := vals[i]; v >= lo && v <= hi {
				out = append(out, i)
			}
		}
	case schema.String:
		// Strings have no greatest element; unbounded sides need flags.
		var lo, hi string
		hasLo, hasHi := p.Lo != nil, p.Hi != nil
		if hasLo {
			lo = p.Lo.Str()
		}
		if hasHi {
			hi = p.Hi.Str()
		}
		vals := vec.Str
		for _, i := range sel {
			v := vals[i]
			if hasLo && v < lo {
				continue
			}
			if hasHi && v > hi {
				continue
			}
			out = append(out, i)
		}
	default:
		panic("query: FilterVector on invalid vector type")
	}
	return out
}

// MatchesBatch is the batch form of MatchesRow: it evaluates the
// conjunction over one batch of columnar data and returns the selection
// vector of qualifying rows. cols resolves an attribute position to that
// attribute's vector for the batch (only filter columns are requested, so
// callers can decode projection-only columns lazily afterwards — late
// materialization). sel is the starting selection, normally the identity
// selection over the batch (MakeSelection); it is filtered in place,
// conjunct by conjunct, with an empty-selection short-circuit.
//
// For any batch, row r is in the returned selection exactly when
// MatchesRow would accept the materialized row — the property test in
// batch_property_test.go holds the two forms equal on randomized blocks.
func (q *Query) MatchesBatch(cols func(col int) *schema.Vector, sel Selection) Selection {
	for _, p := range q.Filter {
		if len(sel) == 0 {
			break
		}
		sel = p.FilterVector(cols(p.Column), sel)
	}
	return sel
}
