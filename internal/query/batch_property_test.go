package query

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

// randValue draws a value of type t from a small domain so predicate
// bounds frequently coincide with data values — the boundary cases where
// an off-by-one in a kernel's >=/<= would hide.
func randValue(rng *rand.Rand, t schema.Type) schema.Value {
	switch t {
	case schema.Int32:
		return schema.IntVal(int32(rng.Intn(21) - 10))
	case schema.Date:
		return schema.DateVal(int32(rng.Intn(21)))
	case schema.Int64:
		return schema.LongVal(int64(rng.Intn(21) - 10))
	case schema.Float64:
		return schema.FloatVal(float64(rng.Intn(41)-20) / 4)
	case schema.String:
		letters := []string{"", "a", "ab", "b", "ba", "c", "zz"}
		return schema.StringVal(letters[rng.Intn(len(letters))])
	}
	panic("unreachable")
}

// randPredicate draws a predicate on column col of type t, covering every
// kind: point, between, at-least, at-most, and fully unbounded. Inverted
// ranges are normalized as Query.Validate requires.
func randPredicate(rng *rand.Rand, col int, t schema.Type) Predicate {
	switch rng.Intn(5) {
	case 0:
		return Eq(col, randValue(rng, t))
	case 1:
		lo, hi := randValue(rng, t), randValue(rng, t)
		if lo.Compare(hi) > 0 {
			lo, hi = hi, lo
		}
		return Between(col, lo, hi)
	case 2:
		return AtLeast(col, randValue(rng, t))
	case 3:
		return AtMost(col, randValue(rng, t))
	default:
		return Predicate{Column: col}
	}
}

var propTypes = []schema.Type{
	schema.Int32, schema.Date, schema.Int64, schema.Float64, schema.String,
}

// TestFilterVectorMatchesScalar holds the batch kernel equal to the scalar
// Matches on randomized vectors, per type, including empty vectors and
// empty starting selections.
func TestFilterVectorMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 500; trial++ {
		typ := propTypes[rng.Intn(len(propTypes))]
		n := rng.Intn(40) // 0..39 rows, often small, sometimes empty
		vec := schema.NewVector(typ)
		for i := 0; i < n; i++ {
			vec.Append(randValue(rng, typ))
		}
		p := randPredicate(rng, 0, typ)

		var start Selection
		if rng.Intn(10) == 0 {
			start = Selection{} // empty starting selection stays empty
		} else {
			start = MakeSelection(nil, n)
			if rng.Intn(3) == 0 && n > 0 {
				// Random subset, still ascending: simulate a prior conjunct.
				kept := start[:0]
				for _, i := range start {
					if rng.Intn(2) == 0 {
						kept = append(kept, i)
					}
				}
				start = kept
			}
		}
		wantSel := make([]int32, 0, len(start))
		for _, i := range start {
			if p.Matches(vec.Value(int(i))) {
				wantSel = append(wantSel, i)
			}
		}
		got := p.FilterVector(vec, start)
		if len(got) != len(wantSel) {
			t.Fatalf("trial %d (%s, %s): kernel kept %d rows, scalar kept %d",
				trial, typ, p, len(got), len(wantSel))
		}
		for k := range wantSel {
			if got[k] != wantSel[k] {
				t.Fatalf("trial %d (%s, %s): selection[%d] = %d, want %d",
					trial, typ, p, k, got[k], wantSel[k])
			}
		}
	}
}

// TestMatchesBatchMatchesRow holds the full conjunction equal between the
// batch and row forms on randomized multi-column blocks.
func TestMatchesBatchMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 300; trial++ {
		nCols := 1 + rng.Intn(4)
		types := make([]schema.Type, nCols)
		cols := make([]*schema.Vector, nCols)
		for c := range cols {
			types[c] = propTypes[rng.Intn(len(propTypes))]
			cols[c] = schema.NewVector(types[c])
		}
		n := rng.Intn(60)
		rows := make([]schema.Row, n)
		for i := 0; i < n; i++ {
			row := make(schema.Row, nCols)
			for c := range cols {
				v := randValue(rng, types[c])
				row[c] = v
				cols[c].Append(v)
			}
			rows[i] = row
		}
		q := &Query{}
		for k := rng.Intn(4); k > 0; k-- {
			col := rng.Intn(nCols)
			q.Filter = append(q.Filter, randPredicate(rng, col, types[col]))
		}

		sel := q.MatchesBatch(func(c int) *schema.Vector { return cols[c] }, MakeSelection(nil, n))
		want := make([]int32, 0, n)
		for i, row := range rows {
			if q.MatchesRow(row) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("trial %d (%s): batch kept %d, row-at-a-time kept %d", trial, q, len(sel), len(want))
		}
		for k := range want {
			if sel[k] != want[k] {
				t.Fatalf("trial %d (%s): selection[%d] = %d, want %d", trial, q, k, sel[k], want[k])
			}
		}
	}
}
