// Package obs is the process-wide observability layer: a concurrency-safe,
// allocation-light metrics registry (counters, gauges, fixed-bucket latency
// histograms) plus per-query trace spans (trace.go). Every handle is
// nil-safe — a nil *Registry hands out nil *Counter/*Gauge/*Histogram whose
// methods no-op without allocating, so subsystems wire observability
// unconditionally and pay nothing when it is disabled.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores all updates and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions. A nil Gauge ignores
// all updates and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket k holds observations whose
// microsecond value has bit length k, i.e. durations in [2^(k-1), 2^k) µs,
// with bucket 0 catching sub-microsecond observations. 40 buckets cover up
// to ~2^39 µs ≈ 6.4 days, far beyond any query this engine runs.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram over power-of-two
// microsecond boundaries. Observations are lock-free atomic increments; a
// nil Histogram ignores observations and reports zero quantiles.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
}

func histBucket(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket k as a duration.
func bucketUpper(k int) time.Duration {
	return time.Duration(uint64(1)<<uint(k)) * time.Microsecond
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[histBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observed latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p ≤ 1):
// the upper boundary of the bucket containing the p·count-th sample. With
// no samples it returns 0; any recorded sample yields a non-zero estimate
// (bucket 0's upper bound is 1µs).
func (h *Histogram) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for k := 0; k < histBuckets; k++ {
		seen += h.buckets[k].Load()
		if seen >= rank {
			return bucketUpper(k)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Registry is a named collection of metrics. Get-or-create lookups take a
// short lock; call sites that care about the hot path resolve handles once
// and hold them. A nil Registry hands out nil handles (whose methods
// no-op), making the disabled path free.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetGaugeFunc registers (or replaces) a lazily evaluated gauge: fn runs at
// snapshot time only, so folding an existing atomic counter into the
// registry costs nothing on the owner's hot path. No-op on a nil registry.
func (r *Registry) SetGaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Metric is one snapshot row.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`            // "counter", "gauge", "histogram"
	Value int64  `json:"value,omitempty"` // counters and gauges
	// Histogram-only fields, in milliseconds.
	Count  int64   `json:"count,omitempty"`
	MeanMs float64 `json:"mean_ms,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P95Ms  float64 `json:"p95_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Snapshot returns every metric, sorted by name. Gauge funcs are evaluated
// at call time. Safe to call concurrently with updates.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	fns := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		fns[name] = fn
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram", Count: h.Count(),
			MeanMs: ms(h.Mean()),
			P50Ms:  ms(h.Quantile(0.50)),
			P95Ms:  ms(h.Quantile(0.95)),
			P99Ms:  ms(h.Quantile(0.99)),
		})
	}
	r.mu.RUnlock()
	// Evaluate gauge funcs outside the registry lock: they may read locks
	// owned by other subsystems (namenode shards, cache shards).
	for name, fn := range fns {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as aligned text, one metric per line.
func (r *Registry) String() string {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	wide := 0
	for _, m := range snap {
		if len(m.Name) > wide {
			wide = len(m.Name)
		}
	}
	var b strings.Builder
	for _, m := range snap {
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-*s  count=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms\n",
				wide, m.Name, m.Count, m.MeanMs, m.P50Ms, m.P95Ms, m.P99Ms)
		default:
			fmt.Fprintf(&b, "%-*s  %d\n", wide, m.Name, m.Value)
		}
	}
	return b.String()
}
