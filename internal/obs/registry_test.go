package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.tasks")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("engine.tasks"); again != c {
		t.Fatalf("Counter did not return the registered instance")
	}
	g := r.Gauge("engine.inflight")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.SetGaugeFunc("engine.lazy", func() int64 { return 42 })

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if m := byName["engine.lazy"]; m.Kind != "gauge" || m.Value != 42 {
		t.Fatalf("gauge func metric = %+v", m)
	}
	if !strings.Contains(r.String(), "engine.tasks") {
		t.Fatalf("String() missing counter:\n%s", r.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 samples at ~1ms, 10 at ~100ms: p50 lands in the 1ms bucket's
	// range, p99 in the 100ms bucket's range.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 <= 0 || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want in (0, 4ms]", p50)
	}
	if p99 < 64*time.Millisecond || p99 > 256*time.Millisecond {
		t.Fatalf("p99 = %v, want within the ~100ms bucket", p99)
	}
	if p95 := h.Quantile(0.95); p95 < p50 || p95 > p99 {
		t.Fatalf("quantiles not ordered: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if mean := h.Mean(); mean < 5*time.Millisecond || mean > 50*time.Millisecond {
		t.Fatalf("mean = %v, want ~10.9ms", mean)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped
	if got := h.Quantile(0.5); got != time.Microsecond {
		t.Fatalf("sub-µs samples should land in bucket 0 (upper bound 1µs), got %v", got)
	}
	h.Observe(365 * 24 * time.Hour) // beyond the last bucket boundary
	if got := h.Quantile(1.0); got <= 0 {
		t.Fatalf("overflow bucket quantile = %v, want > 0", got)
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("y"), r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(time.Second)
	r.SetGaugeFunc("w", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	if r.Snapshot() != nil || r.String() != "" {
		t.Fatalf("nil registry snapshot must be empty")
	}
}

// TestDisabledObsZeroAlloc is the allocation gate for the disabled path:
// every operation the engine performs per task/block against nil handles
// must allocate nothing, so wiring observability through the hot path is
// free when it is off.
func TestDisabledObsZeroAlloc(t *testing.T) {
	var reg *Registry
	var tr *Trace
	c := reg.Counter("c")
	h := reg.Histogram("h")
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.StartSpan("task", "task", 1, Span{})
		child := tr.StartSpan("attempt", "task", 1, sp)
		child.SetInt("node", 3)
		child.SetStr("file", "f")
		child.End()
		tr.Instant("repack", "task", 1, sp)
		tr.Count("qcache.block_hit", 1)
		sp.End()
		c.Add(1)
		c.Inc()
		h.Observe(time.Millisecond)
		_ = tr.Now()
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocated %.1f per run, want 0", allocs)
	}
}

// TestRegistryRaceStress hammers one registry from many goroutines doing
// get-or-create lookups, updates, and snapshots at once — run under -race
// in CI's short lane.
func TestRegistryRaceStress(t *testing.T) {
	r := NewRegistry()
	r.SetGaugeFunc("fn", func() int64 { return 1 })
	const workers = 16
	const iters = 300
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(w+i)%len(names)]
				r.Counter(name).Inc()
				r.Gauge(name).Add(1)
				r.Histogram(name).Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = r.String()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, name := range names {
		total += r.Counter(name).Value()
		if r.Counter(name).Value() != r.Gauge(name).Value() {
			t.Fatalf("counter/gauge diverged for %q", name)
		}
		if r.Histogram(name).Count() != r.Counter(name).Value() {
			t.Fatalf("histogram count diverged for %q", name)
		}
	}
	if total != workers*iters {
		t.Fatalf("lost updates: total = %d, want %d", total, workers*iters)
	}
}
