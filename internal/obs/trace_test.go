package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTreeAndValidate(t *testing.T) {
	tr := NewTrace("q")
	root := tr.StartSpan("run", "job", 0, Span{})
	plan := tr.StartSpan("plan", "phase", 0, root)
	plan.SetInt("splits", 4)
	plan.End()
	task := tr.StartSpan("task 0", "task", 1, root)
	att := tr.StartSpan("attempt", "task", 1, task)
	tr.Instant("repack", "task", 1, task)
	att.End()
	task.End()
	tr.Count("qcache.block_hit", 3)
	root.End()

	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	spans := tr.SpanInfos()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[1].Parent != 0 || spans[3].Parent != 2 {
		t.Fatalf("parent links wrong: %+v", spans)
	}
	if got := tr.Counts()["qcache.block_hit"]; got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	sum := tr.Summary()
	for _, want := range []string{"run", "plan", "attempt", "qcache.block_hit"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("Summary missing %q:\n%s", want, sum)
		}
	}
}

func TestTraceValidateCatchesOpenSpan(t *testing.T) {
	tr := NewTrace("q")
	tr.StartSpan("never-ended", "job", 0, Span{})
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("Validate = %v, want never-ended error", err)
	}
}

func TestTraceValidateCatchesDoubleEnd(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.StartSpan("s", "job", 0, Span{})
	sp.End()
	sp.End()
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("Validate = %v, want double-end error", err)
	}
}

// TestTraceChromeSchema is the schema golden test: export a known span
// tree and check every trace_event field Chrome requires, plus the
// structural invariants (monotonic timestamps, spans nested within their
// parents) on the decoded JSON itself.
func TestTraceChromeSchema(t *testing.T) {
	tr := NewTrace("q")
	root := tr.StartSpan("run", "job", 0, Span{})
	for i := 0; i < 3; i++ {
		task := tr.StartSpan("task", "task", i+1, root)
		att := tr.StartSpan("attempt", "task", i+1, task)
		time.Sleep(200 * time.Microsecond)
		att.End()
		task.End()
	}
	tr.Count("blocks", 12)
	root.End()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 7 span events (run + 3×(task, attempt)) + 1 counter event.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8:\n%s", len(doc.TraceEvents), buf.String())
	}
	var spanEvents, counterEvents int
	var prevTs float64 = -1
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Tid == nil || ev.Pid != 1 {
			t.Fatalf("event missing required fields: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			spanEvents++
			if ev.Dur < 0 {
				t.Fatalf("span %q has negative dur", ev.Name)
			}
			if *ev.Ts < prevTs {
				t.Fatalf("span timestamps not monotonic: %v after %v", *ev.Ts, prevTs)
			}
			prevTs = *ev.Ts
		case "C":
			counterEvents++
			if ev.Args["value"] == nil {
				t.Fatalf("counter %q missing value arg", ev.Name)
			}
		case "i":
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	if spanEvents != 7 || counterEvents != 1 {
		t.Fatalf("spans=%d counters=%d, want 7/1", spanEvents, counterEvents)
	}

	// Nesting: each attempt's [ts, ts+dur] lies within its task's, and all
	// within run's.
	type iv struct{ lo, hi float64 }
	within := func(a, b iv) bool { return a.lo >= b.lo && a.hi <= b.hi }
	var run iv
	tasks := map[int]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		span := iv{*ev.Ts, *ev.Ts + ev.Dur}
		switch ev.Name {
		case "run":
			run = span
		case "task":
			tasks[*ev.Tid] = span
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name != "attempt" {
			continue
		}
		span := iv{*ev.Ts, *ev.Ts + ev.Dur}
		if !within(span, tasks[*ev.Tid]) || !within(tasks[*ev.Tid], run) {
			t.Fatalf("spans do not nest: attempt %+v task %+v run %+v", span, tasks[*ev.Tid], run)
		}
	}
}

func TestNilTraceChromeExport(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil export invalid JSON: %v", err)
	}
	if tr.Summary() != "" || tr.Validate() != nil || tr.SpanInfos() != nil {
		t.Fatalf("nil trace accessors must be empty")
	}
}

// TestTraceConcurrentSpans opens/closes spans from many goroutines (the
// engine's worker pattern) and checks the result still validates — run
// under -race in CI.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("q")
	root := tr.StartSpan("run", "job", 0, Span{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan("task", "task", w+1, root)
				sp.SetInt("i", int64(i))
				tr.Count("done", 1)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after concurrent spans: %v", err)
	}
	if got := tr.Counts()["done"]; got != 8*50 {
		t.Fatalf("count = %d, want %d", got, 8*50)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
}
