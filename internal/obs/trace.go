package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace records one query's execution as a tree of timed spans plus named
// event counts. It is carried through mapred.Job; every method is safe on a
// nil receiver so call sites never branch on whether tracing is enabled,
// and the disabled path allocates nothing. All methods are safe for
// concurrent use — engine workers record spans from many goroutines.
type Trace struct {
	name  string
	start time.Time

	mu         sync.Mutex
	spans      []spanData
	counts     map[string]int64
	doubleEnds int
}

type spanData struct {
	name   string
	cat    string
	tid    int
	parent int32 // index into spans, -1 for roots
	start  time.Duration
	end    time.Duration // -1 while open; == start for instants
	args   []argKV
}

type argKV struct {
	key   string
	str   string
	num   int64
	isStr bool
}

// NewTrace starts an empty trace whose clock begins now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now(), counts: make(map[string]int64)}
}

// Enabled reports whether the trace is live; callers may use it to skip
// work (e.g. fmt.Sprintf for span names) on the disabled path.
func (t *Trace) Enabled() bool { return t != nil }

// Now returns the elapsed time since the trace started, or 0 when nil.
func (t *Trace) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Span is a lightweight handle to one recorded span: a value type holding
// the trace pointer and a 1-based index, so the zero Span is inert and
// passing spans around allocates nothing.
type Span struct {
	t  *Trace
	id int32 // index+1; 0 means invalid/disabled
}

// StartSpan opens a span. tid is the Chrome-trace thread lane (0 for the
// coordinator, taskID+1 for task lanes); parent may be the zero Span for a
// root. Returns the zero Span on a nil trace.
func (t *Trace) StartSpan(name, cat string, tid int, parent Span) Span {
	if t == nil {
		return Span{}
	}
	pid := int32(-1)
	if parent.t == t && parent.id > 0 {
		pid = parent.id - 1
	}
	t.mu.Lock()
	// Read the clock under the lock so start timestamps are monotonic in
	// creation order even when many goroutines open spans at once.
	now := time.Since(t.start)
	t.spans = append(t.spans, spanData{
		name: name, cat: cat, tid: tid, parent: pid, start: now, end: -1,
	})
	id := int32(len(t.spans))
	t.mu.Unlock()
	return Span{t: t, id: id}
}

// End closes the span. Ending the zero Span is a no-op; ending a span twice
// is recorded and fails Validate.
func (sp Span) End() {
	if sp.t == nil || sp.id == 0 {
		return
	}
	now := time.Since(sp.t.start)
	sp.t.mu.Lock()
	s := &sp.t.spans[sp.id-1]
	if s.end >= 0 {
		sp.t.doubleEnds++
	} else {
		s.end = now
	}
	sp.t.mu.Unlock()
}

// SetInt attaches an integer argument to the span (shown under "args" in
// the Chrome export). No-op on the zero Span.
func (sp Span) SetInt(key string, v int64) {
	if sp.t == nil || sp.id == 0 {
		return
	}
	sp.t.mu.Lock()
	s := &sp.t.spans[sp.id-1]
	s.args = append(s.args, argKV{key: key, num: v})
	sp.t.mu.Unlock()
}

// SetStr attaches a string argument to the span. No-op on the zero Span.
func (sp Span) SetStr(key, v string) {
	if sp.t == nil || sp.id == 0 {
		return
	}
	sp.t.mu.Lock()
	s := &sp.t.spans[sp.id-1]
	s.args = append(s.args, argKV{key: key, str: v, isStr: true})
	sp.t.mu.Unlock()
}

// Instant records a zero-duration marker event (e.g. a failover repack).
func (t *Trace) Instant(name, cat string, tid int, parent Span) {
	sp := t.StartSpan(name, cat, tid, parent)
	if sp.t == nil {
		return
	}
	sp.t.mu.Lock()
	s := &sp.t.spans[sp.id-1]
	s.end = s.start
	sp.t.mu.Unlock()
}

// Count adds n to a named trace-level counter (e.g. qcache probe
// outcomes). Nil-safe and allocation-free on the disabled path.
func (t *Trace) Count(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counts[name] += n
	t.mu.Unlock()
}

// Counts returns a copy of the trace-level counters.
func (t *Trace) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// SpanInfo is an exported snapshot of one span, for tests and reports.
type SpanInfo struct {
	Name   string
	Cat    string
	TID    int
	Parent int // index into the SpanInfos slice, -1 for roots
	Start  time.Duration
	End    time.Duration // -1 if still open
}

// Dur returns the span duration, or 0 for open spans.
func (s SpanInfo) Dur() time.Duration {
	if s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// SpanInfos snapshots every span in creation order.
func (t *Trace) SpanInfos() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanInfo{Name: s.name, Cat: s.cat, TID: s.tid,
			Parent: int(s.parent), Start: s.start, End: s.end}
	}
	return out
}

// Validate checks the recorded trace is structurally sound: every span
// closed exactly once, parents precede children, children nest inside
// their parent's interval, and start timestamps are monotonic in creation
// order. Returns nil for a nil or empty trace.
func (t *Trace) Validate() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.doubleEnds > 0 {
		return fmt.Errorf("obs: trace %q: %d span(s) ended more than once", t.name, t.doubleEnds)
	}
	var prevStart time.Duration
	for i, s := range t.spans {
		if s.end < 0 {
			return fmt.Errorf("obs: trace %q: span %d (%s) never ended", t.name, i, s.name)
		}
		if s.end < s.start {
			return fmt.Errorf("obs: trace %q: span %d (%s) ends %v before it starts %v", t.name, i, s.name, s.end, s.start)
		}
		if s.start < prevStart {
			return fmt.Errorf("obs: trace %q: span %d (%s) starts %v before predecessor %v — timestamps not monotonic",
				t.name, i, s.name, s.start, prevStart)
		}
		prevStart = s.start
		if s.parent >= 0 {
			if int(s.parent) >= i {
				return fmt.Errorf("obs: trace %q: span %d (%s) parented to later span %d", t.name, i, s.name, s.parent)
			}
			p := t.spans[s.parent]
			if s.start < p.start {
				return fmt.Errorf("obs: trace %q: span %d (%s) starts before parent %s", t.name, i, s.name, p.name)
			}
			if p.end >= 0 && s.end > p.end {
				return fmt.Errorf("obs: trace %q: span %d (%s) ends %v after parent %s ends %v",
					t.name, i, s.name, s.end, p.name, p.end)
			}
		}
	}
	return nil
}

// chromeEvent is one trace_event record; see the Chrome trace-event format
// doc (ph "X" = complete span, "i" = instant, "C" = counter sample).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome exports the trace as Chrome trace_event JSON (load in
// chrome://tracing or https://ui.perfetto.dev). Open spans export with
// their current extent; counters export as one "C" sample at the end.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	now := time.Since(t.start)
	t.mu.Lock()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(t.spans)+len(t.counts))}
	for _, s := range t.spans {
		ev := chromeEvent{Name: s.name, Cat: s.cat, Pid: 1, Tid: s.tid, Ts: us(s.start)}
		end := s.end
		if end < 0 {
			end = now
		}
		if end == s.start {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = us(end - s.start)
		}
		if len(s.args) > 0 {
			ev.Args = make(map[string]any, len(s.args))
			for _, a := range s.args {
				if a.isStr {
					ev.Args[a.key] = a.str
				} else {
					ev.Args[a.key] = a.num
				}
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	countNames := make([]string, 0, len(t.counts))
	for name := range t.counts {
		countNames = append(countNames, name)
	}
	sort.Strings(countNames)
	for _, name := range countNames {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "count", Ph: "C", Pid: 1, Tid: 0, Ts: us(now),
			Args: map[string]any{"value": t.counts[name]},
		})
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// Summary renders the span tree as indented text with durations, followed
// by the trace-level counters — the human-readable counterpart of the
// Chrome export.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	spans := t.SpanInfos()
	children := make(map[int][]int)
	var roots []int
	for i, s := range spans {
		if s.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[s.Parent] = append(children[s.Parent], i)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.name)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		fmt.Fprintf(&b, "%s%-24s %10.3fms  @%.3fms\n",
			strings.Repeat("  ", depth+1), s.Name, ms(s.Dur()), ms(s.Start))
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	counts := t.Counts()
	if len(counts) > 0 {
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("  counts:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "    %-28s %d\n", name, counts[name])
		}
	}
	return b.String()
}
