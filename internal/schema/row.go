package schema

import (
	"fmt"
	"strings"
)

// Row is one parsed record: one Value per schema attribute.
type Row []Value

// Line renders the row back to its delimited text form.
func (r Row) Line(sep byte) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(sep)
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// Equal reports whether two rows have identical values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Parser parses delimited text lines into typed rows against a schema.
// A line that does not match the schema (wrong field count or a value that
// fails to parse) is a bad record in the paper's sense (§3.1): it is kept
// verbatim and routed to the bad-record section of the block.
type Parser struct {
	Schema *Schema
	Sep    byte // field separator, e.g. ',' or '|'
}

// NewParser returns a Parser with the conventional comma separator.
func NewParser(s *Schema) *Parser { return &Parser{Schema: s, Sep: ','} }

// ParseLine parses one text line. On success it returns the typed row; on
// failure it returns a descriptive error and the row is nil.
func (p *Parser) ParseLine(line string) (Row, error) {
	n := p.Schema.NumFields()
	row := make(Row, 0, n)
	rest := line
	for i := 0; i < n; i++ {
		var fieldText string
		if i == n-1 {
			// Last field consumes the remainder; a stray separator in it
			// means a field-count mismatch.
			if p.Schema.Field(i).Type != String && strings.IndexByte(rest, p.Sep) >= 0 {
				return nil, fmt.Errorf("schema: too many fields in %q", line)
			}
			fieldText = rest
		} else {
			j := strings.IndexByte(rest, p.Sep)
			if j < 0 {
				return nil, fmt.Errorf("schema: too few fields in %q", line)
			}
			fieldText, rest = rest[:j], rest[j+1:]
		}
		v, err := ParseValue(p.Schema.Field(i).Type, fieldText)
		if err != nil {
			return nil, fmt.Errorf("schema: field %d (%s): %v", i, p.Schema.Field(i).Name, err)
		}
		row = append(row, v)
	}
	return row, nil
}

// RowKey is a comparable, canonical encoding of a row, usable as a map key
// when comparing multisets of rows in tests and invariant checks.
func RowKey(r Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
