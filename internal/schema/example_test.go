package schema_test

import (
	"fmt"

	"repro/internal/schema"
)

// HAIL can suggest a schema from raw sample lines (§3.1 footnote).
func ExampleInferSchema() {
	lines := []string{
		"172.101.11.46,1999-06-15,42.5,371",
		"10.1.2.3,2001-01-01,0.1,9",
	}
	s, err := schema.InferSchema(lines, ',')
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output:
	// attr1:string,attr2:date,attr3:float64,attr4:int32
}

func ExampleParser_ParseLine() {
	s, _ := schema.ParseSchema("ip:string,day:date,rev:float64")
	p := schema.NewParser(s)
	row, err := p.ParseLine("10.0.0.1,1999-01-01,12.5")
	if err != nil {
		panic(err)
	}
	fmt.Println(row[1].Days() == schema.MustDate("1999-01-01"))
	fmt.Println(row.Line(','))

	// A malformed line becomes a bad record at upload (§3.1).
	_, err = p.ParseLine("not,enough")
	fmt.Println(err != nil)
	// Output:
	// true
	// 10.0.0.1,1999-01-01,12.5
	// true
}
