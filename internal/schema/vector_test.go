package schema

import "testing"

func TestVectorAppendValueRoundTrip(t *testing.T) {
	cases := []struct {
		typ  Type
		vals []Value
	}{
		{Int32, []Value{IntVal(-7), IntVal(0), IntVal(1 << 30)}},
		{Date, []Value{DateVal(0), DateVal(20000)}},
		{Int64, []Value{LongVal(-1 << 40), LongVal(42)}},
		{Float64, []Value{FloatVal(-1.5), FloatVal(0), FloatVal(3.25)}},
		{String, []Value{StringVal(""), StringVal("a"), StringVal("zz")}},
	}
	for _, c := range cases {
		v := NewVector(c.typ)
		if v.Type() != c.typ {
			t.Errorf("%s: Type = %s", c.typ, v.Type())
		}
		for _, val := range c.vals {
			v.Append(val)
		}
		if v.Len() != len(c.vals) {
			t.Errorf("%s: Len = %d, want %d", c.typ, v.Len(), len(c.vals))
		}
		for i, want := range c.vals {
			if got := v.Value(i); !got.Equal(want) {
				t.Errorf("%s: Value(%d) = %v, want %v", c.typ, i, got, want)
			}
		}
		v.Reset()
		if v.Len() != 0 {
			t.Errorf("%s: Len after Reset = %d", c.typ, v.Len())
		}
	}
}

func TestVectorAppendTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("appending a string to an int32 vector did not panic")
		}
	}()
	NewVector(Int32).Append(StringVal("x"))
}

func TestVectorResetKeepsCapacity(t *testing.T) {
	v := NewVector(Int64)
	for i := 0; i < 100; i++ {
		v.I64 = append(v.I64, int64(i))
	}
	v.Reset()
	if cap(v.I64) < 100 {
		t.Errorf("Reset dropped capacity: %d", cap(v.I64))
	}
}

func TestVectorGather(t *testing.T) {
	cases := []struct {
		typ  Type
		vals []Value
	}{
		{Int32, []Value{IntVal(10), IntVal(20), IntVal(30), IntVal(40), IntVal(50)}},
		{Date, []Value{DateVal(1), DateVal(2), DateVal(3), DateVal(4), DateVal(5)}},
		{Int64, []Value{LongVal(-1), LongVal(0), LongVal(7), LongVal(9), LongVal(11)}},
		{Float64, []Value{FloatVal(0.5), FloatVal(1.5), FloatVal(2.5), FloatVal(3.5), FloatVal(4.5)}},
		{String, []Value{StringVal("a"), StringVal("bb"), StringVal("c"), StringVal("dd"), StringVal("e")}},
	}
	sels := [][]int32{{}, {0}, {4}, {1, 3}, {0, 2, 4}, {0, 1, 2, 3, 4}}
	for _, tc := range cases {
		for _, sel := range sels {
			v := NewVector(tc.typ)
			for _, val := range tc.vals {
				v.Append(val)
			}
			v.Gather(sel)
			if v.Len() != len(sel) {
				t.Fatalf("%v gather %v: len %d, want %d", tc.typ, sel, v.Len(), len(sel))
			}
			for j, s := range sel {
				if !v.Value(j).Equal(tc.vals[s]) {
					t.Fatalf("%v gather %v: [%d] = %v, want %v", tc.typ, sel, j, v.Value(j), tc.vals[s])
				}
			}
		}
	}
}
