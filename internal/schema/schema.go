// Package schema defines typed relational schemas and row values for HAIL.
//
// HAIL parses text input (CSV-like log lines) into typed binary rows at
// upload time (paper §3.1). A Schema describes the attribute names and
// types of a dataset; Row is one parsed record. Records that fail to parse
// against the schema are "bad records" and are preserved verbatim in a
// dedicated section of each block (paper §3.1, §3.5).
package schema

import (
	"fmt"
	"strings"
)

// Type identifies the physical type of an attribute.
type Type uint8

// Supported attribute types. Int32, Int64 and Float64 are fixed-size;
// String and Date are variable-size and fixed-size respectively. Date is
// stored as days since the Unix epoch in an int32.
const (
	Invalid Type = iota
	Int32
	Int64
	Float64
	Date
	String
)

// String returns the lower-case name of the type as used in schema DDL.
func (t Type) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Date:
		return "date"
	case String:
		return "string"
	default:
		return "invalid"
	}
}

// FixedSize reports whether values of the type occupy a constant number of
// bytes in a PAX block.
func (t Type) FixedSize() bool { return t != String && t != Invalid }

// Width returns the on-disk width in bytes of a fixed-size type and 0 for
// variable-size types.
func (t Type) Width() int {
	switch t {
	case Int32, Date:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// ParseType parses a type name as accepted by ParseSchema.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int32", "int":
		return Int32, nil
	case "int64", "long":
		return Int64, nil
	case "float64", "float", "double":
		return Float64, nil
	case "date":
		return Date, nil
	case "string", "varchar", "text":
		return String, nil
	default:
		return Invalid, fmt.Errorf("schema: unknown type %q", s)
	}
}

// Field is one attribute of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema describes the attributes of a dataset. Attribute positions are
// 1-based in user-facing query annotations (paper §4.1 uses @1, @3, ...)
// and 0-based in the API.
type Schema struct {
	fields []Field
	byName map[string]int
}

// New builds a schema from the given fields. Field names must be non-empty
// and unique.
func New(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("schema: no fields")
	}
	byName := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("schema: field %d has empty name", i)
		}
		if f.Type == Invalid || f.Type > String {
			return nil, fmt.Errorf("schema: field %q has invalid type", f.Name)
		}
		if _, dup := byName[f.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate field name %q", f.Name)
		}
		byName[f.Name] = i
	}
	return &Schema{fields: append([]Field(nil), fields...), byName: byName}, nil
}

// MustNew is like New but panics on error. Intended for statically known
// schemas such as the benchmark datasets.
func MustNew(fields ...Field) *Schema {
	s, err := New(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSchema parses a DDL-like schema string of the form
// "name:type,name:type,...", e.g. "sourceIP:string,visitDate:date".
func ParseSchema(ddl string) (*Schema, error) {
	parts := strings.Split(ddl, ",")
	fields := make([]Field, 0, len(parts))
	for _, p := range parts {
		nt := strings.SplitN(strings.TrimSpace(p), ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("schema: malformed field spec %q", p)
		}
		typ, err := ParseType(nt[1])
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: strings.TrimSpace(nt[0]), Type: typ})
	}
	return New(fields...)
}

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th (0-based) attribute.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of all attributes.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the 0-based position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// String formats the schema in the DDL form accepted by ParseSchema.
func (s *Schema) String() string {
	var b strings.Builder
	for i, f := range s.fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Type.String())
	}
	return b.String()
}

// FixedRowWidth returns the total width of the fixed-size attributes plus,
// for each variable-size attribute, the width of its offset entry. It is a
// lower bound on the binary footprint of one row.
func (s *Schema) FixedRowWidth() int {
	w := 0
	for _, f := range s.fields {
		if f.Type.FixedSize() {
			w += f.Type.Width()
		}
	}
	return w
}

// Equal reports whether two schemas have identical fields.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}
