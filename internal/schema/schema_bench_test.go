package schema

import "testing"

// Parsing text rows to typed binary is the HAIL client's main CPU cost at
// upload (§3.1); the sim package's ParseMBps constant abstracts this rate.
func BenchmarkParseLine(b *testing.B) {
	s := MustNew(
		Field{"sourceIP", String}, Field{"destURL", String}, Field{"visitDate", Date},
		Field{"adRevenue", Float64}, Field{"userAgent", String}, Field{"countryCode", String},
		Field{"languageCode", String}, Field{"searchWord", String}, Field{"duration", Int32},
	)
	p := NewParser(s)
	const line = "172.101.11.46,http://index.example.com/DEU/page-4711,1999-06-15,42.5,Mozilla/5.0 (X11; Linux x86_64),DEU,de-DE,elephant,371"
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueCompare(b *testing.B) {
	x, y := StringVal("alpha"), StringVal("alphb")
	for i := 0; i < b.N; i++ {
		if x.Compare(y) >= 0 {
			b.Fatal("bad compare")
		}
	}
}

func BenchmarkRowLine(b *testing.B) {
	s := MustNew(Field{"a", Int32}, Field{"b", Float64}, Field{"c", String}, Field{"d", Date})
	p := NewParser(s)
	row, err := p.ParseLine("42,3.5,hello,1999-01-01")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = row.Line(',')
	}
}
