package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// InferSchema suggests a schema from sample text lines, implementing the
// paper's §3.1 footnote: "Alternatively, HAIL may suggest an appropriate
// schema to users." For every field position it picks the most specific
// type that all sampled values parse as, in the order
// Int32 → Int64 → Float64 → Date → String.
//
// Lines whose field count differs from the majority are ignored (they
// would become bad records at upload anyway). At least one parseable line
// is required.
func InferSchema(lines []string, sep byte) (*Schema, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("schema: cannot infer from no lines")
	}
	// Majority field count.
	counts := make(map[int]int)
	for _, l := range lines {
		counts[strings.Count(l, string(sep))+1]++
	}
	nFields, best := 0, 0
	for n, c := range counts {
		if c > best || (c == best && n > nFields) {
			nFields, best = n, c
		}
	}
	if nFields == 0 {
		return nil, fmt.Errorf("schema: no fields found")
	}

	// Candidate lattice per field, narrowed by every sampled value.
	candidates := make([][]Type, nFields)
	for i := range candidates {
		candidates[i] = []Type{Int32, Int64, Float64, Date, String}
	}
	sampled := 0
	for _, l := range lines {
		fields := strings.Split(l, string(sep))
		if len(fields) != nFields {
			continue
		}
		sampled++
		for i, f := range fields {
			candidates[i] = narrow(candidates[i], f)
		}
	}
	if sampled == 0 {
		return nil, fmt.Errorf("schema: no line matches the majority field count %d", nFields)
	}

	out := make([]Field, nFields)
	for i, cand := range candidates {
		out[i] = Field{Name: "attr" + strconv.Itoa(i+1), Type: cand[0]}
	}
	return New(out...)
}

// narrow removes candidate types the value does not parse as. String
// always remains.
func narrow(cand []Type, value string) []Type {
	out := cand[:0]
	for _, t := range cand {
		if t == String {
			out = append(out, t)
			continue
		}
		if _, err := ParseValue(t, value); err == nil {
			out = append(out, t)
		}
	}
	return out
}
