package schema

import "fmt"

// Vector is the columnar counterpart of Row: all values of one attribute
// for a batch of rows, stored in a typed slice with no per-value boxing.
// The vectorized scan pipeline decodes PAX column bytes into Vectors and
// evaluates predicates directly over the typed slices, so a comparison is
// a native int/float/string compare instead of a Value.Compare call over
// boxed structs.
//
// Exactly one of the typed slices is in use, selected by the vector's
// type (Int32 and Date share I32, as they do in the PAX layout). The
// slices are exported so kernels and decoders can work on them directly;
// use Reset to reuse a vector's capacity across batches.
type Vector struct {
	typ Type
	I32 []int32
	I64 []int64
	F64 []float64
	Str []string
}

// NewVector returns an empty vector of the given type.
func NewVector(t Type) *Vector { return &Vector{typ: t} }

// Type returns the vector's value type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of values in the vector.
func (v *Vector) Len() int {
	switch v.typ {
	case Int32, Date:
		return len(v.I32)
	case Int64:
		return len(v.I64)
	case Float64:
		return len(v.F64)
	case String:
		return len(v.Str)
	}
	return 0
}

// Reset truncates the vector to length zero, keeping its capacity, so one
// scratch vector serves every batch of a scan.
func (v *Vector) Reset() {
	v.I32 = v.I32[:0]
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// Gather compacts the vector in place to the values at the given indices,
// which must be ascending. The scan pipeline uses it to shrink filter
// columns down to a batch's surviving rows, so emitted batches carry only
// survivor values; ascending order makes the in-place move safe (each
// destination slot is at or before its source).
func (v *Vector) Gather(sel []int32) {
	switch v.typ {
	case Int32, Date:
		for j, s := range sel {
			v.I32[j] = v.I32[s]
		}
		v.I32 = v.I32[:len(sel)]
	case Int64:
		for j, s := range sel {
			v.I64[j] = v.I64[s]
		}
		v.I64 = v.I64[:len(sel)]
	case Float64:
		for j, s := range sel {
			v.F64[j] = v.F64[s]
		}
		v.F64 = v.F64[:len(sel)]
	case String:
		for j, s := range sel {
			v.Str[j] = v.Str[s]
		}
		v.Str = v.Str[:len(sel)]
	}
}

// Value boxes the i-th value. The batch pipeline calls this only when
// late-materializing qualifying rows; kernels read the typed slices.
func (v *Vector) Value(i int) Value {
	switch v.typ {
	case Int32:
		return IntVal(v.I32[i])
	case Date:
		return DateVal(v.I32[i])
	case Int64:
		return LongVal(v.I64[i])
	case Float64:
		return FloatVal(v.F64[i])
	case String:
		return StringVal(v.Str[i])
	}
	panic(fmt.Sprintf("schema: Value on invalid vector type %d", v.typ))
}

// Append boxes-in one value, which must match the vector's type. Decoders
// fill the typed slices directly; Append is the convenience path for
// tests and builders.
func (v *Vector) Append(val Value) {
	if val.Type() != v.typ {
		panic(fmt.Sprintf("schema: appending %s value to %s vector", val.Type(), v.typ))
	}
	switch v.typ {
	case Int32, Date:
		v.I32 = append(v.I32, int32(val.Long()))
	case Int64:
		v.I64 = append(v.I64, val.Long())
	case Float64:
		v.F64 = append(v.F64, val.Float())
	case String:
		v.Str = append(v.Str, val.Str())
	}
}
