package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("sourceIP:string,visitDate:date,adRevenue:float64,duration:int32,count:int64")
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if s.NumFields() != 5 {
		t.Fatalf("NumFields = %d, want 5", s.NumFields())
	}
	want := []Field{
		{"sourceIP", String}, {"visitDate", Date}, {"adRevenue", Float64},
		{"duration", Int32}, {"count", Int64},
	}
	for i, f := range want {
		if s.Field(i) != f {
			t.Errorf("Field(%d) = %v, want %v", i, s.Field(i), f)
		}
	}
	if got := s.Index("adRevenue"); got != 2 {
		t.Errorf("Index(adRevenue) = %d, want 2", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Errorf("Index(nope) = %d, want -1", got)
	}
}

func TestParseSchemaRoundTrip(t *testing.T) {
	const ddl = "a:int32,b:int64,c:float64,d:date,e:string"
	s, err := ParseSchema(ddl)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if s.String() != ddl {
		t.Errorf("String() = %q, want %q", s.String(), ddl)
	}
	s2, err := ParseSchema(s.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !s.Equal(s2) {
		t.Error("round-tripped schema not Equal")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, ddl := range []string{
		"", "a", "a:frob", "a:int32,a:int64", ":int32", "a:int32,,b:int64",
	} {
		if _, err := ParseSchema(ddl); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", ddl)
		}
	}
}

func TestNewRejectsBadFields(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no fields succeeded")
	}
	if _, err := New(Field{"", Int32}); err == nil {
		t.Error("New with empty name succeeded")
	}
	if _, err := New(Field{"a", Invalid}); err == nil {
		t.Error("New with Invalid type succeeded")
	}
	if _, err := New(Field{"a", Int32}, Field{"a", Int64}); err == nil {
		t.Error("New with duplicate names succeeded")
	}
}

func TestTypeProperties(t *testing.T) {
	fixed := map[Type]int{Int32: 4, Int64: 8, Float64: 8, Date: 4}
	for typ, w := range fixed {
		if !typ.FixedSize() {
			t.Errorf("%s.FixedSize() = false", typ)
		}
		if typ.Width() != w {
			t.Errorf("%s.Width() = %d, want %d", typ, typ.Width(), w)
		}
	}
	if String.FixedSize() {
		t.Error("String.FixedSize() = true")
	}
	if String.Width() != 0 {
		t.Errorf("String.Width() = %d, want 0", String.Width())
	}
}

func TestFixedRowWidth(t *testing.T) {
	s := MustNew(Field{"a", Int32}, Field{"b", Float64}, Field{"c", String}, Field{"d", Date})
	if got := s.FixedRowWidth(); got != 16 {
		t.Errorf("FixedRowWidth = %d, want 16", got)
	}
}

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		t    Type
		text string
	}{
		{Int32, "-12345"},
		{Int32, "0"},
		{Int64, "9223372036854775807"},
		{Float64, "3.25"},
		{Date, "1999-01-01"},
		{Date, "1970-01-01"},
		{String, "hello, world"},
		{String, ""},
	}
	for _, c := range cases {
		v, err := ParseValue(c.t, c.text)
		if err != nil {
			t.Errorf("ParseValue(%s, %q): %v", c.t, c.text, err)
			continue
		}
		if v.String() != c.text {
			t.Errorf("ParseValue(%s, %q).String() = %q", c.t, c.text, v.String())
		}
		if v.Type() != c.t {
			t.Errorf("type = %s, want %s", v.Type(), c.t)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	bad := []struct {
		t    Type
		text string
	}{
		{Int32, "abc"},
		{Int32, "99999999999999"},
		{Int64, "1.5"},
		{Float64, "NaN"},
		{Float64, "x"},
		{Date, "1999/01/01"},
		{Date, "not-a-date"},
	}
	for _, c := range bad {
		if _, err := ParseValue(c.t, c.text); err == nil {
			t.Errorf("ParseValue(%s, %q) succeeded, want error", c.t, c.text)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if IntVal(1).Compare(IntVal(2)) >= 0 {
		t.Error("1 >= 2")
	}
	if LongVal(5).Compare(LongVal(5)) != 0 {
		t.Error("5 != 5")
	}
	if FloatVal(2.5).Compare(FloatVal(-1)) <= 0 {
		t.Error("2.5 <= -1")
	}
	if StringVal("a").Compare(StringVal("b")) >= 0 {
		t.Error("a >= b")
	}
	d1, d2 := DateVal(MustDate("1999-01-01")), DateVal(MustDate("2000-01-01"))
	if d1.Compare(d2) >= 0 {
		t.Error("1999 >= 2000")
	}
}

func TestValueComparePanicsOnMixedTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic comparing int32 to string")
		}
	}()
	IntVal(1).Compare(StringVal("x"))
}

func TestCompareIsTotalOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	antisym := func(a, b int32) bool {
		return IntVal(a).Compare(IntVal(b)) == -IntVal(b).Compare(IntVal(a))
	}
	if err := quick.Check(antisym, cfg); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c int64) bool {
		va, vb, vc := LongVal(a), LongVal(b), LongVal(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Error(err)
	}
	strEq := func(a, b string) bool {
		return (StringVal(a).Compare(StringVal(b)) == 0) == (a == b)
	}
	if err := quick.Check(strEq, cfg); err != nil {
		t.Error(err)
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(days int32) bool {
		// Stay within a sane calendar range (years ~1678 to ~2262).
		days %= 100000
		got, err := ParseDate(FormatDate(days))
		return err == nil && got == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParserParseLine(t *testing.T) {
	s := MustNew(
		Field{"sourceIP", String},
		Field{"visitDate", Date},
		Field{"adRevenue", Float64},
	)
	p := NewParser(s)
	row, err := p.ParseLine("134.96.223.160,1999-06-15,12.5")
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if row[0].Str() != "134.96.223.160" {
		t.Errorf("sourceIP = %q", row[0].Str())
	}
	if row[1].Days() != MustDate("1999-06-15") {
		t.Errorf("visitDate = %d", row[1].Days())
	}
	if row[2].Float() != 12.5 {
		t.Errorf("adRevenue = %v", row[2].Float())
	}
}

func TestParserBadRecords(t *testing.T) {
	s := MustNew(Field{"a", Int32}, Field{"b", Date})
	p := NewParser(s)
	for _, line := range []string{
		"1",                  // too few fields
		"1,1999-01-01,extra", // too many fields
		"x,1999-01-01",       // bad int
		"1,yesterday",        // bad date
		"",                   // empty line
	} {
		if _, err := p.ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestParserLastFieldString(t *testing.T) {
	// A trailing string field may contain the separator.
	s := MustNew(Field{"a", Int32}, Field{"msg", String})
	p := NewParser(s)
	row, err := p.ParseLine("7,hello,with,commas")
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if row[1].Str() != "hello,with,commas" {
		t.Errorf("msg = %q", row[1].Str())
	}
}

func TestRowLineRoundTrip(t *testing.T) {
	s := MustNew(
		Field{"a", Int32}, Field{"b", Int64}, Field{"c", Float64},
		Field{"d", Date}, Field{"e", String},
	)
	p := NewParser(s)
	const line = "1,2,3.5,2011-11-11,tail"
	row, err := p.ParseLine(line)
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if got := row.Line(','); got != line {
		t.Errorf("Line = %q, want %q", got, line)
	}
	row2, err := p.ParseLine(row.Line(','))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !row.Equal(row2) {
		t.Error("row round trip mismatch")
	}
}

func TestRowKeyDistinguishesRows(t *testing.T) {
	a := Row{IntVal(1), StringVal("x")}
	b := Row{IntVal(1), StringVal("y")}
	if RowKey(a) == RowKey(b) {
		t.Error("RowKey collision for different rows")
	}
	if RowKey(a) != RowKey(Row{IntVal(1), StringVal("x")}) {
		t.Error("RowKey differs for equal rows")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustNew(Field{"x", Int32})
	b := MustNew(Field{"x", Int32})
	c := MustNew(Field{"x", Int64})
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
	if a.Equal(nil) {
		t.Error("schema Equal(nil)")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { StringVal("x").Int() })
	mustPanic("Str on int", func() { IntVal(1).Str() })
	mustPanic("Float on int", func() { IntVal(1).Float() })
	mustPanic("Days on int64", func() { LongVal(1).Days() })
	mustPanic("Long on float", func() { FloatVal(1).Long() })
}

func TestTypeStringNames(t *testing.T) {
	for _, typ := range []Type{Int32, Int64, Float64, Date, String} {
		back, err := ParseType(typ.String())
		if err != nil || back != typ {
			t.Errorf("ParseType(%s.String()) = %v, %v", typ, back, err)
		}
	}
	if !strings.Contains(Invalid.String(), "invalid") {
		t.Errorf("Invalid.String() = %q", Invalid.String())
	}
}
