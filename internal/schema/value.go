package schema

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is one typed attribute value. The zero Value is the Int32 value 0;
// use the constructors to build values of other types.
type Value struct {
	typ Type
	num int64   // Int32, Int64, Date (days since epoch)
	f   float64 // Float64
	s   string  // String
}

// IntVal returns an Int32 value.
func IntVal(v int32) Value { return Value{typ: Int32, num: int64(v)} }

// LongVal returns an Int64 value.
func LongVal(v int64) Value { return Value{typ: Int64, num: v} }

// FloatVal returns a Float64 value.
func FloatVal(v float64) Value { return Value{typ: Float64, f: v} }

// DateVal returns a Date value from days since the Unix epoch.
func DateVal(days int32) Value { return Value{typ: Date, num: int64(days)} }

// StringVal returns a String value.
func StringVal(v string) Value { return Value{typ: String, s: v} }

// Type returns the type of the value.
func (v Value) Type() Type { return v.typ }

// Int returns the value as int32. It panics if the type is not Int32/Date.
func (v Value) Int() int32 {
	if v.typ != Int32 && v.typ != Date {
		panic(fmt.Sprintf("schema: Int() on %s value", v.typ))
	}
	return int32(v.num)
}

// Long returns the value as int64 for any integer-backed type.
func (v Value) Long() int64 {
	switch v.typ {
	case Int32, Int64, Date:
		return v.num
	}
	panic(fmt.Sprintf("schema: Long() on %s value", v.typ))
}

// Float returns the Float64 value.
func (v Value) Float() float64 {
	if v.typ != Float64 {
		panic(fmt.Sprintf("schema: Float() on %s value", v.typ))
	}
	return v.f
}

// Str returns the String value.
func (v Value) Str() string {
	if v.typ != String {
		panic(fmt.Sprintf("schema: Str() on %s value", v.typ))
	}
	return v.s
}

// Days returns the Date value as days since the Unix epoch.
func (v Value) Days() int32 {
	if v.typ != Date {
		panic(fmt.Sprintf("schema: Days() on %s value", v.typ))
	}
	return int32(v.num)
}

// String renders the value in the same textual form ParseValue accepts.
func (v Value) String() string {
	switch v.typ {
	case Int32, Int64:
		return strconv.FormatInt(v.num, 10)
	case Float64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Date:
		return FormatDate(int32(v.num))
	case String:
		return v.s
	default:
		return "<invalid>"
	}
}

// Compare orders v against o; both must have the same type. It returns a
// negative number, zero, or a positive number as v is less than, equal to,
// or greater than o.
func (v Value) Compare(o Value) int {
	if v.typ != o.typ {
		panic(fmt.Sprintf("schema: comparing %s against %s", v.typ, o.typ))
	}
	switch v.typ {
	case Int32, Int64, Date:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	case Float64:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.s, o.s)
	default:
		panic("schema: comparing invalid values")
	}
}

// Equal reports whether v and o are the same typed value.
func (v Value) Equal(o Value) bool { return v.typ == o.typ && v.Compare(o) == 0 }

// ParseValue parses the textual representation of a value of type t.
// Float parsing rejects NaN so that sort orders are total.
func ParseValue(t Type, s string) (Value, error) {
	switch t {
	case Int32:
		n, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return Value{}, fmt.Errorf("schema: bad int32 %q: %v", s, err)
		}
		return IntVal(int32(n)), nil
	case Int64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: bad int64 %q: %v", s, err)
		}
		return LongVal(n), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(f) {
			return Value{}, fmt.Errorf("schema: bad float64 %q", s)
		}
		return FloatVal(f), nil
	case Date:
		d, err := ParseDate(s)
		if err != nil {
			return Value{}, err
		}
		return DateVal(d), nil
	case String:
		return StringVal(s), nil
	default:
		return Value{}, fmt.Errorf("schema: cannot parse value of invalid type")
	}
}

// ParseDate parses a YYYY-MM-DD date into days since the Unix epoch.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("schema: bad date %q: %v", s, err)
	}
	return int32(t.Unix() / 86400), nil
}

// FormatDate renders days since the Unix epoch as YYYY-MM-DD.
func FormatDate(days int32) string {
	return time.Unix(int64(days)*86400, 0).UTC().Format("2006-01-02")
}

// MustDate is ParseDate for statically known dates; it panics on error.
func MustDate(s string) int32 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}
