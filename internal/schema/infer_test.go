package schema

import "testing"

func TestInferSchemaBasic(t *testing.T) {
	lines := []string{
		"1,9999999999,3.5,1999-01-01,hello",
		"2,-1,7,2000-06-15,world",
		"3,0,0.25,1970-01-01,x",
	}
	s, err := InferSchema(lines, ',')
	if err != nil {
		t.Fatal(err)
	}
	want := []Type{Int32, Int64, Float64, Date, String}
	if s.NumFields() != len(want) {
		t.Fatalf("fields = %d", s.NumFields())
	}
	for i, typ := range want {
		if s.Field(i).Type != typ {
			t.Errorf("field %d = %s, want %s", i, s.Field(i).Type, typ)
		}
	}
}

func TestInferSchemaNarrowing(t *testing.T) {
	// A column that starts int-like but contains a float must widen, and
	// one with any non-numeric value must become String.
	lines := []string{
		"1,2,3",
		"4,5.5,six",
	}
	s, err := InferSchema(lines, ',')
	if err != nil {
		t.Fatal(err)
	}
	if s.Field(0).Type != Int32 || s.Field(1).Type != Float64 || s.Field(2).Type != String {
		t.Errorf("types = %s,%s,%s", s.Field(0).Type, s.Field(1).Type, s.Field(2).Type)
	}
}

func TestInferSchemaIgnoresMinorityLines(t *testing.T) {
	lines := []string{
		"1,a", "2,b", "3,c",
		"malformed line without separator count match,x,y,z",
	}
	s, err := InferSchema(lines, ',')
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFields() != 2 {
		t.Fatalf("fields = %d, want 2 (majority)", s.NumFields())
	}
}

func TestInferSchemaInt64VsInt32(t *testing.T) {
	s, err := InferSchema([]string{"2147483648", "5"}, ',')
	if err != nil {
		t.Fatal(err)
	}
	if s.Field(0).Type != Int64 {
		t.Errorf("type = %s, want int64 (value exceeds int32)", s.Field(0).Type)
	}
}

func TestInferSchemaDates(t *testing.T) {
	s, err := InferSchema([]string{"1999-01-01", "2011-12-31"}, ',')
	if err != nil {
		t.Fatal(err)
	}
	if s.Field(0).Type != Date {
		t.Errorf("type = %s, want date", s.Field(0).Type)
	}
	// Date-like then not: widens to String.
	s2, err := InferSchema([]string{"1999-01-01", "yesterday"}, ',')
	if err != nil {
		t.Fatal(err)
	}
	if s2.Field(0).Type != String {
		t.Errorf("type = %s, want string", s2.Field(0).Type)
	}
}

func TestInferSchemaErrors(t *testing.T) {
	if _, err := InferSchema(nil, ','); err == nil {
		t.Error("inferred from no lines")
	}
}

func TestInferredSchemaParsesItsSample(t *testing.T) {
	lines := []string{
		"172.101.11.46,1999-06-15,12.5,371",
		"10.0.0.1,2001-01-01,0.1,1",
	}
	s, err := InferSchema(lines, ',')
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(s)
	for _, l := range lines {
		if _, err := p.ParseLine(l); err != nil {
			t.Errorf("inferred schema rejects its own sample %q: %v", l, err)
		}
	}
}
