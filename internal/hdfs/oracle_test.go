package hdfs

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Oracle-equivalence property test for the sharded namenode directory:
// the sharded implementation and a single-map reference (a direct port of
// the historical unsharded NameNode) are driven with the same randomized
// operation sequence and must produce identical observations after every
// step — GetHosts order, GetHostsWithIndex, generations, Dir_rep entries,
// file listings, and per-block replica-change hook counts.

// oracleDir is the reference model: the seed's one-map-per-directory
// namenode, observation-complete but unlocked (the property test is
// single-goroutine).
type oracleDir struct {
	files  map[string][]BlockID
	blocks map[BlockID][]NodeID
	reps   map[repKey]ReplicaInfo
	gens   map[BlockID]uint64
	hook   func(BlockID)
}

func newOracle() *oracleDir {
	return &oracleDir{
		files:  make(map[string][]BlockID),
		blocks: make(map[BlockID][]NodeID),
		reps:   make(map[repKey]ReplicaInfo),
		gens:   make(map[BlockID]uint64),
	}
}

func (o *oracleDir) addBlock(file string, b BlockID) {
	o.files[file] = append(o.files[file], b)
}

func (o *oracleDir) registerReplica(b BlockID, node NodeID, info ReplicaInfo) {
	key := repKey{b, node}
	if _, dup := o.reps[key]; !dup {
		o.blocks[b] = append(o.blocks[b], node)
	}
	o.reps[key] = info
	o.gens[b]++
	if o.hook != nil {
		o.hook(b)
	}
}

func (o *oracleDir) updateReplica(b BlockID, node NodeID, info ReplicaInfo) error {
	key := repKey{b, node}
	if _, ok := o.reps[key]; !ok {
		return fmt.Errorf("oracle: node %d holds no replica of block %d", node, b)
	}
	o.reps[key] = info
	o.gens[b]++
	if o.hook != nil {
		o.hook(b)
	}
	return nil
}

func (o *oracleDir) unregisterReplica(b BlockID, node NodeID) error {
	key := repKey{b, node}
	if _, ok := o.reps[key]; !ok {
		return fmt.Errorf("oracle: node %d holds no replica of block %d", node, b)
	}
	delete(o.reps, key)
	hosts := o.blocks[b]
	for i, n := range hosts {
		if n == node {
			o.blocks[b] = append(hosts[:i], hosts[i+1:]...)
			break
		}
	}
	if len(o.blocks[b]) == 0 {
		delete(o.blocks, b)
	}
	o.gens[b]++
	if o.hook != nil {
		o.hook(b)
	}
	return nil
}

func (o *oracleDir) invalidateNode(node NodeID) {
	var changed []BlockID
	for b, nodes := range o.blocks {
		for _, n := range nodes {
			if n == node {
				o.gens[b]++
				changed = append(changed, b)
				break
			}
		}
	}
	if o.hook != nil {
		for _, b := range changed {
			o.hook(b)
		}
	}
}

func (o *oracleDir) filesSorted() []string {
	var out []string
	for f := range o.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// oracleOpsPerSequence is sized so a sequence reliably mixes every op
// kind while 1000 sequences stay fast.
const oracleOpsPerSequence = 40

func TestOracleEquivalence(t *testing.T) {
	const sequences = 1000
	files := []string{"/a", "/b", "/logs/uv", "/Synthetic", "/deep/nested/file", "/z"}
	for seed := 0; seed < sequences; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			nodes := 3 + rng.Intn(4)                     // 3..6 datanodes
			shards := []int{1, 2, 3, 8, 16}[rng.Intn(5)] // includes the unsharded layout
			maxBlocks := BlockID(2 + rng.Intn(8))

			cluster, err := NewClusterShards(nodes, shards)
			if err != nil {
				t.Fatal(err)
			}
			nn := cluster.NameNode()
			oracle := newOracle()

			gotFires := make(map[BlockID]int)
			wantFires := make(map[BlockID]int)
			nn.SetReplicaChangeHook(func(b BlockID) { gotFires[b]++ })
			oracle.hook = func(b BlockID) { wantFires[b]++ }

			randomInfo := func() ReplicaInfo {
				info := ReplicaInfo{Size: rng.Intn(1 << 16), SortColumn: -1}
				if rng.Intn(2) == 0 {
					info.SortColumn = rng.Intn(3)
					info.HasIndex = rng.Intn(4) > 0
					info.IndexSize = rng.Intn(1 << 10)
				}
				return info
			}

			for op := 0; op < oracleOpsPerSequence; op++ {
				b := BlockID(rng.Int63n(int64(maxBlocks)))
				node := NodeID(rng.Intn(nodes))
				switch k := rng.Intn(12); {
				case k < 2: // AddBlock
					f := files[rng.Intn(len(files))]
					nn.AddBlock(f, b)
					oracle.addBlock(f, b)
				case k < 5: // RegisterReplica
					info := randomInfo()
					nn.RegisterReplica(b, node, info)
					oracle.registerReplica(b, node, info)
				case k < 7: // UpdateReplica (may refuse)
					info := randomInfo()
					gotErr := nn.UpdateReplica(b, node, info)
					wantErr := oracle.updateReplica(b, node, info)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("op %d: UpdateReplica(%d,%d) error mismatch: sharded %v, oracle %v",
							op, b, node, gotErr, wantErr)
					}
				case k < 9: // UnregisterReplica (may refuse)
					gotErr := nn.UnregisterReplica(b, node)
					wantErr := oracle.unregisterReplica(b, node)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("op %d: UnregisterReplica(%d,%d) error mismatch: sharded %v, oracle %v",
							op, b, node, gotErr, wantErr)
					}
				case k < 10: // InvalidateNode directly
					nn.InvalidateNode(node)
					oracle.invalidateNode(node)
				case k < 11: // KillNode through the cluster
					if err := cluster.KillNode(node); err != nil {
						t.Fatalf("op %d: KillNode(%d): %v", op, node, err)
					}
					oracle.invalidateNode(node)
				default: // ReviveNode through the cluster
					if err := cluster.ReviveNode(node); err != nil {
						t.Fatalf("op %d: ReviveNode(%d): %v", op, node, err)
					}
					oracle.invalidateNode(node)
				}
				compareObservations(t, op, nn, oracle, files, maxBlocks, nodes)
				compareFires(t, op, gotFires, wantFires)
			}
		})
	}
}

// compareObservations checks every public lookup the namenode offers
// against the oracle's answer.
func compareObservations(t *testing.T, op int, nn *NameNode, oracle *oracleDir, files []string, maxBlocks BlockID, nodes int) {
	t.Helper()

	got := nn.Files()
	want := oracle.filesSorted()
	if len(got) != len(want) {
		t.Fatalf("op %d: Files() = %v, want %v", op, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("op %d: Files() = %v, want %v", op, got, want)
		}
	}

	for _, f := range files {
		gotBS, gotErr := nn.FileBlocks(f)
		wantBS, wantOK := oracle.files[f]
		if (gotErr == nil) != wantOK {
			t.Fatalf("op %d: FileBlocks(%q) error mismatch: %v vs ok=%v", op, f, gotErr, wantOK)
		}
		if len(gotBS) != len(wantBS) {
			t.Fatalf("op %d: FileBlocks(%q) = %v, want %v", op, f, gotBS, wantBS)
		}
		for i := range gotBS {
			if gotBS[i] != wantBS[i] {
				t.Fatalf("op %d: FileBlocks(%q) = %v, want %v", op, f, gotBS, wantBS)
			}
		}
	}

	for b := BlockID(0); b < maxBlocks; b++ {
		if g, w := nn.Generation(b), oracle.gens[b]; g != w {
			t.Fatalf("op %d: Generation(%d) = %d, want %d", op, b, g, w)
		}
		gotHosts := nn.GetHosts(b)
		wantHosts := oracle.blocks[b]
		if len(gotHosts) != len(wantHosts) {
			t.Fatalf("op %d: GetHosts(%d) = %v, want %v", op, b, gotHosts, wantHosts)
		}
		for i := range gotHosts {
			if gotHosts[i] != wantHosts[i] {
				t.Fatalf("op %d: GetHosts(%d) = %v, want %v (registration order must survive sharding)",
					op, b, gotHosts, wantHosts)
			}
		}
		if g, w := nn.ReplicaCount(b), len(wantHosts); g != w {
			t.Fatalf("op %d: ReplicaCount(%d) = %d, want %d", op, b, g, w)
		}
		for col := -1; col < 3; col++ {
			gotIdx := nn.GetHostsWithIndex(b, col)
			var wantIdx []NodeID
			for _, n := range wantHosts {
				info := oracle.reps[repKey{b, n}]
				if info.HasIndex && info.SortColumn == col {
					wantIdx = append(wantIdx, n)
				}
			}
			if len(gotIdx) != len(wantIdx) {
				t.Fatalf("op %d: GetHostsWithIndex(%d,%d) = %v, want %v", op, b, col, gotIdx, wantIdx)
			}
			for i := range gotIdx {
				if gotIdx[i] != wantIdx[i] {
					t.Fatalf("op %d: GetHostsWithIndex(%d,%d) = %v, want %v", op, b, col, gotIdx, wantIdx)
				}
			}
		}
		for n := 0; n < nodes; n++ {
			gotInfo, gotOK := nn.ReplicaInfo(b, NodeID(n))
			wantInfo, wantOK := oracle.reps[repKey{b, NodeID(n)}]
			if gotOK != wantOK || gotInfo != wantInfo {
				t.Fatalf("op %d: ReplicaInfo(%d,%d) = (%+v,%v), want (%+v,%v)",
					op, b, n, gotInfo, gotOK, wantInfo, wantOK)
			}
		}
	}
}

// compareFires asserts the replica-change hook fired exactly as often per
// block on the sharded namenode as on the oracle — exactly once per
// affected block per mutation, never duplicated or dropped across shards.
func compareFires(t *testing.T, op int, got, want map[BlockID]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("op %d: hook fired for blocks %v, want %v", op, got, want)
	}
	for b, n := range want {
		if got[b] != n {
			t.Fatalf("op %d: hook fired %d times for block %d, want %d", op, got[b], b, n)
		}
	}
}
