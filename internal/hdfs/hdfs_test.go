package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestBuildPacketsFraming(t *testing.T) {
	payload := ChunksPerPacket * ChunkSize
	cases := []struct {
		size    int
		packets int
	}{
		{0, 1},
		{1, 1},
		{ChunkSize, 1},
		{payload, 1},
		{payload + 1, 2},
		{3*payload + 17, 4},
	}
	for _, c := range cases {
		pkts := BuildPackets(randBlock(c.size, int64(c.size)))
		if len(pkts) != c.packets {
			t.Errorf("size %d: %d packets, want %d", c.size, len(pkts), c.packets)
		}
		if !pkts[len(pkts)-1].Last {
			t.Errorf("size %d: last packet not marked", c.size)
		}
		for i, p := range pkts {
			if p.Seq != i {
				t.Errorf("size %d: packet %d has seq %d", c.size, i, p.Seq)
			}
			wantChunks := (len(p.Data) + ChunkSize - 1) / ChunkSize
			if p.NumChunks() != wantChunks {
				t.Errorf("size %d packet %d: %d sums for %d chunks", c.size, i, p.NumChunks(), wantChunks)
			}
		}
	}
}

func TestPacketVerifyDetectsCorruption(t *testing.T) {
	pkts := BuildPackets(randBlock(5000, 1))
	if err := pkts[0].Verify(); err != nil {
		t.Fatalf("clean packet failed verify: %v", err)
	}
	pkts[0].Data[100] ^= 0x40
	if err := pkts[0].Verify(); err == nil {
		t.Error("corrupted packet passed verify")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	f := func(seed int64, kb uint8) bool {
		data := randBlock(int(kb)*1024+int(seed%512+512)%512, seed)
		got, err := Reassemble(BuildPackets(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReassembleRejectsDisorder(t *testing.T) {
	pkts := BuildPackets(randBlock(3*ChunksPerPacket*ChunkSize, 2))
	swapped := []Packet{pkts[1], pkts[0], pkts[2]}
	if _, err := Reassemble(swapped); err == nil {
		t.Error("out-of-order packets reassembled")
	}
	if _, err := Reassemble(nil); err == nil {
		t.Error("empty packet list reassembled")
	}
}

func TestVerifyStoredSingleBitCorruption(t *testing.T) {
	// Property: any single-bit flip anywhere in the block is caught.
	data := randBlock(4*ChunkSize+123, 3)
	sums := checksumChunks(data)
	if err := VerifyStored(data, sums); err != nil {
		t.Fatalf("clean block failed: %v", err)
	}
	f := func(pos uint16, bit uint8) bool {
		p := int(pos) % len(data)
		corrupt := append([]byte(nil), data...)
		corrupt[p] ^= 1 << (bit % 8)
		return VerifyStored(corrupt, sums) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClusterWriteReadHDFSMode(t *testing.T) {
	c, err := NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlock(200_000, 4)
	id, stats, err := c.WriteBlock("/logs/uv", data, 3, nil)
	if err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	if !stats.AcksInOrder {
		t.Error("ACKs out of order")
	}
	if stats.TailVerified != stats.Packets {
		t.Errorf("tail verified %d of %d packets", stats.TailVerified, stats.Packets)
	}
	if len(stats.PipelineNodes) != 3 {
		t.Fatalf("pipeline has %d nodes", len(stats.PipelineNodes))
	}
	// All replicas byte-identical in HDFS mode.
	for _, node := range stats.PipelineNodes {
		got, err := c.ReadBlockFrom(node, id)
		if err != nil {
			t.Fatalf("read from %d: %v", node, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("replica on node %d differs from original", node)
		}
	}
	if n := c.NameNode().ReplicaCount(id); n != 3 {
		t.Errorf("namenode has %d replicas, want 3", n)
	}
	blocks, err := c.NameNode().FileBlocks("/logs/uv")
	if err != nil || len(blocks) != 1 || blocks[0] != id {
		t.Errorf("FileBlocks = %v, %v", blocks, err)
	}
}

func TestClusterHAILModeTransformPerReplica(t *testing.T) {
	c, _ := NewCluster(4)
	data := randBlock(50_000, 5)
	// Transform stamps each replica with its pipeline position, modelling
	// per-replica sort orders: replicas differ, sizes differ.
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		out := append([]byte{byte(pos)}, block...)
		out = append(out, make([]byte, pos*100)...)
		return out, ReplicaInfo{SortColumn: pos, HasIndex: true, IndexSize: 64}, nil
	}
	id, stats, err := c.WriteBlock("/f", data, 3, transform)
	if err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	sizes := map[int]bool{}
	for pos, node := range stats.PipelineNodes {
		got, err := c.ReadBlockFrom(node, id)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got[0] != byte(pos) {
			t.Errorf("replica at position %d stamped %d", pos, got[0])
		}
		sizes[len(got)] = true
		info, ok := c.NameNode().ReplicaInfo(id, node)
		if !ok {
			t.Fatalf("no Dir_rep entry for node %d", node)
		}
		if info.SortColumn != pos || !info.HasIndex || info.Size != len(got) {
			t.Errorf("Dir_rep entry wrong: %+v", info)
		}
	}
	if len(sizes) != 3 {
		t.Errorf("expected 3 distinct replica sizes, got %d", len(sizes))
	}
}

func TestGetHostsWithIndex(t *testing.T) {
	c, _ := NewCluster(5)
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		return block, ReplicaInfo{SortColumn: pos, HasIndex: true}, nil
	}
	id, stats, err := c.WriteBlock("/f", randBlock(10_000, 6), 3, transform)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 3; pos++ {
		hosts := c.NameNode().GetHostsWithIndex(id, pos)
		if len(hosts) != 1 || hosts[0] != stats.PipelineNodes[pos] {
			t.Errorf("GetHostsWithIndex(%d) = %v, want [%d]", pos, hosts, stats.PipelineNodes[pos])
		}
	}
	if hosts := c.NameNode().GetHostsWithIndex(id, 99); len(hosts) != 0 {
		t.Errorf("GetHostsWithIndex(99) = %v, want none", hosts)
	}
	if got := c.NameNode().GetHosts(id); len(got) != 3 {
		t.Errorf("GetHosts = %v", got)
	}
}

func TestTransformErrorFailsUpload(t *testing.T) {
	c, _ := NewCluster(3)
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		if pos == 1 {
			return nil, ReplicaInfo{}, fmt.Errorf("boom")
		}
		return block, ReplicaInfo{}, nil
	}
	if _, _, err := c.WriteBlock("/f", randBlock(1000, 7), 3, transform); err == nil {
		t.Error("upload with failing transform succeeded")
	}
}

func TestCorruptReplicaDetectedOnRead(t *testing.T) {
	c, _ := NewCluster(3)
	id, stats, err := c.WriteBlock("/f", randBlock(100_000, 8), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := stats.PipelineNodes[1]
	dn, _ := c.DataNode(victim)
	if err := dn.CorruptByte(id, 31337); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadBlockFrom(victim, id); err == nil {
		t.Error("read of corrupted replica succeeded")
	}
	// ReadBlockAny must fail over to a clean replica.
	data, node, err := c.ReadBlockAny(id, victim)
	if err != nil {
		t.Fatalf("ReadBlockAny: %v", err)
	}
	if node == victim {
		t.Error("ReadBlockAny returned the corrupted replica's node")
	}
	if len(data) != 100_000 {
		t.Errorf("got %d bytes", len(data))
	}
}

func TestKilledNodeFailover(t *testing.T) {
	c, _ := NewCluster(4)
	id, stats, err := c.WriteBlock("/f", randBlock(20_000, 9), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	dead := stats.PipelineNodes[0]
	if err := c.KillNode(dead); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadBlockFrom(dead, id); err == nil {
		t.Error("read from dead node succeeded")
	}
	if _, node, err := c.ReadBlockAny(id, dead); err != nil || node == dead {
		t.Errorf("failover read: node=%d err=%v", node, err)
	}
	if got := len(c.AliveNodes()); got != 3 {
		t.Errorf("AliveNodes = %d, want 3", got)
	}
	// Uploads must avoid the dead node.
	for i := 0; i < 5; i++ {
		_, st, err := c.WriteBlock("/g", randBlock(1000, int64(10+i)), 3, nil)
		if err != nil {
			t.Fatalf("upload after kill: %v", err)
		}
		for _, n := range st.PipelineNodes {
			if n == dead {
				t.Error("pipeline includes dead node")
			}
		}
	}
	// Revive and confirm reads work again.
	dn, _ := c.DataNode(dead)
	dn.Revive()
	if _, err := c.ReadBlockFrom(dead, id); err != nil {
		t.Errorf("read after revive: %v", err)
	}
}

func TestInsufficientAliveNodes(t *testing.T) {
	c, _ := NewCluster(3)
	c.KillNode(0)
	if _, _, err := c.WriteBlock("/f", randBlock(100, 11), 3, nil); err == nil {
		t.Error("upload with 2 alive nodes at replication 3 succeeded")
	}
}

func TestRoundRobinPlacementBalance(t *testing.T) {
	c, _ := NewCluster(10)
	counts := make(map[NodeID]int)
	for i := 0; i < 100; i++ {
		_, stats, err := c.WriteBlock("/f", randBlock(256, int64(i)), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range stats.PipelineNodes {
			counts[n]++
		}
	}
	// 100 blocks × 3 replicas over 10 nodes = 30 per node exactly with
	// round-robin placement.
	for n, got := range counts {
		if got != 30 {
			t.Errorf("node %d stores %d replicas, want 30", n, got)
		}
	}
}

func TestHigherReplicationFactors(t *testing.T) {
	// Figure 4(c) uses replication factors up to 10.
	c, _ := NewCluster(10)
	for _, r := range []int{1, 3, 5, 6, 7, 10} {
		id, stats, err := c.WriteBlock(fmt.Sprintf("/r%d", r), randBlock(5000, int64(r)), r, nil)
		if err != nil {
			t.Fatalf("replication %d: %v", r, err)
		}
		if len(stats.PipelineNodes) != r || c.NameNode().ReplicaCount(id) != r {
			t.Errorf("replication %d: pipeline %d, replicas %d", r, len(stats.PipelineNodes), c.NameNode().ReplicaCount(id))
		}
	}
}

func TestUploadStatsLinkBytes(t *testing.T) {
	c, _ := NewCluster(3)
	data := randBlock(100_000, 12)
	_, stats, err := c.WriteBlock("/f", data, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every packet crosses 3 links; link bytes must cover 3× the data
	// plus checksum overhead.
	if stats.LinkBytes < 3*int64(len(data)) {
		t.Errorf("LinkBytes = %d, want >= %d", stats.LinkBytes, 3*len(data))
	}
	overhead := float64(stats.LinkBytes) / float64(3*len(data))
	if overhead > 1.02 {
		t.Errorf("checksum overhead %.3f too large", overhead)
	}
}

func TestNameNodeFileOps(t *testing.T) {
	nn := NewNameNode()
	if _, err := nn.FileBlocks("/missing"); err == nil {
		t.Error("FileBlocks on missing file succeeded")
	}
	nn.AddBlock("/b", 1)
	nn.AddBlock("/a", 2)
	nn.AddBlock("/b", 3)
	if files := nn.Files(); len(files) != 2 || files[0] != "/a" || files[1] != "/b" {
		t.Errorf("Files = %v", files)
	}
	bs, err := nn.FileBlocks("/b")
	if err != nil || len(bs) != 2 || bs[0] != 1 || bs[1] != 3 {
		t.Errorf("FileBlocks(/b) = %v, %v", bs, err)
	}
}

func TestDataNodeDoubleFlushRejected(t *testing.T) {
	dn := NewDataNode(0)
	data := randBlock(1000, 13)
	if err := dn.flush(7, data, checksumChunks(data)); err != nil {
		t.Fatal(err)
	}
	if err := dn.flush(7, data, checksumChunks(data)); err == nil {
		t.Error("double flush of same block accepted")
	}
}

func TestEmptyBlockUpload(t *testing.T) {
	c, _ := NewCluster(3)
	id, stats, err := c.WriteBlock("/empty", nil, 3, nil)
	if err != nil {
		t.Fatalf("empty block upload: %v", err)
	}
	if stats.Packets != 1 {
		t.Errorf("empty block framed as %d packets, want 1", stats.Packets)
	}
	got, _, err := c.ReadBlockAny(id, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty block read: %v bytes, %v", len(got), err)
	}
}

// TestBlockGenerations: every replica-topology change a reader could
// observe bumps the block's generation and fires the change hook — the
// result cache's invalidation contract.
func TestBlockGenerations(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.WriteBlock("/f", randBlock(9_000, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn := c.NameNode()
	g0 := nn.Generation(id)
	if g0 == 0 {
		t.Error("upload registered replicas without bumping the generation")
	}

	var fired []BlockID
	nn.SetReplicaChangeHook(func(b BlockID) { fired = append(fired, b) })

	// In-place reorganization.
	node := nn.GetHosts(id)[0]
	if err := c.ReplaceReplica(id, node, randBlock(9_000, 2), ReplicaInfo{SortColumn: 1, HasIndex: true}); err != nil {
		t.Fatal(err)
	}
	if g := nn.Generation(id); g != g0+1 {
		t.Errorf("ReplaceReplica: generation %d, want %d", g, g0+1)
	}

	// Additional replica on a free node.
	var free NodeID = -1
	holders := make(map[NodeID]bool)
	for _, h := range nn.GetHosts(id) {
		holders[h] = true
	}
	for _, n := range c.AliveNodes() {
		if !holders[n] {
			free = n
			break
		}
	}
	if err := c.StoreAdditionalReplica(id, free, randBlock(9_000, 3), ReplicaInfo{SortColumn: 2, HasIndex: true}); err != nil {
		t.Fatal(err)
	}
	if g := nn.Generation(id); g != g0+2 {
		t.Errorf("StoreAdditionalReplica: generation %d, want %d", g, g0+2)
	}

	// Node loss and return both invalidate the node's blocks.
	if err := c.KillNode(node); err != nil {
		t.Fatal(err)
	}
	if g := nn.Generation(id); g != g0+3 {
		t.Errorf("KillNode: generation %d, want %d", g, g0+3)
	}
	if err := c.ReviveNode(node); err != nil {
		t.Fatal(err)
	}
	if g := nn.Generation(id); g != g0+4 {
		t.Errorf("ReviveNode: generation %d, want %d", g, g0+4)
	}

	if len(fired) != 4 {
		t.Errorf("change hook fired %d times (%v), want 4", len(fired), fired)
	}
	for _, b := range fired {
		if b != id {
			t.Errorf("change hook fired for block %d, want %d", b, id)
		}
	}
}

// TestDropReplica: dropping a replica unregisters it from the directory,
// deletes the stored bytes, bumps the block's generation and fires the
// change hook exactly once — the contract adaptive eviction and the
// result cache's purge path build on.
func TestDropReplica(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.WriteBlock("/f", randBlock(9_000, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn := c.NameNode()
	victim := nn.GetHosts(id)[1]
	g0 := nn.Generation(id)
	var fired []BlockID
	nn.SetReplicaChangeHook(func(b BlockID) { fired = append(fired, b) })

	if err := c.DropReplica(id, victim); err != nil {
		t.Fatal(err)
	}
	for _, h := range nn.GetHosts(id) {
		if h == victim {
			t.Errorf("dropped node %d still listed in Dir_block", victim)
		}
	}
	if _, ok := nn.ReplicaInfo(id, victim); ok {
		t.Errorf("dropped replica (%d,%d) still in Dir_rep", id, victim)
	}
	if n := nn.ReplicaCount(id); n != 2 {
		t.Errorf("replica count %d after drop, want 2", n)
	}
	dn, _ := c.DataNode(victim)
	if dn.HasReplica(id) {
		t.Errorf("node %d still stores block %d after drop", victim, id)
	}
	if g := nn.Generation(id); g != g0+1 {
		t.Errorf("generation %d after drop, want %d", g, g0+1)
	}
	if len(fired) != 1 || fired[0] != id {
		t.Errorf("change hook fired %v, want exactly once for block %d", fired, id)
	}

	// The block stays readable from the surviving replicas.
	if _, _, err := c.ReadBlockAny(id, victim); err != nil {
		t.Fatalf("block unreadable after dropping one of three replicas: %v", err)
	}
	// Dropping an unregistered replica refuses.
	if err := c.DropReplica(id, victim); err == nil {
		t.Error("double drop succeeded, want error")
	}
	// The freed node can hold a fresh replica again (no ghost bytes).
	if err := c.StoreAdditionalReplica(id, victim, randBlock(9_000, 2), ReplicaInfo{SortColumn: 1, HasIndex: true}); err != nil {
		t.Fatalf("re-store on dropped node: %v", err)
	}
}

// TestDropReplicaDeadNode: a dead node's replica can still be dropped from
// the directory — its disk is unreachable, so the bytes linger as a ghost
// — and a post-revival store collides with ErrReplicaExists, the benign
// race the adaptive indexer re-picks around.
func TestDropReplicaDeadNode(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.WriteBlock("/f", randBlock(6_000, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn := c.NameNode()
	victim := nn.GetHosts(id)[0]
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.DropReplica(id, victim); err != nil {
		t.Fatalf("drop on dead node: %v", err)
	}
	if _, ok := nn.ReplicaInfo(id, victim); ok {
		t.Error("dead node's dropped replica still in Dir_rep")
	}
	if err := c.ReviveNode(victim); err != nil {
		t.Fatal(err)
	}
	// The ghost bytes survive on the revived node's disk...
	dn, _ := c.DataNode(victim)
	if !dn.HasReplica(id) {
		t.Fatal("expected ghost bytes on the revived node")
	}
	// ...so a store collides with the typed sentinel.
	err = c.StoreAdditionalReplica(id, victim, randBlock(6_000, 2), ReplicaInfo{SortColumn: -1})
	if !errors.Is(err, ErrReplicaExists) {
		t.Errorf("store over ghost bytes returned %v, want ErrReplicaExists", err)
	}
}
