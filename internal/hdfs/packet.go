// Package hdfs is an in-process reimplementation of the HDFS machinery HAIL
// modifies (paper §3): a namenode with block and replica directories,
// datanodes with local block stores, and the packet/chunk/checksum upload
// pipeline with its acknowledgement chain.
//
// It reproduces the protocol at the level the paper describes: blocks are
// cut into 512-byte chunks, chunks are collected into packets of up to
// 64 KB with one CRC-32 checksum per chunk, packets flow client → DN1 →
// DN2 → DN3, only the last datanode in the chain verifies checksums, and
// acknowledgements travel back through the chain with each datanode
// appending its ID. Two upload modes exist: classic HDFS (flush chunk data
// and checksums as packets arrive) and HAIL (assemble the whole block in
// memory, transform it per replica — sort + index —, recompute checksums,
// then flush; §3.2).
package hdfs

import (
	"fmt"
	"hash/crc32"
)

// Chunk and packet framing constants (paper §3.2: "the data is further
// partitioned into chunks of constant size 512B ... In total a packet has
// a size of up to 64KB").
const (
	ChunkSize       = 512
	ChunksPerPacket = 126 // 126 × (512 + 4) ≈ 64 KB per packet
)

// Packet is a sequence of chunks plus a checksum for each chunk.
type Packet struct {
	Seq  int      // packet sequence number within the block, from 0
	Data []byte   // concatenated chunk payloads (last chunk may be short)
	Sums []uint32 // one CRC-32 per chunk
	Last bool     // marks the final packet of the block
}

// NumChunks returns the number of chunks in the packet.
func (p *Packet) NumChunks() int { return len(p.Sums) }

// checksumChunks computes one CRC-32 (IEEE) per 512-byte chunk of data.
func checksumChunks(data []byte) []uint32 {
	n := (len(data) + ChunkSize - 1) / ChunkSize
	sums := make([]uint32, 0, n)
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		sums = append(sums, crc32.ChecksumIEEE(data[off:end]))
	}
	return sums
}

// BuildPackets frames a block into packets, computing chunk checksums.
// An empty block still produces one empty final packet so the ACK chain
// and flush semantics run.
func BuildPackets(block []byte) []Packet {
	payload := ChunksPerPacket * ChunkSize
	var pkts []Packet
	for off := 0; ; off += payload {
		end := off + payload
		if end >= len(block) {
			end = len(block)
		}
		data := block[off:end]
		pkts = append(pkts, Packet{
			Seq:  len(pkts),
			Data: data,
			Sums: checksumChunks(data),
			Last: end == len(block),
		})
		if end == len(block) {
			return pkts
		}
	}
}

// Verify recomputes the chunk checksums of the packet and compares them to
// the carried ones. This is what the last datanode in the pipeline does for
// every packet (§3.2 step 9).
func (p *Packet) Verify() error {
	want := checksumChunks(p.Data)
	if len(want) != len(p.Sums) {
		return fmt.Errorf("hdfs: packet %d carries %d checksums for %d chunks", p.Seq, len(p.Sums), len(want))
	}
	for i := range want {
		if want[i] != p.Sums[i] {
			return fmt.Errorf("hdfs: packet %d chunk %d checksum mismatch", p.Seq, i)
		}
	}
	return nil
}

// Reassemble concatenates packet payloads back into the block, validating
// sequence numbers. This is the in-memory reassembly every HAIL datanode
// performs before sorting (§3.2 step 6).
func Reassemble(pkts []Packet) ([]byte, error) {
	total := 0
	for i, p := range pkts {
		if p.Seq != i {
			return nil, fmt.Errorf("hdfs: packet out of order: got seq %d at position %d", p.Seq, i)
		}
		if p.Last != (i == len(pkts)-1) {
			return nil, fmt.Errorf("hdfs: misplaced last-packet marker at seq %d", p.Seq)
		}
		total += len(p.Data)
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("hdfs: no packets")
	}
	out := make([]byte, 0, total)
	for i := range pkts {
		out = append(out, pkts[i].Data...)
	}
	return out, nil
}

// VerifyStored checks stored block bytes against a stored checksum file
// (one CRC-32 per 512-byte chunk), as the read path does before handing
// data to a record reader.
func VerifyStored(data []byte, sums []uint32) error {
	want := checksumChunks(data)
	if len(want) != len(sums) {
		return fmt.Errorf("hdfs: checksum file has %d entries for %d chunks", len(sums), len(want))
	}
	for i := range want {
		if want[i] != sums[i] {
			return fmt.Errorf("hdfs: stored chunk %d corrupt", i)
		}
	}
	return nil
}
