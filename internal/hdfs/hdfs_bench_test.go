package hdfs

import "testing"

func BenchmarkBuildPackets(b *testing.B) {
	data := randBlock(4<<20, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPackets(data)
	}
}

func BenchmarkPacketVerify(b *testing.B) {
	pkts := BuildPackets(randBlock(4<<20, 2))
	var bytes int64
	for i := range pkts {
		bytes += int64(len(pkts[i].Data))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pkts {
			if err := pkts[j].Verify(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWriteBlockHDFSMode(b *testing.B) {
	data := randBlock(1<<20, 3)
	b.SetBytes(int64(len(data)) * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.WriteBlock("/f", data, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBlockWithTransform(b *testing.B) {
	data := randBlock(1<<20, 4)
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		out := append([]byte(nil), block...)
		return out, ReplicaInfo{SortColumn: pos, HasIndex: true}, nil
	}
	b.SetBytes(int64(len(data)) * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.WriteBlock("/f", data, 3, transform); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBlock(b *testing.B) {
	c, _ := NewCluster(3)
	data := randBlock(1<<20, 5)
	id, _, err := c.WriteBlock("/f", data, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.ReadBlockAny(id, 0); err != nil {
			b.Fatal(err)
		}
	}
}
