package hdfs

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// Regression tests for deterministic cross-shard aggregation: every
// multi-entry output of the namenode must be in a sorted, stable order
// instead of leaking Go map (or shard) iteration order.

// TestFilesSortedAcrossShards: Files() returns sorted names no matter how
// insertion order and the ring spread them over shards.
func TestFilesSortedAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 8} {
		nn := NewNameNodeShards(shards)
		rng := rand.New(rand.NewSource(7))
		var names []string
		for i := 0; i < 64; i++ {
			names = append(names, filepath.Join("/dir", string(rune('a'+rng.Intn(26))), string(rune('a'+i%26))))
		}
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		for i, f := range names {
			nn.AddBlock(f, BlockID(i))
		}
		got := nn.Files()
		if !sort.StringsAreSorted(got) {
			t.Fatalf("shards=%d: Files() not sorted: %v", shards, got)
		}
		want := append([]string(nil), names...)
		sort.Strings(want)
		want = dedupeSorted(want)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: Files() = %d names, want %d", shards, len(got), len(want))
		}
	}
}

func dedupeSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// TestInvalidateNodeHookOrder: the replica-change hook fires exactly once
// per affected block, in ascending block order — the cross-shard merge
// must not leak per-shard map iteration order.
func TestInvalidateNodeHookOrder(t *testing.T) {
	nn := NewNameNodeShards(8)
	for b := BlockID(0); b < 40; b++ {
		nn.RegisterReplica(b, 1, ReplicaInfo{SortColumn: -1})
		if b%2 == 0 {
			nn.RegisterReplica(b, 2, ReplicaInfo{SortColumn: -1})
		}
	}
	var fired []BlockID
	nn.SetReplicaChangeHook(func(b BlockID) { fired = append(fired, b) })
	nn.InvalidateNode(1)
	if len(fired) != 40 {
		t.Fatalf("hook fired %d times, want once per affected block (40)", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] <= fired[i-1] {
			t.Fatalf("hook order not strictly ascending at %d: %v", i, fired)
		}
	}

	// A node holding replicas of only some blocks fires for exactly those.
	fired = nil
	nn.InvalidateNode(2)
	if len(fired) != 20 {
		t.Fatalf("hook fired %d times for node 2, want 20", len(fired))
	}
	for i, b := range fired {
		if b != BlockID(2*i) {
			t.Fatalf("hook fired for %v, want even blocks in order", fired)
		}
	}
}

// TestManifestReplicaOrderDeterministic: Save writes manifest replicas
// sorted by (block, node), so two saves of equal state produce identical
// manifests regardless of shard layout.
func TestManifestReplicaOrderDeterministic(t *testing.T) {
	write := func(shards int, dir string) []manifestReplica {
		t.Helper()
		c, err := NewClusterShards(4, shards)
		if err != nil {
			t.Fatal(err)
		}
		// Upload in an order that scatters registration across shards.
		for i := 0; i < 12; i++ {
			if _, _, err := c.WriteBlock("/f", []byte("payload-data"), 2, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Save(dir); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		return m.Replicas
	}

	reps1 := write(1, t.TempDir())
	reps8 := write(8, t.TempDir())
	if len(reps1) == 0 || len(reps1) != len(reps8) {
		t.Fatalf("manifest replica counts differ: %d vs %d", len(reps1), len(reps8))
	}
	for i := range reps1 {
		if reps1[i] != reps8[i] {
			t.Fatalf("manifest replica %d differs between shard layouts: %+v vs %+v", i, reps1[i], reps8[i])
		}
		if i > 0 {
			prev, cur := reps1[i-1], reps1[i]
			if cur.Block < prev.Block || (cur.Block == prev.Block && cur.Node <= prev.Node) {
				t.Fatalf("manifest replicas not sorted by (block, node) at %d: %+v after %+v", i, cur, prev)
			}
		}
	}
}
