package hdfs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrReplicaExists reports that the target node already stores a replica
// of the block. StoreAdditionalReplica returns it (wrapped) when a
// concurrent build or recovery won the placement race; callers treat it as
// a benign capacity condition — re-pick a node or skip — not a failure.
var ErrReplicaExists = errors.New("node already stores a replica of the block")

// ReplicaTransform customizes what each datanode in an upload pipeline
// stores for a block. HAIL injects per-replica sorting and indexing through
// this hook (§3.2 step 7): position is the node's place in the pipeline
// (0 = DN1), and the returned bytes replace the received block on that
// node only. The returned ReplicaInfo is registered with the namenode's
// Dir_rep. A nil transform gives classic HDFS byte-identical replicas.
type ReplicaTransform func(position int, node NodeID, block []byte) ([]byte, ReplicaInfo, error)

// UploadStats describes one block upload for tests and the cost model.
type UploadStats struct {
	Packets       int   // packets framed for the block
	LinkBytes     int64 // bytes crossing pipeline links (incl. checksums)
	Links         int   // pipeline links the packets traversed
	TailVerified  int   // packets checksum-verified by the tail datanode
	AcksInOrder   bool  // client saw every ACK in sequence order
	ReplicaSizes  []int // stored size per pipeline position
	PipelineNodes []NodeID
}

// Cluster wires a namenode and a set of datanodes together and implements
// the upload pipeline over them.
type Cluster struct {
	mu        sync.Mutex
	nn        *NameNode
	dns       []*DataNode
	nextBlock BlockID
	cursor    int // round-robin placement cursor

	// Incremental-save bookkeeping: which directory the last save
	// targeted (a different target forces a full rewrite) and what it
	// wrote. The dirty-replica marks themselves live in the namenode's
	// directory shards, next to the Dir_rep entries they annotate.
	// Guarded by saveMu, not mu — saves must not block uploads. saveOpMu
	// serializes whole Save calls: two concurrent saves to different
	// directories would otherwise race on consuming the dirty marks and
	// the savedTo transition, letting one of them skip a changed replica.
	saveOpMu sync.Mutex
	saveMu   sync.Mutex
	savedTo  string
	lastSave SaveReport
}

// registerReplicaDirty registers a new replica and marks it dirty as one
// atomic step under the block's directory-shard lock. Save snapshots each
// shard and consumes its dirty marks under the same lock, so it can never
// observe the registration without its dirty mark — the interleaving that
// would persist a manifest entry while skipping the replica's changed
// bytes. The replica-change hook fires after every lock is released, so
// hooks may safely call back into the save API.
func (c *Cluster) registerReplicaDirty(b BlockID, node NodeID, info ReplicaInfo) {
	c.nn.registerReplica(b, node, info, true)
	c.nn.notifyChanged(c.nn.hook(), b)
}

// updateReplicaDirty is registerReplicaDirty's counterpart for in-place
// replica updates (adaptive conversions).
func (c *Cluster) updateReplicaDirty(b BlockID, node NodeID, info ReplicaInfo) error {
	if err := c.nn.updateReplica(b, node, info, true); err != nil {
		return err
	}
	c.nn.notifyChanged(c.nn.hook(), b)
	return nil
}

// NewCluster creates a cluster with n datanodes (IDs 0..n-1) and the
// default namenode shard count.
func NewCluster(n int) (*Cluster, error) {
	return NewClusterShards(n, DefaultShards)
}

// NewClusterShards creates a cluster with n datanodes whose namenode
// directory is partitioned into the given number of shards (values below
// 1 select DefaultShards; pass 1 for the historical unsharded layout).
func NewClusterShards(n, shards int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("hdfs: cluster needs at least one datanode")
	}
	c := &Cluster{nn: NewNameNodeShards(shards)}
	for i := 0; i < n; i++ {
		c.dns = append(c.dns, NewDataNode(NodeID(i)))
	}
	return c, nil
}

// NameNode returns the cluster's namenode.
func (c *Cluster) NameNode() *NameNode { return c.nn }

// DataNode returns the datanode with the given ID.
func (c *Cluster) DataNode(id NodeID) (*DataNode, error) {
	if int(id) < 0 || int(id) >= len(c.dns) {
		return nil, fmt.Errorf("hdfs: no datanode %d", id)
	}
	return c.dns[id], nil
}

// NumNodes returns the cluster size (dead or alive).
func (c *Cluster) NumNodes() int { return len(c.dns) }

// AliveNodes lists the IDs of nodes that are up.
func (c *Cluster) AliveNodes() []NodeID {
	var out []NodeID
	for _, dn := range c.dns {
		if dn.Alive() {
			out = append(out, dn.ID())
		}
	}
	return out
}

// KillNode takes a datanode down (fault-tolerance experiments, §6.4.3).
// Every block with a replica on the node gets its generation bumped: its
// readers will fail over to another replica (possibly sorted differently),
// so cached per-block results computed before the loss must not be served.
func (c *Cluster) KillNode(id NodeID) error {
	dn, err := c.DataNode(id)
	if err != nil {
		return err
	}
	dn.Kill()
	c.nn.InvalidateNode(id)
	return nil
}

// ReviveNode brings a killed datanode back and bumps the generation of its
// blocks — the node's replicas become readable again, which changes the
// replica a reader would pick just as its loss did.
func (c *Cluster) ReviveNode(id NodeID) error {
	dn, err := c.DataNode(id)
	if err != nil {
		return err
	}
	dn.Revive()
	c.nn.InvalidateNode(id)
	return nil
}

// pickPipeline selects `replication` distinct alive datanodes, walking a
// round-robin cursor so block placement spreads evenly — the property the
// scale-out experiments rely on.
func (c *Cluster) pickPipeline(replication int) ([]*DataNode, error) {
	alive := c.AliveNodes()
	if len(alive) < replication {
		return nil, fmt.Errorf("hdfs: need %d alive datanodes, have %d", replication, len(alive))
	}
	start := c.cursor % len(alive)
	c.cursor++
	nodes := make([]*DataNode, 0, replication)
	for i := 0; i < replication; i++ {
		nodes = append(nodes, c.dns[alive[(start+i)%len(alive)]])
	}
	return nodes, nil
}

// WriteBlock uploads one block with the given replication factor, running
// the full packet pipeline: framing into checksummed packets, forwarding
// along the chain, tail-only verification, the backwards ACK chain, and
// per-node flush. With a transform (HAIL mode) every datanode reassembles
// the block in memory, transforms it, recomputes its own checksums and
// flushes; without one (HDFS mode) nodes store the packets' bytes and the
// checksums they carried.
func (c *Cluster) WriteBlock(file string, data []byte, replication int, transform ReplicaTransform) (BlockID, UploadStats, error) {
	c.mu.Lock()
	pipeline, err := c.pickPipeline(replication)
	if err != nil {
		c.mu.Unlock()
		return 0, UploadStats{}, err
	}
	id := c.nextBlock
	c.nextBlock++
	c.mu.Unlock()

	stats := UploadStats{AcksInOrder: true}
	for _, dn := range pipeline {
		stats.PipelineNodes = append(stats.PipelineNodes, dn.ID())
	}

	// Client side: frame the block (§3.2 step 4). In HAIL mode `data` is
	// already a PAX block built by the HAIL client.
	pkts := BuildPackets(data)
	stats.Packets = len(pkts)
	stats.Links = len(pipeline) // client→DN1 plus the inter-DN hops

	// Forward every packet down the chain. Each node receives every
	// packet; only the tail verifies (§3.2: "DN2 believes DN3, DN1
	// believes DN2, and CL believes DN1").
	perPacketBytes := func(p *Packet) int64 { return int64(len(p.Data)) + int64(4*len(p.Sums)) }
	nextAck := 0
	for i := range pkts {
		p := &pkts[i]
		for pos, dn := range pipeline {
			if !dn.Alive() {
				return 0, stats, fmt.Errorf("hdfs: datanode %d died during upload of block %d", dn.ID(), id)
			}
			dn.mu.Lock()
			dn.packetsRecv++
			dn.mu.Unlock()
			stats.LinkBytes += perPacketBytes(p)
			_ = pos
		}
		tail := pipeline[len(pipeline)-1]
		if err := p.Verify(); err != nil {
			return 0, stats, fmt.Errorf("hdfs: tail datanode %d: %v", tail.ID(), err)
		}
		tail.mu.Lock()
		tail.verifyCount++
		tail.mu.Unlock()

		// ACK chain: the ack for packet p travels tail→…→DN1→client with
		// node IDs appended; the client checks sequence order (§3.2 step 15).
		ackIDs := make([]NodeID, 0, len(pipeline))
		for pos := len(pipeline) - 1; pos >= 0; pos-- {
			ackIDs = append(ackIDs, pipeline[pos].ID())
		}
		if len(ackIDs) != len(pipeline) || p.Seq != nextAck {
			stats.AcksInOrder = false
			return 0, stats, fmt.Errorf("hdfs: ACK for packet %d out of order (want %d)", p.Seq, nextAck)
		}
		nextAck++
	}

	// Flush phase. In HDFS mode data was logically streamed to disk as
	// packets arrived; in HAIL mode each node reassembles, transforms,
	// recomputes checksums for its own bytes and only then flushes.
	flushed := make([]NodeID, 0, len(pipeline))
	for pos, dn := range pipeline {
		stored := data
		info := ReplicaInfo{Size: len(data), SortColumn: -1}
		if transform != nil {
			block, err := Reassemble(pkts)
			if err != nil {
				return 0, stats, err
			}
			stored, info, err = transform(pos, dn.ID(), block)
			if err != nil {
				return 0, stats, fmt.Errorf("hdfs: transform on datanode %d: %v", dn.ID(), err)
			}
			info.Size = len(stored)
		}
		// Each replica gets its own checksum file: in HAIL mode sort
		// orders differ per replica, so checksums must be recomputed per
		// node (§3.2 step 7); in HDFS mode this equals the carried sums.
		sums := checksumChunks(stored)
		if err := dn.flush(id, stored, sums); err != nil {
			return 0, stats, err
		}
		stats.ReplicaSizes = append(stats.ReplicaSizes, len(stored))
		// The datanode informs the namenode about its new replica,
		// including size, index and sort order (§3.2 steps 11 and 14).
		c.registerReplicaDirty(id, dn.ID(), info)
		flushed = append(flushed, dn.ID())
	}
	if len(flushed) != replication {
		return 0, stats, fmt.Errorf("hdfs: flushed %d replicas, want %d", len(flushed), replication)
	}

	c.nn.AddBlock(file, id)
	stats.TailVerified = len(pkts)
	return id, stats, nil
}

// StoreAdditionalReplica places a block replica on a node outside the
// normal upload pipeline and registers it with the namenode. Two paths
// use it: re-replication after a datanode loss (StoreRecoveredReplica)
// and the adaptive indexer, which stores a freshly sorted+indexed copy of
// a block so later jobs get index scans. The replica's checksum file is
// computed here.
func (c *Cluster) StoreAdditionalReplica(b BlockID, node NodeID, data []byte, info ReplicaInfo) error {
	dn, err := c.DataNode(node)
	if err != nil {
		return err
	}
	if dn.HasReplica(b) {
		return fmt.Errorf("hdfs: node %d, block %d: %w", node, b, ErrReplicaExists)
	}
	if err := dn.flush(b, data, checksumChunks(data)); err != nil {
		return err
	}
	info.Size = len(data)
	c.registerReplicaDirty(b, node, info)
	return nil
}

// DropReplica removes one replica of a block — the storage side of
// adaptive replica eviction: the lifecycle manager reclaims budget by
// dropping the coldest adaptive replicas. The replica is unregistered from
// the namenode directory (bumping the block's generation, exactly as any
// other replica-topology change does), the stored bytes are deleted when
// the node is alive (a dead node's disk is unreachable; the ghost bytes
// are never served because the directory no longer lists them), and the
// replica-change hook fires after all locks are released so result-cache
// entries pinned at the dropped replica are purged. Replica files a
// previous Save wrote become unreferenced — the manifest rewrite on the
// next Save is authoritative, and Load reads only manifest-listed
// replicas.
func (c *Cluster) DropReplica(b BlockID, node NodeID) error {
	dn, err := c.DataNode(node)
	if err != nil {
		return err
	}
	if err := c.nn.unregisterReplica(b, node); err != nil {
		return err
	}
	dn.drop(b)
	c.nn.notifyChanged(c.nn.hook(), b)
	return nil
}

// StoreRecoveredReplica is the re-replication path HDFS uses to restore
// the replication factor after a datanode loss.
func (c *Cluster) StoreRecoveredReplica(b BlockID, node NodeID, data []byte, info ReplicaInfo) error {
	return c.StoreAdditionalReplica(b, node, data, info)
}

// ReplaceReplica overwrites an existing replica's stored bytes with a
// reorganized copy (same rows, different sort order, new index) and
// updates the namenode's Dir_rep entry — the adaptive indexer's in-place
// conversion of an unsorted PAX replica into a sorted, indexed one.
func (c *Cluster) ReplaceReplica(b BlockID, node NodeID, data []byte, info ReplicaInfo) error {
	dn, err := c.DataNode(node)
	if err != nil {
		return err
	}
	if err := dn.replace(b, data, checksumChunks(data)); err != nil {
		return err
	}
	info.Size = len(data)
	return c.updateReplicaDirty(b, node, info)
}

// ReadBlockFrom reads and verifies a replica from a specific datanode.
func (c *Cluster) ReadBlockFrom(node NodeID, b BlockID) ([]byte, error) {
	dn, err := c.DataNode(node)
	if err != nil {
		return nil, err
	}
	return dn.Read(b)
}

// ReadBlockAny reads the block from the first alive replica holder,
// preferring the given node (the HDFS client's locality preference).
func (c *Cluster) ReadBlockAny(b BlockID, preferred NodeID) ([]byte, NodeID, error) {
	hosts := c.nn.GetHosts(b)
	if len(hosts) == 0 {
		return nil, 0, fmt.Errorf("hdfs: block %d has no replicas", b)
	}
	ordered := make([]NodeID, 0, len(hosts))
	for _, h := range hosts {
		if h == preferred {
			ordered = append([]NodeID{h}, ordered...)
		} else {
			ordered = append(ordered, h)
		}
	}
	var lastErr error
	for _, h := range ordered {
		data, err := c.ReadBlockFrom(h, b)
		if err == nil {
			return data, h, nil
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("hdfs: all replicas of block %d unreadable: %v", b, lastErr)
}
