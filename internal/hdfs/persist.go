package hdfs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// On-disk persistence for a cluster, mirroring HDFS's storage layout: each
// replica is a data file plus a separate checksum file (one CRC-32 per
// 512-byte chunk), and the namenode's directories are a manifest. This is
// what lets the hailload and hailquery commands operate across process
// runs.

// manifest is the serialized namenode + cluster state.
type manifest struct {
	Nodes     int                  `json:"nodes"`
	NextBlock BlockID              `json:"next_block"`
	Files     map[string][]BlockID `json:"files"`
	Replicas  []manifestReplica    `json:"replicas"`
}

type manifestReplica struct {
	Block BlockID     `json:"block"`
	Node  NodeID      `json:"node"`
	Info  ReplicaInfo `json:"info"`
}

func replicaDataPath(dir string, node NodeID, b BlockID) string {
	return filepath.Join(dir, fmt.Sprintf("dn%d", node), fmt.Sprintf("blk_%d.dat", b))
}

func replicaSumPath(dir string, node NodeID, b BlockID) string {
	return filepath.Join(dir, fmt.Sprintf("dn%d", node), fmt.Sprintf("blk_%d.crc", b))
}

// Save writes the cluster's state to dir: a manifest plus per-datanode
// subdirectories holding each replica's data and checksum files.
func (c *Cluster) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{
		Nodes:     c.NumNodes(),
		NextBlock: c.nextBlock,
		Files:     make(map[string][]BlockID),
	}
	c.nn.mu.RLock()
	for f, bs := range c.nn.files {
		m.Files[f] = append([]BlockID(nil), bs...)
	}
	type rep struct {
		key  repKey
		info ReplicaInfo
	}
	var reps []rep
	for k, info := range c.nn.reps {
		reps = append(reps, rep{k, info})
	}
	c.nn.mu.RUnlock()

	for _, rp := range reps {
		m.Replicas = append(m.Replicas, manifestReplica{
			Block: rp.key.block, Node: rp.key.node, Info: rp.info,
		})
		dn := c.dns[rp.key.node]
		dn.mu.RLock()
		stored, ok := dn.replicas[rp.key.block]
		dn.mu.RUnlock()
		if !ok {
			return fmt.Errorf("hdfs: namenode lists replica (%d,%d) the datanode does not store",
				rp.key.block, rp.key.node)
		}
		if err := os.MkdirAll(filepath.Dir(replicaDataPath(dir, rp.key.node, rp.key.block)), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(replicaDataPath(dir, rp.key.node, rp.key.block), stored.data, 0o644); err != nil {
			return err
		}
		sums := make([]byte, 0, 4*len(stored.sums))
		for _, s := range stored.sums {
			sums = binary.LittleEndian.AppendUint32(sums, s)
		}
		if err := os.WriteFile(replicaSumPath(dir, rp.key.node, rp.key.block), sums, 0o644); err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// Load reconstructs a cluster from a directory written by Save, verifying
// every replica against its checksum file.
func Load(dir string) (*Cluster, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("hdfs: bad manifest: %v", err)
	}
	c, err := NewCluster(m.Nodes)
	if err != nil {
		return nil, err
	}
	c.nextBlock = m.NextBlock
	for f, bs := range m.Files {
		for _, b := range bs {
			c.nn.AddBlock(f, b)
		}
	}
	for _, rp := range m.Replicas {
		if int(rp.Node) < 0 || int(rp.Node) >= m.Nodes {
			return nil, fmt.Errorf("hdfs: manifest replica on unknown node %d", rp.Node)
		}
		data, err := os.ReadFile(replicaDataPath(dir, rp.Node, rp.Block))
		if err != nil {
			return nil, err
		}
		rawSums, err := os.ReadFile(replicaSumPath(dir, rp.Node, rp.Block))
		if err != nil {
			return nil, err
		}
		if len(rawSums)%4 != 0 {
			return nil, fmt.Errorf("hdfs: corrupt checksum file for block %d on node %d", rp.Block, rp.Node)
		}
		sums := make([]uint32, len(rawSums)/4)
		for i := range sums {
			sums[i] = binary.LittleEndian.Uint32(rawSums[i*4:])
		}
		if err := VerifyStored(data, sums); err != nil {
			return nil, fmt.Errorf("hdfs: block %d on node %d: %v", rp.Block, rp.Node, err)
		}
		if err := c.dns[rp.Node].flush(rp.Block, data, sums); err != nil {
			return nil, err
		}
		c.nn.RegisterReplica(rp.Block, rp.Node, rp.Info)
	}
	return c, nil
}
