package hdfs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// On-disk persistence for a cluster, mirroring HDFS's storage layout: each
// replica is a data file plus a separate checksum file (one CRC-32 per
// 512-byte chunk), and the namenode's directories are a manifest. This is
// what lets the hailload and hailquery commands operate across process
// runs.

// manifest is the serialized namenode + cluster state.
type manifest struct {
	Nodes     int                  `json:"nodes"`
	NextBlock BlockID              `json:"next_block"`
	Files     map[string][]BlockID `json:"files"`
	Replicas  []manifestReplica    `json:"replicas"`
}

type manifestReplica struct {
	Block BlockID     `json:"block"`
	Node  NodeID      `json:"node"`
	Info  ReplicaInfo `json:"info"`
}

func replicaDataPath(dir string, node NodeID, b BlockID) string {
	return filepath.Join(dir, fmt.Sprintf("dn%d", node), fmt.Sprintf("blk_%d.dat", b))
}

func replicaSumPath(dir string, node NodeID, b BlockID) string {
	return filepath.Join(dir, fmt.Sprintf("dn%d", node), fmt.Sprintf("blk_%d.crc", b))
}

// SaveReport summarizes what one Save actually wrote: replicas whose data
// and checksum files were (re)written versus replicas skipped because they
// were unchanged since the previous save to the same directory.
type SaveReport struct {
	ReplicasWritten int
	ReplicasSkipped int
}

// Save writes the cluster's state to dir: a manifest plus per-datanode
// subdirectories holding each replica's data and checksum files.
//
// Saves are incremental: the cluster tracks which replicas changed since
// the last Save (new uploads, adaptive conversions, re-replications), and
// a repeat Save to the same directory rewrites only those — an adaptive
// query that converted three blocks persists three replicas, not the whole
// filesystem. The manifest is always rewritten (it is small and holds the
// authoritative Dir_block/Dir_rep state). Saving to a different directory,
// or from a cluster that never saved, writes everything.
func (c *Cluster) Save(dir string) error {
	// Whole saves are serialized: concurrent saves to different
	// directories would race on the dirty-mark consumption and the
	// savedTo transition (the second save could treat itself as
	// incremental against marks the first one consumed). Uploads are not
	// blocked — they synchronize with the save only through the
	// namenode's per-shard locks, which both sides hold briefly.
	c.saveOpMu.Lock()
	defer c.saveOpMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Snapshot the namenode and consume the dirty marks shard by shard.
	// Replica mutations register with a directory shard and mark dirty
	// atomically under that shard's lock (registerReplicaDirty), so the
	// snapshot can never contain a Dir_rep entry whose dirty mark this
	// save missed — the interleaving that would pair new manifest
	// metadata with stale replica files on disk. Uploads racing with the
	// save leave fresh marks, which the next Save consumes; on failure
	// the consumed marks are merged back so no change is ever silently
	// skipped. The snapshot's replicas arrive sorted by (block, node), so
	// the manifest's replica order is deterministic.
	c.saveMu.Lock()
	full := c.savedTo != dir
	c.saveMu.Unlock()
	files, reps, dirty := c.nn.snapshotForSave()
	m := manifest{
		Nodes: c.NumNodes(),
		Files: files,
	}
	success := false
	defer func() {
		if !success {
			c.nn.restoreDirty(dirty)
		}
	}()
	// Snapshot the block counter after the namenode state: any block the
	// snapshot saw was allocated under c.mu before its replicas were
	// registered, so this read is guaranteed past it and a Load can never
	// hand out an ID the manifest already uses.
	c.mu.Lock()
	m.NextBlock = c.nextBlock
	c.mu.Unlock()

	var report SaveReport
	for _, rp := range reps {
		m.Replicas = append(m.Replicas, manifestReplica{
			Block: rp.key.block, Node: rp.key.node, Info: rp.info,
		})
		dataPath := replicaDataPath(dir, rp.key.node, rp.key.block)
		sumPath := replicaSumPath(dir, rp.key.node, rp.key.block)
		if !full && !dirty[rp.key] {
			// Unchanged since the last save of this directory; still guard
			// against files removed behind our back. Both files must be
			// present — Load needs the checksum file too.
			_, dataErr := os.Stat(dataPath)
			_, sumErr := os.Stat(sumPath)
			if dataErr == nil && sumErr == nil {
				report.ReplicasSkipped++
				continue
			}
		}
		dn := c.dns[rp.key.node]
		dn.mu.RLock()
		stored, ok := dn.replicas[rp.key.block]
		dn.mu.RUnlock()
		if !ok {
			return fmt.Errorf("hdfs: namenode lists replica (%d,%d) the datanode does not store",
				rp.key.block, rp.key.node)
		}
		if err := os.MkdirAll(filepath.Dir(dataPath), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dataPath, stored.data, 0o644); err != nil {
			return err
		}
		sums := make([]byte, 0, 4*len(stored.sums))
		for _, s := range stored.sums {
			sums = binary.LittleEndian.AppendUint32(sums, s)
		}
		if err := os.WriteFile(sumPath, sums, 0o644); err != nil {
			return err
		}
		report.ReplicasWritten++
	}

	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		return err
	}
	c.saveMu.Lock()
	c.savedTo = dir
	c.lastSave = report
	c.saveMu.Unlock()
	success = true
	return nil
}

// LastSaveReport returns what the most recent Save wrote and skipped.
func (c *Cluster) LastSaveReport() SaveReport {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	return c.lastSave
}

// Load reconstructs a cluster from a directory written by Save, verifying
// every replica against its checksum file. The namenode gets the default
// shard count.
func Load(dir string) (*Cluster, error) {
	return LoadShards(dir, DefaultShards)
}

// LoadShards is Load with an explicit namenode shard count — the shard
// layout is a per-process runtime choice, not persisted state, so the
// same filesystem directory can be opened at any shard count.
func LoadShards(dir string, shards int) (*Cluster, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("hdfs: bad manifest: %v", err)
	}
	c, err := NewClusterShards(m.Nodes, shards)
	if err != nil {
		return nil, err
	}
	c.nextBlock = m.NextBlock
	for f, bs := range m.Files {
		for _, b := range bs {
			c.nn.AddBlock(f, b)
		}
	}
	for _, rp := range m.Replicas {
		if int(rp.Node) < 0 || int(rp.Node) >= m.Nodes {
			return nil, fmt.Errorf("hdfs: manifest replica on unknown node %d", rp.Node)
		}
		data, err := os.ReadFile(replicaDataPath(dir, rp.Node, rp.Block))
		if err != nil {
			return nil, err
		}
		rawSums, err := os.ReadFile(replicaSumPath(dir, rp.Node, rp.Block))
		if err != nil {
			return nil, err
		}
		if len(rawSums)%4 != 0 {
			return nil, fmt.Errorf("hdfs: corrupt checksum file for block %d on node %d", rp.Block, rp.Node)
		}
		sums := make([]uint32, len(rawSums)/4)
		for i := range sums {
			sums[i] = binary.LittleEndian.Uint32(rawSums[i*4:])
		}
		if err := VerifyStored(data, sums); err != nil {
			return nil, fmt.Errorf("hdfs: block %d on node %d: %v", rp.Block, rp.Node, err)
		}
		if err := c.dns[rp.Node].flush(rp.Block, data, sums); err != nil {
			return nil, err
		}
		c.nn.RegisterReplica(rp.Block, rp.Node, rp.Info)
	}
	// Everything just read from dir is by definition in sync with it: a
	// later Save back to the same directory only writes what changes.
	// (Load registers replicas through the non-dirty path, so no shard
	// holds stale dirty marks.)
	c.saveMu.Lock()
	c.savedTo = dir
	c.saveMu.Unlock()
	return c, nil
}
