package hdfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	// Mix of HDFS-mode and transformed (HAIL-style) blocks.
	var ids []BlockID
	for i := 0; i < 5; i++ {
		id, _, err := c.WriteBlock("/plain", randBlock(20_000+i, int64(i)), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		out := append([]byte{byte(pos + 1)}, block...)
		return out, ReplicaInfo{SortColumn: pos, HasIndex: true, IndexSize: 10}, nil
	}
	hailID, _, err := c.WriteBlock("/hail", randBlock(30_000, 99), 3, transform)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Files and blocks survive.
	for _, f := range []string{"/plain", "/hail"} {
		orig, _ := c.NameNode().FileBlocks(f)
		got, err := loaded.NameNode().FileBlocks(f)
		if err != nil || len(got) != len(orig) {
			t.Fatalf("file %s: %v blocks, err=%v", f, got, err)
		}
	}
	// Replica bytes identical, checksums verified on read.
	for _, id := range ids {
		for _, node := range c.NameNode().GetHosts(id) {
			want, err := c.ReadBlockFrom(node, id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.ReadBlockFrom(node, id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("block %d on node %d differs after reload", id, node)
			}
		}
	}
	// Dir_rep metadata survives (the HAIL essential).
	for pos, node := range c.NameNode().GetHosts(hailID) {
		info, ok := loaded.NameNode().ReplicaInfo(hailID, node)
		if !ok || info.SortColumn != pos || !info.HasIndex {
			t.Errorf("replica info lost for node %d: %+v ok=%v", node, info, ok)
		}
	}
	// getHostsWithIndex works on the loaded cluster.
	if hosts := loaded.NameNode().GetHostsWithIndex(hailID, 1); len(hosts) != 1 {
		t.Errorf("GetHostsWithIndex after reload: %v", hosts)
	}
	// New uploads continue from the saved block counter (no ID reuse).
	newID, _, err := loaded.WriteBlock("/more", randBlock(1000, 7), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if newID <= hailID {
		t.Errorf("block ID %d reused after reload (last was %d)", newID, hailID)
	}
}

func TestLoadDetectsTamperedReplica(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCluster(3)
	id, stats, err := c.WriteBlock("/f", randBlock(50_000, 3), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in one stored data file.
	victim := stats.PipelineNodes[1]
	path := replicaDataPath(dir, victim, id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[1234] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted a tampered replica")
	}
}

func TestLoadMissingOrBadManifest(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load of empty dir succeeded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load of corrupt manifest succeeded")
	}
}

func TestSaveLoadEmptyCluster(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCluster(2)
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", loaded.NumNodes())
	}
}
