package hdfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	// Mix of HDFS-mode and transformed (HAIL-style) blocks.
	var ids []BlockID
	for i := 0; i < 5; i++ {
		id, _, err := c.WriteBlock("/plain", randBlock(20_000+i, int64(i)), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	transform := func(pos int, node NodeID, block []byte) ([]byte, ReplicaInfo, error) {
		out := append([]byte{byte(pos + 1)}, block...)
		return out, ReplicaInfo{SortColumn: pos, HasIndex: true, IndexSize: 10}, nil
	}
	hailID, _, err := c.WriteBlock("/hail", randBlock(30_000, 99), 3, transform)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Files and blocks survive.
	for _, f := range []string{"/plain", "/hail"} {
		orig, _ := c.NameNode().FileBlocks(f)
		got, err := loaded.NameNode().FileBlocks(f)
		if err != nil || len(got) != len(orig) {
			t.Fatalf("file %s: %v blocks, err=%v", f, got, err)
		}
	}
	// Replica bytes identical, checksums verified on read.
	for _, id := range ids {
		for _, node := range c.NameNode().GetHosts(id) {
			want, err := c.ReadBlockFrom(node, id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.ReadBlockFrom(node, id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("block %d on node %d differs after reload", id, node)
			}
		}
	}
	// Dir_rep metadata survives (the HAIL essential).
	for pos, node := range c.NameNode().GetHosts(hailID) {
		info, ok := loaded.NameNode().ReplicaInfo(hailID, node)
		if !ok || info.SortColumn != pos || !info.HasIndex {
			t.Errorf("replica info lost for node %d: %+v ok=%v", node, info, ok)
		}
	}
	// getHostsWithIndex works on the loaded cluster.
	if hosts := loaded.NameNode().GetHostsWithIndex(hailID, 1); len(hosts) != 1 {
		t.Errorf("GetHostsWithIndex after reload: %v", hosts)
	}
	// New uploads continue from the saved block counter (no ID reuse).
	newID, _, err := loaded.WriteBlock("/more", randBlock(1000, 7), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if newID <= hailID {
		t.Errorf("block ID %d reused after reload (last was %d)", newID, hailID)
	}
}

func TestLoadDetectsTamperedReplica(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCluster(3)
	id, stats, err := c.WriteBlock("/f", randBlock(50_000, 3), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in one stored data file.
	victim := stats.PipelineNodes[1]
	path := replicaDataPath(dir, victim, id)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[1234] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted a tampered replica")
	}
}

func TestLoadMissingOrBadManifest(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load of empty dir succeeded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load of corrupt manifest succeeded")
	}
}

func TestSaveLoadEmptyCluster(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCluster(2)
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", loaded.NumNodes())
	}
}

// TestSaveIncremental: a second Save to the same directory rewrites only
// replicas that changed since the first (the ROADMAP's "Save rewrites
// every replica on every save" fix).
func TestSaveIncremental(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	var ids []BlockID
	for i := 0; i < 4; i++ {
		id, _, err := c.WriteBlock("/f", randBlock(8_000+i, int64(i)), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	if rep := c.LastSaveReport(); rep.ReplicasWritten != 12 || rep.ReplicasSkipped != 0 {
		t.Fatalf("first save wrote %+v, want 12 written", rep)
	}

	// Nothing changed: nothing rewritten.
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	if rep := c.LastSaveReport(); rep.ReplicasWritten != 0 || rep.ReplicasSkipped != 12 {
		t.Fatalf("idle save wrote %+v, want 0 written / 12 skipped", rep)
	}

	// One replica reorganized in place: exactly one rewrite.
	node := c.nn.GetHosts(ids[1])[0]
	if err := c.ReplaceReplica(ids[1], node, randBlock(8_001, 77), ReplicaInfo{SortColumn: 2, HasIndex: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	if rep := c.LastSaveReport(); rep.ReplicasWritten != 1 || rep.ReplicasSkipped != 11 {
		t.Fatalf("post-replace save wrote %+v, want 1 written / 11 skipped", rep)
	}

	// A loaded cluster continues incrementally: one adaptive-style extra
	// replica persists alone.
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	free := NodeID(3)
	for _, h := range loaded.nn.GetHosts(ids[0]) {
		if h == free {
			t.Fatalf("test setup: node %d unexpectedly holds block %d", free, ids[0])
		}
	}
	if err := loaded.StoreAdditionalReplica(ids[0], free, randBlock(8_000, 0), ReplicaInfo{SortColumn: 1, HasIndex: true}); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(dir); err != nil {
		t.Fatal(err)
	}
	if rep := loaded.LastSaveReport(); rep.ReplicasWritten != 1 || rep.ReplicasSkipped != 12 {
		t.Fatalf("post-load save wrote %+v, want 1 written / 12 skipped", rep)
	}

	// A deleted file is restored even when clean.
	path := replicaDataPath(dir, loaded.nn.GetHosts(ids[2])[0], ids[2])
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("removed replica file not restored: %v", err)
	}

	// Saving to a fresh directory writes everything again.
	dir2 := t.TempDir()
	if err := loaded.Save(dir2); err != nil {
		t.Fatal(err)
	}
	if rep := loaded.LastSaveReport(); rep.ReplicasWritten != 13 {
		t.Fatalf("save to new dir wrote %+v, want all 13", rep)
	}
	if _, err := Load(dir2); err != nil {
		t.Fatalf("Load of incremental-save dir: %v", err)
	}
}

// TestSaveRestoresMissingChecksumFile: the incremental skip guard must
// notice a deleted .crc file, not just a deleted data file — Load needs
// both.
func TestSaveRestoresMissingChecksumFile(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.WriteBlock("/f", randBlock(6_000, 5), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	sumPath := replicaSumPath(dir, c.nn.GetHosts(id)[0], id)
	if err := os.Remove(sumPath); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sumPath); err != nil {
		t.Fatalf("checksum file not restored: %v", err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("Load after checksum restore: %v", err)
	}
}

// TestSaveConcurrentWithUploads races Save against WriteBlock — the
// dirty map is consumed atomically, so `go test -race` must stay quiet
// and no marks may be lost.
func TestSaveConcurrentWithUploads(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.WriteBlock("/f", randBlock(4_000, 0), 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= 20; i++ {
			if _, _, err := c.WriteBlock("/f", randBlock(4_000+i, int64(i)), 3, nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		if err := c.Save(dir); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// A final save flushes whatever the races left dirty; the directory
	// must load with all 21 blocks intact.
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := loaded.NameNode().FileBlocks("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 21 {
		t.Fatalf("loaded %d blocks, want 21", len(bs))
	}
}
