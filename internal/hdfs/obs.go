package hdfs

import (
	"fmt"

	"repro/internal/obs"
)

// BindObs folds the namenode's per-shard directory-op counters into the
// registry as lazily evaluated gauges: the shard hot path keeps its plain
// atomic increments, and the registry reads them only at snapshot time.
// Safe to call once per registry, before or while traffic flows.
func (nn *NameNode) BindObs(reg *obs.Registry) {
	if nn == nil || reg == nil {
		return
	}
	for i, s := range nn.shards {
		s := s
		reg.SetGaugeFunc(fmt.Sprintf("hdfs.namenode.shard_ops.%03d", i),
			func() int64 { return int64(s.ops.Load()) })
	}
	reg.SetGaugeFunc("hdfs.namenode.dir_ops", func() int64 {
		var total uint64
		for _, s := range nn.shards {
			total += s.ops.Load()
		}
		return int64(total)
	})
	reg.SetGaugeFunc("hdfs.namenode.shards", func() int64 { return int64(len(nn.shards)) })
}
