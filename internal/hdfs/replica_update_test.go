package hdfs

import "testing"

// The adaptive indexer's storage primitives: updating Dir_rep for an
// existing replica, replacing a replica's bytes in place, and storing an
// additional replica outside the upload pipeline.

func TestUpdateReplica(t *testing.T) {
	nn := NewNameNode()
	if err := nn.UpdateReplica(7, 1, ReplicaInfo{SortColumn: 2, HasIndex: true}); err == nil {
		t.Fatal("UpdateReplica invented a replica that was never registered")
	}
	nn.RegisterReplica(7, 1, ReplicaInfo{SortColumn: -1})
	if err := nn.UpdateReplica(7, 1, ReplicaInfo{SortColumn: 2, HasIndex: true, IndexSize: 64}); err != nil {
		t.Fatal(err)
	}
	info, ok := nn.ReplicaInfo(7, 1)
	if !ok || !info.HasIndex || info.SortColumn != 2 || info.IndexSize != 64 {
		t.Errorf("ReplicaInfo after update = %+v", info)
	}
	// Dir_block is untouched: still exactly one host.
	if hosts := nn.GetHosts(7); len(hosts) != 1 || hosts[0] != 1 {
		t.Errorf("GetHosts after update = %v, want [1]", hosts)
	}
	if got := nn.GetHostsWithIndex(7, 2); len(got) != 1 {
		t.Errorf("GetHostsWithIndex(7,2) = %v, want the updated node", got)
	}
}

func TestReplaceReplica(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("original block payload with enough bytes to checksum")
	id, _, err := c.WriteBlock("/f", orig, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	node := c.NameNode().GetHosts(id)[0]

	reorg := []byte("reorganized: same rows in a different order plus index")
	if err := c.ReplaceReplica(id, node, reorg, ReplicaInfo{SortColumn: 1, HasIndex: true, IndexSize: 8}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadBlockFrom(node, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(reorg) {
		t.Errorf("read %q after replace, want the reorganized bytes", got)
	}
	info, _ := c.NameNode().ReplicaInfo(id, node)
	if !info.HasIndex || info.SortColumn != 1 || info.Size != len(reorg) {
		t.Errorf("ReplicaInfo after replace = %+v", info)
	}
	if c.NameNode().ReplicaCount(id) != 2 {
		t.Errorf("replica count changed by in-place replace")
	}

	// Replacing a replica a node does not hold must fail.
	var free NodeID = -1
	for n := NodeID(0); int(n) < c.NumNodes(); n++ {
		dn, _ := c.DataNode(n)
		if !dn.HasReplica(id) {
			free = n
			break
		}
	}
	if free == -1 {
		t.Fatal("no free node in 3-node cluster with replication 2")
	}
	if err := c.ReplaceReplica(id, free, reorg, ReplicaInfo{}); err == nil {
		t.Error("ReplaceReplica succeeded on a node without the replica")
	}
}

func TestStoreAdditionalReplica(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("a block that will gain an extra indexed replica")
	id, _, err := c.WriteBlock("/f", data, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var free NodeID = -1
	for n := NodeID(0); int(n) < c.NumNodes(); n++ {
		dn, _ := c.DataNode(n)
		if !dn.HasReplica(id) {
			free = n
			break
		}
	}
	if err := c.StoreAdditionalReplica(id, free, data, ReplicaInfo{SortColumn: 0, HasIndex: true}); err != nil {
		t.Fatal(err)
	}
	if c.NameNode().ReplicaCount(id) != 3 {
		t.Errorf("replica count = %d, want 3", c.NameNode().ReplicaCount(id))
	}
	if got := c.NameNode().GetHostsWithIndex(id, 0); len(got) != 1 || got[0] != free {
		t.Errorf("GetHostsWithIndex = %v, want [%d]", got, free)
	}
	// Duplicate store on the same node must fail.
	if err := c.StoreAdditionalReplica(id, free, data, ReplicaInfo{}); err == nil {
		t.Error("duplicate StoreAdditionalReplica succeeded")
	}
}
