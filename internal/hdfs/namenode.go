package hdfs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/hdfs/shardmap"
)

// NodeID identifies a datanode.
type NodeID int

// BlockID identifies a logical HDFS block.
type BlockID int64

// ReplicaInfo is the paper's HAILBlockReplicaInfo (§3.3): what the namenode
// knows about one physical replica beyond its existence — the sort order,
// the index, and the replica's (per-replica!) size. Classic HDFS replicas
// have SortColumn == -1 and no index.
type ReplicaInfo struct {
	Size       int
	SortColumn int // clustering/indexed attribute, -1 for unsorted replicas
	HasIndex   bool
	IndexSize  int
}

// DefaultShards is the namenode directory's default shard count. Eight
// shards spread the metadata path's lock traffic without measurable
// overhead at one; `-nn-shards` overrides it in the CLIs.
const DefaultShards = 8

// NameNode keeps the paper's two directories (§3.3):
//
//	Dir_block: blockID            → set of datanodes
//	Dir_rep:   (blockID,datanode) → HAILBlockReplicaInfo
//
// plus the file → blocks mapping every filesystem needs. Classic HDFS has
// only Dir_block; Dir_rep is HAIL's extension, and is what lets the
// scheduler send map tasks to the replica with the right index.
//
// The directories are partitioned into independently locked shards by a
// consistent-hash ring over directory keys (file names route by name,
// block-keyed state by "block/<id>"), so concurrent map tasks, adaptive
// conversions and cache generation reads contend per shard instead of on
// one global lock. The NameNode type itself is a thin façade: every
// public method keeps the exact observable behaviour of the historical
// single-map implementation (the oracle-equivalence property test in
// oracle_test.go holds the two to identical observations), and
// cross-shard aggregations return deterministic, sorted results.
type NameNode struct {
	ring   *shardmap.Ring
	shards []*dirShard

	// onChange, if set, is called (outside every shard lock) with each
	// block whose generation was bumped — the result cache's active
	// invalidation hook. It fires exactly once per affected block per
	// mutating call; multi-block mutations (InvalidateNode) fire it in
	// ascending block order.
	hookMu   sync.RWMutex
	onChange func(BlockID)
}

// dirShard is one partition of the namenode directory. Each shard owns
// the file table, Dir_block, Dir_rep, the replica generations and the
// incremental-save dirty marks for the keys the ring routes to it, under
// its own lock.
type dirShard struct {
	mu     sync.RWMutex
	ops    atomic.Uint64 // directory operations served (lock acquisitions)
	files  map[string][]BlockID
	blocks map[BlockID][]NodeID // Dir_block; insertion order = pipeline order
	reps   map[repKey]ReplicaInfo
	// gens counts replica-topology changes per block: any event that can
	// alter which replica a reader would open — a new replica, an in-place
	// reorganization, a node loss or return — bumps the block's
	// generation. Block-level result-cache entries embed the generation
	// they were computed at, so stale results become unreachable instead
	// of being served.
	gens map[BlockID]uint64
	// dirty marks replicas whose stored bytes changed since the last
	// Save. It lives with the shard so registration and dirty-marking are
	// one atomic step under the shard lock (see Cluster.Save).
	dirty map[repKey]bool
}

type repKey struct {
	block BlockID
	node  NodeID
}

// repEntry is a (key, info) pair from Dir_rep, used by save snapshots.
type repEntry struct {
	key  repKey
	info ReplicaInfo
}

// lock/rlock count the acquisition so per-shard contention is measurable
// (hailbench -json reports the spread).
func (s *dirShard) lock() *dirShard {
	s.ops.Add(1)
	s.mu.Lock()
	return s
}

func (s *dirShard) rlock() *dirShard {
	s.ops.Add(1)
	s.mu.RLock()
	return s
}

// NewNameNode returns an empty namenode with DefaultShards directory
// shards.
func NewNameNode() *NameNode { return NewNameNodeShards(DefaultShards) }

// NewNameNodeShards returns an empty namenode whose directory is
// partitioned into the given number of shards. Values below 1 select
// DefaultShards — the single "0 means default" convention every layer
// (CLI flags, the experiment Runner) relies on; pass 1 explicitly for
// the historical unsharded layout.
func NewNameNodeShards(shards int) *NameNode {
	if shards < 1 {
		shards = DefaultShards
	}
	ring := shardmap.New(shards)
	nn := &NameNode{ring: ring}
	for i := 0; i < ring.NumShards(); i++ {
		nn.shards = append(nn.shards, &dirShard{
			files:  make(map[string][]BlockID),
			blocks: make(map[BlockID][]NodeID),
			reps:   make(map[repKey]ReplicaInfo),
			gens:   make(map[BlockID]uint64),
		})
	}
	return nn
}

// blockShardKey is the ring key for block-scoped state. The format is
// chosen with the ring's hash so that even the first handful of block IDs
// (small files) spread across shards — see shardmap's small-population
// test.
func blockShardKey(b BlockID) string {
	return "block/" + strconv.FormatInt(int64(b), 10)
}

func (nn *NameNode) blockShard(b BlockID) *dirShard {
	return nn.shards[nn.ring.Shard(blockShardKey(b))]
}

func (nn *NameNode) fileShard(file string) *dirShard {
	return nn.shards[nn.ring.Shard(file)]
}

// NumShards returns the directory's shard count.
func (nn *NameNode) NumShards() int { return len(nn.shards) }

// ShardOps returns a snapshot of per-shard directory-operation counts
// (every lock acquisition, read or write). hailbench reports them so the
// lock-spread across shards is measured, not asserted.
func (nn *NameNode) ShardOps() []uint64 {
	out := make([]uint64, len(nn.shards))
	for i, s := range nn.shards {
		out[i] = s.ops.Load()
	}
	return out
}

// DirShardStats summarizes how directory operations spread over the
// namenode's shards — the measured counterpart to the sharding's "no
// global lock" claim. hailquery -stats prints it and hailbench embeds it
// in -json reports.
type DirShardStats struct {
	// Shards is the directory shard count.
	Shards int `json:"shards"`
	// Ops is the per-shard directory-operation count (lock acquisitions).
	Ops []uint64 `json:"ops"`
	// TotalOps is the sum over Ops.
	TotalOps uint64 `json:"total_ops"`
	// MaxShare is the busiest shard's fraction of TotalOps (1.0 for a
	// single shard).
	MaxShare float64 `json:"max_share"`
}

// CombineShardStats aggregates the shard counters of one or more
// namenodes (an experiment run may spread its traffic over several
// clusters) into one spread summary.
func CombineShardStats(nns ...*NameNode) DirShardStats {
	var st DirShardStats
	for _, nn := range nns {
		ops := nn.ShardOps()
		if st.Shards < nn.NumShards() {
			st.Shards = nn.NumShards()
		}
		if len(st.Ops) < len(ops) {
			st.Ops = append(st.Ops, make([]uint64, len(ops)-len(st.Ops))...)
		}
		for i, n := range ops {
			st.Ops[i] += n
			st.TotalOps += n
		}
	}
	var max uint64
	for _, n := range st.Ops {
		if n > max {
			max = n
		}
	}
	if st.TotalOps > 0 {
		st.MaxShare = float64(max) / float64(st.TotalOps)
	}
	return st
}

// ShardStats returns this namenode's own spread summary.
func (nn *NameNode) ShardStats() DirShardStats { return CombineShardStats(nn) }

// String renders the spread as a one-line summary.
func (st DirShardStats) String() string {
	return fmt.Sprintf("namenode: %d shard(s), %d directory ops, busiest %.0f%%",
		st.Shards, st.TotalOps, 100*st.MaxShare)
}

// SetReplicaChangeHook installs fn as the replica-change observer: it is
// called with every block whose generation is bumped, after all namenode
// locks are released. The block-level result cache registers its
// invalidation here. A nil fn removes the hook.
func (nn *NameNode) SetReplicaChangeHook(fn func(BlockID)) {
	nn.hookMu.Lock()
	defer nn.hookMu.Unlock()
	nn.onChange = fn
}

// hook returns the current replica-change observer.
func (nn *NameNode) hook() func(BlockID) {
	nn.hookMu.RLock()
	defer nn.hookMu.RUnlock()
	return nn.onChange
}

// Generation returns the block's replica-topology generation. It starts at
// zero and is bumped by RegisterReplica, UpdateReplica and InvalidateNode.
func (nn *NameNode) Generation(b BlockID) uint64 {
	s := nn.blockShard(b).rlock()
	defer s.mu.RUnlock()
	return s.gens[b]
}

// notifyChanged fires the replica-change hook for the given blocks. Must
// be called with NO shard lock held.
func (nn *NameNode) notifyChanged(fn func(BlockID), blocks ...BlockID) {
	if fn == nil {
		return
	}
	for _, b := range blocks {
		fn(b)
	}
}

// InvalidateNode bumps the generation of every block with a replica on the
// given node. The cluster calls it when a datanode dies or returns: either
// event changes which replica a reader would open (replicas differ in sort
// order), so cached per-block results keyed at the old generation must not
// be served. The hook fires exactly once per affected block, in ascending
// block order — deterministic regardless of how blocks are spread over
// shards.
func (nn *NameNode) InvalidateNode(node NodeID) {
	var changed []BlockID
	for _, s := range nn.shards {
		s.lock()
		for b, nodes := range s.blocks {
			for _, n := range nodes {
				if n == node {
					s.gens[b]++
					changed = append(changed, b)
					break
				}
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	nn.notifyChanged(nn.hook(), changed...)
}

// AddBlock appends a block to a file's block list.
func (nn *NameNode) AddBlock(file string, b BlockID) {
	s := nn.fileShard(file).lock()
	defer s.mu.Unlock()
	s.files[file] = append(s.files[file], b)
}

// FileBlocks returns the blocks of a file in order.
func (nn *NameNode) FileBlocks(file string) ([]BlockID, error) {
	s := nn.fileShard(file).rlock()
	defer s.mu.RUnlock()
	bs, ok := s.files[file]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", file)
	}
	return append([]BlockID(nil), bs...), nil
}

// Files lists all registered files, sorted — the cross-shard merge must
// not leak shard (or map) iteration order.
func (nn *NameNode) Files() []string {
	var out []string
	for _, s := range nn.shards {
		s.rlock()
		for f := range s.files {
			out = append(out, f)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// RegisterReplica records that node stores a replica of block with the
// given metadata. Datanodes call this at the end of the upload pipeline
// (§3.2 steps 11 and 14).
func (nn *NameNode) RegisterReplica(b BlockID, node NodeID, info ReplicaInfo) {
	nn.registerReplica(b, node, info, false)
	nn.notifyChanged(nn.hook(), b)
}

// registerReplica performs the registration under the block's shard lock,
// optionally marking the replica dirty for the next incremental Save in
// the same atomic step — the cluster's register-and-mark-dirty path needs
// the two inseparable so a save snapshot can never observe the
// registration without its dirty mark. The caller fires the change hook
// once it holds no locks.
func (nn *NameNode) registerReplica(b BlockID, node NodeID, info ReplicaInfo, markDirty bool) {
	s := nn.blockShard(b).lock()
	defer s.mu.Unlock()
	key := repKey{b, node}
	if _, dup := s.reps[key]; !dup {
		s.blocks[b] = append(s.blocks[b], node)
	}
	s.reps[key] = info
	s.gens[b]++
	if markDirty {
		s.markDirtyLocked(key)
	}
}

// markDirtyLocked records a replica's bytes as changed since the last
// Save. Caller holds the shard lock.
func (s *dirShard) markDirtyLocked(key repKey) {
	if s.dirty == nil {
		s.dirty = make(map[repKey]bool)
	}
	s.dirty[key] = true
}

// GetHosts is the BlockLocation.getHosts lookup: all datanodes holding a
// replica of the block, in registration order.
func (nn *NameNode) GetHosts(b BlockID) []NodeID {
	s := nn.blockShard(b).rlock()
	defer s.mu.RUnlock()
	return append([]NodeID(nil), s.blocks[b]...)
}

// GetHostsWithIndex is HAIL's new lookup (§4.3): the datanodes whose
// replica of the block carries a clustered index on the given attribute.
func (nn *NameNode) GetHostsWithIndex(b BlockID, column int) []NodeID {
	s := nn.blockShard(b).rlock()
	defer s.mu.RUnlock()
	var out []NodeID
	for _, node := range s.blocks[b] {
		info := s.reps[repKey{b, node}]
		if info.HasIndex && info.SortColumn == column {
			out = append(out, node)
		}
	}
	return out
}

// UpdateReplica replaces Dir_rep's entry for an existing replica — the
// namenode side of adaptive index creation: when a datanode reorganizes a
// replica (sorts it and adds a clustered index) after the initial upload,
// it reports the new sort order and index metadata here. Unlike
// RegisterReplica it refuses to invent a replica that was never uploaded.
func (nn *NameNode) UpdateReplica(b BlockID, node NodeID, info ReplicaInfo) error {
	if err := nn.updateReplica(b, node, info, false); err != nil {
		return err
	}
	nn.notifyChanged(nn.hook(), b)
	return nil
}

// updateReplica is registerReplica's counterpart for Dir_rep updates.
func (nn *NameNode) updateReplica(b BlockID, node NodeID, info ReplicaInfo, markDirty bool) error {
	s := nn.blockShard(b).lock()
	defer s.mu.Unlock()
	key := repKey{b, node}
	if _, ok := s.reps[key]; !ok {
		return fmt.Errorf("hdfs: node %d holds no replica of block %d", node, b)
	}
	s.reps[key] = info
	s.gens[b]++
	if markDirty {
		s.markDirtyLocked(key)
	}
	return nil
}

// UnregisterReplica removes (block, node) from Dir_block and Dir_rep — the
// namenode side of adaptive replica eviction: when the lifecycle manager
// drops a cold adaptive replica to reclaim budget, the directory must stop
// routing readers to it. The block's generation is bumped (the replica
// topology changed exactly as it does on a register or a node loss) and
// the change hook fires, so cached results pinned at the dropped replica
// are purged. Refuses to unregister a replica that was never registered.
func (nn *NameNode) UnregisterReplica(b BlockID, node NodeID) error {
	if err := nn.unregisterReplica(b, node); err != nil {
		return err
	}
	nn.notifyChanged(nn.hook(), b)
	return nil
}

// unregisterReplica performs the removal under the block's shard lock; the
// caller fires the change hook once it holds no locks. Any pending dirty
// mark is consumed too — a dropped replica must not make the next Save
// fail looking for bytes the datanode no longer stores.
func (nn *NameNode) unregisterReplica(b BlockID, node NodeID) error {
	s := nn.blockShard(b).lock()
	defer s.mu.Unlock()
	key := repKey{b, node}
	if _, ok := s.reps[key]; !ok {
		return fmt.Errorf("hdfs: node %d holds no replica of block %d", node, b)
	}
	delete(s.reps, key)
	hosts := s.blocks[b]
	for i, n := range hosts {
		if n == node {
			s.blocks[b] = append(hosts[:i], hosts[i+1:]...)
			break
		}
	}
	if len(s.blocks[b]) == 0 {
		delete(s.blocks, b)
	}
	delete(s.dirty, key)
	s.gens[b]++
	return nil
}

// ReplicaInfo returns Dir_rep's entry for (block, node).
func (nn *NameNode) ReplicaInfo(b BlockID, node NodeID) (ReplicaInfo, bool) {
	s := nn.blockShard(b).rlock()
	defer s.mu.RUnlock()
	info, ok := s.reps[repKey{b, node}]
	return info, ok
}

// ReplicaCount returns the number of registered replicas of a block.
func (nn *NameNode) ReplicaCount(b BlockID) int {
	s := nn.blockShard(b).rlock()
	defer s.mu.RUnlock()
	return len(s.blocks[b])
}

// snapshotForSave copies the file table and Dir_rep and consumes the
// dirty-replica marks, shard by shard. Within a shard the replica copy
// and the dirty consumption are one atomic step under the shard lock, so
// the snapshot can never contain a Dir_rep entry whose dirty mark it
// missed; a registration racing on an already-snapshotted shard keeps
// its mark for the next save.
//
// The two tables are snapshotted in two passes, file tables strictly
// BEFORE replica tables. WriteBlock registers a block's replicas before
// it calls AddBlock, so a block observed under a file in pass one
// already had its replicas registered, and pass two — which starts
// after pass one finishes — cannot miss them: a saved manifest never
// lists a file block without its replicas (which Load would turn into a
// permanently unreadable file). The opposite skew — replicas of a block
// whose AddBlock hasn't landed yet — is benign and was possible under
// the historical single-lock snapshot too: the replicas are persisted,
// and the file entry arrives with the next save.
//
// Replicas are returned sorted by (block, node) so everything
// downstream — the manifest's replica order above all — is
// deterministic instead of leaking shard or map iteration order.
func (nn *NameNode) snapshotForSave() (files map[string][]BlockID, reps []repEntry, dirty map[repKey]bool) {
	files = make(map[string][]BlockID)
	dirty = make(map[repKey]bool)
	for _, s := range nn.shards {
		s.rlock()
		for f, bs := range s.files {
			files[f] = append([]BlockID(nil), bs...)
		}
		s.mu.RUnlock()
	}
	for _, s := range nn.shards {
		s.lock()
		for k, info := range s.reps {
			reps = append(reps, repEntry{k, info})
		}
		for k := range s.dirty {
			dirty[k] = true
		}
		s.dirty = nil
		s.mu.Unlock()
	}
	sort.Slice(reps, func(i, j int) bool {
		if reps[i].key.block != reps[j].key.block {
			return reps[i].key.block < reps[j].key.block
		}
		return reps[i].key.node < reps[j].key.node
	})
	return files, reps, dirty
}

// restoreDirty merges consumed dirty marks back after a failed save, so
// no replica change is ever silently skipped by the next one.
func (nn *NameNode) restoreDirty(dirty map[repKey]bool) {
	for k := range dirty {
		s := nn.blockShard(k.block).lock()
		s.markDirtyLocked(k)
		s.mu.Unlock()
	}
}
