package hdfs

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a datanode.
type NodeID int

// BlockID identifies a logical HDFS block.
type BlockID int64

// ReplicaInfo is the paper's HAILBlockReplicaInfo (§3.3): what the namenode
// knows about one physical replica beyond its existence — the sort order,
// the index, and the replica's (per-replica!) size. Classic HDFS replicas
// have SortColumn == -1 and no index.
type ReplicaInfo struct {
	Size       int
	SortColumn int // clustering/indexed attribute, -1 for unsorted replicas
	HasIndex   bool
	IndexSize  int
}

// NameNode keeps the paper's two directories (§3.3):
//
//	Dir_block: blockID            → set of datanodes
//	Dir_rep:   (blockID,datanode) → HAILBlockReplicaInfo
//
// plus the file → blocks mapping every filesystem needs. Classic HDFS has
// only Dir_block; Dir_rep is HAIL's extension, and is what lets the
// scheduler send map tasks to the replica with the right index.
type NameNode struct {
	mu     sync.RWMutex
	files  map[string][]BlockID
	blocks map[BlockID][]NodeID // Dir_block; insertion order = pipeline order
	reps   map[repKey]ReplicaInfo
	// gens counts replica-topology changes per block: any event that can
	// alter which replica a reader would open — a new replica, an in-place
	// reorganization, a node loss or return — bumps the block's
	// generation. Block-level result-cache entries embed the generation
	// they were computed at, so stale results become unreachable instead
	// of being served.
	gens map[BlockID]uint64
	// onChange, if set, is called (outside the namenode lock) with each
	// block whose generation was bumped — the result cache's active
	// invalidation hook.
	onChange func(BlockID)
}

type repKey struct {
	block BlockID
	node  NodeID
}

// NewNameNode returns an empty namenode.
func NewNameNode() *NameNode {
	return &NameNode{
		files:  make(map[string][]BlockID),
		blocks: make(map[BlockID][]NodeID),
		reps:   make(map[repKey]ReplicaInfo),
		gens:   make(map[BlockID]uint64),
	}
}

// SetReplicaChangeHook installs fn as the replica-change observer: it is
// called with every block whose generation is bumped, after the namenode
// lock is released. The block-level result cache registers its
// invalidation here. A nil fn removes the hook.
func (nn *NameNode) SetReplicaChangeHook(fn func(BlockID)) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.onChange = fn
}

// Generation returns the block's replica-topology generation. It starts at
// zero and is bumped by RegisterReplica, UpdateReplica and InvalidateNode.
func (nn *NameNode) Generation(b BlockID) uint64 {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return nn.gens[b]
}

// notifyChanged fires the replica-change hook for the given blocks. Must
// be called WITHOUT nn.mu held.
func (nn *NameNode) notifyChanged(fn func(BlockID), blocks ...BlockID) {
	if fn == nil {
		return
	}
	for _, b := range blocks {
		fn(b)
	}
}

// InvalidateNode bumps the generation of every block with a replica on the
// given node. The cluster calls it when a datanode dies or returns: either
// event changes which replica a reader would open (replicas differ in sort
// order), so cached per-block results keyed at the old generation must not
// be served.
func (nn *NameNode) InvalidateNode(node NodeID) {
	nn.mu.Lock()
	var changed []BlockID
	for b, nodes := range nn.blocks {
		for _, n := range nodes {
			if n == node {
				nn.gens[b]++
				changed = append(changed, b)
				break
			}
		}
	}
	fn := nn.onChange
	nn.mu.Unlock()
	nn.notifyChanged(fn, changed...)
}

// AddBlock appends a block to a file's block list.
func (nn *NameNode) AddBlock(file string, b BlockID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.files[file] = append(nn.files[file], b)
}

// FileBlocks returns the blocks of a file in order.
func (nn *NameNode) FileBlocks(file string) ([]BlockID, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	bs, ok := nn.files[file]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", file)
	}
	return append([]BlockID(nil), bs...), nil
}

// Files lists all registered files, sorted.
func (nn *NameNode) Files() []string {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	out := make([]string, 0, len(nn.files))
	for f := range nn.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// RegisterReplica records that node stores a replica of block with the
// given metadata. Datanodes call this at the end of the upload pipeline
// (§3.2 steps 11 and 14).
func (nn *NameNode) RegisterReplica(b BlockID, node NodeID, info ReplicaInfo) {
	fn := nn.registerReplicaNoNotify(b, node, info)
	nn.notifyChanged(fn, b)
}

// registerReplicaNoNotify performs the registration and returns the
// change hook for the caller to fire once it holds no locks — the
// cluster's register-and-mark-dirty path calls this under saveMu, and
// the hook must run outside every lock.
func (nn *NameNode) registerReplicaNoNotify(b BlockID, node NodeID, info ReplicaInfo) func(BlockID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	key := repKey{b, node}
	if _, dup := nn.reps[key]; !dup {
		nn.blocks[b] = append(nn.blocks[b], node)
	}
	nn.reps[key] = info
	nn.gens[b]++
	return nn.onChange
}

// GetHosts is the BlockLocation.getHosts lookup: all datanodes holding a
// replica of the block, in registration order.
func (nn *NameNode) GetHosts(b BlockID) []NodeID {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return append([]NodeID(nil), nn.blocks[b]...)
}

// GetHostsWithIndex is HAIL's new lookup (§4.3): the datanodes whose
// replica of the block carries a clustered index on the given attribute.
func (nn *NameNode) GetHostsWithIndex(b BlockID, column int) []NodeID {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	var out []NodeID
	for _, node := range nn.blocks[b] {
		info := nn.reps[repKey{b, node}]
		if info.HasIndex && info.SortColumn == column {
			out = append(out, node)
		}
	}
	return out
}

// UpdateReplica replaces Dir_rep's entry for an existing replica — the
// namenode side of adaptive index creation: when a datanode reorganizes a
// replica (sorts it and adds a clustered index) after the initial upload,
// it reports the new sort order and index metadata here. Unlike
// RegisterReplica it refuses to invent a replica that was never uploaded.
func (nn *NameNode) UpdateReplica(b BlockID, node NodeID, info ReplicaInfo) error {
	fn, err := nn.updateReplicaNoNotify(b, node, info)
	if err != nil {
		return err
	}
	nn.notifyChanged(fn, b)
	return nil
}

// updateReplicaNoNotify is registerReplicaNoNotify's counterpart for
// Dir_rep updates.
func (nn *NameNode) updateReplicaNoNotify(b BlockID, node NodeID, info ReplicaInfo) (func(BlockID), error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	key := repKey{b, node}
	if _, ok := nn.reps[key]; !ok {
		return nil, fmt.Errorf("hdfs: node %d holds no replica of block %d", node, b)
	}
	nn.reps[key] = info
	nn.gens[b]++
	return nn.onChange, nil
}

// ReplicaInfo returns Dir_rep's entry for (block, node).
func (nn *NameNode) ReplicaInfo(b BlockID, node NodeID) (ReplicaInfo, bool) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	info, ok := nn.reps[repKey{b, node}]
	return info, ok
}

// ReplicaCount returns the number of registered replicas of a block.
func (nn *NameNode) ReplicaCount(b BlockID) int {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return len(nn.blocks[b])
}
