package hdfs

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a datanode.
type NodeID int

// BlockID identifies a logical HDFS block.
type BlockID int64

// ReplicaInfo is the paper's HAILBlockReplicaInfo (§3.3): what the namenode
// knows about one physical replica beyond its existence — the sort order,
// the index, and the replica's (per-replica!) size. Classic HDFS replicas
// have SortColumn == -1 and no index.
type ReplicaInfo struct {
	Size       int
	SortColumn int // clustering/indexed attribute, -1 for unsorted replicas
	HasIndex   bool
	IndexSize  int
}

// NameNode keeps the paper's two directories (§3.3):
//
//	Dir_block: blockID            → set of datanodes
//	Dir_rep:   (blockID,datanode) → HAILBlockReplicaInfo
//
// plus the file → blocks mapping every filesystem needs. Classic HDFS has
// only Dir_block; Dir_rep is HAIL's extension, and is what lets the
// scheduler send map tasks to the replica with the right index.
type NameNode struct {
	mu     sync.RWMutex
	files  map[string][]BlockID
	blocks map[BlockID][]NodeID // Dir_block; insertion order = pipeline order
	reps   map[repKey]ReplicaInfo
}

type repKey struct {
	block BlockID
	node  NodeID
}

// NewNameNode returns an empty namenode.
func NewNameNode() *NameNode {
	return &NameNode{
		files:  make(map[string][]BlockID),
		blocks: make(map[BlockID][]NodeID),
		reps:   make(map[repKey]ReplicaInfo),
	}
}

// AddBlock appends a block to a file's block list.
func (nn *NameNode) AddBlock(file string, b BlockID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.files[file] = append(nn.files[file], b)
}

// FileBlocks returns the blocks of a file in order.
func (nn *NameNode) FileBlocks(file string) ([]BlockID, error) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	bs, ok := nn.files[file]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", file)
	}
	return append([]BlockID(nil), bs...), nil
}

// Files lists all registered files, sorted.
func (nn *NameNode) Files() []string {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	out := make([]string, 0, len(nn.files))
	for f := range nn.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// RegisterReplica records that node stores a replica of block with the
// given metadata. Datanodes call this at the end of the upload pipeline
// (§3.2 steps 11 and 14).
func (nn *NameNode) RegisterReplica(b BlockID, node NodeID, info ReplicaInfo) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	key := repKey{b, node}
	if _, dup := nn.reps[key]; !dup {
		nn.blocks[b] = append(nn.blocks[b], node)
	}
	nn.reps[key] = info
}

// GetHosts is the BlockLocation.getHosts lookup: all datanodes holding a
// replica of the block, in registration order.
func (nn *NameNode) GetHosts(b BlockID) []NodeID {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return append([]NodeID(nil), nn.blocks[b]...)
}

// GetHostsWithIndex is HAIL's new lookup (§4.3): the datanodes whose
// replica of the block carries a clustered index on the given attribute.
func (nn *NameNode) GetHostsWithIndex(b BlockID, column int) []NodeID {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	var out []NodeID
	for _, node := range nn.blocks[b] {
		info := nn.reps[repKey{b, node}]
		if info.HasIndex && info.SortColumn == column {
			out = append(out, node)
		}
	}
	return out
}

// UpdateReplica replaces Dir_rep's entry for an existing replica — the
// namenode side of adaptive index creation: when a datanode reorganizes a
// replica (sorts it and adds a clustered index) after the initial upload,
// it reports the new sort order and index metadata here. Unlike
// RegisterReplica it refuses to invent a replica that was never uploaded.
func (nn *NameNode) UpdateReplica(b BlockID, node NodeID, info ReplicaInfo) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	key := repKey{b, node}
	if _, ok := nn.reps[key]; !ok {
		return fmt.Errorf("hdfs: node %d holds no replica of block %d", node, b)
	}
	nn.reps[key] = info
	return nil
}

// ReplicaInfo returns Dir_rep's entry for (block, node).
func (nn *NameNode) ReplicaInfo(b BlockID, node NodeID) (ReplicaInfo, bool) {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	info, ok := nn.reps[repKey{b, node}]
	return info, ok
}

// ReplicaCount returns the number of registered replicas of a block.
func (nn *NameNode) ReplicaCount(b BlockID) int {
	nn.mu.RLock()
	defer nn.mu.RUnlock()
	return len(nn.blocks[b])
}
