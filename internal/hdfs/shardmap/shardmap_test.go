package shardmap

import (
	"fmt"
	"testing"
)

// workloadKeys builds the key population the namenode actually routes:
// block keys for a few thousand blocks plus file paths shaped like the
// benchmark workloads' names.
func workloadKeys(blocks int) []string {
	keys := make([]string, 0, blocks+64)
	for b := 0; b < blocks; b++ {
		keys = append(keys, fmt.Sprintf("block/%d", b))
	}
	for f := 0; f < 32; f++ {
		keys = append(keys, fmt.Sprintf("/UserVisits-%d", f), fmt.Sprintf("/Synthetic/part-%05d", f))
	}
	return keys
}

// TestDeterministic: the same key maps to the same shard on independently
// constructed rings — required for a later multi-process split, where
// every process builds its own ring.
func TestDeterministic(t *testing.T) {
	a, b := New(8), New(8)
	for _, k := range workloadKeys(1000) {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("key %q: ring A says %d, ring B says %d", k, a.Shard(k), b.Shard(k))
		}
	}
}

// TestShardRange: every key lands in [0, shards).
func TestShardRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 17} {
		r := New(shards)
		for _, k := range workloadKeys(500) {
			if s := r.Shard(k); s < 0 || s >= shards {
				t.Fatalf("shards=%d key %q → %d out of range", shards, k, s)
			}
		}
	}
}

// TestClampsBadArguments: non-positive shard/vnode counts degrade to a
// working single-shard ring rather than panicking.
func TestClampsBadArguments(t *testing.T) {
	r := NewVirtual(0, 0)
	if r.NumShards() != 1 || r.VirtualNodes() != 1 {
		t.Fatalf("clamped ring = %d shards × %d vnodes, want 1×1", r.NumShards(), r.VirtualNodes())
	}
	if s := r.Shard("anything"); s != 0 {
		t.Fatalf("single-shard ring routed to %d", s)
	}
}

// TestDistributionBalance: across the synthetic workload's key shapes no
// shard's share strays far from fair. The bound is loose enough to be
// robust (consistent hashing is not perfectly uniform) but tight enough
// to catch a broken point scheme or hash.
func TestDistributionBalance(t *testing.T) {
	keys := workloadKeys(20000)
	for _, shards := range []int{4, 8, 16} {
		r := New(shards)
		counts := make([]int, shards)
		for _, k := range keys {
			counts[r.Shard(k)]++
		}
		fair := float64(len(keys)) / float64(shards)
		for s, c := range counts {
			share := float64(c) / fair
			if share > 1.35 || share < 0.65 {
				t.Errorf("shards=%d: shard %d holds %d keys (%.2f× fair %.0f); counts=%v",
					shards, s, c, share, fair, counts)
			}
		}
	}
}

// TestSmallBlockPopulationSpread guards the hailbench acceptance bound
// directly: the quick fixtures have only ~10 blocks, and per-block
// directory operations are uniform across them, so no shard may own more
// than 40% of the first 10 block keys at 8 shards (4/10 blocks on one
// shard would breach the bound even before per-file and all-shard
// operations flatten it).
func TestSmallBlockPopulationSpread(t *testing.T) {
	r := New(8)
	counts := make([]int, 8)
	for b := 0; b < 10; b++ {
		counts[r.Shard(fmt.Sprintf("block/%d", b))]++
	}
	for s, c := range counts {
		if c > 3 {
			t.Errorf("shard %d owns %d of the 10 quick-fixture blocks (>3): counts=%v", s, c, counts)
		}
	}
}

// TestBoundedMovementOnGrow is the consistent-hashing contract: growing
// N→N+1 moves only keys that now belong to the NEW shard, and the moved
// fraction stays near the expected 1/(N+1).
func TestBoundedMovementOnGrow(t *testing.T) {
	keys := workloadKeys(20000)
	for _, n := range []int{2, 4, 8, 16} {
		old := New(n)
		grown := old.Resize(n + 1)
		moved := 0
		for _, k := range keys {
			before, after := old.Shard(k), grown.Shard(k)
			if before == after {
				continue
			}
			moved++
			if after != n {
				t.Fatalf("n=%d: key %q moved %d→%d, but only the new shard %d may receive keys",
					n, k, before, after, n)
			}
		}
		frac := float64(moved) / float64(len(keys))
		expected := 1 / float64(n+1)
		if frac > 2*expected {
			t.Errorf("n=%d: %.3f of keys moved, want ≈%.3f (≤2×)", n, frac, expected)
		}
		if moved == 0 {
			t.Errorf("n=%d: no keys moved to the new shard at all", n)
		}
	}
}

// TestBoundedMovementOnShrink: shrinking removes exactly the dropped
// shard's keys; every surviving shard keeps its keys.
func TestBoundedMovementOnShrink(t *testing.T) {
	keys := workloadKeys(5000)
	old := New(9)
	shrunk := old.Resize(8)
	for _, k := range keys {
		before, after := old.Shard(k), shrunk.Shard(k)
		if before != 8 && before != after {
			t.Fatalf("key %q moved %d→%d although its shard survived the shrink", k, before, after)
		}
		if before == 8 && after == 8 {
			t.Fatalf("key %q still routed to removed shard 8", k)
		}
	}
}
