// Package shardmap provides the consistent-hash ring the sharded namenode
// directory is partitioned with. Keys (file names and block keys) map to
// one of N shards via the classic fixed-point construction: every shard
// owns a set of virtual points on a 64-bit ring, and a key belongs to the
// shard owning the first point at or after the key's hash.
//
// Two properties matter to the namenode:
//
//   - Balance: with enough virtual points per shard, the synthetic
//     workload's short keys ("/UserVisits", "blk:17", ...) spread evenly,
//     so no shard's lock absorbs a disproportionate share of directory
//     operations.
//   - Bounded movement: growing the ring from N to N+1 shards only moves
//     the keys that now fall to the new shard's points — an expected
//     1/(N+1) of the keyspace — and every moved key moves TO the new
//     shard. That is what makes a later multi-process split mechanical:
//     only the new process's keys migrate.
//
// The ring is immutable after construction; Resize returns a new ring
// sharing the same virtual-point scheme so the movement bound holds.
package shardmap

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-point count. 160 points per
// shard keeps the maximum shard's share of a uniform keyspace within a few
// percent of fair for the shard counts the namenode uses (1–64).
const DefaultVirtualNodes = 160

type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over string keys.
type Ring struct {
	shards int
	vnodes int
	points []point // sorted by (hash, shard)
}

// New returns a ring with the given shard count and DefaultVirtualNodes
// virtual points per shard. Shard counts below 1 are clamped to 1.
func New(shards int) *Ring { return NewVirtual(shards, DefaultVirtualNodes) }

// NewVirtual returns a ring with an explicit virtual-point count per
// shard (tests use small counts to provoke imbalance).
func NewVirtual(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{shards: shards, vnodes: vnodes}
	r.points = make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		r.points = append(r.points, shardPoints(s, vnodes)...)
	}
	sortPoints(r.points)
	return r
}

// shardPoints returns shard s's virtual points. The point set of a shard
// depends only on (s, vnodes), never on the ring's total shard count —
// the invariant behind the bounded-movement property.
func shardPoints(s, vnodes int) []point {
	pts := make([]point, vnodes)
	for v := 0; v < vnodes; v++ {
		pts[v] = point{hash: Hash(fmt.Sprintf("shard-%d-point-%d", s, v)), shard: s}
	}
	return pts
}

func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
}

// Hash is the ring's key hash, exported so tests can reason about
// placement: 64-bit FNV-1a followed by a murmur3-style avalanche
// finalizer. Bare FNV-1a leaves sequential keys ("block/0", "block/1", ...)
// within a narrow arc of the ring — they differ only in the final
// multiply's low-entropy input — which collapses a whole small file onto
// one shard; the finalizer spreads every bit of the input over the whole
// 64-bit ring.
func Hash(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NumShards returns the ring's shard count.
func (r *Ring) NumShards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Shard maps a key to its shard: the owner of the first virtual point at
// or after the key's hash, wrapping at the top of the ring.
func (r *Ring) Shard(key string) int {
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Resize returns a new ring with the given shard count and the same
// virtual-point scheme. Growing N→M only moves keys onto the added shards
// N..M-1 (an expected (M-N)/M of the keyspace); shrinking moves only the
// removed shards' keys, each to some surviving shard.
func (r *Ring) Resize(shards int) *Ring { return NewVirtual(shards, r.vnodes) }
