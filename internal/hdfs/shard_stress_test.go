package hdfs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// assertManifestConsistent fails if a saved manifest lists a file block
// with no replica entries — the interleaving a Save racing an upload
// could produce if the snapshot read replica shards before file shards
// (such a manifest Loads into a permanently unreadable file).
func assertManifestConsistent(t *testing.T, dir string) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Errorf("manifest read: %v", err)
		return
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Errorf("manifest decode: %v", err)
		return
	}
	have := make(map[BlockID]bool)
	for _, rp := range m.Replicas {
		have[rp.Block] = true
	}
	for f, bs := range m.Files {
		for _, b := range bs {
			if !have[b] {
				t.Errorf("manifest file %q lists block %d with no replicas", f, b)
			}
		}
	}
}

// Race-stress for the sharded namenode directory: concurrent replica
// registrations and updates, generation and host reads, cross-shard
// aggregations, node kill/revive cycles, real block uploads and
// incremental saves all hammer the shards at once. Run under -race (the
// CI has a dedicated lane for this package); the assertions only check
// invariants that hold under any interleaving.
func TestShardStress(t *testing.T) {
	const (
		nodes  = 6
		shards = 8
	)
	iters := 400
	if testing.Short() {
		iters = 80
	}

	c, err := NewClusterShards(nodes, shards)
	if err != nil {
		t.Fatal(err)
	}
	nn := c.NameNode()

	var hookFires atomic.Int64
	nn.SetReplicaChangeHook(func(BlockID) { hookFires.Add(1) })
	defer nn.SetReplicaChangeHook(nil)

	// Pre-store bytes for every (block, node) pair the registrars may
	// announce — Save refuses a namenode entry the datanode cannot back —
	// then register one replica per block so readers always have targets.
	const baseBlocks = 64
	payload := []byte("stress-payload")
	for b := BlockID(0); b < baseBlocks; b++ {
		for n := 0; n < nodes; n++ {
			if err := c.dns[n].flush(b, payload, checksumChunks(payload)); err != nil {
				t.Fatal(err)
			}
		}
		nn.AddBlock(fmt.Sprintf("/f%d", b%7), b)
		nn.RegisterReplica(b, NodeID(int(b)%nodes), ReplicaInfo{SortColumn: -1})
	}

	dir := t.TempDir()
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}

	// Registrars: new replicas across the whole block population.
	for g := 0; g < 3; g++ {
		g := g
		spawn(func(i int) {
			b := BlockID((g*iters + i) % baseBlocks)
			info := ReplicaInfo{SortColumn: i % 4, HasIndex: i%2 == 0, IndexSize: i}
			nn.RegisterReplica(b, NodeID((i+g)%nodes), info)
		})
	}

	// Updaters: in-place Dir_rep updates; refusals are fine.
	spawn(func(i int) {
		_ = nn.UpdateReplica(BlockID(i%baseBlocks), NodeID(i%nodes), ReplicaInfo{SortColumn: 1, HasIndex: true})
	})

	// Readers: every lookup the scheduler and the caches use.
	for g := 0; g < 3; g++ {
		spawn(func(i int) {
			b := BlockID(i % baseBlocks)
			_ = nn.Generation(b)
			_ = nn.GetHosts(b)
			_ = nn.GetHostsWithIndex(b, i%4)
			_, _ = nn.ReplicaInfo(b, NodeID(i%nodes))
			_ = nn.ReplicaCount(b)
			if i%32 == 0 {
				_ = nn.Files()
				_, _ = nn.FileBlocks(fmt.Sprintf("/f%d", i%7))
			}
		})
	}

	// Kill/revive cycles: cross-shard invalidations through the cluster.
	spawn(func(i int) {
		n := NodeID(1 + i%(nodes-1)) // keep node 0 alive for uploads
		if i%2 == 0 {
			_ = c.KillNode(n)
		} else {
			_ = c.ReviveNode(n)
		}
	})

	// Uploader + saver: real pipeline writes (register-and-mark-dirty)
	// racing with incremental saves consuming the shard dirty marks. A
	// write may legitimately fail when its pipeline node is killed
	// mid-upload; it must just never corrupt the directory.
	var uploads atomic.Int64
	spawn(func(i int) {
		if i%8 == 0 {
			if err := c.Save(dir); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			// This goroutine is the only saver and saves are serialized,
			// so the manifest is stable until its next Save call.
			assertManifestConsistent(t, dir)
			return
		}
		if _, _, err := c.WriteBlock("/stream", []byte("stress-payload"), 1, nil); err == nil {
			uploads.Add(1)
		}
	})

	close(start)
	wg.Wait()

	if hookFires.Load() == 0 {
		t.Fatal("replica-change hook never fired under stress")
	}
	if uploads.Load() == 0 {
		t.Fatal("no upload ever succeeded under stress")
	}
	// Post-quiescence sanity: directory still answers coherently and a
	// final save drains the remaining dirty marks.
	if got := len(nn.Files()); got == 0 {
		t.Fatal("no files after stress")
	}
	for b := BlockID(0); b < baseBlocks; b++ {
		if nn.ReplicaCount(b) == 0 {
			t.Fatalf("block %d lost its replicas", b)
		}
	}
	if err := c.Save(dir); err != nil {
		t.Fatalf("final save: %v", err)
	}
	if loaded, err := Load(dir); err != nil {
		t.Fatalf("reload after stress: %v", err)
	} else if len(loaded.NameNode().Files()) != len(nn.Files()) {
		t.Fatalf("reload lost files: %d vs %d", len(loaded.NameNode().Files()), len(nn.Files()))
	}

	// The per-shard contention counters must account for real traffic on
	// more than one shard.
	ops := nn.ShardOps()
	if len(ops) != shards {
		t.Fatalf("ShardOps returned %d shards, want %d", len(ops), shards)
	}
	busy := 0
	for _, n := range ops {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shard(s) saw traffic: %v", busy, ops)
	}
}
