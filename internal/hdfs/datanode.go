package hdfs

import (
	"fmt"
	"sync"
)

// storedReplica is one replica on a datanode's local disk: the data file
// and its separate checksum file (§3.2: "for each replica two files are
// created on local disk").
type storedReplica struct {
	data []byte
	sums []uint32
}

// DataNode stores block replicas and participates in upload pipelines.
type DataNode struct {
	id NodeID

	mu       sync.RWMutex
	alive    bool
	replicas map[BlockID]storedReplica

	// Cumulative counters for tests and the cost model.
	bytesFlushed int64
	packetsRecv  int64
	verifyCount  int64
}

// NewDataNode returns an empty, alive datanode.
func NewDataNode(id NodeID) *DataNode {
	return &DataNode{id: id, alive: true, replicas: make(map[BlockID]storedReplica)}
}

// ID returns the node's identifier.
func (dn *DataNode) ID() NodeID { return dn.id }

// Alive reports whether the node is up.
func (dn *DataNode) Alive() bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return dn.alive
}

// Kill marks the node dead: it stops serving reads and cannot join upload
// pipelines. Stored bytes remain (a real machine's disk does not vanish),
// but are unreachable while dead.
func (dn *DataNode) Kill() {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.alive = false
}

// Revive brings a killed node back.
func (dn *DataNode) Revive() {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.alive = true
}

// flush writes a replica's data and checksum files to the local store.
func (dn *DataNode) flush(b BlockID, data []byte, sums []uint32) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive {
		return fmt.Errorf("hdfs: datanode %d is dead", dn.id)
	}
	if _, dup := dn.replicas[b]; dup {
		return fmt.Errorf("hdfs: datanode %d already stores block %d", dn.id, b)
	}
	// Copy: a disk write materializes its own bytes. Replicas sharing a
	// slice would let corruption on one node leak to its siblings.
	dn.replicas[b] = storedReplica{data: append([]byte(nil), data...), sums: append([]uint32(nil), sums...)}
	dn.bytesFlushed += int64(len(data)) + int64(4*len(sums))
	return nil
}

// replace overwrites an existing replica's data and checksum files — the
// datanode side of adaptive reorganization: the block's rows are unchanged
// but their order (and the attached index) differ, so the files are
// rewritten wholesale. Unlike flush it requires the replica to exist.
func (dn *DataNode) replace(b BlockID, data []byte, sums []uint32) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive {
		return fmt.Errorf("hdfs: datanode %d is dead", dn.id)
	}
	if _, ok := dn.replicas[b]; !ok {
		return fmt.Errorf("hdfs: datanode %d has no replica of block %d to replace", dn.id, b)
	}
	dn.replicas[b] = storedReplica{data: append([]byte(nil), data...), sums: append([]uint32(nil), sums...)}
	dn.bytesFlushed += int64(len(data)) + int64(4*len(sums))
	return nil
}

// drop removes a stored replica's data and checksum files. A dead node's
// disk is unreachable, so drop is a no-op there: the bytes linger as a
// ghost, but the namenode directory (which the caller updates) no longer
// lists them, so no reader ever resolves to the replica — and a later
// store on the revived node surfaces as an ErrReplicaExists collision the
// caller re-picks around. Reports whether bytes were actually removed.
func (dn *DataNode) drop(b BlockID) bool {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive {
		return false
	}
	if _, ok := dn.replicas[b]; !ok {
		return false
	}
	delete(dn.replicas, b)
	return true
}

// Read returns a verified copy of the replica's bytes. Reads check the
// stored checksum file, mirroring HDFS's read-path verification.
func (dn *DataNode) Read(b BlockID) ([]byte, error) {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	if !dn.alive {
		return nil, fmt.Errorf("hdfs: datanode %d is dead", dn.id)
	}
	rep, ok := dn.replicas[b]
	if !ok {
		return nil, fmt.Errorf("hdfs: datanode %d has no replica of block %d", dn.id, b)
	}
	if err := VerifyStored(rep.data, rep.sums); err != nil {
		return nil, fmt.Errorf("hdfs: datanode %d block %d: %v", dn.id, b, err)
	}
	return append([]byte(nil), rep.data...), nil
}

// HasReplica reports whether the node stores the block.
func (dn *DataNode) HasReplica(b BlockID) bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	_, ok := dn.replicas[b]
	return ok
}

// ReplicaSize returns the stored size of the replica's data file, or -1.
func (dn *DataNode) ReplicaSize(b BlockID) int {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	rep, ok := dn.replicas[b]
	if !ok {
		return -1
	}
	return len(rep.data)
}

// CorruptByte flips one bit of a stored replica, for failure-injection
// tests of the checksum machinery.
func (dn *DataNode) CorruptByte(b BlockID, offset int) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	rep, ok := dn.replicas[b]
	if !ok {
		return fmt.Errorf("hdfs: datanode %d has no replica of block %d", dn.id, b)
	}
	if offset < 0 || offset >= len(rep.data) {
		return fmt.Errorf("hdfs: corrupt offset %d out of range", offset)
	}
	rep.data[offset] ^= 0x01
	dn.replicas[b] = rep
	return nil
}

// BytesFlushed returns the cumulative bytes written to this node's store
// (data + checksum files).
func (dn *DataNode) BytesFlushed() int64 {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return dn.bytesFlushed
}
