package sim

import (
	"testing"
	"testing/quick"
)

const gb = int64(1) << 30

func TestUploadTimeIOBoundPipeline(t *testing.T) {
	// The paper's win-win claim: CPU work below the I/O time adds only the
	// interference fraction β, not its full duration.
	base := UploadCost{DiskReadBytes: 20 * gb, DiskStreamWriteBytes: 60 * gb, NetBytes: 40 * gb}
	t0 := UploadTime(Physical, base)
	withCPU := base
	withCPU.CPUCoreSeconds = 400 // well below I/O time when spread over 4 cores
	t1 := UploadTime(Physical, withCPU)
	if t1 <= t0 {
		t.Error("CPU work should cost something (interference)")
	}
	cpuWall := 400.0 / 4
	if t1-t0 > InterferenceBeta*cpuWall+1e-9 {
		t.Errorf("hidden CPU cost %v exceeds β×wall %v", t1-t0, InterferenceBeta*cpuWall)
	}
}

func TestUploadTimeCPUBoundCrossover(t *testing.T) {
	// On weak CPUs the same work dominates: Table 2(a)'s m1.large case.
	c := UploadCost{
		DiskReadBytes:       20 * gb,
		DiskBlockWriteBytes: 60 * gb,
		NetBytes:            40 * gb,
		CPUCoreSeconds:      8000,
	}
	strong := UploadTime(Physical, c)
	weak := UploadTime(EC2Large, c)
	if weak <= strong {
		t.Errorf("m1.large (%v s) should be slower than physical (%v s)", weak, strong)
	}
	// On m1.large (2 × 0.45 cores) the CPU wall time is 8000/0.9 ≈ 8889 s,
	// far above its disk time; the result must be CPU-dominated.
	if weak < 8000/(2*0.45) {
		t.Errorf("m1.large time %v below its CPU wall time", weak)
	}
}

func TestUploadTimeMonotonicity(t *testing.T) {
	f := func(readGB, writeGB, netGB uint8, cpu uint16) bool {
		c := UploadCost{
			DiskReadBytes:        int64(readGB) * gb,
			DiskStreamWriteBytes: int64(writeGB) * gb,
			NetBytes:             int64(netGB) * gb,
			CPUCoreSeconds:       float64(cpu),
		}
		t0 := UploadTime(Physical, c)
		c2 := c
		c2.DiskStreamWriteBytes += gb
		c3 := c
		c3.CPUCoreSeconds += 100
		c4 := c
		c4.ExtraSeconds += 5
		return UploadTime(Physical, c2) >= t0 && UploadTime(Physical, c3) >= t0 &&
			UploadTime(Physical, c4) > t0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStreamWritesSlowerThanBlockWrites(t *testing.T) {
	stream := UploadCost{DiskStreamWriteBytes: 60 * gb}
	block := UploadCost{DiskBlockWriteBytes: 60 * gb}
	if UploadTime(Physical, stream) <= UploadTime(Physical, block) {
		t.Error("packet-streamed writes should be slower than whole-block flushes")
	}
}

func TestTaskTime(t *testing.T) {
	c := TaskCost{
		FixedSeconds:  0.2,
		Seeks:         3,
		DiskReadBytes: 64 << 20,
	}
	got := TaskTime(Physical, c)
	want := 0.2 + 3*0.005 + float64(64<<20)/(53*1e6)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("TaskTime = %v, want %v", got, want)
	}
	// CPUFactor scales CPU terms only.
	cpu := TaskCost{CPUSeconds: 1}
	if TaskTime(EC2Large, cpu) <= TaskTime(Physical, cpu) {
		t.Error("weak CPU should make CPU-bound tasks slower")
	}
}

func TestJobTimeDispatchLimited(t *testing.T) {
	// Short tasks: the JobTracker's dispatch rate dominates, which is the
	// paper's core observation in §6.4.1 — Figure 6(a)'s HAIL times are
	// flat across queries despite very different record-reader times.
	fast := JobSpec{NTasks: 3200, TaskSeconds: 0.5, SetupSeconds: 5}
	slow := JobSpec{NTasks: 3200, TaskSeconds: 2.5, SetupSeconds: 5}
	tf := JobTime(Physical, fast)
	ts := JobTime(Physical, slow)
	if ts-tf > 0.05*tf {
		t.Errorf("dispatch-limited jobs should be nearly flat: %v vs %v", tf, ts)
	}
	wantMin := 3200 / DispatchPerSecond
	if tf < wantMin {
		t.Errorf("JobTime %v below dispatch bound %v", tf, wantMin)
	}
}

func TestJobTimeSlotLimited(t *testing.T) {
	// Long tasks: slot capacity dominates (Hadoop full scans).
	j := JobSpec{NTasks: 3200, TaskSeconds: 7, SetupSeconds: 5}
	got := JobTime(Physical, j)
	want := 5 + 160*7.0 // 160 waves of 20 slots
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("JobTime = %v, want %v", got, want)
	}
}

func TestJobTimeFewTasks(t *testing.T) {
	// HailSplitting's 20-task jobs: dominated by setup + one task.
	j := JobSpec{NTasks: 20, TaskSeconds: 8, SetupSeconds: 4}
	got := JobTime(Physical, j)
	if got != 4+8 { // one wave of 20 tasks on 20 slots
		t.Errorf("JobTime(20 tasks) = %v, want 12", got)
	}
	if JobTime(Physical, JobSpec{SetupSeconds: 3}) != 3 {
		t.Error("zero-task job should cost setup only")
	}
}

func TestIdealJobTime(t *testing.T) {
	j := JobSpec{NTasks: 3200, TaskSeconds: 2}
	got := IdealJobTime(Physical, j)
	want := 3200.0 / 20 * 2
	if got != want {
		t.Errorf("IdealJobTime = %v, want %v", got, want)
	}
	// T_ideal must be far below T_end-to-end for short tasks (Fig. 6c).
	e2e := JobTime(Physical, JobSpec{NTasks: 3200, TaskSeconds: 0.5, SetupSeconds: 5})
	ideal := IdealJobTime(Physical, JobSpec{NTasks: 3200, TaskSeconds: 0.5})
	if ideal > e2e/3 {
		t.Errorf("framework overhead should dominate: ideal=%v e2e=%v", ideal, e2e)
	}
	if half := IdealJobTime(Physical, JobSpec{NTasks: 10, TaskSeconds: 2}); half != 2 {
		t.Errorf("sub-wave job ideal = %v, want one task time", half)
	}
}

func TestWithNodes(t *testing.T) {
	p := EC2Quad.WithNodes(100)
	if p.Nodes != 100 || EC2Quad.Nodes != 10 {
		t.Error("WithNodes must copy, not mutate")
	}
	// Scale-out: more nodes = more slots = faster slot-limited jobs.
	j := JobSpec{NTasks: 3200, TaskSeconds: 20}
	if JobTime(p, j) >= JobTime(EC2Quad, j) {
		t.Error("100 nodes not faster than 10 for slot-limited job")
	}
}

func TestCalibrationFigure4aShape(t *testing.T) {
	// Smoke-check the calibrated constants against Figure 4(a)'s shape:
	// uploading 20 GB/node of UserVisits with replication 3.
	// Real byte ratios come from the workload package; here we use the
	// approximate ratio binary≈text for UserVisits.
	text := int64(20) * gb
	bin := int64(float64(text) * 1.05)
	hadoop := UploadTime(Physical, UploadCost{
		DiskReadBytes:        text,
		DiskStreamWriteBytes: 3 * text,
		NetBytes:             2 * text,
		CPUCoreSeconds:       float64(3*text) / (ChecksumMBps * 1e6),
	})
	hailCost := func(indexes int) UploadCost {
		cpu := float64(text)/(ParseMBps*1e6) +
			float64(indexes)*float64(bin)/(SortIndexMBps*1e6) +
			float64(3*bin)/(SerializeMBps*1e6) +
			float64(3*bin)/(ChecksumMBps*1e6)
		return UploadCost{
			DiskReadBytes:       text,
			DiskBlockWriteBytes: 3 * bin,
			NetBytes:            2 * bin,
			CPUCoreSeconds:      cpu,
		}
	}
	hail0 := UploadTime(Physical, hailCost(0))
	hail3 := UploadTime(Physical, hailCost(3))

	// Shape assertions from the paper: HAIL-0 within ~5% of Hadoop,
	// HAIL-3 overhead under ~20%, and both in the right order.
	if ratio := hail0 / hadoop; ratio < 0.90 || ratio > 1.10 {
		t.Errorf("HAIL-0/Hadoop = %.3f, want ≈1 (paper: 1.02)", ratio)
	}
	if ratio := hail3 / hadoop; ratio < 0.95 || ratio > 1.25 {
		t.Errorf("HAIL-3/Hadoop = %.3f, want ≈1.1 (paper: 1.14)", ratio)
	}
	if hail3 <= hail0 {
		t.Error("indexes must not be free")
	}
	// And absolute scale: the paper's Hadoop upload is 1,398 s; stay in
	// the same ballpark so reported numbers are recognizable.
	if hadoop < 1000 || hadoop > 2100 {
		t.Errorf("Hadoop UserVisits upload = %.0f s, want ~1400 s", hadoop)
	}
}
